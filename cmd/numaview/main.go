// Command numaview is the hpcviewer analog: it loads a measurement
// file written by numaprof -profile and renders the code-centric,
// data-centric, and address-centric views — no re-execution needed,
// exactly as the real tool's offline viewer consumes hpcrun's
// measurement databases (Section 7).
//
//	numaprof -workload lulesh -profile lulesh.numaprof
//	numaview lulesh.numaprof
//	numaview -html report.html lulesh.numaprof
//	numaview -lenient damaged.numaprof
//
// By default the loader is strict: a truncated or corrupted measurement
// file is rejected outright. With -lenient the viewer salvages every
// intact checksummed section instead, prints a damage report, and
// renders whatever survived.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/addrcentric"
	"repro/internal/core"
	"repro/internal/diff"
	"repro/internal/metrics"
	"repro/internal/profio"
	"repro/internal/trace"
	"repro/internal/view"
)

func main() {
	var (
		top      = flag.Int("top", 5, "variables to detail")
		showCCT  = flag.Bool("cct", true, "print the calling-context view")
		htmlOut  = flag.String("html", "", "write a self-contained HTML report to this path")
		diffWith = flag.String("diff", "", "compare against this second measurement file (before vs after)")
		lenient  = flag.Bool("lenient", false, "salvage intact sections of a damaged file instead of rejecting it")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: numaview [flags] <measurement-file>")
		os.Exit(2)
	}
	var err error
	if *diffWith != "" {
		err = runDiff(flag.Arg(0), *diffWith)
	} else {
		err = run(flag.Arg(0), *top, *showCCT, *htmlOut, *lenient)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "numaview:", err)
		os.Exit(1)
	}
}

// runDiff loads two measurement files and prints their comparison:
// the first argument is the "before" profile, -diff names the "after".
func runDiff(beforePath, afterPath string) error {
	load := func(path string) (*core.Profile, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return profio.Load(f)
	}
	before, err := load(beforePath)
	if err != nil {
		return err
	}
	after, err := load(afterPath)
	if err != nil {
		return err
	}
	r := diff.Compare(before, after, beforePath, afterPath, diff.Options{})
	fmt.Print(r.Render())
	return nil
}

func run(path string, top int, showCCT bool, htmlOut string, lenient bool) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var prof *core.Profile
	if lenient {
		var rep *profio.Report
		prof, rep, err = profio.LoadLenient(f)
		if err != nil {
			return err
		}
		fmt.Println(rep.Summary())
		fmt.Println()
	} else {
		prof, err = profio.Load(f)
		if err != nil {
			return fmt.Errorf("%w (try -lenient to salvage intact sections)", err)
		}
	}

	fmt.Print(view.Totals(prof))
	if h := view.HealthBlock(prof); h != "" {
		fmt.Println()
		fmt.Print(h)
	}
	fmt.Println()
	fmt.Print(view.VarTable(prof, top))
	vars := prof.Vars
	if top > 0 && top < len(vars) {
		vars = vars[:top]
	}
	for _, v := range vars {
		if pat, ok := prof.Patterns.Pattern(v.Var, addrcentric.WholeProgram); ok {
			fmt.Println()
			fmt.Print(view.AddressCentric(pat, 48))
		}
		if len(v.Bins) > 1 {
			fmt.Print(view.BinTable(v))
		}
		if v.ProtectedPages > 0 || len(v.FirstTouchThreads) > 0 {
			fmt.Print(view.FirstTouchReport(prof, v))
		}
	}
	if showCCT {
		fmt.Println()
		fmt.Print(view.CCT(prof, metrics.Mismatch, 6, 0.01))
	}
	if prof.Timeline != nil && prof.Timeline.Len() > 0 {
		fmt.Println()
		fmt.Print(trace.Render(prof.Timeline, 16, 40))
	}
	if htmlOut != "" {
		page, err := view.HTML(prof, top)
		if err != nil {
			return err
		}
		if err := os.WriteFile(htmlOut, []byte(page), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nHTML report written to %s\n", htmlOut)
	}
	return nil
}
