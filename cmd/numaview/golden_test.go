package main

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/profio"
	"repro/internal/topology"
	"repro/internal/workloads"
)

var update = flag.Bool("update", false, "rewrite the golden file under testdata/")

// TestViewTextGolden pins numaview's full text output for a fixed,
// deterministic profile, so the viewer's formatting (and the ordering
// of everything it prints) cannot drift silently. Regenerate after an
// intentional change with
//
//	go test ./cmd/numaview -run Golden -update
func TestViewTextGolden(t *testing.T) {
	m := topology.MagnyCours48()
	prof, err := core.Analyze(core.Config{
		Machine:         m,
		Mechanism:       "IBS",
		TrackFirstTouch: true,
		CacheConfig:     workloads.TunedCacheConfig(),
		MemParams:       workloads.MemParamsFor(m),
		FabricParams:    workloads.FabricParamsFor(m),
	}, workloads.NewBlackscholes(workloads.Params{Iters: 4}))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bs.numaprof")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := profio.Save(f, prof); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got := captureStdout(t, func() error { return run(path, 2, true, "", false) })

	golden := filepath.Join("testdata", "report.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		wl, gl := strings.Split(string(want), "\n"), strings.Split(got, "\n")
		for i := 0; i < len(wl) && i < len(gl); i++ {
			if wl[i] != gl[i] {
				t.Fatalf("output drifted from golden at line %d:\n  golden: %q\n  got:    %q", i+1, wl[i], gl[i])
			}
		}
		t.Fatalf("output drifted from golden: line counts %d vs %d", len(wl), len(gl))
	}
}

// captureStdout redirects os.Stdout around f and returns what it
// printed (run writes straight to stdout via fmt.Print).
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	ferr := f()
	w.Close()
	os.Stdout = old
	out := <-done
	if ferr != nil {
		t.Fatal(ferr)
	}
	return out
}
