package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/profio"
	"repro/internal/topology"
	"repro/internal/workloads"
)

func TestViewSavedProfile(t *testing.T) {
	// Produce a measurement file the way numaprof would.
	m := topology.MagnyCours48()
	prof, err := core.Analyze(core.Config{
		Machine:         m,
		Mechanism:       "IBS",
		TrackFirstTouch: true,
		CacheConfig:     workloads.TunedCacheConfig(),
		MemParams:       workloads.MemParamsFor(m),
		FabricParams:    workloads.FabricParamsFor(m),
	}, workloads.NewBlackscholes(workloads.Params{Iters: 4}))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "bs.numaprof")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := profio.Save(f, prof); err != nil {
		t.Fatal(err)
	}
	f.Close()

	htmlPath := filepath.Join(dir, "report.html")
	if err := run(path, 2, true, htmlPath, false); err != nil {
		t.Fatal(err)
	}
	html, err := os.ReadFile(htmlPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(html) == 0 {
		t.Fatal("empty HTML report")
	}
}

func TestViewRejectsMissingFile(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "absent"), 1, false, "", false); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestViewRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad")
	if err := os.WriteFile(path, []byte("not a profile"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, 1, false, "", false); err == nil {
		t.Fatal("garbage file should error")
	}
}

func TestViewLenientSalvagesTruncated(t *testing.T) {
	m := topology.MagnyCours48()
	prof, err := core.Analyze(core.Config{
		Machine:      m,
		Mechanism:    "IBS",
		CacheConfig:  workloads.TunedCacheConfig(),
		MemParams:    workloads.MemParamsFor(m),
		FabricParams: workloads.FabricParamsFor(m),
	}, workloads.NewBlackscholes(workloads.Params{Iters: 4}))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := profio.Save(&buf, prof); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	path := filepath.Join(t.TempDir(), "cut.numaprof")
	if err := os.WriteFile(path, data[:len(data)*3/5], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, 1, false, "", false); err == nil {
		t.Fatal("strict view of a truncated file should error")
	}
	if err := run(path, 1, false, "", true); err != nil {
		t.Fatalf("lenient view should salvage: %v", err)
	}
}

func TestDiffTwoProfiles(t *testing.T) {
	m := topology.MagnyCours48()
	save := func(s workloads.Strategy, path string) {
		t.Helper()
		prof, err := core.Analyze(core.Config{
			Machine:      m,
			Mechanism:    "IBS",
			CacheConfig:  workloads.TunedCacheConfig(),
			MemParams:    workloads.MemParamsFor(m),
			FabricParams: workloads.FabricParamsFor(m),
		}, workloads.NewLULESH(workloads.Params{Strategy: s, Iters: 2}))
		if err != nil {
			t.Fatal(err)
		}
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if err := profio.Save(f, prof); err != nil {
			t.Fatal(err)
		}
	}
	dir := t.TempDir()
	base := filepath.Join(dir, "base.numaprof")
	block := filepath.Join(dir, "block.numaprof")
	save(workloads.Baseline, base)
	save(workloads.BlockWise, block)
	if err := runDiff(base, block); err != nil {
		t.Fatal(err)
	}
	if err := runDiff(base, filepath.Join(dir, "absent")); err == nil {
		t.Fatal("missing after-file should error")
	}
}
