package main

import (
	"io"
	"strings"
	"testing"
)

func TestRunRejectsBadInputs(t *testing.T) {
	cases := []struct {
		name string
		err  string
		call func() error
	}{
		{"unknown workload", "unknown workload", func() error {
			return run(io.Discard, "nope", "IBS", "", 0, "compact", "baseline", 0, 0, 1, 1, false, false, false, "", "", "")
		}},
		{"unknown machine", "unknown machine", func() error {
			return run(io.Discard, "lulesh", "IBS", "pdp-11", 0, "compact", "baseline", 0, 0, 1, 1, false, false, false, "", "", "")
		}},
		{"unknown binding", "unknown binding", func() error {
			return run(io.Discard, "lulesh", "IBS", "", 0, "diagonal", "baseline", 0, 0, 1, 1, false, false, false, "", "", "")
		}},
		{"unknown mechanism", "unknown mechanism", func() error {
			return run(io.Discard, "lulesh", "XYZ", "", 0, "compact", "baseline", 0, 0, 1, 1, false, false, false, "", "", "")
		}},
		{"bad chaos plan", "faults:", func() error {
			return run(io.Discard, "lulesh", "IBS", "", 0, "compact", "baseline", 0, 0, 1, 1, false, false, false, "", "", "drop=2.5")
		}},
	}
	for _, c := range cases {
		err := c.call()
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.err) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.err)
		}
	}
}

func TestRunBlackscholesSmoke(t *testing.T) {
	// A fast end-to-end run through the whole pipeline.
	if err := run(io.Discard, "blackscholes", "IBS", "", 0, "compact", "baseline",
		0, 0, 4, 1, true, true, true, t.TempDir()+"/report.html", "", ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunChaosSmoke(t *testing.T) {
	// A chaos run must complete end-to-end, not crash: drops, EA
	// corruption, and a stall all hit the same pipeline the clean run
	// uses.
	if err := run(io.Discard, "blackscholes", "IBS", "", 0, "compact", "baseline",
		0, 0, 4, 1, false, false, false, "", "", "drop=0.3,corrupt=0.05,stall=200,seed=9"); err != nil {
		t.Fatal(err)
	}
}

func TestRunUMTDefaultsToScatter(t *testing.T) {
	if err := run(io.Discard, "umt2013", "MRK", "", 0, "compact", "baseline",
		0, 0, 2, 1, false, false, false, "", "", ""); err != nil {
		t.Fatal(err)
	}
}
