package main

import (
	"bytes"
	"context"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/server"
	"repro/internal/store"
)

func TestRunRejectsBadInputs(t *testing.T) {
	cases := []struct {
		name string
		err  string
		call func() error
	}{
		{"unknown workload", "unknown workload", func() error {
			return run(context.Background(), io.Discard, "nope", "IBS", "", 0, "compact", "baseline", 0, 0, 1, 1, false, false, false, false, "", "", "", ckptFlags{})
		}},
		{"unknown machine", "unknown machine", func() error {
			return run(context.Background(), io.Discard, "lulesh", "IBS", "pdp-11", 0, "compact", "baseline", 0, 0, 1, 1, false, false, false, false, "", "", "", ckptFlags{})
		}},
		{"unknown binding", "unknown binding", func() error {
			return run(context.Background(), io.Discard, "lulesh", "IBS", "", 0, "diagonal", "baseline", 0, 0, 1, 1, false, false, false, false, "", "", "", ckptFlags{})
		}},
		{"unknown mechanism", "unknown mechanism", func() error {
			return run(context.Background(), io.Discard, "lulesh", "XYZ", "", 0, "compact", "baseline", 0, 0, 1, 1, false, false, false, false, "", "", "", ckptFlags{})
		}},
		{"bad chaos plan", "faults:", func() error {
			return run(context.Background(), io.Discard, "lulesh", "IBS", "", 0, "compact", "baseline", 0, 0, 1, 1, false, false, false, false, "", "", "drop=2.5", ckptFlags{})
		}},
	}
	for _, c := range cases {
		err := c.call()
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.err) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.err)
		}
	}
}

func TestRunBlackscholesSmoke(t *testing.T) {
	// A fast end-to-end run through the whole pipeline.
	if err := run(context.Background(), io.Discard, "blackscholes", "IBS", "", 0, "compact", "baseline",
		0, 0, 4, 1, true, true, true, false, t.TempDir()+"/report.html", "", "", ckptFlags{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunChaosSmoke(t *testing.T) {
	// A chaos run must complete end-to-end, not crash: drops, EA
	// corruption, and a stall all hit the same pipeline the clean run
	// uses.
	if err := run(context.Background(), io.Discard, "blackscholes", "IBS", "", 0, "compact", "baseline",
		0, 0, 4, 1, false, false, false, false, "", "", "drop=0.3,corrupt=0.05,stall=200,seed=9", ckptFlags{}); err != nil {
		t.Fatal(err)
	}
}

// TestSubmitMatchesLocalProfile is the CLI-level determinism check: a
// measurement file fetched through `numaprof -submit` from a live
// daemon is byte-identical to the one a local `numaprof -profile` run
// writes for the same flags.
func TestSubmitMatchesLocalProfile(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Options{Store: st, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	dir := t.TempDir()
	local := filepath.Join(dir, "local.numaprof")
	remote := filepath.Join(dir, "remote.numaprof")
	if err := run(context.Background(), io.Discard, "blackscholes", "IBS", "", 0, "compact", "interleave",
		0, 0, 1, 1, true, false, false, false, "", local, "", ckptFlags{}); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := submitJobs(&out, ts.URL, []string{"blackscholes"}, "IBS", "", 0, "compact",
		"interleave", 0, 0, 1, true, false, false, "", remote, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "done on "+ts.URL) {
		t.Fatalf("submit output missing completion line:\n%s", out.String())
	}
	lb, err := os.ReadFile(local)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := os.ReadFile(remote)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lb, rb) {
		t.Fatalf("daemon-fetched profile differs from local -profile output: %d vs %d bytes", len(rb), len(lb))
	}
}

func TestRunUMTDefaultsToScatter(t *testing.T) {
	if err := run(context.Background(), io.Discard, "umt2013", "MRK", "", 0, "compact", "baseline",
		0, 0, 2, 1, false, false, false, false, "", "", "", ckptFlags{}); err != nil {
		t.Fatal(err)
	}
}
