// Command numaprof is the hpcrun → hpcprof → hpcviewer pipeline of the
// paper in one binary: it runs a simulated workload under a chosen
// address-sampling mechanism on a chosen machine, profiles it, and
// prints the code-centric, data-centric, and address-centric views.
//
// Examples:
//
//	numaprof -workload lulesh -mechanism IBS -machine amd-magny-cours-48
//	numaprof -workload amg2006 -strategy guided
//	numaprof -workload umt2013 -machine ibm-power7-128 -threads 32 -binding scatter -mechanism MRK
//	numaprof -workload blackscholes -first-touch=false -top 2
//	numaprof -workload lulesh -chaos drop=0.2,fail=2000,seed=42
//	numaprof -workload lulesh,amg2006,blackscholes -parallel 3
//
// Several comma-separated workloads profile as independent cells on
// worker goroutines (-parallel; the reports print in the order given
// and are identical at any worker count).
//
// The -chaos flag injects deterministic faults (sample drops, EA
// corruption, IP skid, sampler stalls and hard failures) into the
// sampling pipeline; the run completes by degrading gracefully and the
// report carries a pipeline-health block accounting for every loss.
//
// With -submit http://host:port the job runs on a numad daemon instead
// of locally: the CLI posts the spec, polls to completion, and prints
// the daemon's report. Identical specs are served from the daemon's
// profile store, and -profile fetches measurement bytes identical to a
// local run's.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/pmu"
	"repro/internal/profio"
	"repro/internal/progress"
	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/view"
)

func main() {
	var (
		workload  = flag.String("workload", "lulesh", "workload: lulesh, amg2006, blackscholes, umt2013 (comma-separate to profile several)")
		mechanism = flag.String("mechanism", "IBS", "sampling mechanism: "+strings.Join(pmu.Names(), ", "))
		machine   = flag.String("machine", "", "machine preset (default: the mechanism's Table 1 testbed)")
		threads   = flag.Int("threads", 0, "team size (0: all CPUs)")
		binding   = flag.String("binding", "compact", "thread binding: compact or scatter")
		strategy  = flag.String("strategy", "baseline", "placement: baseline, blockwise, interleave, parallel-init, guided")
		period    = flag.Uint64("period", 0, "sampling period override (0: mechanism default)")
		bins      = flag.Int("bins", 0, "per-variable bin count (0: default/"+`$NUMAPROF_BINS`+")")
		iters     = flag.Int("iters", 0, "workload iterations (0: default)")
		top       = flag.Int("top", 5, "variables to detail")
		firstT    = flag.Bool("first-touch", true, "pinpoint first touches via page protection")
		showCCT   = flag.Bool("cct", true, "print the calling-context view")
		doTrace   = flag.Bool("trace", false, "record time-stamped samples and print the time-varying profile")
		htmlOut   = flag.String("html", "", "also write a self-contained HTML report to this path")
		profOut   = flag.String("profile", "", "write the measurement file (for numaview) to this path")
		chaos     = flag.String("chaos", "", "fault-injection plan, e.g. drop=0.2,corrupt=0.01,fail=2000,seed=42 (see internal/faults)")
		optimize  = flag.Bool("optimize", false,
			"closed-loop optimizer: profile the workload, diagnose its NUMA problems, re-run every candidate remedy, and report predicted vs measured speedup (with -submit, runs as a daemon advise job)")
		parallel = flag.Int("parallel", sched.Workers(),
			"worker goroutines when profiling several workloads (1: serial; reports are identical either way)")
		submit = flag.String("submit", "",
			"submit the job(s) to a numad daemon at this base URL (e.g. http://localhost:7077) instead of profiling locally")
		follow = flag.Bool("follow", false,
			"with -submit: stream the job's live events (SSE) and print a progress line per snapshot instead of polling silently")
		convergeEarly = flag.Bool("converge-early", false,
			"local only: stop sampling once the profile's metric estimates converge; the report's health block records the early stop")
		ckptOut = flag.String("checkpoint", "",
			"local only: write a resumable mid-run checkpoint to this path every -checkpoint-every epochs (atomic; the newest always wins)")
		ckptEvery = flag.Int("checkpoint-every", 0,
			"epochs between -checkpoint writes (0 with -checkpoint: every epoch)")
		resumeFrom = flag.String("resume", "",
			"local only: resume an interrupted run from a -checkpoint file; the profile is byte-identical to an uninterrupted run")
		telemetryDir = flag.String("telemetry", "",
			"self-profile the run: write "+telemetry.TraceFile+" (chrome://tracing), "+
				telemetry.SpanFile+" and "+telemetry.MetricsFile+" to this directory and print a per-phase summary")
	)
	flag.Parse()
	sched.SetWorkers(*parallel)

	var names []string
	for _, n := range strings.Split(*workload, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "numaprof: no workload given")
		os.Exit(1)
	}

	// exit finalizes telemetry (when -telemetry armed it) before leaving:
	// every path below must go through it rather than os.Exit directly.
	ctx := context.Background()
	exit := func(code int) { os.Exit(code) }
	if *telemetryDir != "" {
		tr := telemetry.NewTracer(telemetry.WithAllocTracking())
		telemetry.SetTracer(tr)
		var root *telemetry.Span
		ctx, root = telemetry.Start(ctx, "numaprof.run",
			telemetry.String("workloads", strings.Join(names, ",")),
			telemetry.String("mechanism", *mechanism))
		dir := *telemetryDir
		exit = func(code int) {
			root.End()
			telemetry.SetTracer(nil)
			if err := telemetry.Dump(dir, tr, telemetry.Default); err != nil {
				fmt.Fprintln(os.Stderr, "numaprof:", err)
				if code == 0 {
					code = 1
				}
			} else {
				fmt.Printf("\ntelemetry written to %s (%s, %s, %s)\n",
					dir, telemetry.TraceFile, telemetry.SpanFile, telemetry.MetricsFile)
				fmt.Print(tr.Summary())
			}
			os.Exit(code)
		}
	}

	if *optimize && len(names) > 1 {
		fmt.Fprintln(os.Stderr, "numaprof: -optimize needs a single workload")
		exit(1)
	}
	if *follow && *submit == "" {
		fmt.Fprintln(os.Stderr, "numaprof: -follow needs -submit")
		exit(1)
	}
	if *convergeEarly && *submit != "" {
		// Daemon profiles are content-addressed by spec; an early-stopped
		// run would not be byte-identical, so the flag is local-only.
		fmt.Fprintln(os.Stderr, "numaprof: -converge-early is local-only (daemon profiles are cached by spec)")
		exit(1)
	}
	if (*ckptOut != "" || *resumeFrom != "") && *submit != "" {
		fmt.Fprintln(os.Stderr, "numaprof: -checkpoint/-resume are local-only (the daemon checkpoints via -checkpoint-every on numad)")
		exit(1)
	}
	if (*ckptOut != "" || *resumeFrom != "") && len(names) > 1 {
		fmt.Fprintln(os.Stderr, "numaprof: -checkpoint/-resume need a single workload")
		exit(1)
	}

	if *submit != "" {
		// Client mode: the daemon runs the jobs; identical specs are
		// served from its store, and the fetched measurement bytes are
		// identical to a local -profile write.
		if len(names) > 1 && (*htmlOut != "" || *profOut != "") {
			fmt.Fprintln(os.Stderr, "numaprof: -html/-profile need a single workload")
			exit(1)
		}
		if *optimize {
			if err := optimizeRemote(os.Stdout, *submit, names[0], *mechanism, *machine, *threads,
				*binding, *strategy, *period, *bins, *iters, *firstT, *chaos); err != nil {
				fmt.Fprintln(os.Stderr, "numaprof:", err)
				exit(1)
			}
			exit(0)
			return
		}
		if err := submitJobs(os.Stdout, *submit, names, *mechanism, *machine, *threads, *binding,
			*strategy, *period, *bins, *iters, *firstT, *doTrace, *follow, *htmlOut, *profOut, *chaos); err != nil {
			fmt.Fprintln(os.Stderr, "numaprof:", err)
			exit(1)
		}
		exit(0)
		return
	}

	if *optimize {
		if err := optimizeLocal(ctx, os.Stdout, names[0], *mechanism, *machine, *threads, *binding,
			*strategy, *period, *bins, *iters, *firstT, *chaos); err != nil {
			fmt.Fprintln(os.Stderr, "numaprof:", err)
			exit(1)
		}
		exit(0)
		return
	}

	if len(names) == 1 {
		if err := run(ctx, os.Stdout, names[0], *mechanism, *machine, *threads, *binding, *strategy,
			*period, *bins, *iters, *top, *firstT, *showCCT, *doTrace, *convergeEarly, *htmlOut, *profOut, *chaos,
			ckptFlags{out: *ckptOut, every: *ckptEvery, resume: *resumeFrom}); err != nil {
			fmt.Fprintln(os.Stderr, "numaprof:", err)
			exit(1)
		}
		exit(0)
		return
	}

	// Several workloads: each is an independent cell; reports buffer in
	// the cells and print in the order given, so the output does not
	// depend on the worker count. File outputs would collide, so they
	// are single-workload only.
	if *htmlOut != "" || *profOut != "" {
		fmt.Fprintln(os.Stderr, "numaprof: -html/-profile need a single workload")
		exit(1)
	}
	outs, err := sched.MapCtx(ctx, len(names), func(ctx context.Context, i int) (string, error) {
		var buf bytes.Buffer
		if err := run(ctx, &buf, names[i], *mechanism, *machine, *threads, *binding, *strategy,
			*period, *bins, *iters, *top, *firstT, *showCCT, *doTrace, *convergeEarly, "", "", *chaos, ckptFlags{}); err != nil {
			return "", fmt.Errorf("%s: %w", names[i], err)
		}
		return buf.String(), nil
	})
	failed := map[int]bool{}
	if err != nil {
		if sweep, ok := sched.AsSweep(err); ok {
			for _, ce := range sweep.Cells {
				fmt.Fprintln(os.Stderr, "numaprof:", ce.Err)
				failed[ce.Index] = true
			}
		} else {
			fmt.Fprintln(os.Stderr, "numaprof:", err)
		}
	}
	for i, name := range names {
		if failed[i] {
			continue
		}
		fmt.Printf("=== %s ===\n", name)
		fmt.Print(outs[i])
		fmt.Println()
	}
	if err != nil {
		exit(1)
	}
	exit(0)
}

// ckptFlags carries the local checkpoint/resume surface into run.
type ckptFlags struct {
	out    string // -checkpoint: write checkpoints to this path ("": off)
	every  int    // -checkpoint-every: epochs between writes (<=0: every epoch)
	resume string // -resume: adopt this checkpoint file ("": off)
}

func run(ctx context.Context, w io.Writer, workload, mechanism, machine string, threads int, binding, strategy string,
	period uint64, bins, iters, top int, firstTouch, showCCT, doTrace, convergeEarly bool, htmlOut, profOut, chaos string,
	ckpt ckptFlags) error {

	// The spec-to-config path is shared with the numad daemon
	// (internal/server), which is what makes a daemon-served profile
	// byte-identical to this CLI's -profile output for the same flags.
	spec := server.Spec{
		Workload:   workload,
		Mechanism:  mechanism,
		Machine:    machine,
		Threads:    threads,
		Binding:    binding,
		Strategy:   strategy,
		Period:     period,
		Bins:       bins,
		Iters:      iters,
		FirstTouch: &firstTouch,
		Trace:      doTrace,
		Chaos:      chaos,
	}
	_, buildDone := telemetry.Timed(ctx, "pipeline.build_config",
		telemetry.String("workload", workload), telemetry.String("mechanism", mechanism))
	cfg, app, err := spec.Build()
	buildDone()
	if err != nil {
		return err
	}
	if convergeEarly {
		// Config-level (never Spec-level) so the early-stopped profile is
		// clearly a different artifact from the spec's cached one.
		cfg.ConvergeEarly = true
		if cfg.SnapshotEvery <= 0 {
			cfg.SnapshotEvery = 1
		}
	}
	if ckpt.resume != "" {
		rck, err := profio.LoadCheckpointFile(ckpt.resume)
		if err != nil {
			return err
		}
		cfg.Resume = rck
		fmt.Fprintf(w, "resuming %s from %s (epoch %d)\n", workload, ckpt.resume, rck.Epoch)
	}
	if ckpt.out != "" {
		every := ckpt.every
		if every <= 0 {
			every = 1
		}
		cfg.CheckpointEvery = every
		cfg.OnCheckpoint = func(ck *core.Checkpoint) {
			// Atomic write; the newest checkpoint replaces the file, so
			// an interrupted run resumes from its latest durable epoch.
			if err := profio.SaveCheckpointFile(ckpt.out, ck); err != nil {
				fmt.Fprintln(os.Stderr, "numaprof: checkpoint:", err)
			}
		}
	}
	prof, err := core.AnalyzeCtx(ctx, cfg, app)
	if err != nil {
		return err
	}
	_, renderDone := telemetry.Timed(ctx, "pipeline.render_view",
		telemetry.String("kind", "text"), telemetry.String("workload", workload))
	fmt.Fprint(w, view.Report(prof, top))
	if showCCT {
		fmt.Fprintln(w)
		fmt.Fprint(w, view.CCT(prof, metrics.Mismatch, 6, 0.01))
		fmt.Fprint(w, view.RenderHotPath(prof, metrics.Mismatch))
	}
	if doTrace && prof.Timeline != nil {
		fmt.Fprintln(w)
		fmt.Fprint(w, trace.Render(prof.Timeline, 16, 40))
	}
	renderDone()
	if htmlOut != "" {
		_, htmlDone := telemetry.Timed(ctx, "pipeline.render_view",
			telemetry.String("kind", "html"), telemetry.String("workload", workload))
		page, err := view.HTML(prof, top)
		htmlDone()
		if err != nil {
			return err
		}
		if err := os.WriteFile(htmlOut, []byte(page), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nHTML report written to %s\n", htmlOut)
	}
	if profOut != "" {
		// Atomic temp+rename write: an interrupted run leaves the old
		// measurement file (or none), never a torn one.
		if err := profio.SaveFile(profOut, prof); err != nil {
			return err
		}
		fmt.Fprintf(w, "\nmeasurement file written to %s (view with numaview)\n", profOut)
	}
	return nil
}

// optimizeLocal is `-optimize` without a daemon: one-shot advise →
// apply → measure. The baseline profiles through the same Spec.Build
// path as a plain run; each candidate remedy re-runs as the baseline
// spec with the remedy's knobs turned, fanned out through the sched
// pipeline (-parallel bounds the width; the report is byte-identical at
// any width).
func optimizeLocal(ctx context.Context, w io.Writer, workload, mechanism, machine string, threads int,
	binding, strategy string, period uint64, bins, iters int, firstTouch bool, chaos string) error {

	base := server.Spec{
		Workload:   workload,
		Mechanism:  mechanism,
		Machine:    machine,
		Threads:    threads,
		Binding:    binding,
		Strategy:   strategy,
		Period:     period,
		Bins:       bins,
		Iters:      iters,
		FirstTouch: &firstTouch,
		Chaos:      chaos,
	}
	cfg, app, err := base.Build()
	if err != nil {
		return err
	}
	baseline, err := core.AnalyzeCtx(ctx, cfg, app)
	if err != nil {
		return err
	}
	run := func(cellCtx context.Context, _ int, t advisor.Transform) (*core.Profile, error) {
		spec := base
		if t.Strategy != "" {
			spec.Strategy = string(t.Strategy)
		}
		if t.Binding != "" {
			spec.Binding = t.Binding
		}
		ccfg, capp, err := spec.Build()
		if err != nil {
			return nil, err
		}
		return core.AnalyzeCtx(cellCtx, ccfg, capp)
	}
	rep, err := advisor.Optimize(ctx, baseline, advisor.Options{}, run)
	if err != nil {
		return err
	}
	fmt.Fprint(w, rep.Render())
	return nil
}

// optimizeRemote is `-optimize -submit`: profile on the daemon, then
// POST /api/v1/jobs/{id}/advise and print the advise job's report. Both
// jobs are durable and deduped server-side.
func optimizeRemote(w io.Writer, baseURL, workload, mechanism, machine string, threads int,
	binding, strategy string, period uint64, bins, iters int, firstTouch bool, chaos string) error {

	ctx := context.Background()
	client := server.NewClient(baseURL)
	spec := server.Spec{
		Workload:   workload,
		Mechanism:  mechanism,
		Machine:    machine,
		Threads:    threads,
		Binding:    binding,
		Strategy:   strategy,
		Period:     period,
		Bins:       bins,
		Iters:      iters,
		FirstTouch: &firstTouch,
		Chaos:      chaos,
	}
	st, err := client.Submit(ctx, spec)
	if err != nil {
		return err
	}
	if st, err = client.Wait(ctx, st.ID); err != nil {
		return err
	}
	if st.State != server.StateDone {
		return fmt.Errorf("job %s %s: %s", st.ID, st.State, st.Error)
	}
	adv, err := client.Advise(ctx, st.ID)
	if err != nil {
		return err
	}
	if adv, err = client.Wait(ctx, adv.ID); err != nil {
		return err
	}
	if adv.State != server.StateDone {
		return fmt.Errorf("advise job %s %s: %s", adv.ID, adv.State, adv.Error)
	}
	text, err := client.Text(ctx, adv.ID)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "advise job %s done on %s (cache hit: %v)\n\n", adv.ID, baseURL, adv.CacheHit)
	fmt.Fprint(w, text)
	return nil
}

// submitJobs is -submit mode: post one job per workload to a numad
// daemon, wait for completion, and print each report in the order
// given. With a single workload, -html and -profile fetch the daemon's
// rendered HTML and raw measurement bytes into local files.
// followJob streams one job's SSE events, printing a progress line per
// snapshot and an announcement per lifecycle transition, and returns
// the terminal status.
func followJob(ctx context.Context, w io.Writer, client *server.Client, id string) (server.JobStatus, error) {
	return client.Follow(ctx, id, func(ev server.StreamEvent) {
		switch ev.Type {
		case progress.EventSnapshot:
			s := ev.Snapshot
			if s == nil || s.Final {
				return
			}
			lpi := "n/a"
			if s.LPIValid {
				lpi = fmt.Sprintf("%.3f", s.LPI)
			}
			conv := ""
			switch {
			case s.Converged:
				conv = "  [converged]"
			case s.Confidence > 0:
				conv = fmt.Sprintf("  [stabilising %.0f%%]", 100*s.Confidence)
			}
			fmt.Fprintf(w, "%s  epoch %-4d samples %-8.0f remote %5.1f%%  lpi %s%s\n",
				id, s.Epoch, s.Samples, 100*s.RemoteFraction, lpi, conv)
		case progress.EventQueued, progress.EventRunning, progress.EventShutdown:
			fmt.Fprintf(w, "%s  %s\n", id, ev.Type)
		}
	})
}

func submitJobs(w io.Writer, baseURL string, names []string, mechanism, machine string, threads int,
	binding, strategy string, period uint64, bins, iters int, firstTouch, doTrace, follow bool,
	htmlOut, profOut, chaos string) error {

	ctx := context.Background()
	client := server.NewClient(baseURL)
	ids := make([]string, len(names))
	for i, name := range names {
		spec := server.Spec{
			Workload:   name,
			Mechanism:  mechanism,
			Machine:    machine,
			Threads:    threads,
			Binding:    binding,
			Strategy:   strategy,
			Period:     period,
			Bins:       bins,
			Iters:      iters,
			FirstTouch: &firstTouch,
			Trace:      doTrace,
			Chaos:      chaos,
		}
		st, err := client.Submit(ctx, spec)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		ids[i] = st.ID
	}
	for i, id := range ids {
		var (
			st  server.JobStatus
			err error
		)
		if follow {
			st, err = followJob(ctx, w, client, id)
		} else {
			st, err = client.Wait(ctx, id)
		}
		if err != nil {
			return fmt.Errorf("%s: %w", names[i], err)
		}
		if st.State != server.StateDone {
			return fmt.Errorf("%s: job %s %s: %s", names[i], st.ID, st.State, st.Error)
		}
		text, err := client.Text(ctx, id)
		if err != nil {
			return err
		}
		if len(ids) > 1 {
			fmt.Fprintf(w, "=== %s ===\n", names[i])
		}
		fmt.Fprintf(w, "job %s done on %s (cache hit: %v)\n\n", st.ID, baseURL, st.CacheHit)
		fmt.Fprint(w, text)
		if htmlOut != "" {
			page, err := client.HTMLReport(ctx, id)
			if err != nil {
				return err
			}
			if err := os.WriteFile(htmlOut, []byte(page), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(w, "\nHTML report written to %s\n", htmlOut)
		}
		if profOut != "" {
			raw, err := client.ProfileBytes(ctx, id)
			if err != nil {
				return err
			}
			if err := os.WriteFile(profOut, raw, 0o644); err != nil {
				return err
			}
			fmt.Fprintf(w, "\nmeasurement file written to %s (view with numaview)\n", profOut)
		}
	}
	return nil
}
