package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/profio"
	"repro/internal/server"
)

// TestKillAndRestartRecovery is the durability acceptance test: a real
// numad process is SIGKILLed mid-burst — no drain, no goodbye — and a
// second process over the same data directory must bring every
// acknowledged job to a terminal state with byte-identical profiles.
func TestKillAndRestartRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemon processes")
	}
	bin := buildDaemon(t)
	dir := t.TempDir()
	addr := freeAddr(t)
	base := "http://" + addr

	daemon := startDaemon(t, bin, addr, dir)
	waitHealthy(t, base)

	// Job 1 finishes before the crash: it must survive as a terminal
	// job, not be re-run.
	id1 := submit(t, base, `{"workload":"blackscholes","strategy":"baseline","iters":1}`)
	st1 := pollTerminal(t, base, id1, 60*time.Second)
	if st1.State != server.StateDone {
		t.Fatalf("pre-crash job %s: %s (%s)", id1, st1.State, st1.Error)
	}

	// The burst: a sweep plus singles, against one worker, so the crash
	// lands with work queued and (likely) a sweep cell mid-flight.
	idSweep := submit(t, base, `{"workload":"blackscholes","strategy":"baseline,interleave,blockwise","iters":2}`)
	id2 := submit(t, base, `{"workload":"blackscholes","strategy":"interleave","iters":1}`)
	id3 := submit(t, base, `{"workload":"blackscholes","strategy":"guided","iters":1}`)

	// SIGKILL: the hard crash. No handler runs, nothing is flushed
	// beyond what the write-ahead journal already made durable.
	if err := daemon.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	daemon.Wait()

	restarted := startDaemon(t, bin, addr, dir)
	defer func() {
		restarted.Process.Signal(syscall.SIGTERM)
		restarted.Wait()
	}()
	waitHealthy(t, base)

	// Every acknowledged job reaches a terminal state — done, since
	// nothing here can legitimately fail.
	for _, id := range []string{id1, idSweep, id2, id3} {
		st := pollTerminal(t, base, id, 120*time.Second)
		if st.State != server.StateDone {
			t.Fatalf("job %s after restart: %s (%s)", id, st.State, st.Error)
		}
	}

	// Byte identity: the daemon's served measurement bytes equal a
	// local Build+Analyze+Save of the same spec, crash or no crash.
	refs := map[string]server.Spec{
		id1: {Workload: "blackscholes", Strategy: "baseline", Iters: 1},
		id2: {Workload: "blackscholes", Strategy: "interleave", Iters: 1},
		id3: {Workload: "blackscholes", Strategy: "guided", Iters: 1},
	}
	for id, spec := range refs {
		got := fetch(t, base+"/api/v1/jobs/"+id+"?view=profile")
		if !bytes.Equal(got, refProfile(t, spec)) {
			t.Errorf("job %s: served profile differs from local reference", id)
		}
	}

	// The journal did its job: the restarted daemon reports recovered
	// work, and the pre-crash job was adopted, not recomputed.
	var m server.MetricsSnapshot
	if err := json.Unmarshal(fetch(t, base+"/metrics"), &m); err != nil {
		t.Fatal(err)
	}
	if m.Recovery.Recovered == 0 {
		t.Error("restarted daemon recovered no jobs; the burst should have been interrupted")
	}
	if st := pollTerminal(t, base, id1, time.Second); st.Key != st1.Key {
		t.Errorf("pre-crash job changed key across restart: %s != %s", st.Key, st1.Key)
	}
}

// TestCheckpointResumeAcrossKill is the mid-cell resume acceptance
// test: a sweep runs under -checkpoint-every 1, the daemon is SIGKILLed
// once mid-cell checkpoints are durable, and the restarted daemon must
// finish the sweep by resuming the interrupted cell from its latest
// checkpoint — cells_resumed > 0, not an epoch-zero recompute — with
// every cell's served bytes identical to an uninterrupted local run.
func TestCheckpointResumeAcrossKill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemon processes")
	}
	bin := buildDaemon(t)
	dir := t.TempDir()
	addr := freeAddr(t)
	base := "http://" + addr

	daemon := startDaemon(t, bin, addr, dir, "-checkpoint-every", "1")
	waitHealthy(t, base)

	idSweep := submit(t, base, `{"workload":"blackscholes","strategy":"baseline,interleave,blockwise,guided","iters":6}`)

	// Kill only after a couple of checkpoints are durable (blob written
	// AND its journal pointer appended), so the restart has something to
	// resume; the long sweep guarantees the kill lands mid-cell.
	waitMetric(t, base, 60*time.Second, func(m server.MetricsSnapshot) bool {
		return m.Recovery.CheckpointsWritten >= 2
	})
	if err := daemon.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	daemon.Wait()

	restarted := startDaemon(t, bin, addr, dir, "-checkpoint-every", "1")
	defer func() {
		restarted.Process.Signal(syscall.SIGTERM)
		restarted.Wait()
	}()
	waitHealthy(t, base)

	if st := pollTerminal(t, base, idSweep, 240*time.Second); st.State != server.StateDone {
		t.Fatalf("sweep after restart: %s (%s)", st.State, st.Error)
	}
	var m server.MetricsSnapshot
	if err := json.Unmarshal(fetch(t, base+"/metrics"), &m); err != nil {
		t.Fatal(err)
	}
	if m.Recovery.CellsResumed == 0 {
		t.Error("restart resumed no cells from checkpoint; interrupted work was recomputed from epoch zero")
	}

	// Byte identity: every cell's stored profile — the resumed one
	// included — equals an uninterrupted local run of the same spec.
	// Each probe submission is served from the store (the sweep's own
	// bytes), so the comparison reads what the resumed cell persisted.
	for _, strategy := range []string{"baseline", "interleave", "blockwise", "guided"} {
		id := submit(t, base, fmt.Sprintf(`{"workload":"blackscholes","strategy":%q,"iters":6}`, strategy))
		if st := pollTerminal(t, base, id, 120*time.Second); st.State != server.StateDone {
			t.Fatalf("probe job for %s: %s (%s)", strategy, st.State, st.Error)
		}
		got := fetch(t, base+"/api/v1/jobs/"+id+"?view=profile")
		want := refProfile(t, server.Spec{Workload: "blackscholes", Strategy: strategy, Iters: 6})
		if !bytes.Equal(got, want) {
			t.Errorf("strategy %s: profile after resume differs from uninterrupted reference", strategy)
		}
	}
}

// waitMetric polls /metrics until ok returns true.
func waitMetric(t *testing.T, base string, timeout time.Duration, ok func(server.MetricsSnapshot) bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		var m server.MetricsSnapshot
		if err := json.Unmarshal(fetch(t, base+"/metrics"), &m); err == nil && ok(m) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("metric condition never became true")
}

// TestJournalDisabledStartsClean checks -journal=false still boots and
// serves (no WAL, no recovery).
func TestJournalDisabledStartsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a real daemon process")
	}
	bin := buildDaemon(t)
	addr := freeAddr(t)
	base := "http://" + addr
	daemon := startDaemon(t, bin, addr, t.TempDir(), "-journal=false")
	defer func() {
		daemon.Process.Signal(syscall.SIGTERM)
		daemon.Wait()
	}()
	waitHealthy(t, base)
	id := submit(t, base, `{"workload":"blackscholes","strategy":"baseline","iters":1}`)
	if st := pollTerminal(t, base, id, 60*time.Second); st.State != server.StateDone {
		t.Fatalf("job %s: %s (%s)", id, st.State, st.Error)
	}
}

// buildDaemon compiles numad once per test binary run.
func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "numad")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build numad: %v\n%s", err, out)
	}
	return bin
}

func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

func startDaemon(t *testing.T, bin, addr, dir string, extra ...string) *exec.Cmd {
	t.Helper()
	args := append([]string{"-addr", addr, "-dir", dir, "-workers", "1", "-log-level", "warn"}, extra...)
	cmd := exec.Command(bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	return cmd
}

func waitHealthy(t *testing.T, base string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatal("daemon never became healthy")
}

func submit(t *testing.T, base, spec string) string {
	t.Helper()
	resp, err := http.Post(base+"/api/v1/jobs", "application/json", bytes.NewBufferString(spec))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit %s: HTTP %d: %s", spec, resp.StatusCode, body)
	}
	var st server.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	return st.ID
}

func pollTerminal(t *testing.T, base, id string, timeout time.Duration) server.JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	var st server.JobStatus
	for {
		if err := json.Unmarshal(fetch(t, base+"/api/v1/jobs/"+id), &st); err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		select {
		case <-ctx.Done():
			t.Fatalf("job %s stuck in %s", id, st.State)
		case <-time.After(25 * time.Millisecond):
		}
	}
}

func fetch(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d: %s", url, resp.StatusCode, body)
	}
	return body
}

// refProfile computes a spec's measurement bytes locally over the same
// Build + Analyze + Save path the CLI's -profile flag uses.
func refProfile(t *testing.T, spec server.Spec) []byte {
	t.Helper()
	cfg, app, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Analyze(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := profio.Save(&buf, p); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
