// Command numad is the profiling service daemon: the hpcrun → hpcprof
// → hpcviewer pipeline of the paper, run as a long-lived HTTP service
// instead of a batch tool. Clients POST job specs, numad executes them
// on a bounded worker pool, persists every profile in a
// content-addressed store (identical specs are served from cache), and
// serves status, text/HTML reports, raw measurement files, profile
// diffs, and operational metrics.
//
// Example session:
//
//	numad -addr :7077 -dir /var/lib/numad &
//	curl -s -X POST localhost:7077/api/v1/jobs \
//	     -d '{"workload":"lulesh","strategy":"baseline"}'
//	curl -s localhost:7077/api/v1/jobs/job-000001
//	curl -s 'localhost:7077/api/v1/jobs/job-000001?view=text'
//	curl -s localhost:7077/metrics
//
// Logging is structured (log/slog); -log-level (or $NUMAPROF_LOG)
// tunes it, including per-component: -log-level warn,server=debug.
// -debug-addr serves net/http/pprof on a separate listener, kept off
// the API address so operational profiling is never exposed to API
// clients by accident.
//
// SIGINT/SIGTERM shut the daemon down gracefully: new submissions get
// 503, the queued backlog runs to completion (bounded by
// -drain-timeout), and the store is flushed before exit.
//
// Durability: unless -journal=false, every job state transition is
// written ahead to <dir>/journal.numadlog. On startup the journal is
// replayed — finished jobs reappear terminal, interrupted ones are
// re-enqueued and resume from their per-cell checkpoints — so a crash
// (power cut, OOM kill, SIGKILL) never loses acknowledged work.
// Unparseable journal lines are quarantined to a side file, never
// silently dropped.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// config is the daemon's parsed command line.
type config struct {
	addr         string
	debugAddr    string
	dir          string
	workers      int
	queueDepth   int
	cacheEntries int
	jobTimeout   time.Duration
	drainTimeout time.Duration
	top          int
	journal      bool
	retries      int
	snapEvery    int
	ckptEvery    int
	autotune     bool
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", ":7077", "listen address")
	flag.StringVar(&cfg.dir, "dir", "numad-data", "profile store directory")
	flag.IntVar(&cfg.workers, "workers", sched.Workers(), "worker pool size (concurrent profiling jobs)")
	flag.IntVar(&cfg.queueDepth, "queue", server.DefaultQueueDepth, "job queue bound; a full queue returns 429")
	flag.IntVar(&cfg.cacheEntries, "cache", store.DefaultCacheEntries, "decoded-profile LRU entries (negative: disable)")
	flag.DurationVar(&cfg.jobTimeout, "job-timeout", 0, "per-job deadline from submission (0: none); also arms deadline-aware load shedding")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "how long shutdown waits for the backlog before cancelling it")
	flag.IntVar(&cfg.top, "top", 5, "variables the text/HTML views detail")
	flag.BoolVar(&cfg.journal, "journal", true, "write-ahead job journal in the store directory, replayed on startup to recover interrupted jobs")
	flag.IntVar(&cfg.retries, "retries", 0, "transient-failure retries per job (0: default 3; negative: disable)")
	flag.IntVar(&cfg.snapEvery, "snapshot-every", 0,
		"publish a live progress snapshot every N profiling epochs to /api/v1/jobs/{id}/events (0: lifecycle events only)")
	flag.IntVar(&cfg.ckptEvery, "checkpoint-every", 0,
		"persist a resumable mid-cell checkpoint every N profiling epochs; after a crash the cell resumes from its latest checkpoint (0: off)")
	flag.BoolVar(&cfg.autotune, "autotune", false,
		"seed snapshot/checkpoint cadences per workload from recorded convergence history when not set explicitly")
	logLevel := flag.String("log-level", "",
		"log level spec, e.g. info or warn,server=debug (overrides $"+telemetry.LogEnvVar+")")
	flag.StringVar(&cfg.debugAddr, "debug-addr", "",
		"serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	flag.Parse()

	if *logLevel != "" {
		if err := telemetry.SetLogSpec(*logLevel); err != nil {
			fmt.Fprintln(os.Stderr, "numad:", err)
			os.Exit(1)
		}
	}

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "numad:", err)
		os.Exit(1)
	}
}

// debugHandler is the self-profiling mux: the standard pprof index and
// its profile endpoints (heap, goroutine, profile, trace, ...).
func debugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// recoverJournal replays <dir>/journal.numadlog: quarantined lines are
// preserved to the side file, the journal is compacted to its terminal
// records, and a fresh append handle continuing the sequence is
// returned with the recovery for server.Recover.
func recoverJournal(dir string, logger *slog.Logger) (*store.Journal, *store.RecoveredJournal, error) {
	jpath := filepath.Join(dir, store.JournalName)
	rec, err := store.RecoverJournal(jpath)
	if err != nil {
		return nil, nil, err
	}
	if n := len(rec.Quarantined); n > 0 {
		qpath := filepath.Join(dir, store.QuarantineName)
		logger.Warn("journal damage quarantined", "records", n, "file", qpath)
		if err := store.AppendQuarantine(qpath, rec.Quarantined); err != nil {
			return nil, nil, fmt.Errorf("quarantine journal damage: %w", err)
		}
	}
	if err := store.CompactJournal(jpath, rec); err != nil {
		return nil, nil, err
	}
	jl, err := store.OpenJournal(jpath, rec.MaxSeq)
	if err != nil {
		return nil, nil, err
	}
	return jl, rec, nil
}

func run(cfg config) error {
	logger := telemetry.Logger("numad")
	st, err := store.Open(cfg.dir, cfg.cacheEntries)
	if err != nil {
		return err
	}
	var (
		jl  *store.Journal
		rec *store.RecoveredJournal
	)
	if cfg.journal {
		if jl, rec, err = recoverJournal(cfg.dir, logger); err != nil {
			return err
		}
		defer jl.Close()
	}
	srv, err := server.New(server.Options{
		Store:           st,
		Workers:         cfg.workers,
		QueueDepth:      cfg.queueDepth,
		JobTimeout:      cfg.jobTimeout,
		TopVars:         cfg.top,
		Journal:         jl,
		MaxRetries:      cfg.retries,
		SnapshotEvery:   cfg.snapEvery,
		CheckpointEvery: cfg.ckptEvery,
		Autotune:        cfg.autotune,
	})
	if err != nil {
		return err
	}
	if rec != nil && len(rec.Jobs) > 0 {
		if err := srv.Recover(rec); err != nil {
			return fmt.Errorf("recover journal: %w", err)
		}
		logger.Info("journal replayed", "jobs", len(rec.Jobs),
			"resumed", len(rec.NonTerminal()), "quarantined", len(rec.Quarantined))
	}
	srv.Start()

	httpSrv := &http.Server{Addr: cfg.addr, Handler: srv.Handler()}
	errc := make(chan error, 2)
	go func() {
		logger.Info("listening", "addr", cfg.addr, "store", cfg.dir,
			"workers", cfg.workers, "queue", cfg.queueDepth)
		errc <- httpSrv.ListenAndServe()
	}()

	var debugSrv *http.Server
	if cfg.debugAddr != "" {
		debugSrv = &http.Server{Addr: cfg.debugAddr, Handler: debugHandler()}
		go func() {
			logger.Info("pprof listening", "addr", cfg.debugAddr)
			if err := debugSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				errc <- fmt.Errorf("debug listener: %w", err)
			}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		logger.Info("signal received, draining", "signal", sig.String(), "timeout", cfg.drainTimeout.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	// Drain the job queue first: Shutdown immediately flips the server
	// to draining (new submissions get 503) and, once the backlog ends,
	// closes every live event stream with a terminal `shutdown` event.
	// Only then can httpSrv.Shutdown finish — it waits for active
	// connections, and SSE handlers hold theirs open until their hub
	// closes.
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("http shutdown", "err", err.Error())
	}
	if debugSrv != nil {
		debugSrv.Close()
	}
	logger.Info("drained, store flushed")
	return nil
}
