// Command numad is the profiling service daemon: the hpcrun → hpcprof
// → hpcviewer pipeline of the paper, run as a long-lived HTTP service
// instead of a batch tool. Clients POST job specs, numad executes them
// on a bounded worker pool, persists every profile in a
// content-addressed store (identical specs are served from cache), and
// serves status, text/HTML reports, raw measurement files, profile
// diffs, and operational metrics.
//
// Example session:
//
//	numad -addr :7077 -dir /var/lib/numad &
//	curl -s -X POST localhost:7077/api/v1/jobs \
//	     -d '{"workload":"lulesh","strategy":"baseline"}'
//	curl -s localhost:7077/api/v1/jobs/job-000001
//	curl -s 'localhost:7077/api/v1/jobs/job-000001?view=text'
//	curl -s localhost:7077/metrics
//
// Logging is structured (log/slog); -log-level (or $NUMAPROF_LOG)
// tunes it, including per-component: -log-level warn,server=debug.
// -debug-addr serves net/http/pprof on a separate listener, kept off
// the API address so operational profiling is never exposed to API
// clients by accident.
//
// SIGINT/SIGTERM shut the daemon down gracefully: new submissions get
// 503, the queued backlog runs to completion (bounded by
// -drain-timeout), and the store is flushed before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/store"
	"repro/internal/telemetry"
)

func main() {
	var (
		addr         = flag.String("addr", ":7077", "listen address")
		dir          = flag.String("dir", "numad-data", "profile store directory")
		workers      = flag.Int("workers", sched.Workers(), "worker pool size (concurrent profiling jobs)")
		queueDepth   = flag.Int("queue", server.DefaultQueueDepth, "job queue bound; a full queue returns 429")
		cacheEntries = flag.Int("cache", store.DefaultCacheEntries, "decoded-profile LRU entries (negative: disable)")
		jobTimeout   = flag.Duration("job-timeout", 0, "per-job deadline from submission (0: none)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for the backlog before cancelling it")
		top          = flag.Int("top", 5, "variables the text/HTML views detail")
		logLevel     = flag.String("log-level", "",
			"log level spec, e.g. info or warn,server=debug (overrides $"+telemetry.LogEnvVar+")")
		debugAddr = flag.String("debug-addr", "",
			"serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	)
	flag.Parse()

	if *logLevel != "" {
		if err := telemetry.SetLogSpec(*logLevel); err != nil {
			fmt.Fprintln(os.Stderr, "numad:", err)
			os.Exit(1)
		}
	}

	if err := run(*addr, *debugAddr, *dir, *workers, *queueDepth, *cacheEntries, *jobTimeout, *drainTimeout, *top); err != nil {
		fmt.Fprintln(os.Stderr, "numad:", err)
		os.Exit(1)
	}
}

// debugHandler is the self-profiling mux: the standard pprof index and
// its profile endpoints (heap, goroutine, profile, trace, ...).
func debugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func run(addr, debugAddr, dir string, workers, queueDepth, cacheEntries int, jobTimeout, drainTimeout time.Duration, top int) error {
	logger := telemetry.Logger("numad")
	st, err := store.Open(dir, cacheEntries)
	if err != nil {
		return err
	}
	srv, err := server.New(server.Options{
		Store:      st,
		Workers:    workers,
		QueueDepth: queueDepth,
		JobTimeout: jobTimeout,
		TopVars:    top,
	})
	if err != nil {
		return err
	}
	srv.Start()

	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}
	errc := make(chan error, 2)
	go func() {
		logger.Info("listening", "addr", addr, "store", dir,
			"workers", workers, "queue", queueDepth)
		errc <- httpSrv.ListenAndServe()
	}()

	var debugSrv *http.Server
	if debugAddr != "" {
		debugSrv = &http.Server{Addr: debugAddr, Handler: debugHandler()}
		go func() {
			logger.Info("pprof listening", "addr", debugAddr)
			if err := debugSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
				errc <- fmt.Errorf("debug listener: %w", err)
			}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		logger.Info("signal received, draining", "signal", sig.String(), "timeout", drainTimeout.String())
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Stop accepting connections first, then drain the job queue and
	// flush the store.
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Warn("http shutdown", "err", err.Error())
	}
	if debugSrv != nil {
		debugSrv.Close()
	}
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	logger.Info("drained, store flushed")
	return nil
}
