// Command numad is the profiling service daemon: the hpcrun → hpcprof
// → hpcviewer pipeline of the paper, run as a long-lived HTTP service
// instead of a batch tool. Clients POST job specs, numad executes them
// on a bounded worker pool, persists every profile in a
// content-addressed store (identical specs are served from cache), and
// serves status, text/HTML reports, raw measurement files, profile
// diffs, and operational metrics.
//
// Example session:
//
//	numad -addr :7077 -dir /var/lib/numad &
//	curl -s -X POST localhost:7077/api/v1/jobs \
//	     -d '{"workload":"lulesh","strategy":"baseline"}'
//	curl -s localhost:7077/api/v1/jobs/job-000001
//	curl -s 'localhost:7077/api/v1/jobs/job-000001?view=text'
//	curl -s localhost:7077/metrics
//
// SIGINT/SIGTERM shut the daemon down gracefully: new submissions get
// 503, the queued backlog runs to completion (bounded by
// -drain-timeout), and the store is flushed before exit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/sched"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	var (
		addr         = flag.String("addr", ":7077", "listen address")
		dir          = flag.String("dir", "numad-data", "profile store directory")
		workers      = flag.Int("workers", sched.Workers(), "worker pool size (concurrent profiling jobs)")
		queueDepth   = flag.Int("queue", server.DefaultQueueDepth, "job queue bound; a full queue returns 429")
		cacheEntries = flag.Int("cache", store.DefaultCacheEntries, "decoded-profile LRU entries (negative: disable)")
		jobTimeout   = flag.Duration("job-timeout", 0, "per-job deadline from submission (0: none)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for the backlog before cancelling it")
		top          = flag.Int("top", 5, "variables the text/HTML views detail")
	)
	flag.Parse()

	if err := run(*addr, *dir, *workers, *queueDepth, *cacheEntries, *jobTimeout, *drainTimeout, *top); err != nil {
		fmt.Fprintln(os.Stderr, "numad:", err)
		os.Exit(1)
	}
}

func run(addr, dir string, workers, queueDepth, cacheEntries int, jobTimeout, drainTimeout time.Duration, top int) error {
	st, err := store.Open(dir, cacheEntries)
	if err != nil {
		return err
	}
	srv, err := server.New(server.Options{
		Store:      st,
		Workers:    workers,
		QueueDepth: queueDepth,
		JobTimeout: jobTimeout,
		TopVars:    top,
	})
	if err != nil {
		return err
	}
	srv.Start()

	httpSrv := &http.Server{Addr: addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		log.Printf("numad: listening on %s (store %s, %d workers, queue %d)",
			addr, dir, workers, queueDepth)
		errc <- httpSrv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("numad: %s: draining (timeout %s)", sig, drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Stop accepting connections first, then drain the job queue and
	// flush the store.
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("numad: http shutdown: %v", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	log.Printf("numad: drained, store flushed")
	return nil
}
