// Command numabench regenerates every table and figure of the paper's
// evaluation on the simulated substrate and prints measured values next
// to the paper's reported numbers.
//
// Run everything:
//
//	numabench
//
// Run selected artifacts:
//
//	numabench -run T1,T2
//	numabench -run F3,F45,F89,F10
//	numabench -run S1,S2,S3,S4
//
// Fan the independent experiment cells (and the artifacts themselves)
// out across worker goroutines; the printed report is byte-identical
// to the serial run, only faster:
//
//	numabench -parallel 8
//	numabench -parallel 1   # today's serial path
//
// Ids: T1 T2 (tables), F1 F2 F3 F45 F89 F10 (figures), S1-S4 (the
// Section 8 speedups: LULESH, AMG2006, Blackscholes, UMT2013),
// A1-A4 (design-choice ablations: sampling period, binning,
// contention model, scheduling), RB (the robustness scorecard:
// graceful degradation under injected sampler and file faults), RC
// (the recovery scorecard: crash recovery, sweep checkpoint resume,
// transparent retries, circuit breaking), SC (the reproduction
// scorecard), and OPT (the optimizer scorecard: the closed-loop
// advisor autonomously recovering the Section 8 fixes).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/sched"
	"repro/internal/telemetry"
)

type artifact struct {
	id    string
	title string
	run   func(iters int) (string, error)
}

func artifacts() []artifact {
	return []artifact{
		{"T1", "Table 1: sampling-mechanism configurations", func(int) (string, error) {
			return experiments.RenderTable1(experiments.Table1()), nil
		}},
		{"T2", "Table 2: monitoring overhead", func(iters int) (string, error) {
			t, err := experiments.RunTable2(iters)
			if err != nil {
				return "", err
			}
			return t.Render(), nil
		}},
		{"F1", "Figure 1: three data distributions", func(int) (string, error) {
			r, err := experiments.RunFigure1()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"F2", "Figure 2: first-touch trapping", func(int) (string, error) {
			r, err := experiments.RunFigure2()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"F3", "Figure 3 / Section 8.1: LULESH case study", func(iters int) (string, error) {
			r, err := experiments.RunFigure3(iters)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"F45", "Figures 4-7 / Section 8.2: AMG2006 patterns", func(iters int) (string, error) {
			r, err := experiments.RunFigures47(iters)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"F89", "Figures 8-9 / Section 8.3: Blackscholes layouts", func(int) (string, error) {
			r, err := experiments.RunFigures89(0)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"F10", "Figure 10 / Section 8.4: UMT2013 under MRK", func(int) (string, error) {
			r, err := experiments.RunFigure10(0)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"S1", "Section 8.1 speedups: LULESH (both machines)", func(iters int) (string, error) {
			amd, p7, err := experiments.RunSpeedupLULESH(iters)
			if err != nil {
				return "", err
			}
			return amd.Render() + p7.Render(), nil
		}},
		{"S2", "Section 8.2 speedups: AMG2006 solver phase", func(iters int) (string, error) {
			r, err := experiments.RunSpeedupAMG(iters)
			if err != nil {
				return "", err
			}
			out := r.Render()
			out += fmt.Sprintf("  solver-time reduction: guided %.0f%% (paper 51%%), interleave-all %.0f%% (paper 36%%)\n",
				100*r.Reduction("guided"), 100*r.Reduction("interleave"))
			return out, nil
		}},
		{"S3", "Section 8.3 speedups: Blackscholes (negative control)", func(int) (string, error) {
			r, err := experiments.RunSpeedupBlackscholes(0)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"S4", "Section 8.4 speedups: UMT2013", func(int) (string, error) {
			r, err := experiments.RunSpeedupUMT(0)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"A1", "Ablation: sampling-period sensitivity of lpi_NUMA", func(int) (string, error) {
			r, err := experiments.RunAblationPeriod()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"A2", "Ablation: variable binning resolution", func(int) (string, error) {
			r, err := experiments.RunAblationBins()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"A3", "Ablation: contention model vs optimisation payoffs", func(int) (string, error) {
			r, err := experiments.RunAblationContention()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"A4", "Ablation: placement under static vs dynamic scheduling", func(int) (string, error) {
			r, err := experiments.RunAblationDynamic()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"RB", "Robustness scorecard: graceful degradation under injected faults", func(iters int) (string, error) {
			r, err := experiments.RunRobustness(iters)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"RC", "Recovery scorecard: durability under crashes, retries, breaker", func(iters int) (string, error) {
			r, err := experiments.RunRecovery(iters)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"SC", "Reproduction scorecard: every paper-shape claim, checked", func(iters int) (string, error) {
			r, err := experiments.RunScorecard(iters)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"OPT", "Optimizer scorecard: autonomous recovery of the case-study fixes", func(iters int) (string, error) {
			r, err := experiments.RunOptimizer(iters)
			if err != nil {
				return "", err
			}
			out := r.Render()
			if !r.Scorecard.AllPass() {
				return out, fmt.Errorf("optimizer scorecard: %d/%d claims failed",
					len(r.Scorecard.Claims)-r.Scorecard.Passed(), len(r.Scorecard.Claims))
			}
			return out, nil
		}},
	}
}

func main() {
	var (
		runList  = flag.String("run", "", "comma-separated artifact ids (empty: all)")
		iters    = flag.Int("iters", 0, "workload iterations for the heavy runs (0: defaults)")
		mdOut    = flag.String("out", "", "also write the results as a markdown report to this path")
		parallel = flag.Int("parallel", sched.Workers(),
			"worker goroutines for experiment cells and artifacts (1: today's serial path; results are identical either way)")
		telemetryDir = flag.String("telemetry", "",
			"self-profile the run: write "+telemetry.TraceFile+" (chrome://tracing), "+
				telemetry.SpanFile+" and "+telemetry.MetricsFile+" to this directory and print a per-phase summary")
		benchJSON = flag.String("bench-json", "",
			"run the hot-path micro-suite plus the Table 2 sweep and write the schema-stable report (BENCH_*.json) to this path")
		benchGate = flag.String("bench-gate", "",
			"run the micro-suite and compare benchstat-style against this committed baseline report, exiting non-zero on regression")
	)
	flag.Parse()
	sched.SetWorkers(*parallel)

	want := map[string]bool{}
	if *runList != "" {
		for _, id := range strings.Split(*runList, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}

	// exit finalizes telemetry (when -telemetry armed it) before leaving:
	// every path below must go through it rather than os.Exit directly.
	ctx := context.Background()
	exit := func(code int) { os.Exit(code) }
	if *telemetryDir != "" {
		tr := telemetry.NewTracer(telemetry.WithAllocTracking())
		telemetry.SetTracer(tr)
		var root *telemetry.Span
		ctx, root = telemetry.Start(ctx, "numabench.run",
			telemetry.String("run", *runList))
		dir := *telemetryDir
		exit = func(code int) {
			root.End()
			telemetry.SetTracer(nil)
			if err := telemetry.Dump(dir, tr, telemetry.Default); err != nil {
				fmt.Fprintln(os.Stderr, "numabench:", err)
				if code == 0 {
					code = 1
				}
			} else {
				fmt.Printf("\ntelemetry written to %s (%s, %s, %s)\n",
					dir, telemetry.TraceFile, telemetry.SpanFile, telemetry.MetricsFile)
				fmt.Print(tr.Summary())
			}
			os.Exit(code)
		}
	}

	// Bench mode replaces the artifact sweep entirely: -bench-json writes
	// a fresh report (micro-suite + Table 2), -bench-gate compares a
	// fresh micro-suite run against a committed baseline. Both may be
	// combined; the same fresh run feeds both outputs.
	if *benchJSON != "" || *benchGate != "" {
		opts := experiments.BenchOptions{}
		if *benchJSON != "" {
			opts.RunTable2 = true
			opts.Table2Iters = *iters
		}
		rep, err := experiments.RunBench(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "numabench:", err)
			exit(1)
		}
		if *benchJSON != "" {
			data, err := json.MarshalIndent(rep, "", "  ")
			if err != nil {
				fmt.Fprintln(os.Stderr, "numabench:", err)
				exit(1)
			}
			data = append(data, '\n')
			if err := os.WriteFile(*benchJSON, data, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "numabench:", err)
				exit(1)
			}
			fmt.Printf("bench report written to %s\n", *benchJSON)
		}
		if *benchGate != "" {
			data, err := os.ReadFile(*benchGate)
			if err != nil {
				fmt.Fprintln(os.Stderr, "numabench:", err)
				exit(1)
			}
			var baseline experiments.BenchReport
			if err := json.Unmarshal(data, &baseline); err != nil {
				fmt.Fprintf(os.Stderr, "numabench: baseline %s: %v\n", *benchGate, err)
				exit(1)
			}
			deltas, err := experiments.CompareBench(&baseline, rep)
			if err != nil {
				fmt.Fprintln(os.Stderr, "numabench:", err)
				exit(1)
			}
			fmt.Print(experiments.RenderBenchDeltas(deltas))
			if err := experiments.GateBench(deltas, experiments.BenchGateThreshold); err != nil {
				fmt.Fprintln(os.Stderr, "numabench:", err)
				exit(1)
			}
			fmt.Printf("bench gate: ok (all %d benchmarks within %.0f%% of baseline)\n",
				len(deltas), 100*experiments.BenchGateThreshold)
		}
		exit(0)
	}

	var md strings.Builder
	if *mdOut != "" {
		md.WriteString("# NUMA-profiler reproduction results\n\n")
		md.WriteString("Generated by `numabench`. Measured values appear next to the\n")
		md.WriteString("paper's reported numbers where the paper reports them.\n\n")
	}

	var selected []artifact
	for _, a := range artifacts() {
		if len(want) > 0 && !want[a.id] {
			continue
		}
		selected = append(selected, a)
	}

	// The artifacts themselves are independent, so they too go through
	// the scheduler. With -parallel 1 this streams each artifact's
	// output as it completes, exactly as before; with more workers the
	// outputs are buffered and printed afterwards in the same fixed
	// order, so the report is byte-identical.
	type outcome struct {
		out     string
		elapsed time.Duration
	}
	streaming := sched.Workers() <= 1
	results, runErr := sched.MapCtx(ctx, len(selected), func(ctx context.Context, i int) (outcome, error) {
		a := selected[i]
		start := time.Now()
		if streaming {
			fmt.Printf("=== %s — %s ===\n", a.id, a.title)
		}
		_, done := telemetry.Timed(ctx, "numabench.artifact", telemetry.String("id", a.id))
		defer done()
		out, err := a.run(*iters)
		if err != nil {
			return outcome{}, fmt.Errorf("%s failed: %w", a.id, err)
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		if streaming {
			fmt.Print(out)
			fmt.Printf("(%s in %v)\n\n", a.id, elapsed)
		}
		return outcome{out: out, elapsed: elapsed}, nil
	})

	failed := false
	failedIDs := map[int]bool{}
	if runErr != nil {
		failed = true
		if sweep, ok := sched.AsSweep(runErr); ok {
			for _, ce := range sweep.Cells {
				fmt.Fprintln(os.Stderr, ce.Err)
				failedIDs[ce.Index] = true
			}
		} else {
			fmt.Fprintln(os.Stderr, runErr)
		}
	}
	for i, a := range selected {
		if failedIDs[i] {
			continue
		}
		r := results[i]
		if !streaming {
			fmt.Printf("=== %s — %s ===\n", a.id, a.title)
			fmt.Print(r.out)
			fmt.Printf("(%s in %v)\n\n", a.id, r.elapsed)
		}
		if *mdOut != "" {
			fmt.Fprintf(&md, "## %s — %s\n\n```\n%s```\n\n_(completed in %v)_\n\n",
				a.id, a.title, r.out, r.elapsed)
		}
	}
	if *mdOut != "" && !failed {
		if err := os.WriteFile(*mdOut, []byte(md.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "numabench:", err)
			failed = true
		} else {
			fmt.Printf("markdown report written to %s\n", *mdOut)
		}
	}
	if failed {
		exit(1)
	}
	exit(0)
}
