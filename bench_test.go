// Package repro's root benchmarks regenerate every table and figure of
// the paper (one benchmark per artifact, named after the DESIGN.md
// experiment index) and report the headline measured values as custom
// benchmark metrics so `go test -bench=.` doubles as the reproduction
// harness:
//
//	BenchmarkTable2Overhead          ibs_lulesh_pct  soft_ibs_lulesh_pct ...
//	BenchmarkSpeedupLULESH           amd_block_pct   p7_interleave_pct ...
//
// Micro-benchmarks for the substrate layers (cache, vm, engine, CCT)
// live at the bottom.
package repro

import (
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/cct"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/proc"
	"repro/internal/sched"
	"repro/internal/topology"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// T1: Table 1 — the configuration matrix is static; benchmark its
// generation and assert coverage.
func BenchmarkTable1Mechanisms(b *testing.B) {
	var rows []experiments.Table1Row
	for i := 0; i < b.N; i++ {
		rows = experiments.Table1()
	}
	if len(rows) != 6 {
		b.Fatalf("table 1 rows = %d", len(rows))
	}
	b.ReportMetric(float64(len(rows)), "mechanisms")
}

// T2: Table 2 — monitoring overhead per mechanism per benchmark.
func BenchmarkTable2Overhead(b *testing.B) {
	var tbl *experiments.Table2
	for i := 0; i < b.N; i++ {
		var err error
		tbl, err = experiments.RunTable2(2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*tbl.Overhead("IBS", "LULESH"), "ibs_lulesh_pct")
	b.ReportMetric(100*tbl.Overhead("PEBS", "LULESH"), "pebs_lulesh_pct")
	b.ReportMetric(100*tbl.Overhead("Soft-IBS", "LULESH"), "softibs_lulesh_pct")
	b.ReportMetric(100*tbl.Overhead("MRK", "AMG2006"), "mrk_amg_pct")
	b.ReportMetric(100*tbl.Overhead("PEBS-LL", "Blackscholes"), "pebsll_bs_pct")
}

// F1: Figure 1 — the three data distributions.
func BenchmarkFigure1Distributions(b *testing.B) {
	var res *experiments.Figure1Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFigure1()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.Rows[1].Speedup, "interleave_pct")
	b.ReportMetric(100*res.Rows[2].Speedup, "colocated_pct")
	b.ReportMetric(res.Rows[0].Imbalance, "centralised_imbalance")
}

// F2: Figure 2 — first-touch trapping.
func BenchmarkFigure2FirstTouch(b *testing.B) {
	var res *experiments.Figure2Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFigure2()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(res.Events)), "trapped_pages")
}

// F3: Figure 3 — the LULESH case study (paper lpi 0.466, M_r ~ 7x M_l).
func BenchmarkFigure3LULESH(b *testing.B) {
	var res *experiments.Figure3Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFigure3(3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.LPI, "lpi")
	b.ReportMetric(res.ZMrOverMl, "z_mr_over_ml")
	b.ReportMetric(100*res.NodelistRemoteShare, "nodelist_rlat_pct")
	b.ReportMetric(boolMetric(res.ZStaircase), "z_staircase")
}

// F4-F7: AMG2006 whole-program vs region-scoped patterns (paper region
// latency shares 74.2% and 73.6%).
func BenchmarkFigures47AMG(b *testing.B) {
	var res *experiments.Figures45Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFigures47(4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.LPI, "lpi")
	b.ReportMetric(100*res.Data.RegionLatShare, "data_region_share_pct")
	b.ReportMetric(boolMetric(res.Data.RegionStaircase && !res.Data.WholeStaircase), "data_contrast")
	b.ReportMetric(boolMetric(res.J.RegionStaircase && !res.J.WholeStaircase), "j_contrast")
}

// F8-F9: Blackscholes layouts (paper lpi 0.035, below threshold).
func BenchmarkFigures89Blackscholes(b *testing.B) {
	var res *experiments.Figures89Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFigures89(0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.LPI, "lpi_exact")
	b.ReportMetric(boolMetric(!res.Significant), "below_threshold")
	b.ReportMetric(res.SoAOverlap, "soa_overlap")
	b.ReportMetric(boolMetric(res.AoSStaircase), "aos_disjoint")
}

// F10: UMT2013 under MRK (paper: 86% of L3 misses remote).
func BenchmarkFigure10UMT(b *testing.B) {
	var res *experiments.Figure10Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunFigure10(6)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.RemoteMissFraction, "remote_miss_pct")
	b.ReportMetric(boolMetric(res.Staggered), "staggered")
}

// S1: LULESH speedups (paper: AMD +25% block / +13% interleave;
// POWER7 +7.5% block / -16.4% interleave).
func BenchmarkSpeedupLULESH(b *testing.B) {
	var amd, p7 *experiments.SpeedupResult
	for i := 0; i < b.N; i++ {
		var err error
		amd, p7, err = experiments.RunSpeedupLULESH(4)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*amd.Speedup(workloads.BlockWise), "amd_block_pct")
	b.ReportMetric(100*amd.Speedup(workloads.Interleave), "amd_interleave_pct")
	b.ReportMetric(100*p7.Speedup(workloads.BlockWise), "p7_block_pct")
	b.ReportMetric(100*p7.Speedup(workloads.Interleave), "p7_interleave_pct")
}

// S2: AMG2006 solver reductions (paper: 51% guided vs 36% interleave).
func BenchmarkSpeedupAMG(b *testing.B) {
	var res *experiments.SpeedupResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunSpeedupAMG(5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.Reduction(workloads.Guided), "guided_reduction_pct")
	b.ReportMetric(100*res.Reduction(workloads.Interleave), "interleave_reduction_pct")
}

// S3: Blackscholes (paper: < 0.1% — the negative control).
func BenchmarkSpeedupBlackscholes(b *testing.B) {
	var res *experiments.SpeedupResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunSpeedupBlackscholes(0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.Speedup(workloads.ParallelInit), "fix_pct")
}

// S4: UMT2013 (paper: +7%).
func BenchmarkSpeedupUMT(b *testing.B) {
	var res *experiments.SpeedupResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunSpeedupUMT(0)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.Speedup(workloads.ParallelInit), "fix_pct")
}

// A1-A3: design-choice ablations.

func BenchmarkAblationPeriod(b *testing.B) {
	var res *experiments.AblationPeriodResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunAblationPeriod()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Rows[0].Ratio, "dense_ratio")
	b.ReportMetric(res.Rows[len(res.Rows)-1].Ratio, "sparse_ratio")
}

func BenchmarkAblationBins(b *testing.B) {
	var res *experiments.AblationBinsResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunAblationBins()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.Rows[1].HotBinShare, "five_bin_hot_share_pct")
	b.ReportMetric(100*res.Rows[1].HotBinExtent, "five_bin_extent_pct")
}

func BenchmarkAblationContention(b *testing.B) {
	var res *experiments.AblationContentionResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunAblationContention()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.Rows[0].InterleaveSpeedup, "interleave_nocontention_pct")
	b.ReportMetric(100*res.Rows[2].InterleaveSpeedup, "interleave_full_pct")
}

func BenchmarkAblationDynamic(b *testing.B) {
	var res *experiments.AblationDynamicResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.RunAblationDynamic()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.Speedup("static", "block-wise"), "static_block_pct")
	b.ReportMetric(100*res.Speedup("dynamic", "interleaved"), "dynamic_interleave_pct")
}

// --- scheduler benchmarks ---

// benchSweepPair times the same sweep at 1 worker and at the session's
// default worker count, and reports the wall-clock ratio as speedup_x.
// On a single-CPU runner the ratio hovers around 1; on the 4-core CI
// machine the Table 2 sweep's 30 independent cells should clear 2x.
func benchSweepPair(b *testing.B, run func() error) {
	b.Helper()
	prev := sched.SetWorkers(1)
	defer sched.SetWorkers(prev)
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if err := run(); err != nil {
			b.Fatal(err)
		}
	}
	serial := time.Since(start)

	sched.SetWorkers(0) // back to the default (env override or GOMAXPROCS)
	workers := sched.Workers()
	start = time.Now()
	for i := 0; i < b.N; i++ {
		if err := run(); err != nil {
			b.Fatal(err)
		}
	}
	parallel := time.Since(start)

	b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup_x")
	b.ReportMetric(float64(workers), "workers")
}

// BenchmarkParallelSweep is the acceptance benchmark for the scheduler:
// the full Table 2 sweep (6 mechanisms x 5 workloads, each cell a
// base+monitored run pair) serial vs parallel.
func BenchmarkParallelSweep(b *testing.B) {
	benchSweepPair(b, func() error {
		_, err := experiments.RunTable2(2)
		return err
	})
}

// BenchmarkParallelAblations covers a second sweep shape: the 9-cell
// contention ablation (3 fabric capacities x 3 placement strategies).
func BenchmarkParallelAblations(b *testing.B) {
	benchSweepPair(b, func() error {
		_, err := experiments.RunAblationContention()
		return err
	})
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// --- substrate micro-benchmarks ---

func benchMachine() *topology.Machine {
	return topology.New(topology.Config{
		Name: "bench", NumDomains: 4, CPUsPerDomain: 2,
		MemoryPerDomain: 1 << 30,
	})
}

// BenchmarkCacheAccess measures the hierarchy's per-access cost.
func BenchmarkCacheAccess(b *testing.B) {
	h := cache.NewHierarchy(benchMachine(), cache.DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(0, uint64(i)*64, 0)
	}
}

// BenchmarkVMTouch measures page resolution with first-touch homing.
func BenchmarkVMTouch(b *testing.B) {
	as := vm.NewAddressSpace(benchMachine())
	r := as.Alloc(1<<30, vm.FirstTouch{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		as.Touch(r.Base+uint64(i%(1<<20))*64, false, 0)
	}
}

// BenchmarkEngineAccess measures the full simulated-access pipeline
// (vm + cache + latency + accounting) without monitoring.
func BenchmarkEngineAccess(b *testing.B) {
	prog := isa.NewProgram("bench")
	fn := prog.AddFunc("f", "f.c", 1)
	site := prog.AddSite(fn, 2, isa.KindLoad)
	e := proc.NewEngine(proc.Config{Machine: benchMachine(), Program: prog})
	c := e.Ctx(0)
	e.BeginRegion("bench", e.Threads())
	r := c.Alloc(site, "a", 1<<26, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Load(site, r.Base+uint64(i%(1<<18))*64)
	}
}

// BenchmarkProfiledAccess measures the same pipeline with the full
// profiler and IBS monitoring attached — the simulator-side analog of
// Table 2's monitoring overhead.
func BenchmarkProfiledAccess(b *testing.B) {
	app := &benchApp{n: b.N}
	prog := app.Binary()
	_ = prog
	cfg := core.Config{Machine: benchMachine(), Mechanism: "IBS", Period: 1024}
	b.ResetTimer()
	if _, err := core.Analyze(cfg, app); err != nil {
		b.Fatal(err)
	}
}

type benchApp struct {
	n    int
	prog *isa.Program
	fn   isa.FuncID
	site isa.SiteID
}

func (a *benchApp) Name() string { return "bench" }

func (a *benchApp) Binary() *isa.Program {
	if a.prog == nil {
		a.prog = isa.NewProgram("bench")
		a.fn = a.prog.AddFunc("f", "f.c", 1)
		a.site = a.prog.AddSite(a.fn, 2, isa.KindLoad)
	}
	return a.prog
}

func (a *benchApp) Run(e *proc.Engine) {
	c := e.Ctx(0)
	e.BeginRegion("bench", e.Threads())
	r := c.Alloc(a.site, "a", 1<<26, nil)
	for i := 0; i < a.n; i++ {
		c.Load(a.site, r.Base+uint64(i%(1<<18))*64)
	}
	e.EndRegion()
}

// BenchmarkCCTMerge measures the hpcprof-style profile merge.
func BenchmarkCCTMerge(b *testing.B) {
	src := cct.New()
	for f := 0; f < 32; f++ {
		for s := 0; s < 16; s++ {
			n := src.Root().InsertPath([]cct.Key{
				cct.FrameKey(isa.FuncID(f), 0),
				cct.SiteKey(isa.SiteID(s)),
			})
			n.AddMetric(metrics.Samples, 1)
			n.ExtendRange(f%8, uint64(s)*64)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst := cct.New()
		cct.MergeTrees(dst, src)
	}
}
