package repro

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/progress"
	"repro/internal/server"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// Sinks keep the probe loops observable so the compiler cannot delete
// them.
var (
	sinkEpoch int
	sinkHits  int
	sinkSnap  progress.Snapshot
)

// streamDisabledProbe is exactly the per-region cost of live streaming
// when core.Config.SnapshotEvery is 0: the counter increment and gate
// compare that OnRegionEnd added (the publisher never runs).
func streamDisabledProbe(every, n int) {
	for i := 0; i < n; i++ {
		sinkEpoch++
		if every > 0 && sinkEpoch%every == 0 {
			sinkHits++
		}
	}
}

// sinkCkptFn mirrors core.Config.OnCheckpoint for the disabled probe:
// the real gate nil-checks the callback before the cadence test.
var sinkCkptFn func()

// ckptDisabledProbe is exactly the per-region cost of mid-run
// checkpointing when core.Config.CheckpointEvery is 0: the gate
// compare, callback nil-check, and cadence test OnRegionEnd added
// (capture never runs).
func ckptDisabledProbe(every, n int) {
	for i := 0; i < n; i++ {
		sinkEpoch++
		if every > 0 && sinkCkptFn != nil && sinkEpoch%every == 0 {
			sinkHits++
		}
	}
}

// streamEnabledProbe models one snapshot publication at full cost:
// build a top-K snapshot (allocation, per-domain copy, hot-variable
// list), run the convergence detector, and publish through a hub to an
// attached tiny-buffered subscriber so the drop-oldest path is
// exercised too.
func streamEnabledProbe(hub *progress.Hub, det *progress.Detector, seq int) {
	s := progress.Snapshot{
		Seq:                 seq,
		Epoch:               seq,
		SimTime:             units.Cycles(seq * 1000),
		Samples:             float64(seq * 40),
		SampledInstructions: float64(seq * 400),
		Ml:                  float64(seq * 25),
		Mr:                  float64(seq * 15),
		RemoteFraction:      0.375,
		Imbalance:           1.2,
		PerDomain:           []float64{10, 10, 10, 10},
		LPI:                 0.03,
		LPIValid:            true,
	}
	for v := 0; v < 8; v++ {
		s.TopVars = append(s.TopVars, progress.VarEstimate{
			Name: "var", Kind: "heap", Samples: float64(40 - v),
			Ml: 20, Mr: 10, MrShare: 0.1, RemoteLatShare: 0.1, LPI: 0.2,
		})
	}
	det.Observe(&s)
	hub.Publish(progress.EventSnapshot, &s, nil)
	sinkSnap = s
}

// sweepEpochBudget measures how many epochs one Table 2 cell crosses
// (a lulesh run at the sweep's iteration count, observed at cadence 1)
// and scales to the whole 18-cell sweep with a 10x margin.
func sweepEpochBudget(t *testing.T) int {
	t.Helper()
	cfg, app, err := server.Spec{Workload: "lulesh", Iters: 2}.Build()
	if err != nil {
		t.Fatal(err)
	}
	epochs := 0
	cfg.SnapshotEvery = 1
	cfg.OnSnapshot = func(progress.Snapshot) { epochs++ }
	if _, err := core.Analyze(cfg, app); err != nil {
		t.Fatal(err)
	}
	if epochs < 2 {
		t.Fatalf("lulesh cell published only %d snapshots; the budget needs a real epoch count", epochs)
	}
	return epochs * 18 * 10
}

// TestDisabledTelemetryOverheadGuard enforces the zero-overhead-when-
// disabled contract on the BenchmarkParallelSweep workload (the full
// Table 2 sweep): with no tracer installed, snapshot streaming off,
// and checkpointing off, the total cost of every instrumentation site
// the sweep crosses — telemetry spans, the streaming epoch gate, AND
// the CheckpointEvery=0 gate — must stay under 2% of the sweep's wall
// time.
//
// A naive A/B timing of the sweep is noise-bound (the sweep itself
// varies by more than 2% run to run), so the guard measures the
// factors separately: the per-site cost of a disabled Timed call and
// the per-epoch cost of the disabled snapshot gate (tight loops,
// hundreds of thousands of iterations) times site/epoch counts an
// order of magnitude above what the sweep actually crosses (~200
// telemetry sites: one experiment span, 18 sched cells, and ~10
// pipeline spans and counter flushes per cell; epochs measured from a
// real cell), against the measured sweep time.
func TestDisabledTelemetryOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead guard runs a full Table 2 sweep")
	}
	if telemetry.Enabled() {
		t.Fatal("a process-default tracer is installed; the guard measures the disabled path")
	}

	ctx := context.Background()
	const probeIters = 200_000
	start := time.Now()
	for i := 0; i < probeIters; i++ {
		_, done := telemetry.Timed(ctx, "overhead.probe")
		done()
	}
	perSite := time.Since(start) / probeIters

	start = time.Now()
	streamDisabledProbe(0, probeIters)
	perEpoch := time.Since(start) / probeIters
	if perEpoch == 0 {
		perEpoch = time.Nanosecond // clock floor: charge a whole nanosecond
	}
	start = time.Now()
	ckptDisabledProbe(0, probeIters)
	perEpochCkpt := time.Since(start) / probeIters
	if perEpochCkpt == 0 {
		perEpochCkpt = time.Nanosecond
	}
	epochBudget := sweepEpochBudget(t)

	start = time.Now()
	if _, err := experiments.RunTable2(2); err != nil {
		t.Fatal(err)
	}
	sweep := time.Since(start)

	const sitesPerSweep = 2000 // ~10x the real count; see doc comment
	overhead := perSite*sitesPerSweep + (perEpoch+perEpochCkpt)*time.Duration(epochBudget)
	limit := sweep / 50 // 2%
	t.Logf("disabled site: %v/call × %d sites; disabled epoch gates: %v+%v/epoch × %d epochs; total %v; sweep %v (limit %v)",
		perSite, sitesPerSweep, perEpoch, perEpochCkpt, epochBudget, overhead, sweep, limit)
	if overhead > limit {
		t.Errorf("disabled instrumentation overhead %v exceeds 2%% of the %v sweep", overhead, sweep)
	}
}

// TestStreamingEnabledOverheadGuard bounds the live-streaming layer
// when it is actually on: snapshot capture at the tightest cadence
// (every epoch — stricter than any deployment default), with the
// convergence detector running and a slow subscriber attached, must
// stay under 5% of the Table 2 sweep's wall time. Same methodology as
// the disabled guard: per-snapshot probe × an inflated epoch budget,
// never an A/B diff.
func TestStreamingEnabledOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead guard runs a full Table 2 sweep")
	}

	hub := progress.NewHub()
	_, sub := hub.Subscribe(0, 1) // buf 1: drop-oldest fires on every publish
	defer sub.Close()
	var det progress.Detector
	const probeIters = 4096
	start := time.Now()
	for i := 0; i < probeIters; i++ {
		streamEnabledProbe(hub, &det, i+1)
	}
	perSnap := time.Since(start) / probeIters
	epochBudget := sweepEpochBudget(t)

	start = time.Now()
	if _, err := experiments.RunTable2(2); err != nil {
		t.Fatal(err)
	}
	sweep := time.Since(start)

	overhead := perSnap * time.Duration(epochBudget)
	limit := sweep / 20 // 5%
	t.Logf("enabled snapshot: %v/publish × %d epochs = %v; sweep %v (limit %v)",
		perSnap, epochBudget, overhead, sweep, limit)
	if overhead > limit {
		t.Errorf("enabled streaming overhead %v exceeds 5%% of the %v sweep (per-snapshot %v × %d epochs)",
			overhead, sweep, perSnap, epochBudget)
	}
}
