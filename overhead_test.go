package repro

import (
	"context"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/telemetry"
)

// TestDisabledTelemetryOverheadGuard enforces the zero-overhead-when-
// disabled contract on the BenchmarkParallelSweep workload (the full
// Table 2 sweep): with no tracer installed, the total cost of every
// instrumentation site the sweep crosses must stay under 2% of the
// sweep's wall time.
//
// A naive A/B timing of the sweep is noise-bound (the sweep itself
// varies by more than 2% run to run), so the guard measures the two
// factors separately: the per-site cost of a disabled Timed call
// (tight loop, hundreds of thousands of iterations) times a site
// count an order of magnitude above what the sweep actually crosses
// (~200: one experiment span, 18 sched cells, and ~10 pipeline spans
// and counter flushes per cell), against the measured sweep time.
func TestDisabledTelemetryOverheadGuard(t *testing.T) {
	if testing.Short() {
		t.Skip("overhead guard runs a full Table 2 sweep")
	}
	if telemetry.Enabled() {
		t.Fatal("a process-default tracer is installed; the guard measures the disabled path")
	}

	ctx := context.Background()
	const probeIters = 200_000
	start := time.Now()
	for i := 0; i < probeIters; i++ {
		_, done := telemetry.Timed(ctx, "overhead.probe")
		done()
	}
	perSite := time.Since(start) / probeIters

	start = time.Now()
	if _, err := experiments.RunTable2(2); err != nil {
		t.Fatal(err)
	}
	sweep := time.Since(start)

	const sitesPerSweep = 2000 // ~10x the real count; see doc comment
	overhead := perSite * sitesPerSweep
	limit := sweep / 50 // 2%
	t.Logf("disabled site: %v/call; budget %d sites = %v; sweep %v (limit %v)",
		perSite, sitesPerSweep, overhead, sweep, limit)
	if overhead > limit {
		t.Errorf("disabled-telemetry overhead %v exceeds 2%% of the %v sweep (per-site %v × %d sites)",
			overhead, sweep, perSite, sitesPerSweep)
	}
}
