// lulesh-tuning replays the paper's Section 8.1 workflow end to end:
//
//  1. profile LULESH under IBS on the Magny-Cours machine;
//
//  2. read the diagnosis: lpi_NUMA above the 0.1 threshold, z and
//     nodelist dominated by remote accesses all aimed at domain 0,
//     serial first touch, staircase access pattern;
//
//  3. apply the guided fix (block-wise page distribution at the first
//     touch) and the prior-work alternative (interleave everything);
//
//  4. re-measure and compare, on both the AMD and the POWER7 machine.
//
//     go run ./examples/lulesh-tuning
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/units"
	"repro/internal/view"
	"repro/internal/workloads"
)

func cfg(m *topology.Machine) core.Config {
	return core.Config{
		Machine:         m,
		Mechanism:       "IBS",
		TrackFirstTouch: true,
		CacheConfig:     workloads.TunedCacheConfig(),
		MemParams:       workloads.MemParamsFor(m),
		FabricParams:    workloads.FabricParamsFor(m),
	}
}

func roiTime(m *topology.Machine, s workloads.Strategy) units.Cycles {
	e, err := core.Run(cfg(m), workloads.NewLULESH(workloads.Params{Strategy: s}))
	if err != nil {
		log.Fatal(err)
	}
	return e.TimeSince(workloads.ROIMark)
}

func main() {
	amd := topology.MagnyCours48()

	fmt.Println("== Step 1: diagnose the baseline ==")
	prof, err := core.Analyze(cfg(amd), workloads.NewLULESH(workloads.Params{Iters: 4}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(view.Totals(prof))
	fmt.Println()
	fmt.Print(view.VarTable(prof, 7))

	zp, ok := prof.VarByName("z")
	if !ok {
		log.Fatal("z not profiled")
	}
	fmt.Println()
	fmt.Println("== Step 2: read the signatures the paper reads ==")
	fmt.Printf("z: M_r/M_l = %.1f (the paper's ~7x)\n", zp.Mr/zp.Ml)
	fmt.Printf("z: NUMA_NODE0 carries %.0f%% of accesses (all pages homed with the master)\n",
		100*zp.PerDomain[0]/(zp.Ml+zp.Mr))
	fmt.Print(view.FirstTouchReport(prof, zp))
	if v, ok := prof.Registry.Lookup("z"); ok {
		if pat, ok := prof.Patterns.Pattern(v, "CalcForceForNodes"); ok {
			fmt.Print(view.AddressCentric(pat, 48))
			fmt.Printf("staircase: %v -> divide z into %d continuous regions, one per domain\n",
				pat.IsStaircase(0.15), amd.NumDomains())
		}
	}

	fmt.Println()
	fmt.Println("== Step 3-4: apply fixes and re-measure ==")
	for _, m := range []*topology.Machine{amd, topology.Power7x128()} {
		base := roiTime(m, workloads.Baseline)
		block := roiTime(m, workloads.BlockWise)
		inter := roiTime(m, workloads.Interleave)
		fmt.Printf("%s:\n", m.Name)
		fmt.Printf("  baseline   %12d cyc\n", base)
		fmt.Printf("  block-wise %12d cyc  %+6.1f%%  (paper: +25%% AMD, +7.5%% POWER7)\n",
			block, 100*(float64(base)/float64(block)-1))
		fmt.Printf("  interleave %12d cyc  %+6.1f%%  (paper: +13%% AMD, -16.4%% POWER7)\n",
			inter, 100*(float64(base)/float64(inter)-1))
	}
	fmt.Println("\nThe tool-guided block-wise distribution wins on both machines;")
	fmt.Println("interleaving helps only where contention dominates (AMD) and")
	fmt.Println("hurts where it destroys locality without relieving pressure (POWER7).")
}
