// firsttouch demonstrates the Section 6 / Figure 2 protocol on its
// own: page-protection-based first-touch pinpointing, with no address
// sampling at all. It builds a program whose arrays are initialised in
// three different ways, traps every first touch, and prints where each
// variable was first touched, by whom, and what that implies.
//
//	go run ./examples/firsttouch
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/omp"
	"repro/internal/proc"
	"repro/internal/topology"
	"repro/internal/units"
	"repro/internal/vm"
)

type app struct {
	prog                    *isa.Program
	fnMain, fnSerial, fnPar isa.FuncID
	fnRR                    isa.FuncID
	sAlloc, sSer, sPar, sRR isa.SiteID
}

func newApp() *app {
	a := &app{}
	p := isa.NewProgram("firsttouch-demo")
	a.fnMain = p.AddFunc("main", "demo.c", 1)
	a.fnSerial = p.AddFunc("init_serial", "demo.c", 10)
	a.fnPar = p.AddFunc("init_parallel._omp", "demo.c", 20)
	a.fnRR = p.AddFunc("init_roundrobin._omp", "demo.c", 30)
	a.sAlloc = p.AddSite(a.fnMain, 3, isa.KindAlloc)
	a.sSer = p.AddSite(a.fnSerial, 12, isa.KindStore)
	a.sPar = p.AddSite(a.fnPar, 22, isa.KindStore)
	a.sRR = p.AddSite(a.fnRR, 32, isa.KindStore)
	a.prog = p
	return a
}

func (a *app) Name() string         { return "firsttouch-demo" }
func (a *app) Binary() *isa.Program { return a.prog }

func (a *app) Run(e *proc.Engine) {
	ps := uint64(units.PageSize)
	const pages = 16
	var serial, parallel, rr vm.Region
	omp.Serial(e, a.fnMain, "main", func(c *proc.Ctx) {
		serial = c.Alloc(a.sAlloc, "serial_array", ps*pages, nil)
		parallel = c.Alloc(a.sAlloc, "parallel_array", ps*pages, nil)
		rr = c.Alloc(a.sAlloc, "roundrobin_array", ps*pages, nil)
	})
	// The classic bottleneck: one thread touches everything.
	omp.Serial(e, a.fnSerial, "init_serial", func(c *proc.Ctx) {
		for p := uint64(0); p < pages; p++ {
			c.Store(a.sSer, serial.Base+p*ps)
		}
	})
	// The fix: each thread touches its own block.
	omp.ParallelFor(e, a.fnPar, "init_parallel", pages, omp.Static{}, func(c *proc.Ctx, i int) {
		c.Store(a.sPar, parallel.Base+uint64(i)*ps)
	})
	// Round-robin: pages dealt across threads (and domains).
	omp.ParallelFor(e, a.fnRR, "init_roundrobin", pages, omp.Cyclic{Chunk: 1}, func(c *proc.Ctx, i int) {
		c.Store(a.sRR, rr.Base+uint64(i)*ps)
	})
}

func main() {
	m := topology.New(topology.Config{
		Name: "demo-16", NumDomains: 4, CPUsPerDomain: 4,
		MemoryPerDomain: units.GiB,
	})
	prof, err := core.Analyze(core.Config{
		Machine:         m,
		Mechanism:       "IBS",
		TrackFirstTouch: true,
	}, newApp())
	if err != nil {
		log.Fatal(err)
	}

	for _, name := range []string{"serial_array", "parallel_array", "roundrobin_array"} {
		v, ok := prof.Registry.Lookup(name)
		if !ok {
			log.Fatalf("%s not registered", name)
		}
		events := prof.FirstTouch.Events(v.Region)
		threads := prof.FirstTouch.TouchingThreads(v.Region)
		fmt.Printf("%s: %d pages protected, %d first touches trapped\n",
			name, prof.FirstTouch.ProtectedPages(v.Region), len(events))
		fmt.Printf("  touching threads: %v\n", threads)
		if path, ok := prof.FirstTouch.FirstTouchLocation(v.Region); ok && len(path) > 0 {
			fn, _ := prof.Binary.Func(path[len(path)-1].Fn)
			fmt.Printf("  first-touch location: %s (%s:%d)\n", fn.Name, fn.File, fn.StartLine)
		}
		// Where did the pages land?
		homes := map[topology.DomainID]int{}
		for _, ev := range events {
			homes[ev.Domain]++
		}
		fmt.Printf("  pages per touching domain: %v\n", homes)
		switch {
		case len(threads) == 1:
			fmt.Println("  -> serial init: every page homed in one domain; fix here")
		default:
			fmt.Println("  -> parallel init: pages distributed by first touch")
		}
		fmt.Println()
	}
}
