// Quickstart: build a tiny simulated multithreaded program, profile it
// with IBS address sampling, and read the NUMA metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/omp"
	"repro/internal/proc"
	"repro/internal/topology"
	"repro/internal/view"
	"repro/internal/vm"
)

// app is the smallest interesting NUMA program: the master thread
// allocates and initialises an array (first touch homes every page in
// its domain), then the whole team reads it in parallel.
type app struct {
	prog           *isa.Program
	fnMain, fnWork isa.FuncID
	sAlloc, sInit  isa.SiteID
	sLoad          isa.SiteID
}

func newApp() *app {
	a := &app{}
	p := isa.NewProgram("quickstart")
	a.fnMain = p.AddFunc("main", "quickstart.c", 1)
	a.fnWork = p.AddFunc("sum._omp", "quickstart.c", 12)
	a.sAlloc = p.AddSite(a.fnMain, 4, isa.KindAlloc)
	a.sInit = p.AddSite(a.fnMain, 6, isa.KindStore)
	a.sLoad = p.AddSite(a.fnWork, 14, isa.KindLoad)
	a.prog = p
	return a
}

func (a *app) Name() string         { return "quickstart" }
func (a *app) Binary() *isa.Program { return a.prog }

func (a *app) Run(e *proc.Engine) {
	const n = 16384
	var data vm.Region
	// double data[n]; for (i...) data[i] = ...   -- all on the master.
	omp.Serial(e, a.fnMain, "main", func(c *proc.Ctx) {
		data = c.Alloc(a.sAlloc, "data", n*64, nil)
		for i := 0; i < n; i++ {
			c.Store(a.sInit, data.Base+uint64(i)*64)
		}
	})
	// #pragma omp parallel for: thread t reads block t.
	for it := 0; it < 3; it++ {
		omp.ParallelFor(e, a.fnWork, "sum", n, omp.Static{}, func(c *proc.Ctx, i int) {
			c.Load(a.sLoad, data.Base+uint64(i)*64)
			c.Compute(8)
		})
	}
}

func main() {
	prof, err := core.Analyze(core.Config{
		Machine:         topology.MagnyCours48(),
		Mechanism:       "IBS",
		Period:          256,
		TrackFirstTouch: true,
	}, newApp())
	if err != nil {
		log.Fatal(err)
	}

	// The whole-program verdict: is this worth optimising?
	fmt.Print(view.Totals(prof))
	fmt.Println()

	// The data-centric table: which variable hurts?
	fmt.Print(view.VarTable(prof, 3))
	fmt.Println()

	// The address-centric view: how do threads touch it?
	if v, ok := prof.Registry.Lookup("data"); ok {
		if pat, ok := prof.Patterns.Pattern(v, "sum"); ok {
			fmt.Print(view.AddressCentric(pat, 48))
			fmt.Printf("staircase pattern: %v -> a block-wise distribution will co-locate\n",
				pat.IsStaircase(0.15))
		}
	}

	// The first-touch pinpointer: where to apply the fix?
	if vp, ok := prof.VarByName("data"); ok {
		fmt.Println()
		fmt.Print(view.FirstTouchReport(prof, vp))
	}
}
