// Service client: submit the same workload to a numad daemon under two
// placement strategies and let the service diff the resulting profiles.
// This is the paper's placement-comparison loop (profile, fix, compare)
// driven entirely through the daemon's HTTP API. With -advise it also
// closes the loop automatically: the daemon's optimizer diagnoses the
// first profile, re-runs every candidate remedy, and reports measured
// next to predicted speedups.
//
// With no flags it hosts a throwaway in-process daemon, so the demo
// runs with zero setup:
//
//	go run ./examples/service-client
//
// Point it at a real daemon to reuse its profile store (a repeated run
// is then served from cache — watch the "cache hit" column):
//
//	go run ./examples/service-client -addr http://localhost:7077
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", "", "base URL of a running numad (empty: host a temporary in-process daemon)")
		workload = flag.String("workload", "blackscholes", "workload to compare")
		stratA   = flag.String("a", "baseline", "first placement strategy")
		stratB   = flag.String("b", "interleave", "second placement strategy")
		advise   = flag.Bool("advise", false, "also run the daemon's optimizer over the first profile")
	)
	flag.Parse()
	if err := run(*addr, *workload, *stratA, *stratB, *advise); err != nil {
		log.Fatal(err)
	}
}

func run(addr, workload, stratA, stratB string, advise bool) error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	if addr == "" {
		base, stop, err := hostDemoDaemon()
		if err != nil {
			return err
		}
		defer stop()
		addr = base
		fmt.Printf("hosting throwaway daemon at %s\n\n", addr)
	}
	c := server.NewClient(addr)

	// Submit both placements up front; the daemon's worker pool runs
	// them concurrently and the store dedups repeats.
	ids := make([]string, 2)
	for i, strat := range []string{stratA, stratB} {
		st, err := c.Submit(ctx, server.Spec{Workload: workload, Strategy: strat})
		if err != nil {
			return fmt.Errorf("submit %s/%s: %w", workload, strat, err)
		}
		ids[i] = st.ID
	}
	for i, strat := range []string{stratA, stratB} {
		st, err := c.Wait(ctx, ids[i])
		if err != nil {
			return err
		}
		if st.State != server.StateDone {
			return fmt.Errorf("job %s (%s) ended %s: %s", st.ID, strat, st.State, st.Error)
		}
		fmt.Printf("%-12s job %s done  (cache hit: %v)\n", strat, st.ID, st.CacheHit)
	}

	// The daemon diffs the two stored profiles; the verdict line tells
	// you whether the placement change paid off.
	text, err := c.DiffText(ctx, ids[0], ids[1])
	if err != nil {
		return err
	}
	fmt.Println()
	fmt.Print(text)

	if advise {
		// Close the loop: Advise spawns an optimizer job over the first
		// profile (retried like any submit, deduped by content address),
		// and AdviseResult returns the ranked plan with measured vs
		// predicted speedup per remedy.
		st, err := c.Advise(ctx, ids[0])
		if err != nil {
			return fmt.Errorf("advise %s: %w", ids[0], err)
		}
		if st, err = c.Wait(ctx, st.ID); err != nil {
			return err
		} else if st.State != server.StateDone {
			return fmt.Errorf("advise job %s ended %s: %s", st.ID, st.State, st.Error)
		}
		rep, err := c.AdviseResult(ctx, st.ID)
		if err != nil {
			return err
		}
		fmt.Println()
		if rep.NoAdvice {
			fmt.Printf("optimizer: no advice (%s)\n", rep.Reason)
		} else {
			for _, r := range rep.Remedies {
				fmt.Printf("optimizer: %-22s predicted %+.1f%%  measured %+.1f%%\n",
					r.Kind, 100*r.Predicted, 100*r.Measured)
			}
			if rep.Best != nil {
				fmt.Printf("optimizer: best measured %s (%s) %+.1f%%\n",
					rep.Best.Kind, rep.Best.Transform.String(), 100*rep.Best.Measured)
			}
		}
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("\ndaemon totals: %d jobs done, %d store hits, queue depth %d\n",
		m.Jobs.Done, m.StoreHits, m.Queue.Depth)
	return nil
}

// hostDemoDaemon stands up a full numad (store, worker pool, HTTP API)
// on a loopback port, returning its base URL and a drain function.
func hostDemoDaemon() (string, func(), error) {
	dir, err := os.MkdirTemp("", "numad-demo-*")
	if err != nil {
		return "", nil, err
	}
	st, err := store.Open(dir, 0)
	if err != nil {
		return "", nil, err
	}
	srv, err := server.New(server.Options{Store: st})
	if err != nil {
		return "", nil, err
	}
	srv.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go httpSrv.Serve(ln)
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
		srv.Shutdown(ctx)
		os.RemoveAll(dir)
	}
	return "http://" + ln.Addr().String(), stop, nil
}
