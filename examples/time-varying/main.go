// time-varying demonstrates the trace-based measurement extension
// (the paper's Section 10 future-work item): a program whose data
// placement is right for its first phase and wrong for its second.
// A whole-run profile averages the two phases into a lukewarm verdict;
// the trace shows exactly when — and on which variable — the NUMA
// behaviour flips.
//
//	go run ./examples/time-varying
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/omp"
	"repro/internal/proc"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/vm"
)

type app struct {
	prog                *isa.Program
	fnMain, fnInit      isa.FuncID
	fnAssemble, fnSolve isa.FuncID
	sAlloc, sInit       isa.SiteID
	sMesh, sMatrix      isa.SiteID
}

func newApp() *app {
	a := &app{}
	p := isa.NewProgram("two-phase")
	a.fnMain = p.AddFunc("main", "solver.c", 1)
	a.fnInit = p.AddFunc("setup", "solver.c", 10)
	a.fnAssemble = p.AddFunc("assemble._omp", "solver.c", 30)
	a.fnSolve = p.AddFunc("solve._omp", "solver.c", 60)
	a.sAlloc = p.AddSite(a.fnMain, 3, isa.KindAlloc)
	a.sInit = p.AddSite(a.fnInit, 12, isa.KindStore)
	a.sMesh = p.AddSite(a.fnAssemble, 32, isa.KindLoad)
	a.sMatrix = p.AddSite(a.fnSolve, 62, isa.KindLoad)
	a.prog = p
	return a
}

func (a *app) Name() string         { return "two-phase" }
func (a *app) Binary() *isa.Program { return a.prog }

func (a *app) Run(e *proc.Engine) {
	const n = 8192
	var mesh, matrix vm.Region
	omp.Serial(e, a.fnMain, "main", func(c *proc.Ctx) {
		mesh = c.Alloc(a.sAlloc, "mesh", n*64, nil)
		matrix = c.Alloc(a.sAlloc, "matrix", n*64, nil)
	})
	// mesh is initialised in parallel (co-located with its readers);
	// matrix is initialised by the master (homed in domain 0).
	omp.ParallelFor(e, a.fnInit, "setup_mesh", n, omp.Static{}, func(c *proc.Ctx, i int) {
		c.Store(a.sInit, mesh.Base+uint64(i)*64)
	})
	omp.Serial(e, a.fnInit, "setup_matrix", func(c *proc.Ctx) {
		for i := 0; i < n; i++ {
			c.Store(a.sInit, matrix.Base+uint64(i)*64)
		}
	})
	// Phase 1 (assembly): local mesh traffic only.
	for it := 0; it < 4; it++ {
		omp.ParallelFor(e, a.fnAssemble, "assemble", n, omp.Static{}, func(c *proc.Ctx, i int) {
			c.Load(a.sMesh, mesh.Base+uint64(i)*64)
			c.Compute(6)
		})
	}
	// Phase 2 (solve): remote matrix traffic.
	for it := 0; it < 4; it++ {
		omp.ParallelFor(e, a.fnSolve, "solve", n, omp.Static{}, func(c *proc.Ctx, i int) {
			c.Load(a.sMatrix, matrix.Base+uint64(i)*64)
			c.Compute(6)
		})
	}
}

func main() {
	prof, err := core.Analyze(core.Config{
		Machine:   topology.MagnyCours48(),
		Mechanism: "IBS",
		Period:    64,
		Trace:     true,
	}, newApp())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("whole-run profile: M_r fraction %.0f%% — a lukewarm average\n\n",
		100*prof.Totals.RemoteFraction)

	fmt.Print(trace.Render(prof.Timeline, 12, 40))

	if at, delta, ok := prof.Timeline.PhaseShift(12); ok {
		fmt.Printf("\nphase shift detected at t=%d: remote fraction jumps by %+.0f%%\n",
			uint64(at), 100*delta)
		buckets := prof.Timeline.Buckets(12)
		if hot, n := buckets[len(buckets)-1].HotVar(); n > 0 {
			fmt.Printf("hot variable after the shift: %s -> fix *its* placement, not mesh's\n", hot)
		}
	}
}
