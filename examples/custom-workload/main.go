// custom-workload shows how to bring your own program to the profiler:
// implement core.App, run the analysis, let the metrics decide whether
// a NUMA fix is worth it, and verify the decision by re-measuring.
//
// The program is a 5-point stencil whose halo rows are shared between
// neighbouring threads — a case where block-wise placement co-locates
// the interior but halo traffic stays remote.
//
//	go run ./examples/custom-workload
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/omp"
	"repro/internal/proc"
	"repro/internal/topology"
	"repro/internal/units"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// stencil is a rows x cols Jacobi-style sweep: out[r] depends on
// in[r-1], in[r], in[r+1].
type stencil struct {
	prog           *isa.Program
	fnMain, fnInit isa.FuncID
	fnSweep        isa.FuncID
	sAlloc, sInit  isa.SiteID
	sUp, sMid, sDn isa.SiteID
	sOut           isa.SiteID

	rows, cols, iters int
	policy            vm.Policy
	parallelInit      bool
}

func newStencil(rows, cols, iters int, policy vm.Policy, parallelInit bool) *stencil {
	s := &stencil{rows: rows, cols: cols, iters: iters, policy: policy, parallelInit: parallelInit}
	p := isa.NewProgram("stencil")
	s.fnMain = p.AddFunc("main", "stencil.c", 1)
	s.fnInit = p.AddFunc("init_grid", "stencil.c", 10)
	s.fnSweep = p.AddFunc("sweep._omp", "stencil.c", 30)
	s.sAlloc = p.AddSite(s.fnMain, 3, isa.KindAlloc)
	s.sInit = p.AddSite(s.fnInit, 12, isa.KindStore)
	s.sUp = p.AddSite(s.fnSweep, 33, isa.KindLoad)
	s.sMid = p.AddSite(s.fnSweep, 34, isa.KindLoad)
	s.sDn = p.AddSite(s.fnSweep, 35, isa.KindLoad)
	s.sOut = p.AddSite(s.fnSweep, 37, isa.KindStore)
	s.prog = p
	return s
}

func (s *stencil) Name() string         { return "stencil" }
func (s *stencil) Binary() *isa.Program { return s.prog }

func (s *stencil) addr(grid vm.Region, r, c int) uint64 {
	return grid.Base + uint64(r*s.cols+c)*8
}

func (s *stencil) Run(e *proc.Engine) {
	size := uint64(s.rows*s.cols) * 8
	var in, out vm.Region
	omp.Serial(e, s.fnMain, "main", func(c *proc.Ctx) {
		in = c.Alloc(s.sAlloc, "grid_in", size, s.policy)
		out = c.Alloc(s.sAlloc, "grid_out", size, s.policy)
	})
	initRow := func(c *proc.Ctx, r int) {
		for col := 0; col < s.cols; col += 8 { // one store per line
			c.Store(s.sInit, s.addr(in, r, col))
			c.Store(s.sInit, s.addr(out, r, col))
		}
	}
	if s.parallelInit {
		omp.ParallelFor(e, s.fnInit, "init_grid", s.rows, omp.Static{}, initRow)
	} else {
		omp.Serial(e, s.fnInit, "init_grid", func(c *proc.Ctx) {
			for r := 0; r < s.rows; r++ {
				initRow(c, r)
			}
		})
	}
	e.Mark(workloads.ROIMark)
	for it := 0; it < s.iters; it++ {
		omp.ParallelFor(e, s.fnSweep, "sweep", s.rows, omp.Static{}, func(c *proc.Ctx, r int) {
			for col := 0; col < s.cols; col += 8 {
				if r > 0 {
					c.Load(s.sUp, s.addr(in, r-1, col))
				}
				c.Load(s.sMid, s.addr(in, r, col))
				if r < s.rows-1 {
					c.Load(s.sDn, s.addr(in, r+1, col))
				}
				c.Store(s.sOut, s.addr(out, r, col))
				c.Compute(120)
			}
		})
	}
}

func main() {
	m := topology.MagnyCours48()
	baseCfg := core.Config{
		Machine:      m,
		Mechanism:    "IBS",
		CacheConfig:  workloads.TunedCacheConfig(),
		MemParams:    workloads.MemParamsFor(m),
		FabricParams: workloads.FabricParamsFor(m),
	}
	const rows, cols, iters = 1536, 256, 6

	// Step 1: profile the naive version.
	prof, err := core.Analyze(baseCfg, newStencil(rows, cols, iters, nil, false))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive stencil: lpi_NUMA %.3f (threshold %.1f) -> optimise? %v\n",
		prof.Totals.LPI, metrics.SignificanceThreshold, prof.Totals.Significant)
	for _, vp := range prof.Vars {
		fmt.Printf("  %-9s remote-latency share %5.1f%%  M_r/M_l %.1f\n",
			vp.Var.Name, 100*vp.RemoteLatShare, vp.Mr/maxf(vp.Ml, 1))
	}

	// Step 2: candidate fixes.
	doms := make([]topology.DomainID, m.NumDomains())
	for i := range doms {
		doms[i] = topology.DomainID(i)
	}
	candidates := []struct {
		name   string
		policy vm.Policy
		par    bool
	}{
		{"baseline (serial first touch)", nil, false},
		{"block-wise pages", vm.Blocked{Domains: doms}, false},
		{"interleaved pages", vm.Interleaved{}, false},
		{"parallel initialisation", nil, true},
	}
	var base units.Cycles
	for _, cand := range candidates {
		e, err := core.Run(baseCfg, newStencil(rows, cols, iters, cand.policy, cand.par))
		if err != nil {
			log.Fatal(err)
		}
		t := e.TimeSince(workloads.ROIMark)
		if base == 0 {
			base = t
		}
		fmt.Printf("%-30s %12d cyc  %+6.1f%%\n",
			cand.name, t, 100*(float64(base)/float64(t)-1))
	}
	fmt.Println("\nBlock-wise and parallel-init co-locate the interior rows;")
	fmt.Println("halo rows shared across block boundaries keep a small remote tail.")
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
