// Package repro is a from-scratch Go reproduction of "A Tool to
// Analyze the Performance of Multithreaded Programs on NUMA
// Architectures" (Xu Liu and John Mellor-Crummey, PPoPP 2014) — the
// HPCToolkit-NUMA profiler — on a deterministic simulated substrate.
//
// The root package holds only the benchmark harness (bench_test.go),
// one benchmark per table and figure of the paper's evaluation. The
// library lives under internal/ (see DESIGN.md for the inventory):
//
//   - internal/core is the profiler: core.Analyze runs an application
//     under one of six address-sampling mechanisms and returns a
//     Profile with code-, data-, and address-centric attributions,
//     first-touch pinpointing, and the lpi_NUMA metrics of Section 4;
//   - internal/workloads reconstructs LULESH, AMG2006, Blackscholes,
//     and UMT2013;
//   - internal/experiments regenerates every table and figure, with
//     the paper's numbers alongside;
//   - cmd/numaprof, cmd/numaview, and cmd/numabench are the
//     command-line pipeline (profile, view/diff, evaluate).
//
// Start with README.md, then run:
//
//	go run ./examples/quickstart
//	go run ./cmd/numabench -run SC
package repro
