// Package trace implements trace-based measurement of time-varying
// NUMA behaviour — the third item of the paper's future work
// (Section 10: "collect trace-based measurements to study time-varying
// NUMA patterns in addition to profiles").
//
// Where a profile aggregates samples over the whole run, a Timeline
// keeps every sample with its simulated timestamp, then slices the run
// into equal-time buckets. Each bucket carries the Section 4 metrics
// (M_l, M_r, remote latency) plus per-variable remote counts, so phase
// changes — a program whose placement is right for one phase and wrong
// for the next — become visible as a time series instead of averaging
// out.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/units"
)

// Event is one time-stamped address sample.
type Event struct {
	// Time is the simulated timestamp (engine Now at the sample).
	Time units.Cycles
	// Thread is the sampling thread.
	Thread int
	// Var names the touched variable ("" if unattributed).
	Var string
	// EA is the sampled effective address.
	EA uint64
	// Remote reports a NUMA mismatch (M_r sample).
	Remote bool
	// Latency is the sampled latency (0 when the mechanism cannot
	// measure it).
	Latency units.Cycles
}

// Timeline records events in arrival order.
type Timeline struct {
	events []Event
	maxT   units.Cycles
}

// New creates an empty timeline.
func New() *Timeline { return &Timeline{} }

// Record appends one event.
func (t *Timeline) Record(ev Event) {
	t.events = append(t.events, ev)
	if ev.Time > t.maxT {
		t.maxT = ev.Time
	}
}

// Len returns the number of recorded events.
func (t *Timeline) Len() int { return len(t.events) }

// Events returns the recorded events. The slice must not be mutated.
func (t *Timeline) Events() []Event { return t.events }

// Span returns the largest timestamp recorded.
func (t *Timeline) Span() units.Cycles { return t.maxT }

// Bucket aggregates the samples of one time slice.
type Bucket struct {
	Start, End units.Cycles
	Ml, Mr     float64
	RemoteLat  units.Cycles
	// RemoteByVar counts remote samples per variable.
	RemoteByVar map[string]float64
}

// RemoteFraction returns M_r / (M_l + M_r) for the bucket.
func (b Bucket) RemoteFraction() float64 {
	if b.Ml+b.Mr == 0 {
		return 0
	}
	return b.Mr / (b.Ml + b.Mr)
}

// Samples returns the bucket's sample count.
func (b Bucket) Samples() float64 { return b.Ml + b.Mr }

// Buckets slices the run into n equal time windows and aggregates each.
func (t *Timeline) Buckets(n int) []Bucket {
	if n <= 0 {
		n = 1
	}
	span := t.maxT + 1
	out := make([]Bucket, n)
	width := span / units.Cycles(n)
	if width == 0 {
		width = 1
	}
	for i := range out {
		out[i].Start = units.Cycles(i) * width
		out[i].End = out[i].Start + width
		out[i].RemoteByVar = make(map[string]float64)
	}
	out[n-1].End = span
	for _, ev := range t.events {
		idx := int(ev.Time / width)
		if idx >= n {
			idx = n - 1
		}
		b := &out[idx]
		if ev.Remote {
			b.Mr++
			b.RemoteLat += ev.Latency
			if ev.Var != "" {
				b.RemoteByVar[ev.Var]++
			}
		} else {
			b.Ml++
		}
	}
	return out
}

// PhaseShift locates the largest jump in remote fraction between
// consecutive non-empty buckets — a cheap change-point detector for
// "the placement stopped matching the access pattern here". It returns
// the boundary time and the delta (signed: positive means the run got
// more remote). ok is false if fewer than two buckets have samples.
func (t *Timeline) PhaseShift(n int) (at units.Cycles, delta float64, ok bool) {
	buckets := t.Buckets(n)
	prev := -1
	for i, b := range buckets {
		if b.Samples() == 0 {
			continue
		}
		if prev >= 0 {
			d := b.RemoteFraction() - buckets[prev].RemoteFraction()
			if !ok || abs(d) > abs(delta) {
				at, delta, ok = b.Start, d, true
			}
		}
		prev = i
	}
	return at, delta, ok
}

func abs(f float64) float64 {
	if f < 0 {
		return -f
	}
	return f
}

// HotVar returns the variable with the most remote samples in the
// bucket, with its count.
func (b Bucket) HotVar() (string, float64) {
	var name string
	var best float64
	// Deterministic tie-break by name.
	keys := make([]string, 0, len(b.RemoteByVar))
	for k := range b.RemoteByVar {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if b.RemoteByVar[k] > best {
			name, best = k, b.RemoteByVar[k]
		}
	}
	return name, best
}

// Render draws the remote-fraction time series as bucket rows with
// bars, the time-varying analog of the metric pane.
func Render(t *Timeline, n, width int) string {
	if width <= 0 {
		width = 40
	}
	var b strings.Builder
	fmt.Fprintf(&b, "time-varying NUMA profile: %d samples over %v in %d buckets\n",
		t.Len(), t.Span(), n)
	for _, bk := range t.Buckets(n) {
		frac := bk.RemoteFraction()
		bar := int(frac * float64(width))
		hot, hotN := bk.HotVar()
		hotStr := ""
		if hotN > 0 {
			hotStr = fmt.Sprintf("  hot: %s (%.0f)", hot, hotN)
		}
		fmt.Fprintf(&b, "  [%12d,%12d) |%-*s| M_r %4.0f%% n=%-6.0f%s\n",
			uint64(bk.Start), uint64(bk.End), width,
			strings.Repeat("#", bar), 100*frac, bk.Samples(), hotStr)
	}
	return b.String()
}
