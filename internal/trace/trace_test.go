package trace

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestRecordAndSpan(t *testing.T) {
	tl := New()
	if tl.Len() != 0 || tl.Span() != 0 {
		t.Fatal("fresh timeline not empty")
	}
	tl.Record(Event{Time: 100, Remote: true, Latency: 50, Var: "z"})
	tl.Record(Event{Time: 40, Remote: false})
	if tl.Len() != 2 {
		t.Fatalf("Len = %d", tl.Len())
	}
	if tl.Span() != 100 {
		t.Fatalf("Span = %v", tl.Span())
	}
}

func TestBucketsAggregate(t *testing.T) {
	tl := New()
	// First half local, second half remote — a clean phase shift.
	for i := 0; i < 50; i++ {
		tl.Record(Event{Time: units.Cycles(i), Remote: false})
	}
	for i := 50; i < 100; i++ {
		tl.Record(Event{Time: units.Cycles(i), Remote: true, Latency: 10, Var: "z"})
	}
	buckets := tl.Buckets(2)
	if len(buckets) != 2 {
		t.Fatalf("%d buckets", len(buckets))
	}
	if buckets[0].Mr != 0 || buckets[0].Ml != 50 {
		t.Errorf("bucket 0 = %+v", buckets[0])
	}
	if buckets[1].Ml != 0 || buckets[1].Mr != 50 {
		t.Errorf("bucket 1 = %+v", buckets[1])
	}
	if buckets[1].RemoteLat != 500 {
		t.Errorf("bucket 1 remote latency = %v", buckets[1].RemoteLat)
	}
	if buckets[0].RemoteFraction() != 0 || buckets[1].RemoteFraction() != 1 {
		t.Error("remote fractions wrong")
	}
	if hot, n := buckets[1].HotVar(); hot != "z" || n != 50 {
		t.Errorf("HotVar = %q, %v", hot, n)
	}
	if hot, n := buckets[0].HotVar(); hot != "" || n != 0 {
		t.Errorf("empty HotVar = %q, %v", hot, n)
	}
}

func TestPhaseShiftDetection(t *testing.T) {
	tl := New()
	for i := 0; i < 500; i++ {
		tl.Record(Event{Time: units.Cycles(i), Remote: false})
	}
	for i := 500; i < 1000; i++ {
		tl.Record(Event{Time: units.Cycles(i), Remote: true})
	}
	at, delta, ok := tl.PhaseShift(10)
	if !ok {
		t.Fatal("no phase shift found")
	}
	if delta < 0.9 {
		t.Errorf("delta = %v, want ~1.0", delta)
	}
	// The shift lands at the bucket boundary nearest t=500.
	if at < 400 || at > 600 {
		t.Errorf("shift at %v, want near 500", at)
	}
}

func TestPhaseShiftRequiresTwoBuckets(t *testing.T) {
	tl := New()
	tl.Record(Event{Time: 1, Remote: true})
	if _, _, ok := tl.PhaseShift(4); ok {
		t.Error("single-bucket timeline should report no shift")
	}
}

func TestBucketsDegenerate(t *testing.T) {
	tl := New()
	if got := tl.Buckets(0); len(got) != 1 {
		t.Fatalf("Buckets(0) = %d buckets, want 1", len(got))
	}
	tl.Record(Event{Time: 0, Remote: true})
	b := tl.Buckets(4)
	var total float64
	for _, bk := range b {
		total += bk.Samples()
	}
	if total != 1 {
		t.Fatalf("samples lost: %v", total)
	}
}

func TestRender(t *testing.T) {
	tl := New()
	for i := 0; i < 100; i++ {
		tl.Record(Event{Time: units.Cycles(i * 10), Remote: i%2 == 0, Var: "buf"})
	}
	out := Render(tl, 4, 20)
	if !strings.Contains(out, "time-varying NUMA profile") {
		t.Error("header missing")
	}
	if strings.Count(out, "\n") < 5 {
		t.Errorf("expected 4 bucket rows:\n%s", out)
	}
	if !strings.Contains(out, "hot: buf") {
		t.Error("hot variable missing")
	}
}

// Property: bucketing never loses or invents samples, for any n.
func TestQuickBucketsConserveSamples(t *testing.T) {
	f := func(times []uint16, n uint8) bool {
		tl := New()
		for i, tm := range times {
			tl.Record(Event{Time: units.Cycles(tm), Remote: i%3 == 0})
		}
		buckets := tl.Buckets(int(n%20) + 1)
		var total float64
		for _, b := range buckets {
			total += b.Samples()
		}
		return total == float64(len(times))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: bucket windows tile [0, span] without gaps.
func TestQuickBucketsTile(t *testing.T) {
	f := func(span uint16, n uint8) bool {
		tl := New()
		tl.Record(Event{Time: units.Cycles(span)})
		buckets := tl.Buckets(int(n%16) + 1)
		var prev units.Cycles
		for _, b := range buckets {
			if b.Start != prev || b.End < b.Start {
				return false
			}
			prev = b.End
		}
		return prev >= units.Cycles(span)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRemoteFractionBounds(t *testing.T) {
	b := Bucket{Ml: 3, Mr: 1}
	if got := b.RemoteFraction(); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("RemoteFraction = %v", got)
	}
	if (Bucket{}).RemoteFraction() != 0 {
		t.Error("empty bucket fraction should be 0")
	}
}
