// Package telemetry is the unified observability layer of the tree:
// process-wide metrics, pipeline spans, and structured logging, applied
// to the profiler the same way the profiler applies them to its
// workloads — the paper's measure-then-attribute discipline (PAPER.md
// §1, §4) turned on ourselves. Every subsystem (core's pipeline,
// sched's worker cells, the numad server, the profile store, profio,
// faults) registers named instruments here instead of keeping private
// atomics, so one scrape of numad's /metrics — or one `numaprof
// -telemetry out/` run — answers "where did the time go".
//
// Three instruments, three disciplines:
//
//   - Registry: named counters, gauges, and power-of-two latency
//     histograms. Always on — an instrument is one atomic word, so the
//     cost of keeping them lit is a handful of nanoseconds per event,
//     the MemProf-style always-on philosophy.
//
//   - Spans: telemetry.Start(ctx, "pipeline.cct_merge", ...) opens a
//     timed, attributed span under the span carried by ctx. Spans are
//     collected by a Tracer and exported as Chrome trace_event JSON
//     (chrome://tracing- and ui.perfetto.dev-loadable) or a plain-text
//     span tree. Off by default: when no Tracer is installed, Start
//     returns a nil *Span whose methods are no-ops, so the disabled
//     cost is one atomic pointer load (the zero-overhead-when-disabled
//     contract, held below 2% on the Table 2 sweep by a CI guard).
//
//   - Logs: Logger(component) returns a *slog.Logger with per-component
//     levels controlled by $NUMAPROF_LOG (e.g. "info,sched=debug") or
//     `numad -log-level`, replacing the tree's bare log.Printf /
//     fmt.Fprintln(os.Stderr, ...) diagnostics.
//
// Instrument naming: family_subject_unit — sched_cell_us,
// store_mem_hits_total, pipeline_sampling_run_total, jobs_running. The
// families a scraper can rely on are pipeline_* (phase counts and
// durations), sched_* (cells, failures, panics), store_* (hits, misses,
// dedup), jobs_*/job_* (the numad lifecycle), profio_* and faults_*.
package telemetry

import (
	"context"
	"strings"
	"time"
)

// Timed instruments one named operation with both disciplines at once:
// it opens a span (when tracing is enabled) and always feeds the
// Default registry's <name>_total counter and <name>_us histogram
// (dots in name become underscores). The returned func ends the span
// and records the duration; call it exactly once, usually by defer:
//
//	ctx, done := telemetry.Timed(ctx, "pipeline.cct_merge")
//	defer done()
func Timed(ctx context.Context, name string, attrs ...Attr) (context.Context, func()) {
	c := Default.Counter(metricName(name) + "_total")
	h := Default.Histogram(metricName(name) + "_us")
	ctx, sp := Start(ctx, name, attrs...)
	start := time.Now()
	return ctx, func() {
		h.Observe(time.Since(start))
		c.Inc()
		sp.End()
	}
}

// metricName converts a span name to its instrument-family prefix.
func metricName(name string) string {
	return strings.ReplaceAll(name, ".", "_")
}
