package telemetry

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// fakeClock is a deterministic µs source: every read advances by step.
func fakeClock(step int64) func() int64 {
	var now int64
	return func() int64 {
		now += step
		return now
	}
}

func TestSpanNesting(t *testing.T) {
	tr := NewTracer(WithClock(fakeClock(10)))
	prev := SetTracer(tr)
	defer SetTracer(prev)

	ctx, root := Start(context.Background(), "root")
	_, child := Start(ctx, "child")
	child.End()
	root.End()

	if child.parent != root.id {
		t.Errorf("child.parent = %d, want root id %d", child.parent, root.id)
	}
	if child.lane != root.lane {
		t.Errorf("child.lane = %d, want root lane %d", child.lane, root.lane)
	}
	if root.parent != 0 {
		t.Errorf("root.parent = %d, want 0", root.parent)
	}
	// A sibling started from the root's ctx after the child ended must
	// still parent under root, not under the ended child.
	_, sib := Start(ctx, "sibling")
	sib.End()
	if sib.parent != root.id {
		t.Errorf("sibling.parent = %d, want root id %d", sib.parent, root.id)
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	tr := NewTracer()
	prev := SetTracer(tr)
	defer SetTracer(prev)

	ctx, root := Start(context.Background(), "root")
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, sp := Start(ctx, "cell", Int("i", i))
			sp.End()
		}(i)
	}
	wg.Wait()
	root.End()

	spans, _ := tr.snapshot()
	cells := 0
	for i := range spans {
		if spans[i].name != "cell" {
			continue
		}
		cells++
		if spans[i].parent != root.id {
			t.Errorf("cell parent = %d, want %d", spans[i].parent, root.id)
		}
		if !spans[i].ended {
			t.Error("cell not marked ended")
		}
	}
	if cells != n {
		t.Fatalf("recorded %d cells, want %d", cells, n)
	}
}

func TestSpanUnbalancedEnds(t *testing.T) {
	clock := fakeClock(10)
	tr := NewTracer(WithClock(clock))
	prev := SetTracer(tr)
	defer SetTracer(prev)

	_, sp := Start(context.Background(), "double")
	sp.End()
	first := sp.endUs
	sp.End() // second End must not move the end time
	if sp.endUs != first {
		t.Errorf("second End moved endUs %d -> %d", first, sp.endUs)
	}

	_, open := Start(context.Background(), "never-ended")
	_ = open
	var sb strings.Builder
	if err := tr.WriteTree(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "never-ended") || !strings.Contains(sb.String(), "[unfinished]") {
		t.Errorf("tree did not flag the unfinished span:\n%s", sb.String())
	}

	// Ending a nil span (tracing disabled) must be a no-op, not a panic.
	SetTracer(nil)
	ctx, nilSpan := Start(context.Background(), "disabled")
	if nilSpan != nil {
		t.Fatal("Start with no tracer must return a nil span")
	}
	nilSpan.End()
	nilSpan.Annotate(String("k", "v"))
	if _, inner := Start(ctx, "also-disabled"); inner != nil {
		t.Fatal("child Start under a disabled ctx must stay nil")
	}
}

// TestChromeTraceGolden pins the exact trace_event bytes for a fixed
// span tree under a deterministic clock, so the export format (what
// chrome://tracing parses) cannot drift silently. Regenerate with
//
//	go test ./internal/telemetry -run ChromeTraceGolden -update
func TestChromeTraceGolden(t *testing.T) {
	tr := NewTracer(WithClock(fakeClock(100)))
	prev := SetTracer(tr)
	defer SetTracer(prev)

	ctx, root := Start(context.Background(), "numaprof.run", String("workloads", "lulesh"))
	_, build := Start(ctx, "pipeline.build_config", String("workload", "lulesh"), String("mechanism", "IBS"))
	build.End()
	runCtx, sampling := Start(ctx, "pipeline.sampling_run", String("workload", "lulesh"))
	_, cell := Start(runCtx, "sched.cell", Int("index", 0))
	cell.End()
	sampling.End()
	_, open := Start(ctx, "pipeline.render_view", String("kind", "text"))
	_ = open // deliberately never ended: the export must mark it
	root.End()

	var trace strings.Builder
	if err := tr.WriteChromeTrace(&trace); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace.json", trace.String())

	var tree strings.Builder
	if err := tr.WriteTree(&tree); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "spans.txt", tree.String())
}

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden:\ngot:\n%s\nwant:\n%s", name, got, want)
	}
}

func TestSummaryAggregatesByName(t *testing.T) {
	tr := NewTracer(WithClock(fakeClock(10)))
	prev := SetTracer(tr)
	defer SetTracer(prev)
	for i := 0; i < 3; i++ {
		_, sp := Start(context.Background(), "phase.a")
		sp.End()
	}
	_, sp := Start(context.Background(), "phase.b")
	sp.End()
	sum := tr.Summary()
	if !strings.Contains(sum, "phase.a") || !strings.Contains(sum, "phase.b") {
		t.Fatalf("summary missing phases:\n%s", sum)
	}
	aLine := ""
	for _, l := range strings.Split(sum, "\n") {
		if strings.HasPrefix(l, "phase.a") {
			aLine = l
		}
	}
	if !strings.Contains(aLine, " 3 ") {
		t.Errorf("phase.a count not 3 in %q", aLine)
	}
}
