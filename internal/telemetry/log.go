package telemetry

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"os"
	"strings"
	"sync"
)

// LogEnvVar controls logging levels for every binary in the tree. The
// value is a comma-separated spec: a bare level sets the default, and
// component=level entries override per component:
//
//	NUMAPROF_LOG=debug
//	NUMAPROF_LOG=warn,sched=debug,server=info
//
// Levels: debug, info, warn, error. numad's -log-level flag takes the
// same spec and wins over the environment.
const LogEnvVar = "NUMAPROF_LOG"

var (
	logMu   sync.RWMutex
	logDef  = slog.LevelInfo
	logPer  = map[string]slog.Level{}
	logBase = newBaseHandler(os.Stderr)
)

func newBaseHandler(w io.Writer) slog.Handler {
	// The base handler passes everything; filtering happens per
	// component in componentHandler.Enabled.
	return slog.NewTextHandler(w, &slog.HandlerOptions{Level: slog.LevelDebug})
}

func init() {
	if spec := os.Getenv(LogEnvVar); spec != "" {
		// A malformed env var must not crash every binary; fall back to
		// the default level and say so once logging is up.
		if err := SetLogSpec(spec); err != nil {
			Logger("telemetry").Warn("ignoring malformed log spec",
				"env", LogEnvVar, "spec", spec, "err", err.Error())
		}
	}
}

// ParseLevel parses one level name.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("telemetry: unknown log level %q (debug|info|warn|error)", s)
}

// SetLogSpec applies a level spec (see LogEnvVar). The whole spec is
// validated before any of it applies.
func SetLogSpec(spec string) error {
	def := slog.LevelInfo
	per := map[string]slog.Level{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		if comp, lvl, ok := strings.Cut(part, "="); ok {
			l, err := ParseLevel(lvl)
			if err != nil {
				return err
			}
			comp = strings.TrimSpace(comp)
			if comp == "" {
				return fmt.Errorf("telemetry: empty component in log spec entry %q", part)
			}
			per[comp] = l
		} else {
			l, err := ParseLevel(part)
			if err != nil {
				return err
			}
			def = l
		}
	}
	logMu.Lock()
	logDef, logPer = def, per
	logMu.Unlock()
	return nil
}

// SetLogOutput redirects all loggers to w (tests; numad could point it
// at a file) and returns a restore func.
func SetLogOutput(w io.Writer) func() {
	logMu.Lock()
	prev := logBase
	logBase = newBaseHandler(w)
	logMu.Unlock()
	return func() {
		logMu.Lock()
		logBase = prev
		logMu.Unlock()
	}
}

// levelFor resolves a component's effective level.
func levelFor(component string) slog.Level {
	logMu.RLock()
	defer logMu.RUnlock()
	if l, ok := logPer[component]; ok {
		return l
	}
	return logDef
}

// Logger returns the structured logger for one component. Records carry
// a component attribute and are filtered by the component's level from
// $NUMAPROF_LOG / SetLogSpec, so `sched=debug` turns one subsystem
// verbose without drowning the rest.
func Logger(component string) *slog.Logger {
	return slog.New(&componentHandler{component: component})
}

// componentHandler filters by per-component level and delegates
// formatting to the shared base handler, re-resolving it per record so
// SetLogOutput applies to loggers created earlier.
type componentHandler struct {
	component string
	// ops replays WithAttrs/WithGroup calls onto the base handler at
	// Handle time, preserving their relative order.
	ops []func(slog.Handler) slog.Handler
}

func (h *componentHandler) Enabled(_ context.Context, l slog.Level) bool {
	return l >= levelFor(h.component)
}

func (h *componentHandler) Handle(ctx context.Context, r slog.Record) error {
	logMu.RLock()
	base := logBase
	logMu.RUnlock()
	out := base.WithAttrs([]slog.Attr{slog.String("component", h.component)})
	for _, op := range h.ops {
		out = op(out)
	}
	return out.Handle(ctx, r)
}

func (h *componentHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	h2 := &componentHandler{component: h.component, ops: append([]func(slog.Handler) slog.Handler{}, h.ops...)}
	h2.ops = append(h2.ops, func(b slog.Handler) slog.Handler { return b.WithAttrs(attrs) })
	return h2
}

func (h *componentHandler) WithGroup(name string) slog.Handler {
	h2 := &componentHandler{component: h.component, ops: append([]func(slog.Handler) slog.Handler{}, h.ops...)}
	h2.ops = append(h2.ops, func(b slog.Handler) slog.Handler { return b.WithGroup(name) })
	return h2
}
