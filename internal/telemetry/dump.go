package telemetry

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Dump file names, fixed so tooling (and the README) can rely on them.
const (
	TraceFile   = "trace.json"  // Chrome trace_event JSON; open in chrome://tracing
	SpanFile    = "spans.txt"   // plain-text span tree
	MetricsFile = "metrics.txt" // registry text exposition
)

// Dump writes a run's telemetry artifacts into dir (created if needed):
// the Chrome trace, the span tree, and a metrics snapshot. This is what
// `numaprof -telemetry out/` produces after a run. A nil tracer skips
// the two trace files; a nil registry skips the metrics file.
func Dump(dir string, t *Tracer, r *Registry) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	write := func(name string, fill func(io.Writer) error) error {
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("telemetry: %w", err)
		}
		if err := fill(f); err != nil {
			f.Close()
			return fmt.Errorf("telemetry: write %s: %w", name, err)
		}
		return f.Close()
	}
	if t != nil {
		if err := write(TraceFile, t.WriteChromeTrace); err != nil {
			return err
		}
		if err := write(SpanFile, t.WriteTree); err != nil {
			return err
		}
	}
	if r != nil {
		snap := r.Snapshot()
		if err := write(MetricsFile, snap.WriteText); err != nil {
			return err
		}
	}
	return nil
}
