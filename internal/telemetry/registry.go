package telemetry

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonic counter. The nil *Counter is a valid no-op
// instrument, so callers never need to guard.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Set overwrites the value. It exists for mirroring counters maintained
// elsewhere (the store's per-instance Stats) into a registry snapshot;
// organic counters should only ever Add.
func (c *Counter) Set(n uint64) {
	if c == nil {
		return
	}
	c.v.Store(n)
}

// Value reads the counter.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that moves both ways. The nil *Gauge is a no-op.
type Gauge struct{ v atomic.Int64 }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Set overwrites the gauge.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Value reads the gauge.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HistBuckets is the bucket count of the latency histograms: powers of
// two from 1µs up, the last bucket catching everything past ~8.4s.
const HistBuckets = 24

// Histogram is a lock-free power-of-two latency histogram, expvar
// style: monotonic counters a scraper can diff between polls. It is the
// histogram that used to live privately in internal/server, promoted to
// a shared instrument. The nil *Histogram is a no-op.
type Histogram struct {
	count   atomic.Uint64
	sumUs   atomic.Uint64
	buckets [HistBuckets]atomic.Uint64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	h.ObserveUs(uint64(us))
}

// ObserveUs records one duration given in microseconds.
func (h *Histogram) ObserveUs(us uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sumUs.Add(us)
	b := 0
	for v := us; v > 0 && b < HistBuckets-1; v >>= 1 {
		b++
	}
	h.buckets[b].Add(1)
}

// HistogramSnapshot is the wire form of a Histogram. Buckets[i] counts
// observations in [2^(i-1), 2^i) microseconds (Buckets[0]: < 1µs); the
// last bucket is open-ended.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	SumUs   uint64   `json:"sum_us"`
	MeanUs  float64  `json:"mean_us"`
	Buckets []uint64 `json:"buckets_pow2_us"`
}

// Snapshot captures the histogram's current counters.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Buckets: make([]uint64, HistBuckets)}
	if h == nil {
		return s
	}
	s.Count = h.count.Load()
	s.SumUs = h.sumUs.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	if s.Count > 0 {
		s.MeanUs = float64(s.SumUs) / float64(s.Count)
	}
	return s
}

// Registry is a namespace of named instruments. Instrument lookups
// get-or-create under a read-favoring lock; the instruments themselves
// are lock-free atomics, so the steady-state cost of a lit instrument
// is one atomic add. Every method is safe for concurrent use, and all
// methods on the nil *Registry return nil (no-op) instruments.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// Default is the process-wide registry: sched, core's pipeline, profio,
// and faults all register here, and numad merges it into /metrics.
var Default = NewRegistry()

// NewRegistry builds an empty registry. Components that need isolated
// counting (each numad Server instance, tests) create their own.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// RegistrySnapshot is a point-in-time copy of every instrument, the
// exposition form served by /metrics and written by Dump.
type RegistrySnapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms_us"`
}

// Snapshot copies every instrument's current value.
func (r *Registry) Snapshot() RegistrySnapshot {
	s := RegistrySnapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Merge overlays o onto a copy of s (o wins name collisions) and
// returns the result; numad uses it to serve its per-instance
// instruments and the process-wide Default families as one exposition.
func (s RegistrySnapshot) Merge(o RegistrySnapshot) RegistrySnapshot {
	out := RegistrySnapshot{
		Counters:   make(map[string]uint64, len(s.Counters)+len(o.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)+len(o.Gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(s.Histograms)+len(o.Histograms)),
	}
	for name, v := range s.Counters {
		out.Counters[name] = v
	}
	for name, v := range o.Counters {
		out.Counters[name] = v
	}
	for name, v := range s.Gauges {
		out.Gauges[name] = v
	}
	for name, v := range o.Gauges {
		out.Gauges[name] = v
	}
	for name, v := range s.Histograms {
		out.Histograms[name] = v
	}
	for name, v := range o.Histograms {
		out.Histograms[name] = v
	}
	return out
}

// WriteText writes the snapshot in a flat `name value` text exposition,
// sorted by name so the output is diffable between scrapes. Histograms
// expand to three derived lines: _count, _sum_us, _mean_us.
func (s RegistrySnapshot) WriteText(w io.Writer) error {
	lines := make([]string, 0, len(s.Counters)+len(s.Gauges)+3*len(s.Histograms))
	for name, v := range s.Counters {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, v := range s.Gauges {
		lines = append(lines, fmt.Sprintf("%s %d", name, v))
	}
	for name, h := range s.Histograms {
		lines = append(lines,
			fmt.Sprintf("%s_count %d", name, h.Count),
			fmt.Sprintf("%s_sum_us %d", name, h.SumUs),
			fmt.Sprintf("%s_mean_us %.3f", name, h.MeanUs))
	}
	sort.Strings(lines)
	for _, l := range lines {
		if _, err := fmt.Fprintln(w, l); err != nil {
			return err
		}
	}
	return nil
}
