package telemetry

import (
	"log/slog"
	"strings"
	"testing"
)

// resetLogSpec restores the default level config after a test.
func resetLogSpec(t *testing.T) {
	t.Helper()
	t.Cleanup(func() {
		logMu.Lock()
		logDef, logPer = slog.LevelInfo, map[string]slog.Level{}
		logMu.Unlock()
	})
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]slog.Level{
		"debug": slog.LevelDebug, "info": slog.LevelInfo,
		"warn": slog.LevelWarn, "warning": slog.LevelWarn,
		"ERROR": slog.LevelError, " Info ": slog.LevelInfo,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}

func TestSetLogSpecPerComponent(t *testing.T) {
	resetLogSpec(t)
	if err := SetLogSpec("warn,sched=debug,server=info"); err != nil {
		t.Fatal(err)
	}
	if got := levelFor("sched"); got != slog.LevelDebug {
		t.Errorf("sched level = %v, want debug", got)
	}
	if got := levelFor("server"); got != slog.LevelInfo {
		t.Errorf("server level = %v, want info", got)
	}
	if got := levelFor("anything-else"); got != slog.LevelWarn {
		t.Errorf("default level = %v, want warn", got)
	}
}

func TestSetLogSpecRejectsWholeSpecOnError(t *testing.T) {
	resetLogSpec(t)
	if err := SetLogSpec("debug"); err != nil {
		t.Fatal(err)
	}
	// An invalid later entry must leave the earlier valid state intact.
	if err := SetLogSpec("sched=debug,server=loud"); err == nil {
		t.Fatal("SetLogSpec accepted an invalid level")
	}
	if got := levelFor("x"); got != slog.LevelDebug {
		t.Errorf("failed SetLogSpec mutated state: default = %v, want debug", got)
	}
	if err := SetLogSpec("=debug"); err == nil {
		t.Fatal("SetLogSpec accepted an empty component")
	}
}

func TestLoggerFiltersAndTagsComponent(t *testing.T) {
	resetLogSpec(t)
	if err := SetLogSpec("warn,sched=debug"); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	defer SetLogOutput(&sb)()

	Logger("sched").Debug("cell dispatched", "index", 3)
	Logger("server").Info("suppressed at warn default")
	Logger("server").Warn("queue full")

	out := sb.String()
	if !strings.Contains(out, "cell dispatched") || !strings.Contains(out, "component=sched") {
		t.Errorf("sched debug record missing or untagged:\n%s", out)
	}
	if strings.Contains(out, "suppressed at warn default") {
		t.Errorf("info record leaked through warn default:\n%s", out)
	}
	if !strings.Contains(out, "queue full") || !strings.Contains(out, "component=server") {
		t.Errorf("server warn record missing or untagged:\n%s", out)
	}
}

func TestLoggerWithAttrsAndGroups(t *testing.T) {
	resetLogSpec(t)
	var sb strings.Builder
	defer SetLogOutput(&sb)()

	l := Logger("store").With("key", "abc")
	l.WithGroup("fill").Info("computed", "misses", 1)

	out := sb.String()
	for _, want := range []string{"component=store", "key=abc", "fill.misses=1"} {
		if !strings.Contains(out, want) {
			t.Errorf("record missing %q:\n%s", want, out)
		}
	}
}
