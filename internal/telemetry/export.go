package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// chromeEvent is one Chrome trace_event object. Complete events
// ("ph":"X") carry their duration, which is what both chrome://tracing
// and ui.perfetto.dev render as flame rows; tid is the span's lane (its
// root span), so concurrent sweep cells land on separate rows.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"`
	Dur  int64             `json:"dur"`
	Pid  int               `json:"pid"`
	Tid  int64             `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// chromeTrace is the JSON-object trace form ({"traceEvents": [...]}),
// the variant every trace_event consumer accepts.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports every collected span as Chrome trace_event
// JSON. Spans appear in start order; a span whose End never ran is
// exported with the export-time clock as its end and args.unfinished
// set, so an unbalanced trace is visibly unbalanced instead of lost.
// Deterministic for a deterministic clock: map keys are sorted by
// encoding/json and span order is the tracer's own.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans, _ := t.snapshot()
	out := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for i := range spans {
		s := &spans[i]
		ev := chromeEvent{
			Name: s.name,
			Ph:   "X",
			Ts:   s.startUs,
			Dur:  s.durUs(),
			Pid:  1,
			Tid:  s.lane,
		}
		if len(s.attrs) > 0 || !s.ended {
			ev.Args = make(map[string]string, len(s.attrs)+1)
			for _, a := range s.attrs {
				ev.Args[a.Key] = a.Value
			}
			if !s.ended {
				ev.Args["unfinished"] = "true"
			}
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// WriteTree writes the collected spans as an indented text tree —
// children under parents, siblings in start order — with durations,
// attributes, and unfinished markers. The human-readable companion to
// the Chrome export.
func (t *Tracer) WriteTree(w io.Writer) error {
	spans, _ := t.snapshot()
	children := make(map[int64][]*Span, len(spans))
	var roots []*Span
	for i := range spans {
		s := &spans[i]
		if s.parent == 0 {
			roots = append(roots, s)
		} else {
			children[s.parent] = append(children[s.parent], s)
		}
	}
	var walk func(s *Span, depth int) error
	walk = func(s *Span, depth int) error {
		line := fmt.Sprintf("%s%s %dµs", strings.Repeat("  ", depth), s.name, s.durUs())
		for _, a := range s.attrs {
			line += fmt.Sprintf(" %s=%s", a.Key, a.Value)
		}
		if !s.ended {
			line += " [unfinished]"
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
		for _, c := range children[s.id] {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range roots {
		if err := walk(r, 0); err != nil {
			return err
		}
	}
	return nil
}

// phaseStat aggregates every span of one name for Summary.
type phaseStat struct {
	name       string
	count      int
	totalUs    int64
	allocBytes uint64
	unfinished int
}

// Summary renders a per-phase wall/alloc table over the collected
// spans: one row per distinct span name with call count, total and mean
// wall time, and (under WithAllocTracking) the total allocation delta.
// Rows sort by total wall time, descending — the hot-path listing the
// ROADMAP's scaling PRs read first.
func (t *Tracer) Summary() string {
	spans, _ := t.snapshot()
	byName := map[string]*phaseStat{}
	for i := range spans {
		s := &spans[i]
		st := byName[s.name]
		if st == nil {
			st = &phaseStat{name: s.name}
			byName[s.name] = st
		}
		st.count++
		st.totalUs += s.durUs()
		st.allocBytes += s.allocBytes
		if !s.ended {
			st.unfinished++
		}
	}
	stats := make([]*phaseStat, 0, len(byName))
	for _, st := range byName {
		stats = append(stats, st)
	}
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].totalUs != stats[j].totalUs {
			return stats[i].totalUs > stats[j].totalUs
		}
		return stats[i].name < stats[j].name
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-32s %7s %12s %12s %12s\n", "phase", "count", "wall_us", "mean_us", "alloc_bytes")
	for _, st := range stats {
		mean := int64(0)
		if st.count > 0 {
			mean = st.totalUs / int64(st.count)
		}
		fmt.Fprintf(&b, "%-32s %7d %12d %12d %12d", st.name, st.count, st.totalUs, mean, st.allocBytes)
		if st.unfinished > 0 {
			fmt.Fprintf(&b, "  [%d unfinished]", st.unfinished)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
