package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("x_total") != c {
		t.Fatal("Counter is not get-or-create: second lookup returned a different instrument")
	}
	g := r.Gauge("depth")
	g.Add(3)
	g.Add(-1)
	if got := g.Value(); got != 2 {
		t.Fatalf("gauge = %d, want 2", got)
	}
	g.Set(7)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge after Set = %d, want 7", got)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	// The disabled-telemetry contract: nil instruments absorb every
	// method without branching at the call site.
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	c.Inc()
	c.Add(10)
	c.Set(3)
	g.Add(1)
	g.Set(2)
	h.Observe(time.Second)
	h.ObserveUs(5)
	if c.Value() != 0 || g.Value() != 0 || h.Snapshot().Count != 0 {
		t.Fatal("nil instruments leaked state")
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.Histogram("x") != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	if len(r.Snapshot().Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	cases := []struct {
		us     uint64
		bucket int
	}{
		{0, 0}, // < 1µs
		{1, 1}, // [1, 2)
		{2, 2}, // [2, 4)
		{3, 2},
		{4, 3},                     // [4, 8)
		{500, 9},                   // [256, 512)
		{1 << 40, HistBuckets - 1}, // open-ended tail
	}
	for _, c := range cases {
		h.ObserveUs(c.us)
	}
	s := h.Snapshot()
	if s.Count != uint64(len(cases)) {
		t.Fatalf("count = %d, want %d", s.Count, len(cases))
	}
	want := make([]uint64, HistBuckets)
	for _, c := range cases {
		want[c.bucket]++
	}
	for i := range want {
		if s.Buckets[i] != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, s.Buckets[i], want[i])
		}
	}
	if s.MeanUs <= 0 {
		t.Errorf("mean = %v, want > 0", s.MeanUs)
	}
}

func TestRegistryConcurrentGetOrCreate(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.Counter("shared_total").Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total").Value(); got != 1600 {
		t.Fatalf("shared counter = %d, want 1600", got)
	}
}

func TestSnapshotMergePrecedence(t *testing.T) {
	a, b := NewRegistry(), NewRegistry()
	a.Counter("both").Set(1)
	a.Counter("only_a").Set(10)
	b.Counter("both").Set(2)
	b.Counter("only_b").Set(20)
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Counters["both"] != 2 {
		t.Errorf("merge collision: got %d, want the overlay's 2", m.Counters["both"])
	}
	if m.Counters["only_a"] != 10 || m.Counters["only_b"] != 20 {
		t.Errorf("merge lost a disjoint key: %v", m.Counters)
	}
}

func TestWriteTextSortedExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total").Set(2)
	r.Counter("a_total").Set(1)
	r.Gauge("depth").Set(-3)
	r.Histogram("lat").ObserveUs(10)
	var sb strings.Builder
	if err := r.Snapshot().WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := "a_total 1\nb_total 2\ndepth -3\nlat_count 1\nlat_mean_us 10.000\nlat_sum_us 10\n"
	if sb.String() != want {
		t.Errorf("exposition drifted:\ngot:\n%swant:\n%s", sb.String(), want)
	}
}

func TestTimedRecordsCounterAndHistogram(t *testing.T) {
	before := Default.Counter("unit_test_phase_total").Value()
	_, done := Timed(context.Background(), "unit_test.phase")
	done()
	if got := Default.Counter("unit_test_phase_total").Value(); got != before+1 {
		t.Fatalf("Timed counter = %d, want %d", got, before+1)
	}
	if Default.Histogram("unit_test_phase_us").Snapshot().Count == 0 {
		t.Fatal("Timed recorded no histogram observation")
	}
}
