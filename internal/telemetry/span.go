package telemetry

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Attr is one span attribute. Values are strings so exports are
// deterministic and need no reflection.
type Attr struct {
	Key, Value string
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: fmt.Sprintf("%d", v)} }

// Span is one timed, attributed operation. The nil *Span is valid and
// all its methods are no-ops — the disabled-tracing fast path.
type Span struct {
	t      *Tracer
	id     int64
	parent int64 // 0: a root span
	lane   int64 // the root span's id; Chrome row assignment
	name   string
	attrs  []Attr

	startUs    int64
	endUs      int64
	ended      bool
	allocStart uint64
	allocBytes uint64
}

// spanKey carries the current span through a context.
type spanKey struct{}

// active is the process-default tracer; nil means tracing is disabled
// and Start is one atomic load plus a ctx lookup.
var active atomic.Pointer[Tracer]

// SetTracer installs t as the process-default tracer (nil disables) and
// returns the previous one, so tests can restore:
//
//	defer telemetry.SetTracer(telemetry.SetTracer(nil))
func SetTracer(t *Tracer) *Tracer { return active.Swap(t) }

// Enabled reports whether a process-default tracer is installed.
func Enabled() bool { return active.Load() != nil }

// Start opens a span named name under the span carried by ctx (or as a
// root span of the process-default tracer) and returns a derived
// context carrying it. When tracing is disabled and ctx carries no
// span, it returns (ctx, nil); the nil span's End is a no-op, so call
// sites never branch.
func Start(ctx context.Context, name string, attrs ...Attr) (context.Context, *Span) {
	parent, _ := ctx.Value(spanKey{}).(*Span)
	var t *Tracer
	if parent != nil {
		t = parent.t
	} else {
		t = active.Load()
	}
	if t == nil {
		return ctx, nil
	}
	s := t.start(parent, name, attrs)
	return context.WithValue(ctx, spanKey{}, s), s
}

// End closes the span. A second End on the same span is a no-op, and a
// span never ended at all is exported as unfinished — unbalanced calls
// degrade the trace, never the program.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.t.end(s)
}

// Annotate appends attributes to an open span.
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil {
		return
	}
	s.t.mu.Lock()
	s.attrs = append(s.attrs, attrs...)
	s.t.mu.Unlock()
}

// Tracer collects spans. Timestamps come from its clock — wall
// microseconds since the tracer was built by default, injectable for
// deterministic tests — so traces are self-relative and golden-file
// friendly.
type Tracer struct {
	mu     sync.Mutex
	clock  func() int64 // microseconds
	allocs bool
	nextID int64
	spans  []*Span
}

// TracerOption configures NewTracer.
type TracerOption func(*Tracer)

// WithClock replaces the wall clock with a deterministic microsecond
// source (tests; simulated time).
func WithClock(clock func() int64) TracerOption {
	return func(t *Tracer) { t.clock = clock }
}

// WithAllocTracking records the process TotalAlloc delta across each
// span via runtime.ReadMemStats. That read stops the world, so this is
// for coarse-phase CLI telemetry (`numaprof -telemetry`), not for a
// long-lived daemon.
func WithAllocTracking() TracerOption {
	return func(t *Tracer) { t.allocs = true }
}

// NewTracer builds a tracer.
func NewTracer(opts ...TracerOption) *Tracer {
	t := &Tracer{}
	for _, o := range opts {
		o(t)
	}
	if t.clock == nil {
		start := time.Now()
		t.clock = func() int64 { return time.Since(start).Microseconds() }
	}
	return t
}

func (t *Tracer) start(parent *Span, name string, attrs []Attr) *Span {
	s := &Span{t: t, name: name, attrs: attrs}
	if parent != nil {
		s.parent = parent.id
		s.lane = parent.lane
	}
	if t.allocs {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		s.allocStart = ms.TotalAlloc
	}
	t.mu.Lock()
	t.nextID++
	s.id = t.nextID
	if s.lane == 0 {
		s.lane = s.id
	}
	s.startUs = t.clock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

func (t *Tracer) end(s *Span) {
	var alloc uint64
	if t.allocs {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		alloc = ms.TotalAlloc
	}
	t.mu.Lock()
	if !s.ended {
		s.ended = true
		s.endUs = t.clock()
		if t.allocs && alloc >= s.allocStart {
			s.allocBytes = alloc - s.allocStart
		}
	}
	t.mu.Unlock()
}

// snapshot copies the span list (and each span's mutable fields) so the
// exporters work on a stable view even while spans are still ending.
// Unfinished spans get the current clock as a provisional end.
func (t *Tracer) snapshot() ([]Span, int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.clock()
	out := make([]Span, len(t.spans))
	for i, s := range t.spans {
		out[i] = *s
		if !out[i].ended {
			out[i].endUs = now
		}
	}
	return out, now
}

// durUs is the span's duration, clamped non-negative.
func (s *Span) durUs() int64 {
	if s.endUs < s.startUs {
		return 0
	}
	return s.endUs - s.startUs
}
