// Package addrcentric implements the address-centric attribution of
// Section 5.2 of the paper: summarising, per thread, which part of each
// variable the thread actually touched. For every (variable, scope,
// thread) triple it maintains the [min, max] effective addresses
// accessed, the access count, and the accumulated latency, where a
// scope is either the whole program or one parallel region.
//
// The per-region scoping is what makes the analysis actionable: in the
// paper's AMG2006 study, RAP_diag_data's whole-program pattern is an
// uninterpretable blur (Figure 4), while the pattern inside
// hypre_BoomerAMGRelax._omp — the region with 74.2% of the variable's
// remote latency — is cleanly block-regular (Figure 5) and directly
// dictates the block-wise page distribution that fixes it.
package addrcentric

import (
	"sort"

	"repro/internal/cct"
	"repro/internal/datacentric"
	"repro/internal/units"
)

// WholeProgram is the scope covering all execution.
const WholeProgram = ""

// ThreadRange is one thread's summary for a variable in a scope.
type ThreadRange struct {
	Thread  int
	Range   cct.Range
	Count   uint64
	Latency units.Cycles
}

// normalize returns the range bounds normalised to [0,1] over the
// variable's extent.
func (tr ThreadRange) normalize(v *datacentric.Variable) (lo, hi float64) {
	return v.NormalizeAddr(tr.Range.Min), v.NormalizeAddr(tr.Range.Max)
}

// Pattern is the access pattern of one variable (or one of its bins —
// the synthetic sub-variables of Section 5.2) in one scope: one
// [min,max] summary per thread.
type Pattern struct {
	Var   *datacentric.Variable
	Scope string
	// Bin is WholeVariable for the full extent, or the bin index for
	// a synthetic sub-variable pattern.
	Bin int

	perThread map[int]*ThreadRange
}

// Threads returns the per-thread summaries sorted by thread id — the
// rows of the address-centric view.
func (p *Pattern) Threads() []ThreadRange {
	out := make([]ThreadRange, 0, len(p.perThread))
	for _, tr := range p.perThread {
		out = append(out, *tr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Thread < out[j].Thread })
	return out
}

// ThreadRange returns thread t's summary.
func (p *Pattern) ThreadRange(t int) (ThreadRange, bool) {
	tr, ok := p.perThread[t]
	if !ok {
		return ThreadRange{}, false
	}
	return *tr, true
}

// Normalized returns thread t's accessed range normalised to [0,1]
// over the variable's extent.
func (p *Pattern) Normalized(t int) (lo, hi float64, ok bool) {
	tr, found := p.perThread[t]
	if !found {
		return 0, 0, false
	}
	lo, hi = tr.normalize(p.Var)
	return lo, hi, true
}

// TotalLatency sums latency across threads.
func (p *Pattern) TotalLatency() units.Cycles {
	var total units.Cycles
	for _, tr := range p.perThread {
		total += tr.Latency
	}
	return total
}

// TotalCount sums access counts across threads.
func (p *Pattern) TotalCount() uint64 {
	var total uint64
	for _, tr := range p.perThread {
		total += tr.Count
	}
	return total
}

// MeanOverlap measures how much consecutive threads' normalised ranges
// overlap, averaged pairwise, as a regularity indicator: ~0 for the
// disjoint staircase of LULESH's z (Figure 3), large for Blackscholes'
// heavily overlapping buffer sections (Figure 8), and ~1 when every
// thread sweeps the whole variable.
func (p *Pattern) MeanOverlap() float64 {
	trs := p.Threads()
	if len(trs) < 2 {
		return 0
	}
	var sum float64
	var pairs int
	for i := 1; i < len(trs); i++ {
		a0, a1 := trs[i-1].normalize(p.Var)
		b0, b1 := trs[i].normalize(p.Var)
		lo, hi := maxf(a0, b0), minf(a1, b1)
		span := minf(a1-a0, b1-b0)
		if span <= 0 {
			continue
		}
		if hi > lo {
			sum += (hi - lo) / span
		}
		pairs++
	}
	if pairs == 0 {
		return 0
	}
	return sum / float64(pairs)
}

// IsStaircase reports whether threads touch essentially disjoint,
// monotonically increasing sub-ranges — the co-location-friendly
// pattern that tells the user a block-wise distribution will work
// (Sections 8.1, 8.2). tol is the tolerated normalised overlap between
// neighbours (e.g. 0.1).
func (p *Pattern) IsStaircase(tol float64) bool {
	trs := p.Threads()
	if len(trs) < 2 {
		return false
	}
	for i := 1; i < len(trs); i++ {
		_, prevHi := trs[i-1].normalize(p.Var)
		lo, hi := trs[i].normalize(p.Var)
		if hi < prevHi-tol { // ranges must march upward
			return false
		}
		if prevHi-lo > tol { // and overlap at most tol
			return false
		}
	}
	return true
}

// WholeVariable selects the pattern aggregated over a variable's full
// extent, as opposed to one of its bins.
const WholeVariable = -1

// key identifies a pattern bucket.
type key struct {
	varID int // allocation id
	bin   int // WholeVariable or a bin index
	scope string
}

// Tracker accumulates patterns. It is driven by the profiler: Record
// on every sampled access, EnterRegion/LeaveRegion at region bounds.
type Tracker struct {
	patterns map[key]*Pattern
	scope    string
}

// NewTracker creates an empty tracker scoped to the whole program.
func NewTracker() *Tracker {
	return &Tracker{patterns: make(map[key]*Pattern), scope: WholeProgram}
}

// EnterRegion switches the current region scope. Repeated entries to
// the same region name accumulate into one pattern (the paper
// aggregates a region's instances).
func (t *Tracker) EnterRegion(name string) { t.scope = name }

// LeaveRegion restores whole-program scope.
func (t *Tracker) LeaveRegion() { t.scope = WholeProgram }

// Scope returns the current region scope.
func (t *Tracker) Scope() string { return t.scope }

// Record notes a sampled access by thread to addr within v, updating
// the whole-variable pattern and — for binned variables — the touched
// bin's own pattern (each bin is a synthetic variable with its own
// address-centric attribution, Section 5.2), in both the whole-program
// scope and the current region's.
func (t *Tracker) Record(v *datacentric.Variable, thread int, addr uint64, latency units.Cycles) {
	t.record(v, WholeVariable, WholeProgram, thread, addr, latency)
	if t.scope != WholeProgram {
		t.record(v, WholeVariable, t.scope, thread, addr, latency)
	}
	if v.Bins > 1 {
		bin := v.BinOf(addr)
		t.record(v, bin, WholeProgram, thread, addr, latency)
		if t.scope != WholeProgram {
			t.record(v, bin, t.scope, thread, addr, latency)
		}
	}
}

func (t *Tracker) record(v *datacentric.Variable, bin int, scope string, thread int, addr uint64, latency units.Cycles) {
	k := key{varID: v.Region.ID, bin: bin, scope: scope}
	p, ok := t.patterns[k]
	if !ok {
		p = &Pattern{Var: v, Scope: scope, Bin: bin, perThread: make(map[int]*ThreadRange)}
		t.patterns[k] = p
	}
	tr, ok := p.perThread[thread]
	if !ok {
		tr = &ThreadRange{Thread: thread, Range: cct.Range{Min: addr, Max: addr}}
		p.perThread[thread] = tr
	} else {
		tr.Range = tr.Range.Extend(addr)
	}
	tr.Count++
	tr.Latency += latency
}

// Pattern returns v's whole-extent pattern in the given scope.
func (t *Tracker) Pattern(v *datacentric.Variable, scope string) (*Pattern, bool) {
	p, ok := t.patterns[key{varID: v.Region.ID, bin: WholeVariable, scope: scope}]
	return p, ok
}

// BinPattern returns the pattern of one bin of v in the given scope.
func (t *Tracker) BinPattern(v *datacentric.Variable, bin int, scope string) (*Pattern, bool) {
	p, ok := t.patterns[key{varID: v.Region.ID, bin: bin, scope: scope}]
	return p, ok
}

// HotBin returns the bin of v with the most sampled accesses in the
// scope, with its pattern — Section 5.2's "we only use the access
// patterns of the hot bins to represent the access patterns of the
// whole variable". ok is false for unbinned or unsampled variables.
func (t *Tracker) HotBin(v *datacentric.Variable, scope string) (bin int, p *Pattern, ok bool) {
	var best uint64
	for b := 0; b < v.Bins; b++ {
		if bp, found := t.BinPattern(v, b, scope); found {
			if c := bp.TotalCount(); c > best || (c == best && !ok) {
				best, bin, p, ok = c, b, bp, true
			}
		}
	}
	if best == 0 {
		return 0, nil, false
	}
	return bin, p, ok
}

// Scopes returns every scope that has a pattern for v, whole-program
// first, then region scopes sorted by descending latency — the order a
// user drills down in (Section 5.2: use latency to pick the contexts
// that matter).
func (t *Tracker) Scopes(v *datacentric.Variable) []string {
	type sc struct {
		name string
		lat  units.Cycles
	}
	var regions []sc
	hasWhole := false
	for k, p := range t.patterns {
		if k.varID != v.Region.ID || k.bin != WholeVariable {
			continue
		}
		if k.scope == WholeProgram {
			hasWhole = true
			continue
		}
		regions = append(regions, sc{k.scope, p.TotalLatency()})
	}
	sort.Slice(regions, func(i, j int) bool {
		if regions[i].lat != regions[j].lat {
			return regions[i].lat > regions[j].lat
		}
		return regions[i].name < regions[j].name
	})
	var out []string
	if hasWhole {
		out = append(out, WholeProgram)
	}
	for _, r := range regions {
		out = append(out, r.name)
	}
	return out
}

// Restore installs a fully formed pattern, for profile
// deserialisation. Existing data for the same (variable, scope) is
// replaced.
func (t *Tracker) Restore(v *datacentric.Variable, scope string, trs []ThreadRange) {
	t.RestoreBin(v, WholeVariable, scope, trs)
}

// RestoreBin installs a fully formed bin pattern (bin may be
// WholeVariable), for profile deserialisation.
func (t *Tracker) RestoreBin(v *datacentric.Variable, bin int, scope string, trs []ThreadRange) {
	p := &Pattern{Var: v, Scope: scope, Bin: bin, perThread: make(map[int]*ThreadRange, len(trs))}
	for _, tr := range trs {
		cp := tr
		p.perThread[tr.Thread] = &cp
	}
	t.patterns[key{varID: v.Region.ID, bin: bin, scope: scope}] = p
}

// Merge folds other's patterns into t ([min,max] union, counts and
// latency added) — the hpcprof cross-thread/process reduction.
func (t *Tracker) Merge(other *Tracker) {
	for k, src := range other.patterns {
		dst, ok := t.patterns[k]
		if !ok {
			dst = &Pattern{Var: src.Var, Scope: src.Scope, Bin: src.Bin, perThread: make(map[int]*ThreadRange)}
			t.patterns[k] = dst
		}
		for th, str := range src.perThread {
			dtr, ok := dst.perThread[th]
			if !ok {
				cp := *str
				dst.perThread[th] = &cp
				continue
			}
			dtr.Range = dtr.Range.Union(str.Range)
			dtr.Count += str.Count
			dtr.Latency += str.Latency
		}
	}
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
