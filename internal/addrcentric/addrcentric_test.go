package addrcentric

import (
	"math"
	"testing"

	"repro/internal/datacentric"
	"repro/internal/vm"
)

func testVar(id int, base, size uint64) *datacentric.Variable {
	return &datacentric.Variable{
		Name:   "z",
		Region: vm.Region{ID: id, Base: base, Size: size},
		Bins:   1,
	}
}

func TestRecordAndPattern(t *testing.T) {
	tr := NewTracker()
	v := testVar(0, 1000, 1000)
	tr.Record(v, 0, 1100, 50)
	tr.Record(v, 0, 1300, 70)
	tr.Record(v, 1, 1900, 200)

	p, ok := tr.Pattern(v, WholeProgram)
	if !ok {
		t.Fatal("whole-program pattern missing")
	}
	r0, ok := p.ThreadRange(0)
	if !ok || r0.Range.Min != 1100 || r0.Range.Max != 1300 || r0.Count != 2 || r0.Latency != 120 {
		t.Fatalf("thread 0 = %+v", r0)
	}
	if p.TotalCount() != 3 || p.TotalLatency() != 320 {
		t.Fatalf("totals = %d, %v", p.TotalCount(), p.TotalLatency())
	}
	if _, ok := p.ThreadRange(9); ok {
		t.Fatal("absent thread should have no range")
	}
}

func TestNormalized(t *testing.T) {
	tr := NewTracker()
	v := testVar(0, 1000, 1000)
	tr.Record(v, 2, 1250, 0)
	tr.Record(v, 2, 1750, 0)
	p, _ := tr.Pattern(v, WholeProgram)
	lo, hi, ok := p.Normalized(2)
	if !ok || math.Abs(lo-0.25) > 1e-9 || math.Abs(hi-0.75) > 1e-9 {
		t.Fatalf("Normalized = %v, %v, %v", lo, hi, ok)
	}
	if _, _, ok := p.Normalized(5); ok {
		t.Fatal("absent thread should not normalise")
	}
}

func TestRegionScoping(t *testing.T) {
	tr := NewTracker()
	v := testVar(0, 0x10000, 8000)

	// Irregular whole-program accesses from two different regions.
	tr.EnterRegion("relax._omp")
	tr.Record(v, 0, 0x10000, 10)
	tr.Record(v, 1, 0x10000+2000, 10)
	tr.LeaveRegion()

	tr.EnterRegion("interp._omp")
	tr.Record(v, 0, 0x10000+7000, 10)
	tr.LeaveRegion()

	whole, _ := tr.Pattern(v, WholeProgram)
	r0, _ := whole.ThreadRange(0)
	if r0.Range.Min != 0x10000 || r0.Range.Max != 0x10000+7000 {
		t.Fatalf("whole-program thread 0 range = %+v", r0.Range)
	}

	relax, ok := tr.Pattern(v, "relax._omp")
	if !ok {
		t.Fatal("region pattern missing")
	}
	rr0, _ := relax.ThreadRange(0)
	if rr0.Range.Max != 0x10000 {
		t.Fatalf("region thread 0 range = %+v (should exclude other region)", rr0.Range)
	}
	if _, ok := relax.ThreadRange(1); !ok {
		t.Fatal("region should track thread 1")
	}
}

func TestScopesOrderedByLatency(t *testing.T) {
	tr := NewTracker()
	v := testVar(0, 0, 10000)
	tr.EnterRegion("cold")
	tr.Record(v, 0, 10, 5)
	tr.LeaveRegion()
	tr.EnterRegion("hot")
	tr.Record(v, 0, 20, 500)
	tr.LeaveRegion()
	scopes := tr.Scopes(v)
	if len(scopes) != 3 || scopes[0] != WholeProgram || scopes[1] != "hot" || scopes[2] != "cold" {
		t.Fatalf("scopes = %q", scopes)
	}
}

// The Figure 3 pattern: each thread touches a disjoint ascending block.
func TestStaircaseDetection(t *testing.T) {
	tr := NewTracker()
	v := testVar(0, 0, 8000)
	for th := 0; th < 8; th++ {
		base := uint64(th) * 1000
		tr.Record(v, th, base, 10)
		tr.Record(v, th, base+999, 10)
	}
	p, _ := tr.Pattern(v, WholeProgram)
	if !p.IsStaircase(0.05) {
		t.Fatal("disjoint ascending blocks should be a staircase")
	}
	if ov := p.MeanOverlap(); ov > 0.01 {
		t.Fatalf("MeanOverlap = %v, want ~0", ov)
	}
}

// The Figure 8 pattern: threads touch heavily overlapping staggered
// ranges (Blackscholes' five buffer sections).
func TestOverlappingPatternIsNotStaircase(t *testing.T) {
	tr := NewTracker()
	v := testVar(0, 0, 0x900)
	// Paper's example: threads touch (0x100,0x700), (0x200,0x800), (0x300,0x900).
	spans := [][2]uint64{{0x100, 0x700}, {0x200, 0x800}, {0x300, 0x900}}
	for th, s := range spans {
		tr.Record(v, th, s[0], 10)
		tr.Record(v, th, s[1]-1, 10)
	}
	p, _ := tr.Pattern(v, WholeProgram)
	if p.IsStaircase(0.1) {
		t.Fatal("staggered overlapping ranges are not a staircase")
	}
	if ov := p.MeanOverlap(); ov < 0.5 {
		t.Fatalf("MeanOverlap = %v, want large", ov)
	}
}

func TestFullSweepPattern(t *testing.T) {
	// Every thread sweeps the whole variable: maximal overlap.
	tr := NewTracker()
	v := testVar(0, 0, 10000)
	for th := 0; th < 4; th++ {
		tr.Record(v, th, 0, 1)
		tr.Record(v, th, 9999, 1)
	}
	p, _ := tr.Pattern(v, WholeProgram)
	if ov := p.MeanOverlap(); math.Abs(ov-1.0) > 1e-9 {
		t.Fatalf("MeanOverlap = %v, want 1.0", ov)
	}
	if p.IsStaircase(0.1) {
		t.Fatal("full sweep is not a staircase")
	}
}

func TestMerge(t *testing.T) {
	v := testVar(0, 0, 1000)
	a, b := NewTracker(), NewTracker()
	a.Record(v, 0, 100, 10)
	b.Record(v, 0, 500, 20)
	b.Record(v, 1, 900, 30)
	a.Merge(b)
	p, _ := a.Pattern(v, WholeProgram)
	r0, _ := p.ThreadRange(0)
	if r0.Range.Min != 100 || r0.Range.Max != 500 || r0.Count != 2 || r0.Latency != 30 {
		t.Fatalf("merged thread 0 = %+v", r0)
	}
	if _, ok := p.ThreadRange(1); !ok {
		t.Fatal("merge should import thread 1")
	}
}

func TestSingleThreadPatternDegenerate(t *testing.T) {
	tr := NewTracker()
	v := testVar(0, 0, 100)
	tr.Record(v, 0, 50, 1)
	p, _ := tr.Pattern(v, WholeProgram)
	if p.MeanOverlap() != 0 {
		t.Error("single thread overlap should be 0")
	}
	if p.IsStaircase(0.1) {
		t.Error("single thread is not a staircase")
	}
}

// Section 5.2: bins are synthetic variables with their own
// address-centric attributions; the hot bin's pattern represents the
// variable.
func TestBinPatternsAndHotBin(t *testing.T) {
	tr := NewTracker()
	v := testVar(0, 0x10000, 50000)
	v.Bins = 5 // 10000 bytes per bin

	// 90% of accesses land in bin 4, spread as a staircase across
	// threads; a few stray accesses hit bin 0.
	hotLo := v.Region.Base + 40000
	for th := 0; th < 4; th++ {
		for k := 0; k < 9; k++ {
			tr.Record(v, th, hotLo+uint64(th)*2500+uint64(k)*64, 10)
		}
	}
	tr.Record(v, 0, v.Region.Base+100, 10)

	bin, hot, ok := tr.HotBin(v, WholeProgram)
	if !ok || bin != 4 {
		t.Fatalf("HotBin = %d, %v; want 4, true", bin, ok)
	}
	if hot.TotalCount() != 36 {
		t.Fatalf("hot bin count = %d, want 36", hot.TotalCount())
	}
	if hot.Bin != 4 {
		t.Fatalf("pattern Bin = %d", hot.Bin)
	}
	// The cold bin has its own, separate pattern.
	cold, ok := tr.BinPattern(v, 0, WholeProgram)
	if !ok || cold.TotalCount() != 1 {
		t.Fatalf("cold bin = %+v, %v", cold, ok)
	}
	// The whole-variable pattern still aggregates everything.
	whole, _ := tr.Pattern(v, WholeProgram)
	if whole.TotalCount() != 37 {
		t.Fatalf("whole count = %d, want 37", whole.TotalCount())
	}
	// Unbinned variable: no bin patterns, no hot bin.
	u := testVar(1, 0x90000, 100)
	tr.Record(u, 0, u.Region.Base, 1)
	if _, _, ok := tr.HotBin(u, WholeProgram); ok {
		t.Fatal("unbinned variable should have no hot bin")
	}
}

// The paper's reason for per-bin patterns: the whole-variable pattern
// can look like every thread sweeps everything, while the hot bin shows
// a clean staircase that the whole-extent normalisation flattens.
func TestHotBinRevealsPatternHiddenAtFullExtent(t *testing.T) {
	tr := NewTracker()
	v := testVar(0, 0, 100000)
	v.Bins = 5
	// All threads touch scattered cold addresses across the extent...
	for th := 0; th < 4; th++ {
		tr.Record(v, th, uint64(th)*11, 1)
		tr.Record(v, th, 99990-uint64(th)*7, 1)
	}
	// ...but the hot bin (bin 2: [40000,60000)) is a staircase.
	for th := 0; th < 4; th++ {
		base := 40000 + uint64(th)*5000
		for k := 0; k < 20; k++ {
			tr.Record(v, th, base+uint64(k)*64, 10)
		}
	}
	whole, _ := tr.Pattern(v, WholeProgram)
	if whole.IsStaircase(0.1) {
		t.Fatal("whole-extent pattern should be blurred by the cold accesses")
	}
	_, hot, ok := tr.HotBin(v, WholeProgram)
	if !ok {
		t.Fatal("no hot bin")
	}
	// Per-thread hot-bin ranges are disjoint ascending blocks; check
	// via raw ranges (normalisation is relative to the whole extent).
	trs := hot.Threads()
	if len(trs) != 4 {
		t.Fatalf("hot bin threads = %d", len(trs))
	}
	for i := 1; i < len(trs); i++ {
		if trs[i].Range.Min <= trs[i-1].Range.Max {
			t.Fatalf("hot-bin ranges overlap: %+v then %+v", trs[i-1].Range, trs[i].Range)
		}
	}
}
