// Package profio serialises profiles to a versioned measurement format
// and loads them back, reproducing the file-based architecture of the
// real tool (Section 7): hpcrun writes per-execution measurement
// databases, and hpcprof/hpcviewer consume them offline — possibly on a
// different machine, long after the run.
//
// Format v2 is sectioned and checksummed: a magic first line followed
// by one JSON record per line, each carrying a section name, the
// CRC32 (IEEE) of its body, and the body itself. Sections are written
// in a fixed order (meta, binary, vars, tree, patterns, timeline), so a
// file truncated mid-write loses only its tail, and a bit-flip is
// confined to the section it lands in. Two loaders consume the format:
//
//   - Load is strict: any checksum mismatch, unparseable line, or
//     missing core section rejects the whole file. Use it when a wrong
//     answer is worse than no answer.
//   - LoadLenient salvages: it recovers every section that is intact,
//     synthesises placeholders for what is lost, and returns a
//     structured Report of the damage, which is also folded into the
//     profile's Health block so every view shows the degradation.
//
// Version-1 files (a single JSON document, no checksums) are still
// readable by both loaders.
//
// Save captures everything a viewer needs: the program description
// (functions, sites, statics), the merged augmented CCT with metric
// columns and per-thread [min,max] ranges, the per-variable
// data-centric profiles with bins and first-touch results, the
// address-centric patterns per scope, totals, the pipeline health
// ledger, and (when traced) the time-stamped sample list. Load
// reconstructs a core.Profile that every view renders identically to
// the live one.
package profio

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"strings"

	"repro/internal/addrcentric"
	"repro/internal/cct"
	"repro/internal/core"
	"repro/internal/datacentric"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/pmu"
	"repro/internal/proc"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/vm"
)

// FormatVersion identifies the measurement-file schema.
const FormatVersion = 2

// magicV2 is the first line of a v2 measurement file. Version-1 files
// start with '{' instead, which is how the loaders tell them apart.
const magicV2 = "#numaprof-measurement-v2"

// Section names, in the order Save writes them. The core sections are
// required by the strict loader; timeline is optional (written only
// when the run was traced).
const (
	SectionMeta     = "meta"
	SectionBinary   = "binary"
	SectionVars     = "vars"
	SectionTree     = "tree"
	SectionPatterns = "patterns"
	SectionTimeline = "timeline"
)

// coreSections lists the sections a strict Load requires.
var coreSections = []string{SectionMeta, SectionBinary, SectionVars, SectionTree, SectionPatterns}

// Document is the in-memory assembly of a measurement file: the union
// of all sections. Version-1 files are exactly one Document as a single
// JSON object; version-2 files shard it into checksummed sections.
type Document struct {
	Version   int             `json:"version"`
	App       string          `json:"app"`
	Machine   topology.Config `json:"machine"`
	Mechanism string          `json:"mechanism"`
	Period    uint64          `json:"period"`

	Binary   BinaryDoc     `json:"binary"`
	Totals   core.Totals   `json:"totals"`
	Health   core.Health   `json:"health,omitempty"`
	Vars     []VarDoc      `json:"vars"`
	Tree     *NodeDoc      `json:"tree"`
	Patterns []PatternDoc  `json:"patterns"`
	Timeline []trace.Event `json:"timeline,omitempty"`
	HasFT    bool          `json:"has_first_touch"`
}

// metaDoc is the v2 meta section: everything small enough to want
// first, so a tail-truncated file still identifies itself.
type metaDoc struct {
	Version   int             `json:"version"`
	App       string          `json:"app"`
	Machine   topology.Config `json:"machine"`
	Mechanism string          `json:"mechanism"`
	Period    uint64          `json:"period"`
	HasFT     bool            `json:"has_first_touch"`
	Totals    core.Totals     `json:"totals"`
	Health    core.Health     `json:"health"`
}

// sectionRec is one line of a v2 file after the magic.
type sectionRec struct {
	Name string          `json:"section"`
	CRC  uint32          `json:"crc"`
	Body json.RawMessage `json:"body"`
}

// BinaryDoc is the serialised program description.
type BinaryDoc struct {
	Name    string          `json:"name"`
	Funcs   []isa.Function  `json:"funcs"`
	Sites   []isa.Site      `json:"sites"`
	Statics []isa.StaticVar `json:"statics"`
}

// FrameDoc is one serialised call-path frame.
type FrameDoc struct {
	Fn   isa.FuncID `json:"fn"`
	Line int        `json:"line"`
}

// VarDoc is one variable's serialised data-centric profile.
type VarDoc struct {
	Name        string              `json:"name"`
	Kind        datacentric.VarKind `json:"kind"`
	Region      vm.Region           `json:"region"`
	AllocPath   []FrameDoc          `json:"alloc_path,omitempty"`
	AllocSite   isa.SiteID          `json:"alloc_site"`
	AllocThread int                 `json:"alloc_thread"`
	BinCount    int                 `json:"bin_count"`

	Samples   float64         `json:"samples"`
	Ml        float64         `json:"ml"`
	Mr        float64         `json:"mr"`
	PerDomain []float64       `json:"per_domain"`
	Latency   units.Cycles    `json:"latency"`
	RemoteLat units.Cycles    `json:"remote_lat"`
	LPI       float64         `json:"lpi"`
	RLatShare float64         `json:"rlat_share"`
	MrShare   float64         `json:"mr_share"`
	Bins      []core.BinStats `json:"bins,omitempty"`

	FirstTouchThreads []int      `json:"ft_threads,omitempty"`
	FirstTouchPath    []FrameDoc `json:"ft_path,omitempty"`
	ProtectedPages    int        `json:"ft_pages,omitempty"`
}

// NodeDoc is one serialised CCT node.
type NodeDoc struct {
	Kind  uint8  `json:"k"`
	Fn    int32  `json:"f,omitempty"`
	Line  int    `json:"l,omitempty"`
	Site  int32  `json:"s,omitempty"`
	Label string `json:"n,omitempty"`

	Metrics  map[metrics.ID]float64 `json:"m,omitempty"`
	Ranges   map[int]cct.Range      `json:"r,omitempty"`
	Children []*NodeDoc             `json:"c,omitempty"`
}

// PatternDoc is one (variable, bin, scope) address-centric pattern.
// Bin is addrcentric.WholeVariable for the whole-extent pattern.
type PatternDoc struct {
	RegionID int                       `json:"region_id"`
	Bin      int                       `json:"bin"`
	Scope    string                    `json:"scope"`
	Threads  []addrcentric.ThreadRange `json:"threads"`
}

// Report is the structured outcome of a lenient load: which sections
// survived, which were damaged or missing, and what had to be
// synthesised to keep going.
type Report struct {
	// Version is the format version announced by the file (0 when even
	// that could not be recovered).
	Version int
	// Intact lists sections recovered with matching checksums.
	Intact []string
	// Corrupt lists damage found: checksum mismatches, unparseable
	// lines (the signature of truncation mid-record), undecodable
	// bodies.
	Corrupt []string
	// Missing lists core sections absent from the file — the signature
	// of truncation at a section boundary.
	Missing []string
	// Synthesized lists placeholders invented for lost state (e.g. a
	// 1-domain machine when the meta section is gone).
	Synthesized []string
}

// Clean reports whether the file loaded with no damage at all.
func (r *Report) Clean() bool {
	return len(r.Corrupt) == 0 && len(r.Missing) == 0 && len(r.Synthesized) == 0
}

// Damage flattens the report into the strings core.Health carries as
// FileDamage; nil when clean.
func (r *Report) Damage() []string {
	var out []string
	for _, c := range r.Corrupt {
		out = append(out, "corrupt: "+c)
	}
	for _, m := range r.Missing {
		out = append(out, "missing section: "+m)
	}
	for _, s := range r.Synthesized {
		out = append(out, "synthesized: "+s)
	}
	return out
}

// Summary renders the report for the CLI.
func (r *Report) Summary() string {
	var b strings.Builder
	if r.Clean() {
		fmt.Fprintf(&b, "measurement file clean (v%d, sections: %s)", r.Version, strings.Join(r.Intact, ", "))
		return b.String()
	}
	fmt.Fprintf(&b, "measurement file damaged (v%d)\n", r.Version)
	fmt.Fprintf(&b, "  recovered: %s\n", strings.Join(r.Intact, ", "))
	for _, d := range r.Damage() {
		fmt.Fprintf(&b, "  %s\n", d)
	}
	return strings.TrimRight(b.String(), "\n")
}

// Save lives in encoder.go: it streams the same sectioned v2 document
// through pooled, reused buffers. The document path below
// (Encode + writeDocument) is kept as the reference implementation —
// the byte-identity regression test diffs the two outputs across the
// golden profiles.

// writeDocument shards doc into checksummed sections.
func writeDocument(w io.Writer, doc *Document) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, magicV2); err != nil {
		return err
	}
	writeSection := func(name string, v any) error {
		body, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("profio: encode section %s: %w", name, err)
		}
		rec := sectionRec{Name: name, CRC: crc32.ChecksumIEEE(body), Body: body}
		line, err := json.Marshal(&rec)
		if err != nil {
			return fmt.Errorf("profio: encode section %s: %w", name, err)
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
		return bw.WriteByte('\n')
	}
	meta := metaDoc{
		Version:   doc.Version,
		App:       doc.App,
		Machine:   doc.Machine,
		Mechanism: doc.Mechanism,
		Period:    doc.Period,
		HasFT:     doc.HasFT,
		Totals:    doc.Totals,
		Health:    doc.Health,
	}
	if err := writeSection(SectionMeta, &meta); err != nil {
		return err
	}
	if err := writeSection(SectionBinary, &doc.Binary); err != nil {
		return err
	}
	if err := writeSection(SectionVars, doc.Vars); err != nil {
		return err
	}
	if err := writeSection(SectionTree, doc.Tree); err != nil {
		return err
	}
	if err := writeSection(SectionPatterns, doc.Patterns); err != nil {
		return err
	}
	if len(doc.Timeline) > 0 {
		if err := writeSection(SectionTimeline, doc.Timeline); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Encode converts a live profile into its document form.
func Encode(p *core.Profile) (*Document, error) {
	if p == nil {
		return nil, fmt.Errorf("profio: nil profile")
	}
	doc := &Document{
		Version:   FormatVersion,
		App:       p.AppName,
		Machine:   p.Machine.Config(),
		Mechanism: p.Mechanism,
		Period:    p.Period,
		Totals:    p.Totals,
		Health:    p.Health,
		HasFT:     p.FirstTouch != nil,
	}
	doc.Binary = BinaryDoc{
		Name:    p.Binary.Name,
		Funcs:   p.Binary.Funcs(),
		Sites:   p.Binary.Sites(),
		Statics: p.Binary.Statics(),
	}
	for _, v := range p.Vars {
		doc.Vars = append(doc.Vars, encodeVar(v))
	}
	doc.Tree = encodeNode(p.Tree.Root())
	for _, v := range p.Registry.Variables() {
		for _, scope := range p.Patterns.Scopes(v) {
			if pat, ok := p.Patterns.Pattern(v, scope); ok {
				doc.Patterns = append(doc.Patterns, PatternDoc{
					RegionID: v.Region.ID,
					Bin:      addrcentric.WholeVariable,
					Scope:    scope,
					Threads:  pat.Threads(),
				})
			}
			for b := 0; b < v.Bins; b++ {
				if bp, ok := p.Patterns.BinPattern(v, b, scope); ok {
					doc.Patterns = append(doc.Patterns, PatternDoc{
						RegionID: v.Region.ID,
						Bin:      b,
						Scope:    scope,
						Threads:  bp.Threads(),
					})
				}
			}
		}
	}
	if p.Timeline != nil {
		doc.Timeline = p.Timeline.Events()
	}
	return doc, nil
}

func encodeFrames(path []proc.Frame) []FrameDoc {
	out := make([]FrameDoc, 0, len(path))
	for _, fr := range path {
		out = append(out, FrameDoc{Fn: fr.Fn, Line: fr.CallLine})
	}
	return out
}

func decodeFrames(docs []FrameDoc) []proc.Frame {
	out := make([]proc.Frame, 0, len(docs))
	for _, fr := range docs {
		out = append(out, proc.Frame{Fn: fr.Fn, CallLine: fr.Line})
	}
	return out
}

func encodeVar(v *core.VarProfile) VarDoc {
	return VarDoc{
		Name:        v.Var.Name,
		Kind:        v.Var.Kind,
		Region:      v.Var.Region,
		AllocPath:   encodeFrames(v.Var.AllocPath),
		AllocSite:   v.Var.AllocSite,
		AllocThread: v.Var.AllocThread,
		BinCount:    v.Var.Bins,

		Samples:   v.Samples,
		Ml:        v.Ml,
		Mr:        v.Mr,
		PerDomain: v.PerDomain,
		Latency:   v.Latency,
		RemoteLat: v.RemoteLat,
		LPI:       v.LPI,
		RLatShare: v.RemoteLatShare,
		MrShare:   v.MrShare,
		Bins:      v.Bins,

		FirstTouchThreads: v.FirstTouchThreads,
		FirstTouchPath:    encodeFrames(v.FirstTouchPath),
		ProtectedPages:    v.ProtectedPages,
	}
}

func encodeNode(n *cct.Node) *NodeDoc {
	d := &NodeDoc{
		Kind:  uint8(n.Key.Kind),
		Fn:    int32(n.Key.Fn),
		Line:  n.Key.Line,
		Site:  int32(n.Key.Site),
		Label: n.Key.Label,
	}
	if m := n.Metrics(); len(m) > 0 {
		d.Metrics = m
	}
	if r := n.Ranges(); len(r) > 0 {
		d.Ranges = r
	}
	for _, c := range n.Children() {
		d.Children = append(d.Children, encodeNode(c))
	}
	return d
}

// Load reads a measurement document strictly and reconstructs a
// core.Profile suitable for every view. Any damage — a checksum
// mismatch, an unparseable section line, a missing core section, an
// invalid machine description — rejects the whole file. The profile is
// read-only in spirit: it has no live engine, sampler, or first-touch
// recorder behind it.
func Load(r io.Reader) (*core.Profile, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("profio: read: %w", err)
	}
	doc, err := parseStrict(data)
	if err != nil {
		telemetry.Default.Counter("profio_load_errors_total").Inc()
		return nil, err
	}
	p, err := Decode(doc)
	if err != nil {
		telemetry.Default.Counter("profio_load_errors_total").Inc()
		return nil, err
	}
	telemetry.Default.Counter("profio_loads_total").Inc()
	return p, nil
}

// LoadLenient reads a measurement document salvaging everything it can:
// intact sections load normally, damaged or missing ones are replaced
// with placeholders, and the returned Report itemises the damage (also
// folded into the profile's Health.FileDamage). It returns an error
// only when nothing recognisable as a measurement file survives — in
// the spirit of the paper's offline analyzer, a partial profile with an
// honest damage report beats no profile.
func LoadLenient(r io.Reader) (*core.Profile, *Report, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, fmt.Errorf("profio: read: %w", err)
	}
	doc, rep, err := parseLenient(data)
	if err != nil {
		return nil, nil, err
	}
	prof, err := decode(doc, rep)
	if err != nil {
		return nil, nil, err
	}
	if d := rep.Damage(); len(d) > 0 {
		prof.Health.FileDamage = append(prof.Health.FileDamage, d...)
		telemetry.Default.Counter("profio_lenient_salvages_total").Inc()
		telemetry.Logger("profio").Warn("salvaged damaged measurement file",
			"damage", strings.Join(d, "; "))
	}
	telemetry.Default.Counter("profio_loads_total").Inc()
	return prof, rep, nil
}

// looksV1 reports whether data is a version-1 single-object document.
func looksV1(data []byte) bool {
	t := bytes.TrimLeft(data, " \t\r\n")
	return len(t) > 0 && t[0] == '{'
}

// parseStrict assembles a Document from file bytes, rejecting any
// damage.
func parseStrict(data []byte) (*Document, error) {
	if looksV1(data) {
		var doc Document
		if err := json.Unmarshal(data, &doc); err != nil {
			return nil, fmt.Errorf("profio: decode v1 document: %w", err)
		}
		return &doc, nil
	}
	bodies, anomalies := scanSections(data)
	if len(anomalies) > 0 {
		return nil, fmt.Errorf("profio: %s", anomalies[0])
	}
	for _, name := range coreSections {
		if _, ok := bodies[name]; !ok {
			return nil, fmt.Errorf("profio: missing section %q (truncated file?)", name)
		}
	}
	doc, decodeErrs := assemble(bodies)
	if len(decodeErrs) > 0 {
		return nil, fmt.Errorf("profio: %s", decodeErrs[0])
	}
	return doc, nil
}

// parseLenient assembles what it can, itemising damage in the report.
// It fails only when the bytes are not recognisable as any version of
// the format.
func parseLenient(data []byte) (*Document, *Report, error) {
	rep := &Report{}
	if looksV1(data) {
		var doc Document
		if err := json.Unmarshal(data, &doc); err != nil {
			// A v1 file is one JSON object: there are no section
			// boundaries to salvage at.
			return nil, nil, fmt.Errorf("profio: v1 document unrecoverable: %w", err)
		}
		rep.Version = doc.Version
		rep.Intact = append(rep.Intact, "v1 document")
		return &doc, rep, nil
	}
	bodies, anomalies := scanSections(data)
	if bodies == nil {
		return nil, nil, fmt.Errorf("profio: not a measurement file")
	}
	rep.Corrupt = append(rep.Corrupt, anomalies...)
	doc, decodeErrs := assemble(bodies)
	rep.Corrupt = append(rep.Corrupt, decodeErrs...)
	rep.Version = doc.Version
	for _, name := range coreSections {
		if _, ok := bodies[name]; !ok {
			rep.Missing = append(rep.Missing, name)
		}
	}
	for _, name := range []string{SectionMeta, SectionBinary, SectionVars, SectionTree, SectionPatterns, SectionTimeline} {
		if _, ok := bodies[name]; ok && !damaged(rep, name) {
			rep.Intact = append(rep.Intact, name)
		}
	}
	return doc, rep, nil
}

// damaged reports whether a recovered section later failed to decode.
func damaged(rep *Report, name string) bool {
	for _, c := range rep.Corrupt {
		if strings.HasPrefix(c, "section "+name+":") {
			return true
		}
	}
	return false
}

// scanSections splits v2 file bytes into verified section bodies. It
// returns nil bodies when the magic line is absent (not our format);
// otherwise it returns every section whose line parses and whose
// checksum matches, plus a list of anomalies for everything else.
func scanSections(data []byte) (map[string]json.RawMessage, []string) {
	lines := bytes.Split(data, []byte("\n"))
	if len(lines) == 0 || strings.TrimRight(string(lines[0]), "\r") != magicV2 {
		return nil, []string{"missing magic line (not a v2 measurement file)"}
	}
	bodies := make(map[string]json.RawMessage)
	var anomalies []string
	for i, line := range lines[1:] {
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		var rec sectionRec
		if err := json.Unmarshal(line, &rec); err != nil {
			anomalies = append(anomalies, fmt.Sprintf("line %d: unparseable section record (truncated or garbled)", i+2))
			continue
		}
		if rec.Name == "" {
			anomalies = append(anomalies, fmt.Sprintf("line %d: section record without a name", i+2))
			continue
		}
		if got := crc32.ChecksumIEEE(rec.Body); got != rec.CRC {
			anomalies = append(anomalies, fmt.Sprintf("section %s: checksum mismatch (stored %08x, computed %08x)", rec.Name, rec.CRC, got))
			continue
		}
		if _, dup := bodies[rec.Name]; dup {
			anomalies = append(anomalies, fmt.Sprintf("section %s: duplicate record ignored", rec.Name))
			continue
		}
		bodies[rec.Name] = rec.Body
	}
	return bodies, anomalies
}

// assemble unmarshals verified section bodies into a Document. Bodies
// that fail to unmarshal (possible under fuzzing: a record whose CRC
// happens to match a garbled body) are reported, not fatal — the
// caller decides strict vs lenient.
func assemble(bodies map[string]json.RawMessage) (*Document, []string) {
	doc := &Document{}
	var errs []string
	report := func(name string, err error) {
		errs = append(errs, fmt.Sprintf("section %s: undecodable body: %v", name, err))
	}
	if b, ok := bodies[SectionMeta]; ok {
		var meta metaDoc
		if err := json.Unmarshal(b, &meta); err != nil {
			report(SectionMeta, err)
		} else {
			doc.Version = meta.Version
			doc.App = meta.App
			doc.Machine = meta.Machine
			doc.Mechanism = meta.Mechanism
			doc.Period = meta.Period
			doc.HasFT = meta.HasFT
			doc.Totals = meta.Totals
			doc.Health = meta.Health
		}
	}
	if b, ok := bodies[SectionBinary]; ok {
		if err := json.Unmarshal(b, &doc.Binary); err != nil {
			report(SectionBinary, err)
		}
	}
	if b, ok := bodies[SectionVars]; ok {
		if err := json.Unmarshal(b, &doc.Vars); err != nil {
			report(SectionVars, err)
		}
	}
	if b, ok := bodies[SectionTree]; ok {
		if err := json.Unmarshal(b, &doc.Tree); err != nil {
			report(SectionTree, err)
		}
	}
	if b, ok := bodies[SectionPatterns]; ok {
		if err := json.Unmarshal(b, &doc.Patterns); err != nil {
			report(SectionPatterns, err)
		}
	}
	if b, ok := bodies[SectionTimeline]; ok {
		if err := json.Unmarshal(b, &doc.Timeline); err != nil {
			report(SectionTimeline, err)
		}
	}
	return doc, errs
}

// maxSaneDomains and maxSaneCPUs bound the machine description a
// loaded file may request, so a corrupted (or fuzzed) meta section
// cannot make topology.New allocate gigabytes — or merely burn
// hundreds of milliseconds per load building a machine no profile
// this tool writes could describe. maxSaneCPUs bounds the TOTAL CPU
// count (domains x cpus-per-domain): the per-CPU structures dominate
// the allocation cost.
const (
	maxSaneDomains = 1 << 8
	maxSaneCPUs    = 1 << 12
)

// validateMachine mirrors topology.New's panic conditions (plus sanity
// bounds) as a returnable error, because a measurement file is
// untrusted input where the machine description is static trusted data.
func validateMachine(cfg topology.Config) error {
	if cfg.NumDomains <= 0 || cfg.CPUsPerDomain <= 0 {
		return fmt.Errorf("non-positive domain or CPU count (%d domains x %d cpus)", cfg.NumDomains, cfg.CPUsPerDomain)
	}
	if cfg.NumDomains > maxSaneDomains || cfg.CPUsPerDomain > maxSaneCPUs ||
		cfg.NumDomains*cfg.CPUsPerDomain > maxSaneCPUs {
		return fmt.Errorf("implausible machine size (%d domains x %d cpus)", cfg.NumDomains, cfg.CPUsPerDomain)
	}
	if cfg.RemoteDistance < 0 {
		return fmt.Errorf("negative remote distance %d", cfg.RemoteDistance)
	}
	if cfg.Distances != nil {
		if len(cfg.Distances) != cfg.NumDomains {
			return fmt.Errorf("distance matrix has %d rows, want %d", len(cfg.Distances), cfg.NumDomains)
		}
		for i := range cfg.Distances {
			if len(cfg.Distances[i]) != cfg.NumDomains {
				return fmt.Errorf("distance row %d has %d entries, want %d", i, len(cfg.Distances[i]), cfg.NumDomains)
			}
			for j, d := range cfg.Distances[i] {
				switch {
				case i == j && d != 10:
					return fmt.Errorf("diagonal distance [%d][%d] = %d, want 10", i, j, d)
				case i != j && d <= 10:
					return fmt.Errorf("off-diagonal distance [%d][%d] = %d, want > 10", i, j, d)
				case cfg.Distances[j][i] != d:
					return fmt.Errorf("asymmetric distance [%d][%d]", i, j)
				}
			}
		}
	}
	return nil
}

// salvageMachine is the placeholder topology a lenient load installs
// when the file's machine description is lost or invalid.
func salvageMachine() topology.Config {
	return topology.Config{
		Name:            "<salvaged-1-domain>",
		NumDomains:      1,
		CPUsPerDomain:   1,
		MemoryPerDomain: 1 << 30,
	}
}

// Decode reconstructs a core.Profile from its document form, strictly:
// unsupported versions and invalid machine descriptions are errors.
func Decode(doc *Document) (*core.Profile, error) {
	if doc.Version < 1 || doc.Version > FormatVersion {
		return nil, fmt.Errorf("profio: unsupported format version %d (support 1..%d)", doc.Version, FormatVersion)
	}
	if err := validateMachine(doc.Machine); err != nil {
		return nil, fmt.Errorf("profio: invalid machine description: %w", err)
	}
	return decode(doc, nil)
}

// decode builds the profile. With a non-nil report it runs leniently:
// a bad machine description or version is replaced and reported instead
// of failing.
func decode(doc *Document, rep *Report) (*core.Profile, error) {
	if rep != nil {
		if doc.Version < 1 || doc.Version > FormatVersion {
			rep.Synthesized = append(rep.Synthesized, fmt.Sprintf("format version (file said %d, treating as %d)", doc.Version, FormatVersion))
			doc.Version = FormatVersion
		}
		if err := validateMachine(doc.Machine); err != nil {
			rep.Synthesized = append(rep.Synthesized, fmt.Sprintf("machine topology (1-domain placeholder; file's was invalid: %v)", err))
			doc.Machine = salvageMachine()
		}
	}
	machine := topology.New(doc.Machine)

	prog := isa.NewProgram(doc.Binary.Name)
	for _, f := range doc.Binary.Funcs {
		prog.AddFunc(f.Name, f.File, f.StartLine)
	}
	for _, s := range doc.Binary.Sites {
		prog.AddSite(s.Fn, s.Line, s.Kind)
	}
	for _, sv := range doc.Binary.Statics {
		prog.AddStatic(sv.Name, sv.Size)
	}

	registry := datacentric.NewRegistry(datacentric.DefaultBins)
	varsByRegion := make(map[int]*datacentric.Variable)
	var vars []*core.VarProfile
	for _, vd := range doc.Vars {
		dv := &datacentric.Variable{
			Name:        vd.Name,
			Kind:        vd.Kind,
			Region:      vd.Region,
			AllocPath:   decodeFrames(vd.AllocPath),
			AllocSite:   vd.AllocSite,
			AllocThread: vd.AllocThread,
			Bins:        vd.BinCount,
		}
		registry.Restore(dv)
		varsByRegion[dv.Region.ID] = dv
		vars = append(vars, &core.VarProfile{
			Var:               dv,
			Samples:           vd.Samples,
			Ml:                vd.Ml,
			Mr:                vd.Mr,
			PerDomain:         vd.PerDomain,
			Latency:           vd.Latency,
			RemoteLat:         vd.RemoteLat,
			LPI:               vd.LPI,
			RemoteLatShare:    vd.RLatShare,
			MrShare:           vd.MrShare,
			Bins:              vd.Bins,
			FirstTouchThreads: vd.FirstTouchThreads,
			FirstTouchPath:    decodeFrames(vd.FirstTouchPath),
			ProtectedPages:    vd.ProtectedPages,
		})
	}

	tree := cct.New()
	if doc.Tree != nil {
		decodeNodeInto(tree.Root(), doc.Tree)
	}

	patterns := addrcentric.NewTracker()
	for _, pd := range doc.Patterns {
		v, ok := varsByRegion[pd.RegionID]
		if !ok {
			// The pattern's variable never accumulated samples; rebuild
			// a minimal variable so the pattern still renders.
			v = &datacentric.Variable{Name: fmt.Sprintf("<region %d>", pd.RegionID), Region: vm.Region{ID: pd.RegionID}, Bins: 1}
		}
		patterns.RestoreBin(v, pd.Bin, pd.Scope, pd.Threads)
	}

	var timeline *trace.Timeline
	if len(doc.Timeline) > 0 {
		timeline = trace.New()
		for _, ev := range doc.Timeline {
			timeline.Record(ev)
		}
	}

	caps, err := capsFor(doc.Mechanism)
	if err != nil {
		return nil, err
	}
	return &core.Profile{
		AppName:   doc.App,
		Machine:   machine,
		Mechanism: doc.Mechanism,
		Caps:      caps,
		Period:    doc.Period,
		Tree:      tree,
		Vars:      vars,
		Patterns:  patterns,
		Registry:  registry,
		Timeline:  timeline,
		Binary:    prog,
		Totals:    doc.Totals,
		Health:    doc.Health,
	}, nil
}

func decodeNodeInto(n *cct.Node, d *NodeDoc) {
	for id, v := range d.Metrics {
		n.AddMetric(id, v)
	}
	for owner, rg := range d.Ranges {
		n.ExtendRange(owner, rg.Min)
		n.ExtendRange(owner, rg.Max)
	}
	for _, cd := range d.Children {
		if cd == nil {
			continue
		}
		key := cct.Key{
			Kind:  cct.NodeKind(cd.Kind),
			Fn:    isa.FuncID(cd.Fn),
			Line:  cd.Line,
			Site:  isa.SiteID(cd.Site),
			Label: cd.Label,
		}
		decodeNodeInto(n.Child(key), cd)
	}
}

// capsFor resolves the capability matrix for the mechanism recorded in
// the file; unknown mechanisms (from newer tools) get empty caps rather
// than failing the load.
func capsFor(name string) (pmu.Capability, error) {
	mech, err := pmu.ByName(name, 0)
	if err != nil {
		return pmu.Capability{}, nil
	}
	return mech.Caps(), nil
}
