// Package profio serialises profiles to a versioned JSON measurement
// format and loads them back, reproducing the file-based architecture
// of the real tool (Section 7): hpcrun writes per-execution measurement
// databases, and hpcprof/hpcviewer consume them offline — possibly on a
// different machine, long after the run.
//
// Save captures everything a viewer needs: the program description
// (functions, sites, statics), the merged augmented CCT with metric
// columns and per-thread [min,max] ranges, the per-variable
// data-centric profiles with bins and first-touch results, the
// address-centric patterns per scope, totals, and (when traced) the
// time-stamped sample list. Load reconstructs a core.Profile that every
// view renders identically to the live one.
package profio

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/addrcentric"
	"repro/internal/cct"
	"repro/internal/core"
	"repro/internal/datacentric"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/pmu"
	"repro/internal/proc"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/vm"
)

// FormatVersion identifies the measurement-file schema.
const FormatVersion = 1

// Document is the on-disk form of a profile.
type Document struct {
	Version   int             `json:"version"`
	App       string          `json:"app"`
	Machine   topology.Config `json:"machine"`
	Mechanism string          `json:"mechanism"`
	Period    uint64          `json:"period"`

	Binary   BinaryDoc     `json:"binary"`
	Totals   core.Totals   `json:"totals"`
	Vars     []VarDoc      `json:"vars"`
	Tree     *NodeDoc      `json:"tree"`
	Patterns []PatternDoc  `json:"patterns"`
	Timeline []trace.Event `json:"timeline,omitempty"`
	HasFT    bool          `json:"has_first_touch"`
}

// BinaryDoc is the serialised program description.
type BinaryDoc struct {
	Name    string          `json:"name"`
	Funcs   []isa.Function  `json:"funcs"`
	Sites   []isa.Site      `json:"sites"`
	Statics []isa.StaticVar `json:"statics"`
}

// FrameDoc is one serialised call-path frame.
type FrameDoc struct {
	Fn   isa.FuncID `json:"fn"`
	Line int        `json:"line"`
}

// VarDoc is one variable's serialised data-centric profile.
type VarDoc struct {
	Name        string              `json:"name"`
	Kind        datacentric.VarKind `json:"kind"`
	Region      vm.Region           `json:"region"`
	AllocPath   []FrameDoc          `json:"alloc_path,omitempty"`
	AllocSite   isa.SiteID          `json:"alloc_site"`
	AllocThread int                 `json:"alloc_thread"`
	BinCount    int                 `json:"bin_count"`

	Samples   float64         `json:"samples"`
	Ml        float64         `json:"ml"`
	Mr        float64         `json:"mr"`
	PerDomain []float64       `json:"per_domain"`
	Latency   units.Cycles    `json:"latency"`
	RemoteLat units.Cycles    `json:"remote_lat"`
	LPI       float64         `json:"lpi"`
	RLatShare float64         `json:"rlat_share"`
	MrShare   float64         `json:"mr_share"`
	Bins      []core.BinStats `json:"bins,omitempty"`

	FirstTouchThreads []int      `json:"ft_threads,omitempty"`
	FirstTouchPath    []FrameDoc `json:"ft_path,omitempty"`
	ProtectedPages    int        `json:"ft_pages,omitempty"`
}

// NodeDoc is one serialised CCT node.
type NodeDoc struct {
	Kind  uint8  `json:"k"`
	Fn    int32  `json:"f,omitempty"`
	Line  int    `json:"l,omitempty"`
	Site  int32  `json:"s,omitempty"`
	Label string `json:"n,omitempty"`

	Metrics  map[metrics.ID]float64 `json:"m,omitempty"`
	Ranges   map[int]cct.Range      `json:"r,omitempty"`
	Children []*NodeDoc             `json:"c,omitempty"`
}

// PatternDoc is one (variable, bin, scope) address-centric pattern.
// Bin is addrcentric.WholeVariable for the whole-extent pattern.
type PatternDoc struct {
	RegionID int                       `json:"region_id"`
	Bin      int                       `json:"bin"`
	Scope    string                    `json:"scope"`
	Threads  []addrcentric.ThreadRange `json:"threads"`
}

// Save writes a profile as a measurement document.
func Save(w io.Writer, p *core.Profile) error {
	doc, err := Encode(p)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// Encode converts a live profile into its document form.
func Encode(p *core.Profile) (*Document, error) {
	if p == nil {
		return nil, fmt.Errorf("profio: nil profile")
	}
	doc := &Document{
		Version:   FormatVersion,
		App:       p.AppName,
		Machine:   p.Machine.Config(),
		Mechanism: p.Mechanism,
		Period:    p.Period,
		Totals:    p.Totals,
		HasFT:     p.FirstTouch != nil,
	}
	doc.Binary = BinaryDoc{
		Name:    p.Binary.Name,
		Funcs:   p.Binary.Funcs(),
		Sites:   p.Binary.Sites(),
		Statics: p.Binary.Statics(),
	}
	for _, v := range p.Vars {
		doc.Vars = append(doc.Vars, encodeVar(v))
	}
	doc.Tree = encodeNode(p.Tree.Root())
	for _, v := range p.Registry.Variables() {
		for _, scope := range p.Patterns.Scopes(v) {
			if pat, ok := p.Patterns.Pattern(v, scope); ok {
				doc.Patterns = append(doc.Patterns, PatternDoc{
					RegionID: v.Region.ID,
					Bin:      addrcentric.WholeVariable,
					Scope:    scope,
					Threads:  pat.Threads(),
				})
			}
			for b := 0; b < v.Bins; b++ {
				if bp, ok := p.Patterns.BinPattern(v, b, scope); ok {
					doc.Patterns = append(doc.Patterns, PatternDoc{
						RegionID: v.Region.ID,
						Bin:      b,
						Scope:    scope,
						Threads:  bp.Threads(),
					})
				}
			}
		}
	}
	if p.Timeline != nil {
		doc.Timeline = p.Timeline.Events()
	}
	return doc, nil
}

func encodeFrames(path []proc.Frame) []FrameDoc {
	out := make([]FrameDoc, 0, len(path))
	for _, fr := range path {
		out = append(out, FrameDoc{Fn: fr.Fn, Line: fr.CallLine})
	}
	return out
}

func decodeFrames(docs []FrameDoc) []proc.Frame {
	out := make([]proc.Frame, 0, len(docs))
	for _, fr := range docs {
		out = append(out, proc.Frame{Fn: fr.Fn, CallLine: fr.Line})
	}
	return out
}

func encodeVar(v *core.VarProfile) VarDoc {
	return VarDoc{
		Name:        v.Var.Name,
		Kind:        v.Var.Kind,
		Region:      v.Var.Region,
		AllocPath:   encodeFrames(v.Var.AllocPath),
		AllocSite:   v.Var.AllocSite,
		AllocThread: v.Var.AllocThread,
		BinCount:    v.Var.Bins,

		Samples:   v.Samples,
		Ml:        v.Ml,
		Mr:        v.Mr,
		PerDomain: v.PerDomain,
		Latency:   v.Latency,
		RemoteLat: v.RemoteLat,
		LPI:       v.LPI,
		RLatShare: v.RemoteLatShare,
		MrShare:   v.MrShare,
		Bins:      v.Bins,

		FirstTouchThreads: v.FirstTouchThreads,
		FirstTouchPath:    encodeFrames(v.FirstTouchPath),
		ProtectedPages:    v.ProtectedPages,
	}
}

func encodeNode(n *cct.Node) *NodeDoc {
	d := &NodeDoc{
		Kind:  uint8(n.Key.Kind),
		Fn:    int32(n.Key.Fn),
		Line:  n.Key.Line,
		Site:  int32(n.Key.Site),
		Label: n.Key.Label,
	}
	if m := n.Metrics(); len(m) > 0 {
		d.Metrics = m
	}
	if r := n.Ranges(); len(r) > 0 {
		d.Ranges = r
	}
	for _, c := range n.Children() {
		d.Children = append(d.Children, encodeNode(c))
	}
	return d
}

// Load reads a measurement document and reconstructs a core.Profile
// suitable for every view. The profile is read-only in spirit: it has
// no live engine, sampler, or first-touch recorder behind it.
func Load(r io.Reader) (*core.Profile, error) {
	var doc Document
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("profio: decode: %w", err)
	}
	return Decode(&doc)
}

// Decode reconstructs a core.Profile from its document form.
func Decode(doc *Document) (*core.Profile, error) {
	if doc.Version != FormatVersion {
		return nil, fmt.Errorf("profio: unsupported format version %d (want %d)", doc.Version, FormatVersion)
	}

	machine := topology.New(doc.Machine)

	prog := isa.NewProgram(doc.Binary.Name)
	for _, f := range doc.Binary.Funcs {
		prog.AddFunc(f.Name, f.File, f.StartLine)
	}
	for _, s := range doc.Binary.Sites {
		prog.AddSite(s.Fn, s.Line, s.Kind)
	}
	for _, sv := range doc.Binary.Statics {
		prog.AddStatic(sv.Name, sv.Size)
	}

	registry := datacentric.NewRegistry(datacentric.DefaultBins)
	varsByRegion := make(map[int]*datacentric.Variable)
	var vars []*core.VarProfile
	for _, vd := range doc.Vars {
		dv := &datacentric.Variable{
			Name:        vd.Name,
			Kind:        vd.Kind,
			Region:      vd.Region,
			AllocPath:   decodeFrames(vd.AllocPath),
			AllocSite:   vd.AllocSite,
			AllocThread: vd.AllocThread,
			Bins:        vd.BinCount,
		}
		registry.Restore(dv)
		varsByRegion[dv.Region.ID] = dv
		vars = append(vars, &core.VarProfile{
			Var:               dv,
			Samples:           vd.Samples,
			Ml:                vd.Ml,
			Mr:                vd.Mr,
			PerDomain:         vd.PerDomain,
			Latency:           vd.Latency,
			RemoteLat:         vd.RemoteLat,
			LPI:               vd.LPI,
			RemoteLatShare:    vd.RLatShare,
			MrShare:           vd.MrShare,
			Bins:              vd.Bins,
			FirstTouchThreads: vd.FirstTouchThreads,
			FirstTouchPath:    decodeFrames(vd.FirstTouchPath),
			ProtectedPages:    vd.ProtectedPages,
		})
	}

	tree := cct.New()
	if doc.Tree != nil {
		decodeNodeInto(tree.Root(), doc.Tree)
	}

	patterns := addrcentric.NewTracker()
	for _, pd := range doc.Patterns {
		v, ok := varsByRegion[pd.RegionID]
		if !ok {
			// The pattern's variable never accumulated samples; rebuild
			// a minimal variable so the pattern still renders.
			v = &datacentric.Variable{Name: fmt.Sprintf("<region %d>", pd.RegionID), Region: vm.Region{ID: pd.RegionID}, Bins: 1}
		}
		patterns.RestoreBin(v, pd.Bin, pd.Scope, pd.Threads)
	}

	var timeline *trace.Timeline
	if len(doc.Timeline) > 0 {
		timeline = trace.New()
		for _, ev := range doc.Timeline {
			timeline.Record(ev)
		}
	}

	caps, err := capsFor(doc.Mechanism)
	if err != nil {
		return nil, err
	}
	return &core.Profile{
		AppName:   doc.App,
		Machine:   machine,
		Mechanism: doc.Mechanism,
		Caps:      caps,
		Period:    doc.Period,
		Tree:      tree,
		Vars:      vars,
		Patterns:  patterns,
		Registry:  registry,
		Timeline:  timeline,
		Binary:    prog,
		Totals:    doc.Totals,
	}, nil
}

func decodeNodeInto(n *cct.Node, d *NodeDoc) {
	for id, v := range d.Metrics {
		n.AddMetric(id, v)
	}
	for owner, rg := range d.Ranges {
		n.ExtendRange(owner, rg.Min)
		n.ExtendRange(owner, rg.Max)
	}
	for _, cd := range d.Children {
		key := cct.Key{
			Kind:  cct.NodeKind(cd.Kind),
			Fn:    isa.FuncID(cd.Fn),
			Line:  cd.Line,
			Site:  isa.SiteID(cd.Site),
			Label: cd.Label,
		}
		decodeNodeInto(n.Child(key), cd)
	}
}

// capsFor resolves the capability matrix for the mechanism recorded in
// the file; unknown mechanisms (from newer tools) get empty caps rather
// than failing the load.
func capsFor(name string) (pmu.Capability, error) {
	mech, err := pmu.ByName(name, 0)
	if err != nil {
		return pmu.Capability{}, nil
	}
	return mech.Caps(), nil
}
