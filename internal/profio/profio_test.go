package profio

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/addrcentric"
	"repro/internal/cct"
	"repro/internal/core"
	"repro/internal/datacentric"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/omp"
	"repro/internal/proc"
	"repro/internal/topology"
	"repro/internal/units"
	"repro/internal/view"
	"repro/internal/vm"
)

// demoApp: serial-init array processed in parallel, with tracing and
// first-touch tracking, to populate every Document section.
type demoApp struct {
	prog           *isa.Program
	fnMain, fnWork isa.FuncID
	sAlloc, sInit  isa.SiteID
	sLoad          isa.SiteID
	staticIdx      int
}

func newDemoApp() *demoApp {
	a := &demoApp{}
	p := isa.NewProgram("profio-demo")
	a.fnMain = p.AddFunc("main", "demo.c", 1)
	a.fnWork = p.AddFunc("work._omp", "demo.c", 20)
	a.sAlloc = p.AddSite(a.fnMain, 3, isa.KindAlloc)
	a.sInit = p.AddSite(a.fnMain, 5, isa.KindStore)
	a.sLoad = p.AddSite(a.fnWork, 22, isa.KindLoad)
	a.staticIdx = p.AddStatic("lookup", 8*uint64(units.PageSize))
	a.prog = p
	return a
}

func (a *demoApp) Name() string         { return "profio-demo" }
func (a *demoApp) Binary() *isa.Program { return a.prog }

func (a *demoApp) Run(e *proc.Engine) {
	const n = 8192
	lookup := e.StaticRegion(a.staticIdx)
	var arr vm.Region
	omp.Serial(e, a.fnMain, "main", func(c *proc.Ctx) {
		arr = c.Alloc(a.sAlloc, "bigarray", n*64, nil)
		for i := 0; i < n; i++ {
			c.Store(a.sInit, arr.Base+uint64(i)*64)
		}
		for i := uint64(0); i < 8; i++ {
			c.Store(a.sInit, lookup.Base+i*uint64(units.PageSize))
		}
	})
	for it := 0; it < 2; it++ {
		omp.ParallelFor(e, a.fnWork, "work", n, omp.Static{}, func(c *proc.Ctx, i int) {
			c.Load(a.sLoad, arr.Base+uint64(i)*64)
			c.Load(a.sLoad, lookup.Base+(uint64(i)%8)*uint64(units.PageSize))
			c.Compute(3)
		})
	}
}

func liveProfile(t testing.TB) *core.Profile {
	t.Helper()
	m := topology.New(topology.Config{
		Name: "profio-m", NumDomains: 4, CPUsPerDomain: 2,
		MemoryPerDomain: units.GiB, RemoteDistance: 18,
	})
	prof, err := core.Analyze(core.Config{
		Machine:         m,
		Mechanism:       "IBS",
		Period:          32,
		TrackFirstTouch: true,
		Trace:           true,
	}, newDemoApp())
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

func roundTrip(t *testing.T, p *core.Profile) *core.Profile {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, p); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

func TestRoundTripTotals(t *testing.T) {
	p := liveProfile(t)
	q := roundTrip(t, p)
	// Totals contains a slice, so compare field-wise.
	if q.Totals.Samples != p.Totals.Samples ||
		q.Totals.Ml != p.Totals.Ml || q.Totals.Mr != p.Totals.Mr ||
		q.Totals.LPIExact != p.Totals.LPIExact ||
		q.Totals.SimTime != p.Totals.SimTime ||
		q.Totals.Significant != p.Totals.Significant {
		t.Fatalf("totals differ:\n%+v\n%+v", p.Totals, q.Totals)
	}
	if q.AppName != p.AppName || q.Mechanism != p.Mechanism || q.Period != p.Period {
		t.Fatal("header fields differ")
	}
}

func TestRoundTripMachine(t *testing.T) {
	p := liveProfile(t)
	q := roundTrip(t, p)
	if q.Machine.Name != p.Machine.Name ||
		q.Machine.NumDomains() != p.Machine.NumDomains() ||
		q.Machine.NumCPUs() != p.Machine.NumCPUs() ||
		q.Machine.Distance(0, 1) != p.Machine.Distance(0, 1) {
		t.Fatalf("machine differs: %v vs %v", q.Machine, p.Machine)
	}
}

func TestRoundTripVars(t *testing.T) {
	p := liveProfile(t)
	q := roundTrip(t, p)
	if len(q.Vars) != len(p.Vars) {
		t.Fatalf("vars: %d vs %d", len(q.Vars), len(p.Vars))
	}
	for i, pv := range p.Vars {
		qv := q.Vars[i]
		if qv.Var.Name != pv.Var.Name || qv.Var.Kind != pv.Var.Kind ||
			qv.Ml != pv.Ml || qv.Mr != pv.Mr || qv.RemoteLat != pv.RemoteLat ||
			len(qv.Bins) != len(pv.Bins) ||
			len(qv.FirstTouchThreads) != len(pv.FirstTouchThreads) {
			t.Fatalf("var %d differs: %+v vs %+v", i, qv, pv)
		}
	}
	// Static variable survives with its kind.
	lv, ok := q.VarByName("lookup")
	if !ok || lv.Var.Kind != datacentric.Static {
		t.Fatal("static lookup lost in round trip")
	}
}

func TestRoundTripTree(t *testing.T) {
	p := liveProfile(t)
	q := roundTrip(t, p)
	if q.Tree.Root().Size() != p.Tree.Root().Size() {
		t.Fatalf("tree size: %d vs %d", q.Tree.Root().Size(), p.Tree.Root().Size())
	}
	for _, id := range []metrics.ID{metrics.Samples, metrics.Match, metrics.Mismatch, metrics.RemoteLatency} {
		if q.Tree.Root().InclusiveMetric(id) != p.Tree.Root().InclusiveMetric(id) {
			t.Errorf("metric %s differs", metrics.Name(id))
		}
	}
	// A specific path survives with its ranges.
	access, ok := q.Tree.Root().FindChild(cct.DummyKey(cct.DummyAccess))
	if !ok {
		t.Fatal("access subtree lost")
	}
	if access.InclusiveMetric(metrics.Samples) == 0 {
		t.Fatal("access metrics lost")
	}
}

func TestRoundTripPatterns(t *testing.T) {
	p := liveProfile(t)
	q := roundTrip(t, p)
	pv, _ := p.Registry.Lookup("bigarray")
	qv, ok := q.Registry.Lookup("bigarray")
	if !ok {
		t.Fatal("bigarray missing from loaded registry")
	}
	pPat, _ := p.Patterns.Pattern(pv, "work")
	qPat, ok := q.Patterns.Pattern(qv, "work")
	if !ok {
		t.Fatal("work pattern lost")
	}
	pT, qT := pPat.Threads(), qPat.Threads()
	if len(pT) != len(qT) {
		t.Fatalf("thread count: %d vs %d", len(qT), len(pT))
	}
	for i := range pT {
		if pT[i] != qT[i] {
			t.Fatalf("thread range %d differs: %+v vs %+v", i, qT[i], pT[i])
		}
	}
	if pPat.IsStaircase(0.15) != qPat.IsStaircase(0.15) {
		t.Fatal("staircase verdict changed")
	}
}

func TestRoundTripTimeline(t *testing.T) {
	p := liveProfile(t)
	q := roundTrip(t, p)
	if q.Timeline == nil {
		t.Fatal("timeline lost")
	}
	if q.Timeline.Len() != p.Timeline.Len() || q.Timeline.Span() != p.Timeline.Span() {
		t.Fatalf("timeline: %d/%v vs %d/%v",
			q.Timeline.Len(), q.Timeline.Span(), p.Timeline.Len(), p.Timeline.Span())
	}
}

// The acid test: every view renders the loaded profile byte-identically
// to the live one (hpcviewer consuming hpcrun's files).
func TestViewsRenderIdentically(t *testing.T) {
	p := liveProfile(t)
	q := roundTrip(t, p)

	if a, b := view.Totals(p), view.Totals(q); a != b {
		t.Errorf("Totals differ:\n--- live\n%s--- loaded\n%s", a, b)
	}
	if a, b := view.VarTable(p, 0), view.VarTable(q, 0); a != b {
		t.Errorf("VarTable differs:\n--- live\n%s--- loaded\n%s", a, b)
	}
	if a, b := view.CCT(p, metrics.Mismatch, 6, 0.01), view.CCT(q, metrics.Mismatch, 6, 0.01); a != b {
		t.Errorf("CCT differs:\n--- live\n%s--- loaded\n%s", a, b)
	}
	pv, _ := p.Registry.Lookup("bigarray")
	qv, _ := q.Registry.Lookup("bigarray")
	pPat, _ := p.Patterns.Pattern(pv, addrcentric.WholeProgram)
	qPat, _ := q.Patterns.Pattern(qv, addrcentric.WholeProgram)
	if a, b := view.AddressCentric(pPat, 48), view.AddressCentric(qPat, 48); a != b {
		t.Errorf("AddressCentric differs:\n--- live\n%s--- loaded\n%s", a, b)
	}
	ah, err := view.HTML(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	bh, err := view.HTML(q, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ah != bh {
		t.Error("HTML reports differ")
	}
}

func TestLoadRejectsWrongVersion(t *testing.T) {
	p := liveProfile(t)
	doc, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	doc.Version = 99
	if _, err := Decode(doc); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("expected version error, got %v", err)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage should not load")
	}
}

func TestEncodeNilProfile(t *testing.T) {
	if _, err := Encode(nil); err == nil {
		t.Fatal("nil profile should error")
	}
}
