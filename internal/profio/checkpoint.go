// Checkpoint files: the serialised form of core.Checkpoint, written in
// the same CRC-framed section-per-line discipline as v2 measurement
// files but under their own magic — a checkpoint is not a profile and
// must never be mistaken for one by Load. Unlike measurement loading,
// checkpoint decoding is strict only: a checkpoint with any damaged
// section is useless (a partial adoption would silently diverge from
// the byte-identity invariant), so the caller quarantines it and falls
// back to recomputing the cell from epoch zero.
package profio

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"strings"

	"repro/internal/cct"
	"repro/internal/core"
	"repro/internal/datacentric"
	"repro/internal/isa"
	"repro/internal/pmu"
	"repro/internal/proc"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/vm"
)

// CheckpointVersion is the checkpoint format version.
const CheckpointVersion = 1

// magicCkpt is the first line of a checkpoint file.
const magicCkpt = "#numaprof-checkpoint-v1"

// Checkpoint section names.
const (
	SectionCkptState    = "ckpt-state"
	SectionCkptTrees    = "ckpt-trees"
	SectionCkptVars     = "ckpt-vars"
	SectionCkptPatterns = "ckpt-patterns"
	SectionCkptTimeline = "ckpt-timeline"
)

// ckptStateDoc carries the scalar resumable state: clocks, monitor and
// sampler counters, whole-program aggregates, and the health ledger.
type ckptStateDoc struct {
	Version int `json:"version"`
	Epoch   int `json:"epoch"`
	SnapSeq int `json:"snap_seq"`

	Engine  proc.EngineClock   `json:"engine"`
	Threads []proc.ThreadClock `json:"threads"`
	Monitor pmu.MonitorState   `json:"monitor"`

	Samples          float64      `json:"samples"`
	Ml               float64      `json:"ml"`
	Mr               float64      `json:"mr"`
	PerDomain        []float64    `json:"per_domain"`
	SampledLatency   units.Cycles `json:"sampled_latency"`
	SampledRemoteLat units.Cycles `json:"sampled_remote_lat"`

	QuarInstr     uint64       `json:"quar_instr,omitempty"`
	QuarRemote    uint64       `json:"quar_remote,omitempty"`
	QuarRemoteLat units.Cycles `json:"quar_remote_lat,omitempty"`

	StoppedEarly bool        `json:"stopped_early,omitempty"`
	Health       core.Health `json:"health"`
}

// ckptVarDoc is one checkpointed data-centric aggregate plus its
// variable descriptor (VarDoc's identity fields with the in-flight
// sums; no derived shares — those are computed at finish).
type ckptVarDoc struct {
	Name        string              `json:"name"`
	Kind        datacentric.VarKind `json:"kind"`
	Region      vm.Region           `json:"region"`
	AllocPath   []FrameDoc          `json:"alloc_path,omitempty"`
	AllocSite   isa.SiteID          `json:"alloc_site"`
	AllocThread int                 `json:"alloc_thread"`
	BinCount    int                 `json:"bin_count"`

	Samples   float64         `json:"samples"`
	Ml        float64         `json:"ml"`
	Mr        float64         `json:"mr"`
	PerDomain []float64       `json:"per_domain"`
	Latency   units.Cycles    `json:"latency"`
	RemoteLat units.Cycles    `json:"remote_lat"`
	Bins      []core.BinStats `json:"bins,omitempty"`
}

// EncodeCheckpoint writes ck to w in the sectioned checkpoint format.
func EncodeCheckpoint(w io.Writer, ck *core.Checkpoint) error {
	if ck == nil {
		return fmt.Errorf("profio: nil checkpoint")
	}
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, magicCkpt); err != nil {
		return err
	}
	writeSection := func(name string, v any) error {
		body, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("profio: encode section %s: %w", name, err)
		}
		rec := sectionRec{Name: name, CRC: crc32.ChecksumIEEE(body), Body: body}
		line, err := json.Marshal(&rec)
		if err != nil {
			return fmt.Errorf("profio: encode section %s: %w", name, err)
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
		return bw.WriteByte('\n')
	}
	state := ckptStateDoc{
		Version: CheckpointVersion,
		Epoch:   ck.Epoch,
		SnapSeq: ck.SnapSeq,

		Engine:  ck.Engine,
		Threads: ck.Threads,
		Monitor: ck.Monitor,

		Samples:          ck.Samples,
		Ml:               ck.Ml,
		Mr:               ck.Mr,
		PerDomain:        ck.PerDomain,
		SampledLatency:   ck.SampledLatency,
		SampledRemoteLat: ck.SampledRemoteLat,

		QuarInstr:     ck.QuarantinedInstr,
		QuarRemote:    ck.QuarantinedRemote,
		QuarRemoteLat: ck.QuarantinedRemoteLat,

		StoppedEarly: ck.StoppedEarly,
		Health:       ck.Health,
	}
	if err := writeSection(SectionCkptState, &state); err != nil {
		return err
	}
	trees := make([]*NodeDoc, len(ck.Trees))
	for i, tr := range ck.Trees {
		if tr != nil {
			trees[i] = encodeNode(tr.Root())
		}
	}
	if err := writeSection(SectionCkptTrees, trees); err != nil {
		return err
	}
	vars := make([]ckptVarDoc, 0, len(ck.Vars))
	for i := range ck.Vars {
		cv := &ck.Vars[i]
		vars = append(vars, ckptVarDoc{
			Name:        cv.Name,
			Kind:        cv.Kind,
			Region:      cv.Region,
			AllocPath:   encodeFrames(cv.AllocPath),
			AllocSite:   cv.AllocSite,
			AllocThread: cv.AllocThread,
			BinCount:    cv.BinCount,

			Samples:   cv.Samples,
			Ml:        cv.Ml,
			Mr:        cv.Mr,
			PerDomain: cv.PerDomain,
			Latency:   cv.Latency,
			RemoteLat: cv.RemoteLat,
			Bins:      cv.Bins,
		})
	}
	if err := writeSection(SectionCkptVars, vars); err != nil {
		return err
	}
	pats := make([]PatternDoc, 0, len(ck.Patterns))
	for _, cp := range ck.Patterns {
		pats = append(pats, PatternDoc{
			RegionID: cp.RegionID,
			Bin:      cp.Bin,
			Scope:    cp.Scope,
			Threads:  cp.Threads,
		})
	}
	if err := writeSection(SectionCkptPatterns, pats); err != nil {
		return err
	}
	if len(ck.Timeline) > 0 {
		if err := writeSection(SectionCkptTimeline, ck.Timeline); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// EncodeCheckpointBytes renders ck to a byte slice (the store's blob
// form).
func EncodeCheckpointBytes(ck *core.Checkpoint) ([]byte, error) {
	var buf bytes.Buffer
	if err := EncodeCheckpoint(&buf, ck); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeCheckpoint parses a checkpoint strictly: wrong magic, a
// checksum mismatch, an unparseable line, or a missing required
// section all fail the load. The returned checkpoint owns its state.
func DecodeCheckpoint(r io.Reader) (*core.Checkpoint, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return DecodeCheckpointBytes(data)
}

// DecodeCheckpointBytes is DecodeCheckpoint over an in-memory blob.
func DecodeCheckpointBytes(data []byte) (*core.Checkpoint, error) {
	lines := bytes.Split(data, []byte("\n"))
	if len(lines) == 0 || strings.TrimRight(string(lines[0]), "\r") != magicCkpt {
		return nil, fmt.Errorf("profio: not a checkpoint file")
	}
	bodies := make(map[string]json.RawMessage)
	for _, line := range lines[1:] {
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var rec sectionRec
		if err := json.Unmarshal(line, &rec); err != nil {
			return nil, fmt.Errorf("profio: checkpoint truncated or corrupt: %w", err)
		}
		if crc32.ChecksumIEEE(rec.Body) != rec.CRC {
			return nil, fmt.Errorf("profio: checkpoint section %s: checksum mismatch", rec.Name)
		}
		bodies[rec.Name] = rec.Body
	}
	stateBody, ok := bodies[SectionCkptState]
	if !ok {
		return nil, fmt.Errorf("profio: checkpoint missing section %s", SectionCkptState)
	}
	var state ckptStateDoc
	if err := json.Unmarshal(stateBody, &state); err != nil {
		return nil, fmt.Errorf("profio: checkpoint section %s: %w", SectionCkptState, err)
	}
	if state.Version != CheckpointVersion {
		return nil, fmt.Errorf("profio: unsupported checkpoint version %d", state.Version)
	}
	if state.Epoch <= 0 {
		return nil, fmt.Errorf("profio: checkpoint carries no epoch")
	}
	ck := &core.Checkpoint{
		Epoch:   state.Epoch,
		SnapSeq: state.SnapSeq,

		Engine:  state.Engine,
		Threads: state.Threads,
		Monitor: state.Monitor,

		Samples:          state.Samples,
		Ml:               state.Ml,
		Mr:               state.Mr,
		PerDomain:        state.PerDomain,
		SampledLatency:   state.SampledLatency,
		SampledRemoteLat: state.SampledRemoteLat,

		QuarantinedInstr:     state.QuarInstr,
		QuarantinedRemote:    state.QuarRemote,
		QuarantinedRemoteLat: state.QuarRemoteLat,

		StoppedEarly: state.StoppedEarly,
		Health:       state.Health,
	}
	for _, name := range []string{SectionCkptTrees, SectionCkptVars, SectionCkptPatterns} {
		if _, ok := bodies[name]; !ok {
			return nil, fmt.Errorf("profio: checkpoint missing section %s", name)
		}
	}
	var trees []*NodeDoc
	if err := json.Unmarshal(bodies[SectionCkptTrees], &trees); err != nil {
		return nil, fmt.Errorf("profio: checkpoint section %s: %w", SectionCkptTrees, err)
	}
	for _, td := range trees {
		tr := cct.New()
		if td != nil {
			decodeNodeInto(tr.Root(), td)
		}
		ck.Trees = append(ck.Trees, tr)
	}
	var vars []ckptVarDoc
	if err := json.Unmarshal(bodies[SectionCkptVars], &vars); err != nil {
		return nil, fmt.Errorf("profio: checkpoint section %s: %w", SectionCkptVars, err)
	}
	for i := range vars {
		vd := &vars[i]
		ck.Vars = append(ck.Vars, core.CheckpointVar{
			Name:        vd.Name,
			Kind:        vd.Kind,
			Region:      vd.Region,
			AllocPath:   decodeFrames(vd.AllocPath),
			AllocSite:   vd.AllocSite,
			AllocThread: vd.AllocThread,
			BinCount:    vd.BinCount,

			Samples:   vd.Samples,
			Ml:        vd.Ml,
			Mr:        vd.Mr,
			PerDomain: vd.PerDomain,
			Latency:   vd.Latency,
			RemoteLat: vd.RemoteLat,
			Bins:      vd.Bins,
		})
	}
	var pats []PatternDoc
	if err := json.Unmarshal(bodies[SectionCkptPatterns], &pats); err != nil {
		return nil, fmt.Errorf("profio: checkpoint section %s: %w", SectionCkptPatterns, err)
	}
	for _, pd := range pats {
		ck.Patterns = append(ck.Patterns, core.CheckpointPattern{
			RegionID: pd.RegionID,
			Bin:      pd.Bin,
			Scope:    pd.Scope,
			Threads:  pd.Threads,
		})
	}
	if body, ok := bodies[SectionCkptTimeline]; ok {
		var evs []trace.Event
		if err := json.Unmarshal(body, &evs); err != nil {
			return nil, fmt.Errorf("profio: checkpoint section %s: %w", SectionCkptTimeline, err)
		}
		ck.Timeline = evs
	}
	return ck, nil
}

// SaveCheckpointFile writes ck to path atomically (temp + rename),
// exactly like SaveFile: a crash mid-write leaves either the old
// checkpoint or none, never a torn one.
func SaveCheckpointFile(path string, ck *core.Checkpoint) error {
	return atomicWrite(path, func(w io.Writer) error {
		return EncodeCheckpoint(w, ck)
	})
}

// LoadCheckpointFile reads a checkpoint file strictly.
func LoadCheckpointFile(path string) (*core.Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeCheckpointBytes(data)
}
