package profio

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cct"
	"repro/internal/isa"
	"repro/internal/metrics"
)

// buildRandomTree grows a deterministic pseudo-random CCT from a seed.
func buildRandomTree(seed int64) *cct.Tree {
	rng := rand.New(rand.NewSource(seed))
	tree := cct.New()
	nodes := []*cct.Node{tree.Root()}
	n := 5 + rng.Intn(60)
	for i := 0; i < n; i++ {
		parent := nodes[rng.Intn(len(nodes))]
		var key cct.Key
		switch rng.Intn(4) {
		case 0:
			key = cct.FrameKey(isa.FuncID(rng.Intn(8)), rng.Intn(100))
		case 1:
			key = cct.SiteKey(isa.SiteID(rng.Intn(16)))
		case 2:
			key = cct.VariableKey([]string{"x", "y", "z"}[rng.Intn(3)])
		default:
			key = cct.DummyKey([]string{cct.DummyAlloc, cct.DummyAccess, cct.DummyFirstTouch}[rng.Intn(3)])
		}
		node := parent.Child(key)
		if rng.Intn(2) == 0 {
			node.AddMetric(metrics.ID(rng.Intn(10)), float64(rng.Intn(1000)))
		}
		if rng.Intn(3) == 0 {
			base := rng.Uint64() % (1 << 40)
			node.ExtendRange(rng.Intn(8), base)
			node.ExtendRange(rng.Intn(8), base+uint64(rng.Intn(1<<16)))
		}
		nodes = append(nodes, node)
	}
	return tree
}

// treesEqual compares two CCTs structurally: same sizes, and every node
// of a exists in b with identical metrics and ranges (and vice versa by
// the size check).
func treesEqual(a, b *cct.Tree) bool {
	if a.Root().Size() != b.Root().Size() {
		return false
	}
	equal := true
	a.Root().Visit(func(n *cct.Node) {
		if !equal {
			return
		}
		var m *cct.Node
		if n.Key.Kind == cct.KindRoot {
			m = b.Root()
		} else {
			var ok bool
			m, ok = b.Root().FindPath(n.Path())
			if !ok {
				equal = false
				return
			}
		}
		am, bm := n.Metrics(), m.Metrics()
		if len(am) != len(bm) {
			equal = false
			return
		}
		for id, v := range am {
			if bm[id] != v {
				equal = false
				return
			}
		}
		ar, br := n.Ranges(), m.Ranges()
		if len(ar) != len(br) {
			equal = false
			return
		}
		for owner, rg := range ar {
			if br[owner] != rg {
				equal = false
				return
			}
		}
	})
	return equal
}

// Property: any CCT round-trips through the document encoding intact.
func TestQuickTreeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		tree := buildRandomTree(seed)
		doc := encodeNode(tree.Root())
		back := cct.New()
		decodeNodeInto(back.Root(), doc)
		return treesEqual(tree, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
