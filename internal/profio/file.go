package profio

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
)

// SaveFile writes a profile to path atomically: the document is written
// to a temp file in the same directory, synced, and renamed over path.
// A job killed or cancelled mid-write can therefore never leave a torn
// .numaprof behind — a reader always sees either the previous complete
// file or none at all. This is the contract the numad profile store
// depends on: a key is present exactly when its bytes are whole.
func SaveFile(path string, p *core.Profile) error {
	return atomicWrite(path, func(w io.Writer) error {
		return Save(w, p)
	})
}

// LoadFile strictly loads a measurement file from disk.
func LoadFile(path string) (*core.Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

// atomicWrite runs write against a temp file in path's directory and
// renames it into place only when write and sync both succeed. On any
// failure the temp file is removed and path is untouched.
func atomicWrite(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("profio: create temp: %w", err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err = write(tmp); err != nil {
		return err
	}
	if err = tmp.Sync(); err != nil {
		return fmt.Errorf("profio: sync %s: %w", tmp.Name(), err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("profio: close %s: %w", tmp.Name(), err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("profio: rename into place: %w", err)
	}
	return nil
}
