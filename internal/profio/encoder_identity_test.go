package profio

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// The buffered encoder in encoder.go must be a byte-for-byte drop-in
// for the reference document path (Encode + writeDocument) that it
// replaced. These tests diff the two outputs across every profile
// shape we produce: each sampling mechanism, traced profiles with a
// timeline section, chaos profiles with a fault plan in the health
// ledger, and profiles salvaged by LoadLenient from damaged inputs.

// referenceBytes renders p through the retained document path.
func referenceBytes(t testing.TB, p *core.Profile) []byte {
	t.Helper()
	doc, err := Encode(p)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := writeDocument(&buf, doc); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// bufferedBytes renders p through the pooled streaming encoder.
func bufferedBytes(t testing.TB, p *core.Profile) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, p); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// diffBytes reports the first divergence with surrounding context.
func diffBytes(t *testing.T, label string, got, want []byte) {
	t.Helper()
	if bytes.Equal(got, want) {
		return
	}
	n := len(got)
	if len(want) < n {
		n = len(want)
	}
	i := 0
	for i < n && got[i] == want[i] {
		i++
	}
	lo := i - 120
	if lo < 0 {
		lo = 0
	}
	window := func(b []byte) []byte {
		hi := i + 120
		if hi > len(b) {
			hi = len(b)
		}
		return b[lo:hi]
	}
	t.Errorf("%s: encoders diverge at byte %d (lens %d vs %d)\nbuffered: %q\nreference: %q",
		label, i, len(got), len(want), window(got), window(want))
}

func TestEncoderByteIdentityGolden(t *testing.T) {
	p := liveProfile(t)
	diffBytes(t, "traced demo profile", bufferedBytes(t, p), referenceBytes(t, p))
}

func TestEncoderByteIdentityAllMechanisms(t *testing.T) {
	for _, mech := range []string{"IBS", "PEBS", "PEBS-LL", "MRK", "DEAR", "Soft-IBS"} {
		p, err := core.Analyze(core.Config{
			Machine:         topology.MagnyCours48(),
			Mechanism:       mech,
			TrackFirstTouch: true,
			Bins:            4,
		}, workloads.NewLULESH(workloads.Params{Iters: 2}))
		if err != nil {
			t.Fatalf("%s: %v", mech, err)
		}
		diffBytes(t, mech, bufferedBytes(t, p), referenceBytes(t, p))
	}
}

func TestEncoderByteIdentityChaos(t *testing.T) {
	p, err := core.Analyze(core.Config{
		Machine:   topology.MagnyCours48(),
		Mechanism: "IBS",
		Faults:    &faults.Plan{Seed: 42, DropRate: 0.2, CorruptRate: 0.02},
	}, workloads.NewLULESH(workloads.Params{Iters: 2}))
	if err != nil {
		t.Fatal(err)
	}
	diffBytes(t, "chaos profile", bufferedBytes(t, p), referenceBytes(t, p))
}

// Profiles recovered from damaged documents exercise the sparse side
// of the encoder: missing sections, synthesized machines, empty trees.
func TestEncoderByteIdentityLenientFixtures(t *testing.T) {
	full := bufferedBytes(t, liveProfile(t))
	for _, cut := range []int{len(full) / 4, len(full) / 2, len(full) - 1} {
		prof, _, err := LoadLenient(bytes.NewReader(full[:cut]))
		if err != nil {
			continue // nothing salvaged at this cut; other cuts cover it
		}
		label := fmt.Sprintf("lenient cut at %d", cut)
		diffBytes(t, label, bufferedBytes(t, prof), referenceBytes(t, prof))
	}

	// A bare magic line yields a fully synthesized profile.
	prof, _, err := LoadLenient(bytes.NewReader([]byte(magicV2 + "\n")))
	if err != nil {
		t.Fatal(err)
	}
	diffBytes(t, "synthesized", bufferedBytes(t, prof), referenceBytes(t, prof))
}

// The pool must not leak state between profiles: encoding a large
// profile then a small one must match a cold encode of the small one.
func TestEncoderPoolReuseClean(t *testing.T) {
	big := liveProfile(t)
	small, _, err := LoadLenient(bytes.NewReader([]byte(magicV2 + "\n")))
	if err != nil {
		t.Fatal(err)
	}
	want := referenceBytes(t, small)
	for i := 0; i < 4; i++ {
		bufferedBytes(t, big)
		diffBytes(t, fmt.Sprintf("reuse round %d", i), bufferedBytes(t, small), want)
	}
}
