// Checkpoint codec tests: deterministic encode, strict decode (any
// damage is an error, never a silently partial checkpoint), and file
// round-trips through the atomic writer.
package profio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/topology"
	"repro/internal/units"
)

// liveCheckpoint captures one mid-run checkpoint from the demo app,
// encoding inside the callback per the serialize-synchronously
// contract.
func liveCheckpoint(t testing.TB) []byte {
	t.Helper()
	m := topology.New(topology.Config{
		Name: "profio-m", NumDomains: 4, CPUsPerDomain: 2,
		MemoryPerDomain: units.GiB, RemoteDistance: 18,
	})
	var blob []byte
	_, err := core.Analyze(core.Config{
		Machine:         m,
		Mechanism:       "IBS",
		Period:          32,
		TrackFirstTouch: true,
		Trace:           true,
		CheckpointEvery: 1,
		OnCheckpoint: func(ck *core.Checkpoint) {
			b, err := EncodeCheckpointBytes(ck)
			if err != nil {
				t.Fatal(err)
			}
			blob = b // keep the latest
		},
	}, newDemoApp())
	if err != nil {
		t.Fatal(err)
	}
	if blob == nil {
		t.Fatal("no checkpoint captured")
	}
	return blob
}

// TestCheckpointRoundTripDeterministic: decode → re-encode reproduces
// the original bytes, so checkpoint blobs are content-stable.
func TestCheckpointRoundTripDeterministic(t *testing.T) {
	blob := liveCheckpoint(t)
	ck, err := DecodeCheckpointBytes(blob)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Epoch <= 0 {
		t.Fatalf("decoded checkpoint has epoch %d", ck.Epoch)
	}
	again, err := EncodeCheckpointBytes(ck)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, again) {
		t.Fatalf("re-encode differs: %d vs %d bytes", len(blob), len(again))
	}
}

// TestCheckpointDecodeStrict: a checkpoint is adopt-or-reject — every
// kind of damage must fail the decode outright, because a partially
// adopted checkpoint would silently break the resume byte-identity
// invariant.
func TestCheckpointDecodeStrict(t *testing.T) {
	blob := liveCheckpoint(t)
	lines := strings.Split(string(blob), "\n")
	cases := []struct {
		name   string
		mutate func() []byte
	}{
		{"empty", func() []byte { return nil }},
		{"wrong magic", func() []byte {
			return []byte("#numaprof-measurement-v2\n" + strings.Join(lines[1:], "\n"))
		}},
		{"truncated mid-section", func() []byte { return blob[:len(blob)-len(lines[len(lines)-2])/2] }},
		{"crc flipped", func() []byte {
			return bytes.Replace(blob, []byte(`"crc":`), []byte(`"crc":1`), 1)
		}},
		{"state section dropped", func() []byte {
			var keep []string
			for _, l := range lines {
				if !strings.Contains(l, SectionCkptState) {
					keep = append(keep, l)
				}
			}
			return []byte(strings.Join(keep, "\n"))
		}},
		{"garbage line", func() []byte {
			return []byte(lines[0] + "\nnot a section\n" + strings.Join(lines[1:], "\n"))
		}},
	}
	for _, tc := range cases {
		if _, err := DecodeCheckpointBytes(tc.mutate()); err == nil {
			t.Errorf("%s: decode accepted damaged checkpoint", tc.name)
		}
	}
}

// TestCheckpointFileRoundTrip: SaveCheckpointFile writes atomically and
// LoadCheckpointFile reads back the identical checkpoint.
func TestCheckpointFileRoundTrip(t *testing.T) {
	blob := liveCheckpoint(t)
	ck, err := DecodeCheckpointBytes(blob)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.numackpt")
	if err := SaveCheckpointFile(path, ck); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	again, err := EncodeCheckpointBytes(loaded)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, again) {
		t.Fatal("file round-trip changed the checkpoint bytes")
	}
}
