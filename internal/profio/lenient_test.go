package profio

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/faults"
)

// savedBytes serialises a live profile to v2 file bytes.
func savedBytes(t testing.TB) []byte {
	var buf bytes.Buffer
	if err := Save(&buf, liveProfile(t)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The truncation property: a v2 file cut at ANY point is either
// rejected outright (cut inside the magic line) or salvaged — strict
// Load refuses anything incomplete, LoadLenient recovers every section
// that survived whole and itemises the rest. Sections are lines, so we
// probe every line boundary plus a mid-line point after each.
func TestLenientSalvagesEveryTruncationPoint(t *testing.T) {
	data := savedBytes(t)

	var cuts []int
	for i, b := range data {
		if b == '\n' {
			cuts = append(cuts, i+1)
			if i+20 < len(data) {
				cuts = append(cuts, i+20) // mid-record: an unparseable line
			}
		}
	}
	cuts = append(cuts, 0, 1, len(magicV2)/2)

	for _, c := range cuts {
		cut := data[:c]
		_, strictErr := Load(bytes.NewReader(cut))
		prof, rep, err := LoadLenient(bytes.NewReader(cut))
		if c < len(magicV2)+1 {
			// Not even the magic line survived: nothing to salvage.
			if strictErr == nil || err == nil {
				t.Fatalf("cut at %d: loading a non-file should error", c)
			}
			continue
		}
		if err != nil {
			t.Fatalf("cut at %d/%d: lenient load failed: %v", c, len(data), err)
		}
		if prof == nil || rep == nil {
			t.Fatalf("cut at %d: lenient load returned nil profile or report", c)
		}
		if strictErr == nil {
			// Strict acceptance is only legitimate at a clean line
			// boundary with every core section present — a prefix
			// indistinguishable from a file saved without the optional
			// tail. Both loaders must then agree the file is fine.
			if data[c-1] != '\n' {
				t.Fatalf("cut at %d: strict Load accepted a mid-record cut", c)
			}
			if !rep.Clean() {
				t.Fatalf("cut at %d: loaders disagree — strict ok, lenient reports %+v", c, rep)
			}
			continue
		}
		// Strict refused, so the lenient report must itemise damage
		// and the salvaged profile must wear it.
		if rep.Clean() {
			t.Fatalf("cut at %d/%d: report claims a damaged file is clean", c, len(data))
		}
		if len(prof.Health.FileDamage) == 0 {
			t.Fatalf("cut at %d: salvaged profile must carry FileDamage", c)
		}
	}

	// The full file round-trips cleanly through both loaders.
	if _, err := Load(bytes.NewReader(data)); err != nil {
		t.Fatalf("strict load of intact file: %v", err)
	}
	prof, rep, err := LoadLenient(bytes.NewReader(data))
	if err != nil || !rep.Clean() || len(prof.Health.FileDamage) != 0 {
		t.Fatalf("lenient load of intact file: err %v, report %+v", err, rep)
	}
}

// A single flipped bit in one section is confined there: the checksum
// catches it, strict Load refuses, and LoadLenient recovers every other
// section.
func TestLenientConfinesBitFlips(t *testing.T) {
	data := savedBytes(t)
	lines := bytes.SplitAfter(data, []byte("\n"))
	// lines[0] is the magic; flip bits inside the tree record (fourth
	// section: meta, binary, vars, tree).
	if len(lines) < 5 {
		t.Fatalf("expected at least 5 lines, got %d", len(lines))
	}
	target := lines[4]
	flipped := faults.FlipBits(target[:len(target)-1], 0.001, 99)
	if bytes.Equal(flipped, target[:len(target)-1]) {
		t.Fatal("no bit flipped; raise the rate")
	}
	var damaged []byte
	for i, ln := range lines {
		if i == 4 {
			damaged = append(damaged, flipped...)
			damaged = append(damaged, '\n')
		} else {
			damaged = append(damaged, ln...)
		}
	}

	if _, err := Load(bytes.NewReader(damaged)); err == nil {
		t.Fatal("strict Load accepted a bit-flipped file")
	}
	prof, rep, err := LoadLenient(bytes.NewReader(damaged))
	if err != nil {
		t.Fatalf("lenient load: %v", err)
	}
	if rep.Clean() || len(rep.Corrupt) == 0 {
		t.Fatalf("damage not reported: %+v", rep)
	}
	// The undamaged sections all survive.
	for _, want := range []string{SectionMeta, SectionBinary, SectionVars} {
		found := false
		for _, s := range rep.Intact {
			if s == want {
				found = true
			}
		}
		if !found {
			t.Errorf("section %s should have survived: intact %v", want, rep.Intact)
		}
	}
	// Meta survived, so the headline numbers are authentic.
	orig := liveProfile(t)
	if prof.Totals.Samples != orig.Totals.Samples {
		t.Errorf("salvaged totals %v != original %v", prof.Totals.Samples, orig.Totals.Samples)
	}
}

// Version-1 files are a single JSON object; both loaders accept them,
// and the lenient loader reports them as atomically intact.
func TestV1BackCompat(t *testing.T) {
	doc, err := Encode(liveProfile(t))
	if err != nil {
		t.Fatal(err)
	}
	doc.Version = 1
	v1, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Load(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("strict load of v1: %v", err)
	}
	if prof.Totals.Samples == 0 {
		t.Fatal("v1 load lost the totals")
	}
	lp, rep, err := LoadLenient(bytes.NewReader(v1))
	if err != nil {
		t.Fatalf("lenient load of v1: %v", err)
	}
	if !rep.Clean() || len(rep.Intact) != 1 || rep.Intact[0] != "v1 document" {
		t.Fatalf("v1 report %+v", rep)
	}
	if lp.Totals.Samples != prof.Totals.Samples {
		t.Fatal("lenient and strict v1 loads disagree")
	}
	// A damaged v1 file has no section boundaries: lenient is honest
	// that nothing is recoverable.
	if _, _, err := LoadLenient(bytes.NewReader(v1[:len(v1)/2])); err == nil ||
		!strings.Contains(err.Error(), "unrecoverable") {
		t.Fatalf("truncated v1 should be unrecoverable, got %v", err)
	}
}

// A file whose sections are all gone (or whose meta is invalid) still
// loads leniently, on a synthesized placeholder machine.
func TestLenientSynthesizesMachine(t *testing.T) {
	prof, rep, err := LoadLenient(strings.NewReader(magicV2 + "\n"))
	if err != nil {
		t.Fatalf("lenient load of bare magic: %v", err)
	}
	if len(rep.Synthesized) == 0 || len(rep.Missing) == 0 {
		t.Fatalf("synthesis not reported: %+v", rep)
	}
	if prof.Machine == nil || prof.Machine.Name != "<salvaged-1-domain>" {
		t.Fatalf("expected the placeholder machine, got %+v", prof.Machine)
	}
}

func TestLenientRejectsGarbage(t *testing.T) {
	for _, in := range []string{"", "not a profile", "#wrong-magic\njunk"} {
		if _, _, err := LoadLenient(strings.NewReader(in)); err == nil {
			t.Errorf("LoadLenient(%q) should error", in)
		}
	}
}
