package profio

// Buffered measurement encoding. Save used to build the full Document
// (one NodeDoc per CCT node, one map per node's metrics and ranges)
// and hand it to encoding/json — O(nodes) allocations per save, and
// the profio_encode benchmark row's dominant cost. The encoder here
// streams the same bytes through buffers reused across saves (pooled,
// so concurrent jobs in numad each get their own): the small sections
// still go through encoding/json against a reused bytes.Buffer, while
// the tree section — the bulk of every measurement file — is written
// directly from cct.Node storage with no intermediate document at all.
//
// The output is byte-for-byte identical to the document path (which
// remains in profio.go as Encode/writeDocument, serving as the
// differential oracle in the byte-identity regression test). That means
// replicating encoding/json exactly where the tree section touches it:
// struct field order and omitempty semantics of NodeDoc, integer map
// keys sorted as *strings* ("10" before "2"), HTML-escaped string
// encoding, and the shortest-form float grammar.

import (
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"unicode/utf8"

	"repro/internal/addrcentric"
	"repro/internal/cct"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/telemetry"
)

// encoder holds every buffer a save needs, reused across saves via
// encPool.
type encoder struct {
	out  []byte // the assembled file
	body []byte // current hand-written section body (tree)
	jbuf writerBuf
	jenc *json.Encoder

	vars []VarDoc
	pats []PatternDoc

	kids   []*cct.Node // sorted-children stack for the tree walk
	owners []int       // range-owner scratch
}

// writerBuf is a minimal bytes.Buffer stand-in that keeps its backing
// slice accessible for reslicing without copies.
type writerBuf struct {
	b []byte
}

func (w *writerBuf) Write(p []byte) (int, error) {
	w.b = append(w.b, p...)
	return len(p), nil
}

var encPool = sync.Pool{
	New: func() any {
		e := &encoder{}
		e.jenc = json.NewEncoder(&e.jbuf)
		return e
	},
}

// Save writes a profile as a v2 sectioned measurement document.
func Save(w io.Writer, p *core.Profile) error {
	if p == nil {
		return fmt.Errorf("profio: nil profile")
	}
	e := encPool.Get().(*encoder)
	defer encPool.Put(e)
	if err := e.encodeProfile(p); err != nil {
		return err
	}
	if _, err := w.Write(e.out); err != nil {
		return err
	}
	telemetry.Default.Counter("profio_saves_total").Inc()
	return nil
}

// jsonBody encodes v with the reused encoder and returns the compact
// body (the trailing newline json.Encoder appends is stripped).
func (e *encoder) jsonBody(name string, v any) ([]byte, error) {
	e.jbuf.b = e.jbuf.b[:0]
	if err := e.jenc.Encode(v); err != nil {
		return nil, fmt.Errorf("profio: encode section %s: %w", name, err)
	}
	return e.jbuf.b[:len(e.jbuf.b)-1], nil
}

// section appends one checksummed section line to the output. The
// record layout matches json.Marshal(&sectionRec{...}) byte-for-byte:
// the section names are plain ASCII and the body is already compact,
// HTML-escaped JSON, so hand-assembly introduces no divergence.
func (e *encoder) section(name string, body []byte) {
	e.out = append(e.out, `{"section":"`...)
	e.out = append(e.out, name...)
	e.out = append(e.out, `","crc":`...)
	e.out = strconv.AppendUint(e.out, uint64(crc32.ChecksumIEEE(body)), 10)
	e.out = append(e.out, `,"body":`...)
	e.out = append(e.out, body...)
	e.out = append(e.out, '}', '\n')
}

func (e *encoder) jsonSection(name string, v any) error {
	body, err := e.jsonBody(name, v)
	if err != nil {
		return err
	}
	e.section(name, body)
	return nil
}

// nullBody is the body json.Marshal produces for a nil slice; the vars
// and patterns sections of an empty profile must keep emitting it.
var nullBody = []byte("null")

func (e *encoder) encodeProfile(p *core.Profile) error {
	e.out = append(e.out[:0], magicV2...)
	e.out = append(e.out, '\n')

	meta := metaDoc{
		Version:   FormatVersion,
		App:       p.AppName,
		Machine:   p.Machine.Config(),
		Mechanism: p.Mechanism,
		Period:    p.Period,
		HasFT:     p.FirstTouch != nil,
		Totals:    p.Totals,
		Health:    p.Health,
	}
	if err := e.jsonSection(SectionMeta, &meta); err != nil {
		return err
	}

	bin := BinaryDoc{
		Name:    p.Binary.Name,
		Funcs:   p.Binary.Funcs(),
		Sites:   p.Binary.Sites(),
		Statics: p.Binary.Statics(),
	}
	if err := e.jsonSection(SectionBinary, &bin); err != nil {
		return err
	}

	e.vars = e.vars[:0]
	for _, v := range p.Vars {
		e.vars = append(e.vars, encodeVar(v))
	}
	if len(e.vars) == 0 {
		e.section(SectionVars, nullBody)
	} else if err := e.jsonSection(SectionVars, e.vars); err != nil {
		return err
	}

	e.body = e.body[:0]
	e.encodeTreeNode(p.Tree.Root())
	e.section(SectionTree, e.body)

	e.pats = e.pats[:0]
	for _, v := range p.Registry.Variables() {
		for _, scope := range p.Patterns.Scopes(v) {
			if pat, ok := p.Patterns.Pattern(v, scope); ok {
				e.pats = append(e.pats, PatternDoc{
					RegionID: v.Region.ID,
					Bin:      addrcentric.WholeVariable,
					Scope:    scope,
					Threads:  pat.Threads(),
				})
			}
			for b := 0; b < v.Bins; b++ {
				if bp, ok := p.Patterns.BinPattern(v, b, scope); ok {
					e.pats = append(e.pats, PatternDoc{
						RegionID: v.Region.ID,
						Bin:      b,
						Scope:    scope,
						Threads:  bp.Threads(),
					})
				}
			}
		}
	}
	if len(e.pats) == 0 {
		e.section(SectionPatterns, nullBody)
	} else if err := e.jsonSection(SectionPatterns, e.pats); err != nil {
		return err
	}

	if p.Timeline != nil {
		if events := p.Timeline.Events(); len(events) > 0 {
			if err := e.jsonSection(SectionTimeline, events); err != nil {
				return err
			}
		}
	}
	return nil
}

// metricKeyOrder lists column ids in the order encoding/json emits
// integer map keys: sorted by their decimal string ("10" < "2"). It
// comfortably covers the dense id space (a handful of core counters
// plus one per domain, max 64 domains); wider columns take the dynamic
// fallback.
var metricKeyOrder = func() []metrics.ID {
	ids := make([]metrics.ID, 256)
	for i := range ids {
		ids[i] = metrics.ID(i)
	}
	sort.Slice(ids, func(i, j int) bool {
		return strconv.Itoa(int(ids[i])) < strconv.Itoa(int(ids[j]))
	})
	return ids
}()

// encodeTreeNode appends one CCT node (and, recursively, its subtree)
// to e.body, replicating json.Marshal of the equivalent NodeDoc.
func (e *encoder) encodeTreeNode(n *cct.Node) {
	b := e.body
	b = append(b, `{"k":`...)
	b = strconv.AppendUint(b, uint64(uint8(n.Key.Kind)), 10)
	if n.Key.Fn != 0 {
		b = append(b, `,"f":`...)
		b = strconv.AppendInt(b, int64(int32(n.Key.Fn)), 10)
	}
	if n.Key.Line != 0 {
		b = append(b, `,"l":`...)
		b = strconv.AppendInt(b, int64(n.Key.Line), 10)
	}
	if n.Key.Site != 0 {
		b = append(b, `,"s":`...)
		b = strconv.AppendInt(b, int64(int32(n.Key.Site)), 10)
	}
	if n.Key.Label != "" {
		b = append(b, `,"n":`...)
		b = appendJSONString(b, n.Key.Label)
	}

	cols := n.MetricColumns()
	nonZero := 0
	for _, v := range cols {
		if v != 0 {
			nonZero++
		}
	}
	if nonZero > 0 {
		b = append(b, `,"m":{`...)
		first := true
		if len(cols) <= len(metricKeyOrder) {
			for _, id := range metricKeyOrder {
				if int(id) >= len(cols) || cols[id] == 0 {
					continue
				}
				if !first {
					b = append(b, ',')
				}
				first = false
				b = append(b, '"')
				b = strconv.AppendInt(b, int64(id), 10)
				b = append(b, '"', ':')
				b = appendJSONFloat(b, cols[id])
			}
		} else {
			// Dynamic fallback for columns wider than the table.
			ids := make([]metrics.ID, 0, nonZero)
			for i, v := range cols {
				if v != 0 {
					ids = append(ids, metrics.ID(i))
				}
			}
			sort.Slice(ids, func(i, j int) bool {
				return strconv.Itoa(int(ids[i])) < strconv.Itoa(int(ids[j]))
			})
			for i, id := range ids {
				if i > 0 {
					b = append(b, ',')
				}
				b = append(b, '"')
				b = strconv.AppendInt(b, int64(id), 10)
				b = append(b, '"', ':')
				b = appendJSONFloat(b, cols[id])
			}
		}
		b = append(b, '}')
	}

	ownerBase := len(e.owners)
	e.owners = n.AppendRangeOwners(e.owners)
	if owners := e.owners[ownerBase:]; len(owners) > 0 {
		sortOwnersByString(owners)
		b = append(b, `,"r":{`...)
		for i, o := range owners {
			if i > 0 {
				b = append(b, ',')
			}
			r, _ := n.Range(o)
			b = append(b, '"')
			b = strconv.AppendInt(b, int64(o), 10)
			b = append(b, `":{"Min":`...)
			b = strconv.AppendUint(b, r.Min, 10)
			b = append(b, `,"Max":`...)
			b = strconv.AppendUint(b, r.Max, 10)
			b = append(b, '}')
		}
		b = append(b, '}')
	}
	e.owners = e.owners[:ownerBase]

	if n.NumChildren() > 0 {
		b = append(b, `,"c":[`...)
		e.body = b
		kidBase := len(e.kids)
		e.kids = n.AppendChildren(e.kids)
		// The recursion below may grow e.kids and move its backing
		// array; this local header still reads the children pointers
		// correctly either way.
		kids := e.kids[kidBase:]
		for i, c := range kids {
			if i > 0 {
				e.body = append(e.body, ',')
			}
			e.encodeTreeNode(c)
		}
		e.kids = e.kids[:kidBase]
		b = append(e.body, ']')
	}
	e.body = append(b, '}')
}

// sortOwnersByString reorders owners (already numerically sorted and
// tiny) into decimal-string order, matching encoding/json's map key
// ordering.
func sortOwnersByString(owners []int) {
	for i := 1; i < len(owners); i++ {
		for j := i; j > 0 && decimalLess(owners[j], owners[j-1]); j-- {
			owners[j], owners[j-1] = owners[j-1], owners[j]
		}
	}
}

// decimalLess reports whether the decimal rendering of a sorts before
// that of b as a string, without rendering either.
func decimalLess(a, b int) bool {
	if a == b {
		return false
	}
	// '-' (0x2d) sorts before every digit (0x30+).
	if (a < 0) != (b < 0) {
		return a < 0
	}
	var ab, bb [20]byte
	return string(appendAbsDecimal(ab[:0], a)) < string(appendAbsDecimal(bb[:0], b))
}

// appendAbsDecimal writes |v|'s digits; the shared '-' prefix of two
// negative numbers never affects their order.
func appendAbsDecimal(dst []byte, v int) []byte {
	u := uint64(v)
	if v < 0 {
		u = uint64(-int64(v))
	}
	return strconv.AppendUint(dst, u, 10)
}

// appendJSONFloat replicates encoding/json's float64 grammar: shortest
// form, 'f' format except for very small/large magnitudes, with the
// exponent's leading zero stripped.
func appendJSONFloat(dst []byte, f float64) []byte {
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		n := len(dst)
		if n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

const hexDigits = "0123456789abcdef"

// appendJSONString replicates encoding/json's string encoding with
// HTML escaping on (the Marshal default): control characters, quotes,
// backslashes, <, >, &, invalid UTF-8, and U+2028/U+2029 are escaped
// exactly as the standard library does.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch c {
			case '\\', '"':
				dst = append(dst, '\\', c)
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == '\u2028' || c == '\u2029' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xf])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}
