package profio

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSaveFileRoundTrip: the happy path writes a loadable file and
// leaves no temp litter behind.
func TestSaveFileRoundTrip(t *testing.T) {
	p := liveProfile(t)
	path := filepath.Join(t.TempDir(), "run.numaprof")
	if err := SaveFile(path, p); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.AppName != p.AppName {
		t.Fatalf("AppName = %q, want %q", got.AppName, p.AppName)
	}
	assertNoTempLitter(t, filepath.Dir(path))
}

// TestSaveFileMatchesSave: SaveFile's bytes are exactly Save's — the
// atomic path must not perturb the format (the daemon's byte-identity
// guarantee against the CLI rides on this).
func TestSaveFileMatchesSave(t *testing.T) {
	p := liveProfile(t)
	var buf bytes.Buffer
	if err := Save(&buf, p); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "run.numaprof")
	if err := SaveFile(path, p); err != nil {
		t.Fatal(err)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), onDisk) {
		t.Fatal("SaveFile bytes differ from Save bytes")
	}
}

// TestTornWritePreservesOldFile kills a write midway — the writer gets
// half a document and then a simulated crash — and asserts the previous
// complete file is still exactly what Load sees.
func TestTornWritePreservesOldFile(t *testing.T) {
	p := liveProfile(t)
	dir := t.TempDir()
	path := filepath.Join(dir, "run.numaprof")
	if err := SaveFile(path, p); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A full document, cut off mid-bytes at several points, never
	// reaches the real file: the rename only happens after a complete
	// write.
	var whole bytes.Buffer
	if err := Save(&whole, p); err != nil {
		t.Fatal(err)
	}
	killed := errors.New("simulated kill mid-write")
	for _, frac := range []float64{0, 0.25, 0.5, 0.99} {
		n := int(frac * float64(whole.Len()))
		err := atomicWrite(path, func(w io.Writer) error {
			if _, err := w.Write(whole.Bytes()[:n]); err != nil {
				return err
			}
			return killed
		})
		if !errors.Is(err, killed) {
			t.Fatalf("frac %.2f: err = %v, want the injected kill", frac, err)
		}
		after, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("frac %.2f: old file gone after torn write: %v", frac, err)
		}
		if !bytes.Equal(before, after) {
			t.Fatalf("frac %.2f: file bytes changed under a torn write", frac)
		}
		if _, err := LoadFile(path); err != nil {
			t.Fatalf("frac %.2f: Load after torn write: %v", frac, err)
		}
	}
	assertNoTempLitter(t, dir)
}

// TestTornWriteFreshPathLeavesNothing: when there was no previous file,
// a killed write leaves none — not a torn one.
func TestTornWriteFreshPathLeavesNothing(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fresh.numaprof")
	killed := errors.New("simulated kill mid-write")
	err := atomicWrite(path, func(w io.Writer) error {
		if _, err := io.WriteString(w, magicV2+"\n{\"section\":\"meta\""); err != nil {
			return err
		}
		return killed
	})
	if !errors.Is(err, killed) {
		t.Fatalf("err = %v, want the injected kill", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("torn write left a file behind (stat err = %v)", err)
	}
	assertNoTempLitter(t, dir)
}

func assertNoTempLitter(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}
