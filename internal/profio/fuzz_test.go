package profio

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/topology"
	"repro/internal/units"
)

// FuzzLoadLenient drives both loaders with arbitrary bytes. The
// contract under fuzzing: neither loader may panic or hang, whatever
// the input — a measurement file is untrusted data (networked
// filesystems truncate, bit-rot flips, other tools scribble). A
// successful lenient load must additionally return a usable profile
// and a coherent report.
func FuzzLoadLenient(f *testing.F) {
	// A compact profile (no timeline, coarse period) keeps the corpus
	// small enough for the mutator to make progress.
	m := topology.New(topology.Config{
		Name: "fuzz-m", NumDomains: 2, CPUsPerDomain: 2,
		MemoryPerDomain: units.GiB, RemoteDistance: 16,
	})
	prof, err := core.Analyze(core.Config{
		Machine: m, Mechanism: "IBS", Period: 512,
	}, newDemoApp())
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, prof); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()

	f.Add(valid)
	f.Add(faults.Truncate(valid, 0.6))
	f.Add(faults.Truncate(valid, 0.05))
	f.Add(faults.FlipBits(valid, 0.001, 7))
	f.Add([]byte(magicV2 + "\n"))
	f.Add([]byte(magicV2 + "\n{\"section\":\"meta\",\"crc\":0,\"body\":{}}\n"))
	if doc, err := Encode(prof); err == nil {
		doc.Version = 1
		if v1, err := json.Marshal(doc); err == nil {
			f.Add(v1)
		}
	}
	f.Add([]byte("{}"))
	f.Add([]byte("not a profile"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// Strict: error or success, never a panic.
		Load(bytes.NewReader(data))

		prof, rep, err := LoadLenient(bytes.NewReader(data))
		if err != nil {
			return
		}
		if prof == nil || rep == nil {
			t.Fatal("lenient success must return a profile and a report")
		}
		if prof.Machine == nil || prof.Tree == nil || prof.Registry == nil {
			t.Fatal("salvaged profile missing core structures")
		}
		if !rep.Clean() && len(prof.Health.FileDamage) == 0 {
			t.Fatal("damage reported but not recorded in Health")
		}
		// A salvaged profile must itself survive a save/load cycle.
		var out bytes.Buffer
		if err := Save(&out, prof); err != nil {
			t.Fatalf("salvaged profile does not re-save: %v", err)
		}
		if _, err := Load(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("re-saved salvage does not load: %v", err)
		}
	})
}
