package advisor

import (
	"context"
	"errors"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/units"
)

// Candidate is one re-run the plan calls for. Remedy indexes into
// Advice.Remedies; -1 marks the composite plan (the best-predicted
// placement strategy combined with the binding remedy, when both
// exist).
type Candidate struct {
	Index     int       `json:"index"`
	Remedy    int       `json:"remedy"`
	Transform Transform `json:"transform"`
	Label     string    `json:"label"`
}

// RunFunc re-runs the workload with a remedy's transform applied and
// returns the resulting profile. i is the candidate index (stable, for
// checkpoint keys); implementations must honor ctx.
type RunFunc func(ctx context.Context, i int, t Transform) (*core.Profile, error)

// Report is the full advise→apply→measure result: the diagnosis plus
// the measured outcome of every candidate, the composite plan, and the
// best remedy by measured speedup.
type Report struct {
	Advice
	// Composite is the combined plan's outcome (nil when the plan has
	// no second knob to combine).
	Composite *Remedy `json:"composite,omitempty"`
	// Best points at the remedy (or composite) with the highest
	// measured speedup; nil until measured.
	Best *Remedy `json:"best,omitempty"`
}

// Candidates lists the re-runs a plan requires, in a deterministic
// order: one per remedy (plan order), then the composite when the plan
// mixes a placement strategy with a binding change. The composite is
// decided from predictions alone, before any measurement, so the whole
// list fans out through sched in one deterministic batch.
func Candidates(a *Advice) []Candidate {
	if a == nil || a.NoAdvice {
		return nil
	}
	var out []Candidate
	for i, r := range a.Remedies {
		out = append(out, Candidate{
			Index:     len(out),
			Remedy:    i,
			Transform: r.Transform,
			Label:     string(r.Kind),
		})
	}
	if c, ok := compositeTransform(a); ok {
		out = append(out, Candidate{
			Index:     len(out),
			Remedy:    -1,
			Transform: c,
			Label:     "composite",
		})
	}
	return out
}

// compositeTransform combines the best-predicted placement strategy
// with the binding remedy. It only exists when the plan holds both
// knobs — applying one remedy never precludes the other.
func compositeTransform(a *Advice) (Transform, bool) {
	var strategy, binding *Remedy
	for i := range a.Remedies {
		r := &a.Remedies[i]
		if r.Transform.Binding != "" && binding == nil {
			binding = r
		}
		if r.Transform.Strategy != "" && strategy == nil {
			strategy = r
		}
	}
	if strategy == nil || binding == nil {
		return Transform{}, false
	}
	return Transform{Strategy: strategy.Transform.Strategy, Binding: binding.Transform.Binding}, true
}

// Measure actuates the plan: every candidate re-runs through the sched
// pipeline at the given width (0: Options default), and the report
// gains measured-vs-predicted speedups. Results are reassembled in
// candidate order, so the report is identical at any width. A failed
// candidate degrades to an errored remedy; Measure itself fails only
// when the context is canceled or every candidate failed.
func Measure(ctx context.Context, adv *Advice, cands []Candidate, width int, run RunFunc) (*Report, error) {
	rep := &Report{Advice: *adv}
	// Deep-copy the remedies so measurement never mutates the caller's
	// advice.
	rep.Remedies = append([]Remedy(nil), adv.Remedies...)
	if adv.NoAdvice || len(cands) == 0 {
		return rep, nil
	}
	if width <= 0 {
		width = sched.Workers()
	}

	_, done := telemetry.Timed(context.Background(), "advisor.measure")
	defer done()
	rerun := telemetry.Default.Histogram("advisor_rerun_us")

	type outcome struct {
		roi units.Cycles
		err error
	}
	results, err := sched.MapWithCtx(ctx, width, len(cands), func(cellCtx context.Context, i int) (outcome, error) {
		_, cellDone := telemetry.Timed(cellCtx, "advisor.rerun", telemetry.String("label", cands[i].Label))
		defer cellDone()
		start := time.Now()
		p, runErr := run(cellCtx, i, cands[i].Transform)
		rerun.Observe(time.Since(start))
		if runErr != nil {
			return outcome{err: runErr}, nil
		}
		if p == nil {
			return outcome{err: errors.New("remedy run returned no profile")}, nil
		}
		telemetry.Default.Counter("advisor_remedies_applied_total").Inc()
		return outcome{roi: p.Totals.ROITime}, nil
	})
	if err != nil {
		// MapWithCtx only fails here on context cancellation (cell
		// errors were folded into outcomes above) — but stay defensive
		// and surface whatever it reports.
		return nil, err
	}

	fill := func(r *Remedy, o outcome) {
		if o.err != nil {
			r.Error = o.err.Error()
			return
		}
		r.ROITime = o.roi
		r.Measured, r.MeasuredOK = safeRatio(float64(adv.BaselineROI)-float64(o.roi), float64(o.roi))
		if !r.MeasuredOK && o.roi > 0 {
			// The candidate ran slower than baseline: still a valid
			// measurement, just a negative speedup.
			r.Measured = float64(adv.BaselineROI)/float64(o.roi) - 1
			r.MeasuredOK = true
		}
	}

	failed := 0
	for i, c := range cands {
		o := results[i]
		if o.err != nil {
			failed++
		}
		if c.Remedy >= 0 && c.Remedy < len(rep.Remedies) {
			fill(&rep.Remedies[c.Remedy], o)
		} else if c.Remedy == -1 {
			comp := &Remedy{
				Kind:      "composite",
				Transform: c.Transform,
				Rationale: "best-predicted placement strategy combined with the thread-binding remedy",
			}
			// The composite's prediction: the stronger of its parts (a
			// conservative floor — the knobs partially overlap).
			for _, r := range rep.Remedies {
				if (r.Transform.Strategy == c.Transform.Strategy || r.Transform.Binding == c.Transform.Binding) &&
					r.PredictedOK && r.Predicted > comp.Predicted {
					comp.Predicted, comp.PredictedOK = r.Predicted, true
					comp.Targets = r.Targets
				}
			}
			fill(comp, o)
			rep.Composite = comp
		}
	}
	if failed == len(cands) {
		return nil, errors.New("advisor: every remedy run failed: " + results[0].err.Error())
	}

	rep.Best = best(rep)
	return rep, nil
}

// best picks the highest measured speedup across remedies and the
// composite, with a deterministic kind tiebreak.
func best(rep *Report) *Remedy {
	var cands []*Remedy
	for i := range rep.Remedies {
		if rep.Remedies[i].MeasuredOK {
			cands = append(cands, &rep.Remedies[i])
		}
	}
	if rep.Composite != nil && rep.Composite.MeasuredOK {
		cands = append(cands, rep.Composite)
	}
	if len(cands) == 0 {
		return nil
	}
	sort.SliceStable(cands, func(i, j int) bool {
		if cands[i].Measured != cands[j].Measured {
			return cands[i].Measured > cands[j].Measured
		}
		return cands[i].Kind < cands[j].Kind
	})
	b := *cands[0]
	return &b
}

// Optimize is the one-shot loop: diagnose the baseline, actuate every
// candidate remedy through run, and return the measured report.
func Optimize(ctx context.Context, baseline *core.Profile, o Options, run RunFunc) (*Report, error) {
	adv := Advise(baseline, o)
	return Measure(ctx, adv, Candidates(adv), o.Width, run)
}
