package advisor

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/proc"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// luleshConfig mirrors the case-study setup: IBS on the 48-core
// MagnyCours box, compact binding, first-touch tracking on.
func luleshConfig(binding proc.Binding) core.Config {
	m := topology.MagnyCours48()
	return core.Config{
		Machine:         m,
		Binding:         binding,
		Mechanism:       "IBS",
		TrackFirstTouch: true,
		CacheConfig:     workloads.TunedCacheConfig(),
		MemParams:       workloads.MemParamsFor(m),
		FabricParams:    workloads.FabricParamsFor(m),
	}
}

func luleshBaseline(t *testing.T, iters int) *core.Profile {
	t.Helper()
	p, err := core.Analyze(luleshConfig(proc.Compact), workloads.NewLULESH(workloads.Params{Iters: iters}))
	if err != nil {
		t.Fatalf("baseline analyze: %v", err)
	}
	return p
}

// luleshRun is the actuation hook the local optimizer path uses: clone
// the baseline config, apply the transform's knobs, re-analyze.
func luleshRun(iters int) RunFunc {
	return func(ctx context.Context, _ int, tr Transform) (*core.Profile, error) {
		binding := proc.Compact
		if tr.Binding == "scatter" {
			binding = proc.Scatter
		}
		params := workloads.Params{Iters: iters, Strategy: tr.Strategy}
		return core.AnalyzeCtx(ctx, luleshConfig(binding), workloads.NewLULESH(params))
	}
}

// A zero-sample profile must yield "no advice", and the report must
// survive JSON marshaling — i.e. no NaN leaked into any ranked field
// (json.Marshal fails loudly on NaN, which is exactly the regression
// this guards).
func TestZeroSampleProfileNoAdvice(t *testing.T) {
	p := &core.Profile{AppName: "empty", Mechanism: "IBS"}
	adv := Advise(p, Options{})
	if !adv.NoAdvice {
		t.Fatalf("zero-sample profile produced advice: %+v", adv)
	}
	if adv.Reason == "" {
		t.Fatal("no advice without a reason")
	}
	if len(adv.Remedies) != 0 {
		t.Fatalf("zero-sample profile produced %d remedies", len(adv.Remedies))
	}
	if _, err := json.Marshal(adv); err != nil {
		t.Fatalf("advice not JSON-clean (NaN leaked?): %v", err)
	}
	if Advise(nil, Options{}).NoAdvice != true {
		t.Fatal("nil profile must yield no advice")
	}
	rep, err := Measure(context.Background(), adv, Candidates(adv), 1, nil)
	if err != nil {
		t.Fatalf("measuring a no-advice report: %v", err)
	}
	if rep.Best != nil || rep.Composite != nil {
		t.Fatal("no-advice report gained measured remedies")
	}
}

// The LULESH diagnosis must surface the paper's fix: the staircase
// variables get a block-wise remedy with a positive predicted impact,
// ranked at or above interleaving.
func TestLULESHPlanProposesBlockwise(t *testing.T) {
	adv := Advise(luleshBaseline(t, 2), Options{})
	if adv.NoAdvice {
		t.Fatalf("LULESH baseline yielded no advice: %s", adv.Reason)
	}
	bw := adv.Remedy(KindBlockWise)
	if bw == nil {
		t.Fatalf("no blockwise remedy in plan: %+v", adv.Remedies)
	}
	if !bw.PredictedOK || bw.Predicted <= 0 {
		t.Fatalf("blockwise prediction not positive: %+v", bw)
	}
	if il := adv.Remedy(KindInterleave); il != nil && il.PredictedOK && il.Predicted > bw.Predicted {
		t.Fatalf("interleave (%.3f) outranked blockwise (%.3f)", il.Predicted, bw.Predicted)
	}
	for _, r := range adv.Remedies {
		if len(r.Targets) == 0 {
			t.Fatalf("remedy %s has no targets", r.Kind)
		}
	}
}

// Same profile, same options → byte-identical advice report at sched
// widths 1, 4, and 8. This is the serial-vs-parallel hash-identity
// contract for the optimizer.
func TestOptimizeDeterministicAcrossWidths(t *testing.T) {
	baseline := luleshBaseline(t, 2)
	run := luleshRun(2)
	var want [32]byte
	var wantText string
	for i, width := range []int{1, 4, 8} {
		rep, err := Optimize(context.Background(), baseline, Options{Width: width}, run)
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		blob, err := json.Marshal(rep)
		if err != nil {
			t.Fatalf("width %d: marshal: %v", width, err)
		}
		sum := sha256.Sum256(blob)
		text := rep.Render()
		if i == 0 {
			want, wantText = sum, text
			if rep.Best == nil {
				t.Fatal("measured report has no best remedy")
			}
			continue
		}
		if sum != want {
			t.Fatalf("width %d: advice JSON diverged from width 1", width)
		}
		if text != wantText {
			t.Fatalf("width %d: rendered report diverged from width 1", width)
		}
	}
}

// The rendered report must carry the predicted-vs-measured contract for
// every remedy.
func TestRenderCarriesPredictedAndMeasured(t *testing.T) {
	rep, err := Optimize(context.Background(), luleshBaseline(t, 2), Options{Width: 2}, luleshRun(2))
	if err != nil {
		t.Fatal(err)
	}
	text := rep.Render()
	for _, needle := range []string{"ranked plan", "predicted", "measured", "best measured:"} {
		if !strings.Contains(text, needle) {
			t.Fatalf("rendered report missing %q:\n%s", needle, text)
		}
	}
	for _, r := range rep.Remedies {
		if r.Error == "" && !r.MeasuredOK {
			t.Fatalf("remedy %s was not measured: %+v", r.Kind, r)
		}
	}
}
