package advisor

import (
	"fmt"
	"strings"
)

// Render produces the human-readable optimizer report. The output is a
// pure function of the report contents — no wall-clock, no map
// iteration — so the bytes are identical for any sched width and for
// repeated runs over the same profile.
func (rep *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== NUMA optimizer: %s (%s, %s) ===\n", rep.Workload, rep.Machine, rep.Mechanism)
	if rep.LPIOK {
		fmt.Fprintf(&b, "baseline: ROI %d cycles, lpi_NUMA %.4f (significant: %v), remote fraction %.2f, imbalance %.2f\n",
			rep.BaselineROI, rep.LPI, rep.Significant, rep.RemoteFraction, rep.Imbalance)
	} else {
		fmt.Fprintf(&b, "baseline: ROI %d cycles (no lpi_NUMA estimate)\n", rep.BaselineROI)
	}
	if rep.NoAdvice {
		fmt.Fprintf(&b, "no advice: %s\n", rep.Reason)
		return b.String()
	}

	shareLabel := "remote-lat share"
	if rep.CountBased {
		shareLabel = "remote-acc share"
	}
	b.WriteString("\nfindings (hot variables):\n")
	for _, f := range rep.Findings {
		cls := "scattered"
		switch {
		case f.Staircase:
			cls = "staircase@" + f.StaircaseScope
		case f.Overlap >= 0.5:
			cls = "full-sweep"
		}
		ft := "unknown"
		if f.FirstTouchKnown {
			ft = "parallel"
			if f.SerialFirstTouch {
				ft = "serial"
			}
		}
		ratio := "n/a"
		if f.MrOverMlOK {
			ratio = fmt.Sprintf("%.2f", f.MrOverMl)
		}
		fmt.Fprintf(&b, "  %-16s %s %5.1f%%  Mr/Ml %-6s home domain %d (%.0f%%)  first touch %-8s pattern %s\n",
			f.Var, shareLabel, 100*f.RemoteLatShare, ratio, f.HomeDomain, 100*f.HomeShare, ft, cls)
	}

	b.WriteString("\nranked plan (predicted vs measured speedup):\n")
	renderRemedy := func(i string, r *Remedy) {
		pred := "   n/a"
		if r.PredictedOK {
			pred = fmt.Sprintf("%+5.1f%%", 100*r.Predicted)
		}
		meas := "   n/a"
		if r.MeasuredOK {
			meas = fmt.Sprintf("%+5.1f%%", 100*r.Measured)
		}
		fmt.Fprintf(&b, "  %s %-22s %-22s predicted %s  measured %s", i, r.Kind, r.Transform.String(), pred, meas)
		if r.Error != "" {
			fmt.Fprintf(&b, "  FAILED: %s", r.Error)
		}
		b.WriteString("\n")
		if len(r.Targets) > 0 {
			fmt.Fprintf(&b, "      targets: %s\n", strings.Join(r.Targets, ", "))
		}
		fmt.Fprintf(&b, "      why: %s\n", r.Rationale)
	}
	for i := range rep.Remedies {
		renderRemedy(fmt.Sprintf("%d.", i+1), &rep.Remedies[i])
	}
	if rep.Composite != nil {
		renderRemedy("C.", rep.Composite)
	}
	if rep.Best != nil {
		fmt.Fprintf(&b, "\nbest measured: %s (%s) %+.1f%%\n",
			rep.Best.Kind, rep.Best.Transform.String(), 100*rep.Best.Measured)
	}
	return b.String()
}
