// Package advisor closes the loop the paper leaves open: the profiler
// diagnoses NUMA problems (Sections 7-8) and a human applies the fix.
// Advise consumes a finished profile's data-centric, address-centric,
// and first-touch views and emits a ranked plan of concrete remedies —
// a parallelised first-touch initialisation, block-wise or interleaved
// page placement, a JArena-style per-domain mix for hot objects, and
// thread binding to the data's home domain — each with a predicted
// impact derived from the M_r/M_l and latency-share metrics. Optimize
// then actuates the plan: every candidate remedy is applied as a
// config/workload transform, re-run through the existing sched
// pipeline, and reported with measured next to predicted speedup.
//
// Determinism contract: Advise is a pure function of the profile (the
// variable table is already sorted by descending remote latency, region
// scopes by descending latency), and Measure fans candidates out
// through sched with input-order reassembly — so the advice report is
// byte-identical for any worker count, and byte-identical whether the
// profile was freshly analyzed or decoded from a measurement file.
//
// Every quotient in the impact estimators goes through the NaN-safe
// (value, ok) contract of internal/metrics: a zero-sample profile
// yields "no advice", never a NaN ranking.
package advisor

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/addrcentric"
	"repro/internal/core"
	"repro/internal/telemetry"
	"repro/internal/units"
	"repro/internal/workloads"
)

// Kind names a remedy in the taxonomy (DESIGN.md §12).
type Kind string

const (
	// KindFirstTouch parallelises the initialisation loops so each
	// thread first-touches the data it later computes on (the paper's
	// UMT2013 and Blackscholes fix).
	KindFirstTouch Kind = "first-touch-init"
	// KindBlockWise distributes a variable's pages block-wise across
	// domains at its pinpointed first-touch site, co-locating block t
	// with thread t (the paper's LULESH fix).
	KindBlockWise Kind = "blockwise-placement"
	// KindInterleave spreads pages round-robin across domains — the
	// prior-work recipe, right for variables every thread sweeps in
	// full.
	KindInterleave Kind = "interleave-placement"
	// KindGuided is the JArena-style per-domain partition of hot
	// objects: block-wise for block-regular variables, interleaved for
	// full-sweep ones (the paper's AMG2006 fix).
	KindGuided Kind = "guided-partition"
	// KindBinding migrates the thread team to the hot data's home
	// domain when it fits there (thread binding/migration).
	KindBinding Kind = "thread-binding"
)

// Transform is a remedy expressed as the config/workload knobs the rest
// of the tree already understands: a placement Strategy (the tuning
// hooks in internal/workloads) and/or a thread binding. Empty fields
// keep the baseline's value.
type Transform struct {
	Strategy workloads.Strategy `json:"strategy,omitempty"`
	Binding  string             `json:"binding,omitempty"`
}

// String renders the knobs being turned.
func (t Transform) String() string {
	switch {
	case t.Strategy != "" && t.Binding != "":
		return string(t.Strategy) + "+" + t.Binding
	case t.Strategy != "":
		return string(t.Strategy)
	case t.Binding != "":
		return "binding=" + t.Binding
	}
	return "baseline"
}

// Options tune the diagnosis thresholds. Zero values mean the defaults,
// so Options{} is the standard advisor.
type Options struct {
	// MinShare is the remote-latency share below which a variable is
	// not worth fixing (0: 0.05 — the paper's case studies name
	// variables at 11-20%).
	MinShare float64
	// StaircaseTol is the tolerated normalised overlap for the
	// staircase test (0: 0.15, as the case-study experiments use).
	StaircaseTol float64
	// OverlapMin is the mean pairwise overlap above which a pattern
	// counts as a full-range sweep (0: 0.5).
	OverlapMin float64
	// Width bounds the measurement fan-out worker count
	// (0: sched.Workers()).
	Width int
}

func (o Options) minShare() float64 {
	if o.MinShare <= 0 {
		return 0.05
	}
	return o.MinShare
}

func (o Options) staircaseTol() float64 {
	if o.StaircaseTol <= 0 {
		return 0.15
	}
	return o.StaircaseTol
}

func (o Options) overlapMin() float64 {
	if o.OverlapMin <= 0 {
		return 0.5
	}
	return o.OverlapMin
}

// Finding is one hot variable's diagnosis: the data-centric metrics,
// the first-touch pinpoint, and the address-centric pattern class the
// remedies key on.
type Finding struct {
	Var string `json:"var"`
	// RemoteLatShare is the variable's share of total sampled remote
	// latency — of total sampled remote accesses when the mechanism
	// carries no latencies (Advice.CountBased).
	RemoteLatShare float64 `json:"remote_lat_share"`
	// MrOverMl is the M_r/M_l quotient ((value, ok) guarded).
	MrOverMl   float64 `json:"mr_over_ml"`
	MrOverMlOK bool    `json:"mr_over_ml_ok"`
	// HomeDomain is the domain holding the most sampled accesses;
	// HomeShare its fraction.
	HomeDomain int     `json:"home_domain"`
	HomeShare  float64 `json:"home_share"`
	// First-touch pinpointing (known only when tracking was enabled).
	FirstTouchKnown  bool `json:"first_touch_known"`
	SerialFirstTouch bool `json:"serial_first_touch"`
	// Address-centric pattern class.
	Staircase      bool    `json:"staircase"`
	StaircaseScope string  `json:"staircase_scope,omitempty"`
	Overlap        float64 `json:"overlap"`
}

// Remedy is one entry of the ranked plan.
type Remedy struct {
	Kind      Kind      `json:"kind"`
	Transform Transform `json:"transform"`
	// Targets are the variables the remedy addresses, in descending
	// remote-latency order.
	Targets   []string `json:"targets"`
	Rationale string   `json:"rationale"`
	// Predicted is the estimated speedup fraction (0.25 = +25%),
	// derived from the targets' latency shares; PredictedOK is false
	// when the profile could not support the estimate.
	Predicted   float64 `json:"predicted"`
	PredictedOK bool    `json:"predicted_ok"`
	// Measurement, filled by Measure/Optimize: the candidate run's ROI
	// time and the measured speedup fraction against the baseline.
	Measured   float64      `json:"measured"`
	MeasuredOK bool         `json:"measured_ok"`
	ROITime    units.Cycles `json:"roi_time,omitempty"`
	// Key is the content address of the candidate's stored profile
	// when the run went through a store (the numad path).
	Key string `json:"key,omitempty"`
	// Error carries a failed candidate run's cause.
	Error string `json:"error,omitempty"`
}

// Advice is the diagnosis half of the report: findings plus the ranked
// remedy plan, before any candidate has been re-run.
type Advice struct {
	Workload  string `json:"workload"`
	Machine   string `json:"machine"`
	Mechanism string `json:"mechanism"`

	BaselineROI units.Cycles `json:"baseline_roi"`
	// LPI is lpi_NUMA when the mechanism estimated one (LPIOK).
	LPI            float64 `json:"lpi"`
	LPIOK          bool    `json:"lpi_ok"`
	Significant    bool    `json:"significant"`
	RemoteFraction float64 `json:"remote_fraction"`
	Imbalance      float64 `json:"imbalance"`

	// NoAdvice reports that the profile shows nothing worth fixing (or
	// cannot support the estimators); Reason says why.
	NoAdvice bool   `json:"no_advice"`
	Reason   string `json:"reason,omitempty"`

	// CountBased reports that the mechanism sampled no latencies (MRK's
	// marked loads on POWER7 carry domains but not cycles), so every
	// share below is a remote-access-count share rather than a
	// remote-latency share — exactly the fallback the paper's POWER7
	// study works from.
	CountBased bool `json:"count_based,omitempty"`

	Findings []Finding `json:"findings,omitempty"`
	// Remedies is ranked by descending predicted impact.
	Remedies []Remedy `json:"remedies,omitempty"`
}

// Remedy returns the plan entry of a kind, nil when absent.
func (a *Advice) Remedy(k Kind) *Remedy {
	for i := range a.Remedies {
		if a.Remedies[i].Kind == k {
			return &a.Remedies[i]
		}
	}
	return nil
}

// safeRatio is the NaN-safe quotient: it refuses zero/invalid
// denominators and non-finite operands, so callers branch on ok instead
// of propagating NaN into rankings.
func safeRatio(num, den float64) (float64, bool) {
	if den <= 0 || math.IsNaN(num) || math.IsInf(num, 0) || math.IsNaN(den) || math.IsInf(den, 0) || num < 0 {
		return 0, false
	}
	return num / den, true
}

// Per-kind efficiency: the fraction of a target's remote latency the
// remedy is expected to recover. Block-wise and the guided mix
// eliminate remote accesses for pattern-matched variables; a
// parallelised first touch does the same where the compute schedule is
// reproducible; interleaving only balances controllers (it leaves
// (d-1)/d of accesses remote, Section 8.1); rebinding recovers locality
// but concentrates the team on one domain's controller.
func efficiency(k Kind) float64 {
	switch k {
	case KindBlockWise:
		return 0.90
	case KindGuided:
		return 0.92
	case KindFirstTouch:
		return 0.85
	case KindInterleave:
		return 0.60
	case KindBinding:
		return 0.75
	}
	return 0.5
}

// Advise diagnoses a finished profile and emits the ranked remedy plan.
// It is pure: same profile, same advice, regardless of worker count or
// whether the profile was freshly computed or loaded from a store.
func Advise(p *core.Profile, o Options) *Advice {
	telemetry.Default.Counter("advisor_advise_total").Inc()
	_, done := telemetry.Timed(context.Background(), "advisor.advise")
	defer done()

	a := &Advice{}
	if p == nil {
		a.NoAdvice, a.Reason = true, "no profile"
		return a
	}
	a.Workload = p.AppName
	if p.Machine != nil {
		a.Machine = p.Machine.Name
	}
	a.Mechanism = p.Mechanism
	a.BaselineROI = p.Totals.ROITime
	if !math.IsNaN(p.Totals.LPI) && !math.IsInf(p.Totals.LPI, 0) {
		a.LPI, a.LPIOK = p.Totals.LPI, true
	}
	a.Significant = p.Totals.Significant
	if f, ok := safeRatio(p.Totals.Mr, p.Totals.Ml+p.Totals.Mr); ok {
		a.RemoteFraction = f
	}
	if !math.IsNaN(p.Totals.Imbalance) && !math.IsInf(p.Totals.Imbalance, 0) {
		a.Imbalance = p.Totals.Imbalance
	}

	// The guards, in diagnostic order: no samples means the estimators
	// have nothing to divide by; an insignificant lpi_NUMA means the
	// paper's 0.1 cycles/instruction rule says the program has no NUMA
	// problem worth fixing (the Blackscholes negative control).
	if p.Totals.Samples <= 0 {
		a.NoAdvice, a.Reason = true, "no samples: the run delivered no usable address samples"
		return a
	}
	if _, ok := safeRatio(float64(p.Totals.SampledRemoteLat), float64(p.Totals.SampledLatency)); !ok {
		// No sampled latency (MRK and friends): fall back to access
		// counts, refusing only when those are absent too.
		if _, ok := safeRatio(p.Totals.Mr, p.Totals.Mr+p.Totals.Ml); !ok {
			a.NoAdvice, a.Reason = true, "no sampled latency or access counts: shares are undefined"
			return a
		}
		a.CountBased = true
	}
	if !p.Totals.Significant {
		a.NoAdvice, a.Reason = true, "lpi_NUMA below the significance threshold: no NUMA problem worth fixing"
		return a
	}

	a.Findings = diagnose(p, o, a.CountBased)
	if len(a.Findings) == 0 {
		a.NoAdvice, a.Reason = true,
			fmt.Sprintf("no variable exceeds the %.0f%% remote-latency share threshold", 100*o.minShare())
		return a
	}
	a.Remedies = plan(p, a, o)
	if len(a.Remedies) == 0 {
		a.NoAdvice, a.Reason = true, "findings match no remedy in the taxonomy"
		return a
	}
	telemetry.Default.Counter("advisor_remedies_proposed_total").Add(uint64(len(a.Remedies)))
	return a
}

// diagnose classifies every hot variable. p.Vars is sorted by
// descending remote latency (descending remote accesses when the
// mechanism sampled no latencies), so the findings order is
// deterministic. countBased switches the share metric from sampled
// remote latency to sampled remote accesses.
func diagnose(p *core.Profile, o Options, countBased bool) []Finding {
	var out []Finding
	for _, v := range p.Vars {
		if v.Var == nil || v.Mr <= 0 {
			continue
		}
		share := v.RemoteLatShare
		if countBased {
			share, _ = safeRatio(v.Mr, p.Totals.Mr)
		}
		if share < o.minShare() {
			continue
		}
		f := Finding{
			Var:            v.Var.Name,
			RemoteLatShare: share,
		}
		f.MrOverMl, f.MrOverMlOK = safeRatio(v.Mr, v.Ml)
		f.HomeDomain, f.HomeShare = homeDomain(v.PerDomain)
		f.FirstTouchKnown = len(v.FirstTouchThreads) > 0
		f.SerialFirstTouch = len(v.FirstTouchThreads) == 1
		if p.Patterns != nil {
			if pat, ok := p.Patterns.Pattern(v.Var, addrcentric.WholeProgram); ok {
				f.Overlap = pat.MeanOverlap()
				if pat.IsStaircase(o.staircaseTol()) {
					f.Staircase, f.StaircaseScope = true, "whole-program"
				}
			}
			// Overlap is the maximum across scopes: a variable swept in
			// full anywhere (AMG's cycle loop over its vectors) has no
			// single per-page owner for the whole run.
			for _, scope := range p.Patterns.Scopes(v.Var) {
				if scope == addrcentric.WholeProgram {
					continue
				}
				if pat, ok := p.Patterns.Pattern(v.Var, scope); ok && pat.MeanOverlap() > f.Overlap {
					f.Overlap = pat.MeanOverlap()
				}
			}
			if !f.Staircase && f.Overlap < o.overlapMin() {
				// The AMG lesson (Figures 4-7): a whole-program view
				// blurred by another region can hide a block-regular
				// pattern; scopes come back ordered by descending
				// latency, so the first staircase region wins
				// deterministically. A full-range sweep region anywhere
				// (the overlap gate above) vetoes the promotion.
				for _, scope := range p.Patterns.Scopes(v.Var) {
					if scope == addrcentric.WholeProgram {
						continue
					}
					if pat, ok := p.Patterns.Pattern(v.Var, scope); ok && pat.IsStaircase(o.staircaseTol()) {
						f.Staircase, f.StaircaseScope = true, scope
						break
					}
				}
			}
		}
		out = append(out, f)
	}
	return out
}

// homeDomain finds the domain with the most sampled accesses.
func homeDomain(perDomain []float64) (int, float64) {
	var total float64
	best, bestVal := 0, 0.0
	for d, n := range perDomain {
		total += n
		if n > bestVal {
			best, bestVal = d, n
		}
	}
	share, _ := safeRatio(bestVal, total)
	return best, share
}

// plan turns the findings into the ranked remedy list.
func plan(p *core.Profile, a *Advice, o Options) []Remedy {
	// Group targets by the pattern class the paper's fixes key on.
	var blockT, sweepT, ftT []string
	for _, f := range a.Findings {
		switch {
		case f.Staircase:
			// Disjoint ascending per-thread ranges: block t belongs to
			// thread t, so block-wise placement (and a parallelised
			// first touch) co-locates perfectly.
			blockT = append(blockT, f.Var)
			if f.SerialFirstTouch || !f.FirstTouchKnown {
				ftT = append(ftT, f.Var)
			}
		case f.Overlap >= o.overlapMin():
			// Overlapping ranges: either every thread sweeps the whole
			// variable (interleave is the only placement that helps) or
			// the threads' subsets interleave finely (UMT's round-robin
			// planes — a first-touch replay of the compute schedule
			// also fixes it). Propose both; measurement arbitrates.
			sweepT = append(sweepT, f.Var)
			if f.SerialFirstTouch {
				ftT = append(ftT, f.Var)
			}
		case f.SerialFirstTouch:
			ftT = append(ftT, f.Var)
		default:
			sweepT = append(sweepT, f.Var)
		}
	}

	rts := remoteTimeShare(p)
	var remedies []Remedy
	add := func(k Kind, t Transform, targets []string, rationale string) {
		if len(targets) == 0 {
			return
		}
		r := Remedy{Kind: k, Transform: t, Targets: targets, Rationale: rationale}
		r.Predicted, r.PredictedOK = predict(k, targets, a.Findings, rts)
		remedies = append(remedies, r)
	}

	if len(blockT) > 0 && len(sweepT) > 0 {
		add(KindGuided, Transform{Strategy: workloads.Guided}, union(blockT, sweepT),
			"mixed pattern classes: block-wise for the block-regular variables, interleave for the full-sweep ones (per-domain partition of hot objects)")
	}
	add(KindBlockWise, Transform{Strategy: workloads.BlockWise}, blockT,
		"per-thread staircase with a pinpointed first touch: distribute pages block-wise so block t lands in thread t's domain")
	add(KindInterleave, Transform{Strategy: workloads.Interleave}, sweepT,
		"overlapping full-range sweeps: no single owner exists, interleave pages to spread the controller load")
	add(KindFirstTouch, Transform{Strategy: workloads.ParallelInit}, ftT,
		"serial master-thread first touch homes the data in one domain: parallelise the initialisation so each thread first-touches what it computes on")
	if bt, home := bindingTargets(p, a, o); len(bt) > 0 {
		add(KindBinding, Transform{Binding: "compact"}, bt,
			fmt.Sprintf("hot data homed in domain %d and the team fits there: bind the threads to the data's home domain", home))
	}

	// Rank by predicted impact, ties broken by kind name — both
	// deterministic inputs.
	sort.SliceStable(remedies, func(i, j int) bool {
		if remedies[i].Predicted != remedies[j].Predicted {
			return remedies[i].Predicted > remedies[j].Predicted
		}
		return remedies[i].Kind < remedies[j].Kind
	})
	return remedies
}

// latencyExposure discounts accumulated remote latency to exposed stall
// time: out-of-order overlap, MLP, and prefetching hide most of it, so
// only a fraction of the remote cycles the samples account for shows up
// as lost runtime. 0.3 calibrates the predictions to the paper's
// measured case-study gains (LULESH +25%, UMT +7%).
const latencyExposure = 0.3

// remoteTimeShare estimates the fraction of the measured phase lost to
// remote-access stalls: lpi_exact x instructions / ROI time when the
// exact counters support it, else the sampled remote share of sampled
// latency as an upper bound — both discounted by latencyExposure and capped at 0.25 of runtime.
// Guarded; 0 disables the predictions (but not the plan).
func remoteTimeShare(p *core.Profile) float64 {
	if v, ok := safeRatio(p.Totals.LPIExact*float64(p.Totals.Instructions), float64(p.Totals.ROITime)); ok {
		return clamp01(v*latencyExposure, 0.25)
	}
	if v, ok := safeRatio(float64(p.Totals.SampledRemoteLat), float64(p.Totals.SampledLatency)); ok {
		return clamp01(v*latencyExposure, 0.25)
	}
	return 0
}

func clamp01(v, hi float64) float64 {
	if v < 0 {
		return 0
	}
	if v > hi {
		return hi
	}
	return v
}

// predict estimates a remedy's speedup: the targets' combined share of
// remote latency, scaled by the remote share of runtime and the
// remedy's efficiency, converted from a time reduction g to a speedup
// g/(1-g). Every quotient upstream was (value, ok) guarded.
func predict(k Kind, targets []string, findings []Finding, remoteTimeShare float64) (float64, bool) {
	if remoteTimeShare <= 0 {
		return 0, false
	}
	var share float64
	for _, f := range findings {
		for _, t := range targets {
			if f.Var == t {
				share += f.RemoteLatShare
				break
			}
		}
	}
	g := efficiency(k) * remoteTimeShare * clamp01(share, 1)
	if g >= 0.9 {
		g = 0.9
	}
	v, ok := safeRatio(g, 1-g)
	return v, ok
}

// union merges target lists preserving first-seen order.
func union(a, b []string) []string {
	out := append([]string(nil), a...)
	for _, v := range b {
		seen := false
		for _, u := range out {
			if u == v {
				seen = true
				break
			}
		}
		if !seen {
			out = append(out, v)
		}
	}
	return out
}

// bindingTargets decides whether migrating the thread team to the hot
// data's home domain is applicable: the hot variables' accesses
// concentrate in one domain, the observed team fits inside it, and the
// program actually suffers remote traffic.
func bindingTargets(p *core.Profile, a *Advice, o Options) ([]string, int) {
	if p.Machine == nil || a.RemoteFraction < 0.3 {
		return nil, 0
	}
	cpusPerDomain := p.Machine.Config().CPUsPerDomain
	team := teamSize(p, a)
	if team <= 0 || team > cpusPerDomain {
		return nil, 0
	}
	sums := make([]float64, p.Machine.NumDomains())
	var targets []string
	for _, f := range a.Findings {
		targets = append(targets, f.Var)
	}
	for _, v := range p.Vars {
		if v.Var == nil {
			continue
		}
		share := v.RemoteLatShare
		if a.CountBased {
			share, _ = safeRatio(v.Mr, p.Totals.Mr)
		}
		if share < o.minShare() {
			continue
		}
		for d, n := range v.PerDomain {
			if d < len(sums) {
				sums[d] += n
			}
		}
	}
	home, share := homeDomain(sums)
	if share < 0.6 {
		return nil, 0
	}
	return targets, home
}

// teamSize recovers the thread-team size from the address-centric
// patterns (the profile does not record the config's Threads field, but
// every team member that touched a hot variable appears in its pattern).
func teamSize(p *core.Profile, a *Advice) int {
	if p.Patterns == nil {
		return 0
	}
	max := -1
	for _, f := range a.Findings {
		v, ok := p.Registry.Lookup(f.Var)
		if !ok {
			continue
		}
		pat, ok := p.Patterns.Pattern(v, addrcentric.WholeProgram)
		if !ok {
			continue
		}
		for _, tr := range pat.Threads() {
			if tr.Thread > max {
				max = tr.Thread
			}
		}
	}
	return max + 1
}
