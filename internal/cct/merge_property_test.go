package cct

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/isa"
	"repro/internal/metrics"
)

// Property tests for the columnar shard merge. The differential oracle
// below (refNode / refMerge) is the node-by-node map-based merge the
// arena implementation replaced: metrics in a map keyed by metrics.ID,
// ranges in a map keyed by owner, children in a map keyed by Key, each
// node merged recursively. Randomized forests must merge to the same
// tree through both implementations, and MergeShards must be invariant
// under shard order (commutative), grouping (associative), and worker
// count — the invariants that license core.finish's parallel merge.
//
// All generated metric deltas are integral: that is the profiler's
// contract (see the package comment) and what makes float addition
// exact. The properties pinned here are claims about that regime, not
// about arbitrary float inputs.

// refNode is the oracle's tree node.
type refNode struct {
	metrics  map[metrics.ID]float64
	ranges   map[int]Range
	children map[Key]*refNode
}

func newRefNode() *refNode {
	return &refNode{
		metrics:  map[metrics.ID]float64{},
		ranges:   map[int]Range{},
		children: map[Key]*refNode{},
	}
}

// refFromTree copies a Tree into oracle form.
func refFromTree(t *Tree) *refNode {
	return refFromNode(t.Root())
}

func refFromNode(n *Node) *refNode {
	r := newRefNode()
	for id, v := range n.Metrics() {
		r.metrics[id] = v
	}
	for owner, rg := range n.Ranges() {
		r.ranges[owner] = rg
	}
	for _, c := range n.Children() {
		r.children[c.Key] = refFromNode(c)
	}
	return r
}

// refMerge is the old node-by-node merge: sum reduction for metrics,
// [min,max] union for ranges, recursive merge by child key.
func refMerge(dst, src *refNode) {
	for id, v := range src.metrics {
		dst.metrics[id] += v
	}
	for owner, rg := range src.ranges {
		if have, ok := dst.ranges[owner]; ok {
			dst.ranges[owner] = have.Union(rg)
		} else {
			dst.ranges[owner] = rg
		}
	}
	for k, c := range src.children {
		d, ok := dst.children[k]
		if !ok {
			d = newRefNode()
			dst.children[k] = d
		}
		refMerge(d, c)
	}
}

// renderRef serializes an oracle tree canonically (sorted keys at
// every level) so trees can be compared as strings with legible diffs.
func renderRef(r *refNode, b *strings.Builder, depth int) {
	indent := strings.Repeat("  ", depth)
	ids := make([]metrics.ID, 0, len(r.metrics))
	for id, v := range r.metrics {
		if v != 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fmt.Fprintf(b, "%sm[%d]=%v\n", indent, id, r.metrics[id])
	}
	owners := make([]int, 0, len(r.ranges))
	for o := range r.ranges {
		owners = append(owners, o)
	}
	sort.Ints(owners)
	for _, o := range owners {
		fmt.Fprintf(b, "%sr[%d]=%v\n", indent, o, r.ranges[o])
	}
	keys := make([]Key, 0, len(r.children))
	for k := range r.children {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	for _, k := range keys {
		fmt.Fprintf(b, "%s%+v\n", indent, k)
		renderRef(r.children[k], b, depth+1)
	}
}

func refString(r *refNode) string {
	var b strings.Builder
	renderRef(r, &b, 0)
	return b.String()
}

func treeString(t *Tree) string {
	return refString(refFromTree(t))
}

// randKey draws a child key; the small value ranges force heavy path
// overlap between independently generated trees, which is what makes
// the merge properties non-trivial.
func randKey(rng *rand.Rand) Key {
	switch rng.Intn(5) {
	case 0:
		return FrameKey(isa.FuncID(rng.Intn(4)), rng.Intn(3))
	case 1:
		return SiteKey(isa.SiteID(rng.Intn(6)))
	case 2:
		return DummyKey([]string{DummyAlloc, DummyAccess, DummyFirstTouch}[rng.Intn(3)])
	case 3:
		return VariableKey(fmt.Sprintf("v%d", rng.Intn(3)))
	default:
		return BinKey(fmt.Sprintf("v%d", rng.Intn(3)), rng.Intn(4))
	}
}

// randTree grows a random tree of about size nodes with integral
// metric values and per-owner ranges.
func randTree(rng *rand.Rand, size int) *Tree {
	t := New()
	nodes := []*Node{t.Root()}
	for len(nodes) < size {
		parent := nodes[rng.Intn(len(nodes))]
		n := parent.Child(randKey(rng))
		nodes = append(nodes, n)
	}
	for _, n := range nodes {
		for i := rng.Intn(4); i > 0; i-- {
			id := metrics.ID(rng.Intn(int(metrics.NodeBase) + 8))
			n.AddMetric(id, float64(rng.Intn(1000)))
		}
		for i := rng.Intn(3); i > 0; i-- {
			n.ExtendRange(rng.Intn(6), uint64(rng.Intn(1<<20)))
		}
	}
	return t
}

// TestMergeShardsMatchesNodeByNodeOracle is the differential test: a
// randomized forest merged by MergeShards (at several worker counts)
// must equal the same forest merged by the retained map-based oracle.
func TestMergeShardsMatchesNodeByNodeOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 20; round++ {
		nShards := 1 + rng.Intn(12)
		shards := make([]*Tree, nShards)
		for i := range shards {
			shards[i] = randTree(rng, 5+rng.Intn(60))
		}

		want := newRefNode()
		for _, s := range shards {
			refMerge(want, refFromTree(s))
		}
		wantStr := refString(want)

		for _, workers := range []int{1, 2, 4, 8} {
			dst := New()
			merged, skipped := MergeShards(dst, shards, workers)
			if merged != nShards || len(skipped) != 0 {
				t.Fatalf("round %d workers %d: merged %d of %d, skipped %v",
					round, workers, merged, nShards, skipped)
			}
			if got := treeString(dst); got != wantStr {
				t.Fatalf("round %d workers %d: merge disagrees with node-by-node oracle\ngot:\n%s\nwant:\n%s",
					round, workers, got, wantStr)
			}
		}
	}
}

// TestMergeCommutativeAndAssociative pins the algebra on metric totals
// and full tree shape: shard order and grouping must not change the
// merged result. Integral metrics make float addition exact, so the
// comparison is bitwise, not approximate.
func TestMergeCommutativeAndAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 10; round++ {
		a := randTree(rng, 40)
		b := randTree(rng, 40)
		c := randTree(rng, 40)

		mergeAll := func(order ...*Tree) string {
			dst := New()
			for _, s := range order {
				MergeTrees(dst, s)
			}
			return treeString(dst)
		}

		abc := mergeAll(a, b, c)
		if got := mergeAll(c, b, a); got != abc {
			t.Fatalf("round %d: merge not commutative:\n(c,b,a):\n%s\n(a,b,c):\n%s", round, got, abc)
		}
		if got := mergeAll(b, a, c); got != abc {
			t.Fatalf("round %d: merge not commutative:\n(b,a,c):\n%s\n(a,b,c):\n%s", round, got, abc)
		}

		// Associativity over grouping: ((a+b)+c) vs (a+(b+c)).
		left := New()
		MergeTrees(left, a)
		MergeTrees(left, b)
		MergeTrees(left, c)

		bc := New()
		MergeTrees(bc, b)
		MergeTrees(bc, c)
		right := New()
		MergeTrees(right, a)
		MergeTrees(right, bc)

		if l, r := treeString(left), treeString(right); l != r {
			t.Fatalf("round %d: merge not associative:\n((a+b)+c):\n%s\n(a+(b+c)):\n%s", round, l, r)
		}

		// And the totals line up with plain sums.
		wantSamples := refFromTree(a).inclusive(metrics.Samples) +
			refFromTree(b).inclusive(metrics.Samples) +
			refFromTree(c).inclusive(metrics.Samples)
		if got := left.Root().InclusiveMetric(metrics.Samples); got != wantSamples {
			t.Fatalf("round %d: inclusive Samples %v, want %v", round, got, wantSamples)
		}
	}
}

func (r *refNode) inclusive(id metrics.ID) float64 {
	total := r.metrics[id]
	for _, c := range r.children {
		total += c.inclusive(id)
	}
	return total
}

// TestMergeShardsSkipsNilShards pins the salvage contract: nil entries
// (per-thread profiles lost before the merge) are skipped and reported
// by index, and the survivors still merge to the oracle result.
func TestMergeShardsSkipsNilShards(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	shards := make([]*Tree, 10)
	want := newRefNode()
	for i := range shards {
		if i%3 == 1 {
			continue // leave a hole
		}
		shards[i] = randTree(rng, 30)
		refMerge(want, refFromTree(shards[i]))
	}
	for _, workers := range []int{1, 4} {
		dst := New()
		merged, skipped := MergeShards(dst, shards, workers)
		if merged != 7 {
			t.Errorf("workers %d: merged = %d, want 7", workers, merged)
		}
		if want := []int{1, 4, 7}; !equalInts(skipped, want) {
			t.Errorf("workers %d: skipped = %v, want %v", workers, skipped, want)
		}
		if got, wantStr := treeString(dst), refString(want); got != wantStr {
			t.Errorf("workers %d: salvaged merge disagrees with oracle", workers)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// FuzzMergeShards drives the shard merge with adversarial tree shapes
// decoded from raw bytes: deep chains, huge fan-outs that cross the
// index threshold, metric ids at the edges of the column space, range
// owners both inline and overflowing. It must never panic, and the
// parallel merge must equal the serial merge exactly.
func FuzzMergeShards(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(4), uint8(3))
	f.Add([]byte{0xff, 0x00, 0xaa, 0x55}, uint8(1), uint8(9))
	f.Add(make([]byte, 64), uint8(12), uint8(2))
	f.Add([]byte("deep chains and wide fans"), uint8(8), uint8(64))

	f.Fuzz(func(t *testing.T, data []byte, nShards, workers uint8) {
		n := int(nShards)%16 + 1
		shards := make([]*Tree, n)
		pos := 0
		next := func() byte {
			if len(data) == 0 {
				return 0
			}
			b := data[pos%len(data)]
			pos++
			return b
		}
		for i := range shards {
			if next()%7 == 0 {
				continue // nil shard: the salvage path must hold under fuzz too
			}
			tr := New()
			cur := tr.Root()
			ops := int(next())%96 + 1
			for o := 0; o < ops; o++ {
				switch next() % 6 {
				case 0: // descend into a (possibly new) child
					cur = cur.Child(FrameKey(isa.FuncID(next()%8), int(next()%4)))
				case 1: // wide fan-out to stress the index threshold
					for j := byte(0); j < next()%80; j++ {
						cur.Child(SiteKey(isa.SiteID(j)))
					}
				case 2:
					cur.AddMetric(metrics.ID(int(next())%(int(metrics.NodeBase)+12)), float64(next()))
				case 3:
					cur.ExtendRange(int(next()%10), uint64(next())<<uint(next()%24))
				case 4:
					cur = cur.Child(BinKey(string(rune('a'+next()%3)), int(next()%5)))
				default: // pop toward the root
					if cur.Parent() != nil {
						cur = cur.Parent()
					}
				}
			}
			shards[i] = tr
		}

		serial := New()
		sm, ss := MergeShards(serial, shards, 1)
		parallel := New()
		pm, ps := MergeShards(parallel, shards, int(workers))
		if sm != pm || !equalInts(ss, ps) {
			t.Fatalf("serial merged %d skipped %v; parallel merged %d skipped %v", sm, ss, pm, ps)
		}
		if got, want := treeString(parallel), treeString(serial); got != want {
			t.Fatalf("parallel merge diverged from serial merge\nparallel:\n%s\nserial:\n%s", got, want)
		}
	})
}
