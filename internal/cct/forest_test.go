package cct

import (
	"reflect"
	"testing"

	"repro/internal/metrics"
)

// MergeForest is the salvage path of the analyzer merge: some
// per-thread trees may be missing (nil) and the merged tree must sum
// over the survivors only, reporting exactly which slots were skipped.
func TestMergeForestSkipsNilTrees(t *testing.T) {
	mk := func(v float64) *Tree {
		tr := New()
		tr.Root().Child(FrameKey(0, 0)).AddMetric(metrics.Samples, v)
		return tr
	}
	dst := New()
	merged, skipped := MergeForest(dst, []*Tree{mk(1), nil, mk(2), nil, mk(4)})
	if merged != 3 {
		t.Errorf("merged = %d, want 3", merged)
	}
	if !reflect.DeepEqual(skipped, []int{1, 3}) {
		t.Errorf("skipped = %v, want [1 3]", skipped)
	}
	n, ok := dst.Root().FindChild(FrameKey(0, 0))
	if !ok {
		t.Fatal("merged node missing")
	}
	if got := n.Metric(metrics.Samples); got != 7 {
		t.Errorf("merged samples = %v, want 1+2+4 = 7", got)
	}
}

func TestMergeForestAllNil(t *testing.T) {
	dst := New()
	merged, skipped := MergeForest(dst, []*Tree{nil, nil})
	if merged != 0 || !reflect.DeepEqual(skipped, []int{0, 1}) {
		t.Errorf("merged %d skipped %v", merged, skipped)
	}
	if len(dst.Root().Children()) != 0 {
		t.Error("nothing should have merged")
	}
	if m, s := MergeForest(dst, nil); m != 0 || s != nil {
		t.Errorf("empty forest: merged %d skipped %v", m, s)
	}
}
