// Package cct implements the augmented calling context trees of
// Section 7.1 of the paper. A CCT node is identified by what it
// represents — a procedure frame, an instruction site, a dummy
// separator, a variable, or a bin of a variable — and carries NUMA
// metric columns plus per-thread [min,max] address ranges.
//
// The "augmented" part is the paper's mixture of call-path flavours in
// one tree: variable allocation paths, memory access paths, and first
// touch paths, separated by dummy nodes so the viewer can distinguish
// the segments (Section 7.1). The offline analyzer merges per-thread
// trees with sum reductions for counters and the customised [min,max]
// reduction Section 7.2 calls out for address ranges.
//
// # Storage model
//
// Nodes live in slabs owned by their Tree (an arena), not as individual
// heap objects: creating a node bumps a cursor, and slabs are never
// reallocated, so node pointers stay stable for the tree's lifetime.
// Metric columns come from a per-tree float64 arena the same way, and a
// node's children form an intrusive singly-linked sibling list (with a
// map index grown only past a fan-out threshold). A single-owner
// address range is stored inline in the node. The effect is that
// building or merging a tree of N nodes costs O(N/slab) allocations
// instead of O(N) — the contract the cct_merge benchmark row gates.
//
// The merge itself is columnar: metric columns are dense []float64
// slices indexed by metrics.ID and are added elementwise. All metric
// deltas the profiler ever feeds in are integral and stay far below
// 2^53, so float addition is exact and merging is commutative and
// associative — the invariant that licenses MergeShards' parallel
// grouped fold (and that the property tests in this package pin down).
package cct

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/isa"
	"repro/internal/metrics"
)

// NodeKind classifies a CCT node.
type NodeKind uint8

// Node kinds.
const (
	// KindRoot is the tree root.
	KindRoot NodeKind = iota
	// KindFrame is a procedure frame on a call path.
	KindFrame
	// KindSite is a leaf instruction site (load/store/alloc).
	KindSite
	// KindDummy separates segments of different call-path flavours
	// (allocation path vs access path vs first-touch path).
	KindDummy
	// KindVariable anchors data-centric attribution for one variable.
	KindVariable
	// KindBin is one address sub-range (synthetic variable) of a
	// binned variable (Section 5.2).
	KindBin
)

// String names the kind.
func (k NodeKind) String() string {
	switch k {
	case KindRoot:
		return "root"
	case KindFrame:
		return "frame"
	case KindSite:
		return "site"
	case KindDummy:
		return "dummy"
	case KindVariable:
		return "variable"
	case KindBin:
		return "bin"
	default:
		return fmt.Sprintf("NodeKind(%d)", uint8(k))
	}
}

// Key identifies a child within its parent. Only the fields relevant
// for the kind participate (the rest stay zero), so Key is directly
// usable as a map key.
type Key struct {
	Kind  NodeKind
	Fn    isa.FuncID
	Line  int
	Site  isa.SiteID
	Label string
}

// FrameKey returns the key for a procedure frame entered from the
// given call-site line.
func FrameKey(fn isa.FuncID, callLine int) Key {
	return Key{Kind: KindFrame, Fn: fn, Line: callLine}
}

// SiteKey returns the key for an instruction site.
func SiteKey(site isa.SiteID) Key {
	return Key{Kind: KindSite, Site: site}
}

// DummyKey returns the key for a dummy separator node. The canonical
// labels are DummyAlloc, DummyAccess and DummyFirstTouch.
func DummyKey(label string) Key {
	return Key{Kind: KindDummy, Label: label}
}

// VariableKey returns the key for a variable node.
func VariableKey(name string) Key {
	return Key{Kind: KindVariable, Label: name}
}

// BinKey returns the key for bin idx of a variable.
func BinKey(variable string, idx int) Key {
	return Key{Kind: KindBin, Label: variable, Line: idx}
}

// Dummy separator labels (Section 7.1's "dummy nodes ... recorded for
// different purposes").
const (
	DummyAlloc      = "<allocation path>"
	DummyAccess     = "<access path>"
	DummyFirstTouch = "<first touch>"
)

// less orders keys deterministically for stable iteration and merging.
func (k Key) less(o Key) bool {
	if k.Kind != o.Kind {
		return k.Kind < o.Kind
	}
	if k.Fn != o.Fn {
		return k.Fn < o.Fn
	}
	if k.Line != o.Line {
		return k.Line < o.Line
	}
	if k.Site != o.Site {
		return k.Site < o.Site
	}
	return k.Label < o.Label
}

// Range is a [Min, Max] address interval (inclusive bounds).
type Range struct {
	Min, Max uint64
}

// Union returns the smallest range covering both.
func (r Range) Union(o Range) Range {
	out := r
	if o.Min < out.Min {
		out.Min = o.Min
	}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	return out
}

// Extend grows the range to include addr.
func (r Range) Extend(addr uint64) Range {
	out := r
	if addr < out.Min {
		out.Min = addr
	}
	if addr > out.Max {
		out.Max = addr
	}
	return out
}

// ownerRange is one per-owner address range entry.
type ownerRange struct {
	owner int
	r     Range
}

// indexThreshold is the sibling count past which a node grows a map
// index over its children. Below it, the linear scan of the sibling
// list is both faster (no hashing of the Label string) and
// allocation-free; above it, the index keeps adversarial fan-outs
// (fuzzed trees, huge bin counts) from degrading Child to O(n).
const indexThreshold = 48

// Node is one CCT node. Nodes are created only through their Tree
// (Tree.Root, Node.Child, Node.InsertPath) and live in the tree's
// arena; the zero Node is not usable.
type Node struct {
	Key    Key
	parent *Node
	tree   *Tree

	// Children form an intrusive singly-linked list in insertion
	// order; index is grown lazily past indexThreshold.
	firstChild  *Node
	lastChild   *Node
	nextSibling *Node
	nchildren   int
	index       map[Key]*Node

	// metrics holds the exclusive metric columns indexed by
	// metrics.ID. The ID space is small and dense (a handful of core
	// counters plus one per-domain column), so a grow-on-demand slice
	// serves the per-sample AddMetric path without the map hashing
	// the profiler used to pay on every sample. The slice is carved
	// from the tree's float arena.
	metrics []float64

	// ranges holds per-owner [min,max] accessed-address intervals;
	// the owner key is a thread index. These are the values merged
	// with the [min,max] reduction of Section 7.2. The first owner is
	// stored inline (the overwhelmingly common case: a site node is
	// usually touched by one thread), with an overflow slice for the
	// rest.
	hasRange  bool
	range0    ownerRange
	rangeRest []ownerRange
}

// Tree is a calling context tree. It owns the arenas its nodes and
// metric columns live in; a Tree and its nodes belong to one goroutine
// at a time (concurrent reads are safe, mutation is not).
type Tree struct {
	root *Node

	// nodes is the current node slab: len is the used prefix, and the
	// slab is swapped (never reallocated) when full, so node pointers
	// stay stable.
	nodes []Node
	// floats is the current metric-column slab, same discipline.
	floats []float64
}

// Node slab sizing: slabs start small so per-thread trees with a
// handful of nodes stay cheap, and double up to a cap so large merged
// trees cost O(N/slab) allocations.
const (
	minNodeSlab  = 32
	maxNodeSlab  = 1024
	minFloatSlab = 256
	maxFloatSlab = 8192
)

// New creates an empty tree.
func New() *Tree {
	t := &Tree{}
	t.root = t.newNode(Key{Kind: KindRoot}, nil)
	return t
}

// newNode carves one node out of the tree's arena.
func (t *Tree) newNode(k Key, parent *Node) *Node {
	if len(t.nodes) == cap(t.nodes) {
		size := cap(t.nodes) * 2
		if size < minNodeSlab {
			size = minNodeSlab
		}
		if size > maxNodeSlab {
			size = maxNodeSlab
		}
		t.nodes = make([]Node, 0, size)
	}
	t.nodes = t.nodes[:len(t.nodes)+1]
	n := &t.nodes[len(t.nodes)-1]
	n.Key = k
	n.parent = parent
	n.tree = t
	return n
}

// allocFloats carves a zeroed column slice of length n out of the
// tree's float arena. The result is capacity-clamped so it can never
// grow into a neighbour's columns.
func (t *Tree) allocFloats(n int) []float64 {
	if len(t.floats)+n > cap(t.floats) {
		size := cap(t.floats) * 2
		if size < minFloatSlab {
			size = minFloatSlab
		}
		if size > maxFloatSlab {
			size = maxFloatSlab
		}
		if size < n {
			size = n
		}
		t.floats = make([]float64, 0, size)
	}
	start := len(t.floats)
	t.floats = t.floats[:start+n]
	return t.floats[start : start+n : start+n]
}

// Root returns the root node.
func (t *Tree) Root() *Node { return t.root }

// Parent returns the node's parent (nil for the root).
func (n *Node) Parent() *Node { return n.parent }

// findChild locates the child with the given key: map index when the
// node has one, sibling-list scan otherwise.
func (n *Node) findChild(k Key) (*Node, bool) {
	if n.index != nil {
		c, ok := n.index[k]
		return c, ok
	}
	for s := n.firstChild; s != nil; s = s.nextSibling {
		if s.Key == k {
			return s, true
		}
	}
	return nil, false
}

// Child returns the child with the given key, creating it if needed.
func (n *Node) Child(k Key) *Node {
	if c, ok := n.findChild(k); ok {
		return c
	}
	c := n.tree.newNode(k, n)
	if n.lastChild == nil {
		n.firstChild = c
	} else {
		n.lastChild.nextSibling = c
	}
	n.lastChild = c
	n.nchildren++
	if n.index != nil {
		n.index[k] = c
	} else if n.nchildren > indexThreshold {
		n.index = make(map[Key]*Node, 2*n.nchildren)
		for s := n.firstChild; s != nil; s = s.nextSibling {
			n.index[s.Key] = s
		}
	}
	return c
}

// FindChild returns the child with the given key, if present.
func (n *Node) FindChild(k Key) (*Node, bool) {
	return n.findChild(k)
}

// sortNodesByKey orders nodes by Key.less. Fan-outs are small in
// practice, so an allocation-free insertion sort is the fast path; big
// (adversarial) fan-outs fall back to sort.Slice.
func sortNodesByKey(nodes []*Node) {
	if len(nodes) <= 32 {
		for i := 1; i < len(nodes); i++ {
			for j := i; j > 0 && nodes[j].Key.less(nodes[j-1].Key); j-- {
				nodes[j], nodes[j-1] = nodes[j-1], nodes[j]
			}
		}
		return
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].Key.less(nodes[j].Key) })
}

// AppendChildren appends the node's children to dst in deterministic
// key order and returns the extended slice. Callers on hot paths reuse
// dst across calls to stay allocation-free.
func (n *Node) AppendChildren(dst []*Node) []*Node {
	start := len(dst)
	for s := n.firstChild; s != nil; s = s.nextSibling {
		dst = append(dst, s)
	}
	sortNodesByKey(dst[start:])
	return dst
}

// Children returns the node's children in deterministic key order.
func (n *Node) Children() []*Node {
	if n.nchildren == 0 {
		return nil
	}
	return n.AppendChildren(make([]*Node, 0, n.nchildren))
}

// NumChildren returns the number of children.
func (n *Node) NumChildren() int { return n.nchildren }

// InsertPath walks keys from n, creating nodes as needed, and returns
// the final node.
func (n *Node) InsertPath(keys []Key) *Node {
	cur := n
	for _, k := range keys {
		cur = cur.Child(k)
	}
	return cur
}

// FindPath walks keys from n without creating nodes.
func (n *Node) FindPath(keys []Key) (*Node, bool) {
	cur := n
	for _, k := range keys {
		c, ok := cur.FindChild(k)
		if !ok {
			return nil, false
		}
		cur = c
	}
	return cur, true
}

// AddMetric accumulates delta into the metric column. Negative ids
// are ignored (no metric lives there).
func (n *Node) AddMetric(id metrics.ID, delta float64) {
	i := int(id)
	if i < 0 {
		return
	}
	if i >= len(n.metrics) {
		// Grow to at least the core-column count in one shot so the
		// common Samples/Match/Latency adds on a fresh node carve the
		// arena once.
		size := i + 1
		if size < int(metrics.NodeBase) {
			size = int(metrics.NodeBase)
		}
		grown := n.tree.allocFloats(size)
		copy(grown, n.metrics)
		n.metrics = grown
	}
	n.metrics[i] += delta
}

// Metric returns the node's exclusive value for the metric column.
func (n *Node) Metric(id metrics.ID) float64 {
	if i := int(id); i >= 0 && i < len(n.metrics) {
		return n.metrics[i]
	}
	return 0
}

// MetricColumns returns the node's dense exclusive metric columns,
// indexed by metrics.ID. The slice is owned by the node: callers must
// treat it as read-only. This is the zero-copy accessor the columnar
// merge and the profile encoder use; Metrics remains the map-shaped
// reporting accessor.
func (n *Node) MetricColumns() []float64 { return n.metrics }

// Metrics returns the node's non-zero exclusive metric columns as a
// map. This is a reporting-path convenience; the hot accumulation path
// stays on the slice.
func (n *Node) Metrics() map[metrics.ID]float64 {
	var out map[metrics.ID]float64
	for i, v := range n.metrics {
		if v == 0 {
			continue
		}
		if out == nil {
			out = make(map[metrics.ID]float64, len(n.metrics)-i)
		}
		out[metrics.ID(i)] = v
	}
	if out == nil {
		out = map[metrics.ID]float64{}
	}
	return out
}

// InclusiveMetric returns the metric summed over the node's subtree —
// HPCToolkit's inclusive column.
func (n *Node) InclusiveMetric(id metrics.ID) float64 {
	total := n.Metric(id)
	for c := n.firstChild; c != nil; c = c.nextSibling {
		total += c.InclusiveMetric(id)
	}
	return total
}

// ExtendRange grows owner's address range on this node to cover addr.
func (n *Node) ExtendRange(owner int, addr uint64) {
	if !n.hasRange {
		n.hasRange = true
		n.range0 = ownerRange{owner: owner, r: Range{Min: addr, Max: addr}}
		return
	}
	if n.range0.owner == owner {
		n.range0.r = n.range0.r.Extend(addr)
		return
	}
	for i := range n.rangeRest {
		if n.rangeRest[i].owner == owner {
			n.rangeRest[i].r = n.rangeRest[i].r.Extend(addr)
			return
		}
	}
	n.rangeRest = appendOwnerRange(n.rangeRest, ownerRange{owner: owner, r: Range{Min: addr, Max: addr}})
}

// appendOwnerRange appends with a first-growth capacity of 4: once a
// node overflows its inline range slot it tends to collect a few more
// owners, and bare append would burn an allocation on each of them.
func appendOwnerRange(rest []ownerRange, or ownerRange) []ownerRange {
	if rest == nil {
		rest = make([]ownerRange, 0, 4)
	}
	return append(rest, or)
}

// unionRange folds a whole [min,max] range into owner's entry — the
// Section 7.2 reduction, used by Merge.
func (n *Node) unionRange(owner int, r Range) {
	if !n.hasRange {
		n.hasRange = true
		n.range0 = ownerRange{owner: owner, r: r}
		return
	}
	if n.range0.owner == owner {
		n.range0.r = n.range0.r.Union(r)
		return
	}
	for i := range n.rangeRest {
		if n.rangeRest[i].owner == owner {
			n.rangeRest[i].r = n.rangeRest[i].r.Union(r)
			return
		}
	}
	n.rangeRest = appendOwnerRange(n.rangeRest, ownerRange{owner: owner, r: r})
}

// Range returns owner's address range on this node.
func (n *Node) Range(owner int) (Range, bool) {
	if !n.hasRange {
		return Range{}, false
	}
	if n.range0.owner == owner {
		return n.range0.r, true
	}
	for i := range n.rangeRest {
		if n.rangeRest[i].owner == owner {
			return n.rangeRest[i].r, true
		}
	}
	return Range{}, false
}

// numRanges returns the number of owners with ranges on this node.
func (n *Node) numRanges() int {
	if !n.hasRange {
		return 0
	}
	return 1 + len(n.rangeRest)
}

// Ranges returns a copy of the per-owner address ranges.
func (n *Node) Ranges() map[int]Range {
	out := make(map[int]Range, n.numRanges())
	if n.hasRange {
		out[n.range0.owner] = n.range0.r
		for _, or := range n.rangeRest {
			out[or.owner] = or.r
		}
	}
	return out
}

// AppendRangeOwners appends the owners with ranges on this node to dst
// in numeric order and returns the extended slice. Callers on hot
// paths reuse dst to stay allocation-free.
func (n *Node) AppendRangeOwners(dst []int) []int {
	if !n.hasRange {
		return dst
	}
	start := len(dst)
	dst = append(dst, n.range0.owner)
	for _, or := range n.rangeRest {
		dst = append(dst, or.owner)
	}
	sub := dst[start:]
	sort.Ints(sub)
	return dst
}

// RangeOwners returns the owners with ranges on this node, sorted.
func (n *Node) RangeOwners() []int {
	if !n.hasRange {
		return []int{}
	}
	return n.AppendRangeOwners(make([]int, 0, n.numRanges()))
}

// Visit walks the subtree rooted at n in deterministic preorder.
func (n *Node) Visit(fn func(*Node)) {
	fn(n)
	for _, c := range n.Children() {
		c.Visit(fn)
	}
}

// Path returns the keys from the root (exclusive) down to n.
func (n *Node) Path() []Key {
	var rev []Key
	for cur := n; cur != nil && cur.Key.Kind != KindRoot; cur = cur.parent {
		rev = append(rev, cur.Key)
	}
	out := make([]Key, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// Merge folds src's subtree into dst: metric columns add elementwise
// (the columnar merge over dense metrics.ID columns), address ranges
// union ([min,max] reduction), children merge recursively by key. src
// is left untouched; concurrent Merges reading the same src are safe.
// This is the hpcprof thread-profile merge of Section 7.2.
func Merge(dst, src *Node) {
	if len(src.metrics) > 0 {
		dm := dst.metrics
		if len(dm) < len(src.metrics) {
			grown := dst.tree.allocFloats(len(src.metrics))
			copy(grown, dm)
			dst.metrics, dm = grown, grown
		}
		for i, v := range src.metrics {
			dm[i] += v
		}
	}
	if src.hasRange {
		dst.unionRange(src.range0.owner, src.range0.r)
		for _, or := range src.rangeRest {
			dst.unionRange(or.owner, or.r)
		}
	}
	// Shards of the same program insert paths in the same order, so
	// dst's sibling list usually mirrors src's: a cursor walking dst in
	// lockstep hits the right child in O(1), falling back to the keyed
	// lookup only when the lists diverge. Child() keeps identical
	// find-or-create semantics on both paths, so the result is the same
	// tree either way.
	cursor := dst.firstChild
	for c := src.firstChild; c != nil; c = c.nextSibling {
		d := cursor
		if d == nil || d.Key != c.Key {
			d = dst.Child(c.Key)
		}
		cursor = d.nextSibling
		Merge(d, c)
	}
}

// MergeTrees merges src into dst at the roots.
func MergeTrees(dst, src *Tree) { Merge(dst.root, src.root) }

// MergeForest folds a set of per-thread trees into dst, salvaging what
// it can: nil entries (per-thread profiles lost or unreadable before
// the hpcprof merge) are skipped rather than aborting the whole merge.
// It returns how many trees merged and the indices of those skipped, so
// the caller can report thread coverage instead of pretending the
// merge was complete.
func MergeForest(dst *Tree, trees []*Tree) (merged int, skipped []int) {
	return MergeShards(dst, trees, 1)
}

// mergeShardsMin is the shard count below which MergeShards stays
// serial regardless of the requested worker count: spawning goroutines
// for a handful of small per-thread trees costs more than it saves.
const mergeShardsMin = 8

// MergeShards folds a set of CCT shards (per-thread or per-worker
// trees) into dst with up to workers concurrent accumulators. Shards
// are dealt round-robin to fresh accumulator trees, each folded
// serially on its own goroutine, and the accumulators are then folded
// into dst in order — so the grouping is a pure function of the shard
// count and worker count, never of scheduling.
//
// The result is identical to a serial fold for the profiles this tool
// produces: every metric delta is integral and totals stay far below
// 2^53, so float addition is exact and the grouped fold is associative
// and commutative bit-for-bit (the determinism harness and the
// property tests in this package enforce it). Like MergeForest, nil
// shards are skipped and reported rather than aborting the merge.
func MergeShards(dst *Tree, shards []*Tree, workers int) (merged int, skipped []int) {
	live := shards
	for _, tr := range shards {
		if tr == nil {
			// Slow path: filter the nil shards out, remembering them.
			live = live[:0:0]
			for i, tr := range shards {
				if tr == nil {
					skipped = append(skipped, i)
					continue
				}
				live = append(live, tr)
			}
			break
		}
		_ = tr
	}
	if workers > len(live)/2 {
		workers = len(live) / 2
	}
	// More accumulators than CPUs is pure overhead: each one is a whole
	// extra tree to build and fold. Clamping is safe because the merged
	// result is bit-identical at any worker count — only wall time
	// changes with the grouping.
	if p := runtime.GOMAXPROCS(0); workers > p {
		workers = p
	}
	if workers <= 1 || len(live) < mergeShardsMin {
		for _, tr := range live {
			MergeTrees(dst, tr)
		}
		return len(live), skipped
	}
	accs := make([]*Tree, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			acc := New()
			for i := w; i < len(live); i += workers {
				MergeTrees(acc, live[i])
			}
			accs[w] = acc
		}(w)
	}
	wg.Wait()
	for _, acc := range accs {
		MergeTrees(dst, acc)
	}
	return len(live), skipped
}

// Size returns the number of nodes in the subtree, including n.
func (n *Node) Size() int {
	total := 1
	for c := n.firstChild; c != nil; c = c.nextSibling {
		total += c.Size()
	}
	return total
}
