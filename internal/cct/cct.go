// Package cct implements the augmented calling context trees of
// Section 7.1 of the paper. A CCT node is identified by what it
// represents — a procedure frame, an instruction site, a dummy
// separator, a variable, or a bin of a variable — and carries NUMA
// metric columns plus per-thread [min,max] address ranges.
//
// The "augmented" part is the paper's mixture of call-path flavours in
// one tree: variable allocation paths, memory access paths, and first
// touch paths, separated by dummy nodes so the viewer can distinguish
// the segments (Section 7.1). The offline analyzer merges per-thread
// trees with sum reductions for counters and the customised [min,max]
// reduction Section 7.2 calls out for address ranges.
package cct

import (
	"fmt"
	"sort"

	"repro/internal/isa"
	"repro/internal/metrics"
)

// NodeKind classifies a CCT node.
type NodeKind uint8

// Node kinds.
const (
	// KindRoot is the tree root.
	KindRoot NodeKind = iota
	// KindFrame is a procedure frame on a call path.
	KindFrame
	// KindSite is a leaf instruction site (load/store/alloc).
	KindSite
	// KindDummy separates segments of different call-path flavours
	// (allocation path vs access path vs first-touch path).
	KindDummy
	// KindVariable anchors data-centric attribution for one variable.
	KindVariable
	// KindBin is one address sub-range (synthetic variable) of a
	// binned variable (Section 5.2).
	KindBin
)

// String names the kind.
func (k NodeKind) String() string {
	switch k {
	case KindRoot:
		return "root"
	case KindFrame:
		return "frame"
	case KindSite:
		return "site"
	case KindDummy:
		return "dummy"
	case KindVariable:
		return "variable"
	case KindBin:
		return "bin"
	default:
		return fmt.Sprintf("NodeKind(%d)", uint8(k))
	}
}

// Key identifies a child within its parent. Only the fields relevant
// for the kind participate (the rest stay zero), so Key is directly
// usable as a map key.
type Key struct {
	Kind  NodeKind
	Fn    isa.FuncID
	Line  int
	Site  isa.SiteID
	Label string
}

// FrameKey returns the key for a procedure frame entered from the
// given call-site line.
func FrameKey(fn isa.FuncID, callLine int) Key {
	return Key{Kind: KindFrame, Fn: fn, Line: callLine}
}

// SiteKey returns the key for an instruction site.
func SiteKey(site isa.SiteID) Key {
	return Key{Kind: KindSite, Site: site}
}

// DummyKey returns the key for a dummy separator node. The canonical
// labels are DummyAlloc, DummyAccess and DummyFirstTouch.
func DummyKey(label string) Key {
	return Key{Kind: KindDummy, Label: label}
}

// VariableKey returns the key for a variable node.
func VariableKey(name string) Key {
	return Key{Kind: KindVariable, Label: name}
}

// BinKey returns the key for bin idx of a variable.
func BinKey(variable string, idx int) Key {
	return Key{Kind: KindBin, Label: variable, Line: idx}
}

// Dummy separator labels (Section 7.1's "dummy nodes ... recorded for
// different purposes").
const (
	DummyAlloc      = "<allocation path>"
	DummyAccess     = "<access path>"
	DummyFirstTouch = "<first touch>"
)

// less orders keys deterministically for stable iteration and merging.
func (k Key) less(o Key) bool {
	if k.Kind != o.Kind {
		return k.Kind < o.Kind
	}
	if k.Fn != o.Fn {
		return k.Fn < o.Fn
	}
	if k.Line != o.Line {
		return k.Line < o.Line
	}
	if k.Site != o.Site {
		return k.Site < o.Site
	}
	return k.Label < o.Label
}

// Range is a [Min, Max] address interval (inclusive bounds).
type Range struct {
	Min, Max uint64
}

// Union returns the smallest range covering both.
func (r Range) Union(o Range) Range {
	out := r
	if o.Min < out.Min {
		out.Min = o.Min
	}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	return out
}

// Extend grows the range to include addr.
func (r Range) Extend(addr uint64) Range {
	out := r
	if addr < out.Min {
		out.Min = addr
	}
	if addr > out.Max {
		out.Max = addr
	}
	return out
}

// Node is one CCT node.
type Node struct {
	Key      Key
	parent   *Node
	children map[Key]*Node
	// metrics holds the exclusive metric columns indexed by
	// metrics.ID. The ID space is small and dense (a handful of core
	// counters plus one per-domain column), so a grow-on-demand slice
	// serves the per-sample AddMetric path without the map hashing
	// the profiler used to pay on every sample.
	metrics []float64
	// ranges holds per-owner [min,max] accessed-address intervals;
	// the owner key is a thread index. These are the values merged
	// with the [min,max] reduction of Section 7.2.
	ranges map[int]Range
}

// Tree is a calling context tree.
type Tree struct {
	root *Node
}

// New creates an empty tree.
func New() *Tree {
	return &Tree{root: &Node{Key: Key{Kind: KindRoot}}}
}

// Root returns the root node.
func (t *Tree) Root() *Node { return t.root }

// Parent returns the node's parent (nil for the root).
func (n *Node) Parent() *Node { return n.parent }

// Child returns the child with the given key, creating it if needed.
func (n *Node) Child(k Key) *Node {
	if n.children == nil {
		n.children = make(map[Key]*Node)
	}
	if c, ok := n.children[k]; ok {
		return c
	}
	c := &Node{Key: k, parent: n}
	n.children[k] = c
	return c
}

// FindChild returns the child with the given key, if present.
func (n *Node) FindChild(k Key) (*Node, bool) {
	c, ok := n.children[k]
	return c, ok
}

// Children returns the node's children in deterministic key order.
func (n *Node) Children() []*Node {
	keys := make([]Key, 0, len(n.children))
	for k := range n.children {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].less(keys[j]) })
	out := make([]*Node, len(keys))
	for i, k := range keys {
		out[i] = n.children[k]
	}
	return out
}

// NumChildren returns the number of children.
func (n *Node) NumChildren() int { return len(n.children) }

// InsertPath walks keys from n, creating nodes as needed, and returns
// the final node.
func (n *Node) InsertPath(keys []Key) *Node {
	cur := n
	for _, k := range keys {
		cur = cur.Child(k)
	}
	return cur
}

// FindPath walks keys from n without creating nodes.
func (n *Node) FindPath(keys []Key) (*Node, bool) {
	cur := n
	for _, k := range keys {
		c, ok := cur.FindChild(k)
		if !ok {
			return nil, false
		}
		cur = c
	}
	return cur, true
}

// AddMetric accumulates delta into the metric column. Negative ids
// are ignored (no metric lives there).
func (n *Node) AddMetric(id metrics.ID, delta float64) {
	i := int(id)
	if i < 0 {
		return
	}
	if i >= len(n.metrics) {
		// Grow to at least the core-column count in one shot so the
		// common Samples/Match/Latency adds on a fresh node allocate
		// once.
		size := i + 1
		if size < int(metrics.NodeBase) {
			size = int(metrics.NodeBase)
		}
		grown := make([]float64, size)
		copy(grown, n.metrics)
		n.metrics = grown
	}
	n.metrics[i] += delta
}

// Metric returns the node's exclusive value for the metric column.
func (n *Node) Metric(id metrics.ID) float64 {
	if i := int(id); i >= 0 && i < len(n.metrics) {
		return n.metrics[i]
	}
	return 0
}

// Metrics returns the node's non-zero exclusive metric columns as a
// map. This is a reporting-path convenience; the hot accumulation path
// stays on the slice.
func (n *Node) Metrics() map[metrics.ID]float64 {
	var out map[metrics.ID]float64
	for i, v := range n.metrics {
		if v == 0 {
			continue
		}
		if out == nil {
			out = make(map[metrics.ID]float64, len(n.metrics)-i)
		}
		out[metrics.ID(i)] = v
	}
	if out == nil {
		out = map[metrics.ID]float64{}
	}
	return out
}

// InclusiveMetric returns the metric summed over the node's subtree —
// HPCToolkit's inclusive column.
func (n *Node) InclusiveMetric(id metrics.ID) float64 {
	total := n.Metric(id)
	for _, c := range n.children {
		total += c.InclusiveMetric(id)
	}
	return total
}

// ExtendRange grows owner's address range on this node to cover addr.
func (n *Node) ExtendRange(owner int, addr uint64) {
	if n.ranges == nil {
		n.ranges = make(map[int]Range)
	}
	if r, ok := n.ranges[owner]; ok {
		n.ranges[owner] = r.Extend(addr)
	} else {
		n.ranges[owner] = Range{Min: addr, Max: addr}
	}
}

// Range returns owner's address range on this node.
func (n *Node) Range(owner int) (Range, bool) {
	r, ok := n.ranges[owner]
	return r, ok
}

// Ranges returns a copy of the per-owner address ranges.
func (n *Node) Ranges() map[int]Range {
	out := make(map[int]Range, len(n.ranges))
	for k, v := range n.ranges {
		out[k] = v
	}
	return out
}

// RangeOwners returns the owners with ranges on this node, sorted.
func (n *Node) RangeOwners() []int {
	out := make([]int, 0, len(n.ranges))
	for o := range n.ranges {
		out = append(out, o)
	}
	sort.Ints(out)
	return out
}

// Visit walks the subtree rooted at n in deterministic preorder.
func (n *Node) Visit(fn func(*Node)) {
	fn(n)
	for _, c := range n.Children() {
		c.Visit(fn)
	}
}

// Path returns the keys from the root (exclusive) down to n.
func (n *Node) Path() []Key {
	var rev []Key
	for cur := n; cur != nil && cur.Key.Kind != KindRoot; cur = cur.parent {
		rev = append(rev, cur.Key)
	}
	out := make([]Key, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// Merge folds src's subtree into dst: metric columns add, address
// ranges union ([min,max] reduction), children merge recursively by
// key. src is left untouched. This is the hpcprof thread-profile merge
// of Section 7.2.
func Merge(dst, src *Node) {
	if len(src.metrics) > 0 {
		if len(dst.metrics) < len(src.metrics) {
			grown := make([]float64, len(src.metrics))
			copy(grown, dst.metrics)
			dst.metrics = grown
		}
		for i, v := range src.metrics {
			dst.metrics[i] += v
		}
	}
	for owner, r := range src.ranges {
		if dst.ranges == nil {
			dst.ranges = make(map[int]Range)
		}
		if cur, ok := dst.ranges[owner]; ok {
			dst.ranges[owner] = cur.Union(r)
		} else {
			dst.ranges[owner] = r
		}
	}
	for k, child := range src.children {
		Merge(dst.Child(k), child)
	}
}

// MergeTrees merges src into dst at the roots.
func MergeTrees(dst, src *Tree) { Merge(dst.root, src.root) }

// MergeForest folds a set of per-thread trees into dst, salvaging what
// it can: nil entries (per-thread profiles lost or unreadable before
// the hpcprof merge) are skipped rather than aborting the whole merge.
// It returns how many trees merged and the indices of those skipped, so
// the caller can report thread coverage instead of pretending the
// merge was complete.
func MergeForest(dst *Tree, trees []*Tree) (merged int, skipped []int) {
	for i, tr := range trees {
		if tr == nil {
			skipped = append(skipped, i)
			continue
		}
		MergeTrees(dst, tr)
		merged++
	}
	return merged, skipped
}

// Size returns the number of nodes in the subtree, including n.
func (n *Node) Size() int {
	total := 1
	for _, c := range n.children {
		total += c.Size()
	}
	return total
}
