package cct

import (
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/metrics"
)

func TestChildGetOrCreate(t *testing.T) {
	tr := New()
	k := FrameKey(1, 10)
	a := tr.Root().Child(k)
	b := tr.Root().Child(k)
	if a != b {
		t.Fatal("Child should return the same node for the same key")
	}
	if a.Parent() != tr.Root() {
		t.Fatal("parent link broken")
	}
	if _, ok := tr.Root().FindChild(FrameKey(2, 10)); ok {
		t.Fatal("FindChild should not create")
	}
}

func TestInsertAndFindPath(t *testing.T) {
	tr := New()
	path := []Key{
		FrameKey(0, 0),
		FrameKey(1, 42),
		DummyKey(DummyAlloc),
		VariableKey("z"),
	}
	leaf := tr.Root().InsertPath(path)
	found, ok := tr.Root().FindPath(path)
	if !ok || found != leaf {
		t.Fatal("FindPath should locate the inserted leaf")
	}
	if got := leaf.Path(); !reflect.DeepEqual(got, path) {
		t.Fatalf("Path() = %+v, want %+v", got, path)
	}
	if _, ok := tr.Root().FindPath([]Key{FrameKey(9, 9)}); ok {
		t.Fatal("FindPath of absent path should fail")
	}
}

func TestMetricsExclusiveAndInclusive(t *testing.T) {
	tr := New()
	a := tr.Root().Child(FrameKey(0, 0))
	b := a.Child(FrameKey(1, 5))
	c := a.Child(FrameKey(2, 9))
	a.AddMetric(metrics.Mismatch, 1)
	b.AddMetric(metrics.Mismatch, 2)
	c.AddMetric(metrics.Mismatch, 3)
	if got := a.Metric(metrics.Mismatch); got != 1 {
		t.Errorf("exclusive = %v, want 1", got)
	}
	if got := a.InclusiveMetric(metrics.Mismatch); got != 6 {
		t.Errorf("inclusive = %v, want 6", got)
	}
	if got := tr.Root().InclusiveMetric(metrics.Mismatch); got != 6 {
		t.Errorf("root inclusive = %v, want 6", got)
	}
}

func TestRanges(t *testing.T) {
	tr := New()
	n := tr.Root().Child(VariableKey("z"))
	n.ExtendRange(3, 100)
	n.ExtendRange(3, 50)
	n.ExtendRange(3, 200)
	n.ExtendRange(7, 1000)
	r, ok := n.Range(3)
	if !ok || r.Min != 50 || r.Max != 200 {
		t.Fatalf("Range(3) = %+v, %v", r, ok)
	}
	if owners := n.RangeOwners(); !reflect.DeepEqual(owners, []int{3, 7}) {
		t.Fatalf("owners = %v", owners)
	}
	if _, ok := n.Range(99); ok {
		t.Fatal("absent owner should have no range")
	}
}

func TestChildrenDeterministicOrder(t *testing.T) {
	tr := New()
	tr.Root().Child(FrameKey(2, 0))
	tr.Root().Child(FrameKey(0, 0))
	tr.Root().Child(FrameKey(1, 0))
	tr.Root().Child(DummyKey("x"))
	var kinds []NodeKind
	var fns []int
	for _, c := range tr.Root().Children() {
		kinds = append(kinds, c.Key.Kind)
		if c.Key.Kind == KindFrame {
			fns = append(fns, int(c.Key.Fn))
		}
	}
	if !reflect.DeepEqual(fns, []int{0, 1, 2}) {
		t.Fatalf("frame order = %v", fns)
	}
	// KindFrame (1) sorts before KindDummy (3).
	if kinds[len(kinds)-1] != KindDummy {
		t.Fatalf("kind order = %v", kinds)
	}
}

func TestMergeSumsMetricsAndUnionsRanges(t *testing.T) {
	t1, t2 := New(), New()
	path := []Key{FrameKey(0, 0), VariableKey("z")}

	n1 := t1.Root().InsertPath(path)
	n1.AddMetric(metrics.Match, 5)
	n1.ExtendRange(0, 100)
	n1.ExtendRange(0, 300)

	n2 := t2.Root().InsertPath(path)
	n2.AddMetric(metrics.Match, 7)
	n2.AddMetric(metrics.Mismatch, 2)
	n2.ExtendRange(0, 50)
	n2.ExtendRange(1, 999)

	MergeTrees(t1, t2)
	merged, _ := t1.Root().FindPath(path)
	if got := merged.Metric(metrics.Match); got != 12 {
		t.Errorf("merged Match = %v, want 12", got)
	}
	if got := merged.Metric(metrics.Mismatch); got != 2 {
		t.Errorf("merged Mismatch = %v, want 2", got)
	}
	r, _ := merged.Range(0)
	if r.Min != 50 || r.Max != 300 {
		t.Errorf("merged range(0) = %+v, want [50,300]", r)
	}
	r1, ok := merged.Range(1)
	if !ok || r1.Min != 999 || r1.Max != 999 {
		t.Errorf("merged range(1) = %+v, %v", r1, ok)
	}
}

func TestMergeCreatesMissingSubtrees(t *testing.T) {
	t1, t2 := New(), New()
	t2.Root().InsertPath([]Key{FrameKey(5, 1), SiteKey(9)}).AddMetric(metrics.Samples, 3)
	MergeTrees(t1, t2)
	n, ok := t1.Root().FindPath([]Key{FrameKey(5, 1), SiteKey(9)})
	if !ok || n.Metric(metrics.Samples) != 3 {
		t.Fatal("merge should create missing subtree with metrics")
	}
	// src unchanged
	if t2.Root().Size() != 3 {
		t.Fatalf("src size = %d, want 3", t2.Root().Size())
	}
}

func TestVisitPreorder(t *testing.T) {
	tr := New()
	tr.Root().InsertPath([]Key{FrameKey(0, 0), FrameKey(1, 1)})
	tr.Root().InsertPath([]Key{FrameKey(0, 0), FrameKey(2, 2)})
	var count int
	var rootFirst bool
	tr.Root().Visit(func(n *Node) {
		if count == 0 {
			rootFirst = n.Key.Kind == KindRoot
		}
		count++
	})
	if count != 4 || !rootFirst {
		t.Fatalf("visit count = %d, rootFirst = %v", count, rootFirst)
	}
	if tr.Root().Size() != 4 {
		t.Fatalf("Size = %d", tr.Root().Size())
	}
}

func TestKeyHelpers(t *testing.T) {
	if k := BinKey("z", 3); k.Kind != KindBin || k.Label != "z" || k.Line != 3 {
		t.Errorf("BinKey = %+v", k)
	}
	if k := SiteKey(7); k.Kind != KindSite || k.Site != 7 {
		t.Errorf("SiteKey = %+v", k)
	}
	if KindRoot.String() != "root" || KindBin.String() != "bin" {
		t.Error("kind names wrong")
	}
}

// Property: merging is "additive" — merging a tree into an empty tree
// twice doubles every metric.
func TestQuickMergeAdditive(t *testing.T) {
	f := func(vals []uint8) bool {
		src := New()
		for i, v := range vals {
			n := src.Root().InsertPath([]Key{FrameKey(0, 0), SiteKey(0).withLine(i)})
			n.AddMetric(metrics.Samples, float64(v))
		}
		dst := New()
		MergeTrees(dst, src)
		MergeTrees(dst, src)
		ok := true
		src.Root().Visit(func(n *Node) {
			d, found := dst.Root().FindPath(n.Path())
			if n.Key.Kind == KindRoot {
				d, found = dst.Root(), true
			}
			if !found || d.Metric(metrics.Samples) != 2*n.Metric(metrics.Samples) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// withLine disambiguates site keys in the property test.
func (k Key) withLine(l int) Key {
	k.Line = l
	return k
}

// Property: Range.Union is commutative and idempotent.
func TestQuickRangeUnion(t *testing.T) {
	f := func(a0, a1, b0, b1 uint32) bool {
		a := Range{Min: uint64(min(a0, a1)), Max: uint64(max(a0, a1))}
		b := Range{Min: uint64(min(b0, b1)), Max: uint64(max(b0, b1))}
		if a.Union(b) != b.Union(a) {
			return false
		}
		if a.Union(a) != a {
			return false
		}
		u := a.Union(b)
		return u.Min <= a.Min && u.Min <= b.Min && u.Max >= a.Max && u.Max >= b.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func min(a, b uint32) uint32 {
	if a < b {
		return a
	}
	return b
}

func max(a, b uint32) uint32 {
	if a > b {
		return a
	}
	return b
}
