package topology

import "repro/internal/units"

// The five machines from Table 1 of the paper. The paper evaluated
// HPCToolkit-NUMA on one machine per address-sampling mechanism; we
// reconstruct each from the configurations described in Sections 7-8.

// MagnyCours48 models the four-socket, 48-core AMD Magny-Cours system
// used for IBS and Soft-IBS experiments: each 12-core package contains
// two 6-core dies, each die its own NUMA domain, for 8 domains total
// and 128 GiB of memory evenly divided among them (Section 8).
func MagnyCours48() *Machine {
	return New(Config{
		Name:            "amd-magny-cours-48",
		ClockGHz:        2.1,
		NumDomains:      8,
		CPUsPerDomain:   6,
		MemoryPerDomain: 16 * units.GiB,
		RemoteDistance:  16, // one/two HyperTransport hops, averaged
	})
}

// Power7x128 models the four-socket, eight-core POWER7 system used for
// MRK experiments: 128 SMT hardware threads and 64 GiB of memory, with
// each socket treated as one NUMA domain (Section 8).
func Power7x128() *Machine {
	return New(Config{
		Name:            "ibm-power7-128",
		ClockGHz:        3.8,
		NumDomains:      4,
		CPUsPerDomain:   32, // 8 cores x SMT4
		MemoryPerDomain: 16 * units.GiB,
		// POWER7's off-chip fabric has a comparatively high remote
		// penalty; this drives the paper's observation that
		// interleaving *hurts* LULESH on POWER7 (Section 8.1).
		RemoteDistance: 24,
	})
}

// Harpertown8 models the 8-thread Intel Xeon Harpertown system used
// for PEBS experiments. Harpertown is a front-side-bus part; we model
// the two-socket system as two domains to exercise the tool on a
// shallow NUMA topology.
func Harpertown8() *Machine {
	return New(Config{
		Name:            "intel-harpertown-8",
		ClockGHz:        2.8,
		NumDomains:      2,
		CPUsPerDomain:   4,
		MemoryPerDomain: 8 * units.GiB,
		RemoteDistance:  14,
	})
}

// Itanium2x8 models the 8-thread Intel Itanium 2 system used for DEAR
// experiments.
func Itanium2x8() *Machine {
	return New(Config{
		Name:            "intel-itanium2-8",
		ClockGHz:        1.6,
		NumDomains:      2,
		CPUsPerDomain:   4,
		MemoryPerDomain: 8 * units.GiB,
		RemoteDistance:  17,
	})
}

// IvyBridge8 models the 8-thread Intel Ivy Bridge system used for
// PEBS-LL experiments.
func IvyBridge8() *Machine {
	return New(Config{
		Name:            "intel-ivybridge-8",
		ClockGHz:        3.0,
		NumDomains:      2,
		CPUsPerDomain:   4,
		MemoryPerDomain: 16 * units.GiB,
		RemoteDistance:  21,
	})
}

// Presets returns all five Table-1 machines keyed by name.
func Presets() map[string]*Machine {
	ms := []*Machine{
		MagnyCours48(), Power7x128(), Harpertown8(), Itanium2x8(), IvyBridge8(),
	}
	out := make(map[string]*Machine, len(ms))
	for _, m := range ms {
		out[m.Name] = m
	}
	return out
}
