// Package topology describes the shape of a simulated NUMA machine:
// how many NUMA domains it has, which CPUs belong to each domain, how
// much memory each domain owns, and the relative distances between
// domains.
//
// A "NUMA domain", following the paper's definition, is a set of CPU
// cores together with the cache/memory they can all access with uniform
// latency. Everything above this package (memory system, caches,
// virtual memory, the profiler itself) consumes a *Machine.
//
// # Concurrency
//
// A Machine is immutable once New (or a preset constructor) returns:
// nothing in this package or its consumers writes to it afterwards.
// That makes a single Machine safe to share across every concurrent
// cell of a scheduled sweep (internal/sched), which is precisely how
// the experiment drivers use the presets — one MagnyCours48 handed to
// all thirty Table 2 cells at once.
package topology

import (
	"fmt"

	"repro/internal/units"
)

// CPUID identifies a logical CPU (a hardware thread) on the machine.
type CPUID int

// DomainID identifies a NUMA domain.
type DomainID int

// NoDomain is returned by queries on addresses or CPUs that are not
// bound to any domain.
const NoDomain DomainID = -1

// Domain is one NUMA domain: a set of CPUs plus locally attached memory.
type Domain struct {
	ID     DomainID
	CPUs   []CPUID
	Memory units.Bytes
}

// Machine is an immutable description of a NUMA machine.
type Machine struct {
	// Name identifies the machine model, e.g. "amd-magny-cours-48".
	Name string
	// ClockGHz is the core clock used to convert cycles to seconds.
	ClockGHz float64

	domains     []Domain
	cpuToDomain []DomainID
	// distance[i][j] follows the Linux SLIT convention: 10 means
	// local, larger values mean proportionally higher latency.
	distance [][]int
}

// Config describes a machine to be built by New.
type Config struct {
	Name            string
	ClockGHz        float64
	NumDomains      int
	CPUsPerDomain   int
	MemoryPerDomain units.Bytes
	// RemoteDistance is the SLIT distance between any two distinct
	// domains (local distance is always 10). If zero, 16 is used,
	// a typical one-hop HyperTransport/QPI figure.
	RemoteDistance int
	// Distances, if non-nil, is a full SLIT matrix overriding
	// RemoteDistance — for fabrics where some domain pairs are one
	// hop apart and others two (e.g. the Magny-Cours HyperTransport
	// mesh). Must be NumDomains x NumDomains, symmetric, with 10 on
	// the diagonal and values > 10 elsewhere.
	Distances [][]int
}

// New builds a symmetric machine from cfg. It panics on a non-positive
// domain or CPU count, since machine descriptions are static data fixed
// at program start.
func New(cfg Config) *Machine {
	if cfg.NumDomains <= 0 || cfg.CPUsPerDomain <= 0 {
		panic(fmt.Sprintf("topology: invalid config %+v", cfg))
	}
	if cfg.RemoteDistance == 0 {
		cfg.RemoteDistance = 16
	}
	if cfg.ClockGHz == 0 {
		cfg.ClockGHz = 2.0
	}
	m := &Machine{
		Name:     cfg.Name,
		ClockGHz: cfg.ClockGHz,
	}
	next := CPUID(0)
	for d := 0; d < cfg.NumDomains; d++ {
		dom := Domain{ID: DomainID(d), Memory: cfg.MemoryPerDomain}
		for c := 0; c < cfg.CPUsPerDomain; c++ {
			dom.CPUs = append(dom.CPUs, next)
			m.cpuToDomain = append(m.cpuToDomain, DomainID(d))
			next++
		}
		m.domains = append(m.domains, dom)
	}
	m.distance = make([][]int, cfg.NumDomains)
	for i := range m.distance {
		m.distance[i] = make([]int, cfg.NumDomains)
		for j := range m.distance[i] {
			if i == j {
				m.distance[i][j] = 10
			} else {
				m.distance[i][j] = cfg.RemoteDistance
			}
		}
	}
	if cfg.Distances != nil {
		if err := validateSLIT(cfg.Distances, cfg.NumDomains); err != nil {
			panic("topology: " + err.Error())
		}
		for i := range m.distance {
			copy(m.distance[i], cfg.Distances[i])
		}
	}
	return m
}

// validateSLIT checks a distance matrix: square, symmetric, 10 on the
// diagonal, > 10 off it.
func validateSLIT(d [][]int, n int) error {
	if len(d) != n {
		return fmt.Errorf("distance matrix has %d rows, want %d", len(d), n)
	}
	for i := range d {
		if len(d[i]) != n {
			return fmt.Errorf("distance row %d has %d entries, want %d", i, len(d[i]), n)
		}
		for j := range d[i] {
			switch {
			case i == j && d[i][j] != 10:
				return fmt.Errorf("diagonal distance [%d][%d] = %d, want 10", i, j, d[i][j])
			case i != j && d[i][j] <= 10:
				return fmt.Errorf("remote distance [%d][%d] = %d, want > 10", i, j, d[i][j])
			case d[i][j] != d[j][i]:
				return fmt.Errorf("distance not symmetric at [%d][%d]", i, j)
			}
		}
	}
	return nil
}

// Uniform reports whether all remote distances are equal (the Config
// round trip through Config() is exact only for uniform machines;
// non-uniform machines serialise their full matrix).
func (m *Machine) Uniform() bool {
	n := m.NumDomains()
	if n <= 1 {
		return true
	}
	d := m.distance[0][1]
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && m.distance[i][j] != d {
				return false
			}
		}
	}
	return true
}

// Distances returns a copy of the full SLIT matrix.
func (m *Machine) Distances() [][]int {
	out := make([][]int, len(m.distance))
	for i := range m.distance {
		out[i] = append([]int(nil), m.distance[i]...)
	}
	return out
}

// NumCPUs returns the number of logical CPUs.
func (m *Machine) NumCPUs() int { return len(m.cpuToDomain) }

// NumDomains returns the number of NUMA domains.
func (m *Machine) NumDomains() int { return len(m.domains) }

// Domains returns the machine's domains. The slice must not be mutated.
func (m *Machine) Domains() []Domain { return m.domains }

// Domain returns the domain with the given id.
func (m *Machine) Domain(d DomainID) Domain { return m.domains[d] }

// DomainOfCPU returns the NUMA domain that owns the CPU, or NoDomain if
// the CPU id is out of range. This mirrors libnuma's numa_node_of_cpu.
func (m *Machine) DomainOfCPU(c CPUID) DomainID {
	if c < 0 || int(c) >= len(m.cpuToDomain) {
		return NoDomain
	}
	return m.cpuToDomain[c]
}

// CPUsOfDomain returns the CPUs in domain d. The slice must not be
// mutated.
func (m *Machine) CPUsOfDomain(d DomainID) []CPUID {
	if d < 0 || int(d) >= len(m.domains) {
		return nil
	}
	return m.domains[d].CPUs
}

// Distance returns the SLIT distance between two domains: 10 for a
// domain to itself, larger for remote domains.
func (m *Machine) Distance(a, b DomainID) int {
	return m.distance[a][b]
}

// IsLocal reports whether CPU c belongs to domain d.
func (m *Machine) IsLocal(c CPUID, d DomainID) bool {
	return m.DomainOfCPU(c) == d
}

// Config reconstructs the Config that built this machine, for
// serialisation round trips. (Machines are always built symmetric.)
func (m *Machine) Config() Config {
	cfg := Config{
		Name:       m.Name,
		ClockGHz:   m.ClockGHz,
		NumDomains: m.NumDomains(),
	}
	if len(m.domains) > 0 {
		cfg.CPUsPerDomain = len(m.domains[0].CPUs)
		cfg.MemoryPerDomain = m.domains[0].Memory
	}
	if m.NumDomains() > 1 {
		cfg.RemoteDistance = m.distance[0][1]
		if !m.Uniform() {
			cfg.Distances = m.Distances()
		}
	}
	return cfg
}

// TotalMemory returns the sum of all domains' memory.
func (m *Machine) TotalMemory() units.Bytes {
	var t units.Bytes
	for _, d := range m.domains {
		t += d.Memory
	}
	return t
}

// String returns a one-line summary, e.g.
// "amd-magny-cours-48: 8 domains x 6 CPUs, 16GiB/domain".
func (m *Machine) String() string {
	if len(m.domains) == 0 {
		return m.Name + ": empty"
	}
	return fmt.Sprintf("%s: %d domains x %d CPUs, %s/domain",
		m.Name, m.NumDomains(), len(m.domains[0].CPUs), m.domains[0].Memory)
}
