package topology

import (
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestNewSymmetricMachine(t *testing.T) {
	m := New(Config{
		Name:            "test",
		NumDomains:      4,
		CPUsPerDomain:   3,
		MemoryPerDomain: 2 * units.GiB,
	})
	if got := m.NumCPUs(); got != 12 {
		t.Fatalf("NumCPUs = %d, want 12", got)
	}
	if got := m.NumDomains(); got != 4 {
		t.Fatalf("NumDomains = %d, want 4", got)
	}
	if got := m.TotalMemory(); got != 8*units.GiB {
		t.Fatalf("TotalMemory = %v, want 8GiB", got)
	}
}

func TestDomainOfCPUCoversAllCPUs(t *testing.T) {
	m := New(Config{Name: "t", NumDomains: 3, CPUsPerDomain: 5, MemoryPerDomain: units.GiB})
	counts := make(map[DomainID]int)
	for c := 0; c < m.NumCPUs(); c++ {
		d := m.DomainOfCPU(CPUID(c))
		if d == NoDomain {
			t.Fatalf("CPU %d has no domain", c)
		}
		counts[d]++
	}
	for d, n := range counts {
		if n != 5 {
			t.Errorf("domain %d has %d CPUs, want 5", d, n)
		}
	}
}

func TestDomainOfCPUOutOfRange(t *testing.T) {
	m := New(Config{Name: "t", NumDomains: 2, CPUsPerDomain: 2, MemoryPerDomain: units.GiB})
	if d := m.DomainOfCPU(-1); d != NoDomain {
		t.Errorf("DomainOfCPU(-1) = %d, want NoDomain", d)
	}
	if d := m.DomainOfCPU(99); d != NoDomain {
		t.Errorf("DomainOfCPU(99) = %d, want NoDomain", d)
	}
}

func TestCPUsOfDomainRoundTrip(t *testing.T) {
	m := MagnyCours48()
	for _, dom := range m.Domains() {
		for _, c := range m.CPUsOfDomain(dom.ID) {
			if got := m.DomainOfCPU(c); got != dom.ID {
				t.Errorf("CPU %d: DomainOfCPU = %d, want %d", c, got, dom.ID)
			}
		}
	}
	if m.CPUsOfDomain(NoDomain) != nil {
		t.Error("CPUsOfDomain(NoDomain) should be nil")
	}
	if m.CPUsOfDomain(DomainID(m.NumDomains())) != nil {
		t.Error("CPUsOfDomain(out of range) should be nil")
	}
}

func TestDistanceProperties(t *testing.T) {
	for name, m := range Presets() {
		n := m.NumDomains()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				d := m.Distance(DomainID(i), DomainID(j))
				if i == j && d != 10 {
					t.Errorf("%s: Distance(%d,%d) = %d, want 10", name, i, j, d)
				}
				if i != j && d <= 10 {
					t.Errorf("%s: remote Distance(%d,%d) = %d, want > 10", name, i, j, d)
				}
				if back := m.Distance(DomainID(j), DomainID(i)); back != d {
					t.Errorf("%s: distance not symmetric: (%d,%d)=%d (%d,%d)=%d", name, i, j, d, j, i, back)
				}
			}
		}
	}
}

func TestPresetsMatchPaperScale(t *testing.T) {
	cases := []struct {
		m       *Machine
		cpus    int
		domains int
		mem     units.Bytes
	}{
		{MagnyCours48(), 48, 8, 128 * units.GiB},
		{Power7x128(), 128, 4, 64 * units.GiB},
		{Harpertown8(), 8, 2, 16 * units.GiB},
		{Itanium2x8(), 8, 2, 16 * units.GiB},
		{IvyBridge8(), 8, 2, 32 * units.GiB},
	}
	for _, c := range cases {
		if c.m.NumCPUs() != c.cpus {
			t.Errorf("%s: NumCPUs = %d, want %d", c.m.Name, c.m.NumCPUs(), c.cpus)
		}
		if c.m.NumDomains() != c.domains {
			t.Errorf("%s: NumDomains = %d, want %d", c.m.Name, c.m.NumDomains(), c.domains)
		}
		if c.m.TotalMemory() != c.mem {
			t.Errorf("%s: TotalMemory = %v, want %v", c.m.Name, c.m.TotalMemory(), c.mem)
		}
	}
}

func TestIsLocal(t *testing.T) {
	m := MagnyCours48()
	if !m.IsLocal(0, 0) {
		t.Error("CPU 0 should be local to domain 0")
	}
	if m.IsLocal(0, 7) {
		t.Error("CPU 0 should not be local to domain 7")
	}
}

// Property: for any generated small machine, every CPU id in
// [0, NumCPUs) maps to exactly one valid domain and appears in that
// domain's CPU list.
func TestQuickCPUDomainConsistency(t *testing.T) {
	f := func(nd, nc uint8) bool {
		d := int(nd%6) + 1
		c := int(nc%8) + 1
		m := New(Config{Name: "q", NumDomains: d, CPUsPerDomain: c, MemoryPerDomain: units.GiB})
		for cpu := 0; cpu < m.NumCPUs(); cpu++ {
			dom := m.DomainOfCPU(CPUID(cpu))
			if dom < 0 || int(dom) >= d {
				return false
			}
			found := false
			for _, cc := range m.CPUsOfDomain(dom) {
				if cc == CPUID(cpu) {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return m.NumCPUs() == d*c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStringFormats(t *testing.T) {
	m := MagnyCours48()
	s := m.String()
	if s == "" {
		t.Fatal("empty String()")
	}
	var c units.Cycles = 42
	if c.String() != "42 cyc" {
		t.Errorf("Cycles.String = %q", c.String())
	}
}

func TestCustomDistanceMatrix(t *testing.T) {
	// A 4-domain ring: neighbours one hop (16), opposite corner two (22).
	d := [][]int{
		{10, 16, 22, 16},
		{16, 10, 16, 22},
		{22, 16, 10, 16},
		{16, 22, 16, 10},
	}
	m := New(Config{
		Name: "ring", NumDomains: 4, CPUsPerDomain: 2,
		MemoryPerDomain: units.GiB, Distances: d,
	})
	if m.Distance(0, 2) != 22 || m.Distance(0, 1) != 16 {
		t.Fatalf("distances not applied: %d, %d", m.Distance(0, 2), m.Distance(0, 1))
	}
	if m.Uniform() {
		t.Fatal("ring should be non-uniform")
	}
	// Config round trip carries the matrix.
	back := New(m.Config())
	if back.Distance(0, 2) != 22 {
		t.Fatal("Config round trip lost the matrix")
	}
	// Uniform machines stay uniform.
	if !MagnyCours48().Uniform() {
		t.Fatal("preset should be uniform")
	}
}

func TestBadDistanceMatrixPanics(t *testing.T) {
	cases := [][][]int{
		{{10, 16}, {16, 10}, {16, 16}},         // wrong rows
		{{10, 16, 16}, {16, 10}, {16, 16, 10}}, // ragged
		{{12, 16}, {16, 10}},                   // bad diagonal
		{{10, 9}, {9, 10}},                     // remote <= 10
		{{10, 16}, {17, 10}},                   // asymmetric
	}
	for i, d := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			New(Config{Name: "bad", NumDomains: len(d[0]), CPUsPerDomain: 1,
				MemoryPerDomain: units.GiB, Distances: d})
		}()
	}
}
