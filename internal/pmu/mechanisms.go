package pmu

import (
	"repro/internal/proc"
	"repro/internal/units"
)

// periodCounter tracks per-thread event counts and reports period
// crossings. Real PMUs count per hardware thread; the slice is indexed
// by thread id and grown on demand.
//
// The next sampling threshold is jittered around the nominal period
// with a per-thread deterministic LCG, as real PMU drivers randomize
// periods: without jitter, deterministic sampling aliases with loop
// periodicity and systematically misses (or over-samples) instructions
// at fixed phases — violating the paper's requirement that "memory
// accesses are uniformly sampled" (Section 3).
type periodCounter struct {
	counts []ctrState
}

type ctrState struct {
	count uint64
	next  uint64
	rng   uint64
}

// jitterNext draws the next threshold uniformly from
// [3/4 period, 5/4 period).
func jitterNext(period uint64, rng *uint64) uint64 {
	*rng = *rng*6364136223846793005 + 1442695040888963407
	span := period / 2
	if span == 0 {
		return period
	}
	return period - period/4 + (*rng>>33)%span
}

// state returns thread tid's counter state, growing the table on
// demand. Growth seeds each new slot from its index, so state content
// is a pure function of tid — it does not matter when a slot is first
// materialized. Batch observers hoist this lookup out of their event
// loops. period must be non-zero.
func (p *periodCounter) state(tid int, period uint64) *ctrState {
	for tid >= len(p.counts) {
		s := ctrState{rng: uint64(len(p.counts))*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d}
		s.next = jitterNext(period, &s.rng)
		p.counts = append(p.counts, s)
	}
	return &p.counts[tid]
}

// add credits n events to thread tid and returns how many times the
// sampling threshold was crossed (i.e., how many samples fire).
func (p *periodCounter) add(tid int, n, period uint64) int {
	if period == 0 {
		return 0
	}
	st := p.state(tid, period)
	st.count += n
	fired := 0
	for st.count >= st.next {
		st.count -= st.next
		st.next = jitterNext(period, &st.rng)
		fired++
	}
	return fired
}

// tick credits one event to a hoisted counter state and reports whether
// a sample fires — the inlined batch-loop equivalent of add(tid, 1, p)
// (multiple threshold crossings from one event still collapse to one
// sample, exactly like AccessOutcome.Sampled).
func (st *ctrState) tick(period uint64) bool {
	st.count++
	if st.count < st.next {
		return false
	}
	for st.count >= st.next {
		st.count -= st.next
		st.next = jitterNext(period, &st.rng)
	}
	return true
}

// IBS is AMD instruction-based sampling: the PMU tags every Nth
// instruction of *any* kind and reports its IP, effective address (for
// memory ops), data source, and latency. Because non-memory samples
// must be filtered in software, IBS's usable-sample cost is high
// relative to event-based mechanisms (Section 10), but it is the
// mechanism that makes the Equation 2 lpi estimator possible: sampled
// instructions represent all instructions.
type IBS struct {
	period uint64
	ctr    periodCounter
}

// DefaultIBSPeriod is the scaled operating period for simulated
// workloads; the paper ran IBS at one sample per 64K instructions.
const DefaultIBSPeriod = 2048

// NewIBS creates an IBS instance. period 0 selects the scaled default.
func NewIBS(period uint64) *IBS {
	if period == 0 {
		period = DefaultIBSPeriod
	}
	return &IBS{period: period}
}

// Name implements Mechanism.
func (*IBS) Name() string { return "IBS" }

// Caps implements Mechanism.
func (*IBS) Caps() Capability {
	return Capability{
		SamplesAllInstructions: true,
		MeasuresLatency:        true,
		PreciseIP:              true,
	}
}

// PaperConfig implements Mechanism (Table 1).
func (*IBS) PaperConfig() Config { return Config{Event: "IBS op", Period: 64 * 1024} }

// Period implements Mechanism.
func (m *IBS) Period() uint64 { return m.period }

// ObserveAccess implements Mechanism.
func (m *IBS) ObserveAccess(ev *proc.AccessEvent) AccessOutcome {
	fired := m.ctr.add(ev.Thread.ID, 1, m.period)
	return AccessOutcome{Sampled: fired > 0}
}

// ObserveAccessBatch implements BatchMechanism: every access counts.
func (m *IBS) ObserveAccessBatch(evs []proc.AccessEvent, fired []int) ([]int, units.Cycles) {
	if m.period == 0 || len(evs) == 0 {
		return fired, 0
	}
	st := m.ctr.state(evs[0].Thread.ID, m.period)
	for i := range evs {
		if st.tick(m.period) {
			fired = append(fired, i)
		}
	}
	return fired, 0
}

// ObserveCompute implements Mechanism.
func (m *IBS) ObserveCompute(t *proc.Thread, n uint64) (int, units.Cycles) {
	return m.ctr.add(t.ID, n, m.period), 0
}

// MRK is IBM POWER marked-event sampling: the hardware marks an
// instruction stream sample and reports it only if it triggers the
// programmed event — here PM_MRK_FROM_L3MISS, an access satisfied
// beyond the local L3 (Section 8.4). MRK cannot measure latency in our
// capability model (the paper derives lpi only from IBS and PEBS-LL),
// but it highlights problematic memory instructions at very low
// overhead because nothing else is ever sampled.
type MRK struct {
	period uint64
	ctr    periodCounter
}

// DefaultMRKPeriod is the scaled operating period. The paper programs
// period 1 but notes the hardware delivers fewer than 100 samples/s per
// thread; a period over marked events models that throttling.
const DefaultMRKPeriod = 32

// NewMRK creates an MRK instance. period 0 selects the scaled default.
func NewMRK(period uint64) *MRK {
	if period == 0 {
		period = DefaultMRKPeriod
	}
	return &MRK{period: period}
}

// Name implements Mechanism.
func (*MRK) Name() string { return "MRK" }

// Caps implements Mechanism.
func (*MRK) Caps() Capability {
	return Capability{
		EventBased: true,
		PreciseIP:  true,
		NUMAEvents: true,
	}
}

// PaperConfig implements Mechanism (Table 1).
func (*MRK) PaperConfig() Config { return Config{Event: "PM_MRK_FROM_L3MISS", Period: 1} }

// Period implements Mechanism.
func (m *MRK) Period() uint64 { return m.period }

// ObserveAccess implements Mechanism.
func (m *MRK) ObserveAccess(ev *proc.AccessEvent) AccessOutcome {
	if !ev.Source.BeyondLocalL3() {
		return AccessOutcome{}
	}
	fired := m.ctr.add(ev.Thread.ID, 1, m.period)
	return AccessOutcome{Sampled: fired > 0}
}

// ObserveAccessBatch implements BatchMechanism: only accesses satisfied
// beyond the local L3 count.
func (m *MRK) ObserveAccessBatch(evs []proc.AccessEvent, fired []int) ([]int, units.Cycles) {
	if m.period == 0 || len(evs) == 0 {
		return fired, 0
	}
	st := m.ctr.state(evs[0].Thread.ID, m.period)
	for i := range evs {
		if !evs[i].Source.BeyondLocalL3() {
			continue
		}
		if st.tick(m.period) {
			fired = append(fired, i)
		}
	}
	return fired, 0
}

// ObserveCompute implements Mechanism: MRK never samples non-memory
// instructions.
func (m *MRK) ObserveCompute(*proc.Thread, uint64) (int, units.Cycles) { return 0, 0 }

// PEBS is Intel precise event-based sampling programmed on
// INST_RETIRED:ANY_P: like IBS it samples all instruction kinds, but
// the captured IP is off by one (the *next* instruction), and hpcrun
// compensates online with binary analysis — the reason PEBS shows the
// second-highest overhead in Table 2 (the paper's footnote 3 suggests
// doing the fix postmortem instead). PEBS does not measure latency.
type PEBS struct {
	period uint64
	ctr    periodCounter
}

// DefaultPEBSPeriod is the scaled operating period; the paper used
// 1,000,000 instructions.
const DefaultPEBSPeriod = 2048

// NewPEBS creates a PEBS instance. period 0 selects the scaled default.
func NewPEBS(period uint64) *PEBS {
	if period == 0 {
		period = DefaultPEBSPeriod
	}
	return &PEBS{period: period}
}

// Name implements Mechanism.
func (*PEBS) Name() string { return "PEBS" }

// Caps implements Mechanism.
func (*PEBS) Caps() Capability {
	return Capability{
		SamplesAllInstructions: true,
		EventBased:             true,
		PreciseIP:              false, // off-by-one
		NUMAEvents:             true,
	}
}

// PaperConfig implements Mechanism (Table 1).
func (*PEBS) PaperConfig() Config { return Config{Event: "INST_RETIRED:ANY_P", Period: 1000000} }

// Period implements Mechanism.
func (m *PEBS) Period() uint64 { return m.period }

// ObserveAccess implements Mechanism.
func (m *PEBS) ObserveAccess(ev *proc.AccessEvent) AccessOutcome {
	fired := m.ctr.add(ev.Thread.ID, 1, m.period)
	return AccessOutcome{Sampled: fired > 0}
}

// ObserveAccessBatch implements BatchMechanism: every access counts.
func (m *PEBS) ObserveAccessBatch(evs []proc.AccessEvent, fired []int) ([]int, units.Cycles) {
	if m.period == 0 || len(evs) == 0 {
		return fired, 0
	}
	st := m.ctr.state(evs[0].Thread.ID, m.period)
	for i := range evs {
		if st.tick(m.period) {
			fired = append(fired, i)
		}
	}
	return fired, 0
}

// ObserveCompute implements Mechanism.
func (m *PEBS) ObserveCompute(t *proc.Thread, n uint64) (int, units.Cycles) {
	return m.ctr.add(t.ID, n, m.period), 0
}

// DEARLatencyThreshold is the qualifying latency for DEAR samples: the
// paper's DATA_EAR_CACHE_LAT4 event captures loads taking at least 4
// cycles; with our 4-cycle L1, that means anything missing L1.
const DEARLatencyThreshold units.Cycles = 8

// DEAR is Itanium data-event-address-register sampling: it samples
// loads whose latency exceeds a threshold and records their addresses.
// DEAR has no NUMA-specific events and, in our capability model, does
// not deliver usable latency for lpi (Section 10).
type DEAR struct {
	period uint64
	ctr    periodCounter
}

// DefaultDEARPeriod is the scaled operating period; the paper used
// 20,000 events.
const DefaultDEARPeriod = 128

// NewDEAR creates a DEAR instance. period 0 selects the scaled default.
func NewDEAR(period uint64) *DEAR {
	if period == 0 {
		period = DefaultDEARPeriod
	}
	return &DEAR{period: period}
}

// Name implements Mechanism.
func (*DEAR) Name() string { return "DEAR" }

// Caps implements Mechanism.
func (*DEAR) Caps() Capability {
	return Capability{
		EventBased: true,
		PreciseIP:  true,
	}
}

// PaperConfig implements Mechanism (Table 1).
func (*DEAR) PaperConfig() Config { return Config{Event: "DATA_EAR_CACHE_LAT4", Period: 20000} }

// Period implements Mechanism.
func (m *DEAR) Period() uint64 { return m.period }

// ObserveAccess implements Mechanism: loads above the latency
// threshold qualify.
func (m *DEAR) ObserveAccess(ev *proc.AccessEvent) AccessOutcome {
	if ev.IsStore || ev.Latency < DEARLatencyThreshold {
		return AccessOutcome{}
	}
	fired := m.ctr.add(ev.Thread.ID, 1, m.period)
	return AccessOutcome{Sampled: fired > 0}
}

// ObserveAccessBatch implements BatchMechanism: loads above the latency
// threshold count.
func (m *DEAR) ObserveAccessBatch(evs []proc.AccessEvent, fired []int) ([]int, units.Cycles) {
	if m.period == 0 || len(evs) == 0 {
		return fired, 0
	}
	st := m.ctr.state(evs[0].Thread.ID, m.period)
	for i := range evs {
		if evs[i].IsStore || evs[i].Latency < DEARLatencyThreshold {
			continue
		}
		if st.tick(m.period) {
			fired = append(fired, i)
		}
	}
	return fired, 0
}

// ObserveCompute implements Mechanism.
func (m *DEAR) ObserveCompute(*proc.Thread, uint64) (int, units.Cycles) { return 0, 0 }

// PEBSLLLatencyThreshold is the qualifying latency for PEBS-LL: loads
// reaching at least the L3 (40 cycles in the default cache model),
// i.e., the accesses that could be NUMA-relevant.
const PEBSLLLatencyThreshold units.Cycles = 40

// PEBSLL is PEBS with the load-latency extension (Intel Nehalem and
// later): event-based sampling of loads above a latency threshold,
// with measured latency and a precise IP. Together with a conventional
// counter for total instructions it enables the Equation 3 lpi
// estimator.
type PEBSLL struct {
	period uint64
	ctr    periodCounter

	// absoluteEvents counts every qualifying event (not only sampled
	// ones): E_NUMA's raw material, as read from a conventional PMU
	// counter.
	absoluteEvents uint64
}

// DefaultPEBSLLPeriod is the scaled operating period; the paper used
// 500,000 events.
const DefaultPEBSLLPeriod = 64

// NewPEBSLL creates a PEBS-LL instance. period 0 selects the scaled
// default.
func NewPEBSLL(period uint64) *PEBSLL {
	if period == 0 {
		period = DefaultPEBSLLPeriod
	}
	return &PEBSLL{period: period}
}

// Name implements Mechanism.
func (*PEBSLL) Name() string { return "PEBS-LL" }

// Caps implements Mechanism.
func (*PEBSLL) Caps() Capability {
	return Capability{
		EventBased:      true,
		MeasuresLatency: true,
		PreciseIP:       true,
		NUMAEvents:      true,
	}
}

// PaperConfig implements Mechanism (Table 1).
func (*PEBSLL) PaperConfig() Config {
	return Config{Event: "LATENCY_ABOVE_THRESHOLD", Period: 500000}
}

// Period implements Mechanism.
func (m *PEBSLL) Period() uint64 { return m.period }

// AbsoluteEvents returns the count of all qualifying events, sampled
// or not — the E_NUMA-style absolute event count of Equation 3.
func (m *PEBSLL) AbsoluteEvents() uint64 { return m.absoluteEvents }

// ObserveAccess implements Mechanism.
func (m *PEBSLL) ObserveAccess(ev *proc.AccessEvent) AccessOutcome {
	if ev.IsStore || ev.Latency < PEBSLLLatencyThreshold {
		return AccessOutcome{}
	}
	m.absoluteEvents++
	fired := m.ctr.add(ev.Thread.ID, 1, m.period)
	return AccessOutcome{Sampled: fired > 0}
}

// ObserveAccessBatch implements BatchMechanism: qualifying loads count,
// sampled or not, toward the absolute event counter.
func (m *PEBSLL) ObserveAccessBatch(evs []proc.AccessEvent, fired []int) ([]int, units.Cycles) {
	if m.period == 0 || len(evs) == 0 {
		return fired, 0
	}
	st := m.ctr.state(evs[0].Thread.ID, m.period)
	for i := range evs {
		if evs[i].IsStore || evs[i].Latency < PEBSLLLatencyThreshold {
			continue
		}
		m.absoluteEvents++
		if st.tick(m.period) {
			fired = append(fired, i)
		}
	}
	return fired, 0
}

// ObserveCompute implements Mechanism.
func (m *PEBSLL) ObserveCompute(*proc.Thread, uint64) (int, units.Cycles) { return 0, 0 }

// SoftIBS is the software fallback of Section 3 for processors without
// address-sampling hardware: an LLVM pass instruments every load and
// store with a stub that the profiler overloads; the stub records every
// Nth access. The per-access stub cost dominates Table 2's overhead
// column (+200% on LULESH). CPU identification relies on the tool's
// static thread-to-core binding rather than a PMU-reported CPU id.
type SoftIBS struct {
	period uint64
	ctr    periodCounter
}

// DefaultSoftIBSPeriod is the scaled operating period; the paper used
// one record per 10,000,000 accesses.
const DefaultSoftIBSPeriod = 1024

// NewSoftIBS creates a Soft-IBS instance. period 0 selects the scaled
// default.
func NewSoftIBS(period uint64) *SoftIBS {
	if period == 0 {
		period = DefaultSoftIBSPeriod
	}
	return &SoftIBS{period: period}
}

// Name implements Mechanism.
func (*SoftIBS) Name() string { return "Soft-IBS" }

// Caps implements Mechanism.
func (*SoftIBS) Caps() Capability {
	return Capability{
		PreciseIP:               true,
		RequiresInstrumentation: true,
		RequiresThreadBinding:   true,
	}
}

// PaperConfig implements Mechanism (Table 1).
func (*SoftIBS) PaperConfig() Config { return Config{Event: "memory accesses", Period: 10000000} }

// Period implements Mechanism.
func (m *SoftIBS) Period() uint64 { return m.period }

// ObserveAccess implements Mechanism.
func (m *SoftIBS) ObserveAccess(ev *proc.AccessEvent) AccessOutcome {
	fired := m.ctr.add(ev.Thread.ID, 1, m.period)
	return AccessOutcome{Sampled: fired > 0}
}

// ObserveAccessBatch implements BatchMechanism: every instrumented
// access counts (the per-access stub tax is charged by the Monitor).
func (m *SoftIBS) ObserveAccessBatch(evs []proc.AccessEvent, fired []int) ([]int, units.Cycles) {
	if m.period == 0 || len(evs) == 0 {
		return fired, 0
	}
	st := m.ctr.state(evs[0].Thread.ID, m.period)
	for i := range evs {
		if st.tick(m.period) {
			fired = append(fired, i)
		}
	}
	return fired, 0
}

// ObserveCompute implements Mechanism: only memory accesses are
// instrumented.
func (m *SoftIBS) ObserveCompute(*proc.Thread, uint64) (int, units.Cycles) { return 0, 0 }
