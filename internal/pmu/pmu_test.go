package pmu

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/proc"
	"repro/internal/topology"
	"repro/internal/units"
	"repro/internal/vm"
)

func testEngine(threads int) (*proc.Engine, *isa.Program, isa.SiteID) {
	m := topology.New(topology.Config{
		Name: "t", NumDomains: 4, CPUsPerDomain: 2,
		MemoryPerDomain: units.GiB,
	})
	prog := isa.NewProgram("test")
	fn := prog.AddFunc("main", "main.c", 1)
	// Two adjacent sites so PEBS off-by-one has a "next instruction".
	prog.AddSite(fn, 9, isa.KindStore)
	site := prog.AddSite(fn, 10, isa.KindLoad)
	prog.AddSite(fn, 11, isa.KindLoad)
	e := proc.NewEngine(proc.Config{Machine: m, Program: prog, Threads: threads})
	return e, prog, site
}

// runSweep drives count remote-ish loads plus compute through the
// engine with the monitor attached, returning collected samples.
func runSweep(e *proc.Engine, site isa.SiteID, count int, computePer uint64) {
	c := e.Ctx(0)
	e.BeginRegion("main", e.Threads())
	r := c.Alloc(site, "arr", uint64(count)*64+4096, vm.OnNode{Domain: 1})
	for i := 0; i < count; i++ {
		c.Load(site, r.Base+uint64(i)*64)
		if computePer > 0 {
			c.Compute(computePer)
		}
	}
	e.EndRegion()
}

func TestNamesAndByName(t *testing.T) {
	for _, name := range Names() {
		mech, err := ByName(name, 0)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if mech.Name() != name {
			t.Errorf("Name() = %q, want %q", mech.Name(), name)
		}
		if mech.Period() == 0 {
			t.Errorf("%s: zero operating period", name)
		}
		if mech.PaperConfig().Event == "" || mech.PaperConfig().Period == 0 {
			t.Errorf("%s: incomplete paper config %+v", name, mech.PaperConfig())
		}
	}
	if _, err := ByName("bogus", 0); err == nil {
		t.Error("ByName(bogus) should fail")
	}
}

func TestCapabilityMatrixMatchesPaper(t *testing.T) {
	// Section 10: IBS and PEBS-LL measure latency; IBS and PEBS sample
	// all instructions; MRK samples only its event; PEBS is imprecise;
	// Soft-IBS needs instrumentation and thread binding.
	caps := map[string]Capability{}
	for _, n := range Names() {
		m, _ := ByName(n, 0)
		caps[n] = m.Caps()
	}
	if !caps["IBS"].MeasuresLatency || !caps["PEBS-LL"].MeasuresLatency {
		t.Error("IBS and PEBS-LL must measure latency")
	}
	for _, n := range []string{"MRK", "PEBS", "DEAR", "Soft-IBS"} {
		if caps[n].MeasuresLatency {
			t.Errorf("%s must not measure latency", n)
		}
	}
	if !caps["IBS"].SamplesAllInstructions || !caps["PEBS"].SamplesAllInstructions {
		t.Error("IBS and PEBS sample all instructions")
	}
	if caps["MRK"].SamplesAllInstructions {
		t.Error("MRK is event-only")
	}
	if caps["PEBS"].PreciseIP {
		t.Error("PEBS IP must be imprecise (off-by-one)")
	}
	if !caps["Soft-IBS"].RequiresInstrumentation || !caps["Soft-IBS"].RequiresThreadBinding {
		t.Error("Soft-IBS is instrumentation-based with static binding")
	}
}

func TestIBSSamplesAtPeriod(t *testing.T) {
	e, prog, site := testEngine(1)
	var samples []Sample
	mon := NewMonitor(NewIBS(100), prog, func(s *Sample) { samples = append(samples, *s) })
	e.AddHook(mon)
	runSweep(e, site, 1000, 0)
	// ~1001 memory instructions + 1 alloc at period 100 -> ~10 samples.
	if n := len(samples); n < 8 || n > 12 {
		t.Fatalf("IBS samples = %d, want ~10", n)
	}
	for _, s := range samples {
		if !s.HasEA {
			t.Fatal("IBS memory sample must carry EA")
		}
		if !s.HasLatency {
			t.Fatal("IBS sample must carry latency")
		}
		if s.IP != site {
			t.Fatalf("IBS sample IP = %d, want %d", s.IP, site)
		}
	}
}

func TestIBSSamplesComputeInstructions(t *testing.T) {
	e, prog, site := testEngine(1)
	var memSamples, otherSamples int
	mon := NewMonitor(NewIBS(50), prog, func(s *Sample) {
		if s.HasEA {
			memSamples++
		} else {
			otherSamples++
		}
	})
	e.AddHook(mon)
	runSweep(e, site, 2000, 40) // 40 compute instructions per load
	if otherSamples == 0 {
		t.Fatal("IBS should sample non-memory instructions")
	}
	if memSamples == 0 {
		t.Fatal("IBS should sample memory instructions too")
	}
	// Compute dominates the stream 40:1, so non-memory samples must
	// dominate (unbiased instruction sampling).
	if otherSamples < memSamples*10 {
		t.Errorf("samples: %d mem vs %d other; expected compute-dominated", memSamples, otherSamples)
	}
	if mon.SampledInstructions() != uint64(memSamples+otherSamples) {
		t.Errorf("I^s = %d, want %d", mon.SampledInstructions(), memSamples+otherSamples)
	}
}

func TestMRKSamplesOnlyL3Misses(t *testing.T) {
	e, prog, site := testEngine(1)
	var samples []Sample
	mon := NewMonitor(NewMRK(1), prog, func(s *Sample) { samples = append(samples, *s) })
	e.AddHook(mon)

	c := e.Ctx(0)
	e.BeginRegion("main", e.Threads())
	r := c.Alloc(site, "a", 1<<16, vm.OnNode{Domain: 0})
	c.Load(site, r.Base) // cold: local DRAM -> beyond local L3 -> marked
	for i := 0; i < 50; i++ {
		c.Load(site, r.Base) // L1 hits: never marked
	}
	e.EndRegion()

	if len(samples) != 1 {
		t.Fatalf("MRK samples = %d, want 1 (only the miss)", len(samples))
	}
	if samples[0].HasLatency {
		t.Error("MRK must not deliver latency")
	}
}

func TestPEBSOffByOneCorrection(t *testing.T) {
	e, prog, site := testEngine(1)
	var ips []isa.SiteID
	mon := NewMonitor(NewPEBS(10), prog, func(s *Sample) {
		if s.HasEA {
			ips = append(ips, s.IP)
		}
	})
	e.AddHook(mon)
	runSweep(e, site, 200, 0)
	if len(ips) == 0 {
		t.Fatal("no PEBS memory samples")
	}
	for _, ip := range ips {
		if ip != site {
			t.Fatalf("corrected IP = %d, want %d", ip, site)
		}
	}
}

func TestPEBSWithoutCorrectionReportsNextSite(t *testing.T) {
	e, prog, site := testEngine(1)
	var ips []isa.SiteID
	mon := NewMonitor(NewPEBS(10), prog, func(s *Sample) {
		if s.HasEA {
			ips = append(ips, s.IP)
			if s.PreciseIP {
				t.Error("uncorrected PEBS sample should be imprecise")
			}
		}
	})
	mon.CorrectOffByOne = false
	e.AddHook(mon)
	runSweep(e, site, 100, 0)
	if len(ips) == 0 {
		t.Fatal("no samples")
	}
	for _, ip := range ips {
		if ip != site+1 {
			t.Fatalf("uncorrected IP = %d, want %d (next site)", ip, site+1)
		}
	}
}

func TestPEBSCorrectionCostsMore(t *testing.T) {
	run := func(correct bool) units.Cycles {
		e, prog, site := testEngine(1)
		mon := NewMonitor(NewPEBS(10), prog, nil)
		mon.CorrectOffByOne = correct
		e.AddHook(mon)
		runSweep(e, site, 500, 0)
		return mon.OverheadCharged()
	}
	with, without := run(true), run(false)
	if with <= without {
		t.Fatalf("correction overhead %v should exceed uncorrected %v", with, without)
	}
}

func TestDEARSamplesOnlySlowLoads(t *testing.T) {
	e, prog, site := testEngine(1)
	var samples []Sample
	mon := NewMonitor(NewDEAR(1), prog, func(s *Sample) { samples = append(samples, *s) })
	e.AddHook(mon)

	c := e.Ctx(0)
	e.BeginRegion("main", e.Threads())
	r := c.Alloc(site, "a", 1<<16, vm.OnNode{Domain: 0})
	c.Load(site, r.Base) // cold miss: sampled
	for i := 0; i < 20; i++ {
		c.Load(site, r.Base) // L1 hit at 4 cycles < threshold: skipped
	}
	c.Store(site, r.Base+uint64(units.PageSize)) // store: DEAR ignores
	e.EndRegion()

	if len(samples) != 1 {
		t.Fatalf("DEAR samples = %d, want 1", len(samples))
	}
	if samples[0].IsStore {
		t.Error("DEAR must not sample stores")
	}
}

func TestPEBSLLLatencyAndAbsoluteEvents(t *testing.T) {
	e, prog, site := testEngine(1)
	mech := NewPEBSLL(4)
	var samples []Sample
	mon := NewMonitor(mech, prog, func(s *Sample) { samples = append(samples, *s) })
	e.AddHook(mon)
	runSweep(e, site, 256, 0) // sequential lines: 1 miss per line... all DRAM-bound lines distinct
	if mech.AbsoluteEvents() == 0 {
		t.Fatal("PEBS-LL should count absolute qualifying events")
	}
	// Jittered periods average the nominal period but can dip to 3/4
	// of it, so allow headroom.
	if float64(len(samples)) > float64(mech.AbsoluteEvents())/4*1.5+2 {
		t.Errorf("samples %d inconsistent with events %d at period 4",
			len(samples), mech.AbsoluteEvents())
	}
	for _, s := range samples {
		if !s.HasLatency || s.Latency < PEBSLLLatencyThreshold {
			t.Fatalf("PEBS-LL sample latency = %v (has=%v), want >= threshold", s.Latency, s.HasLatency)
		}
	}
}

func TestSoftIBSChargesEveryAccess(t *testing.T) {
	base := func() units.Cycles {
		e, _, site := testEngine(1)
		runSweep(e, site, 500, 0)
		return e.TotalTime()
	}()
	e, prog, site := testEngine(1)
	mon := NewMonitor(NewSoftIBS(100), prog, nil)
	e.AddHook(mon)
	runSweep(e, site, 500, 0)
	monitored := e.TotalTime()

	overheadPct := float64(monitored-base) / float64(base)
	if overheadPct < 0.10 {
		t.Errorf("Soft-IBS overhead = %.1f%%, want substantial (>10%%)", overheadPct*100)
	}
}

func TestOverheadOrderingMatchesTable2(t *testing.T) {
	// Reproduce Table 2's ordering on a memory-heavy sweep:
	// Soft-IBS >> PEBS > IBS > each of {MRK, DEAR, PEBS-LL}.
	overhead := map[string]float64{}
	base := func() units.Cycles {
		e, _, site := testEngine(1)
		runSweep(e, site, 2000, 4)
		return e.TotalTime()
	}()
	// Pin one period for every mechanism so the comparison isolates
	// the cost structure (per-access tax, off-by-one fix, filter cost)
	// from sampling-rate tuning.
	for _, name := range Names() {
		e, prog, site := testEngine(1)
		mech, _ := ByName(name, 500)
		mon := NewMonitor(mech, prog, nil)
		e.AddHook(mon)
		runSweep(e, site, 2000, 4)
		overhead[name] = float64(e.TotalTime()-base) / float64(base)
	}
	if !(overhead["Soft-IBS"] > overhead["PEBS"]) {
		t.Errorf("Soft-IBS (%.3f) should exceed PEBS (%.3f)", overhead["Soft-IBS"], overhead["PEBS"])
	}
	if !(overhead["PEBS"] > overhead["IBS"]) {
		t.Errorf("PEBS (%.3f) should exceed IBS (%.3f)", overhead["PEBS"], overhead["IBS"])
	}
	for _, cheap := range []string{"MRK", "DEAR", "PEBS-LL"} {
		if !(overhead["IBS"] > overhead[cheap]) {
			t.Errorf("IBS (%.3f) should exceed %s (%.3f)", overhead["IBS"], cheap, overhead[cheap])
		}
	}
}

func TestMonitorCountsRemoteSamples(t *testing.T) {
	e, prog, site := testEngine(2)
	mon := NewMonitor(NewIBS(10), prog, nil)
	e.AddHook(mon)
	runSweep(e, site, 500, 0) // array homed in domain 1, accessed from domain 0
	if mon.SampledRemote() == 0 {
		t.Fatal("expected sampled remote accesses")
	}
	if mon.SampledRemoteLatency() == 0 {
		t.Fatal("expected accumulated remote latency (IBS measures latency)")
	}
}

func TestPeriodCounterJitteredRate(t *testing.T) {
	var pc periodCounter
	// Over many events the jittered thresholds must average out to
	// the nominal period: 100k events at period 100 -> ~1000 samples.
	fired := pc.add(0, 100_000, 100)
	if fired < 850 || fired > 1250 {
		t.Fatalf("fired %d times for 100k events at period 100, want ~1000", fired)
	}
	if got := pc.add(0, 10, 0); got != 0 {
		t.Fatal("zero period should never fire")
	}
	// Independent threads have independent counters.
	if got := pc.add(7, 30, 100); got != 0 {
		t.Fatalf("new thread add(30,100) = %d, want 0 (threshold >= 75)", got)
	}
}

func TestJitterNextBounds(t *testing.T) {
	rng := uint64(42)
	for i := 0; i < 1000; i++ {
		n := jitterNext(1000, &rng)
		if n < 750 || n >= 1250 {
			t.Fatalf("jitterNext out of [750,1250): %d", n)
		}
	}
	// Tiny periods never return zero.
	for i := 0; i < 100; i++ {
		if jitterNext(1, &rng) == 0 {
			t.Fatal("jitterNext(1) must be nonzero")
		}
	}
}

// Regression test for sampling aliasing: a pathological loop whose
// memory accesses recur at exactly the sampling period must still be
// sampled in proportion to their true share of the instruction stream.
// With deterministic (unjittered) periods the sampler can lock onto a
// phase and miss the access class entirely — violating Section 3's
// requirement that "memory accesses are uniformly sampled".
func TestJitterDefeatsPeriodAliasing(t *testing.T) {
	const period = 100
	e, prog, site := testEngine(1)
	var memSamples, otherSamples int
	mon := NewMonitor(NewIBS(period), prog, func(s *Sample) {
		if s.HasEA {
			memSamples++
		} else {
			otherSamples++
		}
	})
	e.AddHook(mon)

	c := e.Ctx(0)
	e.BeginRegion("main", e.Threads())
	r := c.Alloc(site, "arr", 1<<22, vm.OnNode{Domain: 1})
	// Each iteration is exactly `period` instructions: 1 load + 99
	// compute. A phase-locked sampler would hit the same offset every
	// time — either always the load or never.
	const iters = 20000
	for i := 0; i < iters; i++ {
		c.Load(site, r.Base+uint64(i)*64)
		c.Compute(period - 1)
	}
	e.EndRegion()

	total := memSamples + otherSamples
	if total < iters/2 {
		t.Fatalf("sampler starved: %d samples", total)
	}
	// True memory share of the stream is 1/period = 1%; accept 0.2-5%.
	share := float64(memSamples) / float64(total)
	if share < 0.002 || share > 0.05 {
		t.Fatalf("memory-sample share = %.4f (mem %d / total %d), want ~0.01 — aliasing?",
			share, memSamples, total)
	}
}
