// Checkpoint support: the monitor and the six built-in mechanisms can
// export their complete sampling state — period counters, jitter RNGs,
// absolute-event counters, delivery counters — and adopt it back later.
// This is what makes a resumed run byte-identical to an uninterrupted
// one: the next sample after resume fires at exactly the instruction it
// would have fired at had the run never stopped.
//
// Decorated mechanisms (e.g. faults.Faulty) carry hidden state the type
// switch cannot see, so export fails for them and the caller must gate
// checkpointing off — a wrong resume is worse than no resume.
package pmu

import "repro/internal/units"

// CounterState is one thread's period-counter slot: events accumulated
// since the last sample, the jittered threshold for the next one, and
// the per-thread LCG that draws thresholds.
type CounterState struct {
	Count uint64 `json:"count"`
	Next  uint64 `json:"next"`
	RNG   uint64 `json:"rng"`
}

// SamplerState is a mechanism's complete sampling state.
type SamplerState struct {
	// Counters holds per-thread period-counter state, indexed by
	// thread id (the periodCounter growth order).
	Counters []CounterState `json:"counters,omitempty"`
	// AbsoluteEvents is PEBS-LL's conventional-counter reading; zero
	// for every other mechanism.
	AbsoluteEvents uint64 `json:"absolute_events,omitempty"`
}

// MonitorState is the monitor's complete resumable state: the counters
// the profiler reads back plus the mechanism's sampler state.
type MonitorState struct {
	SamplesTaken     uint64       `json:"samples_taken"`
	SamplesLost      uint64       `json:"samples_lost"`
	SampledInstr     uint64       `json:"sampled_instr"`
	SampledMemAccess uint64       `json:"sampled_mem_access"`
	SampledRemote    uint64       `json:"sampled_remote"`
	SampledRemoteLat units.Cycles `json:"sampled_remote_lat"`
	OverheadCharged  units.Cycles `json:"overhead_charged"`
	Stopped          bool         `json:"stopped,omitempty"`

	Sampler SamplerState `json:"sampler"`
}

// export copies the period-counter table.
func (p *periodCounter) export() []CounterState {
	if len(p.counts) == 0 {
		return nil
	}
	out := make([]CounterState, len(p.counts))
	for i, s := range p.counts {
		out[i] = CounterState{Count: s.count, Next: s.next, RNG: s.rng}
	}
	return out
}

// restore replaces the period-counter table. Slots beyond the restored
// length regrow deterministically on demand (state content is a pure
// function of thread id), so a shorter table is not a loss of fidelity.
func (p *periodCounter) restore(sts []CounterState) {
	p.counts = p.counts[:0]
	for _, s := range sts {
		p.counts = append(p.counts, ctrState{count: s.Count, next: s.Next, rng: s.RNG})
	}
}

// ExportSamplerState reads a mechanism's sampling state. It reports
// false for mechanisms outside the built-in six (decorators may hold
// state the export cannot see).
func ExportSamplerState(mech Mechanism) (SamplerState, bool) {
	switch m := mech.(type) {
	case *IBS:
		return SamplerState{Counters: m.ctr.export()}, true
	case *MRK:
		return SamplerState{Counters: m.ctr.export()}, true
	case *PEBS:
		return SamplerState{Counters: m.ctr.export()}, true
	case *DEAR:
		return SamplerState{Counters: m.ctr.export()}, true
	case *PEBSLL:
		return SamplerState{Counters: m.ctr.export(), AbsoluteEvents: m.absoluteEvents}, true
	case *SoftIBS:
		return SamplerState{Counters: m.ctr.export()}, true
	}
	return SamplerState{}, false
}

// RestoreSamplerState adopts previously exported sampling state. It
// reports false for mechanisms the export does not support.
func RestoreSamplerState(mech Mechanism, st SamplerState) bool {
	switch m := mech.(type) {
	case *IBS:
		m.ctr.restore(st.Counters)
	case *MRK:
		m.ctr.restore(st.Counters)
	case *PEBS:
		m.ctr.restore(st.Counters)
	case *DEAR:
		m.ctr.restore(st.Counters)
	case *PEBSLL:
		m.ctr.restore(st.Counters)
		m.absoluteEvents = st.AbsoluteEvents
	case *SoftIBS:
		m.ctr.restore(st.Counters)
	default:
		return false
	}
	return true
}

// ExportState reads the monitor's complete resumable state. It reports
// false when the attached mechanism cannot export (decorated samplers).
func (m *Monitor) ExportState() (MonitorState, bool) {
	sampler, ok := ExportSamplerState(m.mech)
	if !ok {
		return MonitorState{}, false
	}
	return MonitorState{
		SamplesTaken:     m.samplesTaken,
		SamplesLost:      m.samplesLost,
		SampledInstr:     m.sampledInstr,
		SampledMemAccess: m.sampledMemAccess,
		SampledRemote:    m.sampledRemote,
		SampledRemoteLat: m.sampledRemoteLat,
		OverheadCharged:  m.overheadCharged,
		Stopped:          m.stopped,
		Sampler:          sampler,
	}, true
}

// RestoreState adopts previously exported monitor state, including the
// mechanism's sampler state. It reports false when the attached
// mechanism cannot adopt it.
func (m *Monitor) RestoreState(st MonitorState) bool {
	if !RestoreSamplerState(m.mech, st.Sampler) {
		return false
	}
	m.samplesTaken = st.SamplesTaken
	m.samplesLost = st.SamplesLost
	m.sampledInstr = st.SampledInstr
	m.sampledMemAccess = st.SampledMemAccess
	m.sampledRemote = st.SampledRemote
	m.sampledRemoteLat = st.SampledRemoteLat
	m.overheadCharged = st.OverheadCharged
	m.stopped = st.Stopped
	return true
}
