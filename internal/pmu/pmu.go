// Package pmu implements the six address-sampling mechanisms the paper
// builds on (Section 3): AMD instruction-based sampling (IBS), IBM
// marked-event sampling (MRK), Intel precise event-based sampling
// (PEBS), Itanium data event address registers (DEAR), PEBS with the
// load-latency extension (PEBS-LL), and the software fallback Soft-IBS.
//
// Each mechanism is modelled with the capability matrix the paper's
// Sections 3 and 10 lay out — whether it samples all instructions or
// only events, whether it measures access latency, whether its
// instruction pointer is precise, and what it costs — and is driven by
// the execution engine through a Monitor, which plays the role of the
// PMU interrupt handler inside hpcrun.
//
// Monitoring cost is charged to the monitored thread via
// Thread.AddOverhead, so a mechanism's overhead profile shows up in
// simulated runtime exactly as Table 2 measures it: Soft-IBS pays a tax
// on every access (instrumentation), PEBS pays a large per-sample tax
// (online binary analysis to fix off-by-one attribution), IBS pays a
// moderate per-sample tax at a high sample rate (it samples all
// instruction kinds and must filter in software), and MRK, DEAR, and
// PEBS-LL are cheap.
package pmu

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/proc"
	"repro/internal/topology"
	"repro/internal/units"
	"repro/internal/vm"
)

// Sample is one address sample: the (instruction, data address) pair —
// plus whatever else the mechanism can capture — delivered to the
// profiler.
type Sample struct {
	ThreadID int
	CPU      topology.CPUID
	// IP is the sampled instruction site; NoSite when the mechanism
	// sampled a non-memory instruction (IBS and PEBS do).
	IP isa.SiteID
	// PreciseIP reports whether IP is exact. PEBS delivers the *next*
	// instruction's address; the Monitor corrects it when configured
	// to, at a cost.
	PreciseIP bool

	// HasEA reports whether the sample carries an effective address.
	HasEA   bool
	EA      uint64
	IsStore bool

	Source cache.DataSource
	// Home is the NUMA domain of EA's page at sample time.
	Home topology.DomainID
	// HasLatency reports whether Latency is measured (IBS, PEBS-LL).
	HasLatency bool
	Latency    units.Cycles

	FirstTouch  bool
	Region      vm.Region
	RegionValid bool
}

// Capability is the mechanism feature matrix of Sections 3 and 10.
type Capability struct {
	// SamplesAllInstructions: instruction sampling (IBS, PEBS) as
	// opposed to event sampling; enables the Equation 2 estimator.
	SamplesAllInstructions bool
	// EventBased: samples fire on specific events (MRK, DEAR,
	// PEBS-LL); enables the Equation 3 estimator.
	EventBased bool
	// MeasuresLatency: the sample carries access latency.
	MeasuresLatency bool
	// PreciseIP: attribution needs no correction.
	PreciseIP bool
	// NUMAEvents: the mechanism can restrict sampling to NUMA-related
	// events directly in hardware.
	NUMAEvents bool
	// RequiresInstrumentation: software sampling; every access pays.
	RequiresInstrumentation bool
	// RequiresThreadBinding: the CPU id is not in the sample, so the
	// tool must bind threads to cores and keep a static map
	// (Soft-IBS, Section 4.1).
	RequiresThreadBinding bool
}

// Config is one Table 1 row: the event programmed into the PMU and the
// sampling period.
type Config struct {
	Event  string
	Period uint64
}

// Costs models where a mechanism's overhead comes from, in cycles.
type Costs struct {
	// PerSample is charged for each sample taken (interrupt, register
	// capture, call-stack unwind).
	PerSample units.Cycles
	// PerAccess is charged on every memory access regardless of
	// sampling (Soft-IBS instrumentation stubs).
	PerAccess units.Cycles
	// OffByOneFix is charged per sample for online binary analysis to
	// recover the precise IP (PEBS).
	OffByOneFix units.Cycles
}

// AccessOutcome is a mechanism's verdict on one access event.
type AccessOutcome struct {
	// Sampled requests a sample for this access.
	Sampled bool
	// Overhead is the monitoring cost to charge the thread.
	Overhead units.Cycles
}

// Mechanism is one address-sampling implementation. Mechanism state
// (per-thread period counters) is owned by the instance, so a fresh
// instance is needed per monitored run.
type Mechanism interface {
	// Name returns the mechanism's short name, e.g. "IBS".
	Name() string
	// Caps returns the capability matrix entry.
	Caps() Capability
	// PaperConfig returns the Table 1 configuration (event name and
	// the paper's sampling period on the real hardware).
	PaperConfig() Config
	// Period returns the operating period of this instance.
	Period() uint64
	// ObserveAccess inspects one retired memory access.
	ObserveAccess(ev *proc.AccessEvent) AccessOutcome
	// ObserveCompute inspects a batch of n non-memory instructions
	// retired by thread t, returning how many (non-memory) samples
	// fire inside the batch and the cost to charge.
	ObserveCompute(t *proc.Thread, n uint64) (samples int, overhead units.Cycles)
}

// BatchMechanism is an optional Mechanism extension: the mechanism can
// inspect a whole dispatch batch in one call. evs holds retired
// accesses in order, all from one thread (the engine's batch contract);
// the mechanism appends the indices of accesses that fire a sample to
// fired and returns it, plus any non-sample overhead to charge. The
// sampling decisions must be identical to calling ObserveAccess per
// event — batching exists to hoist the per-thread counter lookup and
// kill the per-access interface call, not to change semantics. All six
// built-in mechanisms implement it; decorators (faults.Faulty) need
// not, and the Monitor falls back to per-access observation for them.
type BatchMechanism interface {
	ObserveAccessBatch(evs []proc.AccessEvent, fired []int) ([]int, units.Cycles)
}

// SampleTransformer is an optional Mechanism extension: a decorator
// (e.g. faults.Faulty) that mutates or suppresses samples after capture
// but before delivery. Returning false drops the sample — the Monitor
// still charges the capture cost (the PMU did the work) but the sample
// never reaches the profiler or the I^s counters, exactly like a
// ring-buffer overflow.
type SampleTransformer interface {
	TransformSample(s *Sample) bool
}

// Monitor connects a Mechanism to an Engine as a proc.Hook and delivers
// samples to a callback: it is the PMU interrupt handler of hpcrun.
type Monitor struct {
	proc.BaseHook
	mech Mechanism
	prog *isa.Program
	cb   func(*Sample)

	// caps, tr, and bm cache the mechanism's Caps() and its
	// SampleTransformer/BatchMechanism type assertions, all invariant
	// between SetMechanism calls; the per-sample path must not
	// re-derive them on every delivery.
	caps Capability
	tr   SampleTransformer
	bm   BatchMechanism

	// firedBuf is the scratch index slice reused across batch
	// observations.
	firedBuf []int

	// sampleBuf is the scratch sample reused across deliveries. The
	// callback must not retain the pointer; samples are consumed
	// synchronously (the PMU interrupt-handler model).
	sampleBuf Sample

	// CorrectOffByOne enables the online previous-instruction fix for
	// imprecise-IP mechanisms, at Costs.OffByOneFix per sample. The
	// paper notes this is expensive on x86 and better done postmortem
	// (Section 8, footnote 3).
	CorrectOffByOne bool

	costs Costs

	// Counters the profiler reads back.
	samplesTaken     uint64
	samplesLost      uint64 // suppressed by a SampleTransformer
	sampledInstr     uint64 // I^s: all sampled instructions (incl. non-memory)
	sampledMemAccess uint64
	sampledRemote    uint64
	sampledRemoteLat units.Cycles
	overheadCharged  units.Cycles

	// stopped detaches the monitor mid-run: no further observation,
	// sampling, or overhead charging. Counters freeze at their values
	// as of the stop (the converge-early window).
	stopped bool

	// paused suspends the monitor like stopped, but reversibly: the
	// checkpoint-resume fast-forward re-executes the program with the
	// monitor paused (no samples, no overhead, no counter movement) and
	// unpauses at the checkpointed epoch, where RestoreState reinstates
	// the exact counter and sampler state of the interrupted run.
	paused bool
}

// NewMonitor builds a Monitor. cb may be nil (counting only). The
// callback receives a pointer into a buffer reused across deliveries:
// samples are consumed synchronously, and a callback that keeps one
// must copy the value.
func NewMonitor(mech Mechanism, prog *isa.Program, cb func(*Sample)) *Monitor {
	m := &Monitor{
		prog:            prog,
		cb:              cb,
		CorrectOffByOne: true,
	}
	m.SetMechanism(mech)
	return m
}

// Mechanism returns the monitored mechanism.
func (m *Monitor) Mechanism() Mechanism { return m.mech }

// SetMechanism swaps the monitored mechanism mid-run — the profiler's
// fallback path when the configured sampler hard-fails. The overhead
// model follows the new mechanism; accumulated counters carry over.
func (m *Monitor) SetMechanism(mech Mechanism) {
	m.mech = mech
	m.costs = DefaultCosts(mech.Name())
	m.caps = mech.Caps()
	m.tr, _ = mech.(SampleTransformer)
	m.bm, _ = mech.(BatchMechanism)
}

// SamplesLost returns the number of captured samples a
// SampleTransformer suppressed before delivery.
func (m *Monitor) SamplesLost() uint64 { return m.samplesLost }

// SamplesTaken returns the total number of samples delivered.
func (m *Monitor) SamplesTaken() uint64 { return m.samplesTaken }

// SampledInstructions returns I^s, the Equation 2 denominator.
func (m *Monitor) SampledInstructions() uint64 { return m.sampledInstr }

// SampledRemoteLatency returns l^s_NUMA, the accumulated latency of
// sampled remote accesses (zero for mechanisms without latency).
func (m *Monitor) SampledRemoteLatency() units.Cycles { return m.sampledRemoteLat }

// SampledRemote returns E^s_NUMA, the number of sampled remote events.
func (m *Monitor) SampledRemote() uint64 { return m.sampledRemote }

// OverheadCharged returns the total monitoring cost charged to threads.
func (m *Monitor) OverheadCharged() units.Cycles { return m.overheadCharged }

// StopSampling detaches the monitor for the rest of the run: no
// further samples fire and no further monitoring overhead is charged.
// Used by the profiler's converge-early policy once the live metric
// estimates stabilize — the whole point of stopping is that the
// remaining execution proceeds unmonitored and untaxed.
func (m *Monitor) StopSampling() { m.stopped = true }

// SamplingStopped reports whether StopSampling was called.
func (m *Monitor) SamplingStopped() bool { return m.stopped }

// Pause reversibly suspends the monitor: no observation, sampling, or
// overhead charging until Unpause. Used by the checkpoint-resume
// fast-forward, which replays the deterministic access stream without
// re-measuring it.
func (m *Monitor) Pause() { m.paused = true }

// Unpause re-attaches a paused monitor.
func (m *Monitor) Unpause() { m.paused = false }

// Paused reports whether the monitor is paused.
func (m *Monitor) Paused() bool { return m.paused }

// OnAccess implements proc.Hook.
func (m *Monitor) OnAccess(ev *proc.AccessEvent) {
	if m.stopped || m.paused {
		return
	}
	if m.costs.PerAccess > 0 {
		// Instrumentation-based sampling pays on every access.
		ev.Thread.AddOverhead(m.costs.PerAccess)
		m.overheadCharged += m.costs.PerAccess
	}
	out := m.mech.ObserveAccess(ev)
	if out.Overhead > 0 {
		ev.Thread.AddOverhead(out.Overhead)
		m.overheadCharged += out.Overhead
	}
	if !out.Sampled {
		return
	}
	m.deliverSample(ev)
}

// OnAccessBatch implements proc.BatchHook: one mechanism call observes
// the whole batch, then samples are captured and delivered for the
// accesses that fired, in order. The instrumentation tax, sampling
// decisions, and delivered samples are identical to per-access
// observation (overhead charges are additive, so bulk-charging the
// per-access tax up front changes no observable state).
func (m *Monitor) OnAccessBatch(evs []proc.AccessEvent) {
	if m.stopped || m.paused || len(evs) == 0 {
		return
	}
	if m.bm == nil {
		for i := range evs {
			m.OnAccess(&evs[i])
		}
		return
	}
	if m.costs.PerAccess > 0 {
		cost := m.costs.PerAccess * units.Cycles(len(evs))
		evs[0].Thread.AddOverhead(cost)
		m.overheadCharged += cost
	}
	fired, overhead := m.bm.ObserveAccessBatch(evs, m.firedBuf[:0])
	m.firedBuf = fired
	if overhead > 0 {
		evs[0].Thread.AddOverhead(overhead)
		m.overheadCharged += overhead
	}
	for _, i := range fired {
		m.deliverSample(&evs[i])
	}
}

// deliverSample captures a sample for a fired access and delivers it:
// the tail of the PMU interrupt handler, shared by the per-access and
// batched paths.
func (m *Monitor) deliverSample(ev *proc.AccessEvent) {
	cost := m.costs.PerSample
	caps := m.caps
	s := &m.sampleBuf
	*s = Sample{
		ThreadID:    ev.Thread.ID,
		CPU:         ev.Thread.CPU,
		IP:          ev.Site,
		PreciseIP:   caps.PreciseIP,
		HasEA:       true,
		EA:          ev.EA,
		IsStore:     ev.IsStore,
		Source:      ev.Source,
		Home:        ev.Home,
		FirstTouch:  ev.FirstTouch,
		Region:      ev.Region,
		RegionValid: ev.RegionValid,
	}
	if caps.MeasuresLatency {
		s.HasLatency = true
		s.Latency = ev.Latency
	}
	if !caps.PreciseIP {
		// The PMU reported the *next* instruction; model that and, if
		// configured, pay for the online correction that walks the
		// binary back to the previous instruction.
		s.IP = ev.Site + 1
		if m.CorrectOffByOne {
			if prev, ok := m.prog.PrevSite(s.IP); ok {
				s.IP = prev.ID
				s.PreciseIP = true
			}
			cost += m.costs.OffByOneFix
		}
	}
	ev.Thread.AddOverhead(cost)
	m.overheadCharged += cost

	if m.tr != nil && !m.tr.TransformSample(s) {
		// Captured but lost before delivery: the cost was paid, but
		// the sample must not count toward I^s or reach the profiler.
		m.samplesLost++
		return
	}

	m.samplesTaken++
	m.sampledInstr++
	m.sampledMemAccess++
	if s.Source.IsRemote() {
		m.sampledRemote++
		if s.HasLatency {
			m.sampledRemoteLat += s.Latency
		}
	}
	if m.cb != nil {
		m.cb(s)
	}
}

// OnCompute implements proc.Hook: instruction-sampling mechanisms may
// fire inside a compute batch, yielding samples with no effective
// address. Those samples still count toward I^s — they are what lets
// Equation 2's denominator represent all instructions.
func (m *Monitor) OnCompute(t *proc.Thread, n uint64) {
	if m.stopped || m.paused {
		return
	}
	samples, overhead := m.mech.ObserveCompute(t, n)
	if overhead > 0 {
		t.AddOverhead(overhead)
		m.overheadCharged += overhead
	}
	for i := 0; i < samples; i++ {
		cost := m.costs.PerSample
		if !m.caps.PreciseIP && m.CorrectOffByOne {
			cost += m.costs.OffByOneFix
		}
		t.AddOverhead(cost)
		m.overheadCharged += cost
		s := &m.sampleBuf
		*s = Sample{
			ThreadID:  t.ID,
			CPU:       t.CPU,
			IP:        isa.NoSite,
			PreciseIP: m.caps.PreciseIP,
		}
		if m.tr != nil && !m.tr.TransformSample(s) {
			m.samplesLost++
			continue
		}
		m.samplesTaken++
		m.sampledInstr++
		if m.cb != nil {
			m.cb(s)
		}
	}
}

// DefaultCosts returns the overhead model for a mechanism by name. The
// constants are calibrated so the reproduction's Table 2 preserves the
// paper's overhead ordering: Soft-IBS >> PEBS > IBS > {MRK, DEAR,
// PEBS-LL}.
func DefaultCosts(name string) Costs {
	switch name {
	case "IBS":
		// Samples every kind of instruction at a high rate; software
		// must filter non-memory samples (Section 10). The cost per
		// usable sample is therefore high.
		return Costs{PerSample: 1200}
	case "MRK":
		return Costs{PerSample: 350}
	case "PEBS":
		// Off-by-one correction by online binary analysis dominates
		// (Section 8: second-highest overhead).
		return Costs{PerSample: 1200, OffByOneFix: 1300}
	case "DEAR":
		return Costs{PerSample: 3000}
	case "PEBS-LL":
		return Costs{PerSample: 3000}
	case "Soft-IBS":
		// Instrumentation stub on every load and store. The constant
		// is scaled up with the simulator's compressed instruction
		// streams (compute batches stand for many instructions), so
		// the *relative* tax matches the paper's triple-digit
		// percentages on memory-bound codes.
		return Costs{PerSample: 300, PerAccess: 160}
	default:
		return Costs{PerSample: 300}
	}
}

// ByName constructs a mechanism by its short name with the given
// period (0 means the mechanism's scaled default). Recognised names:
// IBS, MRK, PEBS, DEAR, PEBS-LL, Soft-IBS.
func ByName(name string, period uint64) (Mechanism, error) {
	switch name {
	case "IBS":
		return NewIBS(period), nil
	case "MRK":
		return NewMRK(period), nil
	case "PEBS":
		return NewPEBS(period), nil
	case "DEAR":
		return NewDEAR(period), nil
	case "PEBS-LL":
		return NewPEBSLL(period), nil
	case "Soft-IBS":
		return NewSoftIBS(period), nil
	default:
		return nil, fmt.Errorf("pmu: unknown mechanism %q", name)
	}
}

// Names lists the mechanisms in Table 1 order.
func Names() []string {
	return []string{"IBS", "MRK", "PEBS", "DEAR", "PEBS-LL", "Soft-IBS"}
}
