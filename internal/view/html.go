package view

import (
	"fmt"
	"html/template"
	"math"
	"sort"
	"strings"

	"repro/internal/addrcentric"
	"repro/internal/cct"
	"repro/internal/core"
	"repro/internal/metrics"
)

// HTML renders a profile as a self-contained HTML page — the analog of
// the hpcviewer GUI of Figure 3, with its three panes: the metric
// table (bottom right), the address-centric plots (top right), and the
// calling-context view (bottom left). topVars bounds the variables
// detailed (0 means all).
func HTML(p *core.Profile, topVars int) (string, error) {
	data := buildHTMLData(p, topVars)
	var b strings.Builder
	if err := htmlTmpl.Execute(&b, data); err != nil {
		return "", err
	}
	return b.String(), nil
}

type htmlData struct {
	App       string
	Machine   string
	Mechanism string
	Period    uint64

	Samples        float64
	Instructions   uint64
	Ml, Mr         float64
	RemotePct      float64
	Imbalance      float64
	LPI            string
	LPIExact       string
	Significant    bool
	SimTime        uint64
	Overhead       uint64
	DomainRows     []domainRow
	Vars           []htmlVar
	CCT            []cctRow
	HasFirstTouch  bool
	TimelineBucket []timelineRow

	// HealthLines is the degradation ledger, one rendered line per
	// entry; empty for a fully healthy run.
	HealthLines []string
}

type domainRow struct {
	Domain int
	Count  float64
	Pct    float64
}

type htmlVar struct {
	Name      string
	Kind      string
	Ml, Mr    float64
	RemoteLat uint64
	RLatPct   float64
	MrPct     float64
	LPI       float64
	FirstT    string
	Threads   []threadBar
	Bins      []binRow
}

type threadBar struct {
	Thread   int
	LeftPct  float64
	WidthPct float64
	Count    uint64
	Label    string
}

type binRow struct {
	Index   int
	Lo, Hi  string
	Samples float64
	Mr      float64
	Pct     float64
}

type cctRow struct {
	Indent   int
	Label    string
	Value    float64
	Pct      float64
	BarWidth float64
}

type timelineRow struct {
	Start, End uint64
	RemotePct  float64
	Samples    float64
	Hot        string
}

func fmtNaN(v float64, digits int) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.*f", digits, v)
}

func buildHTMLData(p *core.Profile, topVars int) htmlData {
	t := p.Totals
	d := htmlData{
		App:          p.AppName,
		Machine:      p.Machine.Name,
		Mechanism:    p.Mechanism,
		Period:       p.Period,
		Samples:      t.Samples,
		Instructions: t.Instructions,
		Ml:           t.Ml,
		Mr:           t.Mr,
		RemotePct:    100 * t.RemoteFraction,
		Imbalance:    t.Imbalance,
		LPI:          fmtNaN(t.LPI, 3),
		LPIExact:     fmtNaN(t.LPIExact, 3),
		Significant:  t.Significant,
		SimTime:      uint64(t.SimTime),
		Overhead:     uint64(t.Overhead),
	}
	if t.LPIInsufficient {
		d.LPI = "0.000 [insufficient samples]"
	}
	if s := p.Health.Summary(); s != "" {
		for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
			d.HealthLines = append(d.HealthLines, strings.TrimSpace(line))
		}
	}
	for dom, n := range t.PerDomain {
		if n == 0 {
			continue
		}
		pct := 0.0
		if t.Ml+t.Mr > 0 {
			pct = 100 * n / (t.Ml + t.Mr)
		}
		d.DomainRows = append(d.DomainRows, domainRow{Domain: dom, Count: n, Pct: pct})
	}

	vars := p.Vars
	if topVars > 0 && topVars < len(vars) {
		vars = vars[:topVars]
	}
	for _, v := range vars {
		hv := htmlVar{
			Name:      v.Var.Name,
			Kind:      v.Var.Kind.String(),
			Ml:        v.Ml,
			Mr:        v.Mr,
			RemoteLat: uint64(v.RemoteLat),
			RLatPct:   100 * v.RemoteLatShare,
			MrPct:     100 * v.MrShare,
			LPI:       v.LPI,
			FirstT:    "-",
		}
		if len(v.FirstTouchThreads) == 1 {
			hv.FirstT = fmt.Sprintf("serial (T%d)", v.FirstTouchThreads[0])
			d.HasFirstTouch = true
		} else if len(v.FirstTouchThreads) > 1 {
			hv.FirstT = fmt.Sprintf("parallel (%d threads)", len(v.FirstTouchThreads))
			d.HasFirstTouch = true
		}
		if pat, ok := p.Patterns.Pattern(v.Var, addrcentric.WholeProgram); ok {
			for _, tr := range pat.Threads() {
				lo, hi, _ := pat.Normalized(tr.Thread)
				w := (hi - lo) * 100
				if w < 1 {
					w = 1
				}
				hv.Threads = append(hv.Threads, threadBar{
					Thread:   tr.Thread,
					LeftPct:  lo * 100,
					WidthPct: w,
					Count:    tr.Count,
					Label:    fmt.Sprintf("[%.2f, %.2f]", lo, hi),
				})
			}
		}
		for _, b := range v.Bins {
			if len(v.Bins) <= 1 {
				break
			}
			pct := 0.0
			if v.Samples > 0 {
				pct = 100 * b.Samples / v.Samples
			}
			hv.Bins = append(hv.Bins, binRow{
				Index: b.Index,
				Lo:    fmt.Sprintf("%#x", b.Lo), Hi: fmt.Sprintf("%#x", b.Hi),
				Samples: b.Samples, Mr: b.Mr, Pct: pct,
			})
		}
		d.Vars = append(d.Vars, hv)
	}

	d.CCT = buildCCTRows(p)
	if p.Timeline != nil && p.Timeline.Len() > 0 {
		for _, b := range p.Timeline.Buckets(16) {
			hot, _ := b.HotVar()
			d.TimelineBucket = append(d.TimelineBucket, timelineRow{
				Start: uint64(b.Start), End: uint64(b.End),
				RemotePct: 100 * b.RemoteFraction(),
				Samples:   b.Samples(),
				Hot:       hot,
			})
		}
	}
	return d
}

func buildCCTRows(p *core.Profile) []cctRow {
	var rows []cctRow
	total := p.Tree.Root().InclusiveMetric(metrics.Mismatch)
	if total == 0 {
		return rows
	}
	var walk func(n *cct.Node, depth int)
	walk = func(n *cct.Node, depth int) {
		if depth > 6 {
			return
		}
		kids := n.Children()
		sort.SliceStable(kids, func(i, j int) bool {
			return kids[i].InclusiveMetric(metrics.Mismatch) > kids[j].InclusiveMetric(metrics.Mismatch)
		})
		for _, c := range kids {
			v := c.InclusiveMetric(metrics.Mismatch)
			if v/total < 0.01 {
				continue
			}
			rows = append(rows, cctRow{
				Indent:   depth,
				Label:    nodeLabel(p, c),
				Value:    v,
				Pct:      100 * v / total,
				BarWidth: 100 * v / total,
			})
			walk(c, depth+1)
		}
	}
	walk(p.Tree.Root(), 0)
	return rows
}

var htmlTmpl = template.Must(template.New("report").Parse(`<!DOCTYPE html>
<html><head><meta charset="utf-8">
<title>{{.App}} — NUMA profile</title>
<style>
body { font: 14px/1.45 system-ui, sans-serif; margin: 2rem auto; max-width: 70rem; color: #1a1a1a; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; width: 100%; margin: .5rem 0; }
th, td { text-align: left; padding: .25rem .6rem; border-bottom: 1px solid #ddd; font-variant-numeric: tabular-nums; }
th { background: #f5f5f5; }
.verdict { padding: .6rem 1rem; border-radius: 6px; margin: 1rem 0; font-weight: 600; }
.sig { background: #fde8e8; color: #9b1c1c; }
.insig { background: #e8f5e9; color: #1b5e20; }
.track { position: relative; background: #eef; height: 14px; border-radius: 3px; margin: 2px 0; }
.bar { position: absolute; top: 0; height: 100%; background: #3949ab; border-radius: 3px; }
.tl { background: #fce4ec; } .tl .fill { background: #c2185b; height: 100%; border-radius: 3px; }
.cct-bar { display: inline-block; background: #ffb74d; height: 10px; vertical-align: middle; }
.mono { font-family: ui-monospace, monospace; font-size: 12px; }
details { margin: .3rem 0; } summary { cursor: pointer; }
.tag { font-size: 11px; background: #eee; border-radius: 3px; padding: 0 .35em; }
</style></head><body>
<h1>{{.App}} on {{.Machine}} via {{.Mechanism}} <span class="tag">period {{.Period}}</span></h1>

<div class="verdict {{if .Significant}}sig{{else}}insig{{end}}">
lpi_NUMA = {{.LPI}} (exact {{.LPIExact}}, threshold 0.1):
{{if .Significant}}SIGNIFICANT — NUMA optimisation warranted{{else}}insignificant — NUMA optimisation would not pay off{{end}}
</div>

{{if .HealthLines}}
<div class="verdict sig">
{{range .HealthLines}}{{.}}<br>
{{end}}</div>
{{end}}

<h2>Program totals</h2>
<table>
<tr><th>samples</th><th>instructions</th><th>NUMA_MATCH</th><th>NUMA_MISMATCH</th><th>remote</th><th>imbalance</th><th>runtime (cyc)</th><th>monitor overhead (cyc)</th></tr>
<tr><td>{{printf "%.0f" .Samples}}</td><td>{{.Instructions}}</td><td>{{printf "%.0f" .Ml}}</td><td>{{printf "%.0f" .Mr}}</td>
<td>{{printf "%.1f" .RemotePct}}%</td><td>{{printf "%.2f" .Imbalance}}x</td><td>{{.SimTime}}</td><td>{{.Overhead}}</td></tr>
</table>
<table>
<tr><th>domain</th><th>sampled accesses</th><th>share</th></tr>
{{range .DomainRows}}<tr><td>NUMA_NODE{{.Domain}}</td><td>{{printf "%.0f" .Count}}</td><td>{{printf "%.1f" .Pct}}%</td></tr>
{{end}}</table>

<h2>Data-centric view</h2>
<table>
<tr><th>variable</th><th>kind</th><th>M_l</th><th>M_r</th><th>remote latency</th><th>rlat%</th><th>M_r%</th><th>lpi</th><th>first touch</th></tr>
{{range .Vars}}<tr><td>{{.Name}}</td><td>{{.Kind}}</td><td>{{printf "%.0f" .Ml}}</td><td>{{printf "%.0f" .Mr}}</td>
<td>{{.RemoteLat}}</td><td>{{printf "%.1f" .RLatPct}}%</td><td>{{printf "%.1f" .MrPct}}%</td><td>{{printf "%.1f" .LPI}}</td><td>{{.FirstT}}</td></tr>
{{end}}</table>

<h2>Address-centric views</h2>
{{range .Vars}}{{if .Threads}}
<details open><summary><b>{{.Name}}</b> — per-thread accessed range, normalised to [0,1]</summary>
<table>{{range .Threads}}
<tr><td style="width:4rem" class="mono">T{{printf "%02d" .Thread}}</td>
<td><div class="track"><div class="bar" style="left:{{printf "%.1f" .LeftPct}}%;width:{{printf "%.1f" .WidthPct}}%"></div></div></td>
<td style="width:9rem" class="mono">{{.Label}} n={{.Count}}</td></tr>
{{end}}</table>
{{if .Bins}}<table><tr><th>bin</th><th>range</th><th>samples</th><th>share</th><th>M_r</th></tr>
{{range .Bins}}<tr><td>{{.Index}}</td><td class="mono">[{{.Lo}}, {{.Hi}})</td><td>{{printf "%.0f" .Samples}}</td><td>{{printf "%.0f" .Pct}}%</td><td>{{printf "%.0f" .Mr}}</td></tr>
{{end}}</table>{{end}}
</details>
{{end}}{{end}}

<h2>Calling-context view (by NUMA_MISMATCH)</h2>
<table class="mono">
{{range .CCT}}<tr><td style="padding-left:{{.Indent}}rem">{{.Label}}</td>
<td style="width:12rem"><span class="cct-bar" style="width:{{printf "%.0f" .BarWidth}}px"></span> {{printf "%.0f" .Value}} ({{printf "%.1f" .Pct}}%)</td></tr>
{{end}}</table>

{{if .TimelineBucket}}
<h2>Time-varying profile (trace)</h2>
<table>
<tr><th>window (cyc)</th><th>remote fraction</th><th>samples</th><th>hot variable</th></tr>
{{range .TimelineBucket}}<tr><td class="mono">[{{.Start}}, {{.End}})</td>
<td><div class="track tl"><div class="fill" style="width:{{printf "%.0f" .RemotePct}}%"></div></div>{{printf "%.0f" .RemotePct}}%</td>
<td>{{printf "%.0f" .Samples}}</td><td>{{.Hot}}</td></tr>
{{end}}</table>
{{end}}

<p class="mono">generated by hpcnuma (reproduction of Liu &amp; Mellor-Crummey, PPoPP 2014)</p>
</body></html>
`))
