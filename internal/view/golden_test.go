package view

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/")

// Golden files pin the exact rendered bytes of the reports, so that
// formatting — and, since the scheduler landed, execution order — can
// never drift silently: the profile behind them is fully deterministic,
// and any intentional change regenerates them with
//
//	go test ./internal/view -run Golden -update
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden:\n%s", name, firstDiff(string(want), got))
	}
}

// firstDiff points at the first line where got departs from want.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) && i < len(gl); i++ {
		if wl[i] != gl[i] {
			return fmt.Sprintf("line %d:\n  golden: %q\n  got:    %q", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: golden %d, got %d", len(wl), len(gl))
}

func TestReportGolden(t *testing.T) {
	prof := demoProfile(t)
	checkGolden(t, "report.golden", Report(prof, 3))
}

func TestHTMLGolden(t *testing.T) {
	prof := demoProfile(t)
	out, err := HTML(prof, 3)
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "html.golden", out)
}
