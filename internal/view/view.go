// Package view renders profiles for a terminal, standing in for the
// hpcviewer GUI of Section 7.2. It provides the three views the paper's
// figures show:
//
//   - the address-centric view (the top-right pane of Figure 3): one
//     row per thread, a bar spanning the normalised [min,max] address
//     range the thread touched within a variable;
//   - the metric table (the bottom-right pane): NUMA_MATCH,
//     NUMA_MISMATCH, NUMA_NODE<i>, latency, and lpi per variable;
//   - the calling-context view (the bottom-left pane): the augmented
//     CCT with metric annotations, ranked by a chosen metric.
package view

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/addrcentric"
	"repro/internal/cct"
	"repro/internal/core"
	"repro/internal/metrics"
)

// AddressCentric renders a pattern as the paper's address-centric
// plot: thread index vs normalised [min,max] accessed range. width is
// the bar width in characters (0 means 48).
func AddressCentric(p *addrcentric.Pattern, width int) string {
	if width <= 0 {
		width = 48
	}
	var b strings.Builder
	scope := p.Scope
	if scope == addrcentric.WholeProgram {
		scope = "<whole program>"
	}
	name := p.Var.Name
	if p.Bin != addrcentric.WholeVariable {
		name = p.Var.BinName(p.Bin)
	}
	fmt.Fprintf(&b, "address-centric view: %s  scope=%s  (range normalised to [0,1])\n",
		name, scope)
	trs := p.Threads()
	if len(trs) == 0 {
		b.WriteString("  (no samples)\n")
		return b.String()
	}
	for _, tr := range trs {
		lo, hi, _ := p.Normalized(tr.Thread)
		start := int(lo * float64(width))
		end := int(hi*float64(width)) + 1
		if end > width {
			end = width
		}
		if start >= end {
			start = end - 1
		}
		if start < 0 {
			start = 0
		}
		bar := strings.Repeat(" ", start) +
			strings.Repeat("#", end-start) +
			strings.Repeat(" ", width-end)
		fmt.Fprintf(&b, "  T%02d |%s| [%.2f,%.2f] n=%d\n", tr.Thread, bar, lo, hi, tr.Count)
	}
	return b.String()
}

// fmtLPI renders an lpi value, showing "n/a" for mechanisms that
// cannot measure latency.
func fmtLPI(v float64) string {
	if math.IsNaN(v) {
		return "n/a"
	}
	return fmt.Sprintf("%.3f", v)
}

// Totals renders the whole-program summary block.
func Totals(p *core.Profile) string {
	t := p.Totals
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s on %s via %s (period %d) ===\n",
		p.AppName, p.Machine.Name, p.Mechanism, p.Period)
	fmt.Fprintf(&b, "samples %.0f  (I^s %.0f)  instructions %d  mem accesses %d\n",
		t.Samples, t.SampledInstructions, t.Instructions, t.MemAccesses)
	fmt.Fprintf(&b, "NUMA_MATCH %.0f  NUMA_MISMATCH %.0f  remote fraction %.1f%%\n",
		t.Ml, t.Mr, 100*t.RemoteFraction)
	for d, n := range t.PerDomain {
		if n > 0 {
			fmt.Fprintf(&b, "  NUMA_NODE%d %.0f\n", d, n)
		}
	}
	fmt.Fprintf(&b, "request imbalance %.2fx (1.0 = balanced)\n", t.Imbalance)
	lpi := fmtLPI(t.LPI)
	if t.LPIInsufficient {
		// The estimator refused to divide by zero: the run delivered
		// too few usable samples for Eq.2/Eq.3 to mean anything.
		lpi = "0.000 [insufficient samples]"
	}
	fmt.Fprintf(&b, "lpi_NUMA %s (exact %.3f)  threshold %.1f  => ",
		lpi, t.LPIExact, metrics.SignificanceThreshold)
	if t.Significant {
		b.WriteString("SIGNIFICANT: NUMA optimisation warranted\n")
	} else {
		b.WriteString("insignificant: NUMA optimisation would not pay off\n")
	}
	fmt.Fprintf(&b, "simulated runtime %v (monitoring overhead %v)\n", t.SimTime, t.Overhead)
	return b.String()
}

// VarTable renders the data-centric metric table for the top n
// variables by sampled remote latency (0 means all).
func VarTable(p *core.Profile, n int) string {
	vars := p.Vars
	if n > 0 && n < len(vars) {
		vars = vars[:n]
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %6s %8s %8s %10s %8s %7s %6s %s\n",
		"VARIABLE", "KIND", "MATCH", "MISMATCH", "RLAT(cyc)", "RLAT%", "MR%", "LPI", "FIRST-TOUCH")
	for _, v := range vars {
		ft := "-"
		if len(v.FirstTouchThreads) > 0 {
			if len(v.FirstTouchThreads) == 1 {
				ft = fmt.Sprintf("serial (T%d)", v.FirstTouchThreads[0])
			} else {
				ft = fmt.Sprintf("parallel (%d threads)", len(v.FirstTouchThreads))
			}
		}
		fmt.Fprintf(&b, "%-18s %6s %8.0f %8.0f %10d %7.1f%% %6.1f%% %6.1f %s\n",
			truncate(v.Var.Name, 18), v.Var.Kind, v.Ml, v.Mr,
			uint64(v.RemoteLat), 100*v.RemoteLatShare, 100*v.MrShare, v.LPI, ft)
	}
	return b.String()
}

// BinTable renders the per-bin breakdown of one variable — the
// synthetic sub-variables of Section 5.2.
func BinTable(v *core.VarProfile) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %d bins over [%#x, %#x)\n",
		v.Var.Name, len(v.Bins), v.Var.Region.Base, v.Var.Region.End())
	for _, bin := range v.Bins {
		share := 0.0
		if v.Samples > 0 {
			share = bin.Samples / v.Samples
		}
		fmt.Fprintf(&b, "  bin %d [%#x,%#x): samples %.0f (%.0f%%)  match %.0f  mismatch %.0f  rlat %d\n",
			bin.Index, bin.Lo, bin.Hi, bin.Samples, 100*share, bin.Ml, bin.Mr, uint64(bin.RemoteLat))
	}
	return b.String()
}

// CCT renders the merged calling-context tree annotated with the given
// metric, pruning subtrees below minShare of the root's inclusive
// value and deeper than maxDepth (0 means unlimited).
func CCT(p *core.Profile, metric metrics.ID, maxDepth int, minShare float64) string {
	var b strings.Builder
	total := p.Tree.Root().InclusiveMetric(metric)
	fmt.Fprintf(&b, "calling-context view (metric %s, total %.0f)\n", metrics.Name(metric), total)
	if total == 0 {
		return b.String()
	}
	var walk func(n *cct.Node, depth int)
	walk = func(n *cct.Node, depth int) {
		if maxDepth > 0 && depth > maxDepth {
			return
		}
		kids := n.Children()
		sort.SliceStable(kids, func(i, j int) bool {
			return kids[i].InclusiveMetric(metric) > kids[j].InclusiveMetric(metric)
		})
		for _, c := range kids {
			v := c.InclusiveMetric(metric)
			if v/total < minShare {
				continue
			}
			fmt.Fprintf(&b, "  %s%-*s %8.0f (%4.1f%%)\n",
				strings.Repeat("| ", depth), 46-2*depth, nodeLabel(p, c), v, 100*v/total)
			walk(c, depth+1)
		}
	}
	walk(p.Tree.Root(), 0)
	return b.String()
}

// FirstTouchReport renders the pinpointed first-touch location for one
// variable: the information a user needs to place the paper's
// block-wise or parallel-initialisation fix.
func FirstTouchReport(p *core.Profile, v *core.VarProfile) string {
	var b strings.Builder
	fmt.Fprintf(&b, "first-touch report for %s (%d pages protected)\n",
		v.Var.Name, v.ProtectedPages)
	if len(v.FirstTouchThreads) == 0 {
		b.WriteString("  no first touches trapped\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  touched first by threads %v\n", v.FirstTouchThreads)
	if len(v.FirstTouchThreads) == 1 {
		b.WriteString("  => serial initialisation: all pages homed in one domain;\n")
		b.WriteString("     apply block-wise distribution or parallelise the initialiser here:\n")
	}
	for i, fr := range v.FirstTouchPath {
		fn, ok := p.Binary.Func(fr.Fn)
		name := "?"
		file := "?"
		if ok {
			name, file = fn.Name, fn.File
		}
		fmt.Fprintf(&b, "  %s%s (%s)\n", strings.Repeat("  ", i+1), name, file)
	}
	return b.String()
}

// nodeLabel formats a CCT node for display.
func nodeLabel(p *core.Profile, n *cct.Node) string {
	switch n.Key.Kind {
	case cct.KindFrame:
		fn, ok := p.Binary.Func(n.Key.Fn)
		if !ok {
			return "<unknown frame>"
		}
		return fn.Name
	case cct.KindSite:
		return p.Binary.SourceOf(n.Key.Site)
	case cct.KindDummy:
		return n.Key.Label
	case cct.KindVariable:
		return "var " + n.Key.Label
	case cct.KindBin:
		return fmt.Sprintf("%s[bin %d]", n.Key.Label, n.Key.Line)
	default:
		return n.Key.Kind.String()
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "~"
}

// HealthBlock renders the pipeline-health ledger: every sample lost,
// quarantined, or worked around during collection, plus thread coverage
// and measurement-file damage. Empty for a fully healthy run.
func HealthBlock(p *core.Profile) string {
	return p.Health.Summary()
}

// Report renders a full profile: totals, variable table, the hottest
// variable's bins, address-centric views for the top variables,
// first-touch reports, and — when anything degraded — the health block.
func Report(p *core.Profile, topVars int) string {
	var b strings.Builder
	b.WriteString(Totals(p))
	if h := HealthBlock(p); h != "" {
		b.WriteString("\n")
		b.WriteString(h)
	}
	b.WriteString("\n")
	b.WriteString(VarTable(p, topVars))
	vars := p.Vars
	if topVars > 0 && topVars < len(vars) {
		vars = vars[:topVars]
	}
	for _, v := range vars {
		b.WriteString("\n")
		if pat, ok := p.Patterns.Pattern(v.Var, addrcentric.WholeProgram); ok {
			b.WriteString(AddressCentric(pat, 48))
		}
		if len(v.Bins) > 1 {
			b.WriteString(BinTable(v))
			// Section 5.2: the hot bin's own pattern represents the
			// variable when accesses are non-uniform.
			if bin, hot, ok := p.Patterns.HotBin(v.Var, addrcentric.WholeProgram); ok {
				whole, _ := p.Patterns.Pattern(v.Var, addrcentric.WholeProgram)
				if whole == nil || hot.TotalCount()*2 < whole.TotalCount() {
					// Uniform traffic: the whole-extent view suffices.
				} else {
					fmt.Fprintf(&b, "hot bin %d (%d%% of samples):\n",
						bin, int(100*float64(hot.TotalCount())/float64(whole.TotalCount())))
					b.WriteString(AddressCentric(hot, 48))
				}
			}
		}
		if p.FirstTouch != nil || v.ProtectedPages > 0 || len(v.FirstTouchThreads) > 0 {
			b.WriteString(FirstTouchReport(p, v))
		}
	}
	return b.String()
}

// HotPath walks the merged CCT from the root, following the child with
// the largest inclusive value of the metric at every step — the
// "hot path" navigation of HPCToolkit's viewer. It returns the labels
// along the path and the leaf's share of the total.
func HotPath(p *core.Profile, metric metrics.ID) (path []string, share float64) {
	// Navigate the code-centric access subtree: the allocation and
	// first-touch subtrees mirror the same metrics data-centrically
	// and would shadow the call-path answer.
	n := p.Tree.Root()
	if access, ok := n.FindChild(cct.DummyKey(cct.DummyAccess)); ok {
		n = access
	}
	total := n.InclusiveMetric(metric)
	if total == 0 {
		return nil, 0
	}
	value := total
	for {
		var best *cct.Node
		var bestV float64
		for _, c := range n.Children() {
			if v := c.InclusiveMetric(metric); v > bestV {
				best, bestV = c, v
			}
		}
		// Stop when the trail cools below half of the current value:
		// the remaining weight lives on this node itself.
		if best == nil || bestV < value/2 {
			break
		}
		path = append(path, nodeLabel(p, best))
		n, value = best, bestV
	}
	return path, value / total
}

// RenderHotPath prints the hot path, one frame per line.
func RenderHotPath(p *core.Profile, metric metrics.ID) string {
	path, share := HotPath(p, metric)
	var b strings.Builder
	fmt.Fprintf(&b, "hot path (%s, %.0f%% of total):\n", metrics.Name(metric), 100*share)
	if len(path) == 0 {
		b.WriteString("  (no samples)\n")
		return b.String()
	}
	for i, label := range path {
		fmt.Fprintf(&b, "  %s%s\n", strings.Repeat("  ", i), label)
	}
	return b.String()
}
