// Live views render an in-flight progress.Snapshot — the code- and
// data-centric panes of a profile that is still running, served by
// numad's GET /api/v1/jobs/{id}/live endpoint and printed by
// `numaprof -submit -follow`.
package view

import (
	"fmt"
	"strings"

	"repro/internal/progress"
)

// liveHeader renders the shared snapshot banner.
func liveHeader(s *progress.Snapshot, b *strings.Builder) {
	state := "in flight"
	if s.Final {
		state = "final"
	}
	fmt.Fprintf(b, "=== live profile: snapshot %d (%s) at epoch %d, cycle %d ===\n",
		s.Seq, state, s.Epoch, uint64(s.SimTime))
}

// liveConvergence renders the detector's verdict line.
func liveConvergence(s *progress.Snapshot, b *strings.Builder) {
	switch {
	case s.Converged:
		b.WriteString("convergence: CONVERGED (estimates stable)\n")
	case s.Confidence > 0:
		fmt.Fprintf(b, "convergence: stabilising (%.0f%% of window)\n", 100*s.Confidence)
	default:
		b.WriteString("convergence: not yet stable\n")
	}
}

// liveLPI renders an estimated lpi value: estimates carry validity
// instead of NaN.
func liveLPI(s *progress.Snapshot) string {
	if !s.LPIValid {
		return "n/a"
	}
	return fmt.Sprintf("%.3f", s.LPI)
}

// LiveCode renders the code-/program-centric estimate of an in-flight
// snapshot: the live analog of Totals.
func LiveCode(s *progress.Snapshot) string {
	var b strings.Builder
	liveHeader(s, &b)
	fmt.Fprintf(&b, "samples %.0f  (I^s %.0f)\n", s.Samples, s.SampledInstructions)
	fmt.Fprintf(&b, "NUMA_MATCH %.0f  NUMA_MISMATCH %.0f  remote fraction %.1f%%\n",
		s.Ml, s.Mr, 100*s.RemoteFraction)
	for d, n := range s.PerDomain {
		if n > 0 {
			fmt.Fprintf(&b, "  NUMA_NODE%d %.0f\n", d, n)
		}
	}
	fmt.Fprintf(&b, "request imbalance %.2fx (1.0 = balanced)\n", s.Imbalance)
	fmt.Fprintf(&b, "lpi_NUMA (estimate) %s\n", liveLPI(s))
	liveConvergence(s, &b)
	return b.String()
}

// LiveData renders the data-centric estimate of an in-flight snapshot:
// the live analog of VarTable, over the snapshot's top-K variables.
func LiveData(s *progress.Snapshot) string {
	var b strings.Builder
	liveHeader(s, &b)
	if len(s.TopVars) == 0 {
		b.WriteString("  (no attributed samples yet)\n")
		liveConvergence(s, &b)
		return b.String()
	}
	fmt.Fprintf(&b, "%-18s %6s %8s %8s %8s %7s %6s\n",
		"VARIABLE", "KIND", "SAMPLES", "MATCH", "MISMATCH", "MR%", "LPI")
	for _, v := range s.TopVars {
		fmt.Fprintf(&b, "%-18s %6s %8.0f %8.0f %8.0f %6.1f%% %6.1f\n",
			truncate(v.Name, 18), v.Kind, v.Samples, v.Ml, v.Mr,
			100*v.MrShare, v.LPI)
	}
	liveConvergence(s, &b)
	return b.String()
}
