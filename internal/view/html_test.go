package view

import (
	"strings"
	"testing"
)

func TestHTMLReport(t *testing.T) {
	prof := demoProfile(t)
	out, err := HTML(prof, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, frag := range []string{
		"<!DOCTYPE html>",
		"demo on view-t via IBS",
		"NUMA_MISMATCH",
		"bigarray",
		"Address-centric views",
		"Calling-context view",
		"serial (T0)",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("HTML missing %q", frag)
		}
	}
	// Significance verdict is rendered one way or the other.
	if !strings.Contains(out, "SIGNIFICANT") && !strings.Contains(out, "insignificant") {
		t.Error("no significance verdict")
	}
	// Thread bars exist.
	if !strings.Contains(out, `class="bar"`) {
		t.Error("no address-centric bars")
	}
	// No timeline section without tracing.
	if strings.Contains(out, "Time-varying profile") {
		t.Error("timeline section should be absent without Trace")
	}
}

func TestHTMLEscapesNames(t *testing.T) {
	prof := demoProfile(t)
	// Variable names flow through html/template escaping; nothing in
	// the demo contains markup, but the template must be well-formed
	// enough to round-trip angle brackets in labels (dummy nodes are
	// named "<access path>").
	out, err := HTML(prof, 0)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "<access path>") {
		t.Error("dummy label should be escaped")
	}
	if !strings.Contains(out, "&lt;access path&gt;") {
		t.Error("escaped dummy label missing")
	}
}
