package view

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/omp"
	"repro/internal/proc"
	"repro/internal/topology"
	"repro/internal/units"
	"repro/internal/vm"
)

// demoApp builds a small profile with a serial-init array processed in
// parallel, to exercise every view.
type demoApp struct {
	prog           *isa.Program
	fnMain, fnWork isa.FuncID
	sAlloc, sInit  isa.SiteID
	sLoad          isa.SiteID
}

func newDemoApp() *demoApp {
	a := &demoApp{}
	p := isa.NewProgram("demo")
	a.fnMain = p.AddFunc("main", "demo.c", 1)
	a.fnWork = p.AddFunc("work._omp", "demo.c", 20)
	a.sAlloc = p.AddSite(a.fnMain, 3, isa.KindAlloc)
	a.sInit = p.AddSite(a.fnMain, 5, isa.KindStore)
	a.sLoad = p.AddSite(a.fnWork, 22, isa.KindLoad)
	a.prog = p
	return a
}

func (a *demoApp) Name() string         { return "demo" }
func (a *demoApp) Binary() *isa.Program { return a.prog }

func (a *demoApp) Run(e *proc.Engine) {
	const n = 8192
	var arr vm.Region
	omp.Serial(e, a.fnMain, "main", func(c *proc.Ctx) {
		arr = c.Alloc(a.sAlloc, "bigarray", n*64, nil)
		for i := 0; i < n; i++ {
			c.Store(a.sInit, arr.Base+uint64(i)*64)
		}
	})
	for it := 0; it < 2; it++ {
		omp.ParallelFor(e, a.fnWork, "work", n, omp.Static{}, func(c *proc.Ctx, i int) {
			c.Load(a.sLoad, arr.Base+uint64(i)*64)
			c.Compute(3)
		})
	}
}

func demoProfile(t *testing.T) *core.Profile {
	t.Helper()
	m := topology.New(topology.Config{
		Name: "view-t", NumDomains: 4, CPUsPerDomain: 2,
		MemoryPerDomain: units.GiB,
	})
	prof, err := core.Analyze(core.Config{
		Machine:         m,
		Mechanism:       "IBS",
		Period:          32,
		TrackFirstTouch: true,
	}, newDemoApp())
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

func TestTotalsRendering(t *testing.T) {
	prof := demoProfile(t)
	out := Totals(prof)
	for _, frag := range []string{
		"demo on view-t via IBS",
		"NUMA_MATCH", "NUMA_MISMATCH",
		"NUMA_NODE0",
		"lpi_NUMA",
		"simulated runtime",
	} {
		if !strings.Contains(out, frag) {
			t.Errorf("Totals missing %q:\n%s", frag, out)
		}
	}
	if !strings.Contains(out, "SIGNIFICANT") && !strings.Contains(out, "insignificant") {
		t.Error("Totals must state the significance verdict")
	}
}

func TestVarTableRendering(t *testing.T) {
	prof := demoProfile(t)
	out := VarTable(prof, 0)
	if !strings.Contains(out, "bigarray") {
		t.Errorf("VarTable missing variable:\n%s", out)
	}
	if !strings.Contains(out, "serial (T0)") {
		t.Errorf("VarTable should report serial first touch:\n%s", out)
	}
	if !strings.Contains(out, "MISMATCH") {
		t.Error("VarTable missing header")
	}
}

func TestAddressCentricRendering(t *testing.T) {
	prof := demoProfile(t)
	v, ok := prof.Registry.Lookup("bigarray")
	if !ok {
		t.Fatal("bigarray missing")
	}
	pat, ok := prof.Patterns.Pattern(v, "work")
	if !ok {
		t.Fatal("work pattern missing")
	}
	out := AddressCentric(pat, 40)
	if !strings.Contains(out, "bigarray") || !strings.Contains(out, "scope=work") {
		t.Errorf("header wrong:\n%s", out)
	}
	// One row per sampled thread, bars made of '#'.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) < 4 {
		t.Fatalf("too few rows:\n%s", out)
	}
	var sawBar bool
	for _, l := range lines[1:] {
		if strings.Contains(l, "#") {
			sawBar = true
		}
	}
	if !sawBar {
		t.Errorf("no bars rendered:\n%s", out)
	}
	// Empty pattern renders gracefully.
	empty := AddressCentric(pat, 0)
	if empty == "" {
		t.Error("zero width should fall back to default")
	}
}

func TestBinTableRendering(t *testing.T) {
	prof := demoProfile(t)
	vp, ok := prof.VarByName("bigarray")
	if !ok {
		t.Fatal("bigarray not profiled")
	}
	if len(vp.Bins) != 5 {
		t.Fatalf("bins = %d, want 5 (512 KiB variable)", len(vp.Bins))
	}
	out := BinTable(vp)
	if strings.Count(out, "bin ") < 5 {
		t.Errorf("BinTable missing bins:\n%s", out)
	}
}

func TestCCTRendering(t *testing.T) {
	prof := demoProfile(t)
	out := CCT(prof, metrics.Samples, 6, 0.001)
	for _, frag := range []string{"SAMPLES", "work._omp", "<access path>"} {
		if !strings.Contains(out, frag) {
			t.Errorf("CCT missing %q:\n%s", frag, out)
		}
	}
}

func TestFirstTouchReportRendering(t *testing.T) {
	prof := demoProfile(t)
	vp, _ := prof.VarByName("bigarray")
	out := FirstTouchReport(prof, vp)
	if !strings.Contains(out, "serial initialisation") {
		t.Errorf("report should flag serial init:\n%s", out)
	}
	if !strings.Contains(out, "main") {
		t.Errorf("report should show the first-touch function:\n%s", out)
	}
}

func TestFullReport(t *testing.T) {
	prof := demoProfile(t)
	out := Report(prof, 3)
	for _, frag := range []string{"address-centric view", "VARIABLE", "first-touch report"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Report missing %q", frag)
		}
	}
}

func TestTruncate(t *testing.T) {
	if got := truncate("short", 10); got != "short" {
		t.Errorf("truncate(short) = %q", got)
	}
	if got := truncate("averyverylongname", 8); got != "averyve~" || len(got) != 8 {
		t.Errorf("truncate = %q", got)
	}
}

func TestHotPath(t *testing.T) {
	prof := demoProfile(t)
	path, share := HotPath(prof, metrics.Mismatch)
	if len(path) == 0 {
		t.Fatal("empty hot path")
	}
	if share <= 0 || share > 1 {
		t.Fatalf("share = %v", share)
	}
	// The demo's mismatches all come from the parallel work loop.
	joined := strings.Join(path, " / ")
	if !strings.Contains(joined, "work._omp") {
		t.Errorf("hot path %q should pass through work._omp", joined)
	}
	out := RenderHotPath(prof, metrics.Mismatch)
	if !strings.Contains(out, "hot path") || !strings.Contains(out, "work._omp") {
		t.Errorf("render incomplete:\n%s", out)
	}
	// A metric nobody recorded: graceful empty path.
	if p, s := HotPath(prof, metrics.FirstTouches+100); p != nil || s != 0 {
		t.Error("unknown metric should yield no path")
	}
}
