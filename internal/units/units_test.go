package units

import (
	"testing"
	"testing/quick"
)

func TestCyclesScale(t *testing.T) {
	cases := []struct {
		c      Cycles
		factor float64
		want   Cycles
	}{
		{100, 1.0, 100},
		{100, 1.5, 150},
		{100, 0, 0},
		{100, -2, 0},
		{3, 1.5, 5}, // 4.5 rounds to 5
		{0, 10, 0},
	}
	for _, tc := range cases {
		if got := tc.c.Scale(tc.factor); got != tc.want {
			t.Errorf("%v.Scale(%v) = %v, want %v", tc.c, tc.factor, got, tc.want)
		}
	}
}

func TestCyclesSeconds(t *testing.T) {
	var c Cycles = 2_000_000_000
	if got := c.Seconds(2.0); got != 1.0 {
		t.Errorf("Seconds = %v, want 1.0", got)
	}
	if got := c.Seconds(0); got != 0 {
		t.Errorf("Seconds with zero clock = %v, want 0", got)
	}
}

func TestBytesString(t *testing.T) {
	cases := []struct {
		b    Bytes
		want string
	}{
		{512, "512B"},
		{KiB, "1KiB"},
		{4 * KiB, "4KiB"},
		{MiB, "1MiB"},
		{16 * GiB, "16GiB"},
		{KiB + 1, "1025B"},
	}
	for _, tc := range cases {
		if got := tc.b.String(); got != tc.want {
			t.Errorf("%d.String() = %q, want %q", uint64(tc.b), got, tc.want)
		}
	}
}

func TestPageGeometry(t *testing.T) {
	if PageOf(0) != 0 || PageOf(4095) != 0 || PageOf(4096) != 1 {
		t.Fatal("PageOf boundaries wrong")
	}
	if PageBase(4097) != 4096 {
		t.Fatalf("PageBase(4097) = %d", PageBase(4097))
	}
	if PagesSpanned(0, 0) != 0 {
		t.Error("zero-size range should span 0 pages")
	}
	if PagesSpanned(0, 1) != 1 {
		t.Error("1-byte range should span 1 page")
	}
	if PagesSpanned(4095, 2) != 2 {
		t.Error("range crossing a boundary should span 2 pages")
	}
	if PagesSpanned(0, 4096) != 1 {
		t.Error("exactly one page should span 1 page")
	}
}

// Property: PagesSpanned is consistent with PageOf on the endpoints.
func TestQuickPagesSpanned(t *testing.T) {
	f := func(base uint32, size uint16) bool {
		b, s := uint64(base), uint64(size)
		got := PagesSpanned(b, s)
		if s == 0 {
			return got == 0
		}
		want := PageOf(b+s-1) - PageOf(b) + 1
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Scale(1) is the identity, and Scale is monotone in the factor.
func TestQuickScale(t *testing.T) {
	f := func(c uint32, f1, f2 uint8) bool {
		cy := Cycles(c)
		if cy.Scale(1) != cy {
			return false
		}
		a, b := float64(f1), float64(f2)
		if a > b {
			a, b = b, a
		}
		return cy.Scale(a) <= cy.Scale(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
