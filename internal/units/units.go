// Package units defines the primitive quantities shared by every layer
// of the simulated NUMA machine: cycles, bytes, and page geometry.
//
// Keeping these in a leaf package lets the memory system, caches,
// interconnect, execution engine, and profiler agree on representations
// without import cycles.
package units

import "fmt"

// Cycles counts simulated processor clock cycles. All latencies and
// durations in the simulator are expressed in cycles; wall-clock time
// is derived by dividing by a machine's clock rate.
type Cycles uint64

// Add returns c + d. It exists for readability at call sites that mix
// several latency contributions.
func (c Cycles) Add(d Cycles) Cycles { return c + d }

// Scale returns c multiplied by factor, rounding to the nearest cycle.
// Factors below zero are treated as zero.
func (c Cycles) Scale(factor float64) Cycles {
	if factor <= 0 {
		return 0
	}
	return Cycles(float64(c)*factor + 0.5)
}

// Seconds converts a cycle count to seconds at the given clock rate.
func (c Cycles) Seconds(clockGHz float64) float64 {
	if clockGHz <= 0 {
		return 0
	}
	return float64(c) / (clockGHz * 1e9)
}

func (c Cycles) String() string { return fmt.Sprintf("%d cyc", uint64(c)) }

// Bytes is a size in bytes.
type Bytes uint64

// Common sizes.
const (
	KiB Bytes = 1 << 10
	MiB Bytes = 1 << 20
	GiB Bytes = 1 << 30
)

func (b Bytes) String() string {
	switch {
	case b >= GiB && b%GiB == 0:
		return fmt.Sprintf("%dGiB", uint64(b/GiB))
	case b >= MiB && b%MiB == 0:
		return fmt.Sprintf("%dMiB", uint64(b/MiB))
	case b >= KiB && b%KiB == 0:
		return fmt.Sprintf("%dKiB", uint64(b/KiB))
	default:
		return fmt.Sprintf("%dB", uint64(b))
	}
}

// PageSize is the simulated virtual-memory page size. The paper's
// first-touch analysis and libnuma's move_pages both operate at page
// granularity, so the whole toolkit shares this constant.
const PageSize Bytes = 4096

// PageShift is log2(PageSize).
const PageShift = 12

// PageOf returns the page index containing the address.
func PageOf(addr uint64) uint64 { return addr >> PageShift }

// PageBase returns the first address of the page containing addr.
func PageBase(addr uint64) uint64 { return addr &^ (uint64(PageSize) - 1) }

// PagesSpanned returns how many pages the half-open range
// [base, base+size) touches. A zero-size range spans zero pages.
func PagesSpanned(base, size uint64) uint64 {
	if size == 0 {
		return 0
	}
	first := PageOf(base)
	last := PageOf(base + size - 1)
	return last - first + 1
}
