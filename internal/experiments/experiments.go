// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 8) on the simulated substrate:
//
//   - Table 1: the sampling-mechanism configuration matrix;
//   - Table 2: monitoring overhead per mechanism per benchmark;
//   - Figure 1: the three data-distribution strategies microbenchmark;
//   - Figure 2: the first-touch trapping protocol;
//   - Figure 3: the LULESH case study (code-, data-, address-centric);
//   - Figures 4-7: AMG2006 whole-program vs region-scoped patterns;
//   - Figures 8-9: Blackscholes' staggered sections and the AoS regroup;
//   - Figure 10: the UMT2013 kernel under MRK on POWER7;
//   - the Section 8 optimisation speedups for all four benchmarks.
//
// Each experiment returns a result struct carrying measured values
// side by side with the paper's reported numbers, plus a Render method
// producing the text the numabench command prints. Absolute numbers are
// not expected to match (the substrate is a simulator, not the authors'
// testbeds); the success criterion is shape: orderings, ratios,
// threshold behaviour, and win/loss directions.
package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/proc"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// timedExperiment opens an experiment.<name> span (plus its always-on
// counter/histogram pair) around one Run* entry point:
//
//	defer timedExperiment("table2")()
//
// Entry points take no context, so the span is a root: the per-cell
// sched.cell spans it fans out appear as sibling lanes in the trace.
func timedExperiment(name string) func() {
	_, done := telemetry.Timed(context.Background(), "experiment."+name)
	return done
}

// MachineForMechanism returns the Table 1 testbed for a mechanism.
func MachineForMechanism(mech string) *topology.Machine {
	switch mech {
	case "IBS", "Soft-IBS":
		return topology.MagnyCours48()
	case "MRK":
		return topology.Power7x128()
	case "PEBS":
		return topology.Harpertown8()
	case "DEAR":
		return topology.Itanium2x8()
	case "PEBS-LL":
		return topology.IvyBridge8()
	default:
		return topology.MagnyCours48()
	}
}

// BaseConfig assembles the standard experiment configuration for a
// machine: tuned caches and the machine-specific memory model.
func BaseConfig(m *topology.Machine, threads int, binding proc.Binding) core.Config {
	return core.Config{
		Machine:      m,
		Threads:      threads,
		Binding:      binding,
		CacheConfig:  workloads.TunedCacheConfig(),
		MemParams:    workloads.MemParamsFor(m),
		FabricParams: workloads.FabricParamsFor(m),
	}
}

// pct formats a fraction as a signed percentage.
func pct(f float64) string { return fmt.Sprintf("%+.1f%%", 100*f) }
