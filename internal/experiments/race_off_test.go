//go:build !race

package experiments

// raceEnabled mirrors whether the race detector is compiled into the
// test binary. The determinism harness trims its heaviest cases under
// -race (10-20x slower) so the package stays inside the default go
// test timeout on small machines; the light cases plus internal/core's
// dedicated race stress keep the concurrency coverage.
const raceEnabled = false
