package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/pmu"
	"repro/internal/proc"
	"repro/internal/sched"
	"repro/internal/units"
	"repro/internal/workloads"
)

// Table2Cell is one measurement of the paper's Table 2: one sampling
// mechanism monitoring one benchmark on that mechanism's machine.
type Table2Cell struct {
	Mechanism string
	Workload  string
	Machine   string
	Base      units.Cycles
	Monitored units.Cycles
	// Overhead is (Monitored-Base)/Base, the parenthesised percentage
	// of Table 2.
	Overhead float64
	// PaperOverhead is the corresponding Table 2 percentage.
	PaperOverhead float64
	// Err is the cell's failure, if its run could not complete. A
	// failed cell is a reported gap: it renders as "ERR" and is
	// excluded from Cell/Overhead lookups, but it never aborts the
	// sibling cells (the graceful-degradation contract).
	Err string
}

// Table2 holds the full overhead matrix.
type Table2 struct {
	Cells []Table2Cell
}

// paperTable2 reproduces the percentages reported in Table 2.
var paperTable2 = map[string]map[string]float64{
	"IBS":      {"LULESH": 0.24, "AMG2006": 0.37, "Blackscholes": 0.06},
	"MRK":      {"LULESH": 0.05, "AMG2006": 0.07, "Blackscholes": 0.04},
	"PEBS":     {"LULESH": 0.45, "AMG2006": 0.52, "Blackscholes": 0.25},
	"DEAR":     {"LULESH": 0.07, "AMG2006": 0.12, "Blackscholes": 0.04},
	"PEBS-LL":  {"LULESH": 0.06, "AMG2006": 0.08, "Blackscholes": 0.03},
	"Soft-IBS": {"LULESH": 2.00, "AMG2006": 1.80, "Blackscholes": 0.30},
}

// table2Workloads builds the three Table 2 benchmarks. The paper
// adjusts benchmark inputs per machine ("the absolute execution time on
// different architectures is incomparable"); here one scaled input per
// benchmark serves all machines.
func table2Workloads(iters int) map[string]func() core.App {
	return map[string]func() core.App{
		"LULESH":       func() core.App { return workloads.NewLULESH(workloads.Params{Iters: iters}) },
		"AMG2006":      func() core.App { return workloads.NewAMG2006(workloads.Params{Iters: iters}) },
		"Blackscholes": func() core.App { return workloads.NewBlackscholes(workloads.Params{}) },
	}
}

// Table2Order lists workloads in the paper's column order.
var Table2Order = []string{"LULESH", "AMG2006", "Blackscholes"}

// RunTable2 measures monitoring overhead for every mechanism on its
// Table 1 machine, across the three benchmarks. iters scales workload
// length (0: defaults).
//
// The 18 cells are independent — each MeasureOverhead builds its own
// engines — so they fan out across sched.Workers() goroutines and come
// back in the paper's row-major order. A failed cell degrades to a
// reported gap in the returned table; RunTable2 only errors when every
// cell failed.
func RunTable2(iters int) (*Table2, error) {
	defer timedExperiment("table2")()
	type spec struct{ mech, wl string }
	var specs []spec
	for _, mech := range pmu.Names() {
		for _, wl := range Table2Order {
			specs = append(specs, spec{mech, wl})
		}
	}
	cells, err := sched.Map(len(specs), func(i int) (Table2Cell, error) {
		mech, wl := specs[i].mech, specs[i].wl
		m := MachineForMechanism(mech)
		mk := table2Workloads(iters)[wl]
		cfg := BaseConfig(m, 0, proc.Compact)
		cfg.Mechanism = mech
		ov, err := core.MeasureOverhead(cfg, mk)
		if err != nil {
			return Table2Cell{}, fmt.Errorf("table2 %s/%s: %w", mech, wl, err)
		}
		return Table2Cell{
			Mechanism:     mech,
			Workload:      wl,
			Machine:       m.Name,
			Base:          ov.Base,
			Monitored:     ov.Monitored,
			Overhead:      ov.Percent(),
			PaperOverhead: paperTable2[mech][wl],
		}, nil
	})
	t := &Table2{Cells: cells}
	if err != nil {
		sweep, _ := sched.AsSweep(err)
		if sweep == nil || sweep.AllFailed() {
			return nil, err
		}
		for _, ce := range sweep.Cells {
			c := &t.Cells[ce.Index]
			c.Mechanism = specs[ce.Index].mech
			c.Workload = specs[ce.Index].wl
			c.Machine = MachineForMechanism(c.Mechanism).Name
			c.Err = ce.Err.Error()
		}
	}
	return t, nil
}

// Cell returns the completed cell for a mechanism/workload pair.
// Failed cells (gaps) are not returned.
func (t *Table2) Cell(mech, wl string) (Table2Cell, bool) {
	for _, c := range t.Cells {
		if c.Mechanism == mech && c.Workload == wl && c.Err == "" {
			return c, true
		}
	}
	return Table2Cell{}, false
}

// Gaps returns the failed cells, in row-major order.
func (t *Table2) Gaps() []Table2Cell {
	var gaps []Table2Cell
	for _, c := range t.Cells {
		if c.Err != "" {
			gaps = append(gaps, c)
		}
	}
	return gaps
}

// Overhead returns the measured overhead fraction for a pair (0 if
// absent).
func (t *Table2) Overhead(mech, wl string) float64 {
	c, _ := t.Cell(mech, wl)
	return c.Overhead
}

// Render prints the matrix in the paper's layout, with the paper's
// percentages alongside for comparison.
func (t *Table2) Render() string {
	var b strings.Builder
	b.WriteString("Table 2. Runtime overhead of monitoring (measured vs paper).\n")
	fmt.Fprintf(&b, "%-10s", "Method")
	for _, wl := range Table2Order {
		fmt.Fprintf(&b, " %26s", wl)
	}
	b.WriteString("\n")
	gapped := false
	for _, mech := range pmu.Names() {
		fmt.Fprintf(&b, "%-10s", mech)
		for _, wl := range Table2Order {
			c, ok := t.Cell(mech, wl)
			if !ok {
				mark := "-"
				for _, g := range t.Gaps() {
					if g.Mechanism == mech && g.Workload == wl {
						mark, gapped = "ERR", true
					}
				}
				fmt.Fprintf(&b, " %26s", mark)
				continue
			}
			fmt.Fprintf(&b, " %12s (paper %5s)",
				pct(c.Overhead), pct(c.PaperOverhead))
		}
		b.WriteString("\n")
	}
	if gapped {
		b.WriteString("gaps (cells that failed and degraded):\n")
		for _, g := range t.Gaps() {
			fmt.Fprintf(&b, "  %s/%s: %s\n", g.Mechanism, g.Workload, g.Err)
		}
	}
	return b.String()
}
