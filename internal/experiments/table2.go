package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/pmu"
	"repro/internal/proc"
	"repro/internal/units"
	"repro/internal/workloads"
)

// Table2Cell is one measurement of the paper's Table 2: one sampling
// mechanism monitoring one benchmark on that mechanism's machine.
type Table2Cell struct {
	Mechanism string
	Workload  string
	Machine   string
	Base      units.Cycles
	Monitored units.Cycles
	// Overhead is (Monitored-Base)/Base, the parenthesised percentage
	// of Table 2.
	Overhead float64
	// PaperOverhead is the corresponding Table 2 percentage.
	PaperOverhead float64
}

// Table2 holds the full overhead matrix.
type Table2 struct {
	Cells []Table2Cell
}

// paperTable2 reproduces the percentages reported in Table 2.
var paperTable2 = map[string]map[string]float64{
	"IBS":      {"LULESH": 0.24, "AMG2006": 0.37, "Blackscholes": 0.06},
	"MRK":      {"LULESH": 0.05, "AMG2006": 0.07, "Blackscholes": 0.04},
	"PEBS":     {"LULESH": 0.45, "AMG2006": 0.52, "Blackscholes": 0.25},
	"DEAR":     {"LULESH": 0.07, "AMG2006": 0.12, "Blackscholes": 0.04},
	"PEBS-LL":  {"LULESH": 0.06, "AMG2006": 0.08, "Blackscholes": 0.03},
	"Soft-IBS": {"LULESH": 2.00, "AMG2006": 1.80, "Blackscholes": 0.30},
}

// table2Workloads builds the three Table 2 benchmarks. The paper
// adjusts benchmark inputs per machine ("the absolute execution time on
// different architectures is incomparable"); here one scaled input per
// benchmark serves all machines.
func table2Workloads(iters int) map[string]func() core.App {
	return map[string]func() core.App{
		"LULESH":       func() core.App { return workloads.NewLULESH(workloads.Params{Iters: iters}) },
		"AMG2006":      func() core.App { return workloads.NewAMG2006(workloads.Params{Iters: iters}) },
		"Blackscholes": func() core.App { return workloads.NewBlackscholes(workloads.Params{}) },
	}
}

// Table2Order lists workloads in the paper's column order.
var Table2Order = []string{"LULESH", "AMG2006", "Blackscholes"}

// RunTable2 measures monitoring overhead for every mechanism on its
// Table 1 machine, across the three benchmarks. iters scales workload
// length (0: defaults).
func RunTable2(iters int) (*Table2, error) {
	t := &Table2{}
	for _, mech := range pmu.Names() {
		m := MachineForMechanism(mech)
		for _, wl := range Table2Order {
			mk := table2Workloads(iters)[wl]
			cfg := BaseConfig(m, 0, proc.Compact)
			cfg.Mechanism = mech
			ov, err := core.MeasureOverhead(cfg, mk)
			if err != nil {
				return nil, fmt.Errorf("table2 %s/%s: %w", mech, wl, err)
			}
			t.Cells = append(t.Cells, Table2Cell{
				Mechanism:     mech,
				Workload:      wl,
				Machine:       m.Name,
				Base:          ov.Base,
				Monitored:     ov.Monitored,
				Overhead:      ov.Percent(),
				PaperOverhead: paperTable2[mech][wl],
			})
		}
	}
	return t, nil
}

// Cell returns the cell for a mechanism/workload pair.
func (t *Table2) Cell(mech, wl string) (Table2Cell, bool) {
	for _, c := range t.Cells {
		if c.Mechanism == mech && c.Workload == wl {
			return c, true
		}
	}
	return Table2Cell{}, false
}

// Overhead returns the measured overhead fraction for a pair (0 if
// absent).
func (t *Table2) Overhead(mech, wl string) float64 {
	c, _ := t.Cell(mech, wl)
	return c.Overhead
}

// Render prints the matrix in the paper's layout, with the paper's
// percentages alongside for comparison.
func (t *Table2) Render() string {
	var b strings.Builder
	b.WriteString("Table 2. Runtime overhead of monitoring (measured vs paper).\n")
	fmt.Fprintf(&b, "%-10s", "Method")
	for _, wl := range Table2Order {
		fmt.Fprintf(&b, " %26s", wl)
	}
	b.WriteString("\n")
	for _, mech := range pmu.Names() {
		fmt.Fprintf(&b, "%-10s", mech)
		for _, wl := range Table2Order {
			c, ok := t.Cell(mech, wl)
			if !ok {
				fmt.Fprintf(&b, " %26s", "-")
				continue
			}
			fmt.Fprintf(&b, " %12s (paper %5s)",
				pct(c.Overhead), pct(c.PaperOverhead))
		}
		b.WriteString("\n")
	}
	return b.String()
}
