package experiments

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
	"repro/internal/sched"
	"repro/internal/workloads"
)

// Claim is one paper-shape assertion with its measured outcome.
type Claim struct {
	// ID ties the claim to its artifact (F3, S1, ...).
	ID string
	// Description states the paper's claim.
	Description string
	// Pass reports whether the measured shape matches.
	Pass bool
	// Detail carries the measured values.
	Detail string
}

// Scorecard is the reproduction checklist: every claim from the
// paper's evaluation that this repository undertakes to reproduce,
// evaluated against a fresh run.
type Scorecard struct {
	Claims []Claim
}

// AllPass reports whether every claim holds.
func (s *Scorecard) AllPass() bool {
	for _, c := range s.Claims {
		if !c.Pass {
			return false
		}
	}
	return true
}

// Passed counts passing claims.
func (s *Scorecard) Passed() int {
	n := 0
	for _, c := range s.Claims {
		if c.Pass {
			n++
		}
	}
	return n
}

func (s *Scorecard) add(id, desc string, pass bool, detail string) {
	s.Claims = append(s.Claims, Claim{ID: id, Description: desc, Pass: pass, Detail: detail})
}

// RunScorecard evaluates the full checklist. iters scales the heavier
// workload runs (0: the experiment defaults).
//
// The twelve experiments behind the claims are mutually independent,
// so they run as one top-level sweep (each experiment in turn fans its
// own cells out — the scheduler is shared, not nested pools). The
// claims are appended afterwards in the fixed artifact order, so the
// rendered scorecard is identical for any worker count.
func RunScorecard(iters int) (*Scorecard, error) {
	defer timedExperiment("scorecard")()
	s := &Scorecard{}

	f3iters := iters
	if f3iters == 0 {
		f3iters = 4
	}
	f45iters := iters
	if f45iters == 0 {
		f45iters = 4
	}
	s1iters := iters
	if s1iters == 0 {
		s1iters = 4
	}

	var (
		f1      *Figure1Result
		f2      *Figure2Result
		f3      *Figure3Result
		f45     *Figures45Result
		f89     *Figures89Result
		f10     *Figure10Result
		amd, p7 *SpeedupResult
		amg     *SpeedupResult
		bs      *SpeedupResult
		umt     *SpeedupResult
		t2      *Table2
		a1      *AblationPeriodResult
	)
	// Each task writes its own result variable; sched.Map's completion
	// barrier publishes them to this goroutine.
	tasks := []func() error{
		func() (err error) { f1, err = RunFigure1(); return },
		func() (err error) { f2, err = RunFigure2(); return },
		func() (err error) { f3, err = RunFigure3(f3iters); return },
		func() (err error) { f45, err = RunFigures47(f45iters); return },
		func() (err error) { f89, err = RunFigures89(0); return },
		func() (err error) { f10, err = RunFigure10(0); return },
		func() (err error) { amd, p7, err = RunSpeedupLULESH(s1iters); return },
		func() (err error) { amg, err = RunSpeedupAMG(iters); return },
		func() (err error) { bs, err = RunSpeedupBlackscholes(0); return },
		func() (err error) { umt, err = RunSpeedupUMT(0); return },
		func() (err error) { t2, err = RunTable2(2); return },
		func() (err error) { a1, err = RunAblationPeriod(); return },
	}
	if _, err := sched.Map(len(tasks), func(i int) (struct{}, error) {
		return struct{}{}, tasks[i]()
	}); err != nil {
		return nil, err
	}

	// F1 — the three distributions.
	s.add("F1", "co-located < interleaved < centralised (time)",
		f1.Rows[2].Time < f1.Rows[1].Time && f1.Rows[1].Time < f1.Rows[0].Time,
		fmt.Sprintf("times %d / %d / %d", f1.Rows[2].Time, f1.Rows[1].Time, f1.Rows[0].Time))
	s.add("F1", "centralised distribution saturates one controller",
		f1.Rows[0].Imbalance > 4 && f1.Rows[1].Imbalance < 1.5,
		fmt.Sprintf("imbalance %.1fx vs %.1fx", f1.Rows[0].Imbalance, f1.Rows[1].Imbalance))

	// F2 — first-touch trapping.
	s.add("F2", "one trapped fault per protected page, refault-free",
		f2.RefaultFree && len(f2.Events) == f2.ProtectedPages,
		fmt.Sprintf("%d faults / %d pages", len(f2.Events), f2.ProtectedPages))

	// F3 — LULESH.
	s.add("F3", "LULESH lpi_NUMA significant (paper 0.466)",
		f3.Significant && f3.LPI > metrics.SignificanceThreshold && f3.LPI < 1.2,
		fmt.Sprintf("lpi %.3f", f3.LPI))
	s.add("F3", "z: M_r ~ 7x M_l (eight domains, one holds the data)",
		f3.ZMrOverMl > 4 && f3.ZMrOverMl < 12,
		fmt.Sprintf("M_r/M_l %.1f", f3.ZMrOverMl))
	s.add("F3", "z: all accesses target NUMA_NODE0",
		f3.ZNode0Share > 0.999, fmt.Sprintf("share %.3f", f3.ZNode0Share))
	s.add("F3", "z: ascending per-thread staircase", f3.ZStaircase, "")
	s.add("F3", "z: serial first touch pinpointed in the init code",
		f3.ZFirstTouchSerial && f3.ZFirstTouchFunc != "",
		f3.ZFirstTouchFunc)
	s.add("F3", "nodelist (static) carries heavy remote latency (paper 20.3%)",
		f3.NodelistIsStatic && f3.NodelistRemoteShare > 0.05,
		fmt.Sprintf("share %.1f%%", 100*f3.NodelistRemoteShare))

	// F4-F7 — AMG patterns.
	s.add("F45", "AMG lpi worse than LULESH's (paper 0.92 vs 0.466)",
		f45.LPI > f3.LPI, fmt.Sprintf("%.3f vs %.3f", f45.LPI, f3.LPI))
	s.add("F45", "RAP_diag_data: whole-program blurred, relax region regular",
		!f45.Data.WholeStaircase && f45.Data.RegionStaircase, "")
	s.add("F45", "RAP_diag_j: same contrast",
		!f45.J.WholeStaircase && f45.J.RegionStaircase, "")
	s.add("F45", "relax dominates both variables' latency (paper 74.2%/73.6%)",
		f45.Data.RegionLatShare > 0.5 && f45.J.RegionLatShare > 0.5,
		fmt.Sprintf("%.0f%% / %.0f%%", 100*f45.Data.RegionLatShare, 100*f45.J.RegionLatShare))

	// F8-F9 — Blackscholes.
	s.add("F89", "Blackscholes lpi below the 0.1 threshold (paper 0.035)",
		!f89.Significant && f89.LPI < metrics.SignificanceThreshold,
		fmt.Sprintf("lpi %.3f", f89.LPI))
	s.add("F89", "buffer: staggered overlapping SoA ranges (Figure 8)",
		f89.SoAOverlap > 0.5 && !f89.SoAStaircase,
		fmt.Sprintf("overlap %.2f", f89.SoAOverlap))
	s.add("F89", "AoS regroup yields disjoint ranges (Figure 9b)",
		f89.AoSStaircase, "")

	// F10 — UMT.
	s.add("F10", "majority of sampled L3 misses remote (paper 86%)",
		f10.RemoteMissFraction > 0.5,
		fmt.Sprintf("%.0f%%", 100*f10.RemoteMissFraction))
	s.add("F10", "STime: staggered round-robin plane pattern",
		f10.Staggered, fmt.Sprintf("overlap %.2f", f10.Overlap))

	// S1 — LULESH speedups.
	ab, ai := amd.Speedup(workloads.BlockWise), amd.Speedup(workloads.Interleave)
	s.add("S1", "AMD: block-wise beats interleave beats baseline (paper +25%/+13%)",
		ab > ai && ai > 0, fmt.Sprintf("%s vs %s", pct(ab), pct(ai)))
	pb, pi := p7.Speedup(workloads.BlockWise), p7.Speedup(workloads.Interleave)
	s.add("S1", "POWER7: block-wise helps, interleave hurts (paper +7.5%/-16.4%)",
		pb > 0 && pi < 0, fmt.Sprintf("%s vs %s", pct(pb), pct(pi)))

	// S2 — AMG reductions.
	rg, ri := amg.Reduction(workloads.Guided), amg.Reduction(workloads.Interleave)
	s.add("S2", "guided mix halves the solver time (paper 51%)",
		rg > 0.35 && rg < 0.65, fmt.Sprintf("%.0f%%", 100*rg))
	s.add("S2", "guided beats interleave-everything (paper 51% vs 36%)",
		rg > ri, fmt.Sprintf("%.0f%% vs %.0f%%", 100*rg, 100*ri))

	// S3 — Blackscholes negative control.
	bsGain := bs.Speedup(workloads.ParallelInit)
	s.add("S3", "fix gain marginal, far below the significant codes (paper <0.1%)",
		bsGain < 0.08 && bsGain < ab/2, pct(bsGain))

	// S4 — UMT.
	ug := umt.Speedup(workloads.ParallelInit)
	s.add("S4", "parallel-init of STime yields a mid-single-digit gain (paper +7%)",
		ug > 0.02 && ug < 0.15, pct(ug))

	// T2 — overhead ordering (cheapest workload pair for speed).
	ordering := true
	for _, wl := range Table2Order {
		soft, pebs, ibs := t2.Overhead("Soft-IBS", wl), t2.Overhead("PEBS", wl), t2.Overhead("IBS", wl)
		if !(soft > pebs && pebs > ibs) {
			ordering = false
		}
		for _, cheap := range []string{"MRK", "DEAR", "PEBS-LL"} {
			if !(ibs > t2.Overhead(cheap, wl)) {
				ordering = false
			}
		}
	}
	s.add("T2", "overhead ordering: Soft-IBS >> PEBS > IBS > {MRK, DEAR, PEBS-LL}",
		ordering, "")

	// A1 — estimator fidelity.
	s.add("A1", "Equation 2 tracks exact lpi at dense sampling",
		a1.Rows[0].Ratio > 0.8 && a1.Rows[0].Ratio < 1.25,
		fmt.Sprintf("ratio %.2f", a1.Rows[0].Ratio))

	return s, nil
}

// Render prints the checklist.
func (s *Scorecard) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Reproduction scorecard: %d/%d claims hold.\n", s.Passed(), len(s.Claims))
	for _, c := range s.Claims {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
		}
		detail := ""
		if c.Detail != "" {
			detail = "  [" + c.Detail + "]"
		}
		fmt.Fprintf(&b, "  %s %-4s %s%s\n", mark, c.ID, c.Description, detail)
	}
	return b.String()
}
