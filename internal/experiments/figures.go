package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/omp"
	"repro/internal/proc"
	"repro/internal/sched"
	"repro/internal/topology"
	"repro/internal/units"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// distApp is the Figure 1 microbenchmark: one large array, distributed
// one of three ways, processed block-per-thread by the whole team.
type distApp struct {
	prog   *isa.Program
	fnMain isa.FuncID
	fnWork isa.FuncID
	sAlloc isa.SiteID
	sInit  isa.SiteID
	sLoad  isa.SiteID

	elems  int
	iters  int
	policy vm.Policy
}

func newDistApp(elems, iters int, policy vm.Policy) *distApp {
	a := &distApp{elems: elems, iters: iters, policy: policy}
	p := isa.NewProgram("figure1")
	a.fnMain = p.AddFunc("main", "fig1.c", 1)
	a.fnWork = p.AddFunc("process._omp", "fig1.c", 20)
	a.sAlloc = p.AddSite(a.fnMain, 3, isa.KindAlloc)
	a.sInit = p.AddSite(a.fnMain, 5, isa.KindStore)
	a.sLoad = p.AddSite(a.fnWork, 22, isa.KindLoad)
	a.prog = p
	return a
}

func (a *distApp) Name() string         { return "figure1-dist" }
func (a *distApp) Binary() *isa.Program { return a.prog }

func (a *distApp) Run(e *proc.Engine) {
	const stride = 64
	var data vm.Region
	omp.Serial(e, a.fnMain, "main", func(c *proc.Ctx) {
		data = c.Alloc(a.sAlloc, "data", uint64(a.elems)*stride, a.policy)
		for i := 0; i < a.elems; i++ {
			c.Store(a.sInit, data.Base+uint64(i)*stride)
		}
	})
	e.Mark(workloads.ROIMark)
	for it := 0; it < a.iters; it++ {
		omp.ParallelFor(e, a.fnWork, "process", a.elems, omp.Static{}, func(c *proc.Ctx, i int) {
			c.Load(a.sLoad, data.Base+uint64(i)*stride)
			c.Compute(20)
		})
	}
}

// Figure1Row is one distribution strategy's outcome.
type Figure1Row struct {
	Distribution string
	// Time is the processing-phase runtime.
	Time units.Cycles
	// RemoteFraction is the fraction of accesses that were remote.
	RemoteFraction float64
	// Imbalance is max/mean of per-domain DRAM requests.
	Imbalance float64
	// Speedup vs the centralised distribution.
	Speedup float64
}

// Figure1Result compares the paper's three distributions.
type Figure1Result struct {
	Machine string
	Rows    []Figure1Row
}

// RunFigure1 reproduces Figure 1's comparison: all data in one domain
// (latency and bandwidth problems), interleaved (balanced requests,
// mostly remote), and co-located blocks (local, balanced — the best).
func RunFigure1() (*Figure1Result, error) {
	m := topology.MagnyCours48()
	doms := make([]topology.DomainID, m.NumDomains())
	for i := range doms {
		doms[i] = topology.DomainID(i)
	}
	cases := []struct {
		name   string
		policy vm.Policy
	}{
		{"all-in-domain-1 (centralised)", vm.OnNode{Domain: 0}},
		{"interleaved", vm.Interleaved{}},
		{"co-located blocks", vm.Blocked{Domains: doms}},
	}
	// One cell per distribution; speedups are anchored to the
	// centralised case (row 0) after all three return.
	rows, err := sched.Map(len(cases), func(i int) (Figure1Row, error) {
		cse := cases[i]
		cfg := BaseConfig(m, 0, proc.Compact)
		e, err := core.Run(cfg, newDistApp(48*512, 4, cse.policy))
		if err != nil {
			return Figure1Row{}, err
		}
		row := Figure1Row{
			Distribution: cse.name,
			Time:         e.TimeSince(workloads.ROIMark),
			Imbalance:    e.Memory().Imbalance(),
		}
		if total := e.TotalMemAccesses(); total > 0 {
			row.RemoteFraction = float64(e.TotalRemoteAccesses()) / float64(total)
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	baseTime := rows[0].Time
	for i := range rows {
		if rows[i].Time > 0 {
			rows[i].Speedup = float64(baseTime)/float64(rows[i].Time) - 1
		}
	}
	return &Figure1Result{Machine: m.Name, Rows: rows}, nil
}

// Render prints the comparison.
func (r *Figure1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1. Three data distributions on %s.\n", r.Machine)
	fmt.Fprintf(&b, "%-32s %12s %10s %10s %9s\n",
		"Distribution", "Time(cyc)", "Remote%", "Imbalance", "Speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-32s %12d %9.1f%% %9.2fx %9s\n",
			row.Distribution, uint64(row.Time), 100*row.RemoteFraction,
			row.Imbalance, pct(row.Speedup))
	}
	b.WriteString("(centralised: remote AND contended; interleaved: balanced but remote;\n")
	b.WriteString(" co-located: local and balanced — the paper's preferred distribution)\n")
	return b.String()
}

// Figure2Event is one trapped first touch.
type Figure2Event struct {
	Page    uint64
	Thread  int
	Domain  topology.DomainID
	Func    string
	IsWrite bool
}

// Figure2Result demonstrates the Section 6 trapping protocol.
type Figure2Result struct {
	ProtectedPages int
	Events         []Figure2Event
	// RefaultFree is true if re-touching trapped pages produced no
	// further events (protection restored exactly once per page).
	RefaultFree bool
}

// RunFigure2 executes the Figure 2 protocol on a demo program: install
// handler, allocate, protect interior pages, let a parallel loop touch
// them, record one trap per page with code- and data-centric context.
func RunFigure2() (*Figure2Result, error) {
	m := topology.New(topology.Config{
		Name: "fig2", NumDomains: 4, CPUsPerDomain: 2,
		MemoryPerDomain: units.GiB,
	})
	prog := isa.NewProgram("figure2")
	fnMain := prog.AddFunc("main", "fig2.c", 1)
	fnInit := prog.AddFunc("init_array._omp", "fig2.c", 10)
	sAlloc := prog.AddSite(fnMain, 3, isa.KindAlloc)
	sInit := prog.AddSite(fnInit, 12, isa.KindStore)

	cfg := core.Config{Machine: m, TrackFirstTouch: true, Mechanism: "IBS"}
	app := &fig2App{prog: prog, fnMain: fnMain, fnInit: fnInit, sAlloc: sAlloc, sInit: sInit}
	prof, err := core.Analyze(cfg, app)
	if err != nil {
		return nil, err
	}
	// The demo is tiny, so it may produce no address samples; read
	// the variable straight from the registry and the first-touch
	// recorder (sampling and trapping are independent subsystems).
	v, ok := prof.Registry.Lookup("array")
	if !ok {
		return nil, fmt.Errorf("figure2: array not registered")
	}
	res := &Figure2Result{ProtectedPages: prof.FirstTouch.ProtectedPages(v.Region)}
	events := prof.FirstTouch.Events(v.Region)
	for _, ev := range events {
		name := "?"
		if len(ev.Path) > 0 {
			if fn, ok := prog.Func(ev.Path[len(ev.Path)-1].Fn); ok {
				name = fn.Name
			}
		}
		res.Events = append(res.Events, Figure2Event{
			Page: ev.Page, Thread: ev.Thread, Domain: ev.Domain,
			Func: name, IsWrite: ev.IsWrite,
		})
	}
	res.RefaultFree = len(events) == res.ProtectedPages
	return res, nil
}

type fig2App struct {
	prog           *isa.Program
	fnMain, fnInit isa.FuncID
	sAlloc, sInit  isa.SiteID
}

func (a *fig2App) Name() string         { return "figure2-firsttouch" }
func (a *fig2App) Binary() *isa.Program { return a.prog }

func (a *fig2App) Run(e *proc.Engine) {
	ps := uint64(units.PageSize)
	var arr vm.Region
	omp.Serial(e, a.fnMain, "main", func(c *proc.Ctx) {
		arr = c.Alloc(a.sAlloc, "array", ps*16, nil)
	})
	// Parallel initialisation: several threads fault concurrently, as
	// Section 6's last paragraph anticipates.
	omp.ParallelFor(e, a.fnInit, "init_array", 16, omp.Static{}, func(c *proc.Ctx, i int) {
		c.Store(a.sInit, arr.Base+uint64(i)*ps)
		c.Store(a.sInit, arr.Base+uint64(i)*ps+8) // re-touch: no second fault
	})
}

// Render prints the trap log.
func (r *Figure2Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 2. First-touch trapping via page protection.\n")
	fmt.Fprintf(&b, "protected %d interior pages; trapped %d first touches; refault-free: %v\n",
		r.ProtectedPages, len(r.Events), r.RefaultFree)
	for _, ev := range r.Events {
		op := "read"
		if ev.IsWrite {
			op = "write"
		}
		fmt.Fprintf(&b, "  page %6d first %s by thread %2d (domain %d) in %s\n",
			ev.Page, op, ev.Thread, ev.Domain, ev.Func)
	}
	return b.String()
}
