package experiments

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/proc"
	"repro/internal/profio"
	"repro/internal/sched"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// The scheduler's contract is that parallelism changes wall-clock and
// nothing else: every experiment run twice with the same seed — and at
// 1 worker vs 8 — must yield identical rendered tables, and a profiled
// run must yield byte-identical profio measurement files. These tests
// hash-compare the real artifacts, so any nondeterminism smuggled in by
// a future port (map iteration, shared RNG, result reordering) fails
// loudly here rather than as an unreproducible report.

// atWorkers runs f under a fixed worker count, restoring the previous
// setting afterwards.
func atWorkers(t *testing.T, n int, f func() (string, error)) string {
	t.Helper()
	defer sched.SetWorkers(sched.SetWorkers(n))
	out, err := f()
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func hash(s string) string { return fmt.Sprintf("%x", sha256.Sum256([]byte(s))) }

func TestExperimentsDeterministicAcrossWorkers(t *testing.T) {
	cases := []struct {
		name  string
		heavy bool // skipped under -race, to fit the default test timeout
		run   func() (string, error)
	}{
		{"Table2", true, func() (string, error) {
			r, err := RunTable2(1)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"AblationPeriod", false, func() (string, error) {
			r, err := RunAblationPeriod()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"AblationBins", false, func() (string, error) {
			r, err := RunAblationBins()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"AblationDynamic", false, func() (string, error) {
			r, err := RunAblationDynamic()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"Figure1", false, func() (string, error) {
			r, err := RunFigure1()
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"Figure3", true, func() (string, error) {
			r, err := RunFigure3(2)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"Figures89", false, func() (string, error) {
			r, err := RunFigures89(0)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
		{"Robustness", true, func() (string, error) {
			r, err := RunRobustness(0)
			if err != nil {
				return "", err
			}
			return r.Render(), nil
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if raceEnabled && c.heavy {
				t.Skip("heavy sweep trimmed under -race (see race_off_test.go)")
			}
			serial := atWorkers(t, 1, c.run)
			again := atWorkers(t, 1, c.run)
			if hash(serial) != hash(again) {
				t.Fatalf("serial run is not repeatable:\n--- first\n%s\n--- second\n%s", serial, again)
			}
			parallel := atWorkers(t, 8, c.run)
			if hash(serial) != hash(parallel) {
				t.Fatalf("-parallel 8 changed the rendering:\n--- serial\n%s\n--- parallel\n%s", serial, parallel)
			}
		})
	}
}

// TestProfioBytesDeterministicAcrossWorkers pins the stronger claim:
// the serialised measurement file — every section, CRC included — is
// byte-identical whether the cell ran alone or as one of eight
// concurrent cells.
func TestProfioBytesDeterministicAcrossWorkers(t *testing.T) {
	cfg := BaseConfig(topology.MagnyCours48(), 0, proc.Compact)
	cfg.Mechanism = "IBS"
	analyze := func() ([]byte, error) {
		prof, err := core.Analyze(cfg, workloads.NewLULESH(workloads.Params{Iters: 2}))
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := profio.Save(&buf, prof); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}

	ref, err := analyze()
	if err != nil {
		t.Fatal(err)
	}
	again, err := analyze()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref, again) {
		t.Fatal("two serial runs of the same config produced different measurement bytes")
	}
	cells := 8
	if raceEnabled {
		cells = 3 // still concurrent, just fewer repeats of the same cell
	}
	outs, err := sched.MapWith(cells, cells, func(int) ([]byte, error) { return analyze() })
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range outs {
		if !bytes.Equal(ref, out) {
			t.Fatalf("concurrent cell %d produced different measurement bytes (len %d vs %d)",
				i, len(out), len(ref))
		}
	}
}

// TestChaosBytesDeterministicAcrossWorkers extends the byte contract
// to fault injection: a seeded chaos plan belongs to its cell, so the
// injected fault sequence — and therefore the degraded measurement
// file — must not depend on how many sibling cells run beside it.
func TestChaosBytesDeterministicAcrossWorkers(t *testing.T) {
	cfg := BaseConfig(topology.MagnyCours48(), 0, proc.Compact)
	cfg.Mechanism = "IBS"
	analyze := func() ([]byte, error) {
		chaosCfg := cfg
		chaosCfg.Faults = &faults.Plan{Seed: 42, DropRate: 0.2, CorruptRate: 0.02}
		prof, err := core.Analyze(chaosCfg, workloads.NewLULESH(workloads.Params{Iters: 2}))
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := profio.Save(&buf, prof); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	ref, err := analyze()
	if err != nil {
		t.Fatal(err)
	}
	cells := 4
	if raceEnabled {
		cells = 2
	}
	outs, err := sched.MapWith(cells, cells, func(int) ([]byte, error) { return analyze() })
	if err != nil {
		t.Fatal(err)
	}
	for i, out := range outs {
		if !bytes.Equal(ref, out) {
			t.Fatalf("concurrent chaos cell %d diverged from the serial reference", i)
		}
	}
}
