package experiments

import (
	"fmt"
	"strings"

	"repro/internal/addrcentric"
	"repro/internal/core"
	"repro/internal/proc"
	"repro/internal/sched"
	"repro/internal/view"
	"repro/internal/workloads"
)

// Figure3Result is the LULESH case study (Section 8.1 / Figure 3): the
// whole-program metrics and the z variable's signatures under IBS on
// the AMD machine.
type Figure3Result struct {
	Profile *core.Profile

	LPI         float64 // paper: 0.466
	PaperLPI    float64
	Significant bool

	// Z signatures.
	ZMrOverMl    float64 // paper: ~7
	ZNode0Share  float64 // paper: 1.0 (all accesses to domain 0)
	ZRemoteShare float64 // paper: 0.113 of total remote latency
	ZStaircase   bool    // Figure 3's per-thread pattern

	// nodelist (static) signatures; paper: 20.3% of remote latency.
	NodelistRemoteShare float64
	NodelistIsStatic    bool

	// First-touch pinpointing.
	ZFirstTouchSerial bool
	ZFirstTouchFunc   string
}

// RunFigure3 profiles LULESH with IBS on Magny-Cours and extracts the
// Figure 3 signatures.
func RunFigure3(iters int) (*Figure3Result, error) {
	cfg := BaseConfig(MachineForMechanism("IBS"), 0, proc.Compact)
	cfg.Mechanism = "IBS"
	cfg.TrackFirstTouch = true
	prof, err := core.Analyze(cfg, workloads.NewLULESH(workloads.Params{Iters: iters}))
	if err != nil {
		return nil, err
	}
	res := &Figure3Result{
		Profile:     prof,
		LPI:         prof.Totals.LPI,
		PaperLPI:    0.466,
		Significant: prof.Totals.Significant,
	}
	if zp, ok := prof.VarByName("z"); ok {
		if zp.Ml > 0 {
			res.ZMrOverMl = zp.Mr / zp.Ml
		}
		if total := zp.Ml + zp.Mr; total > 0 {
			res.ZNode0Share = zp.PerDomain[0] / total
		}
		res.ZRemoteShare = zp.RemoteLatShare
		res.ZFirstTouchSerial = len(zp.FirstTouchThreads) == 1
		if len(zp.FirstTouchPath) > 0 {
			if fn, ok := prof.Binary.Func(zp.FirstTouchPath[len(zp.FirstTouchPath)-1].Fn); ok {
				res.ZFirstTouchFunc = fn.Name
			}
		}
		if v, ok := prof.Registry.Lookup("z"); ok {
			if pat, ok := prof.Patterns.Pattern(v, "CalcForceForNodes"); ok {
				res.ZStaircase = pat.IsStaircase(0.15)
			}
		}
	}
	if np, ok := prof.VarByName("nodelist"); ok {
		res.NodelistRemoteShare = np.RemoteLatShare
		res.NodelistIsStatic = np.Var.Kind.String() == "static"
	}
	return res, nil
}

// Render prints the case study, including the address-centric plot.
func (r *Figure3Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 3 / Section 8.1: LULESH under IBS on Magny-Cours.\n")
	fmt.Fprintf(&b, "lpi_NUMA %.3f (paper %.3f), significant: %v\n", r.LPI, r.PaperLPI, r.Significant)
	fmt.Fprintf(&b, "z: M_r/M_l %.1f (paper ~7), NUMA_NODE0 share %.0f%% (paper 100%%), remote-latency share %.1f%% (paper 11.3%%)\n",
		r.ZMrOverMl, 100*r.ZNode0Share, 100*r.ZRemoteShare)
	fmt.Fprintf(&b, "z staircase pattern: %v; first touch serial: %v in %q\n",
		r.ZStaircase, r.ZFirstTouchSerial, r.ZFirstTouchFunc)
	fmt.Fprintf(&b, "nodelist (static: %v): remote-latency share %.1f%% (paper 20.3%%)\n",
		r.NodelistIsStatic, 100*r.NodelistRemoteShare)
	if v, ok := r.Profile.Registry.Lookup("z"); ok {
		if pat, ok := r.Profile.Patterns.Pattern(v, "CalcForceForNodes"); ok {
			b.WriteString(view.AddressCentric(pat, 48))
		}
	}
	b.WriteString(view.VarTable(r.Profile, 8))
	return b.String()
}

// PatternContrast captures the Figures 4/5 (and 6/7) contrast: one
// variable's whole-program pattern vs its pattern in the dominant
// parallel region.
type PatternContrast struct {
	Variable string
	Region   string

	WholeStaircase  bool    // expect false (Figures 4, 6)
	RegionStaircase bool    // expect true (Figures 5, 7)
	RegionLatShare  float64 // paper: 74.2% (data), 73.6% (j)
	PaperLatShare   float64

	WholePlot  string
	RegionPlot string
}

// Figures45Result bundles the AMG pattern contrasts and profile.
type Figures45Result struct {
	Profile *core.Profile
	// Data is RAP_diag_data (Figures 4 vs 5); J is RAP_diag_j
	// (Figures 6 vs 7).
	Data PatternContrast
	J    PatternContrast

	LPI      float64 // paper: > 0.92
	PaperLPI float64
}

// RunFigures47 profiles AMG2006 with IBS and extracts the whole-program
// vs region-scoped pattern contrasts for both RAP_diag arrays.
func RunFigures47(iters int) (*Figures45Result, error) {
	cfg := BaseConfig(MachineForMechanism("IBS"), 0, proc.Compact)
	cfg.Mechanism = "IBS"
	prof, err := core.Analyze(cfg, workloads.NewAMG2006(workloads.Params{Iters: iters}))
	if err != nil {
		return nil, err
	}
	res := &Figures45Result{Profile: prof, LPI: prof.Totals.LPI, PaperLPI: 0.92}
	var errs []string
	contrast := func(name string, paperShare float64) PatternContrast {
		pc := PatternContrast{Variable: name, Region: "hypre_BoomerAMGRelax", PaperLatShare: paperShare}
		v, ok := prof.Registry.Lookup(name)
		if !ok {
			errs = append(errs, name+" not registered")
			return pc
		}
		whole, okW := prof.Patterns.Pattern(v, addrcentric.WholeProgram)
		region, okR := prof.Patterns.Pattern(v, "hypre_BoomerAMGRelax")
		if !okW || !okR {
			errs = append(errs, name+" patterns missing")
			return pc
		}
		pc.WholeStaircase = whole.IsStaircase(0.15)
		pc.RegionStaircase = region.IsStaircase(0.15)
		if t := whole.TotalLatency(); t > 0 {
			pc.RegionLatShare = float64(region.TotalLatency()) / float64(t)
		}
		pc.WholePlot = view.AddressCentric(whole, 48)
		pc.RegionPlot = view.AddressCentric(region, 48)
		return pc
	}
	res.Data = contrast("RAP_diag_data", 0.742)
	res.J = contrast("RAP_diag_j", 0.736)
	if len(errs) > 0 {
		return nil, fmt.Errorf("figures 4-7: %s", strings.Join(errs, "; "))
	}
	return res, nil
}

// Render prints both contrasts with their plots.
func (r *Figures45Result) Render() string {
	var b strings.Builder
	b.WriteString("Figures 4-7 / Section 8.2: AMG2006 under IBS on Magny-Cours.\n")
	fmt.Fprintf(&b, "lpi_NUMA %.3f (paper > %.2f)\n", r.LPI, r.PaperLPI)
	for _, pc := range []PatternContrast{r.Data, r.J} {
		fmt.Fprintf(&b, "\n%s: whole-program staircase=%v (expect false), %s staircase=%v (expect true)\n",
			pc.Variable, pc.WholeStaircase, pc.Region, pc.RegionStaircase)
		fmt.Fprintf(&b, "region latency share %.1f%% (paper %.1f%%)\n",
			100*pc.RegionLatShare, 100*pc.PaperLatShare)
		b.WriteString("whole program:\n")
		b.WriteString(pc.WholePlot)
		b.WriteString("region only:\n")
		b.WriteString(pc.RegionPlot)
	}
	return b.String()
}

// Figures89Result captures Blackscholes' buffer patterns (Section 8.3):
// staggered overlapping ranges under the SoA layout (Figure 8/9a) and
// disjoint ranges after the AoS regroup (Figure 9b), plus the lpi
// verdict.
type Figures89Result struct {
	LPI          float64 // paper: 0.035
	EstimatedLPI float64 // Equation 2 estimate
	PaperLPI     float64
	Significant  bool // expect false

	BufferLatShare float64 // paper: 0.516

	SoAOverlap   float64 // large
	SoAStaircase bool    // false
	AoSOverlap   float64 // small
	AoSStaircase bool    // true

	SoAPlot, AoSPlot string
}

// RunFigures89 profiles Blackscholes under both layouts.
func RunFigures89(runs int) (*Figures89Result, error) {
	cfg := BaseConfig(MachineForMechanism("IBS"), 0, proc.Compact)
	cfg.Mechanism = "IBS"
	res := &Figures89Result{PaperLPI: 0.035}

	// The SoA and AoS layouts are two independent cells.
	profs, err := sched.Map(2, func(i int) (*core.Profile, error) {
		app := workloads.NewBlackscholes(workloads.Params{Iters: runs})
		app.AoS = i == 1
		return core.Analyze(cfg, app)
	})
	if err != nil {
		return nil, err
	}
	prof := profs[0]
	res.LPI = prof.Totals.LPIExact
	res.Significant = prof.Totals.Significant
	res.EstimatedLPI = prof.Totals.LPI
	if bp, ok := prof.VarByName("buffer"); ok {
		res.BufferLatShare = bp.RemoteLatShare
	}
	if v, ok := prof.Registry.Lookup("buffer"); ok {
		if pat, ok := prof.Patterns.Pattern(v, "bs_thread"); ok {
			res.SoAOverlap = pat.MeanOverlap()
			res.SoAStaircase = pat.IsStaircase(0.1)
			res.SoAPlot = view.AddressCentric(pat, 48)
		}
	}

	prof2 := profs[1]
	if v, ok := prof2.Registry.Lookup("buffer"); ok {
		if pat, ok := prof2.Patterns.Pattern(v, "bs_thread"); ok {
			res.AoSOverlap = pat.MeanOverlap()
			res.AoSStaircase = pat.IsStaircase(0.15)
			res.AoSPlot = view.AddressCentric(pat, 48)
		}
	}
	return res, nil
}

// Render prints the layout contrast.
func (r *Figures89Result) Render() string {
	var b strings.Builder
	b.WriteString("Figures 8-9 / Section 8.3: Blackscholes buffer layouts.\n")
	fmt.Fprintf(&b, "lpi_NUMA %.3f (paper %.3f) — significant: %v (expect false: below the 0.1 threshold)\n",
		r.LPI, r.PaperLPI, r.Significant)
	fmt.Fprintf(&b, "buffer share of NUMA latency: %.1f%% (paper 51.6%%)\n", 100*r.BufferLatShare)
	fmt.Fprintf(&b, "\nSoA sections (Figure 9a): overlap %.2f, staircase %v (staggered, overlapping)\n",
		r.SoAOverlap, r.SoAStaircase)
	b.WriteString(r.SoAPlot)
	fmt.Fprintf(&b, "\nAoS regroup (Figure 9b): overlap %.2f, staircase %v (disjoint per-thread ranges)\n",
		r.AoSOverlap, r.AoSStaircase)
	b.WriteString(r.AoSPlot)
	return b.String()
}

// Figure10Result is the UMT2013 case study under MRK on POWER7
// (Section 8.4).
type Figure10Result struct {
	// RemoteMissFraction is the fraction of sampled L3 misses that
	// went remote; paper: 86%.
	RemoteMissFraction float64
	PaperRemoteMissFrc float64
	// STimeMrShare is STime's share of sampled remote accesses;
	// paper: 18.2% of remote accesses with much more traffic
	// elsewhere (here the remainder is STotal).
	STimeMrShare float64
	// Staggered reports the round-robin plane pattern (overlapping,
	// not a staircase).
	Staggered bool
	Overlap   float64
	Plot      string
	// KernelSource is the Figure 10 loop.
	KernelSource string
}

// RunFigure10 profiles UMT2013 with MRK, 32 scattered threads on
// POWER7.
func RunFigure10(iters int) (*Figure10Result, error) {
	cfg := BaseConfig(MachineForMechanism("MRK"), 32, proc.Scatter)
	cfg.Mechanism = "MRK"
	cfg.Period = 4
	prof, err := core.Analyze(cfg, workloads.NewUMT2013(workloads.Params{Iters: iters}))
	if err != nil {
		return nil, err
	}
	res := &Figure10Result{
		RemoteMissFraction: prof.Totals.RemoteFraction,
		PaperRemoteMissFrc: 0.86,
		KernelSource: "do c=1,nCorner\n" +
			"  do ig=1,Groups\n" +
			"    source=Z%STotal(ig,c)+Z%STime(ig,c,Angle)\n" +
			"  enddo\nenddo",
	}
	if st, ok := prof.VarByName("STime"); ok {
		res.STimeMrShare = st.MrShare
	}
	if v, ok := prof.Registry.Lookup("STime"); ok {
		if pat, ok := prof.Patterns.Pattern(v, "snswp3d"); ok {
			res.Staggered = !pat.IsStaircase(0.1) && pat.MeanOverlap() > 0.5
			res.Overlap = pat.MeanOverlap()
			res.Plot = view.AddressCentric(pat, 48)
		}
	}
	return res, nil
}

// Render prints the case study.
func (r *Figure10Result) Render() string {
	var b strings.Builder
	b.WriteString("Figure 10 / Section 8.4: UMT2013 under MRK on POWER7 (32 threads).\n")
	b.WriteString(r.KernelSource + "\n")
	fmt.Fprintf(&b, "remote fraction of sampled L3 misses: %.0f%% (paper %.0f%%)\n",
		100*r.RemoteMissFraction, 100*r.PaperRemoteMissFrc)
	fmt.Fprintf(&b, "STime share of remote accesses: %.0f%% (paper: 18.2%% of a much wider mix)\n",
		100*r.STimeMrShare)
	fmt.Fprintf(&b, "staggered round-robin pattern: %v (overlap %.2f)\n", r.Staggered, r.Overlap)
	b.WriteString(r.Plot)
	return b.String()
}
