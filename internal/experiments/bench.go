// Bench is the committed performance contract of the per-access hot
// path. RunBench produces a schema-stable report (BENCH_*.json in the
// repo root) with two kinds of fields:
//
//   - timing fields (ns_per_op, bytes_per_op, allocs_per_op, iters)
//     that depend on the host and are compared benchstat-style by the
//     CI bench gate, and
//   - work fields (work_ops, work) that fingerprint the simulated
//     outcome of a fixed-size run and must be identical across runs of
//     the same build — the bench determinism contract.
//
// The micro-suite covers the four layers of the per-access pipeline:
// full monitored dispatch (proc → cache → mem → pmu → cct), the raw
// set-associative cache probe, the hpcprof-style CCT merge, and the
// profio profile encode.
package experiments

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/cct"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/proc"
	"repro/internal/profio"
	"repro/internal/topology"
)

// Micro-suite benchmark names, in report order.
const (
	BenchAccessDispatch = "access_dispatch"
	BenchCacheProbe     = "cache_probe"
	BenchCCTMerge       = "cct_merge"
	BenchProfioEncode   = "profio_encode"
)

// BenchSchema versions the report shape; bump on field changes so the
// CI gate refuses to compare incompatible baselines.
const BenchSchema = 1

// BenchResult is one micro-benchmark measurement.
type BenchResult struct {
	Name string `json:"name"`

	// Host-dependent timing fields.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iters       int64   `json:"iters"`

	// Deterministic work fingerprint: the FNV-1a hash of the simulated
	// outcome of a WorkOps-sized run. Identical across runs of the
	// same build regardless of host speed.
	WorkOps int    `json:"work_ops"`
	Work    uint64 `json:"work"`
}

// BenchTable2Row is one Table 2 sweep cell in the report. Every field
// is simulated (cycle counts, not wall time), so rows are fully
// deterministic.
type BenchTable2Row struct {
	Mechanism       string  `json:"mechanism"`
	Workload        string  `json:"workload"`
	Machine         string  `json:"machine"`
	BaseCycles      uint64  `json:"base_cycles"`
	MonitoredCycles uint64  `json:"monitored_cycles"`
	Overhead        float64 `json:"overhead"`
	PaperOverhead   float64 `json:"paper_overhead"`
	Err             string  `json:"err,omitempty"`
}

// BenchReport is the full -bench-json artifact.
type BenchReport struct {
	Schema int              `json:"schema"`
	Suite  []BenchResult    `json:"suite"`
	Table2 []BenchTable2Row `json:"table2,omitempty"`
}

// BenchOptions tunes RunBench.
type BenchOptions struct {
	// MinTime is the per-benchmark measurement budget (default 250ms).
	MinTime time.Duration
	// Rounds repeats each measurement, keeping the fastest round
	// (default 3). Taking the minimum discards scheduler and frequency
	// noise, which is what makes the CI gate comparable across runs.
	Rounds int
	// Table2Iters scales the Table 2 sweep's workloads; 0 skips the
	// sweep entirely (the CI gate only needs the micro-suite).
	Table2Iters int
	// RunTable2 includes the Table 2 sweep.
	RunTable2 bool
}

// benchSpec couples a deterministic work pass with a timed op loop.
type benchSpec struct {
	name string
	// workOps is the fixed op count the work fingerprint runs at.
	workOps int
	// setup prepares shared state; returns the op loop and the
	// fingerprint function (called once, at workOps scale, before any
	// timing).
	setup func() (op func(n int), work func(ops int) uint64)
}

func benchMachine() *topology.Machine {
	return topology.New(topology.Config{
		Name: "bench", NumDomains: 4, CPUsPerDomain: 2,
		MemoryPerDomain: 1 << 30,
	})
}

// benchDispatchApp drives n loads through one site — the minimal app
// exercising the full monitored dispatch path.
type benchDispatchApp struct {
	n    int
	prog *isa.Program
	site isa.SiteID
}

func (a *benchDispatchApp) Name() string { return "bench" }

func (a *benchDispatchApp) Binary() *isa.Program {
	if a.prog == nil {
		a.prog = isa.NewProgram("bench")
		fn := a.prog.AddFunc("f", "f.c", 1)
		a.site = a.prog.AddSite(fn, 2, isa.KindLoad)
	}
	return a.prog
}

func (a *benchDispatchApp) Run(e *proc.Engine) {
	c := e.Ctx(0)
	e.BeginRegion("bench", e.Threads())
	r := c.Alloc(a.site, "a", 1<<26, nil)
	for i := 0; i < a.n; i++ {
		c.Load(a.site, r.Base+uint64(i%(1<<18))*64)
	}
	e.EndRegion()
}

func hashFields(vs ...any) uint64 {
	h := fnv.New64a()
	for _, v := range vs {
		fmt.Fprintf(h, "%v|", v)
	}
	return h.Sum64()
}

// runDispatch profiles an n-access run and fingerprints its simulated
// outcome.
func runDispatch(n int) uint64 {
	cfg := core.Config{Machine: benchMachine(), Mechanism: "IBS", Period: 1024}
	p, err := core.Analyze(cfg, &benchDispatchApp{n: n})
	if err != nil {
		panic(fmt.Sprintf("bench: dispatch run: %v", err))
	}
	return hashFields(p.Totals.Samples, p.Totals.Ml, p.Totals.Mr,
		p.Totals.MemAccesses, p.Totals.SimTime, p.Tree.Root().Size())
}

// benchProfile builds the profile the encode benchmark serializes.
func benchProfile() *core.Profile {
	cfg := core.Config{Machine: benchMachine(), Mechanism: "IBS", Period: 64}
	p, err := core.Analyze(cfg, &benchDispatchApp{n: 1 << 14})
	if err != nil {
		panic(fmt.Sprintf("bench: encode profile: %v", err))
	}
	return p
}

func benchMergeSource() *cct.Tree {
	src := cct.New()
	for f := 0; f < 32; f++ {
		for s := 0; s < 16; s++ {
			n := src.Root().InsertPath([]cct.Key{
				cct.FrameKey(isa.FuncID(f), 0),
				cct.SiteKey(isa.SiteID(s)),
			})
			n.AddMetric(metrics.Samples, 1)
			n.ExtendRange(f%8, uint64(s)*64)
		}
	}
	return src
}

func benchSuite() []benchSpec {
	return []benchSpec{
		{
			name:    BenchAccessDispatch,
			workOps: 1 << 16,
			setup: func() (func(int), func(int) uint64) {
				op := func(n int) { runDispatch(n) }
				return op, runDispatch
			},
		},
		{
			name:    BenchCacheProbe,
			workOps: 1 << 16,
			setup: func() (func(int), func(int) uint64) {
				h := cache.NewHierarchy(benchMachine(), cache.DefaultConfig())
				op := func(n int) {
					for i := 0; i < n; i++ {
						h.Access(0, uint64(i)*64, 0)
					}
				}
				work := func(ops int) uint64 {
					fresh := cache.NewHierarchy(benchMachine(), cache.DefaultConfig())
					for i := 0; i < ops; i++ {
						fresh.Access(0, uint64(i)*64, 0)
					}
					counts := fresh.SourceCounts()
					vs := make([]any, 0, len(counts))
					for s := cache.SrcL1; s <= cache.SrcRemoteDRAM; s++ {
						vs = append(vs, counts[s])
					}
					return hashFields(vs...)
				}
				return op, work
			},
		},
		{
			name:    BenchCCTMerge,
			workOps: 64,
			setup: func() (func(int), func(int) uint64) {
				src := benchMergeSource()
				op := func(n int) {
					for i := 0; i < n; i++ {
						dst := cct.New()
						cct.MergeTrees(dst, src)
					}
				}
				work := func(ops int) uint64 {
					dst := cct.New()
					for i := 0; i < ops; i++ {
						cct.MergeTrees(dst, src)
					}
					return hashFields(dst.Root().Size(),
						dst.Root().InclusiveMetric(metrics.Samples))
				}
				return op, work
			},
		},
		{
			name:    BenchProfioEncode,
			workOps: 4,
			setup: func() (func(int), func(int) uint64) {
				p := benchProfile()
				op := func(n int) {
					for i := 0; i < n; i++ {
						if err := profio.Save(io.Discard, p); err != nil {
							panic(fmt.Sprintf("bench: encode: %v", err))
						}
					}
				}
				work := func(ops int) uint64 {
					var buf bytes.Buffer
					for i := 0; i < ops; i++ {
						buf.Reset()
						if err := profio.Save(&buf, p); err != nil {
							panic(fmt.Sprintf("bench: encode: %v", err))
						}
					}
					h := fnv.New64a()
					h.Write(buf.Bytes())
					return hashFields(buf.Len(), h.Sum64())
				}
				return op, work
			},
		},
	}
}

// benchMeasure times op until the total run meets minTime, doubling the op
// count between attempts (the go test benchmark protocol, minus the
// flag machinery so it runs inside a plain binary).
func benchMeasure(minTime time.Duration, op func(n int)) (nsPerOp float64, bytesPerOp, allocsPerOp, iters int64) {
	if minTime <= 0 {
		minTime = 250 * time.Millisecond
	}
	op(1) // warm caches and lazy state outside the timed runs
	var ms0, ms1 runtime.MemStats
	for n := int64(1); ; n *= 2 {
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		op(int(n))
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)
		if elapsed >= minTime || n >= 1<<32 {
			nsPerOp = float64(elapsed.Nanoseconds()) / float64(n)
			bytesPerOp = int64(ms1.TotalAlloc-ms0.TotalAlloc) / n
			allocsPerOp = int64(ms1.Mallocs-ms0.Mallocs) / n
			return nsPerOp, bytesPerOp, allocsPerOp, n
		}
	}
}

// RunBench runs the micro-suite (and optionally the Table 2 sweep) and
// assembles the report.
func RunBench(opts BenchOptions) (*BenchReport, error) {
	defer timedExperiment("bench")()
	rounds := opts.Rounds
	if rounds <= 0 {
		rounds = 3
	}
	rep := &BenchReport{Schema: BenchSchema}
	for _, spec := range benchSuite() {
		op, work := spec.setup()
		res := BenchResult{Name: spec.name, WorkOps: spec.workOps}
		res.Work = work(spec.workOps)
		for r := 0; r < rounds; r++ {
			ns, bs, allocs, iters := benchMeasure(opts.MinTime, op)
			if r == 0 || ns < res.NsPerOp {
				res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, res.Iters = ns, bs, allocs, iters
			}
		}
		rep.Suite = append(rep.Suite, res)
	}
	if opts.RunTable2 {
		t2, err := RunTable2(opts.Table2Iters)
		if err != nil {
			return nil, fmt.Errorf("bench: table 2 sweep: %w", err)
		}
		for _, c := range t2.Cells {
			rep.Table2 = append(rep.Table2, BenchTable2Row{
				Mechanism:       c.Mechanism,
				Workload:        c.Workload,
				Machine:         c.Machine,
				BaseCycles:      uint64(c.Base),
				MonitoredCycles: uint64(c.Monitored),
				Overhead:        c.Overhead,
				PaperOverhead:   c.PaperOverhead,
				Err:             c.Err,
			})
		}
	}
	return rep, nil
}

// BenchDelta is one benchstat-style comparison row.
type BenchDelta struct {
	Name         string
	OldNs, NewNs float64
	// Delta is (new-old)/old; positive means slower.
	Delta float64
	// OldAllocs/NewAllocs compare the allocation count per op.
	OldAllocs, NewAllocs int64
}

// BenchGateThreshold is the relative ns/op regression of the
// access-dispatch benchmark the CI gate tolerates before failing.
const BenchGateThreshold = 0.10

// CompareBench lines up two reports by benchmark name. Both sides must
// carry the same schema and benchmark set.
func CompareBench(baseline, current *BenchReport) ([]BenchDelta, error) {
	if baseline.Schema != current.Schema {
		return nil, fmt.Errorf("bench: schema mismatch: baseline %d vs current %d (refresh the committed baseline)",
			baseline.Schema, current.Schema)
	}
	old := make(map[string]BenchResult, len(baseline.Suite))
	for _, r := range baseline.Suite {
		old[r.Name] = r
	}
	var deltas []BenchDelta
	for _, r := range current.Suite {
		b, ok := old[r.Name]
		if !ok {
			return nil, fmt.Errorf("bench: benchmark %q missing from baseline (refresh the committed baseline)", r.Name)
		}
		d := BenchDelta{
			Name: r.Name, OldNs: b.NsPerOp, NewNs: r.NsPerOp,
			OldAllocs: b.AllocsPerOp, NewAllocs: r.AllocsPerOp,
		}
		if b.NsPerOp > 0 {
			d.Delta = (r.NsPerOp - b.NsPerOp) / b.NsPerOp
		}
		deltas = append(deltas, d)
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	return deltas, nil
}

// GateBench applies the CI policy to a comparison: the access-dispatch
// benchmark must not regress more than threshold in ns/op. Other
// benchmarks are reported but advisory (host noise makes a fleet-wide
// hard gate flaky; access dispatch is the tentpole contract).
func GateBench(deltas []BenchDelta, threshold float64) error {
	for _, d := range deltas {
		if d.Name == BenchAccessDispatch && d.Delta > threshold {
			return fmt.Errorf("bench gate: %s regressed %.1f%% (%.1f → %.1f ns/op), threshold %.0f%%",
				d.Name, 100*d.Delta, d.OldNs, d.NewNs, 100*threshold)
		}
	}
	return nil
}

// RenderBenchDeltas prints the comparison benchstat-style.
func RenderBenchDeltas(deltas []BenchDelta) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %12s %12s %8s %14s\n", "name", "old ns/op", "new ns/op", "delta", "allocs/op")
	for _, d := range deltas {
		fmt.Fprintf(&b, "%-18s %12.1f %12.1f %+7.1f%% %6d → %d\n",
			d.Name, d.OldNs, d.NewNs, 100*d.Delta, d.OldAllocs, d.NewAllocs)
	}
	return b.String()
}
