// Bench is the committed performance contract of the per-access hot
// path. RunBench produces a schema-stable report (BENCH_*.json in the
// repo root) with two kinds of fields:
//
//   - timing fields (ns_per_op, bytes_per_op, allocs_per_op, iters)
//     that depend on the host and are compared benchstat-style by the
//     CI bench gate, and
//   - work fields (work_ops, work) that fingerprint the simulated
//     outcome of a fixed-size run and must be identical across runs of
//     the same build — the bench determinism contract.
//
// The micro-suite covers the four layers of the per-access pipeline:
// full monitored dispatch (proc → cache → mem → pmu → cct), the raw
// set-associative cache probe, the sharded columnar CCT merge, and the
// profio profile encode. Dispatch runs batched (LoadBatch slices of
// benchDispatchBatch accesses), matching how workloads drive the
// engine; the simulated outcome is bit-identical at any batch size,
// which TestBenchWorkStableAcrossBatchSizes pins.
package experiments

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/cache"
	"repro/internal/cct"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/proc"
	"repro/internal/profio"
	"repro/internal/topology"
)

// Micro-suite benchmark names, in report order.
const (
	BenchAccessDispatch = "access_dispatch"
	BenchCacheProbe     = "cache_probe"
	BenchCCTMerge       = "cct_merge"
	BenchProfioEncode   = "profio_encode"
)

// BenchSchema versions the report shape; bump on field changes so the
// CI gate refuses to compare incompatible baselines.
const BenchSchema = 1

// BenchResult is one micro-benchmark measurement.
type BenchResult struct {
	Name string `json:"name"`

	// Host-dependent timing fields.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	Iters       int64   `json:"iters"`

	// Deterministic work fingerprint: the FNV-1a hash of the simulated
	// outcome of a WorkOps-sized run. Identical across runs of the
	// same build regardless of host speed.
	WorkOps int    `json:"work_ops"`
	Work    uint64 `json:"work"`
}

// BenchTable2Row is one Table 2 sweep cell in the report. Every field
// is simulated (cycle counts, not wall time), so rows are fully
// deterministic.
type BenchTable2Row struct {
	Mechanism       string  `json:"mechanism"`
	Workload        string  `json:"workload"`
	Machine         string  `json:"machine"`
	BaseCycles      uint64  `json:"base_cycles"`
	MonitoredCycles uint64  `json:"monitored_cycles"`
	Overhead        float64 `json:"overhead"`
	PaperOverhead   float64 `json:"paper_overhead"`
	Err             string  `json:"err,omitempty"`
}

// BenchReport is the full -bench-json artifact.
type BenchReport struct {
	Schema int              `json:"schema"`
	Suite  []BenchResult    `json:"suite"`
	Table2 []BenchTable2Row `json:"table2,omitempty"`
}

// BenchOptions tunes RunBench.
type BenchOptions struct {
	// MinTime is the per-benchmark measurement budget (default 250ms).
	MinTime time.Duration
	// Rounds repeats each measurement, keeping the fastest round
	// (default 3). Taking the minimum discards scheduler and frequency
	// noise, which is what makes the CI gate comparable across runs.
	Rounds int
	// Table2Iters scales the Table 2 sweep's workloads; 0 skips the
	// sweep entirely (the CI gate only needs the micro-suite).
	Table2Iters int
	// RunTable2 includes the Table 2 sweep.
	RunTable2 bool
}

// benchSpec couples a deterministic work pass with a timed op loop.
type benchSpec struct {
	name string
	// workOps is the fixed op count the work fingerprint runs at.
	workOps int
	// setup prepares shared state; returns the op loop and the
	// fingerprint function (called once, at workOps scale, before any
	// timing).
	setup func() (op func(n int), work func(ops int) uint64)
}

func benchMachine() *topology.Machine {
	return topology.New(topology.Config{
		Name: "bench", NumDomains: 4, CPUsPerDomain: 2,
		MemoryPerDomain: 1 << 30,
	})
}

// benchDispatchBatch is the slice size the dispatch benchmark hands to
// LoadBatch — the same order of magnitude the workloads use. Batching
// only amortizes dispatch overhead; the simulated outcome is identical
// at batch 1.
const benchDispatchBatch = 64

// benchDispatchApp drives n loads through one site — the minimal app
// exercising the full monitored dispatch path. batch selects the
// delivery granularity: ≤1 issues per-access Loads, >1 issues
// LoadBatch slices of that size through a reused address buffer.
type benchDispatchApp struct {
	n     int
	batch int
	prog  *isa.Program
	site  isa.SiteID
}

func (a *benchDispatchApp) Name() string { return "bench" }

func (a *benchDispatchApp) Binary() *isa.Program {
	if a.prog == nil {
		a.prog = isa.NewProgram("bench")
		fn := a.prog.AddFunc("f", "f.c", 1)
		a.site = a.prog.AddSite(fn, 2, isa.KindLoad)
	}
	return a.prog
}

func (a *benchDispatchApp) Run(e *proc.Engine) {
	c := e.Ctx(0)
	e.BeginRegion("bench", e.Threads())
	r := c.Alloc(a.site, "a", 1<<26, nil)
	if a.batch <= 1 {
		for i := 0; i < a.n; i++ {
			c.Load(a.site, r.Base+uint64(i%(1<<18))*64)
		}
	} else {
		addrs := make([]uint64, 0, a.batch)
		for i := 0; i < a.n; {
			addrs = addrs[:0]
			for len(addrs) < a.batch && i < a.n {
				addrs = append(addrs, r.Base+uint64(i%(1<<18))*64)
				i++
			}
			c.LoadBatch(a.site, addrs)
		}
	}
	e.EndRegion()
}

func hashFields(vs ...any) uint64 {
	h := fnv.New64a()
	for _, v := range vs {
		fmt.Fprintf(h, "%v|", v)
	}
	return h.Sum64()
}

// runDispatch profiles an n-access run at the given batch size and
// fingerprints its simulated outcome. The fingerprint is independent
// of batch — batched delivery is bit-identical to per-access delivery.
func runDispatch(n, batch int) uint64 {
	cfg := core.Config{Machine: benchMachine(), Mechanism: "IBS", Period: 1024}
	p, err := core.Analyze(cfg, &benchDispatchApp{n: n, batch: batch})
	if err != nil {
		panic(fmt.Sprintf("bench: dispatch run: %v", err))
	}
	return hashFields(p.Totals.Samples, p.Totals.Ml, p.Totals.Mr,
		p.Totals.MemAccesses, p.Totals.SimTime, p.Tree.Root().Size())
}

// benchProfile builds the profile the encode benchmark serializes.
func benchProfile(batch int) *core.Profile {
	cfg := core.Config{Machine: benchMachine(), Mechanism: "IBS", Period: 64}
	p, err := core.Analyze(cfg, &benchDispatchApp{n: 1 << 14, batch: batch})
	if err != nil {
		panic(fmt.Sprintf("bench: encode profile: %v", err))
	}
	return p
}

// benchMergeWorkers matches the worker count core.finish uses for its
// shard merge, so the benchmark times the production configuration.
const benchMergeWorkers = 4

// benchMergeShards builds one CCT shard per simulated worker, the
// shape core.finish hands to cct.MergeShards. Shards overlap on every
// path (hot frames appear in every shard), exercising the columnar
// metric add and the [min,max] range reduction on each node; leaves
// keep one range owner apiece, the overwhelmingly common shape (a site
// node is usually touched by one thread).
func benchMergeShards() []*cct.Tree {
	shards := make([]*cct.Tree, 8)
	for w := range shards {
		src := cct.New()
		for f := 0; f < 32; f++ {
			for s := 0; s < 16; s++ {
				n := src.Root().InsertPath([]cct.Key{
					cct.FrameKey(isa.FuncID(f), 0),
					cct.SiteKey(isa.SiteID(s)),
				})
				n.AddMetric(metrics.Samples, 1)
				n.ExtendRange(f%8, uint64(s+w)*64)
			}
		}
		shards[w] = src
	}
	return shards
}

func benchSuite() []benchSpec {
	return []benchSpec{
		{
			name:    BenchAccessDispatch,
			workOps: 1 << 16,
			setup: func() (func(int), func(int) uint64) {
				op := func(n int) { runDispatch(n, benchDispatchBatch) }
				work := func(ops int) uint64 { return runDispatch(ops, benchDispatchBatch) }
				return op, work
			},
		},
		{
			name:    BenchCacheProbe,
			workOps: 1 << 16,
			setup: func() (func(int), func(int) uint64) {
				h := cache.NewHierarchy(benchMachine(), cache.DefaultConfig())
				op := func(n int) {
					for i := 0; i < n; i++ {
						h.Access(0, uint64(i)*64, 0)
					}
				}
				work := func(ops int) uint64 {
					fresh := cache.NewHierarchy(benchMachine(), cache.DefaultConfig())
					for i := 0; i < ops; i++ {
						fresh.Access(0, uint64(i)*64, 0)
					}
					counts := fresh.SourceCounts()
					vs := make([]any, 0, len(counts))
					for s := cache.SrcL1; s <= cache.SrcRemoteDRAM; s++ {
						vs = append(vs, counts[s])
					}
					return hashFields(vs...)
				}
				return op, work
			},
		},
		{
			name:    BenchCCTMerge,
			workOps: 64,
			setup: func() (func(int), func(int) uint64) {
				shards := benchMergeShards()
				op := func(n int) {
					for i := 0; i < n; i++ {
						dst := cct.New()
						cct.MergeShards(dst, shards, benchMergeWorkers)
					}
				}
				work := func(ops int) uint64 {
					dst := cct.New()
					for i := 0; i < ops; i++ {
						cct.MergeShards(dst, shards, benchMergeWorkers)
					}
					return hashFields(dst.Root().Size(),
						dst.Root().InclusiveMetric(metrics.Samples))
				}
				return op, work
			},
		},
		{
			name:    BenchProfioEncode,
			workOps: 4,
			setup: func() (func(int), func(int) uint64) {
				p := benchProfile(benchDispatchBatch)
				op := func(n int) {
					for i := 0; i < n; i++ {
						if err := profio.Save(io.Discard, p); err != nil {
							panic(fmt.Sprintf("bench: encode: %v", err))
						}
					}
				}
				work := func(ops int) uint64 {
					var buf bytes.Buffer
					for i := 0; i < ops; i++ {
						buf.Reset()
						if err := profio.Save(&buf, p); err != nil {
							panic(fmt.Sprintf("bench: encode: %v", err))
						}
					}
					h := fnv.New64a()
					h.Write(buf.Bytes())
					return hashFields(buf.Len(), h.Sum64())
				}
				return op, work
			},
		},
	}
}

// benchMeasure times op until the total run meets minTime, doubling the op
// count between attempts (the go test benchmark protocol, minus the
// flag machinery so it runs inside a plain binary).
func benchMeasure(minTime time.Duration, op func(n int)) (nsPerOp float64, bytesPerOp, allocsPerOp, iters int64) {
	if minTime <= 0 {
		minTime = 250 * time.Millisecond
	}
	op(1) // warm caches and lazy state outside the timed runs
	var ms0, ms1 runtime.MemStats
	for n := int64(1); ; n *= 2 {
		runtime.ReadMemStats(&ms0)
		start := time.Now()
		op(int(n))
		elapsed := time.Since(start)
		runtime.ReadMemStats(&ms1)
		if elapsed >= minTime || n >= 1<<32 {
			nsPerOp = float64(elapsed.Nanoseconds()) / float64(n)
			bytesPerOp = int64(ms1.TotalAlloc-ms0.TotalAlloc) / n
			allocsPerOp = int64(ms1.Mallocs-ms0.Mallocs) / n
			return nsPerOp, bytesPerOp, allocsPerOp, n
		}
	}
}

// RunBench runs the micro-suite (and optionally the Table 2 sweep) and
// assembles the report.
func RunBench(opts BenchOptions) (*BenchReport, error) {
	defer timedExperiment("bench")()
	rounds := opts.Rounds
	if rounds <= 0 {
		rounds = 3
	}
	rep := &BenchReport{Schema: BenchSchema}
	for _, spec := range benchSuite() {
		op, work := spec.setup()
		res := BenchResult{Name: spec.name, WorkOps: spec.workOps}
		res.Work = work(spec.workOps)
		for r := 0; r < rounds; r++ {
			ns, bs, allocs, iters := benchMeasure(opts.MinTime, op)
			if r == 0 || ns < res.NsPerOp {
				res.NsPerOp, res.BytesPerOp, res.AllocsPerOp, res.Iters = ns, bs, allocs, iters
			}
		}
		rep.Suite = append(rep.Suite, res)
	}
	if opts.RunTable2 {
		t2, err := RunTable2(opts.Table2Iters)
		if err != nil {
			return nil, fmt.Errorf("bench: table 2 sweep: %w", err)
		}
		for _, c := range t2.Cells {
			rep.Table2 = append(rep.Table2, BenchTable2Row{
				Mechanism:       c.Mechanism,
				Workload:        c.Workload,
				Machine:         c.Machine,
				BaseCycles:      uint64(c.Base),
				MonitoredCycles: uint64(c.Monitored),
				Overhead:        c.Overhead,
				PaperOverhead:   c.PaperOverhead,
				Err:             c.Err,
			})
		}
	}
	return rep, nil
}

// BenchDelta is one benchstat-style comparison row.
type BenchDelta struct {
	Name         string
	OldNs, NewNs float64
	// Delta is (new-old)/old; positive means slower.
	Delta float64
	// OldAllocs/NewAllocs compare the allocation count per op.
	OldAllocs, NewAllocs int64
}

// BenchGateThreshold is the relative ns/op regression any benchmark in
// the suite may show against the committed baseline before the CI gate
// fails.
const BenchGateThreshold = 0.10

// CompareBench lines up two reports by benchmark name. Both sides must
// carry the same schema and benchmark set.
func CompareBench(baseline, current *BenchReport) ([]BenchDelta, error) {
	if baseline.Schema != current.Schema {
		return nil, fmt.Errorf("bench: schema mismatch: baseline %d vs current %d (refresh the committed baseline)",
			baseline.Schema, current.Schema)
	}
	old := make(map[string]BenchResult, len(baseline.Suite))
	for _, r := range baseline.Suite {
		old[r.Name] = r
	}
	var deltas []BenchDelta
	for _, r := range current.Suite {
		b, ok := old[r.Name]
		if !ok {
			return nil, fmt.Errorf("bench: benchmark %q missing from baseline (refresh the committed baseline)", r.Name)
		}
		d := BenchDelta{
			Name: r.Name, OldNs: b.NsPerOp, NewNs: r.NsPerOp,
			OldAllocs: b.AllocsPerOp, NewAllocs: r.AllocsPerOp,
		}
		if b.NsPerOp > 0 {
			d.Delta = (r.NsPerOp - b.NsPerOp) / b.NsPerOp
		}
		deltas = append(deltas, d)
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	return deltas, nil
}

// GateBench applies the CI policy to a comparison: no benchmark in the
// suite may regress more than threshold in ns/op. Rounds-of-minimum
// measurement (see BenchOptions.Rounds) keeps the rows stable enough
// for a hard gate on every layer, not just access dispatch. All
// regressions past the threshold are reported, not just the first.
func GateBench(deltas []BenchDelta, threshold float64) error {
	var bad []string
	for _, d := range deltas {
		if d.Delta > threshold {
			bad = append(bad, fmt.Sprintf("%s regressed %.1f%% (%.1f → %.1f ns/op)",
				d.Name, 100*d.Delta, d.OldNs, d.NewNs))
		}
	}
	if len(bad) > 0 {
		return fmt.Errorf("bench gate: %s; threshold %.0f%%",
			strings.Join(bad, "; "), 100*threshold)
	}
	return nil
}

// RenderBenchDeltas prints the comparison benchstat-style.
func RenderBenchDeltas(deltas []BenchDelta) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-18s %12s %12s %8s %14s\n", "name", "old ns/op", "new ns/op", "delta", "allocs/op")
	for _, d := range deltas {
		fmt.Fprintf(&b, "%-18s %12.1f %12.1f %+7.1f%% %6d → %d\n",
			d.Name, d.OldNs, d.NewNs, 100*d.Delta, d.OldAllocs, d.NewAllocs)
	}
	return b.String()
}
