package experiments

import (
	"strings"
	"testing"
)

func TestRecoveryScorecardAllClaimsHold(t *testing.T) {
	r, err := RunRecovery(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Claims) != 5 {
		t.Fatalf("claims = %d, want 5 (RC1-RC5)", len(r.Claims))
	}
	for _, c := range r.Claims {
		t.Logf("%v %s %s [%s]", c.Pass, c.ID, c.Description, c.Detail)
		if !c.Pass {
			t.Errorf("claim %s failed: %s", c.ID, c.Detail)
		}
	}
	if !r.AllPass() {
		t.Error("recovery scorecard should pass in full")
	}
	out := r.Render()
	if !strings.Contains(out, "Recovery scorecard: 5/5 claims hold.") {
		t.Errorf("render headline wrong:\n%s", out)
	}
	if r.CellsReplayed != 2 || r.CellsRecomputed != 1 {
		t.Errorf("cells replayed/recomputed = %d/%d, want 2/1", r.CellsReplayed, r.CellsRecomputed)
	}
}
