package experiments

import (
	"strings"
	"testing"
)

func TestAblationPeriod(t *testing.T) {
	res, err := RunAblationPeriod()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Denser sampling -> more samples, more overhead.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].Samples >= res.Rows[i-1].Samples {
			t.Errorf("samples should fall with period: %v then %v",
				res.Rows[i-1].Samples, res.Rows[i].Samples)
		}
		if res.Rows[i].Overhead >= res.Rows[i-1].Overhead {
			t.Errorf("overhead should fall with period: %v then %v",
				res.Rows[i-1].Overhead, res.Rows[i].Overhead)
		}
	}
	// The densest rate must track the exact value closely; even the
	// sparsest must stay within a factor of ~3.
	if r := res.Rows[0].Ratio; r < 0.7 || r > 1.4 {
		t.Errorf("dense-period ratio = %.2f, want near 1.0", r)
	}
	for _, row := range res.Rows {
		if row.Ratio < 0.3 || row.Ratio > 3.0 {
			t.Errorf("period %d: ratio %.2f out of range", row.Period, row.Ratio)
		}
	}
	if out := res.Render(); !strings.Contains(out, "lpi (Eq2)") {
		t.Error("render incomplete")
	}
}

func TestAblationBins(t *testing.T) {
	res, err := RunAblationBins()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	one, five, twenty := res.Rows[0], res.Rows[1], res.Rows[2]
	// One bin has no resolution: the "hottest bin" is the whole range.
	if one.HotBinExtent < 0.99 {
		t.Errorf("1 bin extent = %.2f, want 1.0", one.HotBinExtent)
	}
	// Five bins: the top-20% hotspot lands in one bin holding ~90% of
	// samples over ~20% of the extent.
	if five.HotBinShare < 0.7 {
		t.Errorf("5-bin hot share = %.2f, want ~0.9", five.HotBinShare)
	}
	if five.HotBinExtent > 0.25 {
		t.Errorf("5-bin hot extent = %.2f, want ~0.2", five.HotBinExtent)
	}
	// Twenty bins: finer extent still, but each bin holds less.
	if twenty.HotBinExtent >= five.HotBinExtent {
		t.Error("more bins should give finer extents")
	}
	if twenty.HotBinShare >= five.HotBinShare {
		t.Error("finer bins each hold a smaller share (the Section 5.2 trade)")
	}
	if out := res.Render(); !strings.Contains(out, "hot-bin share") {
		t.Error("render incomplete")
	}
}

func TestAblationContention(t *testing.T) {
	res, err := RunAblationContention()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	off, full := res.Rows[0], res.Rows[2]
	// Interleave's value comes from contention relief: with the model
	// off it loses most of its benefit.
	if !(off.InterleaveSpeedup < full.InterleaveSpeedup/2) {
		t.Errorf("interleave: %.3f (off) vs %.3f (full) — should collapse without contention",
			off.InterleaveSpeedup, full.InterleaveSpeedup)
	}
	// Block-wise co-location still wins without contention (locality).
	if off.BlockSpeedup <= 0.01 {
		t.Errorf("block-wise without contention = %.3f, should stay positive", off.BlockSpeedup)
	}
	// And block-wise beats interleave at every setting.
	for _, row := range res.Rows {
		if row.BlockSpeedup <= row.InterleaveSpeedup {
			t.Errorf("cap %.1f: block (%.3f) should beat interleave (%.3f)",
				row.Cap, row.BlockSpeedup, row.InterleaveSpeedup)
		}
	}
	if out := res.Render(); !strings.Contains(out, "contention cap") {
		t.Error("render incomplete")
	}
}

func TestAblationDynamic(t *testing.T) {
	res, err := RunAblationDynamic()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Fixed binding: block-wise is the best placement.
	sb := res.Speedup("static", "block-wise")
	si := res.Speedup("static", "interleaved")
	if sb <= si {
		t.Errorf("static: block-wise (%v) should beat interleaved (%v)", sb, si)
	}
	// Churning binding: co-location is impossible. Block-wise
	// degenerates into just another balanced distribution, so its
	// edge over interleaving collapses to a tie (within 5 points),
	// while both still beat the contended baseline.
	db := res.Speedup("dynamic", "block-wise")
	di := res.Speedup("dynamic", "interleaved")
	// Tie = the residual gap is an order of magnitude below the
	// static-schedule co-location edge.
	gap := db - di
	if gap < 0 {
		gap = -gap
	}
	if gap > (sb-si)/3 {
		t.Errorf("dynamic: block-wise (%v) and interleaved (%v) should roughly tie (static edge %v)",
			db, di, sb-si)
	}
	if db < 0.5 || di < 0.5 {
		t.Errorf("dynamic: both balanced placements should beat the contended baseline (%v, %v)", db, di)
	}
	// The block-wise edge must be real under static and gone under
	// dynamic.
	if sb-si < 0.05 {
		t.Errorf("static: block-wise edge = %+.3f, want substantial", sb-si)
	}
	if out := res.Render(); !strings.Contains(out, "dynamic") {
		t.Error("render incomplete")
	}
}
