package experiments

import (
	"fmt"
	"strings"

	"repro/internal/pmu"
)

// Table1Row is one row of the paper's Table 1: a sampling mechanism,
// the processor it was evaluated on, and its configuration, augmented
// with the Section 3/10 capability matrix.
type Table1Row struct {
	Mechanism string
	Processor string
	Threads   int
	Event     string
	// PaperPeriod is the sampling period from Table 1 (real hardware).
	PaperPeriod uint64
	// ScaledPeriod is the operating period on the scaled-down
	// simulated workloads.
	ScaledPeriod uint64
	Caps         pmu.Capability
}

// Table1 regenerates Table 1 from the mechanism registry and the five
// machine models.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, name := range pmu.Names() {
		mech, err := pmu.ByName(name, 0)
		if err != nil {
			panic(err) // registry names are static
		}
		m := MachineForMechanism(name)
		rows = append(rows, Table1Row{
			Mechanism:    name,
			Processor:    m.Name,
			Threads:      m.NumCPUs(),
			Event:        mech.PaperConfig().Event,
			PaperPeriod:  mech.PaperConfig().Period,
			ScaledPeriod: mech.Period(),
			Caps:         mech.Caps(),
		})
	}
	return rows
}

// RenderTable1 prints the table in the paper's layout, plus the
// capability columns the paper discusses in Sections 3 and 10.
func RenderTable1(rows []Table1Row) string {
	var b strings.Builder
	b.WriteString("Table 1. Configurations of sampling mechanisms on different architectures.\n")
	fmt.Fprintf(&b, "%-10s %-20s %8s %-26s %14s %12s %s\n",
		"Mechanism", "Processor", "Threads", "Event", "Paper period", "Sim period", "Capabilities")
	for _, r := range rows {
		var caps []string
		if r.Caps.SamplesAllInstructions {
			caps = append(caps, "all-instr")
		}
		if r.Caps.EventBased {
			caps = append(caps, "event")
		}
		if r.Caps.MeasuresLatency {
			caps = append(caps, "latency")
		}
		if !r.Caps.PreciseIP {
			caps = append(caps, "off-by-1-IP")
		}
		if r.Caps.RequiresInstrumentation {
			caps = append(caps, "instrumented")
		}
		if r.Caps.RequiresThreadBinding {
			caps = append(caps, "needs-binding")
		}
		fmt.Fprintf(&b, "%-10s %-20s %8d %-26s %14d %12d %s\n",
			r.Mechanism, r.Processor, r.Threads, r.Event,
			r.PaperPeriod, r.ScaledPeriod, strings.Join(caps, ","))
	}
	return b.String()
}
