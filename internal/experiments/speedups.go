package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/proc"
	"repro/internal/sched"
	"repro/internal/topology"
	"repro/internal/units"
	"repro/internal/workloads"
)

// SpeedupRow is one strategy's measured outcome for a workload.
type SpeedupRow struct {
	Strategy workloads.Strategy
	Time     units.Cycles
	// Speedup is time_base/time - 1 (positive = faster than baseline).
	Speedup float64
	// PaperSpeedup is the paper's figure where reported (NaN-free: 0
	// with HasPaper=false means not reported).
	PaperSpeedup float64
	HasPaper     bool
}

// SpeedupResult is one workload's strategy comparison on one machine.
type SpeedupResult struct {
	Workload string
	Machine  string
	// Metric names what is measured (whole program, solver phase, ROI).
	Metric string
	Rows   []SpeedupRow
}

// Row returns the row for a strategy.
func (r *SpeedupResult) Row(s workloads.Strategy) (SpeedupRow, bool) {
	for _, row := range r.Rows {
		if row.Strategy == s {
			return row, true
		}
	}
	return SpeedupRow{}, false
}

// Speedup returns the measured speedup for a strategy (0 if absent).
func (r *SpeedupResult) Speedup(s workloads.Strategy) float64 {
	row, _ := r.Row(s)
	return row.Speedup
}

// Render prints the comparison.
func (r *SpeedupResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s on %s (%s):\n", r.Workload, r.Machine, r.Metric)
	for _, row := range r.Rows {
		paper := ""
		if row.HasPaper {
			paper = fmt.Sprintf("  (paper %s)", pct(row.PaperSpeedup))
		}
		fmt.Fprintf(&b, "  %-14s %12d cyc  %8s%s\n", row.Strategy, uint64(row.Time), pct(row.Speedup), paper)
	}
	return b.String()
}

// measure runs the strategies — one independent cell each — and
// assembles a SpeedupResult. paper maps strategies to the paper's
// reported speedups. Speedups are computed against the Baseline row's
// time after all cells return, so the cells carry no ordering
// dependency and fan out across sched.Workers().
func measure(workload, metric string, m *topology.Machine, threads int, binding proc.Binding,
	mk func(workloads.Strategy) core.App,
	strategies []workloads.Strategy,
	paper map[workloads.Strategy]float64) (*SpeedupResult, error) {

	cfg := BaseConfig(m, threads, binding)
	times, err := sched.Map(len(strategies), func(i int) (units.Cycles, error) {
		s := strategies[i]
		e, err := core.Run(cfg, mk(s))
		if err != nil {
			return 0, fmt.Errorf("%s/%s: %w", workload, s, err)
		}
		return e.TimeSince(workloads.ROIMark), nil
	})
	if err != nil {
		return nil, err
	}
	var base units.Cycles
	for i, s := range strategies {
		if s == workloads.Baseline {
			base = times[i]
			break
		}
	}
	res := &SpeedupResult{Workload: workload, Machine: m.Name, Metric: metric}
	for i, s := range strategies {
		row := SpeedupRow{Strategy: s, Time: times[i]}
		if base > 0 {
			row.Speedup = float64(base)/float64(times[i]) - 1
		}
		if p, ok := paper[s]; ok {
			row.PaperSpeedup, row.HasPaper = p, true
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// RunSpeedupLULESH measures Section 8.1's optimisations on both
// machines: block-wise distribution (paper: +25% AMD, +7.5% POWER7)
// vs interleaving everything (paper: +13% AMD, -16.4% POWER7).
func RunSpeedupLULESH(iters int) (amd, p7 *SpeedupResult, err error) {
	defer timedExperiment("speedup_lulesh")()
	strategies := []workloads.Strategy{workloads.Baseline, workloads.BlockWise, workloads.Interleave}
	mk := func(s workloads.Strategy) core.App {
		return workloads.NewLULESH(workloads.Params{Strategy: s, Iters: iters})
	}
	amd, err = measure("LULESH", "timestep phase", topology.MagnyCours48(), 0, proc.Compact, mk, strategies,
		map[workloads.Strategy]float64{workloads.BlockWise: 0.25, workloads.Interleave: 0.13})
	if err != nil {
		return nil, nil, err
	}
	p7, err = measure("LULESH", "timestep phase", topology.Power7x128(), 0, proc.Compact, mk, strategies,
		map[workloads.Strategy]float64{workloads.BlockWise: 0.075, workloads.Interleave: -0.164})
	return amd, p7, err
}

// RunSpeedupAMG measures Section 8.2's solver-phase improvements:
// the tool-guided per-variable mix (paper: 51% reduction) vs
// interleave-everything (paper: 36% reduction). Reductions convert to
// speedups as 1/(1-r)-1.
func RunSpeedupAMG(iters int) (*SpeedupResult, error) {
	defer timedExperiment("speedup_amg")()
	mk := func(s workloads.Strategy) core.App {
		return workloads.NewAMG2006(workloads.Params{Strategy: s, Iters: iters})
	}
	return measure("AMG2006", "solver phase", topology.MagnyCours48(), 0, proc.Compact, mk,
		[]workloads.Strategy{workloads.Baseline, workloads.Guided, workloads.Interleave},
		map[workloads.Strategy]float64{
			workloads.Guided:     1/(1-0.51) - 1, // +104%
			workloads.Interleave: 1/(1-0.36) - 1, // +56%
		})
}

// Reduction converts a strategy's measured speedup into the paper's
// "reduction in running time" form: 1 - t_opt/t_base.
func (r *SpeedupResult) Reduction(s workloads.Strategy) float64 {
	row, ok := r.Row(s)
	if !ok || row.Speedup <= -1 {
		return 0
	}
	return 1 - 1/(1+row.Speedup)
}

// RunSpeedupBlackscholes measures Section 8.3's negative control: the
// co-location fix barely helps (paper: < 0.1%) because lpi_NUMA is
// below the significance threshold.
func RunSpeedupBlackscholes(runs int) (*SpeedupResult, error) {
	defer timedExperiment("speedup_blackscholes")()
	mk := func(s workloads.Strategy) core.App {
		return workloads.NewBlackscholes(workloads.Params{Strategy: s, Iters: runs})
	}
	return measure("Blackscholes", "PARSEC region of interest", topology.MagnyCours48(), 0, proc.Compact, mk,
		[]workloads.Strategy{workloads.Baseline, workloads.ParallelInit},
		map[workloads.Strategy]float64{workloads.ParallelInit: 0.001})
}

// RunSpeedupUMT measures Section 8.4's fix: parallelising STime's
// initialisation (paper: +7% whole-program).
func RunSpeedupUMT(iters int) (*SpeedupResult, error) {
	defer timedExperiment("speedup_umt")()
	mk := func(s workloads.Strategy) core.App {
		return workloads.NewUMT2013(workloads.Params{Strategy: s, Iters: iters})
	}
	return measure("UMT2013", "sweep phase", topology.Power7x128(), 32, proc.Scatter, mk,
		[]workloads.Strategy{workloads.Baseline, workloads.ParallelInit},
		map[workloads.Strategy]float64{workloads.ParallelInit: 0.07})
}
