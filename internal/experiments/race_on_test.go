//go:build race

package experiments

// raceEnabled mirrors whether the race detector is compiled into the
// test binary; see race_off_test.go.
const raceEnabled = true
