// Recovery scorecard: the durability claims of the service layer,
// evaluated end-to-end against real servers, journals, and stores. The
// profiling daemon promises that acknowledged work survives a crash,
// that a resumed sweep recomputes only its unfinished cells, that
// transient faults are retried behind the API without client
// involvement, and that permanently failing specs fast-fail through a
// circuit breaker instead of burning the worker pool. Each row here
// injects one failure — an abandoned daemon, a flaky run, a store that
// cannot persist — and asserts the recovery machinery holds.
package experiments

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/profio"
	"repro/internal/server"
	"repro/internal/store"
)

// RecoveryResult carries the evaluated claims plus the headline
// counters for rendering.
type RecoveryResult struct {
	Claims []Claim

	// Recovered is how many interrupted jobs the restarted server
	// re-enqueued from the journal.
	Recovered uint64
	// CellsReplayed and CellsRecomputed split the resumed sweep's cells
	// into checkpoint hits and fresh work.
	CellsReplayed   uint64
	CellsRecomputed uint64
	// Retried counts the transparent retry attempts behind the flaky
	// job's eventual success.
	Retried uint64
}

// AllPass reports whether every recovery claim holds.
func (r *RecoveryResult) AllPass() bool {
	for _, c := range r.Claims {
		if !c.Pass {
			return false
		}
	}
	return true
}

func (r *RecoveryResult) add(id, desc string, pass bool, detail string) {
	r.Claims = append(r.Claims, Claim{ID: id, Description: desc, Pass: pass, Detail: detail})
}

// recoverySpec is the cheapest real job: one-iteration blackscholes.
func recoverySpec(strategy string) server.Spec {
	return server.Spec{Workload: "blackscholes", Strategy: strategy, Iters: 1}
}

// awaitJob blocks until a job is terminal or the deadline passes.
func awaitJob(j *server.Job, d time.Duration) server.JobStatus {
	select {
	case <-j.Done():
	case <-time.After(d):
	}
	return j.Status()
}

// RunRecovery evaluates the recovery scorecard. iters is accepted for
// artifact-signature symmetry; the scenarios pin one-iteration runs so
// the injected failure, not the workload, dominates.
func RunRecovery(int) (*RecoveryResult, error) {
	defer timedExperiment("recovery")()
	res := &RecoveryResult{}

	dir, err := os.MkdirTemp("", "numad-recovery-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	if err := res.runCrashRecovery(dir); err != nil {
		return nil, err
	}
	if err := res.runRetryScenario(dir); err != nil {
		return nil, err
	}
	if err := res.runBreakerScenario(dir); err != nil {
		return nil, err
	}
	return res, nil
}

// runCrashRecovery abandons a daemon mid-burst — one job finished, one
// claimed by a worker, a sweep still queued — then recovers its journal
// into a second daemon over the same store and checks RC1 (all
// acknowledged jobs terminal), RC2 (the sweep recomputes only missing
// cells), and RC5 (recovered profiles byte-identical to a fresh local
// run).
func (res *RecoveryResult) runCrashRecovery(dir string) error {
	jpath := filepath.Join(dir, store.JournalName)
	stA, err := store.Open(filepath.Join(dir, "profiles"), 0)
	if err != nil {
		return err
	}
	jlA, err := store.OpenJournal(jpath, 0)
	if err != nil {
		return err
	}
	held := make(chan *server.Job, 1)
	release := make(chan struct{})
	a, err := server.New(server.Options{
		Store: stA, Workers: 1, QueueDepth: 8, Journal: jlA,
		BeforeRun: func(j *server.Job) {
			if j.Status().Spec.Strategy == "interleave" {
				held <- j
				<-release
			}
		},
	})
	if err != nil {
		return err
	}
	a.Start()

	// Job 1 finishes before the "crash".
	j1, err := a.Submit(recoverySpec("baseline"))
	if err != nil {
		return err
	}
	st1 := awaitJob(j1, time.Minute)
	// Job 2 is claimed and held mid-run; the sweep never leaves the queue.
	j2, err := a.Submit(recoverySpec("interleave"))
	if err != nil {
		return err
	}
	<-held
	sweep := server.Spec{Workload: "blackscholes", Strategy: "baseline,interleave,blockwise", Iters: 1}
	j3, err := a.Submit(sweep)
	if err != nil {
		return err
	}

	// Crash: cut the journal, then let the abandoned daemon die quietly
	// (its held job cancels; its journal appends fail harmlessly).
	jlA.Close()
	a.CancelJob(j2.Status().ID)
	a.CancelJob(j3.Status().ID)
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	a.Shutdown(ctx)
	cancel()

	// Restart: replay the journal into a fresh server over the same
	// store. One worker, so the recovered jobs re-run in journal order
	// and the sweep sees both earlier profiles as checkpoints.
	rec, err := store.RecoverJournal(jpath)
	if err != nil {
		return err
	}
	if err := store.CompactJournal(jpath, rec); err != nil {
		return err
	}
	jlB, err := store.OpenJournal(jpath, rec.MaxSeq)
	if err != nil {
		return err
	}
	defer jlB.Close()
	stB, err := store.Open(filepath.Join(dir, "profiles"), 0)
	if err != nil {
		return err
	}
	b, err := server.New(server.Options{Store: stB, Workers: 1, QueueDepth: 8, Journal: jlB})
	if err != nil {
		return err
	}
	if err := b.Recover(rec); err != nil {
		return err
	}
	b.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		b.Shutdown(ctx)
	}()

	allTerminal := true
	var sweepStatus server.JobStatus
	for _, id := range []string{j1.Status().ID, j2.Status().ID, j3.Status().ID} {
		rj, ok := b.JobByID(id)
		if !ok {
			allTerminal = false
			continue
		}
		st := awaitJob(rj, time.Minute)
		if st.State != server.StateDone {
			allTerminal = false
		}
		if st.ID == j3.Status().ID {
			sweepStatus = st
		}
	}
	m := b.Metrics()
	res.Recovered = m.Recovery.Recovered
	res.CellsReplayed = m.Recovery.CellsReplayed
	res.CellsRecomputed = m.Recovery.CellsRecomputed

	res.add("RC1", "crash mid-burst: every acknowledged job recovers to done",
		allTerminal && m.Recovery.Recovered == 2,
		fmt.Sprintf("recovered %d interrupted jobs (1 finished pre-crash)", m.Recovery.Recovered))
	res.add("RC2", "resumed sweep recomputes only unfinished cells",
		len(sweepStatus.Cells) == 3 && m.Recovery.CellsReplayed == 2 && m.Recovery.CellsRecomputed == 1,
		fmt.Sprintf("cells replayed %d, recomputed %d of %d",
			m.Recovery.CellsReplayed, m.Recovery.CellsRecomputed, len(sweepStatus.Cells)))

	// Byte identity across the crash: the recovered profile equals a
	// fresh Build + Analyze + Save of the same spec.
	served, err := stB.Bytes(st1.Key)
	if err != nil {
		return err
	}
	cfg, app, err := recoverySpec("baseline").Build()
	if err != nil {
		return err
	}
	p, err := core.Analyze(cfg, app)
	if err != nil {
		return err
	}
	var ref bytes.Buffer
	if err := profio.Save(&ref, p); err != nil {
		return err
	}
	res.add("RC5", "recovered profile byte-identical to a fresh local run",
		bytes.Equal(served, ref.Bytes()),
		fmt.Sprintf("%d bytes served, %d bytes reference", len(served), ref.Len()))
	return nil
}

// runRetryScenario submits a job whose chaos plan fails its first two
// run attempts with a transient error and checks RC3: the daemon
// retries with backoff and the job succeeds with no client involvement.
func (res *RecoveryResult) runRetryScenario(dir string) error {
	st, err := store.Open(filepath.Join(dir, "retry-profiles"), 0)
	if err != nil {
		return err
	}
	s, err := server.New(server.Options{
		Store: st, Workers: 1, QueueDepth: 8,
		MaxRetries: 3, RetryBase: time.Millisecond, RetryCap: 4 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		s.Shutdown(ctx)
	}()
	spec := recoverySpec("baseline")
	spec.Chaos = "flaky=2"
	j, err := s.Submit(spec)
	if err != nil {
		return err
	}
	stt := awaitJob(j, time.Minute)
	m := s.Metrics()
	res.Retried = m.Recovery.Retried
	res.add("RC3", "transient faults retried with backoff, job succeeds without the client",
		stt.State == server.StateDone && stt.Attempt == 2 && m.Recovery.Retried == 2,
		fmt.Sprintf("state %s after attempt %d, %d retries", stt.State, stt.Attempt, m.Recovery.Retried))
	return nil
}

// runBreakerScenario makes one spec fail permanently (its store
// directory is removed, so persisting the computed profile fails) until
// the circuit breaker trips, and checks RC4: further submissions of
// that spec fast-fail with a Retry-After hint instead of re-running.
func (res *RecoveryResult) runBreakerScenario(dir string) error {
	bdir := filepath.Join(dir, "breaker-profiles")
	st, err := store.Open(bdir, 0)
	if err != nil {
		return err
	}
	s, err := server.New(server.Options{
		Store: st, Workers: 1, QueueDepth: 8,
		MaxRetries: -1, BreakerThreshold: 2, BreakerCooldown: time.Minute,
	})
	if err != nil {
		return err
	}
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		defer cancel()
		s.Shutdown(ctx)
	}()
	if err := os.RemoveAll(bdir); err != nil {
		return err
	}
	spec := recoverySpec("baseline")
	failures := 0
	for i := 0; i < 2; i++ {
		j, err := s.Submit(spec)
		if err != nil {
			return err
		}
		if awaitJob(j, time.Minute).State == server.StateFailed {
			failures++
		}
	}
	_, err = s.Submit(spec)
	_, hinted := server.RetryAfterHint(err)
	m := s.Metrics()
	res.add("RC4", "permanent failures trip the breaker; the spec fast-fails with Retry-After",
		failures == 2 && errors.Is(err, server.ErrCircuitOpen) && hinted &&
			m.Recovery.BreakerTrips == 1 && m.Recovery.BreakerFastFails == 1,
		fmt.Sprintf("%d permanent failures, then %v", failures, err))
	return nil
}

// Render prints the recovery scorecard.
func (r *RecoveryResult) Render() string {
	var b strings.Builder
	passed := 0
	for _, c := range r.Claims {
		if c.Pass {
			passed++
		}
	}
	fmt.Fprintf(&b, "Recovery scorecard: %d/%d claims hold.\n", passed, len(r.Claims))
	fmt.Fprintf(&b, "  jobs recovered %d; sweep cells replayed %d vs recomputed %d; transparent retries %d\n",
		r.Recovered, r.CellsReplayed, r.CellsRecomputed, r.Retried)
	for _, c := range r.Claims {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
		}
		detail := ""
		if c.Detail != "" {
			detail = "  [" + c.Detail + "]"
		}
		fmt.Fprintf(&b, "  %s %-4s %s%s\n", mark, c.ID, c.Description, detail)
	}
	return b.String()
}
