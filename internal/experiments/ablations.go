package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/omp"
	"repro/internal/proc"
	"repro/internal/sched"
	"repro/internal/topology"
	"repro/internal/units"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// The ablations probe the design choices behind the paper's tool:
//
//   - A1 sampling period: how fast the Equation 2 estimator converges
//     to the exact Equation 1 value as the sampling rate rises, and
//     what it costs (Section 4.2's "approximate value because l^s and
//     I^s are representative subsets");
//   - A2 variable binning: why one [min,max] per variable is useless
//     and five bins localise hot sub-ranges (Section 5.2's "a hot
//     variable segment may account for 90% of a thread's accesses");
//   - A3 contention model: what each optimisation actually buys —
//     interleaving's value collapses when controller contention is
//     switched off, block-wise co-location keeps most of its value
//     (the Figure 1 / Section 2 decomposition of NUMA cost into
//     latency and bandwidth).

// A1 — sampling-period sensitivity.

// PeriodRow is one sampling rate's outcome.
type PeriodRow struct {
	Period   uint64
	Samples  float64
	LPI      float64 // Equation 2 estimate
	LPIExact float64 // Equation 1
	// Ratio is estimate/exact (1.0 = perfect).
	Ratio float64
	// Overhead is the monitoring overhead fraction at this rate.
	Overhead float64
}

// AblationPeriodResult sweeps IBS sampling periods on LULESH.
type AblationPeriodResult struct {
	Rows []PeriodRow
}

// RunAblationPeriod sweeps the IBS period across four octaves. The
// unmonitored baseline and the four monitored runs are five independent
// cells; overhead is computed after they all return.
func RunAblationPeriod() (*AblationPeriodResult, error) {
	defer timedExperiment("ablation_period")()
	m := topology.MagnyCours48()
	mk := func() core.App { return workloads.NewLULESH(workloads.Params{Iters: 3}) }
	baseCfg := BaseConfig(m, 0, proc.Compact)
	periods := []uint64{256, 1024, 4096, 16384}

	type cell struct {
		baseTime units.Cycles
		prof     *core.Profile
	}
	cells, err := sched.Map(1+len(periods), func(i int) (cell, error) {
		if i == 0 {
			e, err := core.Run(baseCfg, mk())
			if err != nil {
				return cell{}, err
			}
			return cell{baseTime: e.TotalTime()}, nil
		}
		cfg := baseCfg
		cfg.Mechanism = "IBS"
		cfg.Period = periods[i-1]
		prof, err := core.Analyze(cfg, mk())
		return cell{prof: prof}, err
	})
	if err != nil {
		return nil, err
	}

	baseTime := cells[0].baseTime
	res := &AblationPeriodResult{}
	for k, period := range periods {
		prof := cells[k+1].prof
		row := PeriodRow{
			Period:   period,
			Samples:  prof.Totals.Samples,
			LPI:      prof.Totals.LPI,
			LPIExact: prof.Totals.LPIExact,
		}
		if baseTime > 0 {
			row.Overhead = float64(prof.Totals.SimTime-baseTime) / float64(baseTime)
		}
		if row.LPIExact > 0 {
			row.Ratio = row.LPI / row.LPIExact
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render prints the sweep.
func (r *AblationPeriodResult) Render() string {
	var b strings.Builder
	b.WriteString("A1. Sampling-period sensitivity (IBS on LULESH): estimate vs exact lpi.\n")
	fmt.Fprintf(&b, "%10s %10s %10s %10s %8s %10s\n",
		"Period", "Samples", "lpi (Eq2)", "lpi (Eq1)", "ratio", "overhead")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%10d %10.0f %10.3f %10.3f %8.2f %10s\n",
			row.Period, row.Samples, row.LPI, row.LPIExact, row.Ratio, pct(row.Overhead))
	}
	b.WriteString("(denser sampling buys estimator accuracy with overhead — Section 4.2's trade)\n")
	return b.String()
}

// A2 — variable binning resolution.

// hotspotApp concentrates 90% of its accesses in the top 20% of one
// large array — the paper's Section 5.2 motivating scenario.
type hotspotApp struct {
	prog           *isa.Program
	fnMain, fnWork isa.FuncID
	sAlloc, sInit  isa.SiteID
	sHot, sCold    isa.SiteID
	elems          int
}

func newHotspotApp(elems int) *hotspotApp {
	a := &hotspotApp{elems: elems}
	p := isa.NewProgram("hotspot")
	a.fnMain = p.AddFunc("main", "hot.c", 1)
	a.fnWork = p.AddFunc("work._omp", "hot.c", 20)
	a.sAlloc = p.AddSite(a.fnMain, 3, isa.KindAlloc)
	a.sInit = p.AddSite(a.fnMain, 5, isa.KindStore)
	a.sHot = p.AddSite(a.fnWork, 22, isa.KindLoad)
	a.sCold = p.AddSite(a.fnWork, 24, isa.KindLoad)
	a.prog = p
	return a
}

func (a *hotspotApp) Name() string         { return "hotspot" }
func (a *hotspotApp) Binary() *isa.Program { return a.prog }

func (a *hotspotApp) Run(e *proc.Engine) {
	const stride = 64
	n := a.elems
	var data vm.Region
	omp.Serial(e, a.fnMain, "main", func(c *proc.Ctx) {
		data = c.Alloc(a.sAlloc, "data", uint64(n)*stride, nil)
		for i := 0; i < n; i++ {
			c.Store(a.sInit, data.Base+uint64(i)*stride)
		}
	})
	hotBase := n * 4 / 5 // the top 20% of the extent
	omp.ParallelFor(e, a.fnWork, "work", n, omp.Static{}, func(c *proc.Ctx, i int) {
		// Nine hot accesses for every cold one: 90% of traffic in 20%
		// of the address range.
		for k := 0; k < 9; k++ {
			c.Load(a.sHot, data.Base+uint64(hotBase+(i*9+k)%(n/5))*stride)
		}
		c.Load(a.sCold, data.Base+uint64(i)*stride)
		c.Compute(8)
	})
}

// BinsRow is one bin-count's outcome.
type BinsRow struct {
	Bins int
	// HotBinShare is the fraction of the variable's samples landing
	// in its hottest bin.
	HotBinShare float64
	// HotBinExtent is the hottest bin's share of the address range —
	// the resolution the analyst gets.
	HotBinExtent float64
}

// AblationBinsResult sweeps the bin count on the hotspot program.
type AblationBinsResult struct {
	Rows []BinsRow
}

// RunAblationBins compares bin counts on a 90/20 hotspot, one cell
// per bin count.
func RunAblationBins() (*AblationBinsResult, error) {
	defer timedExperiment("ablation_bins")()
	m := topology.MagnyCours48()
	binCounts := []int{1, 5, 20}
	rows, err := sched.Map(len(binCounts), func(i int) (BinsRow, error) {
		bins := binCounts[i]
		cfg := BaseConfig(m, 0, proc.Compact)
		cfg.Mechanism = "Soft-IBS"
		cfg.Period = 16
		cfg.Bins = bins
		prof, err := core.Analyze(cfg, newHotspotApp(12288))
		if err != nil {
			return BinsRow{}, err
		}
		vp, ok := prof.VarByName("data")
		if !ok {
			return BinsRow{}, fmt.Errorf("ablation bins: data not profiled")
		}
		row := BinsRow{Bins: bins}
		var best core.BinStats
		var total float64
		for _, b := range vp.Bins {
			total += b.Samples
			if b.Samples > best.Samples {
				best = b
			}
		}
		if total > 0 {
			row.HotBinShare = best.Samples / total
		}
		if vp.Var.Size() > 0 {
			row.HotBinExtent = float64(best.Hi-best.Lo) / float64(vp.Var.Size())
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	return &AblationBinsResult{Rows: rows}, nil
}

// Render prints the sweep.
func (r *AblationBinsResult) Render() string {
	var b strings.Builder
	b.WriteString("A2. Variable binning on a 90%-of-accesses-in-20%-of-range hotspot.\n")
	fmt.Fprintf(&b, "%6s %14s %16s\n", "Bins", "hot-bin share", "hot-bin extent")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%6d %13.0f%% %15.0f%%\n",
			row.Bins, 100*row.HotBinShare, 100*row.HotBinExtent)
	}
	b.WriteString("(1 bin: no resolution; 5 bins localise the hot segment — Section 5.2)\n")
	return b.String()
}

// A3 — contention-model ablation.

// ContentionRow is one model setting's outcome.
type ContentionRow struct {
	// Cap is the controller contention cap (1.0 = contention off).
	Cap float64
	// BlockSpeedup / InterleaveSpeedup are LULESH fixes vs baseline.
	BlockSpeedup      float64
	InterleaveSpeedup float64
}

// AblationContentionResult compares LULESH's fixes with the memory
// controller contention model on and off.
type AblationContentionResult struct {
	Rows []ContentionRow
}

// RunAblationContention measures the fixes under contention caps 1.0
// (off), 2.0 and 5.0 (the calibrated default). The full cap × strategy
// cross (nine runs) fans out as one flat sweep; speedups are computed
// once every time is in.
func RunAblationContention() (*AblationContentionResult, error) {
	defer timedExperiment("ablation_contention")()
	m := topology.MagnyCours48()
	caps := []float64{1.0, 2.0, 5.0}
	strategies := []workloads.Strategy{workloads.Baseline, workloads.BlockWise, workloads.Interleave}
	times, err := sched.Map(len(caps)*len(strategies), func(i int) (units.Cycles, error) {
		params := mem.DefaultLatencyParams()
		params.MaxContentionFactor = caps[i/len(strategies)]
		cfg := BaseConfig(m, 0, proc.Compact)
		cfg.MemParams = params
		s := strategies[i%len(strategies)]
		e, err := core.Run(cfg, workloads.NewLULESH(workloads.Params{Strategy: s, Iters: 3}))
		if err != nil {
			return 0, err
		}
		return e.TimeSince(workloads.ROIMark), nil
	})
	if err != nil {
		return nil, err
	}
	res := &AblationContentionResult{}
	for k, cap := range caps {
		base, block, inter := times[k*3], times[k*3+1], times[k*3+2]
		res.Rows = append(res.Rows, ContentionRow{
			Cap:               cap,
			BlockSpeedup:      float64(base)/float64(block) - 1,
			InterleaveSpeedup: float64(base)/float64(inter) - 1,
		})
	}
	return res, nil
}

// Render prints the sweep.
func (r *AblationContentionResult) Render() string {
	var b strings.Builder
	b.WriteString("A3. Contention-model ablation (LULESH, Magny-Cours).\n")
	fmt.Fprintf(&b, "%16s %12s %12s\n", "contention cap", "block-wise", "interleave")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%15.1fx %12s %12s\n",
			row.Cap, pct(row.BlockSpeedup), pct(row.InterleaveSpeedup))
	}
	b.WriteString("(without contention, interleaving has nothing to relieve; block-wise\n")
	b.WriteString(" co-location still removes the remote-latency term — Section 2's split)\n")
	return b.String()
}

// A4 — scheduling-policy ablation: when the chunk-to-thread binding
// churns (OpenMP dynamic scheduling), block-wise co-location loses its
// meaning and interleaving becomes the right fix — Section 2's "in
// cases where there is not a fixed binding between threads and data
// ... using memory interleaving ... may be beneficial".

// dynApp is a microbenchmark whose loop runs under either a static or
// a dynamic schedule, over one master-initialised array.
type dynApp struct {
	prog   *isa.Program
	fnMain isa.FuncID
	fnWork isa.FuncID
	sAlloc isa.SiteID
	sInit  isa.SiteID
	sLoad  isa.SiteID

	elems   int
	iters   int
	policy  vm.Policy
	dynamic bool
}

func newDynApp(elems, iters int, policy vm.Policy, dynamic bool) *dynApp {
	a := &dynApp{elems: elems, iters: iters, policy: policy, dynamic: dynamic}
	p := isa.NewProgram("dyn-binding")
	a.fnMain = p.AddFunc("main", "dyn.c", 1)
	a.fnWork = p.AddFunc("process._omp", "dyn.c", 20)
	a.sAlloc = p.AddSite(a.fnMain, 3, isa.KindAlloc)
	a.sInit = p.AddSite(a.fnMain, 5, isa.KindStore)
	a.sLoad = p.AddSite(a.fnWork, 22, isa.KindLoad)
	a.prog = p
	return a
}

func (a *dynApp) Name() string         { return "dyn-binding" }
func (a *dynApp) Binary() *isa.Program { return a.prog }

func (a *dynApp) Run(e *proc.Engine) {
	const stride = 64
	var data vm.Region
	omp.Serial(e, a.fnMain, "main", func(c *proc.Ctx) {
		data = c.Alloc(a.sAlloc, "data", uint64(a.elems)*stride, a.policy)
		for i := 0; i < a.elems; i++ {
			c.Store(a.sInit, data.Base+uint64(i)*stride)
		}
	})
	e.Mark(workloads.ROIMark)
	chunk := a.elems / (8 * e.NumThreads())
	for it := 0; it < a.iters; it++ {
		var sched omp.Schedule = omp.Static{}
		if a.dynamic {
			// A fresh seed per timestep: the binding churns.
			sched = omp.Dynamic{Chunk: chunk, Seed: uint64(it) + 1}
		}
		omp.ParallelFor(e, a.fnWork, "process", a.elems, sched, func(c *proc.Ctx, i int) {
			c.Load(a.sLoad, data.Base+uint64(i)*stride)
			c.Compute(20)
		})
	}
}

// DynamicRow is one (schedule, placement) cell.
type DynamicRow struct {
	Schedule  string
	Placement string
	Time      units.Cycles
	// Speedup vs that schedule's baseline placement.
	Speedup float64
}

// AblationDynamicResult crosses schedules with placements.
type AblationDynamicResult struct {
	Rows []DynamicRow
}

// Speedup returns the measured speedup for a (schedule, placement).
func (r *AblationDynamicResult) Speedup(schedule, placement string) float64 {
	for _, row := range r.Rows {
		if row.Schedule == schedule && row.Placement == placement {
			return row.Speedup
		}
	}
	return 0
}

// RunAblationDynamic measures baseline / block-wise / interleaved
// placement under static and dynamic schedules.
func RunAblationDynamic() (*AblationDynamicResult, error) {
	defer timedExperiment("ablation_dynamic")()
	m := topology.MagnyCours48()
	doms := make([]topology.DomainID, m.NumDomains())
	for i := range doms {
		doms[i] = topology.DomainID(i)
	}
	placements := []struct {
		name   string
		policy vm.Policy
	}{
		{"baseline", nil},
		{"block-wise", vm.Blocked{Domains: doms}},
		{"interleaved", vm.Interleaved{}},
	}
	// The schedule × placement cross is six independent cells; each
	// schedule's baseline time anchors its speedups once all six are in.
	schedules := []bool{false, true}
	times, err := sched.Map(len(schedules)*len(placements), func(i int) (units.Cycles, error) {
		dynamic := schedules[i/len(placements)]
		pl := placements[i%len(placements)]
		cfg := BaseConfig(m, 0, proc.Compact)
		e, err := core.Run(cfg, newDynApp(48*512, 6, pl.policy, dynamic))
		if err != nil {
			return 0, err
		}
		return e.TimeSince(workloads.ROIMark), nil
	})
	if err != nil {
		return nil, err
	}
	res := &AblationDynamicResult{}
	for k, dynamic := range schedules {
		schedName := "static"
		if dynamic {
			schedName = "dynamic"
		}
		base := times[k*len(placements)] // placements[0] is the baseline
		for j, pl := range placements {
			t := times[k*len(placements)+j]
			res.Rows = append(res.Rows, DynamicRow{
				Schedule:  schedName,
				Placement: pl.name,
				Time:      t,
				Speedup:   float64(base)/float64(t) - 1,
			})
		}
	}
	return res, nil
}

// Render prints the cross.
func (r *AblationDynamicResult) Render() string {
	var b strings.Builder
	b.WriteString("A4. Placement vs schedule: fixed binding (static) against churning binding (dynamic).\n")
	fmt.Fprintf(&b, "%10s %14s %12s %9s\n", "schedule", "placement", "time", "speedup")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%10s %14s %12d %9s\n",
			row.Schedule, row.Placement, uint64(row.Time), pct(row.Speedup))
	}
	b.WriteString("(static: block-wise wins by co-location; dynamic: no fixed binding, so\n")
	b.WriteString(" co-location is impossible — block-wise degenerates into a balanced-but-remote\n")
	b.WriteString(" distribution and ties with interleaving, the simpler fix — Section 2)\n")
	return b.String()
}
