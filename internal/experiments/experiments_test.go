package experiments

import (
	"strings"
	"testing"

	"repro/internal/workloads"
)

func TestTable1CoversAllMechanisms(t *testing.T) {
	rows := Table1()
	if len(rows) != 6 {
		t.Fatalf("Table 1 has %d rows, want 6", len(rows))
	}
	wantProcessors := map[string]string{
		"IBS":      "amd-magny-cours-48",
		"MRK":      "ibm-power7-128",
		"PEBS":     "intel-harpertown-8",
		"DEAR":     "intel-itanium2-8",
		"PEBS-LL":  "intel-ivybridge-8",
		"Soft-IBS": "amd-magny-cours-48",
	}
	wantPeriods := map[string]uint64{
		"IBS":      64 * 1024,
		"MRK":      1,
		"PEBS":     1000000,
		"DEAR":     20000,
		"PEBS-LL":  500000,
		"Soft-IBS": 10000000,
	}
	for _, r := range rows {
		if r.Processor != wantProcessors[r.Mechanism] {
			t.Errorf("%s on %s, want %s", r.Mechanism, r.Processor, wantProcessors[r.Mechanism])
		}
		if r.PaperPeriod != wantPeriods[r.Mechanism] {
			t.Errorf("%s paper period %d, want %d", r.Mechanism, r.PaperPeriod, wantPeriods[r.Mechanism])
		}
		if r.Event == "" {
			t.Errorf("%s has no event", r.Mechanism)
		}
	}
	out := RenderTable1(rows)
	for _, frag := range []string{"IBS op", "PM_MRK_FROM_L3MISS", "LATENCY_ABOVE_THRESHOLD", "memory accesses"} {
		if !strings.Contains(out, frag) {
			t.Errorf("rendered table missing %q", frag)
		}
	}
}

func TestTable2OverheadShape(t *testing.T) {
	tbl, err := RunTable2(0) // default workload lengths, as reported
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Cells) != 18 {
		t.Fatalf("Table 2 has %d cells, want 18", len(tbl.Cells))
	}
	// Every cell: monitoring must cost something, never speed up.
	for _, c := range tbl.Cells {
		if c.Overhead <= 0 {
			t.Errorf("%s/%s overhead = %s, want positive", c.Mechanism, c.Workload, pct(c.Overhead))
		}
	}
	// The paper's ordering per workload: Soft-IBS >> PEBS > IBS >
	// each of {MRK, DEAR, PEBS-LL}.
	for _, wl := range Table2Order {
		soft, pebs, ibs := tbl.Overhead("Soft-IBS", wl), tbl.Overhead("PEBS", wl), tbl.Overhead("IBS", wl)
		if !(soft > pebs) {
			t.Errorf("%s: Soft-IBS (%s) should exceed PEBS (%s)", wl, pct(soft), pct(pebs))
		}
		if !(pebs > ibs) {
			t.Errorf("%s: PEBS (%s) should exceed IBS (%s)", wl, pct(pebs), pct(ibs))
		}
		for _, cheap := range []string{"MRK", "DEAR", "PEBS-LL"} {
			if ov := tbl.Overhead(cheap, wl); !(ibs > ov) {
				t.Errorf("%s: IBS (%s) should exceed %s (%s)", wl, pct(ibs), cheap, pct(ov))
			}
		}
	}
	// Soft-IBS is the most intrusive mechanism everywhere (the paper
	// reports +30%..+200%). The paper's LULESH >> Blackscholes
	// contrast for Soft-IBS does not reproduce here because the
	// simulator's compute batches compress instruction counts, so the
	// per-access instrumentation tax is not diluted by Blackscholes'
	// real instruction stream; see EXPERIMENTS.md.
	for _, wl := range Table2Order {
		if ov := tbl.Overhead("Soft-IBS", wl); ov < 0.25 {
			t.Errorf("Soft-IBS %s overhead = %s, want heavyweight (>25%%)", wl, pct(ov))
		}
	}
	if out := tbl.Render(); !strings.Contains(out, "Soft-IBS") || !strings.Contains(out, "paper") {
		t.Error("render incomplete")
	}
}

func TestFigure1Distributions(t *testing.T) {
	res, err := RunFigure1()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows, want 3", len(res.Rows))
	}
	central, inter, coloc := res.Rows[0], res.Rows[1], res.Rows[2]
	// Centralised: imbalanced and remote-heavy.
	if central.Imbalance < 4 {
		t.Errorf("centralised imbalance = %.1f, want high", central.Imbalance)
	}
	if central.RemoteFraction < 0.7 {
		t.Errorf("centralised remote fraction = %.2f, want ~7/8", central.RemoteFraction)
	}
	// Interleaved: balanced but still remote-heavy.
	if inter.Imbalance > 1.5 {
		t.Errorf("interleaved imbalance = %.1f, want ~1", inter.Imbalance)
	}
	if inter.RemoteFraction < 0.7 {
		t.Errorf("interleaved remote fraction = %.2f, want ~7/8", inter.RemoteFraction)
	}
	// Co-located: balanced and local.
	if coloc.Imbalance > 1.5 {
		t.Errorf("co-located imbalance = %.1f, want ~1", coloc.Imbalance)
	}
	if coloc.RemoteFraction > 0.2 {
		t.Errorf("co-located remote fraction = %.2f, want ~0", coloc.RemoteFraction)
	}
	// Performance ordering: co-located < interleaved < centralised time.
	if !(coloc.Time < inter.Time && inter.Time < central.Time) {
		t.Errorf("time ordering wrong: central %d, inter %d, coloc %d",
			central.Time, inter.Time, coloc.Time)
	}
	if out := res.Render(); !strings.Contains(out, "interleaved") {
		t.Error("render incomplete")
	}
}

func TestFigure2Protocol(t *testing.T) {
	res, err := RunFigure2()
	if err != nil {
		t.Fatal(err)
	}
	if res.ProtectedPages != 16 {
		t.Fatalf("protected %d pages, want 16", res.ProtectedPages)
	}
	if len(res.Events) != 16 {
		t.Fatalf("trapped %d events, want 16 (one per page)", len(res.Events))
	}
	if !res.RefaultFree {
		t.Error("re-touches must not refault")
	}
	threads := map[int]bool{}
	for _, ev := range res.Events {
		threads[ev.Thread] = true
		if ev.Func != "init_array._omp" {
			t.Errorf("fault attributed to %q, want init_array._omp", ev.Func)
		}
		if !ev.IsWrite {
			t.Error("init stores should fault as writes")
		}
	}
	if len(threads) < 2 {
		t.Error("parallel init should trap faults on multiple threads")
	}
	if out := res.Render(); !strings.Contains(out, "refault-free: true") {
		t.Error("render incomplete")
	}
}

func TestFigure3LULESH(t *testing.T) {
	res, err := RunFigure3(3)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Significant {
		t.Error("LULESH must be significant")
	}
	if res.LPI < 0.1 || res.LPI > 1.2 {
		t.Errorf("lpi = %.3f, want same decade as paper's 0.466", res.LPI)
	}
	if res.ZMrOverMl < 4 || res.ZMrOverMl > 12 {
		t.Errorf("z M_r/M_l = %.1f, want ~7", res.ZMrOverMl)
	}
	if res.ZNode0Share < 0.999 {
		t.Errorf("z NUMA_NODE0 share = %.3f, want 1.0", res.ZNode0Share)
	}
	if !res.ZStaircase {
		t.Error("z must show the staircase pattern")
	}
	if !res.ZFirstTouchSerial || res.ZFirstTouchFunc != "InitNodalArrays" {
		t.Errorf("z first touch: serial=%v func=%q", res.ZFirstTouchSerial, res.ZFirstTouchFunc)
	}
	if !res.NodelistIsStatic || res.NodelistRemoteShare < 0.05 {
		t.Errorf("nodelist: static=%v share=%.2f", res.NodelistIsStatic, res.NodelistRemoteShare)
	}
	if out := res.Render(); !strings.Contains(out, "address-centric view") {
		t.Error("render should include the address-centric plot")
	}
}

func TestFigures47AMG(t *testing.T) {
	res, err := RunFigures47(4)
	if err != nil {
		t.Fatal(err)
	}
	if res.LPI < 0.5 {
		t.Errorf("AMG lpi = %.3f, want > 0.5 (paper 0.92)", res.LPI)
	}
	for _, pc := range []PatternContrast{res.Data, res.J} {
		if pc.WholeStaircase {
			t.Errorf("%s: whole-program pattern should be irregular", pc.Variable)
		}
		if !pc.RegionStaircase {
			t.Errorf("%s: region pattern should be a staircase", pc.Variable)
		}
		if pc.RegionLatShare < 0.5 {
			t.Errorf("%s: region latency share = %.2f, want dominant (paper ~0.74)",
				pc.Variable, pc.RegionLatShare)
		}
	}
	if out := res.Render(); !strings.Contains(out, "RAP_diag_j") {
		t.Error("render incomplete")
	}
}

func TestFigures89Blackscholes(t *testing.T) {
	res, err := RunFigures89(0) // default run count, as measured
	if err != nil {
		t.Fatal(err)
	}
	if res.Significant {
		t.Error("Blackscholes must be below the significance threshold")
	}
	if res.BufferLatShare < 0.5 {
		t.Errorf("buffer latency share = %.2f, want majority (paper 0.516)", res.BufferLatShare)
	}
	if res.SoAOverlap < 0.5 || res.SoAStaircase {
		t.Errorf("SoA: overlap=%.2f staircase=%v, want staggered overlapping",
			res.SoAOverlap, res.SoAStaircase)
	}
	if !res.AoSStaircase {
		t.Errorf("AoS: staircase=%v, want disjoint ranges", res.AoSStaircase)
	}
	if out := res.Render(); !strings.Contains(out, "Figure 9b") {
		t.Error("render incomplete")
	}
}

func TestFigure10UMT(t *testing.T) {
	res, err := RunFigure10(6)
	if err != nil {
		t.Fatal(err)
	}
	if res.RemoteMissFraction < 0.5 {
		t.Errorf("remote miss fraction = %.2f, want majority (paper 0.86)", res.RemoteMissFraction)
	}
	if res.STimeMrShare < 0.3 {
		t.Errorf("STime M_r share = %.2f, want substantial", res.STimeMrShare)
	}
	if !res.Staggered {
		t.Errorf("expected staggered pattern (overlap %.2f)", res.Overlap)
	}
	if out := res.Render(); !strings.Contains(out, "STime") {
		t.Error("render incomplete")
	}
}

func TestSpeedupsMatchPaperShape(t *testing.T) {
	amd, p7, err := RunSpeedupLULESH(4)
	if err != nil {
		t.Fatal(err)
	}
	if s := amd.Speedup(workloads.BlockWise); s < 0.12 {
		t.Errorf("LULESH AMD block-wise %s, want ~+25%%", pct(s))
	}
	if sb, si := amd.Speedup(workloads.BlockWise), amd.Speedup(workloads.Interleave); sb <= si {
		t.Errorf("AMD: block (%s) must beat interleave (%s)", pct(sb), pct(si))
	}
	if s := p7.Speedup(workloads.Interleave); s >= 0 {
		t.Errorf("LULESH POWER7 interleave %s, must regress", pct(s))
	}
	if s := p7.Speedup(workloads.BlockWise); s <= 0 {
		t.Errorf("LULESH POWER7 block-wise %s, must help", pct(s))
	}

	amg, err := RunSpeedupAMG(5)
	if err != nil {
		t.Fatal(err)
	}
	rg, ri := amg.Reduction(workloads.Guided), amg.Reduction(workloads.Interleave)
	if rg < 0.35 || rg > 0.65 {
		t.Errorf("AMG guided reduction %.0f%%, want ~51%%", 100*rg)
	}
	if rg <= ri {
		t.Errorf("AMG: guided (%.0f%%) must beat interleave-all (%.0f%%)", 100*rg, 100*ri)
	}

	bs, err := RunSpeedupBlackscholes(0)
	if err != nil {
		t.Fatal(err)
	}
	if s := bs.Speedup(workloads.ParallelInit); s > 0.08 || s < -0.01 {
		t.Errorf("Blackscholes fix %s, want marginal", pct(s))
	}

	umt, err := RunSpeedupUMT(0)
	if err != nil {
		t.Fatal(err)
	}
	if s := umt.Speedup(workloads.ParallelInit); s < 0.02 || s > 0.15 {
		t.Errorf("UMT fix %s, want ~+7%%", pct(s))
	}

	// The headline cross-benchmark shape: the three significant codes
	// gain far more than the insignificant one.
	if !(amd.Speedup(workloads.BlockWise) > 2*bs.Speedup(workloads.ParallelInit)) {
		t.Error("LULESH gain should dwarf Blackscholes gain")
	}
	for _, r := range []*SpeedupResult{amd, p7, amg, bs, umt} {
		if out := r.Render(); !strings.Contains(out, "baseline") {
			t.Errorf("%s render incomplete", r.Workload)
		}
	}
}

func TestScorecardAllClaimsHold(t *testing.T) {
	sc, err := RunScorecard(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Claims) < 20 {
		t.Fatalf("only %d claims", len(sc.Claims))
	}
	for _, c := range sc.Claims {
		if !c.Pass {
			t.Errorf("%s FAILED: %s [%s]", c.ID, c.Description, c.Detail)
		}
	}
	if !sc.AllPass() {
		t.Error("scorecard should pass in full")
	}
	out := sc.Render()
	if !strings.Contains(out, "Reproduction scorecard") || !strings.Contains(out, "PASS") {
		t.Error("render incomplete")
	}
}
