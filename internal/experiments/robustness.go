// Robustness scorecard: the graceful-degradation claims of the
// fault-injection layer (internal/faults), evaluated end-to-end the
// same way the paper-shape claims are. A profiler that only works on a
// perfect substrate would not survive the environments the paper
// targets — production PMUs drop samples, stall, and die mid-run, and
// measurement files written to networked storage truncate — so each
// row here injects one class of fault and asserts the pipeline
// completes, degrades honestly, and keeps Equation 2 within tolerance.
package experiments

import (
	"bytes"
	"fmt"
	"math"
	"strings"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/proc"
	"repro/internal/profio"
	"repro/internal/sched"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// LPITolerance is the acceptance band for the degraded Equation 2
// estimate relative to the fault-free Equation 2 estimate: uniform
// random sample loss thins numerator and denominator together, so the
// estimator should stay within 15% even with a fifth of the samples
// gone. (The gap between Equation 2 and the exact Equation 1 is the
// estimator's own fidelity, measured by ablation A1 — robustness is
// about how much the *faults* move the estimate.)
const LPITolerance = 0.15

// RobustnessResult carries the evaluated claims plus the headline
// numbers for rendering.
type RobustnessResult struct {
	Claims []Claim

	// BaselineLPIExact and BaselineLPI are the fault-free Equation 1
	// and Equation 2 values the degraded runs are compared against.
	BaselineLPIExact float64
	BaselineLPI      float64
	// ChaosLPI is the Equation 2 estimate under 20% drops plus a hard
	// sampler failure.
	ChaosLPI float64
}

// AllPass reports whether every robustness claim holds.
func (r *RobustnessResult) AllPass() bool {
	for _, c := range r.Claims {
		if !c.Pass {
			return false
		}
	}
	return true
}

func (r *RobustnessResult) add(id, desc string, pass bool, detail string) {
	r.Claims = append(r.Claims, Claim{ID: id, Description: desc, Pass: pass, Detail: detail})
}

// lpiWithin reports whether got is within tol of want (relative).
func lpiWithin(got, want, tol float64) bool {
	if want == 0 || math.IsNaN(got) || math.IsNaN(want) {
		return false
	}
	return math.Abs(got-want)/want <= tol
}

// RunRobustness evaluates the robustness scorecard. iters scales the
// LULESH runs (0: 2 iterations, enough for a stable estimator).
func RunRobustness(iters int) (*RobustnessResult, error) {
	defer timedExperiment("robustness")()
	if iters <= 0 {
		iters = 2
	}
	m := topology.MagnyCours48()
	mk := func() core.App { return workloads.NewLULESH(workloads.Params{Iters: iters}) }
	baseCfg := BaseConfig(m, 0, proc.Compact)
	baseCfg.Mechanism = "IBS"

	res := &RobustnessResult{}

	// Fault-free baseline: the reference Equation 1/2 values.
	base, err := core.Analyze(baseCfg, mk())
	if err != nil {
		return nil, err
	}
	res.BaselineLPIExact = base.Totals.LPIExact
	res.BaselineLPI = base.Totals.LPI
	res.add("RB0", "fault-free baseline healthy (no degradation recorded)",
		!base.Health.Degraded() && base.Totals.LPIExact > 0,
		fmt.Sprintf("lpi exact %.3f, est %.3f", base.Totals.LPIExact, base.Totals.LPI))

	// The five fault scenarios are independent of each other — only
	// the baseline is an input (RB2's failure point is placed relative
	// to the fault-free sample count) — so they run as one sweep.
	// Every plan is seeded and owned by its own cell, so the injected
	// fault sequences are identical at any worker count.
	plans := []*faults.Plan{
		{Seed: 42, DropRate: 0.20},
		{Seed: 42, DropRate: 0.20, FailAfter: uint64(0.95 * base.Totals.Samples)},
		{Seed: 7, StallAfter: 400},
		{Seed: 11, CorruptRate: 0.05, SkidRate: 0.05, GarbleRate: 0.02},
		{Seed: 3, ThreadLossRate: 0.5},
	}
	profs, err := sched.Map(len(plans), func(i int) (*core.Profile, error) {
		cfg := baseCfg
		cfg.Faults = plans[i]
		return core.Analyze(cfg, mk())
	})
	if err != nil {
		return nil, err
	}
	drop, fail, stall, corr, tl := profs[0], profs[1], profs[2], profs[3], profs[4]

	// 20% sample drops: the run completes, every loss is accounted,
	// and Equation 2 stays within tolerance of the fault-free exact.
	res.add("RB1", "20% sample drops: run completes, every sample accounted",
		drop.Health.Accounted() && drop.Health.SamplesDropped > 0,
		fmt.Sprintf("fired %d = delivered %d + dropped %d + stall %d + fail %d",
			drop.Health.SamplesFired, drop.Health.SamplesDelivered,
			drop.Health.SamplesDropped, drop.Health.LostToStall, drop.Health.LostToFailure))
	res.add("RB1", fmt.Sprintf("20%% drops: Equation 2 within %.0f%% of the fault-free estimate", 100*LPITolerance),
		lpiWithin(drop.Totals.LPI, base.Totals.LPI, LPITolerance),
		fmt.Sprintf("est %.3f vs fault-free est %.3f", drop.Totals.LPI, base.Totals.LPI))

	// Hard sampler failure late in the run, on top of 20% drops: the
	// profiler must fall back to Soft-IBS, finish, and estimate lpi
	// from the pre-failure window. (The failure point is placed at
	// ~95% of the fault-free sample count so the window spans nearly
	// the whole run; LULESH's lpi varies across phases, so an earlier
	// failure gives a window whose estimate honestly diverges — Health
	// flags LPIWindowed — but that is phase bias, not what this row
	// asserts.)
	res.ChaosLPI = fail.Totals.LPI
	res.add("RB2", "hard sampler failure: falls back to Soft-IBS and completes",
		fail.Health.Fallback == "Soft-IBS" && fail.Health.LPIWindowed,
		fmt.Sprintf("fallback %q at cycle %d", fail.Health.Fallback, uint64(fail.Health.FallbackAt)))
	res.add("RB2", "hard sampler failure: every sample accounted across the switch",
		fail.Health.Accounted() && fail.Health.LostToFailure > 0,
		fmt.Sprintf("fired %d, delivered %d, lost to failure %d",
			fail.Health.SamplesFired, fail.Health.SamplesDelivered, fail.Health.LostToFailure))
	res.add("RB2", fmt.Sprintf("pre-failure window keeps Equation 2 within %.0f%% of the fault-free estimate", 100*LPITolerance),
		lpiWithin(fail.Totals.LPI, base.Totals.LPI, LPITolerance),
		fmt.Sprintf("windowed est %.3f vs fault-free est %.3f", fail.Totals.LPI, base.Totals.LPI))

	// Repeated stalls: the profiler retries with exponential backoff
	// and the sampler keeps producing after each restart.
	res.add("RB3", "stalling sampler: retried with backoff, run completes accounted",
		stall.Health.SamplerRetries >= 1 && stall.Health.BackoffCycles > 0 && stall.Health.Accounted(),
		fmt.Sprintf("stalls %d, retries %d, backoff %d cycles",
			stall.Health.SamplerStalls, stall.Health.SamplerRetries, uint64(stall.Health.BackoffCycles)))

	// Corrupted payloads: flipped EA bits, skidded IPs, garbled
	// latencies. The validator must quarantine instead of crash or
	// silently attribute.
	res.add("RB4", "corrupted samples quarantined, none crash the attribution",
		corr.Health.Quarantined() > 0 && corr.Health.Accounted(),
		fmt.Sprintf("injected EA %d / skid %d / garble %d, quarantined %d",
			corr.Health.InjectedCorruptEA, corr.Health.InjectedIPSkid,
			corr.Health.InjectedGarbleLat, corr.Health.Quarantined()))

	// Per-thread profile loss: the merge salvages the survivors and
	// reports coverage.
	res.add("RB5", "lost per-thread profiles: merge sums over survivors, coverage reported",
		len(tl.Health.ThreadsLost) > 0 && tl.Health.ThreadCoverage() > 0 &&
			tl.Health.ThreadCoverage() < 1 && tl.Totals.Samples > 0,
		fmt.Sprintf("coverage %d/%d", tl.Health.ThreadsTotal-len(tl.Health.ThreadsLost), tl.Health.ThreadsTotal))

	// Measurement-file damage: a truncated file is rejected by the
	// strict loader and salvaged by the lenient one.
	var buf bytes.Buffer
	if err := profio.Save(&buf, base); err != nil {
		return nil, err
	}
	data := buf.Bytes()
	cut := faults.Truncate(data, 0.6)
	_, strictErr := profio.Load(bytes.NewReader(cut))
	salvaged, rep, lenientErr := profio.LoadLenient(bytes.NewReader(cut))
	pass := strictErr != nil && lenientErr == nil && salvaged != nil &&
		rep != nil && !rep.Clean() && len(salvaged.Health.FileDamage) > 0
	detail := "strict rejected, lenient salvaged"
	if lenientErr == nil && rep != nil {
		detail = fmt.Sprintf("strict rejected; lenient recovered [%s]", strings.Join(rep.Intact, ", "))
	}
	res.add("RB6", "truncated measurement file: strict Load rejects, LoadLenient salvages",
		pass, detail)

	return res, nil
}

// Render prints the robustness scorecard.
func (r *RobustnessResult) Render() string {
	var b strings.Builder
	passed := 0
	for _, c := range r.Claims {
		if c.Pass {
			passed++
		}
	}
	fmt.Fprintf(&b, "Robustness scorecard: %d/%d claims hold.\n", passed, len(r.Claims))
	fmt.Fprintf(&b, "  baseline lpi exact %.3f (est %.3f); under 20%% drops + hard failure: est %.3f\n",
		r.BaselineLPIExact, r.BaselineLPI, r.ChaosLPI)
	for _, c := range r.Claims {
		mark := "PASS"
		if !c.Pass {
			mark = "FAIL"
		}
		detail := ""
		if c.Detail != "" {
			detail = "  [" + c.Detail + "]"
		}
		fmt.Fprintf(&b, "  %s %-4s %s%s\n", mark, c.ID, c.Description, detail)
	}
	return b.String()
}
