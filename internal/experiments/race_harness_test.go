package experiments

import (
	"bytes"
	"crypto/sha256"
	"testing"

	"repro/internal/core"
	"repro/internal/proc"
	"repro/internal/profio"
	"repro/internal/sched"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// TestBatchedPipelineRaceHarness is the CI race leg for the batched
// access pipeline: one Machine and one workload (hence one shared
// isa.Program) are shared by every concurrent cell, and the whole
// engine → pmu → cct → profio pipeline runs at scheduler widths 1, 4,
// and 8. Every cell at every width must produce the same determinism
// hash as the serial reference — and under -race, any unsynchronized
// sharing smuggled in by batch delivery, the per-worker CCT shards, or
// the parallel shard merge fails the run outright.
//
// CI runs this under the race detector as its own leg (see
// .github/workflows/ci.yml); it also rides along in the normal matrix.
func TestBatchedPipelineRaceHarness(t *testing.T) {
	machine := topology.MagnyCours48()
	app := workloads.NewLULESH(workloads.Params{Iters: 2})

	analyze := func() ([32]byte, error) {
		cfg := BaseConfig(machine, 0, proc.Compact)
		cfg.Mechanism = "IBS"
		prof, err := core.Analyze(cfg, app)
		if err != nil {
			return [32]byte{}, err
		}
		var buf bytes.Buffer
		if err := profio.Save(&buf, prof); err != nil {
			return [32]byte{}, err
		}
		return sha256.Sum256(buf.Bytes()), nil
	}

	ref, err := analyze()
	if err != nil {
		t.Fatal(err)
	}

	for _, width := range []int{1, 4, 8} {
		hashes, err := sched.MapWith(width, width, func(int) ([32]byte, error) {
			return analyze()
		})
		if err != nil {
			t.Fatalf("width %d: %v", width, err)
		}
		for i, h := range hashes {
			if h != ref {
				t.Fatalf("width %d cell %d: determinism hash %x diverged from serial reference %x",
					width, i, h, ref)
			}
		}
	}
}
