package experiments

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/proc"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// The OPT scorecard: the closed-loop optimizer must autonomously
// recover every documented case-study fix from Section 8 — profile the
// baseline, diagnose it, propose remedies, re-run them, and land the
// paper's fix with a measured speedup inside the documented tolerance —
// plus the negative control (Blackscholes gets no advice) and the
// serial-vs-parallel determinism contract on the advice report.

// optimizeCase profiles a workload's baseline under monitoring (the
// case-study configuration: chosen mechanism, first-touch tracking on)
// and runs the optimizer over it. Candidate re-runs apply remedies as
// direct config/workload transforms: the placement strategy flows into
// the workload's tuning hook, a binding change into the config — so
// even knobs the service spec coerces away (UMT's compact binding) are
// genuinely exercised here.
func optimizeCase(mech string, m *topology.Machine, threads int, binding proc.Binding,
	mk func(workloads.Strategy) core.App, o advisor.Options) (*advisor.Report, error) {

	cfg := BaseConfig(m, threads, binding)
	cfg.Mechanism = mech
	cfg.TrackFirstTouch = true
	baseline, err := core.Analyze(cfg, mk(workloads.Baseline))
	if err != nil {
		return nil, err
	}
	run := func(ctx context.Context, _ int, t advisor.Transform) (*core.Profile, error) {
		ccfg := cfg
		switch t.Binding {
		case "compact":
			ccfg.Binding = proc.Compact
		case "scatter":
			ccfg.Binding = proc.Scatter
		}
		strategy := workloads.Baseline
		if t.Strategy != "" {
			strategy = t.Strategy
		}
		return core.AnalyzeCtx(ctx, ccfg, mk(strategy))
	}
	return advisor.Optimize(context.Background(), baseline, o, run)
}

// measuredFor extracts a remedy kind's measured speedup from a report.
func measuredFor(rep *advisor.Report, k advisor.Kind) (float64, bool) {
	r := rep.Advice.Remedy(k)
	if r == nil || !r.MeasuredOK {
		return 0, false
	}
	return r.Measured, true
}

// reduction converts a speedup to the paper's running-time-reduction
// form 1 - 1/(1+s).
func reduction(s float64) float64 {
	if s <= -1 {
		return 0
	}
	return 1 - 1/(1+s)
}

// OptimizerResult bundles the scorecard with the per-case reports, so
// the bench artifact can render the full optimizer output.
type OptimizerResult struct {
	Scorecard *Scorecard
	LULESH    *advisor.Report
	AMG       *advisor.Report
	UMT       *advisor.Report
	Blacksch  *advisor.Report
}

// Render prints every case's optimizer report followed by the claims.
func (r *OptimizerResult) Render() string {
	var b strings.Builder
	for _, rep := range []*advisor.Report{r.LULESH, r.AMG, r.UMT, r.Blacksch} {
		if rep != nil {
			b.WriteString(rep.Render())
			b.WriteString("\n")
		}
	}
	for _, c := range r.Scorecard.Claims {
		status := "PASS"
		if !c.Pass {
			status = "FAIL"
		}
		fmt.Fprintf(&b, "[%s] %-5s %s\n        %s\n", status, c.ID, c.Description, c.Detail)
	}
	fmt.Fprintf(&b, "%d/%d optimizer claims pass\n", r.Scorecard.Passed(), len(r.Scorecard.Claims))
	return b.String()
}

// RunOptimizer evaluates the optimizer scorecard. iters scales the
// LULESH/AMG runs (0: 4, the case-study default); UMT always uses its
// own default deck (the planes-per-angle structure needs it).
func RunOptimizer(iters int) (*OptimizerResult, error) {
	defer timedExperiment("optimizer")()
	if iters == 0 {
		iters = 4
	}
	res := &OptimizerResult{Scorecard: &Scorecard{}}
	s := res.Scorecard

	mkLULESH := func(st workloads.Strategy) core.App {
		return workloads.NewLULESH(workloads.Params{Strategy: st, Iters: iters})
	}
	mkAMG := func(st workloads.Strategy) core.App {
		return workloads.NewAMG2006(workloads.Params{Strategy: st, Iters: iters})
	}
	mkUMT := func(st workloads.Strategy) core.App {
		return workloads.NewUMT2013(workloads.Params{Strategy: st})
	}
	mkBS := func(st workloads.Strategy) core.App {
		return workloads.NewBlackscholes(workloads.Params{Strategy: st})
	}

	var err error
	res.LULESH, err = optimizeCase("IBS", MachineForMechanism("IBS"), 0, proc.Compact, mkLULESH, advisor.Options{})
	if err != nil {
		return nil, fmt.Errorf("optimizer/lulesh: %w", err)
	}
	// The AMG study (Section 8.2) examines the solver's vectors
	// explicitly even though they sit at ~2% of remote latency each —
	// the guided mix exists precisely because the matrices and vectors
	// want different placements. Lower the hot threshold to pull them in.
	res.AMG, err = optimizeCase("IBS", MachineForMechanism("IBS"), 0, proc.Compact, mkAMG,
		advisor.Options{MinShare: 0.015})
	if err != nil {
		return nil, fmt.Errorf("optimizer/amg: %w", err)
	}
	res.UMT, err = optimizeCase("MRK", MachineForMechanism("MRK"), 32, proc.Scatter, mkUMT, advisor.Options{})
	if err != nil {
		return nil, fmt.Errorf("optimizer/umt: %w", err)
	}
	res.Blacksch, err = optimizeCase("IBS", MachineForMechanism("IBS"), 0, proc.Compact, mkBS, advisor.Options{})
	if err != nil {
		return nil, fmt.Errorf("optimizer/blackscholes: %w", err)
	}

	// OPT1 — LULESH (Section 8.1): the advisor must find the block-wise
	// fix on its own and measure a real gain (paper: +25% on AMD; the
	// simulated profile-time tolerance is documented in RESULTS.md).
	lb, lok := measuredFor(res.LULESH, advisor.KindBlockWise)
	s.add("OPT1", "LULESH: advisor recovers the block-wise placement fix with measured speedup",
		lok && lb > 0.05 && lb < 0.60,
		fmt.Sprintf("blockwise measured %s (ok=%v), paper +25%% on AMD", pct(lb), lok))

	// OPT2 — AMG2006 (Section 8.2): the guided per-variable mix must be
	// proposed, beat plain interleaving, and land a solver-time
	// reduction in the documented band (paper: 51% vs 36%).
	ag, agok := measuredFor(res.AMG, advisor.KindGuided)
	ai, aiok := measuredFor(res.AMG, advisor.KindInterleave)
	s.add("OPT2", "AMG2006: advisor recovers the guided partition, beating interleave-everything",
		agok && aiok && ag >= ai && reduction(ag) > 0.25 && reduction(ag) < 0.70,
		fmt.Sprintf("guided reduction %s vs interleave %s, paper 51%% vs 36%%",
			pct(reduction(ag)), pct(reduction(ai))))

	// OPT3 — UMT2013 (Section 8.4): the advisor must recover the
	// parallel first-touch initialisation fix (paper: +7%).
	uf, ufok := measuredFor(res.UMT, advisor.KindFirstTouch)
	s.add("OPT3", "UMT2013: advisor recovers the parallel first-touch initialisation fix",
		ufok && uf > 0.01 && uf < 0.25,
		fmt.Sprintf("first-touch-init measured %s (ok=%v), paper +7%%", pct(uf), ufok))

	// OPT4 — Blackscholes (Section 8.3): the negative control. lpi_NUMA
	// sits below the significance threshold, so the honest answer is no
	// advice at all.
	s.add("OPT4", "Blackscholes: no advice below the lpi_NUMA significance threshold",
		res.Blacksch.NoAdvice && len(res.Blacksch.Remedies) == 0,
		fmt.Sprintf("no_advice=%v (%s)", res.Blacksch.NoAdvice, res.Blacksch.Reason))

	// OPT5 — determinism: the same baseline optimized serially and in
	// parallel must produce hash-identical advice reports.
	h1, err := optimizerHash(mkLULESH, 1)
	if err != nil {
		return nil, fmt.Errorf("optimizer/determinism: %w", err)
	}
	h4, err := optimizerHash(mkLULESH, 4)
	if err != nil {
		return nil, fmt.Errorf("optimizer/determinism: %w", err)
	}
	s.add("OPT5", "Advice reports are deterministic: serial and parallel runs hash-identical",
		h1 == h4, fmt.Sprintf("width 1 %s, width 4 %s", h1[:12], h4[:12]))

	return res, nil
}

// optimizerHash runs the LULESH optimizer at a given sched width and
// hashes the canonical report JSON.
func optimizerHash(mk func(workloads.Strategy) core.App, width int) (string, error) {
	rep, err := optimizeCase("IBS", MachineForMechanism("IBS"), 0, proc.Compact, mk,
		advisor.Options{Width: width})
	if err != nil {
		return "", err
	}
	blob, err := json.Marshal(rep)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%x", sha256.Sum256(blob)), nil
}
