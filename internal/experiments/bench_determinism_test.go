package experiments

import (
	"bytes"
	"hash/fnv"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/cct"
	"repro/internal/metrics"
	"repro/internal/profio"
)

// TestBenchDeterministicWork is the bench determinism contract: two
// -bench-json runs on the same build must agree on every non-timing
// field — the suite's names, work op counts and work fingerprints, and
// every Table 2 row (all Table 2 fields are simulated cycles, never
// wall time). Only ns_per_op / bytes_per_op / allocs_per_op / iters
// may differ between runs.
func TestBenchDeterministicWork(t *testing.T) {
	opts := BenchOptions{
		MinTime:     time.Millisecond, // timing fields are not under test
		Rounds:      1,
		RunTable2:   true,
		Table2Iters: 1,
	}
	a, err := RunBench(opts)
	if err != nil {
		t.Fatalf("first RunBench: %v", err)
	}
	b, err := RunBench(opts)
	if err != nil {
		t.Fatalf("second RunBench: %v", err)
	}

	if a.Schema != b.Schema {
		t.Errorf("schema differs across runs: %d vs %d", a.Schema, b.Schema)
	}
	if len(a.Suite) != len(b.Suite) {
		t.Fatalf("suite length differs: %d vs %d", len(a.Suite), len(b.Suite))
	}
	if len(a.Suite) < 4 {
		t.Fatalf("suite has %d benchmarks, want at least 4", len(a.Suite))
	}
	for i := range a.Suite {
		ra, rb := a.Suite[i], b.Suite[i]
		if ra.Name != rb.Name {
			t.Errorf("suite[%d]: name %q vs %q", i, ra.Name, rb.Name)
		}
		if ra.WorkOps != rb.WorkOps {
			t.Errorf("%s: work_ops %d vs %d", ra.Name, ra.WorkOps, rb.WorkOps)
		}
		if ra.Work != rb.Work {
			t.Errorf("%s: work fingerprint %#x vs %#x — the simulated outcome of a fixed-size run changed between two runs of the same build",
				ra.Name, ra.Work, rb.Work)
		}
	}

	if len(a.Table2) == 0 {
		t.Fatal("Table 2 sweep missing from report")
	}
	if !reflect.DeepEqual(a.Table2, b.Table2) {
		t.Errorf("Table 2 rows differ across runs:\n first: %+v\nsecond: %+v", a.Table2, b.Table2)
	}
}

// TestBenchGatePolicy pins the CI gate policy: every benchmark in the
// suite is gated at the threshold, and a multi-row failure names every
// offender.
func TestBenchGatePolicy(t *testing.T) {
	cases := []struct {
		name    string
		deltas  []BenchDelta
		wantErr bool
	}{
		{"within threshold", []BenchDelta{{Name: BenchAccessDispatch, Delta: 0.09}}, false},
		{"improvement", []BenchDelta{{Name: BenchAccessDispatch, Delta: -0.30}}, false},
		{"regression", []BenchDelta{{Name: BenchAccessDispatch, Delta: 0.11}}, true},
		{"cct_merge gated", []BenchDelta{{Name: BenchCCTMerge, Delta: 0.50}}, true},
		{"profio_encode gated", []BenchDelta{{Name: BenchProfioEncode, Delta: 0.11}}, true},
		{"cache_probe gated", []BenchDelta{{Name: BenchCacheProbe, Delta: 0.11}}, true},
		{"all rows within threshold", []BenchDelta{
			{Name: BenchAccessDispatch, Delta: 0.05},
			{Name: BenchCacheProbe, Delta: -0.02},
			{Name: BenchCCTMerge, Delta: 0.09},
			{Name: BenchProfioEncode, Delta: 0.0},
		}, false},
	}
	for _, tc := range cases {
		err := GateBench(tc.deltas, BenchGateThreshold)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: GateBench err = %v, wantErr %v", tc.name, err, tc.wantErr)
		}
	}

	// A failure with two offending rows reports both.
	err := GateBench([]BenchDelta{
		{Name: BenchCCTMerge, Delta: 0.20},
		{Name: BenchProfioEncode, Delta: 0.30},
	}, BenchGateThreshold)
	if err == nil || !strings.Contains(err.Error(), BenchCCTMerge) ||
		!strings.Contains(err.Error(), BenchProfioEncode) {
		t.Errorf("multi-row failure should name every offender, got: %v", err)
	}
}

// TestBenchWorkStableAcrossBatchSizes pins the batching contract at the
// bench layer: the simulated outcome a work fingerprint hashes must be
// bit-identical whether accesses are delivered one at a time or in
// slices. Dispatch is checked directly; the encode fingerprint covers
// the whole pipeline (the encoded profile bytes come from a batched
// run) and the merge fingerprint covers MergeShards at 1 vs parallel
// workers.
func TestBenchWorkStableAcrossBatchSizes(t *testing.T) {
	const n = 1 << 12
	if a, b := runDispatch(n, 1), runDispatch(n, benchDispatchBatch); a != b {
		t.Errorf("dispatch fingerprint differs: batch=1 %#x vs batch=%d %#x",
			a, benchDispatchBatch, b)
	}

	encodeWork := func(batch int) uint64 {
		p := benchProfile(batch)
		var buf bytes.Buffer
		if err := profio.Save(&buf, p); err != nil {
			t.Fatal(err)
		}
		h := fnv.New64a()
		h.Write(buf.Bytes())
		return hashFields(buf.Len(), h.Sum64())
	}
	if a, b := encodeWork(1), encodeWork(benchDispatchBatch); a != b {
		t.Errorf("profio_encode fingerprint differs: batch=1 %#x vs batch=%d %#x",
			a, benchDispatchBatch, b)
	}

	mergeWork := func(workers int) uint64 {
		shards := benchMergeShards()
		dst := cct.New()
		for i := 0; i < 8; i++ {
			cct.MergeShards(dst, shards, workers)
		}
		return hashFields(dst.Root().Size(),
			dst.Root().InclusiveMetric(metrics.Samples))
	}
	if a, b := mergeWork(1), mergeWork(benchMergeWorkers); a != b {
		t.Errorf("cct_merge fingerprint differs: workers=1 %#x vs workers=%d %#x",
			a, benchMergeWorkers, b)
	}
}

// TestCompareBenchRefusesIncompatibleBaselines makes the gate fail loud
// rather than compare apples to oranges.
func TestCompareBenchRefusesIncompatibleBaselines(t *testing.T) {
	cur := &BenchReport{Schema: BenchSchema, Suite: []BenchResult{{Name: BenchAccessDispatch, NsPerOp: 100}}}

	stale := &BenchReport{Schema: BenchSchema - 1}
	if _, err := CompareBench(stale, cur); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("schema mismatch: err = %v, want schema error", err)
	}

	empty := &BenchReport{Schema: BenchSchema}
	if _, err := CompareBench(empty, cur); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("missing benchmark: err = %v, want missing-benchmark error", err)
	}

	base := &BenchReport{Schema: BenchSchema, Suite: []BenchResult{{Name: BenchAccessDispatch, NsPerOp: 80}}}
	deltas, err := CompareBench(base, cur)
	if err != nil {
		t.Fatalf("CompareBench: %v", err)
	}
	if len(deltas) != 1 || deltas[0].Delta < 0.24 || deltas[0].Delta > 0.26 {
		t.Errorf("deltas = %+v, want one row with Delta 0.25", deltas)
	}
}
