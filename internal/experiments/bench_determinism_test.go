package experiments

import (
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestBenchDeterministicWork is the bench determinism contract: two
// -bench-json runs on the same build must agree on every non-timing
// field — the suite's names, work op counts and work fingerprints, and
// every Table 2 row (all Table 2 fields are simulated cycles, never
// wall time). Only ns_per_op / bytes_per_op / allocs_per_op / iters
// may differ between runs.
func TestBenchDeterministicWork(t *testing.T) {
	opts := BenchOptions{
		MinTime:     time.Millisecond, // timing fields are not under test
		Rounds:      1,
		RunTable2:   true,
		Table2Iters: 1,
	}
	a, err := RunBench(opts)
	if err != nil {
		t.Fatalf("first RunBench: %v", err)
	}
	b, err := RunBench(opts)
	if err != nil {
		t.Fatalf("second RunBench: %v", err)
	}

	if a.Schema != b.Schema {
		t.Errorf("schema differs across runs: %d vs %d", a.Schema, b.Schema)
	}
	if len(a.Suite) != len(b.Suite) {
		t.Fatalf("suite length differs: %d vs %d", len(a.Suite), len(b.Suite))
	}
	if len(a.Suite) < 4 {
		t.Fatalf("suite has %d benchmarks, want at least 4", len(a.Suite))
	}
	for i := range a.Suite {
		ra, rb := a.Suite[i], b.Suite[i]
		if ra.Name != rb.Name {
			t.Errorf("suite[%d]: name %q vs %q", i, ra.Name, rb.Name)
		}
		if ra.WorkOps != rb.WorkOps {
			t.Errorf("%s: work_ops %d vs %d", ra.Name, ra.WorkOps, rb.WorkOps)
		}
		if ra.Work != rb.Work {
			t.Errorf("%s: work fingerprint %#x vs %#x — the simulated outcome of a fixed-size run changed between two runs of the same build",
				ra.Name, ra.Work, rb.Work)
		}
	}

	if len(a.Table2) == 0 {
		t.Fatal("Table 2 sweep missing from report")
	}
	if !reflect.DeepEqual(a.Table2, b.Table2) {
		t.Errorf("Table 2 rows differ across runs:\n first: %+v\nsecond: %+v", a.Table2, b.Table2)
	}
}

// TestBenchGatePolicy pins the CI gate policy: only the access-dispatch
// benchmark is gated, and only beyond the threshold.
func TestBenchGatePolicy(t *testing.T) {
	cases := []struct {
		name    string
		deltas  []BenchDelta
		wantErr bool
	}{
		{"within threshold", []BenchDelta{{Name: BenchAccessDispatch, Delta: 0.09}}, false},
		{"improvement", []BenchDelta{{Name: BenchAccessDispatch, Delta: -0.30}}, false},
		{"regression", []BenchDelta{{Name: BenchAccessDispatch, Delta: 0.11}}, true},
		{"other benchmarks advisory", []BenchDelta{{Name: BenchCCTMerge, Delta: 0.50}}, false},
	}
	for _, tc := range cases {
		err := GateBench(tc.deltas, BenchGateThreshold)
		if (err != nil) != tc.wantErr {
			t.Errorf("%s: GateBench err = %v, wantErr %v", tc.name, err, tc.wantErr)
		}
	}
}

// TestCompareBenchRefusesIncompatibleBaselines makes the gate fail loud
// rather than compare apples to oranges.
func TestCompareBenchRefusesIncompatibleBaselines(t *testing.T) {
	cur := &BenchReport{Schema: BenchSchema, Suite: []BenchResult{{Name: BenchAccessDispatch, NsPerOp: 100}}}

	stale := &BenchReport{Schema: BenchSchema - 1}
	if _, err := CompareBench(stale, cur); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("schema mismatch: err = %v, want schema error", err)
	}

	empty := &BenchReport{Schema: BenchSchema}
	if _, err := CompareBench(empty, cur); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("missing benchmark: err = %v, want missing-benchmark error", err)
	}

	base := &BenchReport{Schema: BenchSchema, Suite: []BenchResult{{Name: BenchAccessDispatch, NsPerOp: 80}}}
	deltas, err := CompareBench(base, cur)
	if err != nil {
		t.Fatalf("CompareBench: %v", err)
	}
	if len(deltas) != 1 || deltas[0].Delta < 0.24 || deltas[0].Delta > 0.26 {
		t.Errorf("deltas = %+v, want one row with Delta 0.25", deltas)
	}
}
