// Package vm implements the virtual memory system of the simulated
// machine: a flat 64-bit address space carved into 4 KiB pages, page
// placement policies (Linux-style first touch, interleaving, explicit
// node binding, and block-wise distribution), page protection with
// SIGSEGV-style fault delivery, and the page-to-domain queries that
// libnuma's move_pages exposes.
//
// First-touch is the load-bearing policy: as Section 2 of the paper
// explains, Linux binds a freshly allocated page to the domain of the
// thread that first reads or writes it, so a serial initialisation loop
// silently homes an entire array in the master thread's domain. Every
// case study in Section 8 traces back to this mechanism, and the
// tool's first-touch pinpointing (Section 6) is built on page
// protection, which this package also provides.
package vm

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/topology"
	"repro/internal/units"
)

// Protection is a page's access permission bits.
type Protection uint8

// Protection bits.
const (
	ProtRead Protection = 1 << iota
	ProtWrite

	// ProtNone masks off all access: any touch faults.
	ProtNone Protection = 0
	// ProtRW is the default for fresh allocations.
	ProtRW Protection = ProtRead | ProtWrite
)

// Policy tells the address space how to home the pages of an
// allocation.
type Policy interface {
	// PlacePage decides the home domain for the page at index
	// pageIdx (0-based within the allocation, of nPages total) when
	// it is first touched by a thread running in touchDomain.
	// Returning topology.NoDomain defers to first-touch (home the
	// page where the toucher runs).
	PlacePage(pageIdx, nPages uint64, touchDomain topology.DomainID) topology.DomainID
	// Name identifies the policy in profiles and reports.
	Name() string
}

// FirstTouch is the Linux default: a page is homed in the domain of the
// first thread to touch it.
type FirstTouch struct{}

// PlacePage implements Policy by deferring to the toucher's domain.
func (FirstTouch) PlacePage(_, _ uint64, touch topology.DomainID) topology.DomainID {
	return touch
}

// Name implements Policy.
func (FirstTouch) Name() string { return "first-touch" }

// Interleaved spreads pages round-robin over a set of domains,
// regardless of who touches them, like numactl --interleave /
// numa_alloc_interleaved.
type Interleaved struct {
	// Domains to rotate over. Empty means all domains of the machine;
	// the address space substitutes its full domain list.
	Domains []topology.DomainID
}

// PlacePage implements Policy.
func (p Interleaved) PlacePage(pageIdx, _ uint64, _ topology.DomainID) topology.DomainID {
	if len(p.Domains) == 0 {
		return topology.NoDomain // resolved by AddressSpace before use
	}
	return p.Domains[pageIdx%uint64(len(p.Domains))]
}

// Name implements Policy.
func (p Interleaved) Name() string { return "interleaved" }

// OnNode binds every page of the allocation to one domain, like
// numa_alloc_onnode.
type OnNode struct {
	Domain topology.DomainID
}

// PlacePage implements Policy.
func (p OnNode) PlacePage(_, _ uint64, _ topology.DomainID) topology.DomainID { return p.Domain }

// Name implements Policy.
func (p OnNode) Name() string { return fmt.Sprintf("on-node-%d", p.Domain) }

// Blocked distributes the allocation's pages block-wise over a domain
// list: the first 1/n of the pages to Domains[0], the next 1/n to
// Domains[1], and so on. This is the paper's recommended co-location
// fix for LULESH's z array and AMG's RAP_diag_data (Sections 8.1-8.2):
// when thread t works on block t, block-wise placement makes every
// access local.
type Blocked struct {
	Domains []topology.DomainID
}

// PlacePage implements Policy.
func (p Blocked) PlacePage(pageIdx, nPages uint64, _ topology.DomainID) topology.DomainID {
	if len(p.Domains) == 0 || nPages == 0 {
		return topology.NoDomain
	}
	n := uint64(len(p.Domains))
	// Block b covers pages [b*nPages/n, (b+1)*nPages/n).
	b := pageIdx * n / nPages
	if b >= n {
		b = n - 1
	}
	return p.Domains[b]
}

// Name implements Policy.
func (p Blocked) Name() string { return "blocked" }

// Fault describes a protection violation, mirroring the information a
// SIGSEGV handler receives: the faulting address (siginfo si_addr) and
// whether the access was a write.
type Fault struct {
	Addr    uint64
	IsWrite bool
	// Region is the allocation containing the fault, if any.
	Region Region
}

// FaultHandler is invoked synchronously when an access hits a protected
// page, before the access is retried. It plays the role of the tool's
// SIGSEGV handler (Section 6): it must unprotect the page (or the
// access will fault forever) and may record attributions.
type FaultHandler func(Fault)

// Region is one allocation in the address space.
type Region struct {
	// Base is the first address; allocations are page-aligned.
	Base uint64
	// Size is the requested length in bytes.
	Size uint64
	// ID is a dense allocation identifier (0, 1, 2, ...).
	ID int
}

// End returns one past the last address of the region.
func (r Region) End() uint64 { return r.Base + r.Size }

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr uint64) bool { return addr >= r.Base && addr < r.End() }

// Valid reports whether the region denotes a real allocation.
func (r Region) Valid() bool { return r.Size > 0 }

// page holds per-page state.
type page struct {
	home    topology.DomainID
	prot    Protection
	touched bool
}

// AddressSpace is the simulated process's virtual memory.
type AddressSpace struct {
	mu   sync.Mutex
	topo *topology.Machine

	next    uint64 // bump allocator cursor, page aligned
	pages   map[uint64]*page
	regions []Region
	// policies[regionID] homes pages of that region on first touch.
	policies []Policy
	// allDomains caches the machine's domain list for policies that
	// default to "all domains".
	allDomains []topology.DomainID

	handler FaultHandler

	// freed regions by ID, for use-after-free detection.
	freed map[int]bool
}

// ErrOutOfRange is returned by operations on addresses outside any
// allocation.
var ErrOutOfRange = errors.New("vm: address outside any allocation")

// heapBase is where the simulated heap starts; a nonzero base keeps
// address 0 invalid, like a real process image.
const heapBase = 0x10000

// NewAddressSpace creates an empty address space for a machine.
func NewAddressSpace(topo *topology.Machine) *AddressSpace {
	as := &AddressSpace{
		topo:  topo,
		next:  heapBase,
		pages: make(map[uint64]*page),
		freed: make(map[int]bool),
	}
	for d := 0; d < topo.NumDomains(); d++ {
		as.allDomains = append(as.allDomains, topology.DomainID(d))
	}
	return as
}

// Topology returns the machine this address space lives on.
func (as *AddressSpace) Topology() *topology.Machine { return as.topo }

// SetFaultHandler installs the handler invoked on protected-page
// accesses. Passing nil removes the handler; protected accesses then
// behave as if unprotected (matching a program with no SIGSEGV handler
// installed by the tool).
func (as *AddressSpace) SetFaultHandler(h FaultHandler) {
	as.mu.Lock()
	defer as.mu.Unlock()
	as.handler = h
}

// Alloc reserves size bytes under the given placement policy and
// returns the region. The allocation is page-aligned and readable and
// writable. A nil policy means first-touch. Size zero returns an
// invalid region.
func (as *AddressSpace) Alloc(size uint64, policy Policy) Region {
	if size == 0 {
		return Region{}
	}
	if policy == nil {
		policy = FirstTouch{}
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	base := as.next
	nPages := units.PagesSpanned(base, size)
	as.next += nPages * uint64(units.PageSize)
	// Leave a guard page between allocations so adjacent regions never
	// share a page; this keeps move_pages-style per-variable queries
	// exact, as the paper's data-centric attribution requires.
	as.next += uint64(units.PageSize)
	r := Region{Base: base, Size: size, ID: len(as.regions)}
	as.regions = append(as.regions, r)
	as.policies = append(as.policies, policy)
	return r
}

// Free releases a region. Its pages drop their homes; subsequent
// resolution of addresses inside it reports ErrOutOfRange.
func (as *AddressSpace) Free(r Region) {
	if !r.Valid() {
		return
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	if r.ID < 0 || r.ID >= len(as.regions) || as.freed[r.ID] {
		return
	}
	as.freed[r.ID] = true
	first := units.PageOf(r.Base)
	last := units.PageOf(r.End() - 1)
	for p := first; p <= last; p++ {
		delete(as.pages, p)
	}
}

// Freed reports whether the region has been freed.
func (as *AddressSpace) Freed(r Region) bool {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.freed[r.ID]
}

// RegionOf returns the allocation containing addr.
func (as *AddressSpace) RegionOf(addr uint64) (Region, bool) {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.regionOfLocked(addr)
}

func (as *AddressSpace) regionOfLocked(addr uint64) (Region, bool) {
	// Regions are allocated at increasing bases, so binary search.
	i := sort.Search(len(as.regions), func(i int) bool {
		return as.regions[i].Base > addr
	})
	if i == 0 {
		return Region{}, false
	}
	r := as.regions[i-1]
	if !r.Contains(addr) || as.freed[r.ID] {
		return Region{}, false
	}
	return r, true
}

// Touch resolves the page containing addr for an access by a thread
// running in touchDomain, applying the allocation's placement policy on
// first touch. It returns the page's home domain and whether this
// access was the page's first touch.
//
// If the page is protected, the installed fault handler runs first
// (with the lock released, so the handler can call Unprotect), then the
// touch is retried; this mirrors the kernel delivering SIGSEGV and
// restarting the faulting instruction (Figure 2 of the paper). If no
// handler is installed the protection is ignored.
func (as *AddressSpace) Touch(addr uint64, isWrite bool, touchDomain topology.DomainID) (topology.DomainID, bool, error) {
	home, first, _, _, err := as.TouchRegion(addr, isWrite, touchDomain)
	return home, first, err
}

// TouchRegion is Touch fused with RegionOf: one lock acquisition
// resolves the page and returns the allocation containing addr. The
// execution engine's batched dispatch uses it — the unfused per-access
// pipeline pays two lock round-trips and two region binary searches per
// access, and this is the dominant cost left on that path. Semantics
// are identical to Touch followed by RegionOf.
func (as *AddressSpace) TouchRegion(addr uint64, isWrite bool, touchDomain topology.DomainID) (topology.DomainID, bool, Region, bool, error) {
	for attempt := 0; ; attempt++ {
		as.mu.Lock()
		r, ok := as.regionOfLocked(addr)
		if !ok {
			as.mu.Unlock()
			return topology.NoDomain, false, Region{}, false, ErrOutOfRange
		}
		pidx := units.PageOf(addr)
		pg := as.pages[pidx]
		if pg != nil && pg.prot&ProtRW != ProtRW && as.handler != nil && attempt == 0 {
			h := as.handler
			as.mu.Unlock()
			h(Fault{Addr: addr, IsWrite: isWrite, Region: r})
			continue // retry the faulting access, like the kernel does
		}
		if pg == nil {
			pg = &page{home: topology.NoDomain, prot: ProtRW}
			as.pages[pidx] = pg
		}
		first := !pg.touched
		if first {
			pg.touched = true
			policy := as.policies[r.ID]
			firstPage := units.PageOf(r.Base)
			nPages := units.PagesSpanned(r.Base, r.Size)
			home := policy.PlacePage(pidx-firstPage, nPages, touchDomain)
			if home == topology.NoDomain {
				if _, isIL := policy.(Interleaved); isIL {
					home = as.allDomains[(pidx-firstPage)%uint64(len(as.allDomains))]
				} else {
					home = touchDomain
				}
			}
			if home == topology.NoDomain {
				home = 0
			}
			pg.home = home
		}
		home := pg.home
		as.mu.Unlock()
		return home, first, r, true, nil
	}
}

// PageNode returns the home domain of the page containing addr, or
// NoDomain if the page has not been touched yet. This is the
// move_pages(…, nodes=NULL) query libnuma exposes and the profiler
// uses for every address sample (Section 4.1).
func (as *AddressSpace) PageNode(addr uint64) (topology.DomainID, error) {
	as.mu.Lock()
	defer as.mu.Unlock()
	if _, ok := as.regionOfLocked(addr); !ok {
		return topology.NoDomain, ErrOutOfRange
	}
	pg := as.pages[units.PageOf(addr)]
	if pg == nil || !pg.touched {
		return topology.NoDomain, nil
	}
	return pg.home, nil
}

// Protect masks off permissions on every *full* page within
// [base, base+size): pages straddling the range boundaries are left
// alone, exactly as the tool's allocation wrapper masks only the pages
// between the first and last page boundaries within the variable's
// extent (Section 6), because neighbouring data may share the partial
// pages.
//
// It returns the number of pages protected.
func (as *AddressSpace) Protect(base, size uint64, prot Protection) int {
	if size == 0 {
		return 0
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	ps := uint64(units.PageSize)
	end := base + size
	// Full pages are those whose start >= base and end <= end.
	first := (base + ps - 1) / ps
	lastFull := end / ps
	n := 0
	for p := first; p < lastFull; p++ {
		pg := as.pages[p]
		if pg == nil {
			pg = &page{home: topology.NoDomain, prot: ProtRW}
			as.pages[p] = pg
		}
		pg.prot = prot
		n++
	}
	return n
}

// Unprotect restores read/write permission on the page containing addr.
func (as *AddressSpace) Unprotect(addr uint64) {
	as.mu.Lock()
	defer as.mu.Unlock()
	if pg := as.pages[units.PageOf(addr)]; pg != nil {
		pg.prot = ProtRW
	}
}

// ProtectionOf returns the protection of the page containing addr.
// Untracked pages report ProtRW.
func (as *AddressSpace) ProtectionOf(addr uint64) Protection {
	as.mu.Lock()
	defer as.mu.Unlock()
	if pg := as.pages[units.PageOf(addr)]; pg != nil {
		return pg.prot
	}
	return ProtRW
}

// Regions returns a copy of all allocations, live and freed.
func (as *AddressSpace) Regions() []Region {
	as.mu.Lock()
	defer as.mu.Unlock()
	out := make([]Region, len(as.regions))
	copy(out, as.regions)
	return out
}

// SetPolicy replaces the placement policy of a region. It only
// affects pages not yet touched — the same semantics as calling
// numa_tonode_memory / mbind on a freshly mapped range before anything
// touches it (how one applies a block-wise distribution to a static
// variable, whose allocation the program does not control).
func (as *AddressSpace) SetPolicy(r Region, p Policy) {
	if p == nil || r.ID < 0 {
		return
	}
	as.mu.Lock()
	defer as.mu.Unlock()
	if r.ID < len(as.policies) {
		as.policies[r.ID] = p
	}
}

// PolicyOf returns the placement policy of the region.
func (as *AddressSpace) PolicyOf(r Region) Policy {
	as.mu.Lock()
	defer as.mu.Unlock()
	if r.ID < 0 || r.ID >= len(as.policies) {
		return nil
	}
	return as.policies[r.ID]
}

// DomainPages counts touched pages homed in each domain, indexed by
// domain id — the raw material for page-placement reports.
func (as *AddressSpace) DomainPages() []uint64 {
	as.mu.Lock()
	defer as.mu.Unlock()
	out := make([]uint64, as.topo.NumDomains())
	for _, pg := range as.pages {
		if pg.touched && pg.home >= 0 && int(pg.home) < len(out) {
			out[pg.home]++
		}
	}
	return out
}
