package vm

import (
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/topology"
	"repro/internal/units"
)

func testMachine() *topology.Machine {
	return topology.New(topology.Config{
		Name: "t", NumDomains: 4, CPUsPerDomain: 2,
		MemoryPerDomain: units.GiB, RemoteDistance: 16,
	})
}

func TestAllocBasics(t *testing.T) {
	as := NewAddressSpace(testMachine())
	r := as.Alloc(100, nil)
	if !r.Valid() {
		t.Fatal("allocation invalid")
	}
	if r.Base%uint64(units.PageSize) != 0 {
		t.Errorf("base %#x not page aligned", r.Base)
	}
	if !r.Contains(r.Base) || !r.Contains(r.Base+99) || r.Contains(r.Base+100) {
		t.Error("Contains boundaries wrong")
	}
	if z := as.Alloc(0, nil); z.Valid() {
		t.Error("zero-size allocation should be invalid")
	}
}

func TestAllocationsDontSharePages(t *testing.T) {
	as := NewAddressSpace(testMachine())
	a := as.Alloc(10, nil)
	b := as.Alloc(10, nil)
	if units.PageOf(a.End()-1) == units.PageOf(b.Base) {
		t.Fatal("adjacent allocations share a page")
	}
}

func TestRegionOf(t *testing.T) {
	as := NewAddressSpace(testMachine())
	a := as.Alloc(5000, nil)
	b := as.Alloc(100, nil)
	if got, ok := as.RegionOf(a.Base + 4999); !ok || got.ID != a.ID {
		t.Errorf("RegionOf mid-a = %+v, %v", got, ok)
	}
	if got, ok := as.RegionOf(b.Base); !ok || got.ID != b.ID {
		t.Errorf("RegionOf b = %+v, %v", got, ok)
	}
	if _, ok := as.RegionOf(0); ok {
		t.Error("address 0 should be outside any allocation")
	}
	if _, ok := as.RegionOf(a.End()); ok {
		t.Error("one-past-end should be outside (guard page)")
	}
}

func TestFirstTouchHomesPageAtToucher(t *testing.T) {
	as := NewAddressSpace(testMachine())
	r := as.Alloc(uint64(units.PageSize)*4, FirstTouch{})
	home, first, err := as.Touch(r.Base, true, 2)
	if err != nil || !first || home != 2 {
		t.Fatalf("first touch: home=%d first=%v err=%v, want 2,true,nil", home, first, err)
	}
	// Second touch by a different domain does not re-home.
	home, first, err = as.Touch(r.Base, false, 3)
	if err != nil || first || home != 2 {
		t.Fatalf("second touch: home=%d first=%v err=%v, want 2,false,nil", home, first, err)
	}
	// A different page of the same region first-touched elsewhere.
	home, first, _ = as.Touch(r.Base+uint64(units.PageSize), false, 3)
	if !first || home != 3 {
		t.Fatalf("other page: home=%d first=%v, want 3,true", home, first)
	}
}

func TestInterleavedPolicy(t *testing.T) {
	as := NewAddressSpace(testMachine())
	ps := uint64(units.PageSize)
	r := as.Alloc(ps*8, Interleaved{})
	for p := uint64(0); p < 8; p++ {
		home, _, err := as.Touch(r.Base+p*ps, true, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := topology.DomainID(p % 4); home != want {
			t.Errorf("page %d homed in %d, want %d", p, home, want)
		}
	}
}

func TestInterleavedExplicitDomains(t *testing.T) {
	as := NewAddressSpace(testMachine())
	ps := uint64(units.PageSize)
	r := as.Alloc(ps*4, Interleaved{Domains: []topology.DomainID{1, 3}})
	wants := []topology.DomainID{1, 3, 1, 3}
	for p, want := range wants {
		home, _, _ := as.Touch(r.Base+uint64(p)*ps, true, 0)
		if home != want {
			t.Errorf("page %d homed in %d, want %d", p, home, want)
		}
	}
}

func TestOnNodePolicy(t *testing.T) {
	as := NewAddressSpace(testMachine())
	r := as.Alloc(uint64(units.PageSize)*3, OnNode{Domain: 3})
	for p := uint64(0); p < 3; p++ {
		home, _, _ := as.Touch(r.Base+p*uint64(units.PageSize), true, 0)
		if home != 3 {
			t.Errorf("page %d homed in %d, want 3", p, home)
		}
	}
}

func TestBlockedPolicy(t *testing.T) {
	as := NewAddressSpace(testMachine())
	ps := uint64(units.PageSize)
	doms := []topology.DomainID{0, 1, 2, 3}
	r := as.Alloc(ps*8, Blocked{Domains: doms})
	wants := []topology.DomainID{0, 0, 1, 1, 2, 2, 3, 3}
	for p, want := range wants {
		home, _, _ := as.Touch(r.Base+uint64(p)*ps, false, 1)
		if home != want {
			t.Errorf("page %d homed in %d, want %d", p, home, want)
		}
	}
}

func TestBlockedPolicyUnevenPages(t *testing.T) {
	// 7 pages over 4 domains: blocks may differ by one page but every
	// page must be placed and block indices must be non-decreasing.
	as := NewAddressSpace(testMachine())
	ps := uint64(units.PageSize)
	r := as.Alloc(ps*7, Blocked{Domains: []topology.DomainID{0, 1, 2, 3}})
	prev := topology.DomainID(0)
	for p := uint64(0); p < 7; p++ {
		home, _, _ := as.Touch(r.Base+p*ps, false, 0)
		if home < prev {
			t.Errorf("page %d home %d decreased below %d", p, home, prev)
		}
		prev = home
	}
	if prev != 3 {
		t.Errorf("last page homed in %d, want 3", prev)
	}
}

func TestPageNode(t *testing.T) {
	as := NewAddressSpace(testMachine())
	r := as.Alloc(uint64(units.PageSize)*2, nil)
	if d, err := as.PageNode(r.Base); err != nil || d != topology.NoDomain {
		t.Fatalf("untouched PageNode = %d, %v; want NoDomain, nil", d, err)
	}
	as.Touch(r.Base, true, 1)
	if d, err := as.PageNode(r.Base); err != nil || d != 1 {
		t.Fatalf("PageNode = %d, %v; want 1, nil", d, err)
	}
	if _, err := as.PageNode(0x1); err != ErrOutOfRange {
		t.Fatalf("PageNode outside = %v, want ErrOutOfRange", err)
	}
}

func TestTouchOutOfRange(t *testing.T) {
	as := NewAddressSpace(testMachine())
	if _, _, err := as.Touch(0x1, false, 0); err != ErrOutOfRange {
		t.Fatalf("err = %v, want ErrOutOfRange", err)
	}
}

func TestProtectInteriorPagesOnly(t *testing.T) {
	as := NewAddressSpace(testMachine())
	ps := uint64(units.PageSize)
	r := as.Alloc(ps*4, nil)
	// Protect a range starting mid-page: the partial first page must
	// be skipped.
	n := as.Protect(r.Base+100, ps*3, ProtNone)
	if n != 2 {
		t.Fatalf("protected %d pages, want 2 (partials skipped)", n)
	}
	if as.ProtectionOf(r.Base) != ProtRW {
		t.Error("partial leading page should stay RW")
	}
	if as.ProtectionOf(r.Base+ps) != ProtNone {
		t.Error("first full page should be protected")
	}
}

func TestProtectWholePages(t *testing.T) {
	as := NewAddressSpace(testMachine())
	ps := uint64(units.PageSize)
	r := as.Alloc(ps*3, nil)
	if n := as.Protect(r.Base, ps*3, ProtNone); n != 3 {
		t.Fatalf("protected %d pages, want 3", n)
	}
}

func TestFaultDeliveryAndRetry(t *testing.T) {
	as := NewAddressSpace(testMachine())
	ps := uint64(units.PageSize)
	r := as.Alloc(ps*2, nil)
	as.Protect(r.Base, ps*2, ProtNone)

	var faults []Fault
	as.SetFaultHandler(func(f Fault) {
		faults = append(faults, f)
		as.Unprotect(f.Addr) // handler must restore access
	})

	home, first, err := as.Touch(r.Base+8, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(faults) != 1 {
		t.Fatalf("got %d faults, want 1", len(faults))
	}
	f := faults[0]
	if f.Addr != r.Base+8 || !f.IsWrite || f.Region.ID != r.ID {
		t.Errorf("fault = %+v", f)
	}
	if !first || home != 2 {
		t.Errorf("touch after fault: home=%d first=%v", home, first)
	}
	// Subsequent access to the unprotected page: no new fault.
	as.Touch(r.Base+16, false, 2)
	if len(faults) != 1 {
		t.Errorf("unprotected access faulted again: %d faults", len(faults))
	}
	// The second page is still protected.
	as.Touch(r.Base+ps, false, 1)
	if len(faults) != 2 {
		t.Errorf("second page should fault: %d faults", len(faults))
	}
}

func TestNoHandlerIgnoresProtection(t *testing.T) {
	as := NewAddressSpace(testMachine())
	ps := uint64(units.PageSize)
	r := as.Alloc(ps, nil)
	as.Protect(r.Base, ps, ProtNone)
	if _, _, err := as.Touch(r.Base, false, 0); err != nil {
		t.Fatalf("touch with no handler: %v", err)
	}
}

func TestFree(t *testing.T) {
	as := NewAddressSpace(testMachine())
	r := as.Alloc(uint64(units.PageSize), nil)
	as.Touch(r.Base, true, 0)
	as.Free(r)
	if !as.Freed(r) {
		t.Fatal("region not marked freed")
	}
	if _, _, err := as.Touch(r.Base, false, 0); err != ErrOutOfRange {
		t.Fatalf("touch after free = %v, want ErrOutOfRange", err)
	}
	as.Free(r) // double free is a no-op
}

func TestDomainPages(t *testing.T) {
	as := NewAddressSpace(testMachine())
	ps := uint64(units.PageSize)
	r := as.Alloc(ps*4, Interleaved{})
	for p := uint64(0); p < 4; p++ {
		as.Touch(r.Base+p*ps, true, 0)
	}
	counts := as.DomainPages()
	for d, c := range counts {
		if c != 1 {
			t.Errorf("domain %d has %d pages, want 1", d, c)
		}
	}
}

func TestPolicyOf(t *testing.T) {
	as := NewAddressSpace(testMachine())
	r := as.Alloc(100, OnNode{Domain: 2})
	if p := as.PolicyOf(r); p == nil || p.Name() != "on-node-2" {
		t.Fatalf("PolicyOf = %v", p)
	}
	if p := as.PolicyOf(Region{ID: -1}); p != nil {
		t.Error("PolicyOf invalid region should be nil")
	}
}

func TestConcurrentTouch(t *testing.T) {
	as := NewAddressSpace(testMachine())
	ps := uint64(units.PageSize)
	r := as.Alloc(ps*64, FirstTouch{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for p := uint64(0); p < 64; p++ {
				if _, _, err := as.Touch(r.Base+p*ps, false, topology.DomainID(g%4)); err != nil {
					t.Errorf("touch: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Every page must have exactly one home, and once set it is stable.
	for p := uint64(0); p < 64; p++ {
		d1, _ := as.PageNode(r.Base + p*ps)
		d2, _ := as.PageNode(r.Base + p*ps)
		if d1 == topology.NoDomain || d1 != d2 {
			t.Fatalf("page %d home unstable: %d vs %d", p, d1, d2)
		}
	}
}

// Property: Blocked placement maps every page to a valid domain and
// assigns each domain a contiguous page range.
func TestQuickBlockedContiguous(t *testing.T) {
	f := func(nPages uint8, nDoms uint8) bool {
		np := uint64(nPages%64) + 1
		nd := int(nDoms%8) + 1
		doms := make([]topology.DomainID, nd)
		for i := range doms {
			doms[i] = topology.DomainID(i)
		}
		p := Blocked{Domains: doms}
		prev := topology.DomainID(0)
		for i := uint64(0); i < np; i++ {
			d := p.PlacePage(i, np, 0)
			if d < 0 || int(d) >= nd {
				return false
			}
			if d < prev {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: first-touch homes are sticky — the home returned by the
// first Touch is returned by every later Touch regardless of toucher.
func TestQuickFirstTouchSticky(t *testing.T) {
	as := NewAddressSpace(testMachine())
	r := as.Alloc(uint64(units.PageSize)*256, FirstTouch{})
	f := func(pageIdx uint8, d1, d2 uint8) bool {
		addr := r.Base + uint64(pageIdx)*uint64(units.PageSize)
		h1, _, err := as.Touch(addr, false, topology.DomainID(d1%4))
		if err != nil {
			return false
		}
		h2, first2, err := as.Touch(addr, true, topology.DomainID(d2%4))
		return err == nil && h1 == h2 && !first2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// A fault handler that forgets to unprotect must not hang the
// simulation: after one delivery the access is retried and proceeds
// (a real program would SIGSEGV-loop; the simulator opts for forward
// progress so a buggy tool can't wedge an experiment).
func TestMisbehavingFaultHandlerDoesNotHang(t *testing.T) {
	as := NewAddressSpace(testMachine())
	r := as.Alloc(uint64(units.PageSize), nil)
	as.Protect(r.Base, uint64(units.PageSize), ProtNone)
	faults := 0
	as.SetFaultHandler(func(Fault) { faults++ }) // never unprotects
	if _, _, err := as.Touch(r.Base, true, 0); err != nil {
		t.Fatal(err)
	}
	if faults != 1 {
		t.Fatalf("handler ran %d times, want exactly 1", faults)
	}
	// The page stays protected (the handler's bug), and the next
	// access faults again — still exactly once per access.
	if _, _, err := as.Touch(r.Base, false, 0); err != nil {
		t.Fatal(err)
	}
	if faults != 2 {
		t.Fatalf("handler ran %d times across two accesses, want 2", faults)
	}
}
