package vm

import (
	"testing"

	"repro/internal/topology"
	"repro/internal/units"
)

func TestSetPolicyRebindsUntouchedPages(t *testing.T) {
	as := NewAddressSpace(testMachine())
	ps := uint64(units.PageSize)
	r := as.Alloc(ps*4, FirstTouch{})

	// Touch page 0 before rebinding: its home is fixed.
	as.Touch(r.Base, true, 2)

	// mbind-style rebinding to a block-wise policy.
	as.SetPolicy(r, Blocked{Domains: []topology.DomainID{0, 1, 2, 3}})
	if p := as.PolicyOf(r); p == nil || p.Name() != "blocked" {
		t.Fatalf("PolicyOf = %v", p)
	}

	// Page 0 keeps its first-touch home.
	if d, _ := as.PageNode(r.Base); d != 2 {
		t.Fatalf("already-touched page rehomed to %d", d)
	}
	// Untouched pages follow the new policy.
	for p := uint64(1); p < 4; p++ {
		home, _, _ := as.Touch(r.Base+p*ps, false, 0)
		if want := topology.DomainID(p); home != want {
			t.Errorf("page %d homed in %d, want %d (blocked)", p, home, want)
		}
	}
}

func TestSetPolicyIgnoresInvalid(t *testing.T) {
	as := NewAddressSpace(testMachine())
	r := as.Alloc(4096, nil)
	as.SetPolicy(r, nil)                            // nil policy: no-op
	as.SetPolicy(Region{ID: -1}, OnNode{Domain: 1}) // invalid region: no-op
	as.SetPolicy(Region{ID: 99}, OnNode{Domain: 1}) // out of range: no-op
	if p := as.PolicyOf(r); p == nil || p.Name() != "first-touch" {
		t.Fatalf("policy should be unchanged, got %v", p)
	}
}
