// Package isa represents a simulated program binary: its functions,
// source coordinates, memory-access sites (synthetic instruction
// pointers), and static variables with their symbol-table sizes.
//
// HPCToolkit accepts "a compiled binary executable ... compiled by any
// compiler" (Section 7). Our equivalent of that binary is a Program: a
// registry the workload builds once, giving every function a name and
// source file and every load/store/allocation instruction a stable
// SiteID that plays the role of the instruction pointer in address
// samples. The profiler maps SiteIDs back to source coordinates for
// code-centric attribution, and reads the static-variable symbol table
// for data-centric attribution, just as hpcrun reads ELF symbols.
//
// # Concurrency
//
// A Program is append-only while the workload constructs it (AddFunc,
// AddSite, AddStatic) and strictly read-only once Run begins — exactly
// like the ELF binary it stands in for. The experiment scheduler
// (internal/sched) relies on this: concurrent sweep cells may share one
// Program as long as construction finished before the first cell
// starts, and internal/core's race tests run eight cells against a
// shared Program under -race to keep the contract honest. Mutating a
// Program after handing it to a running cell is a data race.
package isa

import "fmt"

// FuncID identifies a function within a Program.
type FuncID int32

// SiteID identifies one instruction site (a load, store, allocation, or
// call site) within a Program. SiteIDs are dense and ordered by
// registration, which stands in for instruction addresses: SiteID+1 is
// "the next instruction", the relationship PEBS's off-by-one
// attribution perturbs (Section 8).
type SiteID int32

// NoSite marks the absence of an instruction site.
const NoSite SiteID = -1

// NoFunc marks the absence of a function.
const NoFunc FuncID = -1

// SiteKind classifies an instruction site.
type SiteKind uint8

// Site kinds.
const (
	KindLoad SiteKind = iota
	KindStore
	KindAlloc
	KindCall
)

// String names the kind.
func (k SiteKind) String() string {
	switch k {
	case KindLoad:
		return "load"
	case KindStore:
		return "store"
	case KindAlloc:
		return "alloc"
	case KindCall:
		return "call"
	default:
		return fmt.Sprintf("SiteKind(%d)", uint8(k))
	}
}

// Function is one routine in the simulated binary.
type Function struct {
	ID   FuncID
	Name string
	File string
	// StartLine is the line of the function definition.
	StartLine int
}

// Site is one instruction location.
type Site struct {
	ID   SiteID
	Fn   FuncID
	Line int
	Kind SiteKind
}

// StaticVar is a statically allocated variable from the symbol table.
type StaticVar struct {
	Name string
	Size uint64
}

// Program is the simulated binary's static description.
type Program struct {
	Name    string
	funcs   []Function
	sites   []Site
	statics []StaticVar
}

// NewProgram creates an empty program.
func NewProgram(name string) *Program {
	return &Program{Name: name}
}

// AddFunc registers a function and returns its id.
func (p *Program) AddFunc(name, file string, startLine int) FuncID {
	id := FuncID(len(p.funcs))
	p.funcs = append(p.funcs, Function{ID: id, Name: name, File: file, StartLine: startLine})
	return id
}

// AddSite registers an instruction site in fn at the given source line
// and returns its id.
func (p *Program) AddSite(fn FuncID, line int, kind SiteKind) SiteID {
	id := SiteID(len(p.sites))
	p.sites = append(p.sites, Site{ID: id, Fn: fn, Line: line, Kind: kind})
	return id
}

// AddStatic registers a static variable of the given size and returns
// its symbol index.
func (p *Program) AddStatic(name string, size uint64) int {
	p.statics = append(p.statics, StaticVar{Name: name, Size: size})
	return len(p.statics) - 1
}

// Func returns the function with the given id.
func (p *Program) Func(id FuncID) (Function, bool) {
	if id < 0 || int(id) >= len(p.funcs) {
		return Function{}, false
	}
	return p.funcs[id], true
}

// Site returns the site with the given id.
func (p *Program) Site(id SiteID) (Site, bool) {
	if id < 0 || int(id) >= len(p.sites) {
		return Site{}, false
	}
	return p.sites[id], true
}

// PrevSite returns the site preceding id in registration (instruction)
// order, the correction hpcrun performs for PEBS's off-by-one
// attribution by analysing the binary for the previous instruction.
func (p *Program) PrevSite(id SiteID) (Site, bool) {
	return p.Site(id - 1)
}

// NextSite returns the site following id.
func (p *Program) NextSite(id SiteID) (Site, bool) {
	return p.Site(id + 1)
}

// Funcs returns all functions. The slice must not be mutated.
func (p *Program) Funcs() []Function { return p.funcs }

// Sites returns all sites. The slice must not be mutated.
func (p *Program) Sites() []Site { return p.sites }

// Statics returns the static-variable symbol table. The slice must not
// be mutated.
func (p *Program) Statics() []StaticVar { return p.statics }

// NumSites returns the number of registered sites.
func (p *Program) NumSites() int { return len(p.sites) }

// SourceOf formats the source coordinate of a site as "file:line
// (function)", the form the viewer displays.
func (p *Program) SourceOf(id SiteID) string {
	s, ok := p.Site(id)
	if !ok {
		return "<unknown>"
	}
	f, ok := p.Func(s.Fn)
	if !ok {
		return fmt.Sprintf("<bad func>:%d", s.Line)
	}
	return fmt.Sprintf("%s:%d (%s)", f.File, s.Line, f.Name)
}
