package isa

import "testing"

func TestProgramRegistration(t *testing.T) {
	p := NewProgram("demo")
	f1 := p.AddFunc("main", "main.c", 1)
	f2 := p.AddFunc("kernel", "kernel.c", 10)
	if f1 != 0 || f2 != 1 {
		t.Fatalf("func ids = %d, %d", f1, f2)
	}
	s1 := p.AddSite(f1, 5, KindAlloc)
	s2 := p.AddSite(f2, 12, KindLoad)
	s3 := p.AddSite(f2, 13, KindStore)
	if s1 != 0 || s2 != 1 || s3 != 2 {
		t.Fatalf("site ids = %d, %d, %d", s1, s2, s3)
	}
	if p.NumSites() != 3 {
		t.Fatalf("NumSites = %d", p.NumSites())
	}

	fn, ok := p.Func(f2)
	if !ok || fn.Name != "kernel" || fn.File != "kernel.c" {
		t.Fatalf("Func = %+v, %v", fn, ok)
	}
	site, ok := p.Site(s2)
	if !ok || site.Fn != f2 || site.Line != 12 || site.Kind != KindLoad {
		t.Fatalf("Site = %+v, %v", site, ok)
	}
}

func TestLookupOutOfRange(t *testing.T) {
	p := NewProgram("demo")
	if _, ok := p.Func(NoFunc); ok {
		t.Error("NoFunc lookup should fail")
	}
	if _, ok := p.Site(NoSite); ok {
		t.Error("NoSite lookup should fail")
	}
	if _, ok := p.Site(0); ok {
		t.Error("empty program site lookup should fail")
	}
}

func TestPrevNextSite(t *testing.T) {
	p := NewProgram("demo")
	f := p.AddFunc("f", "f.c", 1)
	a := p.AddSite(f, 2, KindLoad)
	b := p.AddSite(f, 3, KindStore)

	prev, ok := p.PrevSite(b)
	if !ok || prev.ID != a {
		t.Fatalf("PrevSite(%d) = %+v, %v", b, prev, ok)
	}
	next, ok := p.NextSite(a)
	if !ok || next.ID != b {
		t.Fatalf("NextSite(%d) = %+v, %v", a, next, ok)
	}
	if _, ok := p.PrevSite(a); ok {
		t.Error("PrevSite of first site should fail")
	}
	if _, ok := p.NextSite(b); ok {
		t.Error("NextSite of last site should fail")
	}
}

func TestStatics(t *testing.T) {
	p := NewProgram("demo")
	i := p.AddStatic("nodelist", 8192)
	if i != 0 {
		t.Fatalf("static index = %d", i)
	}
	st := p.Statics()
	if len(st) != 1 || st[0].Name != "nodelist" || st[0].Size != 8192 {
		t.Fatalf("Statics = %+v", st)
	}
}

func TestSourceOf(t *testing.T) {
	p := NewProgram("demo")
	f := p.AddFunc("kern", "k.c", 1)
	s := p.AddSite(f, 42, KindLoad)
	if got := p.SourceOf(s); got != "k.c:42 (kern)" {
		t.Errorf("SourceOf = %q", got)
	}
	if got := p.SourceOf(NoSite); got != "<unknown>" {
		t.Errorf("SourceOf(NoSite) = %q", got)
	}
}

func TestSiteKindString(t *testing.T) {
	kinds := map[SiteKind]string{
		KindLoad: "load", KindStore: "store", KindAlloc: "alloc", KindCall: "call",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
