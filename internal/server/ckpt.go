// Mid-cell checkpoint wiring: the glue between core's resumable
// checkpoints, the store's blob tier, and the journal. A running cell
// periodically serializes its profiler state (profio checkpoint codec)
// into the store's checkpoint tier and journals a pointer to it; after
// a crash, Recover hands the pointers to the re-enqueued job and the
// worker resumes each interrupted cell from its latest checkpoint
// instead of recomputing from epoch zero. Checkpoints are an
// accelerator, never a source of truth: any missing, stale, or corrupt
// blob degrades to a full recompute, and the resumed profile's bytes
// are identical to an uninterrupted run's (core's invariant).
package server

import (
	"context"
	"errors"
	"time"

	"repro/internal/core"
	"repro/internal/profio"
	"repro/internal/progress"
	"repro/internal/store"
)

// autotuneBootstrapSnapshotEvery is the snapshot cadence autotune uses
// for a workload with no recorded convergence history yet: the first
// run observes at this cadence so later runs have history to tune from.
const autotuneBootstrapSnapshotEvery = 4

// cadenceFor resolves the effective snapshot and checkpoint cadences
// for one workload. Explicitly configured cadences always win; with
// Autotune on, zero cadences are seeded from the store's convergence
// history (and the snapshot cadence from a bootstrap default when there
// is no history yet, so the history can ever be learned).
func (s *Server) cadenceFor(workload string) (snapEvery, ckptEvery int) {
	snapEvery, ckptEvery = s.snapshotEvery, s.checkpointEvery
	if !s.autotune {
		return snapEvery, ckptEvery
	}
	sn, ck, ok := s.st.SuggestCadence(workload)
	if snapEvery == 0 {
		if ok {
			snapEvery = sn
		} else {
			snapEvery = autotuneBootstrapSnapshotEvery
		}
	}
	if ckptEvery == 0 && ok {
		ckptEvery = ck
	}
	return snapEvery, ckptEvery
}

// observeConvergence chains a convergence observer onto cfg.OnSnapshot
// and returns a commit func: called after a successful run, it records
// the first converged epoch in the store's autotune history. A no-op
// when autotune is off or snapshots are disabled.
func (s *Server) observeConvergence(workload string, cfg *core.Config) (commit func()) {
	if !s.autotune || cfg.SnapshotEvery <= 0 {
		return func() {}
	}
	var epoch int
	prev := cfg.OnSnapshot
	cfg.OnSnapshot = func(snap progress.Snapshot) {
		if snap.Converged && epoch == 0 {
			epoch = snap.Epoch
		}
		if prev != nil {
			prev(snap)
		}
	}
	return func() {
		if epoch <= 0 {
			return
		}
		if err := s.st.RecordConvergence(workload, epoch); err != nil {
			s.log.Warn("autotune record failed", "workload", workload, "err", err)
		}
	}
}

// installCheckpointing wires mid-cell checkpoint capture into cfg:
// every cadence epochs the profiler's state is encoded, persisted in
// the store's checkpoint tier, and journaled as a resume pointer.
// Checkpointing is best-effort — a failed encode or write costs
// resumability, never the run.
func (s *Server) installCheckpointing(job *Job, cellKey store.Key, ckptEvery int, cfg *core.Config) {
	if ckptEvery <= 0 {
		return
	}
	cfg.CheckpointEvery = ckptEvery
	cfg.OnCheckpoint = func(ck *core.Checkpoint) {
		blob, err := profio.EncodeCheckpointBytes(ck)
		if err != nil {
			s.log.Warn("checkpoint encode failed", "id", job.id, "key", string(cellKey), "err", err)
			return
		}
		if err := s.st.PutCheckpoint(cellKey, ck.Epoch, blob); err != nil {
			s.log.Warn("checkpoint persist failed", "id", job.id, "key", string(cellKey), "err", err)
			return
		}
		s.m.ckptsWritten.Inc()
		s.journalCkpt(job, cellKey, ck.Epoch)
	}
}

// journalCkpt appends a "ckpt" pointer record for one cell. Best-effort
// like every non-Submit append: losing the pointer only costs the
// resume shortcut after a crash.
func (s *Server) journalCkpt(job *Job, cellKey store.Key, epoch int) {
	if s.jl == nil {
		return
	}
	rec := store.JournalRecord{
		ID:        job.id,
		State:     "ckpt",
		CkptCell:  string(cellKey),
		CkptEpoch: epoch,
		Unix:      time.Now().Unix(),
	}
	if err := s.jl.Append(rec); err != nil {
		s.log.Warn("journal checkpoint pointer failed", "id", job.id, "err", err)
	}
}

// resumeCheckpoint loads the decoded checkpoint a recovered job should
// resume cellKey from, or (nil, false) when the cell must run from
// scratch: no journal pointer, no blob, or a blob that fails its CRCs
// (quarantined so the damage stays inspectable).
func (s *Server) resumeCheckpoint(job *Job, cellKey store.Key) (*core.Checkpoint, bool) {
	if job.ckptEpoch(cellKey) <= 0 {
		return nil, false
	}
	epoch, blob, err := s.st.LatestCheckpoint(cellKey)
	if err != nil {
		s.log.Warn("journaled checkpoint missing, recomputing cell",
			"id", job.id, "key", string(cellKey), "err", err)
		return nil, false
	}
	ck, err := profio.DecodeCheckpointBytes(blob)
	if err != nil {
		s.st.QuarantineCheckpoints(cellKey)
		s.log.Warn("checkpoint blob corrupt, quarantined, recomputing cell",
			"id", job.id, "key", string(cellKey), "epoch", epoch, "err", err)
		return nil, false
	}
	return ck, true
}

// runCell executes one cell's config, resuming from rck when present.
// A checkpoint core refuses (ErrResume: wrong shape for this spec, or
// an epoch past the program's end) is quarantined and the cell reruns
// from scratch — a stale or mismatched checkpoint must never fail a
// job that would succeed without it.
func (s *Server) runCell(ctx context.Context, job *Job, cellKey store.Key,
	cfg core.Config, app core.App, rck *core.Checkpoint) (*core.Profile, error) {
	if rck != nil {
		resumed := cfg
		resumed.Resume = rck
		p, err := core.AnalyzeCtx(ctx, resumed, app)
		if err == nil {
			s.m.cellsResumed.Inc()
			s.log.Info("cell resumed from checkpoint",
				"id", job.id, "key", string(cellKey), "epoch", rck.Epoch)
			return p, nil
		}
		if !errors.Is(err, core.ErrResume) {
			return nil, err
		}
		s.st.QuarantineCheckpoints(cellKey)
		s.log.Warn("checkpoint rejected by core, recomputing cell",
			"id", job.id, "key", string(cellKey), "err", err)
	}
	return core.AnalyzeCtx(ctx, cfg, app)
}
