package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/store"
)

// fastRetry shrinks the backoff so retry tests run in milliseconds.
func fastRetry(o *Options) {
	o.MaxRetries = 3
	o.RetryBase = time.Millisecond
	o.RetryCap = 4 * time.Millisecond
}

func TestFlakyJobRetriesToSuccess(t *testing.T) {
	s, c := newTestServer(t, fastRetry)
	spec := fastSpec("baseline")
	spec.Chaos = "flaky=2"
	st, err := c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	final := mustDone(t, c, st.ID)
	if final.Attempt != 2 {
		t.Fatalf("attempt = %d, want 2 (two injected transient failures)", final.Attempt)
	}
	if m := s.Metrics(); m.Recovery.Retried != 2 {
		t.Fatalf("retried = %d, want 2", m.Recovery.Retried)
	}
	// The successful attempt's profile is byte-identical to the same
	// spec without the flaky plan... under its own key; what matters
	// here is that the profile exists and the client never re-submitted.
	if !s.Store().Has(final.Key) {
		t.Fatal("flaky job's profile missing from the store")
	}
}

func TestTransientExhaustionFailsJob(t *testing.T) {
	s, c := newTestServer(t, func(o *Options) {
		o.MaxRetries = 1
		o.RetryBase = time.Millisecond
	})
	spec := fastSpec("baseline")
	spec.Chaos = "flaky=5"
	st, err := c.Submit(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	final := waitTerminal(t, c, st.ID)
	if final.State != StateFailed || !strings.Contains(final.Error, "flaky") {
		t.Fatalf("state %s err %q, want failed with the injected error", final.State, final.Error)
	}
	if final.Attempt != 1 {
		t.Fatalf("attempt = %d, want 1 (retry budget exhausted)", final.Attempt)
	}
	if m := s.Metrics(); m.Recovery.Retried != 1 {
		t.Fatalf("retried = %d, want 1", m.Recovery.Retried)
	}
}

// waitTerminal polls until the job is terminal, any state.
func waitTerminal(t *testing.T, c *Client, id string) JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := c.Job(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, st.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestBreakerTripsFastFailsAndRecovers drives a spec that fails
// permanently (the store directory is gone, so persisting the computed
// profile fails) into the breaker, asserts fast-fail with Retry-After,
// then half-opens it.
func TestBreakerTripsFastFailsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	stDir := filepath.Join(dir, "profiles")
	if err := os.MkdirAll(stDir, 0o755); err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(stDir, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{
		Store: st, Workers: 1, QueueDepth: 8,
		MaxRetries: -1, BreakerThreshold: 2, BreakerCooldown: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	// Every compute now fails to persist: a permanent failure.
	if err := os.RemoveAll(stDir); err != nil {
		t.Fatal(err)
	}
	spec := fastSpec("baseline")
	for i := 0; i < 2; i++ {
		job, err := s.Submit(spec)
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		<-job.Done()
		if got := job.Status(); got.State != StateFailed {
			t.Fatalf("submission %d: state %s, want failed", i, got.State)
		}
	}
	// Threshold reached: the third submission fast-fails, never queued.
	_, err = s.Submit(spec)
	if !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("want ErrCircuitOpen, got %v", err)
	}
	if _, ok := RetryAfterHint(err); !ok {
		t.Fatal("circuit-open error carries no Retry-After hint")
	}
	m := s.Metrics()
	if m.Recovery.BreakerTrips != 1 || m.Recovery.BreakerFastFails != 1 {
		t.Fatalf("trips/fastfails = %d/%d, want 1/1", m.Recovery.BreakerTrips, m.Recovery.BreakerFastFails)
	}
	// A different spec is unaffected: the breaker is per-spec-key.
	if _, err := s.Submit(fastSpec("interleave")); err != nil {
		t.Fatalf("unrelated spec rejected: %v", err)
	}
	// After the cooldown the breaker half-opens; restore the store so
	// the probe succeeds and closes it.
	if err := os.MkdirAll(stDir, 0o755); err != nil {
		t.Fatal(err)
	}
	time.Sleep(60 * time.Millisecond)
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatalf("half-open probe refused: %v", err)
	}
	<-job.Done()
	if got := job.Status(); got.State != StateDone {
		t.Fatalf("probe state %s (%s), want done", got.State, got.Error)
	}
	// Closed again: submissions flow.
	if _, err := s.Submit(spec); err != nil {
		t.Fatalf("closed breaker still refusing: %v", err)
	}
}

func TestDeadlineAwareShedding(t *testing.T) {
	s, _ := newTestServer(t, func(o *Options) {
		o.Workers = 1
		o.JobTimeout = 50 * time.Millisecond
	})
	// Feed the estimator a history of 1s runs: any new job's expected
	// completion (≥ one mean run) blows the 50ms deadline.
	for i := 0; i < shedMinSamples; i++ {
		s.m.run.ObserveUs(1_000_000)
	}
	_, err := s.Submit(fastSpec("baseline"))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("want ErrOverloaded, got %v", err)
	}
	if d, ok := RetryAfterHint(err); !ok || d <= 0 {
		t.Fatalf("shed error hint = %v/%v, want a positive Retry-After", d, ok)
	}
	m := s.Metrics()
	if m.Recovery.Shed != 1 || m.Jobs.Rejected != 1 {
		t.Fatalf("shed/rejected = %d/%d, want 1/1", m.Recovery.Shed, m.Jobs.Rejected)
	}
}

func TestSheddingNeedsHistory(t *testing.T) {
	// A cold daemon (fewer than shedMinSamples completed runs) must
	// admit everything, however tight the deadline.
	s, c := newTestServer(t, func(o *Options) {
		o.JobTimeout = 30 * time.Second
	})
	st, err := c.Submit(context.Background(), fastSpec("baseline"))
	if err != nil {
		t.Fatal(err)
	}
	mustDone(t, c, st.ID)
	if m := s.Metrics(); m.Recovery.Shed != 0 {
		t.Fatalf("cold daemon shed %d jobs", m.Recovery.Shed)
	}
}

func TestRetryAfterHeaderOnBackpressure(t *testing.T) {
	started := make(chan *Job, 1)
	release := make(chan struct{})
	_, c := newTestServer(t, func(o *Options) {
		o.Workers = 1
		o.QueueDepth = 1
		o.BeforeRun = func(j *Job) {
			started <- j
			<-release
		}
	})
	defer close(release)
	ctx := context.Background()
	if _, err := c.Submit(ctx, fastSpec("baseline")); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := c.Submit(ctx, fastSpec("interleave")); err != nil {
		t.Fatal(err)
	}
	// Queue full: raw POST sees 429 plus a Retry-After header.
	resp, err := http.Post(c.BaseURL+"/api/v1/jobs", "application/json",
		strings.NewReader(`{"workload":"blackscholes","strategy":"blockwise","iters":1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
}

func TestSweepJobCheckpointsAndReplays(t *testing.T) {
	s, c := newTestServer(t, nil)
	ctx := context.Background()
	sweep := Spec{Workload: "blackscholes", Strategy: "baseline, interleave", Iters: 1}
	st, err := c.Submit(ctx, sweep)
	if err != nil {
		t.Fatal(err)
	}
	final := mustDone(t, c, st.ID)
	if len(final.Cells) != 2 {
		t.Fatalf("cells = %d, want 2", len(final.Cells))
	}
	for i, cell := range final.Cells {
		if cell.State != StateDone || !cell.Key.Valid() {
			t.Fatalf("cell %d: %+v", i, cell)
		}
		if !s.Store().Has(cell.Key) {
			t.Fatalf("cell %d profile not checkpointed", i)
		}
	}
	// Cell profiles are byte-identical to single-spec submissions.
	single := fastSpec("interleave")
	sj, err := c.Submit(ctx, single)
	if err != nil {
		t.Fatal(err)
	}
	sres := mustDone(t, c, sj.ID)
	if sres.Key != final.Cells[1].Key {
		t.Fatalf("sweep cell key %s != single-spec key %s", final.Cells[1].Key, sres.Key)
	}
	if !sres.CacheHit {
		t.Fatal("single spec after sweep should be a cache hit (same bytes, same key)")
	}
	m := s.Metrics()
	if m.Recovery.CellsRecomputed != 2 {
		t.Fatalf("cells recomputed = %d, want 2", m.Recovery.CellsRecomputed)
	}
	// An identical sweep replays every cell from the checkpoint.
	st2, err := c.Submit(ctx, sweep)
	if err != nil {
		t.Fatal(err)
	}
	final2 := mustDone(t, c, st2.ID)
	if !final2.CacheHit {
		t.Fatal("fully checkpointed sweep not reported as a cache hit")
	}
	if m := s.Metrics(); m.Recovery.CellsReplayed != 2 {
		t.Fatalf("cells replayed = %d, want 2", m.Recovery.CellsReplayed)
	}
}

func TestSweepResumesFromPartialCheckpoint(t *testing.T) {
	s, c := newTestServer(t, nil)
	ctx := context.Background()
	// Precompute one future cell via a single-spec job.
	pre, err := c.Submit(ctx, fastSpec("baseline"))
	if err != nil {
		t.Fatal(err)
	}
	mustDone(t, c, pre.ID)
	sweep := Spec{Workload: "blackscholes", Strategy: "baseline,interleave,blockwise", Iters: 1}
	st, err := c.Submit(ctx, sweep)
	if err != nil {
		t.Fatal(err)
	}
	final := mustDone(t, c, st.ID)
	if final.CacheHit {
		t.Fatal("partially checkpointed sweep must not claim a full cache hit")
	}
	m := s.Metrics()
	if m.Recovery.CellsReplayed != 1 {
		t.Fatalf("cells replayed = %d, want 1 (the precomputed cell)", m.Recovery.CellsReplayed)
	}
	if m.Recovery.CellsRecomputed != 2 {
		t.Fatalf("cells recomputed = %d, want 2 (only the missing cells)", m.Recovery.CellsRecomputed)
	}
}

// TestJournalRecoveryInProcess simulates a crash without a process
// boundary: server A journals a finished job and abandons two pending
// ones; server B recovers the journal into the same store and drives
// everything terminal.
func TestJournalRecoveryInProcess(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, store.JournalName)
	stA, err := store.Open(filepath.Join(dir, "profiles"), 0)
	if err != nil {
		t.Fatal(err)
	}
	jlA, err := store.OpenJournal(jpath, 0)
	if err != nil {
		t.Fatal(err)
	}
	held := make(chan *Job, 1)
	release := make(chan struct{})
	defer close(release)
	a, err := New(Options{
		Store: stA, Workers: 1, QueueDepth: 8, Journal: jlA,
		BeforeRun: func(j *Job) {
			if j.spec.Strategy == "interleave" {
				held <- j
				<-release
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	// Job 1 completes and is journaled terminal.
	j1, err := a.Submit(fastSpec("baseline"))
	if err != nil {
		t.Fatal(err)
	}
	<-j1.Done()
	// Job 2 is claimed and held mid-"run"; job 3 never leaves the queue.
	j2, err := a.Submit(fastSpec("interleave"))
	if err != nil {
		t.Fatal(err)
	}
	<-held
	j3, err := a.Submit(fastSpec("blockwise"))
	if err != nil {
		t.Fatal(err)
	}
	// "Crash": abandon A (no drain, no shutdown), cut its journal.
	jlA.Close()

	rec, err := store.RecoverJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Quarantined) != 0 {
		t.Fatalf("clean journal quarantined records: %+v", rec.Quarantined)
	}
	if err := store.CompactJournal(jpath, rec); err != nil {
		t.Fatal(err)
	}
	jlB, err := store.OpenJournal(jpath, rec.MaxSeq)
	if err != nil {
		t.Fatal(err)
	}
	stB, err := store.Open(filepath.Join(dir, "profiles"), 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(Options{Store: stB, Workers: 2, QueueDepth: 8, Journal: jlB})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Recover(rec); err != nil {
		t.Fatal(err)
	}
	b.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		b.Shutdown(ctx)
	}()

	// The finished job answers from the table without re-running.
	got, ok := b.JobByID(j1.Status().ID)
	if !ok {
		t.Fatal("terminal job lost across recovery")
	}
	if st := got.Status(); st.State != StateDone || st.Key != j1.Status().Key {
		t.Fatalf("recovered terminal job: %+v", st)
	}
	// The interrupted jobs re-run to done.
	for _, id := range []string{j2.Status().ID, j3.Status().ID} {
		rj, ok := b.JobByID(id)
		if !ok {
			t.Fatalf("job %s not recovered", id)
		}
		select {
		case <-rj.Done():
		case <-time.After(60 * time.Second):
			t.Fatalf("recovered job %s never finished", id)
		}
		st := rj.Status()
		if st.State != StateDone {
			t.Fatalf("recovered job %s: %s (%s)", id, st.State, st.Error)
		}
		if !st.Recovered {
			t.Fatalf("job %s not flagged recovered", id)
		}
		if !stB.Has(st.Key) {
			t.Fatalf("job %s profile missing after recovery", id)
		}
	}
	if m := b.Metrics(); m.Recovery.Recovered != 2 {
		t.Fatalf("recovered = %d, want 2", m.Recovery.Recovered)
	}
	// Job numbering continues past the replayed IDs.
	j4, err := b.Submit(fastSpec("guided"))
	if err != nil {
		t.Fatal(err)
	}
	if seq, ok := parseJobSeq(j4.Status().ID); !ok || seq != 4 {
		t.Fatalf("post-recovery id %s, want job-000004", j4.Status().ID)
	}
}

func TestSubmitRefusedWhenJournalBroken(t *testing.T) {
	dir := t.TempDir()
	jl, err := store.OpenJournal(filepath.Join(dir, store.JournalName), 0)
	if err != nil {
		t.Fatal(err)
	}
	jl.Close() // appends now fail: durability cannot be promised
	st, err := store.Open(filepath.Join(dir, "profiles"), 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{Store: st, Workers: 1, QueueDepth: 4, Journal: jl})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	if _, err := s.Submit(fastSpec("baseline")); err == nil {
		t.Fatal("submission accepted without a durable queued record")
	}
}

func TestClientRetriesTransientRefusals(t *testing.T) {
	var hits int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		if hits <= 2 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"draining"}`)
			return
		}
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"id":"job-000001","state":"done"}`)
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	c.RetryBase = time.Millisecond
	// Retry-After: 1 would wait a second per attempt; keep the test fast
	// by accepting it (2 × 1s is still fine) — but bound the total.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	st, err := c.Job(ctx, "job-000001")
	if err != nil {
		t.Fatalf("client gave up: %v (after %d hits)", err, hits)
	}
	if st.State != StateDone || hits != 3 {
		t.Fatalf("state %s after %d hits, want done after 3", st.State, hits)
	}
}

func TestClientRetryBudgetExhausts(t *testing.T) {
	var hits int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits++
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"queue full"}`)
	}))
	defer ts.Close()
	c := NewClient(ts.URL)
	c.Retries = 2
	c.RetryBase = time.Millisecond
	_, err := c.Job(context.Background(), "job-000001")
	if err == nil {
		t.Fatal("client swallowed a persistent 429")
	}
	if hits != 3 {
		t.Fatalf("hits = %d, want 3 (1 + 2 retries)", hits)
	}
	if !strings.Contains(err.Error(), "429") {
		t.Fatalf("final error lost the status: %v", err)
	}
}
