package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/diff"
	"repro/internal/profio"
	"repro/internal/store"
)

// fastSpec is the cheapest real job: a one-iteration blackscholes run.
func fastSpec(strategy string) Spec {
	return Spec{Workload: "blackscholes", Strategy: strategy, Iters: 1}
}

// newTestServer stands up a daemon over httptest and tears it down
// (drain + store flush) when the test ends.
func newTestServer(t *testing.T, mod func(*Options)) (*Server, *Client) {
	t.Helper()
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Store: st, Workers: 2, QueueDepth: 16}
	if mod != nil {
		mod(&opts)
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		ts.Close()
	})
	c := NewClient(ts.URL)
	c.Poll = 5 * time.Millisecond
	// Tests assert exact rejection counts and statuses; the client's
	// transparent 429/503 retry would blur them.
	c.Retries = -1
	return s, c
}

// refProfileBytes computes a spec's profile locally over the same
// Build+Analyze+Save path the CLI's -profile flag uses.
func refProfileBytes(t *testing.T, spec Spec) []byte {
	t.Helper()
	cfg, app, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Analyze(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := profio.Save(&buf, p); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func mustDone(t *testing.T, c *Client, id string) JobStatus {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := c.Wait(ctx, id)
	if err != nil {
		t.Fatalf("wait %s: %v", id, err)
	}
	if st.State != StateDone {
		t.Fatalf("job %s: state %s (error %q), want done", id, st.State, st.Error)
	}
	return st
}

func TestSubmitRunAndViews(t *testing.T) {
	_, c := newTestServer(t, nil)
	ctx := context.Background()
	spec := fastSpec("baseline")

	st, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID == "" || !st.Key.Valid() {
		t.Fatalf("accepted job malformed: %+v", st)
	}
	fin := mustDone(t, c, st.ID)
	if fin.CacheHit {
		t.Fatal("first run of a spec reported a cache hit")
	}
	if fin.StartedAt.IsZero() || fin.FinishedAt.IsZero() {
		t.Fatalf("timestamps missing: %+v", fin)
	}

	// Daemon-served measurement bytes are identical to a local run's
	// (the CLI -profile path: Build + Analyze + Save).
	raw, err := c.ProfileBytes(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if ref := refProfileBytes(t, spec); !bytes.Equal(raw, ref) {
		t.Fatalf("daemon profile differs from local run: %d vs %d bytes", len(raw), len(ref))
	}

	text, err := c.Text(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "blackscholes") {
		t.Fatalf("text view does not mention the workload:\n%s", text)
	}
	page, err := c.HTMLReport(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(page, "<html") {
		t.Fatal("html view is not an HTML page")
	}

	// A duplicate submission is served from the store.
	dup, err := c.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if dup.ID == st.ID {
		t.Fatal("duplicate submission reused the job ID")
	}
	if fin2 := mustDone(t, c, dup.ID); !fin2.CacheHit {
		t.Fatal("duplicate spec was recomputed, not served from the store")
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.StoreHits == 0 {
		t.Fatal("store hit counter did not move on a duplicate spec")
	}
	if m.Jobs.Done != 2 {
		t.Fatalf("done = %d, want 2", m.Jobs.Done)
	}
	if m.LatencyUs["total"].Count != 2 {
		t.Fatalf("total latency observations = %d, want 2", m.LatencyUs["total"].Count)
	}
}

// TestEndpointErrors is the table of non-2xx contracts.
func TestEndpointErrors(t *testing.T) {
	s, c := newTestServer(t, nil)
	_ = s
	base := c.BaseURL
	absent := store.Key(strings.Repeat("a", 64))

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		want   int
	}{
		{"unknown job", "GET", "/api/v1/jobs/job-999999", "", 404},
		{"cancel unknown job", "DELETE", "/api/v1/jobs/job-999999", "", 404},
		{"malformed body", "POST", "/api/v1/jobs", "{", 400},
		{"unknown field", "POST", "/api/v1/jobs", `{"frobnicate":1}`, 400},
		{"invalid spec", "POST", "/api/v1/jobs", `{"workload":"doom"}`, 400},
		{"bad chaos plan", "POST", "/api/v1/jobs", `{"workload":"lulesh","chaos":"drop=nope"}`, 400},
		{"invalid profile key", "GET", "/api/v1/profiles/not-a-key", "", 400},
		{"absent profile key", "GET", "/api/v1/profiles/" + string(absent), "", 404},
		{"diff without refs", "GET", "/api/v1/diff", "", 400},
		{"diff unknown refs", "GET", "/api/v1/diff?a=job-999999&b=job-999998", "", 404},
		{"diff bad view", "GET", "/api/v1/diff?a=" + string(absent) + "&b=" + string(absent), "", 404},
		{"healthz", "GET", "/healthz", "", 200},
		{"readyz", "GET", "/readyz", "", 200},
		{"metrics", "GET", "/metrics", "", 200},
		{"list jobs", "GET", "/api/v1/jobs?state=done", "", 200},
		{"list profiles", "GET", "/api/v1/profiles", "", 200},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var body *strings.Reader
			if tc.body != "" {
				body = strings.NewReader(tc.body)
			} else {
				body = strings.NewReader("")
			}
			req, err := http.NewRequest(tc.method, base+tc.path, body)
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				t.Fatalf("%s %s = %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
			}
			if resp.StatusCode >= 400 {
				var eb errorBody
				if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error == "" {
					t.Fatalf("error response has no JSON error body (decode err %v)", err)
				}
			}
		})
	}
}

func TestBackpressureAndViewConflict(t *testing.T) {
	started := make(chan *Job, 8)
	release := make(chan struct{})
	_, c := newTestServer(t, func(o *Options) {
		o.Workers = 1
		o.QueueDepth = 1
		o.BeforeRun = func(j *Job) {
			started <- j
			<-release
		}
	})
	ctx := context.Background()

	// Job 1 is claimed by the only worker and held in BeforeRun.
	j1, err := c.Submit(ctx, fastSpec("baseline"))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("worker never claimed job 1")
	}
	// Job 2 fills the queue; job 3 must bounce with 429.
	j2, err := c.Submit(ctx, fastSpec("interleave"))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Submit(ctx, fastSpec("blockwise"))
	if err == nil {
		t.Fatal("third submission accepted despite a full queue")
	}
	if !strings.Contains(err.Error(), "429") {
		t.Fatalf("full queue error is not a 429: %v", err)
	}

	// A running job has no views yet: 409, not 404 or 200.
	resp, err := http.Get(c.BaseURL + "/api/v1/jobs/" + j1.ID + "?view=text")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("view of a running job = %d, want 409", resp.StatusCode)
	}
	// Same for a diff that references it.
	resp, err = http.Get(c.BaseURL + "/api/v1/diff?a=" + j1.ID + "&b=" + j1.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("diff of a running job = %d, want 409", resp.StatusCode)
	}

	close(release)
	mustDone(t, c, j1.ID)
	mustDone(t, c, j2.ID)
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Jobs.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", m.Jobs.Rejected)
	}
	if m.Jobs.Submitted != 2 || m.Jobs.Done != 2 {
		t.Fatalf("submitted/done = %d/%d, want 2/2", m.Jobs.Submitted, m.Jobs.Done)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	started := make(chan *Job, 8)
	release := make(chan struct{})
	_, c := newTestServer(t, func(o *Options) {
		o.Workers = 1
		o.QueueDepth = 4
		o.BeforeRun = func(j *Job) {
			started <- j
			<-release
		}
	})
	ctx := context.Background()

	j1, err := c.Submit(ctx, fastSpec("baseline"))
	if err != nil {
		t.Fatal(err)
	}
	<-started
	j2, err := c.Submit(ctx, fastSpec("interleave"))
	if err != nil {
		t.Fatal(err)
	}

	st, err := c.Cancel(ctx, j2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("cancelled queued job is %s, want canceled", st.State)
	}
	close(release)
	mustDone(t, c, j1.ID)

	// The cancelled job must never have run.
	st, err = c.Job(ctx, j2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled || !st.StartedAt.IsZero() {
		t.Fatalf("cancelled job ran anyway: %+v", st)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Jobs.Canceled != 1 || m.Jobs.Done != 1 || m.Jobs.Queued != 0 || m.Jobs.Running != 0 {
		t.Fatalf("gauges off after cancel: %+v", m.Jobs)
	}
}

func TestCancelMidRun(t *testing.T) {
	started := make(chan *Job, 8)
	release := make(chan struct{})
	var once sync.Once
	_, c := newTestServer(t, func(o *Options) {
		o.Workers = 1
		o.QueueDepth = 4
		o.BeforeRun = func(j *Job) {
			var first bool
			once.Do(func() { first = true })
			if first {
				started <- j
				<-release
			}
		}
	})
	ctx := context.Background()

	j1, err := c.Submit(ctx, fastSpec("baseline"))
	if err != nil {
		t.Fatal(err)
	}
	<-started // the worker holds j1 in the running state
	st, err := c.Cancel(ctx, j1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("mid-run cancel left state %s", st.State)
	}
	close(release)

	// The worker observes the cancelled context, records nothing over
	// the canceled state, and stays healthy for the next job.
	j2, err := c.Submit(ctx, fastSpec("baseline"))
	if err != nil {
		t.Fatal(err)
	}
	fin := mustDone(t, c, j2.ID)
	if fin.CacheHit {
		t.Fatal("cancelled job leaked a profile into the store")
	}
	st, err = c.Job(ctx, j1.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateCanceled {
		t.Fatalf("job 1 ended %s, want canceled", st.State)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Jobs.Canceled != 1 || m.Jobs.Done != 1 || m.Jobs.Running != 0 {
		t.Fatalf("gauges off after mid-run cancel: %+v", m.Jobs)
	}
}

func TestJobTimeoutFails(t *testing.T) {
	_, c := newTestServer(t, func(o *Options) {
		o.Workers = 1
		o.JobTimeout = 30 * time.Millisecond
		o.BeforeRun = func(*Job) { time.Sleep(80 * time.Millisecond) }
	})
	ctx := context.Background()
	j, err := c.Submit(ctx, fastSpec("baseline"))
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Wait(ctx, j.ID)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || !strings.Contains(st.Error, "deadline") {
		t.Fatalf("timed-out job = %s (%q), want failed with a deadline error", st.State, st.Error)
	}
}

func TestDiffEndpoint(t *testing.T) {
	_, c := newTestServer(t, nil)
	ctx := context.Background()
	a, err := c.Submit(ctx, fastSpec("baseline"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Submit(ctx, fastSpec("interleave"))
	if err != nil {
		t.Fatal(err)
	}
	sa, sb := mustDone(t, c, a.ID), mustDone(t, c, b.ID)

	// JSON view by job ID.
	resp, err := http.Get(c.BaseURL + "/api/v1/diff?a=" + a.ID + "&b=" + b.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("diff = %d, want 200", resp.StatusCode)
	}
	var res diff.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	if res.Verdict == "" {
		t.Fatal("diff result has no verdict")
	}

	// Text view by store key.
	text, err := c.DiffText(ctx, string(sa.Key), string(sb.Key))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "=>") {
		t.Fatalf("diff text has no verdict line:\n%s", text)
	}
}

func TestShutdownDrainsAndRefuses(t *testing.T) {
	s, c := newTestServer(t, func(o *Options) { o.Workers = 2; o.QueueDepth = 32 })
	ctx := context.Background()
	var ids []string
	for _, strat := range []string{"baseline", "interleave", "baseline", "guided", "interleave"} {
		st, err := c.Submit(ctx, fastSpec(strat))
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	sctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// The backlog ran to completion, not cancellation.
	for _, id := range ids {
		st, err := c.Job(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State != StateDone {
			t.Fatalf("job %s drained as %s, want done", id, st.State)
		}
	}
	// New work is refused with 503, and readyz flips.
	_, err := c.Submit(ctx, fastSpec("blockwise"))
	if err == nil || !strings.Contains(err.Error(), "503") {
		t.Fatalf("submit during drain = %v, want 503", err)
	}
	resp, err := http.Get(c.BaseURL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain = %d, want 503", resp.StatusCode)
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Jobs.Queued != 0 || m.Jobs.Running != 0 || m.Jobs.Done != int64(len(ids)) {
		t.Fatalf("post-drain gauges off: %+v", m.Jobs)
	}
}

// TestConcurrentMixedSubmissions is the acceptance check: 100
// concurrent submissions of mixed specs complete without error,
// duplicates are served from the store, every profile is byte-identical
// to a serial local run, and /metrics + /healthz stay consistent
// throughout.
func TestConcurrentMixedSubmissions(t *testing.T) {
	const jobs = 100
	s, c := newTestServer(t, func(o *Options) { o.Workers = 8; o.QueueDepth = jobs + 8 })
	ctx := context.Background()

	// Ten distinct specs; every spec is submitted ten times.
	var specs []Spec
	for _, mech := range []string{"IBS", "PEBS-LL"} {
		for _, strat := range []string{"baseline", "interleave", "blockwise", "parallel-init", "guided"} {
			sp := fastSpec(strat)
			sp.Mechanism = mech
			specs = append(specs, sp)
		}
	}

	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		ids  = make([]string, jobs)
		errs []error
	)
	stop := make(chan struct{})
	consistent := make(chan error, 1)
	go func() {
		// Scrape /metrics and /healthz while the burst is in flight. The
		// gauges move in separate atomic steps, so a scrape may catch up
		// to Workers jobs mid-transition; beyond that the books must
		// balance.
		defer close(consistent)
		for {
			select {
			case <-stop:
				return
			case <-time.After(10 * time.Millisecond):
			}
			resp, err := http.Get(c.BaseURL + "/healthz")
			if err != nil {
				consistent <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != 200 {
				consistent <- fmt.Errorf("healthz = %d mid-burst", resp.StatusCode)
				return
			}
			m, err := c.Metrics(ctx)
			if err != nil {
				consistent <- err
				return
			}
			sum := m.Jobs.Queued + m.Jobs.Running + m.Jobs.Done + m.Jobs.Failed + m.Jobs.Canceled
			if d := m.Jobs.Submitted - sum; d < 0 || d > int64(m.Queue.Workers) {
				consistent <- fmt.Errorf("metrics inconsistent: submitted %d vs accounted %d (%+v)",
					m.Jobs.Submitted, sum, m.Jobs)
				return
			}
		}
	}()

	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := c.Submit(ctx, specs[i%len(specs)])
			if err != nil {
				mu.Lock()
				errs = append(errs, fmt.Errorf("submit %d: %w", i, err))
				mu.Unlock()
				return
			}
			ids[i] = st.ID
		}(i)
	}
	wg.Wait()
	if len(errs) > 0 {
		t.Fatalf("%d/%d submissions failed; first: %v", len(errs), jobs, errs[0])
	}
	for i, id := range ids {
		st := mustDone(t, c, id)
		if st.Key != specs[i%len(specs)].Key() {
			t.Fatalf("job %s stored under the wrong key", id)
		}
	}
	close(stop)
	if err := <-consistent; err != nil {
		t.Fatal(err)
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Jobs.Done != jobs || m.Jobs.Failed != 0 || m.Jobs.Canceled != 0 {
		t.Fatalf("outcome counters off: %+v", m.Jobs)
	}
	if m.Jobs.Queued != 0 || m.Jobs.Running != 0 {
		t.Fatalf("gauges not quiescent: %+v", m.Jobs)
	}
	if m.StoreHits == 0 {
		t.Fatal("no store hits across 10x-duplicated specs")
	}
	if m.Store.Saves != uint64(len(specs)) {
		t.Fatalf("store saves = %d, want %d (one per distinct spec)", m.Store.Saves, len(specs))
	}

	// The instrument registry must mirror the store stats exactly, and
	// the hit/miss/dedup books must balance: each distinct spec misses
	// once, every other submission is served as a hit of some flavor.
	ic := m.Instruments.Counters
	for name, want := range map[string]uint64{
		"store_mem_hits_total":    m.Store.MemHits,
		"store_disk_hits_total":   m.Store.DiskHits,
		"store_misses_total":      m.Store.Misses,
		"store_dedup_waits_total": m.Store.DedupWaits,
		"store_saves_total":       m.Store.Saves,
	} {
		if ic[name] != want {
			t.Errorf("instrument %s = %d, want %d (mirror of store stats)", name, ic[name], want)
		}
	}
	if m.Store.Misses != uint64(len(specs)) {
		t.Errorf("store misses = %d, want %d (one compute per distinct spec)", m.Store.Misses, len(specs))
	}
	if hits := m.Store.MemHits + m.Store.DiskHits + m.Store.DedupWaits; hits != jobs-uint64(len(specs)) {
		t.Errorf("store hits = %d, want %d (every duplicate submission served from cache)",
			hits, jobs-len(specs))
	}
	// Process-wide pipeline families accumulate across tests, so assert
	// presence and progress, not exact values.
	for _, name := range []string{"pipeline_build_config_total", "pipeline_samples_total", "store_get_or_compute_total"} {
		if ic[name] == 0 {
			t.Errorf("instrument %s missing or zero after a 100-job burst", name)
		}
	}

	// Every stored profile is byte-identical to a serial local run.
	for _, sp := range specs {
		ref := refProfileBytes(t, sp)
		got, err := s.Store().Bytes(sp.Key())
		if err != nil {
			t.Fatalf("stored bytes for %s: %v", sp.Key(), err)
		}
		if !bytes.Equal(got, ref) {
			t.Fatalf("spec %s/%s: daemon bytes differ from serial run", sp.Mechanism, sp.Strategy)
		}
	}
}

// TestNaNSafeViewsForLatencylessAndZeroSampleProfiles locks the
// JSON-safety of every server view for the profiles most likely to
// carry non-finite numbers: a mechanism that measures no latency (MRK
// — Totals.LPI is NaN by design, see core.buildTotals) and a run whose
// sampling period exceeds the program, yielding a zero-sample profile.
// Pre-fix, core.Totals marshaled the NaN straight into encoding/json,
// so the store write (profio.Save) failed and every view of such a job
// was unreachable.
func TestNaNSafeViewsForLatencylessAndZeroSampleProfiles(t *testing.T) {
	_, c := newTestServer(t, nil)
	ctx := context.Background()

	specs := map[string]Spec{
		"latency-less": {Workload: "blackscholes", Iters: 1, Mechanism: "MRK",
			Machine: "intel-harpertown-8", Threads: 4},
		"zero-sample": {Workload: "blackscholes", Iters: 1, Mechanism: "MRK",
			Machine: "intel-harpertown-8", Threads: 4, Period: 1 << 40},
	}
	ids := map[string]string{}
	for name, spec := range specs {
		st, err := c.Submit(ctx, spec)
		if err != nil {
			t.Fatalf("submit %s: %v", name, err)
		}
		mustDone(t, c, st.ID)
		ids[name] = st.ID
	}

	for name, id := range ids {
		if _, err := c.Text(ctx, id); err != nil {
			t.Fatalf("%s: text view: %v", name, err)
		}
		if _, err := c.HTMLReport(ctx, id); err != nil {
			t.Fatalf("%s: html view: %v", name, err)
		}
		raw, err := c.ProfileBytes(ctx, id)
		if err != nil {
			t.Fatalf("%s: profile view: %v", name, err)
		}
		p, err := profio.Load(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("%s: load served bytes: %v", name, err)
		}
		// The wire carries NaN as null; the decoder must restore the
		// in-memory convention exactly, not flatten it to 0 (a real,
		// wrong, lpi value).
		if !math.IsNaN(p.Totals.LPI) {
			t.Errorf("%s: round-tripped LPI = %v, want NaN preserved", name, p.Totals.LPI)
		}
		// The status/json view must itself be parseable JSON.
		resp, err := http.Get(c.BaseURL + "/api/v1/jobs/" + id + "?view=json")
		if err != nil {
			t.Fatalf("%s: json view: %v", name, err)
		}
		var status JobStatus
		err = json.NewDecoder(resp.Body).Decode(&status)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: json view: status %d, decode err %v", name, resp.StatusCode, err)
		}
	}

	// Diffing the two — both NaN-LPI, one with zero samples — must
	// serve valid JSON too (the diff view feeds dashboards directly).
	resp, err := http.Get(c.BaseURL + "/api/v1/diff?a=" + ids["latency-less"] + "&b=" + ids["zero-sample"])
	if err != nil {
		t.Fatal(err)
	}
	var d diff.Result
	err = json.NewDecoder(resp.Body).Decode(&d)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("diff json view: status %d, decode err %v", resp.StatusCode, err)
	}
	if math.IsNaN(d.Speedup) || math.IsInf(d.Speedup, 0) {
		t.Errorf("diff speedup = %v, want finite", d.Speedup)
	}
	if _, err := c.Metrics(ctx); err != nil {
		t.Fatalf("metrics view: %v", err)
	}
}
