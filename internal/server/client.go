package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Client is a minimal Go client for a numad daemon, shared by
// `numaprof -submit` and examples/service-client.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://localhost:7077".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Poll is the Wait polling interval (default 50ms).
	Poll time.Duration
}

// NewClient builds a client for a daemon base URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// apiError decodes the daemon's JSON error body into a Go error.
func apiError(resp *http.Response, body []byte) error {
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err == nil && eb.Error != "" {
		return fmt.Errorf("daemon: %s (HTTP %d)", eb.Error, resp.StatusCode)
	}
	return fmt.Errorf("daemon: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
}

// do issues one request and returns the body of a 2xx response.
func (c *Client) do(ctx context.Context, method, path string, body io.Reader) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		return nil, apiError(resp, data)
	}
	return data, nil
}

// Submit posts a job spec and returns the accepted job's status.
func (c *Client) Submit(ctx context.Context, spec Spec) (JobStatus, error) {
	var st JobStatus
	body, err := json.Marshal(spec)
	if err != nil {
		return st, err
	}
	data, err := c.do(ctx, http.MethodPost, "/api/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return st, err
	}
	return st, json.Unmarshal(data, &st)
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	data, err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+url.PathEscape(id), nil)
	if err != nil {
		return st, err
	}
	return st, json.Unmarshal(data, &st)
}

// Cancel cancels a job.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	data, err := c.do(ctx, http.MethodDelete, "/api/v1/jobs/"+url.PathEscape(id), nil)
	if err != nil {
		return st, err
	}
	return st, json.Unmarshal(data, &st)
}

// Wait polls a job until it reaches a terminal state (or ctx ends).
func (c *Client) Wait(ctx context.Context, id string) (JobStatus, error) {
	poll := c.Poll
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// view fetches one rendered view of a done job.
func (c *Client) view(ctx context.Context, id, kind string) ([]byte, error) {
	return c.do(ctx, http.MethodGet, "/api/v1/jobs/"+url.PathEscape(id)+"?view="+kind, nil)
}

// Text fetches the text report of a done job.
func (c *Client) Text(ctx context.Context, id string) (string, error) {
	b, err := c.view(ctx, id, "text")
	return string(b), err
}

// HTMLReport fetches the HTML report of a done job.
func (c *Client) HTMLReport(ctx context.Context, id string) (string, error) {
	b, err := c.view(ctx, id, "html")
	return string(b), err
}

// ProfileBytes fetches the raw .numaprof measurement bytes of a done
// job — byte-identical to `numaprof -profile` output for the same spec.
func (c *Client) ProfileBytes(ctx context.Context, id string) ([]byte, error) {
	return c.view(ctx, id, "profile")
}

// DiffText diffs two jobs (or profile keys) and returns the rendered
// comparison.
func (c *Client) DiffText(ctx context.Context, a, b string) (string, error) {
	q := url.Values{"a": {a}, "b": {b}, "view": {"text"}}
	data, err := c.do(ctx, http.MethodGet, "/api/v1/diff?"+q.Encode(), nil)
	return string(data), err
}

// Metrics fetches the daemon's metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (MetricsSnapshot, error) {
	var m MetricsSnapshot
	data, err := c.do(ctx, http.MethodGet, "/metrics", nil)
	if err != nil {
		return m, err
	}
	return m, json.Unmarshal(data, &m)
}
