package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/advisor"
	"repro/internal/progress"
)

// Client is a minimal Go client for a numad daemon, shared by
// `numaprof -submit` and examples/service-client. It retries transport
// errors and 429/503 responses with bounded, jittered backoff, honoring
// the daemon's Retry-After hint — so a submission survives a briefly
// overloaded or restarting daemon. Every request it issues is safe to
// repeat: submissions are content-addressed (a duplicate deduplicates
// server-side) and the rest are reads or idempotent cancels.
type Client struct {
	// BaseURL is the daemon's root, e.g. "http://localhost:7077".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Poll is the Wait polling interval (default 50ms).
	Poll time.Duration
	// Retries bounds retry attempts beyond the first (0:
	// DefaultClientRetries; negative disables retrying).
	Retries int
	// RetryBase is the backoff before the first retry when the daemon
	// sent no Retry-After hint (0: 200ms); it doubles per attempt.
	RetryBase time.Duration
}

// DefaultClientRetries is the retry bound when Client.Retries is 0.
const DefaultClientRetries = 3

// NewClient builds a client for a daemon base URL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// apiError decodes the daemon's JSON error body into a Go error.
func apiError(resp *http.Response, body []byte) error {
	var eb errorBody
	if err := json.Unmarshal(body, &eb); err == nil && eb.Error != "" {
		return fmt.Errorf("daemon: %s (HTTP %d)", eb.Error, resp.StatusCode)
	}
	return fmt.Errorf("daemon: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
}

// retries resolves the retry budget.
func (c *Client) retries() int {
	switch {
	case c.Retries == 0:
		return DefaultClientRetries
	case c.Retries < 0:
		return 0
	}
	return c.Retries
}

// retryDelay picks the wait before retry `attempt`: the daemon's
// Retry-After hint when it sent one, else RetryBase doubled per attempt
// with up to 25% deterministic jitter (per-path, so concurrent clients
// spread out but a given call replays).
func (c *Client) retryDelay(resp *http.Response, attempt int, path string) time.Duration {
	if resp != nil {
		if s := resp.Header.Get("Retry-After"); s != "" {
			if secs, err := strconv.Atoi(s); err == nil && secs > 0 {
				return time.Duration(secs) * time.Second
			}
		}
	}
	base := c.RetryBase
	if base <= 0 {
		base = 200 * time.Millisecond
	}
	d := base << attempt
	if d > 5*time.Second {
		d = 5 * time.Second
	}
	var h uint64 = 1469598103934665603
	for i := 0; i < len(path); i++ {
		h = (h ^ uint64(path[i])) * 1099511628211
	}
	h = (h ^ uint64(attempt)) * 1099511628211
	return d + time.Duration(h%uint64(d/4+1))
}

// retryableStatus reports whether the daemon's refusal is temporary.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// do issues one request, retrying transient refusals, and returns the
// body of a 2xx response.
func (c *Client) do(ctx context.Context, method, path string, body []byte) ([]byte, error) {
	maxRetries := c.retries()
	for attempt := 0; ; attempt++ {
		var r io.Reader
		if body != nil {
			r = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, r)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			// Transport-level failure: the daemon may be restarting.
			if attempt < maxRetries && ctx.Err() == nil {
				if sleepCtx(ctx, c.retryDelay(nil, attempt, path)) {
					continue
				}
			}
			return nil, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode/100 == 2 {
			return data, nil
		}
		if retryableStatus(resp.StatusCode) && attempt < maxRetries {
			if sleepCtx(ctx, c.retryDelay(resp, attempt, path)) {
				continue
			}
		}
		return nil, apiError(resp, data)
	}
}

// sleepCtx waits d unless ctx ends first; it reports whether the full
// wait elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	select {
	case <-ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// Submit posts a job spec and returns the accepted job's status.
func (c *Client) Submit(ctx context.Context, spec Spec) (JobStatus, error) {
	var st JobStatus
	body, err := json.Marshal(spec)
	if err != nil {
		return st, err
	}
	data, err := c.do(ctx, http.MethodPost, "/api/v1/jobs", body)
	if err != nil {
		return st, err
	}
	return st, json.Unmarshal(data, &st)
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	data, err := c.do(ctx, http.MethodGet, "/api/v1/jobs/"+url.PathEscape(id), nil)
	if err != nil {
		return st, err
	}
	return st, json.Unmarshal(data, &st)
}

// Cancel cancels a job.
func (c *Client) Cancel(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	data, err := c.do(ctx, http.MethodDelete, "/api/v1/jobs/"+url.PathEscape(id), nil)
	if err != nil {
		return st, err
	}
	return st, json.Unmarshal(data, &st)
}

// Wait polls a job until it reaches a terminal state (or ctx ends).
func (c *Client) Wait(ctx context.Context, id string) (JobStatus, error) {
	poll := c.Poll
	if poll <= 0 {
		poll = 50 * time.Millisecond
	}
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return st, err
		}
		if st.State.Terminal() {
			return st, nil
		}
		select {
		case <-ctx.Done():
			return st, ctx.Err()
		case <-time.After(poll):
		}
	}
}

// view fetches one rendered view of a done job.
func (c *Client) view(ctx context.Context, id, kind string) ([]byte, error) {
	return c.do(ctx, http.MethodGet, "/api/v1/jobs/"+url.PathEscape(id)+"?view="+kind, nil)
}

// Text fetches the text report of a done job.
func (c *Client) Text(ctx context.Context, id string) (string, error) {
	b, err := c.view(ctx, id, "text")
	return string(b), err
}

// HTMLReport fetches the HTML report of a done job.
func (c *Client) HTMLReport(ctx context.Context, id string) (string, error) {
	b, err := c.view(ctx, id, "html")
	return string(b), err
}

// ProfileBytes fetches the raw .numaprof measurement bytes of a done
// job — byte-identical to `numaprof -profile` output for the same spec.
func (c *Client) ProfileBytes(ctx context.Context, id string) ([]byte, error) {
	return c.view(ctx, id, "profile")
}

// StreamEvent mirrors one SSE event from GET /api/v1/jobs/{id}/events:
// a lifecycle transition (Job set), a progress snapshot (Snapshot
// set), or the daemon's drain marker (type "shutdown"). Every event
// carries the run's latest convergence verdict.
type StreamEvent struct {
	ID         uint64             `json:"id"`
	Type       string             `json:"type"`
	Job        *JobStatus         `json:"job,omitempty"`
	Snapshot   *progress.Snapshot `json:"snapshot,omitempty"`
	Converged  bool               `json:"converged"`
	Confidence float64            `json:"confidence"`
}

// Follow subscribes to a job's live event stream and invokes fn for
// every event until the job reaches a terminal state, then returns the
// terminal status. It rides the same retry policy as the rest of the
// client: transport errors, retryable statuses, and daemon restarts
// (terminal `shutdown` events) reconnect with backoff, resuming from
// the last seen event ID so no terminal transition is missed; the
// retry budget resets whenever a connection makes progress. fn may be
// nil to just wait.
func (c *Client) Follow(ctx context.Context, id string, fn func(StreamEvent)) (JobStatus, error) {
	path := "/api/v1/jobs/" + url.PathEscape(id) + "/events"
	maxRetries := c.retries()
	var lastID uint64
	for attempt := 0; ; {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
		if err != nil {
			return JobStatus{}, err
		}
		req.Header.Set("Accept", "text/event-stream")
		if lastID > 0 {
			req.Header.Set("Last-Event-ID", strconv.FormatUint(lastID, 10))
		}
		resp, err := c.httpClient().Do(req)
		if err != nil {
			if attempt < maxRetries && ctx.Err() == nil && sleepCtx(ctx, c.retryDelay(nil, attempt, path)) {
				attempt++
				continue
			}
			return JobStatus{}, err
		}
		if resp.StatusCode/100 != 2 {
			data, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if retryableStatus(resp.StatusCode) && attempt < maxRetries && sleepCtx(ctx, c.retryDelay(resp, attempt, path)) {
				attempt++
				continue
			}
			return JobStatus{}, apiError(resp, data)
		}
		st, terminal, progressed := c.consumeEvents(resp.Body, &lastID, fn)
		resp.Body.Close()
		if terminal {
			if st != nil {
				return *st, nil
			}
			// Terminal event without an embedded status (shouldn't
			// happen for job terminals): fetch it.
			return c.Job(ctx, id)
		}
		// Stream ended without a job terminal: daemon drained
		// (shutdown event) or the connection dropped. Reconnect.
		if progressed {
			attempt = 0
		}
		if attempt >= maxRetries || ctx.Err() != nil {
			return JobStatus{}, fmt.Errorf("daemon: event stream for %s ended before a terminal event", id)
		}
		if !sleepCtx(ctx, c.retryDelay(nil, attempt, path)) {
			return JobStatus{}, ctx.Err()
		}
		attempt++
	}
}

// consumeEvents parses one SSE connection's data lines, forwarding
// each event to fn and tracking the resume cursor. It returns the
// job's terminal status once a done/failed/canceled event arrives,
// whether such a terminal arrived, and whether any event was received
// at all (retry-budget reset).
func (c *Client) consumeEvents(body io.Reader, lastID *uint64, fn func(StreamEvent)) (st *JobStatus, terminal, progressed bool) {
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		// The payload duplicates the id and event-type framing lines,
		// so data lines alone carry the full event.
		if !strings.HasPrefix(line, "data:") {
			continue
		}
		var ev StreamEvent
		if err := json.Unmarshal([]byte(strings.TrimSpace(line[len("data:"):])), &ev); err != nil {
			continue
		}
		if ev.ID > *lastID {
			*lastID = ev.ID
		}
		progressed = true
		if fn != nil {
			fn(ev)
		}
		switch ev.Type {
		case progress.EventDone, progress.EventFailed, progress.EventCanceled:
			return ev.Job, true, true
		case progress.EventShutdown:
			// Daemon drained mid-job: reconnect after it restarts.
			return nil, false, true
		}
	}
	return nil, false, progressed
}

// Advise submits an optimizer run for a finished job and returns the
// accepted advise job's status. Like Submit, it rides do's retry loop:
// transport errors and 429/503 refusals back off honoring the daemon's
// Retry-After hint, and the advise job is content-addressed
// server-side, so a repeated request deduplicates instead of
// re-running.
func (c *Client) Advise(ctx context.Context, id string) (JobStatus, error) {
	var st JobStatus
	data, err := c.do(ctx, http.MethodPost, "/api/v1/jobs/"+url.PathEscape(id)+"/advise", nil)
	if err != nil {
		return st, err
	}
	return st, json.Unmarshal(data, &st)
}

// AdviseResult fetches a done advise job's optimizer report: findings,
// the ranked remedies with predicted and measured speedups, the
// composite plan, and the best measured remedy.
func (c *Client) AdviseResult(ctx context.Context, id string) (*advisor.Report, error) {
	data, err := c.view(ctx, id, "advice")
	if err != nil {
		return nil, err
	}
	var rep advisor.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// DiffText diffs two jobs (or profile keys) and returns the rendered
// comparison.
func (c *Client) DiffText(ctx context.Context, a, b string) (string, error) {
	q := url.Values{"a": {a}, "b": {b}, "view": {"text"}}
	data, err := c.do(ctx, http.MethodGet, "/api/v1/diff?"+q.Encode(), nil)
	return string(data), err
}

// Metrics fetches the daemon's metrics snapshot.
func (c *Client) Metrics(ctx context.Context) (MetricsSnapshot, error) {
	var m MetricsSnapshot
	data, err := c.do(ctx, http.MethodGet, "/metrics", nil)
	if err != nil {
		return m, err
	}
	return m, json.Unmarshal(data, &m)
}
