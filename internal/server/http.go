package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/diff"
	coremetrics "repro/internal/metrics"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/view"
)

// Handler returns the daemon's HTTP API:
//
//	POST   /api/v1/jobs            submit a job (Spec JSON body)
//	POST   /api/v1/jobs/{id}/advise  submit an optimizer run for a done job
//	GET    /api/v1/jobs            list jobs (?state= filters)
//	GET    /api/v1/jobs/{id}       job status (?view=text|html|profile|advice)
//	DELETE /api/v1/jobs/{id}       cancel a job
//	GET    /api/v1/profiles        list stored profile keys
//	GET    /api/v1/profiles/{key}  raw .numaprof bytes for a key
//	GET    /api/v1/diff?a=&b=      diff two jobs/keys (?view=text)
//	GET    /healthz                liveness
//	GET    /readyz                 readiness (503 while draining)
//	GET    /metrics                counters + latency histograms
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /api/v1/jobs/{id}/advise", s.handleAdvise)
	mux.HandleFunc("GET /api/v1/jobs", s.handleListJobs)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleGetJob)
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.handleJobEvents)
	mux.HandleFunc("GET /api/v1/jobs/{id}/live", s.handleJobLive)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancelJob)
	mux.HandleFunc("GET /api/v1/profiles", s.handleListProfiles)
	mux.HandleFunc("GET /api/v1/profiles/{key}", s.handleGetProfile)
	mux.HandleFunc("GET /api/v1/diff", s.handleDiff)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

// errorBody is every non-2xx JSON response.
type errorBody struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "malformed job spec: %v", err)
		return
	}
	job, err := s.Submit(spec)
	s.writeSubmitResult(w, job, err)
}

// writeSubmitResult maps a Submit outcome to the wire, shared by the
// plain submit and advise endpoints.
func (s *Server) writeSubmitResult(w http.ResponseWriter, job *Job, err error) {
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrOverloaded):
		setRetryAfter(w, err)
		writeError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, ErrCircuitOpen):
		setRetryAfter(w, err)
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case errors.Is(err, ErrDraining):
		setRetryAfter(w, err)
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	case err != nil:
		writeError(w, http.StatusBadRequest, "invalid job spec: %v", err)
	default:
		writeJSON(w, http.StatusAccepted, job.Status())
	}
}

// setRetryAfter surfaces a Submit error's back-off hint as a
// Retry-After header (whole seconds, rounded up, at least 1 — clients
// without a hint still get a sane default).
func setRetryAfter(w http.ResponseWriter, err error) {
	d, ok := RetryAfterHint(err)
	if !ok {
		d = time.Second
	}
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.Jobs()
	if f := State(r.URL.Query().Get("state")); f != "" {
		filtered := jobs[:0]
		for _, j := range jobs {
			if j.State == f {
				filtered = append(filtered, j)
			}
		}
		jobs = filtered
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(jobs), "jobs": jobs})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	job, ok := s.JobByID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	switch v := r.URL.Query().Get("view"); v {
	case "", "status", "json":
		writeJSON(w, http.StatusOK, job.Status())
	case "advice":
		st := job.Status()
		if !st.Spec.Advise {
			writeError(w, http.StatusBadRequest, "job %s is not an advise job; POST /api/v1/jobs/%s/advise first", st.ID, st.ID)
			return
		}
		if st.State != StateDone {
			writeError(w, http.StatusConflict, "job %s is %s, not done", st.ID, st.State)
			return
		}
		blob, err := s.adviceReport(r.Context(), job)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "advice: %v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(blob)
	case "text", "html", "profile":
		st := job.Status()
		if st.State != StateDone {
			writeError(w, http.StatusConflict, "job %s is %s, not done", st.ID, st.State)
			return
		}
		if st.Spec.Advise {
			// An advise job stores no profile under its own key; its
			// text view is the optimizer report, and the byte views
			// live under the per-remedy keys in that report.
			if v != "text" {
				writeError(w, http.StatusBadRequest,
					"advise job %s has no %s view; use ?view=advice and the per-remedy profile keys", st.ID, v)
				return
			}
			s.serveAdviceText(r.Context(), w, job)
			return
		}
		s.serveProfileView(r.Context(), w, st.Key, v)
	default:
		writeError(w, http.StatusBadRequest, "unknown view %q (status|text|html|profile|advice)", v)
	}
}

// serveAdviceText renders a done advise job's report as plain text.
func (s *Server) serveAdviceText(ctx context.Context, w http.ResponseWriter, job *Job) {
	blob, err := s.adviceReport(ctx, job)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "advice: %v", err)
		return
	}
	var rep advisor.Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		writeError(w, http.StatusInternalServerError, "advice: %v", err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, rep.Render())
}

// serveProfileView renders a stored profile as text, HTML, or raw
// measurement bytes.
func (s *Server) serveProfileView(ctx context.Context, w http.ResponseWriter, k store.Key, kind string) {
	_, done := telemetry.Timed(ctx, "pipeline.render_view", telemetry.String("kind", kind))
	defer done()
	if kind == "profile" {
		b, err := s.st.Bytes(k)
		if err != nil {
			writeError(w, http.StatusNotFound, "profile %s: %v", k, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(b)
		return
	}
	p, err := s.st.Get(k)
	if err != nil {
		writeError(w, http.StatusNotFound, "profile %s: %v", k, err)
		return
	}
	switch kind {
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, renderText(p, s.topVars))
	case "html":
		page, err := view.HTML(p, s.topVars)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "render: %v", err)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, page)
	}
}

// renderText is the daemon's text view: the same report + CCT + hot
// path a local `numaprof` run prints.
func renderText(p *core.Profile, top int) string {
	var b strings.Builder
	b.WriteString(view.Report(p, top))
	b.WriteString("\n")
	b.WriteString(view.CCT(p, coremetrics.Mismatch, 6, 0.01))
	b.WriteString(view.RenderHotPath(p, coremetrics.Mismatch))
	return b.String()
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	st, ok := s.CancelJob(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleListProfiles(w http.ResponseWriter, r *http.Request) {
	keys, err := s.st.Keys()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "list profiles: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"count": len(keys), "keys": keys})
}

func (s *Server) handleGetProfile(w http.ResponseWriter, r *http.Request) {
	k := store.Key(r.PathValue("key"))
	if !k.Valid() {
		writeError(w, http.StatusBadRequest, "invalid profile key %q", k)
		return
	}
	s.serveProfileView(r.Context(), w, k, "profile")
}

// resolveProfileRef turns a jobs ID or a store key into a loadable
// store key. It returns an HTTP status and message on failure.
func (s *Server) resolveProfileRef(ref string) (store.Key, int, string) {
	if job, ok := s.JobByID(ref); ok {
		st := job.Status()
		if st.State != StateDone {
			return "", http.StatusConflict, fmt.Sprintf("job %s is %s, not done", st.ID, st.State)
		}
		return st.Key, 0, ""
	}
	k := store.Key(ref)
	if !k.Valid() {
		return "", http.StatusNotFound, fmt.Sprintf("no job or profile %q", ref)
	}
	if !s.st.Has(k) {
		return "", http.StatusNotFound, fmt.Sprintf("no profile %s", k)
	}
	return k, 0, ""
}

func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	a, b := q.Get("a"), q.Get("b")
	if a == "" || b == "" {
		writeError(w, http.StatusBadRequest, "diff needs ?a=<job|key>&b=<job|key>")
		return
	}
	ka, code, msg := s.resolveProfileRef(a)
	if code != 0 {
		writeError(w, code, "%s", msg)
		return
	}
	kb, code, msg := s.resolveProfileRef(b)
	if code != 0 {
		writeError(w, code, "%s", msg)
		return
	}
	pa, err := s.st.Get(ka)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "load %s: %v", ka, err)
		return
	}
	pb, err := s.st.Get(kb)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "load %s: %v", kb, err)
		return
	}
	res := diff.Compare(pa, pb, a, b, diff.Options{})
	switch v := q.Get("view"); v {
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, res.Render())
	case "", "json":
		writeJSON(w, http.StatusOK, res)
	default:
		writeError(w, http.StatusBadRequest, "unknown view %q (json|text)", v)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ready",
		"queue_depth": len(s.queue),
		"queue_cap":   cap(s.queue),
	})
}

// handleMetrics serves the JSON snapshot by default; ?format=text
// switches to the flat `name value` exposition of the instrument
// registry, for scrapers that want diffable lines instead of JSON.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	switch f := r.URL.Query().Get("format"); f {
	case "", "json":
		writeJSON(w, http.StatusOK, s.Metrics())
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		s.Metrics().Instruments.WriteText(w)
	default:
		writeError(w, http.StatusBadRequest, "unknown format %q (json|text)", f)
	}
}
