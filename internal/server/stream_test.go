// SSE endpoint and live-view tests: the httptest table of ISSUE 9's
// satellite 3 (404s, epoch-ordered mid-run snapshots, cancel, resume),
// the lifecycle-monotonicity regression for late subscribers, shutdown
// draining streams, and the client Follow loop.
package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/profio"
	"repro/internal/progress"
	"repro/internal/store"
)

// openStream issues a raw GET against the SSE endpoint.
func openStream(t *testing.T, ctx context.Context, base, id, lastEventID string) *http.Response {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/api/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("events: HTTP %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events: Content-Type %q", ct)
	}
	return resp
}

// readStream decodes SSE data lines until the server closes the stream
// (or until stop returns true, leaving the connection open for the
// caller to continue or abandon).
func readStream(t *testing.T, body io.Reader, stop func(StreamEvent) bool) []StreamEvent {
	t.Helper()
	var evs []StreamEvent
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data:") {
			continue
		}
		var ev StreamEvent
		if err := json.Unmarshal([]byte(strings.TrimSpace(line[len("data:"):])), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		evs = append(evs, ev)
		if stop != nil && stop(ev) {
			break
		}
	}
	return evs
}

func terminalType(typ string) bool {
	return typ == progress.EventDone || typ == progress.EventFailed ||
		typ == progress.EventCanceled || typ == progress.EventShutdown
}

// checkStreamInvariants asserts the orderings every stream must keep:
// strictly increasing event IDs, monotonic lifecycle rank, nothing
// after the first terminal, and epoch/seq-ordered snapshots.
func checkStreamInvariants(t *testing.T, evs []StreamEvent) {
	t.Helper()
	rank := map[string]int{
		progress.EventQueued: 0, progress.EventRunning: 1,
		progress.EventDone: 2, progress.EventFailed: 2,
		progress.EventCanceled: 2, progress.EventShutdown: 2,
	}
	var lastID uint64
	lastRank, lastSeq, lastEpoch := -1, 0, -1
	for i, ev := range evs {
		if ev.ID <= lastID {
			t.Fatalf("event %d: id %d after %d", i, ev.ID, lastID)
		}
		lastID = ev.ID
		if i > 0 && terminalType(evs[i-1].Type) {
			t.Fatalf("event %d (%s) after terminal %s", i, ev.Type, evs[i-1].Type)
		}
		if r, ok := rank[ev.Type]; ok {
			if r < lastRank {
				t.Fatalf("event %d: lifecycle %s (rank %d) after rank %d", i, ev.Type, r, lastRank)
			}
			lastRank = r
		}
		if ev.Type == progress.EventSnapshot {
			s := ev.Snapshot
			if s == nil {
				t.Fatalf("event %d: snapshot event without payload", i)
			}
			if s.Seq <= lastSeq {
				t.Fatalf("event %d: snapshot seq %d after %d", i, s.Seq, lastSeq)
			}
			if s.Epoch < lastEpoch {
				t.Fatalf("event %d: snapshot epoch %d after %d", i, s.Epoch, lastEpoch)
			}
			lastSeq, lastEpoch = s.Seq, s.Epoch
		}
	}
}

func TestEventsUnknownJob(t *testing.T) {
	_, c := newTestServer(t, nil)
	resp, err := http.Get(c.BaseURL + "/api/v1/jobs/job-999999/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("events for unknown job: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestEventStreamLifecycleAndSnapshots subscribes before the job runs
// and watches the whole stream: queued → running → epoch-ordered
// snapshots → a final snapshot whose estimates equal the stored
// profile's derived metrics → done → close.
func TestEventStreamLifecycleAndSnapshots(t *testing.T) {
	release := make(chan struct{})
	s, c := newTestServer(t, func(o *Options) {
		o.Workers = 1
		o.SnapshotEvery = 1
		o.BeforeRun = func(j *Job) {
			select {
			case <-release:
			case <-j.ctx.Done():
			}
		}
	})
	_ = s
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	st, err := c.Submit(ctx, fastSpec("baseline"))
	if err != nil {
		t.Fatal(err)
	}
	resp := openStream(t, ctx, c.BaseURL, st.ID, "")
	defer resp.Body.Close()
	close(release)

	evs := readStream(t, resp.Body, nil) // runs to server-side close
	checkStreamInvariants(t, evs)

	var snaps, finals int
	var finalSnap *progress.Snapshot
	seen := map[string]bool{}
	for _, ev := range evs {
		seen[ev.Type] = true
		if ev.Type == progress.EventSnapshot {
			snaps++
			if ev.Snapshot.Final {
				finals++
				finalSnap = ev.Snapshot
			}
		}
	}
	// Replay compacts to the latest lifecycle state, so `queued` is
	// legitimately absent when the worker claimed the job before the
	// subscription landed; `running` and `done` must both appear.
	if !seen[progress.EventRunning] || !seen[progress.EventDone] {
		t.Fatalf("missing lifecycle events; saw %v", seen)
	}
	if snaps < 2 || finals != 1 {
		t.Fatalf("got %d snapshots (%d final), want >=2 with exactly 1 final", snaps, finals)
	}
	if evs[len(evs)-1].Type != progress.EventDone {
		t.Fatalf("stream ended with %s, want done", evs[len(evs)-1].Type)
	}

	// The stream's closing estimates are the stored profile's truth.
	raw, err := c.ProfileBytes(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := profio.Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if finalSnap.Samples != prof.Totals.Samples ||
		finalSnap.Ml != prof.Totals.Ml || finalSnap.Mr != prof.Totals.Mr ||
		finalSnap.RemoteFraction != prof.Totals.RemoteFraction {
		t.Fatalf("final snapshot %+v diverges from stored totals %+v", finalSnap, prof.Totals)
	}
	if finalSnap.LPIValid && finalSnap.LPI != prof.Totals.LPI {
		t.Fatalf("final snapshot lpi %v != stored %v", finalSnap.LPI, prof.Totals.LPI)
	}
}

// TestEventStreamCancelMidRun cancels a held job under an attached
// subscriber: the stream must deliver the canceled event and close.
func TestEventStreamCancelMidRun(t *testing.T) {
	_, c := newTestServer(t, func(o *Options) {
		o.Workers = 1
		o.SnapshotEvery = 1
		o.BeforeRun = func(j *Job) { <-j.ctx.Done() }
	})
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	st, err := c.Submit(ctx, fastSpec("baseline"))
	if err != nil {
		t.Fatal(err)
	}
	resp := openStream(t, ctx, c.BaseURL, st.ID, "")
	defer resp.Body.Close()

	got := make(chan []StreamEvent, 1)
	go func() { got <- readStream(t, resp.Body, nil) }()

	// Give the worker a moment to claim the job, then cancel it.
	deadline := time.Now().Add(30 * time.Second)
	for {
		js, err := c.Job(ctx, st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if js.State == StateRunning || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	if _, err := c.Cancel(ctx, st.ID); err != nil {
		t.Fatal(err)
	}

	select {
	case evs := <-got:
		checkStreamInvariants(t, evs)
		if last := evs[len(evs)-1]; last.Type != progress.EventCanceled {
			t.Fatalf("stream ended with %s, want canceled", last.Type)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stream did not close after cancel")
	}
}

// TestEventStreamLateSubscriberAndResume covers satellite 2 and the
// Last-Event-ID contract at the HTTP layer: a subscriber arriving
// after the job finished sees only the compacted terminal replay
// (never a stale `running`), and resuming past the last ID yields an
// empty, immediately-closed stream.
func TestEventStreamLateSubscriberAndResume(t *testing.T) {
	_, c := newTestServer(t, func(o *Options) { o.SnapshotEvery = 1 })
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	st, err := c.Submit(ctx, fastSpec("baseline"))
	if err != nil {
		t.Fatal(err)
	}
	mustDone(t, c, st.ID)

	resp := openStream(t, ctx, c.BaseURL, st.ID, "")
	evs := readStream(t, resp.Body, nil)
	resp.Body.Close()
	if len(evs) == 0 {
		t.Fatal("terminal job replayed nothing")
	}
	checkStreamInvariants(t, evs)
	for _, ev := range evs {
		if ev.Type == progress.EventQueued || ev.Type == progress.EventRunning {
			t.Fatalf("late subscriber saw pre-terminal lifecycle event %s", ev.Type)
		}
	}
	last := evs[len(evs)-1]
	if last.Type != progress.EventDone {
		t.Fatalf("late replay ended with %s, want done", last.Type)
	}

	// Resume from the terminal event: nothing left.
	resp = openStream(t, ctx, c.BaseURL, st.ID, strconv.FormatUint(last.ID, 10))
	if rest := readStream(t, resp.Body, nil); len(rest) != 0 {
		t.Fatalf("resume past terminal replayed %d events", len(rest))
	}
	resp.Body.Close()
}

// TestEventsMalformedLastEventID pins the malformed-resume bugfix: a
// Last-Event-ID header that doesn't parse must be rejected with 400,
// not silently treated as 0. Pre-fix the handler replayed the full
// stream, and on a finished job that re-delivers the terminal event the
// client already consumed — an EventSource acting on `done` twice
// double-fires whatever the first delivery triggered.
func TestEventsMalformedLastEventID(t *testing.T) {
	_, c := newTestServer(t, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := c.Submit(ctx, fastSpec("baseline"))
	if err != nil {
		t.Fatal(err)
	}
	mustDone(t, c, st.ID)
	for _, bad := range []string{"garbage", "-1", "1.5", "0x10", "18446744073709551616"} {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			c.BaseURL+"/api/v1/jobs/"+st.ID+"/events", nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Last-Event-ID", bad)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("Last-Event-ID %q: HTTP %d (%s), want 400", bad, resp.StatusCode, body)
		}
	}
}

// TestEventStreamResumeDedupesTerminal pins the dedupe half of the
// resume contract: across reconnect cycles that always present the last
// ID seen, a subscriber observes the terminal event exactly once; a
// reconnect from just before it gets it exactly once more, nothing else.
func TestEventStreamResumeDedupesTerminal(t *testing.T) {
	_, c := newTestServer(t, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := c.Submit(ctx, fastSpec("baseline"))
	if err != nil {
		t.Fatal(err)
	}
	mustDone(t, c, st.ID)

	resp := openStream(t, ctx, c.BaseURL, st.ID, "")
	evs := readStream(t, resp.Body, nil)
	resp.Body.Close()
	var terminals int
	for _, ev := range evs {
		if terminalType(ev.Type) {
			terminals++
		}
	}
	if terminals != 1 {
		t.Fatalf("first replay delivered %d terminal events, want 1", terminals)
	}
	last := evs[len(evs)-1]

	// A well-behaved client reconnecting with the ID it already has must
	// never see the terminal again, no matter how often it retries.
	for i := 0; i < 3; i++ {
		resp := openStream(t, ctx, c.BaseURL, st.ID, strconv.FormatUint(last.ID, 10))
		if rest := readStream(t, resp.Body, nil); len(rest) != 0 {
			t.Fatalf("reconnect %d past terminal replayed %d events (duplicate terminal)", i, len(rest))
		}
		resp.Body.Close()
	}

	// A client that disconnected just before the terminal gets exactly
	// it and nothing else.
	resp = openStream(t, ctx, c.BaseURL, st.ID, strconv.FormatUint(last.ID-1, 10))
	rest := readStream(t, resp.Body, nil)
	resp.Body.Close()
	if len(rest) != 1 || rest[0].ID != last.ID || !terminalType(rest[0].Type) {
		t.Fatalf("resume from terminal-1 replayed %+v, want exactly the terminal event", rest)
	}
}

// TestCachedJobStreamsLifecycleOnly: a second submission of an
// identical spec is served from the store — its stream carries the
// lifecycle but no snapshots (no profiler ran).
func TestCachedJobStreamsLifecycleOnly(t *testing.T) {
	_, c := newTestServer(t, func(o *Options) { o.SnapshotEvery = 1 })
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	first, err := c.Submit(ctx, fastSpec("baseline"))
	if err != nil {
		t.Fatal(err)
	}
	mustDone(t, c, first.ID)
	second, err := c.Submit(ctx, fastSpec("baseline"))
	if err != nil {
		t.Fatal(err)
	}
	fin, err := c.Follow(ctx, second.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone || !fin.CacheHit {
		t.Fatalf("cached rerun: state %s, cacheHit %v", fin.State, fin.CacheHit)
	}
	resp := openStream(t, ctx, c.BaseURL, second.ID, "")
	evs := readStream(t, resp.Body, nil)
	resp.Body.Close()
	for _, ev := range evs {
		if ev.Type == progress.EventSnapshot {
			t.Fatal("cache-served job published a snapshot")
		}
	}
}

// TestFollowStreamsToCompletion drives the client loop end to end.
func TestFollowStreamsToCompletion(t *testing.T) {
	_, c := newTestServer(t, func(o *Options) { o.SnapshotEvery = 1 })
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	st, err := c.Submit(ctx, fastSpec("interleave"))
	if err != nil {
		t.Fatal(err)
	}
	var snaps int
	var converged bool
	fin, err := c.Follow(ctx, st.ID, func(ev StreamEvent) {
		if ev.Type == progress.EventSnapshot {
			snaps++
			converged = converged || ev.Converged
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if fin.State != StateDone {
		t.Fatalf("follow returned state %s: %s", fin.State, fin.Error)
	}
	if snaps == 0 {
		t.Fatal("follow saw no snapshots")
	}
	_ = converged // cadence-dependent; convergence itself is pinned in core tests
}

// TestShutdownDrainsEventStreams: a drain must terminate every open
// stream — subscribers get a terminal event (the drained job's own,
// or `shutdown`) and the handler exits; nothing hangs or leaks.
func TestShutdownDrainsEventStreams(t *testing.T) {
	st, err := store.Open(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{
		Store: st, Workers: 1, QueueDepth: 4, SnapshotEvery: 1,
		BeforeRun: func(j *Job) { <-j.ctx.Done() }, // hold until drain cancels
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Start()
	hs := httptest.NewServer(s.Handler())
	c := NewClient(hs.URL)
	c.Retries = -1
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	job, err := c.Submit(ctx, fastSpec("baseline"))
	if err != nil {
		t.Fatal(err)
	}
	resp := openStream(t, ctx, hs.URL, job.ID, "")
	defer resp.Body.Close()
	got := make(chan []StreamEvent, 1)
	go func() { got <- readStream(t, resp.Body, nil) }()

	// Short drain deadline: the held job is cancelled, its terminal
	// event (or the shutdown marker) closes the stream.
	sctx, scancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer scancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	select {
	case evs := <-got:
		if len(evs) == 0 {
			t.Fatal("stream closed without any events")
		}
		checkStreamInvariants(t, evs)
		if last := evs[len(evs)-1]; !terminalType(last.Type) {
			t.Fatalf("stream ended with %s, want a terminal event", last.Type)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("stream still open after Shutdown returned")
	}
	hs.Close()
}

// TestLiveViews pins the /live endpoint's view table.
func TestLiveViews(t *testing.T) {
	_, c := newTestServer(t, func(o *Options) { o.SnapshotEvery = 1 })
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	st, err := c.Submit(ctx, fastSpec("baseline"))
	if err != nil {
		t.Fatal(err)
	}
	mustDone(t, c, st.ID)

	get := func(path string) (int, string) {
		resp, err := http.Get(c.BaseURL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(body)
	}
	if code, body := get("/api/v1/jobs/" + st.ID + "/live"); code != http.StatusOK ||
		!strings.Contains(body, "live profile") || !strings.Contains(body, "final") {
		t.Fatalf("live code view: HTTP %d: %s", code, body)
	}
	if code, body := get("/api/v1/jobs/" + st.ID + "/live?view=data"); code != http.StatusOK ||
		!strings.Contains(body, "VARIABLE") {
		t.Fatalf("live data view: HTTP %d: %s", code, body)
	}
	code, body := get("/api/v1/jobs/" + st.ID + "/live?view=json")
	if code != http.StatusOK {
		t.Fatalf("live json view: HTTP %d", code)
	}
	var snap progress.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("live json view: %v", err)
	}
	if !snap.Final || snap.Seq == 0 {
		t.Fatalf("live json view: final=%v seq=%d", snap.Final, snap.Seq)
	}
	if code, _ := get("/api/v1/jobs/" + st.ID + "/live?view=bogus"); code != http.StatusBadRequest {
		t.Fatalf("bogus view: HTTP %d, want 400", code)
	}
	if code, _ := get("/api/v1/jobs/job-999999/live"); code != http.StatusNotFound {
		t.Fatalf("unknown job live: HTTP %d, want 404", code)
	}
}

// TestLiveDisabledIs404: with streaming off (the default) there is no
// snapshot to serve.
func TestLiveDisabledIs404(t *testing.T) {
	_, c := newTestServer(t, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := c.Submit(ctx, fastSpec("baseline"))
	if err != nil {
		t.Fatal(err)
	}
	mustDone(t, c, st.ID)
	resp, err := http.Get(c.BaseURL + "/api/v1/jobs/" + st.ID + "/live")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("live with streaming disabled: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestStreamMetricsExposed: the /metrics streaming block reflects
// subscriber and event traffic.
func TestStreamMetricsExposed(t *testing.T) {
	_, c := newTestServer(t, func(o *Options) { o.SnapshotEvery = 1 })
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := c.Submit(ctx, fastSpec("baseline"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Follow(ctx, st.ID, nil); err != nil {
		t.Fatal(err)
	}
	ms, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if ms.Streaming.Events == 0 || ms.Streaming.Snapshots == 0 {
		t.Fatalf("streaming metrics empty: %+v", ms.Streaming)
	}
	if ms.Streaming.Subscribers != 0 {
		t.Fatalf("subscriber gauge should be back to 0, got %d", ms.Streaming.Subscribers)
	}
	if _, ok := ms.LatencyUs["stream_snapshot"]; !ok {
		t.Fatal("stream_snapshot latency histogram missing")
	}
}
