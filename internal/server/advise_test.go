package server

import (
	"bytes"
	"context"
	"net/http"
	"strings"
	"testing"
	"time"
)

// rawPost hits the advise endpoint without the client's status
// decoding, so the table can assert exact status codes.
func rawPost(t *testing.T, c *Client, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(c.BaseURL+path, "application/json", nil)
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// The /advise endpoint's refusal table: unknown job, non-terminal job,
// sweep job, double-advise — then the happy path end to end.
func TestAdviseEndpointTable(t *testing.T) {
	release := make(chan struct{})
	running := make(chan struct{})
	gated := false
	_, c := newTestServer(t, func(o *Options) {
		o.Workers = 1
		o.BeforeRun = func(j *Job) {
			if j.spec.Workload == "blackscholes" && j.spec.Strategy == "guided" && !gated {
				gated = true // single worker: no concurrent BeforeRun
				close(running)
				<-release
			}
		}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// 404: unknown job.
	resp, body := rawPost(t, c, "/api/v1/jobs/job-999999/advise")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: status %d, want 404 (%s)", resp.StatusCode, body)
	}

	// 409: a job still running (held at the gate).
	held, err := c.Submit(ctx, Spec{Workload: "blackscholes", Strategy: "guided"})
	if err != nil {
		t.Fatal(err)
	}
	<-running
	resp, body = rawPost(t, c, "/api/v1/jobs/"+held.ID+"/advise")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("running job: status %d, want 409 (%s)", resp.StatusCode, body)
	}
	close(release)
	if _, err := c.Wait(ctx, held.ID); err != nil {
		t.Fatal(err)
	}

	// 400: sweeps have no single baseline.
	sweep, err := c.Submit(ctx, Spec{Workload: "blackscholes", Strategy: "baseline,interleave"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, sweep.ID); err != nil {
		t.Fatal(err)
	}
	resp, body = rawPost(t, c, "/api/v1/jobs/"+sweep.ID+"/advise")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("sweep job: status %d, want 400 (%s)", resp.StatusCode, body)
	}

	// Happy path: profile LULESH, advise it, and read the report back.
	target, err := c.Submit(ctx, Spec{Workload: "lulesh", Iters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st, err := c.Wait(ctx, target.ID); err != nil || st.State != StateDone {
		t.Fatalf("target job: %+v, %v", st, err)
	}
	adv, err := c.Advise(ctx, target.ID)
	if err != nil {
		t.Fatalf("advise: %v", err)
	}
	if adv.ID == target.ID || !adv.Spec.Advise {
		t.Fatalf("advise job not distinct: %+v", adv)
	}
	st, err := c.Wait(ctx, adv.ID)
	if err != nil || st.State != StateDone {
		t.Fatalf("advise job: %+v, %v", st, err)
	}
	if len(st.Cells) == 0 {
		t.Fatal("advise job exposed no candidate cells")
	}
	rep, err := c.AdviseResult(ctx, adv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if rep.NoAdvice || len(rep.Remedies) == 0 {
		t.Fatalf("LULESH advise produced no remedies: %+v", rep.Advice)
	}
	measured := false
	for _, rem := range rep.Remedies {
		if rem.MeasuredOK {
			measured = true
			if rem.Key == "" {
				t.Fatalf("measured remedy %s has no profile key", rem.Kind)
			}
		}
	}
	if !measured || rep.Best == nil {
		t.Fatalf("no measured remedy in report: %+v", rep.Remedies)
	}

	// 400: advising the advise job.
	resp, body = rawPost(t, c, "/api/v1/jobs/"+adv.ID+"/advise")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("double advise: status %d, want 400 (%s)", resp.StatusCode, body)
	}

	// The text view renders the optimizer report, not a profile.
	text, err := c.Text(ctx, adv.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "NUMA optimizer") || !strings.Contains(text, "best measured:") {
		t.Fatalf("advise text view is not the optimizer report:\n%s", text)
	}

	// A second advise of the same target dedupes end to end: the
	// baseline and every candidate replay from the store.
	adv2, err := c.Advise(ctx, target.ID)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := c.Wait(ctx, adv2.ID)
	if err != nil || st2.State != StateDone {
		t.Fatalf("second advise: %+v, %v", st2, err)
	}
	if !st2.CacheHit {
		t.Fatalf("second advise recomputed: %+v", st2)
	}

	// Advisor instruments surfaced on /metrics.
	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if m.Advisor.Requests < 2 || m.Advisor.Done < 2 || m.Advisor.RemediesApplied == 0 {
		t.Fatalf("advisor metrics not populated: %+v", m.Advisor)
	}
	if _, ok := m.LatencyUs["advise_rerun"]; !ok {
		t.Fatal("advise_rerun histogram missing from /metrics")
	}
}

// Two advise runs over the same target — one live, one replayed from
// the store — must serve byte-identical advice JSON and text.
func TestAdviseReportDeterministic(t *testing.T) {
	_, c := newTestServer(t, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	target, err := c.Submit(ctx, Spec{Workload: "lulesh", Iters: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Wait(ctx, target.ID); err != nil {
		t.Fatal(err)
	}

	var blobs [][]byte
	var texts []string
	for i := 0; i < 2; i++ {
		adv, err := c.Advise(ctx, target.ID)
		if err != nil {
			t.Fatal(err)
		}
		if st, err := c.Wait(ctx, adv.ID); err != nil || st.State != StateDone {
			t.Fatalf("advise run %d: %+v, %v", i, st, err)
		}
		blob, err := c.view(ctx, adv.ID, "advice")
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, blob)
		text, err := c.Text(ctx, adv.ID)
		if err != nil {
			t.Fatal(err)
		}
		texts = append(texts, text)
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Fatal("advice JSON diverged between live and replayed runs")
	}
	if texts[0] != texts[1] {
		t.Fatal("advice text diverged between live and replayed runs")
	}
}

// A spec that asks for advise directly must refuse sweeps and disabled
// first-touch tracking at validation time.
func TestAdviseSpecValidation(t *testing.T) {
	off := false
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"sweep", Spec{Workload: "lulesh,amg2006", Advise: true}, "sweep"},
		{"strategy sweep", Spec{Workload: "lulesh", Strategy: "baseline,guided", Advise: true}, "sweep"},
		{"first-touch off", Spec{Workload: "lulesh", FirstTouch: &off, Advise: true}, "first_touch"},
	}
	for _, tc := range cases {
		if _, err := tc.spec.Normalize(); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	// And the advise flag must keep a plain spec's key unchanged when
	// absent — the content-address compatibility contract.
	a := Spec{Workload: "lulesh"}
	b := Spec{Workload: "lulesh", Advise: true}
	if a.Key() == b.Key() {
		t.Fatal("advise spec shares the baseline's store key")
	}
}
