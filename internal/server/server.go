// Package server is the numad profiling service: it turns the
// batch-only profile → merge → view pipeline into a long-running daemon
// that accepts profiling jobs over HTTP, executes them on a bounded
// worker pool built on internal/sched, persists every result through
// the content-addressed internal/store, and serves status, rendered
// views, and profile diffs back out.
//
// Architecture (one request's life):
//
//	POST /api/v1/jobs ── validate Spec ── bounded queue ── worker pool
//	                                        │ full → 429     (sched.MapWithCtx)
//	                                        └ draining → 503      │
//	            store.GetOrCompute(spec key) ─────────────────────┘
//	              ├ LRU / disk hit → served without re-running
//	              └ miss → core.Analyze under the job's context,
//	                       persisted via profio.SaveFile (atomic)
//
// Concurrency contract: the worker pool is the only thing that runs
// jobs; its width bounds simultaneous core.Analyze calls. Identical
// specs share one store entry and one in-flight computation
// (store.GetOrCompute's single-flight), so a burst of duplicate
// submissions costs one run. Every job gets its own context — cancel
// (DELETE) and the per-job timeout stop a queued job before it runs and
// mark a running one canceled; sched.MapWithCtx guarantees a cancelled
// job dispatches no new work. Shutdown drains: submissions are refused
// (503), queued jobs run to completion (until the caller's deadline,
// after which their contexts are cancelled and they drain as canceled),
// and the store is flushed.
//
// Determinism: a job's profile bytes are identical to what `numaprof
// -profile` writes for the same spec, because Spec.Build is the single
// spec-to-config path and the engine is deterministic for a fixed
// config (internal/sched's contract). The store's keys address those
// bytes by canonical spec hash.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/progress"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// Errors the submit path maps to HTTP statuses.
var (
	// ErrQueueFull is backpressure: the bounded queue is at capacity
	// (429 Too Many Requests).
	ErrQueueFull = errors.New("server: job queue full")
	// ErrDraining is refusal during shutdown (503 Service Unavailable).
	ErrDraining = errors.New("server: draining, not accepting jobs")
)

// Options configure a Server.
type Options struct {
	// Store is required: where profiles persist.
	Store *store.Store
	// Workers bounds concurrent job executions (0: sched.Workers()).
	Workers int
	// QueueDepth bounds the accepted-but-not-running backlog
	// (0: DefaultQueueDepth). A full queue rejects with 429.
	QueueDepth int
	// JobTimeout bounds one job from submission to completion
	// (0: none). An expired job fails with a deadline error.
	JobTimeout time.Duration
	// TopVars is how many variables the text/HTML views detail
	// (0: 5, the CLI default).
	TopVars int
	// BeforeRun, when set, is called by a worker after it claims a job
	// and before the job executes. Tests use it to hold a job in the
	// running state deterministically.
	BeforeRun func(*Job)
	// Journal, when set, is the write-ahead job journal: every state
	// transition is logged before it is acknowledged, and Recover
	// replays it after a crash. nil disables durability (tests, tools).
	Journal *store.Journal
	// MaxRetries bounds retries of transiently failed runs (beyond the
	// first attempt). Negative disables retries; 0 means
	// DefaultMaxRetries.
	MaxRetries int
	// RetryBase is the first retry backoff (0: 100ms); RetryCap caps
	// the exponential growth (0: 5s).
	RetryBase time.Duration
	RetryCap  time.Duration
	// BreakerThreshold is how many consecutive permanent failures of
	// one spec trip its circuit breaker (0: DefaultBreakerThreshold;
	// negative disables the breaker). BreakerCooldown is how long it
	// stays open (0: DefaultBreakerCooldown).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// SnapshotEvery enables live progress streaming for single-spec
	// jobs: every N completed regions the profiler publishes a
	// progress.Snapshot to the job's event stream (SSE /events,
	// /live). 0 (the default) disables snapshots — lifecycle events
	// still stream. Streaming never changes profile bytes; cache hits
	// and sweep/advise jobs publish lifecycle events only.
	SnapshotEvery int
	// CheckpointEvery enables mid-cell checkpointing: every N completed
	// regions the profiler serializes its resumable state, the blob
	// lands in the store's checkpoint tier, and a journal pointer makes
	// it recoverable — a crashed cell resumes from its latest
	// checkpoint instead of recomputing from epoch zero. 0 (the
	// default) disables it. Like SnapshotEvery, it is a server option,
	// never a Spec field: profile bytes and store keys are identical
	// with or without it.
	CheckpointEvery int
	// Autotune seeds SnapshotEvery and CheckpointEvery per workload
	// from the store's recorded convergence history when the configured
	// values are 0: cadences are sized so a typical run of that
	// workload observes several snapshots and checkpoints before its
	// estimates settle. Explicitly configured cadences always win.
	Autotune bool
}

// DefaultMaxRetries is the retry bound when Options.MaxRetries is 0.
const DefaultMaxRetries = 3

// DefaultQueueDepth is the queue bound when Options.QueueDepth is 0.
const DefaultQueueDepth = 128

// Server is the numad daemon: queue, worker pool, job table, metrics.
type Server struct {
	st              *store.Store
	workers         int
	topVars         int
	timeout         time.Duration
	beforeRun       func(*Job)
	snapshotEvery   int
	checkpointEvery int
	autotune        bool

	jl               *store.Journal
	maxRetries       int
	retryBase        time.Duration
	retryCap         time.Duration
	breakerThreshold int
	breakerCooldown  time.Duration

	baseCtx    context.Context
	cancelBase context.CancelFunc

	queue       chan *Job
	workersDone chan struct{}

	mu       sync.Mutex
	draining bool
	seq      uint64
	jobs     map[string]*Job
	order    []string // submission order, for listing
	breaker  map[store.Key]*breakerEntry

	m   metrics
	log *slog.Logger
}

// New builds a Server; call Start to launch its worker pool.
func New(opts Options) (*Server, error) {
	if opts.Store == nil {
		return nil, fmt.Errorf("server: Options.Store is required")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = sched.Workers()
	}
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	top := opts.TopVars
	if top <= 0 {
		top = 5
	}
	retries := opts.MaxRetries
	switch {
	case retries == 0:
		retries = DefaultMaxRetries
	case retries < 0:
		retries = 0
	}
	retryBase := opts.RetryBase
	if retryBase <= 0 {
		retryBase = 100 * time.Millisecond
	}
	retryCap := opts.RetryCap
	if retryCap <= 0 {
		retryCap = 5 * time.Second
	}
	threshold := opts.BreakerThreshold
	switch {
	case threshold == 0:
		threshold = DefaultBreakerThreshold
	case threshold < 0:
		threshold = 0 // disabled
	}
	cooldown := opts.BreakerCooldown
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	snapEvery := opts.SnapshotEvery
	if snapEvery < 0 {
		snapEvery = 0
	}
	ckptEvery := opts.CheckpointEvery
	if ckptEvery < 0 {
		ckptEvery = 0
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		st:               opts.Store,
		workers:          workers,
		topVars:          top,
		timeout:          opts.JobTimeout,
		beforeRun:        opts.BeforeRun,
		snapshotEvery:    snapEvery,
		checkpointEvery:  ckptEvery,
		autotune:         opts.Autotune,
		jl:               opts.Journal,
		maxRetries:       retries,
		retryBase:        retryBase,
		retryCap:         retryCap,
		breakerThreshold: threshold,
		breakerCooldown:  cooldown,
		baseCtx:          ctx,
		cancelBase:       cancel,
		queue:            make(chan *Job, depth),
		workersDone:      make(chan struct{}),
		jobs:             make(map[string]*Job),
		breaker:          make(map[store.Key]*breakerEntry),
		m:                newMetrics(telemetry.NewRegistry()),
		log:              telemetry.Logger("server"),
	}, nil
}

// Start launches the worker pool: Workers() loops dispatched as one
// sched sweep, so each worker inherits the scheduler's panic isolation.
func (s *Server) Start() {
	go func() {
		defer close(s.workersDone)
		// The pool dispatches under a background context on purpose:
		// shutdown must let workers drain the closed queue, not stop
		// them from being scheduled. Job cancellation flows through
		// each job's own context instead.
		sched.MapWithCtx(context.Background(), s.workers, s.workers,
			func(context.Context, int) (struct{}, error) {
				s.workerLoop()
				return struct{}{}, nil
			})
	}()
}

// Shutdown drains and stops the daemon: new submissions are refused,
// queued jobs run to completion, and the store is flushed. If ctx
// expires first, every outstanding job's context is cancelled and the
// backlog drains as canceled jobs instead of running.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
		s.log.Info("draining", "queued", len(s.queue))
	}
	s.mu.Unlock()
	select {
	case <-s.workersDone:
	case <-ctx.Done():
		s.log.Warn("drain deadline hit, cancelling outstanding jobs")
		s.cancelBase()
		<-s.workersDone
	}
	s.cancelBase()
	// Close every live event stream. Drained jobs already published
	// their terminal event (making this a no-op); anything still open
	// gets a terminal `shutdown` so no SSE subscriber hangs and no
	// handler goroutine leaks.
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.hub.Publish(progress.EventShutdown, nil, nil)
	}
	return s.st.Flush()
}

// Draining reports whether the daemon has begun shutting down.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Submit validates a spec and enqueues a job for it. The error is
// ErrQueueFull, ErrOverloaded (deadline-aware shedding), ErrCircuitOpen
// (the spec is fast-failing), ErrDraining, or a validation error — the
// HTTP layer maps them to 429, 429, 503, 503, and 400, attaching
// Retry-After where a hint exists.
func (s *Server) Submit(spec Spec) (*Job, error) {
	n, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	key := n.Key()
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	if wait, ok := s.breakerAllow(key, now); !ok {
		s.log.Warn("job fast-failed, circuit open", "key", string(key))
		return nil, withRetryAfter(ErrCircuitOpen, wait)
	}
	if late, ok := s.shedCheck(now); !ok {
		s.m.rejected.Inc()
		s.log.Warn("job shed, deadline infeasible", "key", string(key), "late_by", late.String())
		return nil, withRetryAfter(ErrOverloaded, late)
	}
	id := fmt.Sprintf("job-%06d", s.seq+1)
	base := s.baseCtx
	job := newJob(base, id, n, key, now)
	if s.timeout > 0 {
		job.armTimeout(s.timeout)
	}
	// Only submitters (all under s.mu) grow the queue, so a full check
	// here is authoritative: a concurrent dequeue can only free space.
	// Rejecting before any counter moves keeps the submitted counter
	// monotonic (no undo), and counting queued before the send keeps
	// that gauge from dipping negative when a worker races it.
	if len(s.queue) == cap(s.queue) {
		s.m.rejected.Inc()
		job.cancel()
		s.log.Warn("job rejected, queue full", "id", id, "key", string(job.key))
		return nil, withRetryAfter(ErrQueueFull, time.Second)
	}
	// Write-ahead: the queued record is durable before the job is
	// acknowledged, so a crash between the 202 and the run is always
	// recoverable. A journal that cannot append refuses the job.
	if err := s.journalAppend(job, StateQueued, "", false, true); err != nil {
		job.cancel()
		return nil, err
	}
	s.m.submitted.Inc()
	s.m.queued.Add(1)
	job.hub.SetInstruments(s.m.streamDropped)
	job.publish(progress.EventQueued)
	_, job.queueSpan = telemetry.Start(job.ctx, "server.job_queued",
		telemetry.String("id", id), telemetry.String("workload", n.Workload))
	s.queue <- job
	s.seq++
	s.jobs[id] = job
	s.order = append(s.order, id)
	s.log.Debug("job queued", "id", id, "workload", n.Workload, "key", string(job.key))
	return job, nil
}

// JobByID looks a job up.
func (s *Server) JobByID(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs snapshots every job's status in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].Status())
	}
	return out
}

// CancelJob cancels a job by ID, keeping the gauges in step with the
// state it was in when the cancel landed.
func (s *Server) CancelJob(id string) (JobStatus, bool) {
	job, ok := s.JobByID(id)
	if !ok {
		return JobStatus{}, false
	}
	switch job.Cancel() {
	case StateQueued:
		job.queueSpan.End()
		s.m.queued.Add(-1)
		s.m.canceled.Inc()
		s.journalAppend(job, StateCanceled, "canceled", false, false)
		job.publish(progress.EventCanceled)
		s.log.Info("job canceled while queued", "id", id)
	case StateRunning:
		s.m.running.Add(-1)
		s.m.canceled.Inc()
		s.journalAppend(job, StateCanceled, "canceled", false, false)
		job.publish(progress.EventCanceled)
		s.log.Info("job canceled while running", "id", id)
	}
	return job.Status(), true
}

// Metrics snapshots the daemon's counters.
func (s *Server) Metrics() MetricsSnapshot {
	return s.m.snapshot(s.st.Stats(), len(s.queue), cap(s.queue), s.workers)
}

// Store exposes the profile store (diff and view handlers read it).
func (s *Server) Store() *store.Store { return s.st }

// workerLoop drains the queue until it is closed and empty.
func (s *Server) workerLoop() {
	for job := range s.queue {
		s.runJob(job)
	}
}

// runJob executes one dequeued job through the store, retrying
// transient failures with capped exponential backoff. The worker holds
// the job across the whole retry schedule (a retrying job is still
// "running" to the API), and each attempt is journaled so a crash
// resumes the flaky schedule where it stopped.
func (s *Server) runJob(job *Job) {
	started := time.Now()
	s.m.queueWait.Observe(started.Sub(job.submitted))
	if !job.begin(started) {
		return // cancelled while queued; gauges and span moved by CancelJob
	}
	job.queueSpan.End()
	s.m.queued.Add(-1)
	s.m.running.Add(1)
	// The hub drops this if a cancel already published its terminal
	// event — a subscriber never sees running after canceled.
	job.publish(progress.EventRunning)
	s.log.Debug("job running", "id", job.id, "workload", job.spec.Workload)
	if h := s.beforeRun; h != nil {
		h(job)
	}

	var (
		outcome  State
		errMsg   string
		cacheHit bool
		runErr   error
	)
	for {
		attempt := job.attemptNow()
		s.journalAppend(job, StateRunning, "", false, false)
		ctx, span := telemetry.Start(job.ctx, "server.job_run",
			telemetry.String("id", job.id), telemetry.String("workload", job.spec.Workload),
			telemetry.Int("attempt", attempt))
		outcome, errMsg, cacheHit, runErr = s.execute(ctx, job, attempt)
		span.Annotate(telemetry.String("outcome", string(outcome)))
		span.End()
		if outcome != StateFailed || faults.Classify(runErr) != faults.Transient ||
			attempt >= s.maxRetries || job.ctx.Err() != nil {
			break
		}
		delay := backoffDelay(s.retryBase, s.retryCap, attempt, job.id)
		s.m.retried.Inc()
		s.log.Warn("transient failure, retrying", "id", job.id,
			"attempt", attempt+1, "backoff", delay.Round(time.Millisecond).String(), "err", errMsg)
		select {
		case <-job.ctx.Done():
		case <-time.After(delay):
		}
		job.bumpAttempt()
	}
	if job.finish(outcome, errMsg, cacheHit, time.Now()) {
		s.m.running.Add(-1)
		switch outcome {
		case StateDone:
			s.m.done.Inc()
			s.breakerSuccess(job.key)
			s.log.Info("job done", "id", job.id, "workload", job.spec.Workload,
				"cache_hit", cacheHit, "elapsed", time.Since(started).Round(time.Millisecond).String())
		case StateFailed:
			s.m.failed.Inc()
			if faults.Classify(runErr) == faults.Permanent {
				s.breakerFailure(job.key)
			}
			s.log.Error("job failed", "id", job.id, "workload", job.spec.Workload, "err", errMsg)
		case StateCanceled:
			s.m.canceled.Inc()
			s.log.Info("job canceled mid-run", "id", job.id)
		}
		s.journalAppend(job, outcome, errMsg, cacheHit, false)
		job.publish(string(outcome))
	}
	s.m.run.Observe(time.Since(started))
	s.m.total.Observe(time.Since(job.submitted))
}

// execute resolves one attempt to its outcome: a store hit, a fresh run
// (or checkpointed sweep), a cancellation, or a failure. The raw error
// rides along for the retry policy's fault classification. The fresh
// run goes through the scheduler so a panicking workload fails its own
// job without taking a worker down, and a cancelled job refuses to
// start at all.
func (s *Server) execute(ctx context.Context, job *Job, attempt int) (State, string, bool, error) {
	if err := job.ctx.Err(); err != nil {
		st, msg, hit := cancelOutcome(err)
		return st, msg, hit, err
	}
	// Run-level fault injection (chaos "flaky=N"): fail the attempt
	// before any work, and before the store, so nothing is poisoned.
	if plan := job.spec.chaosPlan(); plan != nil {
		if err := plan.RunError(attempt); err != nil {
			return StateFailed, err.Error(), false, err
		}
	}
	if job.spec.Advise {
		return s.executeAdvise(ctx, job)
	}
	if job.spec.IsSweep() {
		return s.executeSweep(ctx, job)
	}
	_, cached, err := s.st.GetOrCompute(ctx, job.key, func() (*core.Profile, error) {
		res, err := sched.MapWithCtx(ctx, 1, 1, func(cellCtx context.Context, _ int) (*core.Profile, error) {
			_, buildDone := telemetry.Timed(cellCtx, "pipeline.build_config",
				telemetry.String("workload", job.spec.Workload))
			cfg, app, err := job.spec.Build()
			buildDone()
			if err != nil {
				return nil, err
			}
			// Live streaming and checkpointing are server options,
			// never Spec fields: the store key and the profile bytes
			// stay identical with or without them. Only the first
			// computation of a key runs this — a cache hit or
			// dedup-waiting duplicate streams lifecycle events only.
			snapEvery, ckptEvery := s.cadenceFor(job.spec.Workload)
			if snapEvery > 0 {
				cfg.SnapshotEvery = snapEvery
				cfg.SnapshotTopK = s.topVars
				cfg.OnSnapshot = func(snap progress.Snapshot) {
					s.m.streamSnapshots.Inc()
					job.hub.Publish(progress.EventSnapshot, &snap, nil)
				}
			}
			commit := s.observeConvergence(job.spec.Workload, &cfg)
			s.installCheckpointing(job, job.key, ckptEvery, &cfg)
			rck, _ := s.resumeCheckpoint(job, job.key)
			p, err := s.runCell(cellCtx, job, job.key, cfg, app, rck)
			if err == nil {
				commit()
				s.st.DeleteCheckpoints(job.key)
			}
			return p, err
		})
		if err != nil {
			if sweep, ok := sched.AsSweep(err); ok && len(sweep.Cells) > 0 {
				return nil, sweep.Cells[0].Err
			}
			return nil, err
		}
		return res[0], nil
	})
	switch {
	case err == nil:
		return StateDone, "", cached, nil
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		st, msg, hit := cancelOutcome(err)
		return st, msg, hit, err
	default:
		return StateFailed, err.Error(), false, err
	}
}

// cancelOutcome distinguishes an explicit cancel from a timeout.
func cancelOutcome(err error) (State, string, bool) {
	if errors.Is(err, context.DeadlineExceeded) {
		return StateFailed, "job deadline exceeded", false
	}
	return StateCanceled, "canceled", false
}
