// Package server is the numad profiling service: it turns the
// batch-only profile → merge → view pipeline into a long-running daemon
// that accepts profiling jobs over HTTP, executes them on a bounded
// worker pool built on internal/sched, persists every result through
// the content-addressed internal/store, and serves status, rendered
// views, and profile diffs back out.
//
// Architecture (one request's life):
//
//	POST /api/v1/jobs ── validate Spec ── bounded queue ── worker pool
//	                                        │ full → 429     (sched.MapWithCtx)
//	                                        └ draining → 503      │
//	            store.GetOrCompute(spec key) ─────────────────────┘
//	              ├ LRU / disk hit → served without re-running
//	              └ miss → core.Analyze under the job's context,
//	                       persisted via profio.SaveFile (atomic)
//
// Concurrency contract: the worker pool is the only thing that runs
// jobs; its width bounds simultaneous core.Analyze calls. Identical
// specs share one store entry and one in-flight computation
// (store.GetOrCompute's single-flight), so a burst of duplicate
// submissions costs one run. Every job gets its own context — cancel
// (DELETE) and the per-job timeout stop a queued job before it runs and
// mark a running one canceled; sched.MapWithCtx guarantees a cancelled
// job dispatches no new work. Shutdown drains: submissions are refused
// (503), queued jobs run to completion (until the caller's deadline,
// after which their contexts are cancelled and they drain as canceled),
// and the store is flushed.
//
// Determinism: a job's profile bytes are identical to what `numaprof
// -profile` writes for the same spec, because Spec.Build is the single
// spec-to-config path and the engine is deterministic for a fixed
// config (internal/sched's contract). The store's keys address those
// bytes by canonical spec hash.
package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/store"
)

// Errors the submit path maps to HTTP statuses.
var (
	// ErrQueueFull is backpressure: the bounded queue is at capacity
	// (429 Too Many Requests).
	ErrQueueFull = errors.New("server: job queue full")
	// ErrDraining is refusal during shutdown (503 Service Unavailable).
	ErrDraining = errors.New("server: draining, not accepting jobs")
)

// Options configure a Server.
type Options struct {
	// Store is required: where profiles persist.
	Store *store.Store
	// Workers bounds concurrent job executions (0: sched.Workers()).
	Workers int
	// QueueDepth bounds the accepted-but-not-running backlog
	// (0: DefaultQueueDepth). A full queue rejects with 429.
	QueueDepth int
	// JobTimeout bounds one job from submission to completion
	// (0: none). An expired job fails with a deadline error.
	JobTimeout time.Duration
	// TopVars is how many variables the text/HTML views detail
	// (0: 5, the CLI default).
	TopVars int
	// BeforeRun, when set, is called by a worker after it claims a job
	// and before the job executes. Tests use it to hold a job in the
	// running state deterministically.
	BeforeRun func(*Job)
}

// DefaultQueueDepth is the queue bound when Options.QueueDepth is 0.
const DefaultQueueDepth = 128

// Server is the numad daemon: queue, worker pool, job table, metrics.
type Server struct {
	st        *store.Store
	workers   int
	topVars   int
	timeout   time.Duration
	beforeRun func(*Job)

	baseCtx    context.Context
	cancelBase context.CancelFunc

	queue       chan *Job
	workersDone chan struct{}

	mu       sync.Mutex
	draining bool
	seq      uint64
	jobs     map[string]*Job
	order    []string // submission order, for listing

	m metrics
}

// New builds a Server; call Start to launch its worker pool.
func New(opts Options) (*Server, error) {
	if opts.Store == nil {
		return nil, fmt.Errorf("server: Options.Store is required")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = sched.Workers()
	}
	depth := opts.QueueDepth
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	top := opts.TopVars
	if top <= 0 {
		top = 5
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		st:          opts.Store,
		workers:     workers,
		topVars:     top,
		timeout:     opts.JobTimeout,
		beforeRun:   opts.BeforeRun,
		baseCtx:     ctx,
		cancelBase:  cancel,
		queue:       make(chan *Job, depth),
		workersDone: make(chan struct{}),
		jobs:        make(map[string]*Job),
		m:           metrics{start: time.Now()},
	}, nil
}

// Start launches the worker pool: Workers() loops dispatched as one
// sched sweep, so each worker inherits the scheduler's panic isolation.
func (s *Server) Start() {
	go func() {
		defer close(s.workersDone)
		// The pool dispatches under a background context on purpose:
		// shutdown must let workers drain the closed queue, not stop
		// them from being scheduled. Job cancellation flows through
		// each job's own context instead.
		sched.MapWithCtx(context.Background(), s.workers, s.workers,
			func(context.Context, int) (struct{}, error) {
				s.workerLoop()
				return struct{}{}, nil
			})
	}()
}

// Shutdown drains and stops the daemon: new submissions are refused,
// queued jobs run to completion, and the store is flushed. If ctx
// expires first, every outstanding job's context is cancelled and the
// backlog drains as canceled jobs instead of running.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	select {
	case <-s.workersDone:
	case <-ctx.Done():
		s.cancelBase()
		<-s.workersDone
	}
	s.cancelBase()
	return s.st.Flush()
}

// Draining reports whether the daemon has begun shutting down.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Submit validates a spec and enqueues a job for it. The error is
// ErrQueueFull, ErrDraining, or a validation error (the HTTP layer maps
// them to 429, 503, and 400).
func (s *Server) Submit(spec Spec) (*Job, error) {
	n, err := spec.Normalize()
	if err != nil {
		return nil, err
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	id := fmt.Sprintf("job-%06d", s.seq+1)
	base := s.baseCtx
	job := newJob(base, id, n, n.Key(), now)
	if s.timeout > 0 {
		job.armTimeout(s.timeout)
	}
	// Count before the send so the queued gauge can never dip negative
	// when a worker races the increment; undo on rejection.
	s.m.submitted.Add(1)
	s.m.queued.Add(1)
	select {
	case s.queue <- job:
	default:
		s.m.submitted.Add(-1)
		s.m.queued.Add(-1)
		s.m.rejected.Add(1)
		job.cancel()
		return nil, ErrQueueFull
	}
	s.seq++
	s.jobs[id] = job
	s.order = append(s.order, id)
	return job, nil
}

// JobByID looks a job up.
func (s *Server) JobByID(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs snapshots every job's status in submission order.
func (s *Server) Jobs() []JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]JobStatus, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.jobs[id].Status())
	}
	return out
}

// CancelJob cancels a job by ID, keeping the gauges in step with the
// state it was in when the cancel landed.
func (s *Server) CancelJob(id string) (JobStatus, bool) {
	job, ok := s.JobByID(id)
	if !ok {
		return JobStatus{}, false
	}
	switch job.Cancel() {
	case StateQueued:
		s.m.queued.Add(-1)
		s.m.canceled.Add(1)
	case StateRunning:
		s.m.running.Add(-1)
		s.m.canceled.Add(1)
	}
	return job.Status(), true
}

// Metrics snapshots the daemon's counters.
func (s *Server) Metrics() MetricsSnapshot {
	return s.m.snapshot(s.st.Stats(), len(s.queue), cap(s.queue), s.workers)
}

// Store exposes the profile store (diff and view handlers read it).
func (s *Server) Store() *store.Store { return s.st }

// workerLoop drains the queue until it is closed and empty.
func (s *Server) workerLoop() {
	for job := range s.queue {
		s.runJob(job)
	}
}

// runJob executes one dequeued job through the store.
func (s *Server) runJob(job *Job) {
	started := time.Now()
	s.m.queueWait.observe(started.Sub(job.submitted))
	if !job.begin(started) {
		return // cancelled while queued; gauges moved by CancelJob
	}
	s.m.queued.Add(-1)
	s.m.running.Add(1)
	if h := s.beforeRun; h != nil {
		h(job)
	}

	outcome, errMsg, cacheHit := s.execute(job)
	if job.finish(outcome, errMsg, cacheHit, time.Now()) {
		s.m.running.Add(-1)
		switch outcome {
		case StateDone:
			s.m.done.Add(1)
		case StateFailed:
			s.m.failed.Add(1)
		case StateCanceled:
			s.m.canceled.Add(1)
		}
	}
	s.m.run.observe(time.Since(started))
	s.m.total.observe(time.Since(job.submitted))
}

// execute resolves a job to its terminal outcome: a store hit, a fresh
// run, a cancellation, or a failure. The fresh run goes through
// sched.MapWithCtx so a panicking workload fails its own job without
// taking a worker down, and a cancelled job refuses to start at all.
func (s *Server) execute(job *Job) (State, string, bool) {
	if err := job.ctx.Err(); err != nil {
		return cancelOutcome(err)
	}
	_, cached, err := s.st.GetOrCompute(job.ctx, job.key, func() (*core.Profile, error) {
		res, err := sched.MapWithCtx(job.ctx, 1, 1, func(context.Context, int) (*core.Profile, error) {
			cfg, app, err := job.spec.Build()
			if err != nil {
				return nil, err
			}
			return core.Analyze(cfg, app)
		})
		if err != nil {
			if sweep, ok := sched.AsSweep(err); ok && len(sweep.Cells) > 0 {
				return nil, sweep.Cells[0].Err
			}
			return nil, err
		}
		return res[0], nil
	})
	switch {
	case err == nil:
		return StateDone, "", cached
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return cancelOutcome(err)
	default:
		return StateFailed, err.Error(), false
	}
}

// cancelOutcome distinguishes an explicit cancel from a timeout.
func cancelOutcome(err error) (State, string, bool) {
	if errors.Is(err, context.DeadlineExceeded) {
		return StateFailed, "job deadline exceeded", false
	}
	return StateCanceled, "canceled", false
}
