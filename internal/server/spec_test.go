package server

import (
	"strings"
	"testing"
)

func TestNormalizeResolvesDefaults(t *testing.T) {
	n, err := Spec{Workload: "lulesh"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Mechanism != "IBS" || n.Machine != "amd-magny-cours-48" ||
		n.Binding != "compact" || n.Strategy != "baseline" ||
		n.FirstTouch == nil || !*n.FirstTouch {
		t.Fatalf("defaults not resolved: %+v", n)
	}
}

func TestNormalizeMechanismPicksTestbed(t *testing.T) {
	cases := map[string]string{
		"IBS":      "amd-magny-cours-48",
		"Soft-IBS": "amd-magny-cours-48",
		"MRK":      "ibm-power7-128",
		"PEBS":     "intel-harpertown-8",
		"DEAR":     "intel-itanium2-8",
		"PEBS-LL":  "intel-ivybridge-8",
	}
	for mech, machine := range cases {
		n, err := Spec{Workload: "lulesh", Mechanism: mech}.Normalize()
		if err != nil {
			t.Fatalf("%s: %v", mech, err)
		}
		if n.Machine != machine {
			t.Errorf("%s: machine = %s, want %s", mech, n.Machine, machine)
		}
	}
}

func TestNormalizeUMTQuirks(t *testing.T) {
	n, err := Spec{Workload: "umt2013"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Threads != 32 || n.Binding != "scatter" {
		t.Fatalf("UMT quirks not applied: threads=%d binding=%s", n.Threads, n.Binding)
	}
	// An explicit scatter/thread choice is kept.
	n, err = Spec{Workload: "umt2013", Threads: 8, Binding: "scatter"}.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	if n.Threads != 8 {
		t.Fatalf("explicit threads overridden: %d", n.Threads)
	}
}

func TestNormalizeRejects(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"empty workload", Spec{}, "unknown workload"},
		{"unknown workload", Spec{Workload: "doom"}, "unknown workload"},
		{"unknown mechanism", Spec{Workload: "lulesh", Mechanism: "XYZ"}, "unknown mechanism"},
		{"unknown machine", Spec{Workload: "lulesh", Machine: "pdp-11"}, "unknown machine"},
		{"unknown binding", Spec{Workload: "lulesh", Binding: "diagonal"}, "unknown binding"},
		{"unknown strategy", Spec{Workload: "lulesh", Strategy: "wishful"}, "unknown strategy"},
		{"negative threads", Spec{Workload: "lulesh", Threads: -1}, "negative thread"},
		{"negative bins", Spec{Workload: "lulesh", Bins: -1}, "negative bin"},
		{"negative iters", Spec{Workload: "lulesh", Iters: -2}, "negative iteration"},
		{"bad chaos", Spec{Workload: "lulesh", Chaos: "drop=2.5"}, "faults:"},
	}
	for _, c := range cases {
		_, err := c.spec.Normalize()
		if err == nil {
			t.Errorf("%s: expected error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestKeyCanonicalOverDefaults(t *testing.T) {
	// Spelling a default explicitly must hash to the same key.
	implicit := Spec{Workload: "blackscholes"}
	ft := true
	explicit := Spec{
		Workload:   "blackscholes",
		Mechanism:  "IBS",
		Machine:    "amd-magny-cours-48",
		Binding:    "compact",
		Strategy:   "baseline",
		FirstTouch: &ft,
	}
	if implicit.Key() != explicit.Key() {
		t.Fatal("implicit and explicit defaults hash differently")
	}
	other := Spec{Workload: "blackscholes", Strategy: "interleave"}
	if other.Key() == implicit.Key() {
		t.Fatal("different strategies share a key")
	}
	if !implicit.Key().Valid() {
		t.Fatalf("key %q is not a valid store key", implicit.Key())
	}
}

func TestBuildMatchesCLISemantics(t *testing.T) {
	cfg, app, err := Spec{Workload: "blackscholes", Iters: 2}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if app == nil || app.Name() == "" {
		t.Fatal("no app built")
	}
	if cfg.Machine == nil || cfg.Mechanism != "IBS" || !cfg.TrackFirstTouch {
		t.Fatalf("config not CLI-equivalent: %+v", cfg)
	}
}
