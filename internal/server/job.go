package server

import (
	"context"
	"sync"
	"time"

	"repro/internal/progress"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// State is a job's lifecycle stage.
type State string

const (
	// StateQueued: accepted, waiting for a worker.
	StateQueued State = "queued"
	// StateRunning: a worker is executing (or dedup-waiting on) it.
	StateRunning State = "running"
	// StateDone: the profile is in the store.
	StateDone State = "done"
	// StateFailed: the run errored; Error carries the cause.
	StateFailed State = "failed"
	// StateCanceled: cancelled before it could finish. A cancel that
	// loses the race with completion leaves the job done — the result
	// was already paid for and stored.
	StateCanceled State = "canceled"
)

// Terminal reports whether no further transitions can happen.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is one submitted profiling run.
type Job struct {
	id   string
	spec Spec // normalized
	key  store.Key

	// cancel aborts the job's context; workers check it between
	// stages, and sched.MapWithCtx refuses to dispatch under it once
	// cancelled.
	ctx    context.Context
	cancel context.CancelFunc

	// queueSpan times the queued → running transition (nil when
	// tracing is disabled). The worker that claims the job ends it;
	// a cancel while still queued ends it too.
	queueSpan *telemetry.Span

	// hub is the job's live event stream: lifecycle transitions and
	// progress snapshots, fanned out to SSE subscribers. The hub
	// enforces monotonic lifecycle ordering, so racing publishers
	// (worker vs. cancel) cannot show a subscriber a rewound state.
	hub *progress.Hub

	mu        sync.Mutex
	state     State
	err       string
	cacheHit  bool
	attempt   int          // zero-based run attempt (retries increment)
	recovered bool         // re-enqueued from the journal after a restart
	cells     []CellStatus // per-cell progress of a sweep job
	advice    []byte       // advise job's marshaled advisor.Report
	// ckpts holds journal-adopted mid-cell checkpoint pointers for a
	// recovered job: cell key → highest checkpointed epoch. The worker
	// consults it to resume an interrupted cell instead of recomputing
	// from epoch zero.
	ckpts     map[store.Key]int
	submitted time.Time
	started   time.Time
	finished  time.Time
	done      chan struct{} // closed on any terminal state
}

func newJob(base context.Context, id string, spec Spec, key store.Key, now time.Time) *Job {
	ctx, cancel := context.WithCancel(base)
	return &Job{
		id:        id,
		spec:      spec,
		key:       key,
		ctx:       ctx,
		cancel:    cancel,
		state:     StateQueued,
		submitted: now,
		done:      make(chan struct{}),
		hub:       progress.NewHub(),
	}
}

// newTerminalJob rebuilds a journal-recovered job that already reached
// a terminal state in a previous process, so the API keeps answering
// for it after a restart. Its context is pre-cancelled and its done
// channel closed: no worker will ever touch it.
func newTerminalJob(id string, spec Spec, key store.Key, st State, errMsg string, cacheHit bool, now time.Time) *Job {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	j := &Job{
		id:        id,
		spec:      spec,
		key:       key,
		ctx:       ctx,
		cancel:    cancel,
		state:     st,
		err:       errMsg,
		cacheHit:  cacheHit,
		recovered: true,
		submitted: now,
		finished:  now,
		done:      make(chan struct{}),
		hub:       progress.NewHub(),
	}
	close(j.done)
	// A recovered terminal job's stream is just its terminal event —
	// a subscriber that reconnects after a daemon restart still gets a
	// clean, ordered close instead of a hang.
	j.hub.Publish(string(st), nil, j.Status())
	return j
}

// Events subscribes to the job's live event stream, resuming past
// lastID (0 for the full replay).
func (j *Job) Events(lastID uint64, buf int) ([]progress.Event, *progress.Subscription) {
	return j.hub.Subscribe(lastID, buf)
}

// publish appends one lifecycle event (with the job's wire status) to
// the stream.
func (j *Job) publish(typ string) {
	j.hub.Publish(typ, nil, j.Status())
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// attemptNow reads the current zero-based attempt number.
func (j *Job) attemptNow() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.attempt
}

// bumpAttempt advances to the next retry attempt.
func (j *Job) bumpAttempt() {
	j.mu.Lock()
	j.attempt++
	j.mu.Unlock()
}

// setAttempt restores a journal-recovered attempt counter, so a flaky
// plan's deterministic schedule resumes where the crashed process left
// off.
func (j *Job) setAttempt(n int) {
	j.mu.Lock()
	if n > j.attempt {
		j.attempt = n
	}
	j.mu.Unlock()
}

// markRecovered tags a re-enqueued job.
func (j *Job) markRecovered() {
	j.mu.Lock()
	j.recovered = true
	j.mu.Unlock()
}

// adoptCkpts installs journal-recovered checkpoint pointers (cell key →
// epoch) on a re-enqueued job.
func (j *Job) adoptCkpts(ckpts map[string]int) {
	if len(ckpts) == 0 {
		return
	}
	m := make(map[store.Key]int, len(ckpts))
	for k, e := range ckpts {
		m[store.Key(k)] = e
	}
	j.mu.Lock()
	j.ckpts = m
	j.mu.Unlock()
}

// ckptEpoch reads the recovered checkpoint pointer for one cell key, 0
// when the job has none.
func (j *Job) ckptEpoch(k store.Key) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.ckpts[k]
}

// setCells installs the sweep's cell table (called once, when the sweep
// starts executing).
func (j *Job) setCells(cells []CellStatus) {
	j.mu.Lock()
	j.cells = cells
	j.mu.Unlock()
}

// setAdvice caches an advise job's finished report (canonical JSON).
// The cache is a convenience, not the durability story: every input to
// the report is content-addressed in the store, so a restarted daemon
// recomputes identical bytes on demand (see adviceReport).
func (j *Job) setAdvice(b []byte) {
	j.mu.Lock()
	j.advice = b
	j.mu.Unlock()
}

// adviceNow reads the cached advice report, nil when absent.
func (j *Job) adviceNow() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.advice
}

// setCell updates one cell's state as the sweep progresses.
func (j *Job) setCell(i int, st State, errMsg string) {
	j.mu.Lock()
	if i >= 0 && i < len(j.cells) {
		j.cells[i].State = st
		j.cells[i].Error = errMsg
	}
	j.mu.Unlock()
}

// armTimeout replaces the job's context with a deadline-bound child:
// the clock runs from submission, so a job stuck in the queue can
// expire before it ever runs.
func (j *Job) armTimeout(d time.Duration) {
	parent := j.ctx
	parentCancel := j.cancel
	ctx, cancel := context.WithTimeout(parent, d)
	j.ctx = ctx
	j.cancel = func() {
		cancel()
		parentCancel()
	}
}

// Cancel requests cancellation. It wins against queued and running
// jobs; against an already-terminal job it is a no-op. It returns the
// state the job was in when the cancel landed.
func (j *Job) Cancel() State {
	j.mu.Lock()
	prev := j.state
	if !j.state.Terminal() {
		j.state = StateCanceled
		j.err = "canceled"
		j.finished = time.Now()
		close(j.done)
	}
	j.mu.Unlock()
	j.cancel()
	return prev
}

// begin moves queued → running; it reports false when the job was
// cancelled first (the worker must skip it).
func (j *Job) begin(now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateQueued {
		return false
	}
	j.state = StateRunning
	j.started = now
	return true
}

// finish records the terminal outcome of a run, reporting whether it
// applied. A cancel that landed while the run was in flight keeps the
// canceled state (and its gauge accounting); the result, if any, is
// still in the store for the next submission.
func (j *Job) finish(outcome State, errMsg string, cacheHit bool, now time.Time) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	j.state = outcome
	j.err = errMsg
	j.cacheHit = cacheHit
	j.finished = now
	close(j.done)
	return true
}

// CellStatus is one sweep cell's progress in JobStatus. Key addresses
// the cell's own profile in the store (the sweep job's Key identifies
// the sweep, not any stored bytes).
type CellStatus struct {
	Index    int       `json:"index"`
	Workload string    `json:"workload"`
	Strategy string    `json:"strategy"`
	Key      store.Key `json:"key"`
	State    State     `json:"state"`
	Error    string    `json:"error,omitempty"`
}

// JobStatus is the wire form of a job, shared by the daemon's handlers
// and the Go client.
type JobStatus struct {
	ID       string    `json:"id"`
	State    State     `json:"state"`
	Key      store.Key `json:"key"`
	Spec     Spec      `json:"spec"`
	CacheHit bool      `json:"cache_hit,omitempty"`
	Error    string    `json:"error,omitempty"`
	// Attempt counts retries: 0 for a job that ran once.
	Attempt int `json:"attempt,omitempty"`
	// Recovered marks a job replayed from the journal after a restart.
	Recovered bool `json:"recovered,omitempty"`
	// Cells is the per-cell progress of a sweep job (absent otherwise).
	Cells []CellStatus `json:"cells,omitempty"`

	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at"`
	FinishedAt  time.Time `json:"finished_at"`
}

// Status snapshots the job for the API.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	var cells []CellStatus
	if len(j.cells) > 0 {
		cells = append(cells, j.cells...)
	}
	return JobStatus{
		ID:          j.id,
		State:       j.state,
		Key:         j.key,
		Spec:        j.spec,
		CacheHit:    j.cacheHit,
		Error:       j.err,
		Attempt:     j.attempt,
		Recovered:   j.recovered,
		Cells:       cells,
		SubmittedAt: j.submitted,
		StartedAt:   j.started,
		FinishedAt:  j.finished,
	}
}

// StateNow returns the current state.
func (j *Job) StateNow() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}
