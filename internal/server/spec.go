package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/pmu"
	"repro/internal/proc"
	"repro/internal/store"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// Spec is one profiling job: everything `numaprof` takes on its command
// line, as the JSON body of POST /api/v1/jobs. The zero values mean
// "the CLI's defaults", so the daemon and the CLI resolve identical
// configurations — the byte-identity guarantee between a daemon-served
// profile and `numaprof -profile` output rides on Build being the only
// spec-to-config path in the tree.
type Spec struct {
	// Workload is required: lulesh, amg2006, blackscholes, umt2013.
	// A comma-separated list turns the job into a sweep (see IsSweep):
	// one cell per workload × strategy combination, checkpointed
	// per-cell in the store.
	Workload string `json:"workload"`
	// Mechanism is the sampling back end (default IBS).
	Mechanism string `json:"mechanism,omitempty"`
	// Machine is a topology preset name (default: the mechanism's
	// Table 1 testbed, as in the CLI).
	Machine string `json:"machine,omitempty"`
	// Threads is the team size (0: all CPUs; UMT defaults to 32).
	Threads int `json:"threads,omitempty"`
	// Binding is compact or scatter (default compact; UMT forces
	// scatter over the compact default).
	Binding string `json:"binding,omitempty"`
	// Strategy is the placement variant (default baseline). Like
	// Workload, a comma-separated list sweeps several strategies.
	Strategy string `json:"strategy,omitempty"`
	// Period overrides the mechanism's sampling period (0: default).
	Period uint64 `json:"period,omitempty"`
	// Bins overrides the per-variable bin count (0: default).
	Bins int `json:"bins,omitempty"`
	// Iters overrides the workload's iteration count (0: default).
	Iters int `json:"iters,omitempty"`
	// FirstTouch enables page-protection first-touch pinpointing
	// (null: true, the CLI default).
	FirstTouch *bool `json:"first_touch,omitempty"`
	// Trace records time-stamped samples.
	Trace bool `json:"trace,omitempty"`
	// Chaos is a fault-injection plan (see internal/faults), e.g.
	// "drop=0.2,fail=2000,seed=42".
	Chaos string `json:"chaos,omitempty"`
	// Advise turns the job into an optimizer run: profile the spec (or
	// reuse its stored baseline), diagnose it, and re-run every
	// candidate remedy (see internal/advisor). Set by POST
	// /api/v1/jobs/{id}/advise, not usually by hand. omitempty keeps
	// every pre-existing spec's canonical JSON — and store key —
	// unchanged.
	Advise bool `json:"advise,omitempty"`
}

// defaultMachineFor mirrors the CLI's mechanism → Table 1 testbed
// mapping.
func defaultMachineFor(mechanism string) string {
	switch mechanism {
	case "MRK":
		return "ibm-power7-128"
	case "PEBS":
		return "intel-harpertown-8"
	case "DEAR":
		return "intel-itanium2-8"
	case "PEBS-LL":
		return "intel-ivybridge-8"
	default:
		return "amd-magny-cours-48"
	}
}

// knownWorkload reports whether name is one of the four benchmarks.
func knownWorkload(name string) bool {
	switch name {
	case "lulesh", "amg2006", "blackscholes", "umt2013":
		return true
	}
	return false
}

// IsSweep reports whether the spec names several cells: a comma list in
// Workload and/or Strategy, the same list syntax the numaprof CLI takes.
func (s Spec) IsSweep() bool {
	return strings.Contains(s.Workload, ",") || strings.Contains(s.Strategy, ",")
}

// splitList splits a comma list, trimming fields and dropping empties.
func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// Normalize resolves every default to its explicit value and validates
// the result, returning the canonical spec that Key hashes: two
// submissions that resolve to the same run always share one store
// entry, however they spelled their defaults.
//
// A sweep spec canonicalizes its lists (trimmed, order-preserved) and
// keeps generic defaults for the shared fields; the per-workload quirks
// (umt2013's thread cap and scatter binding) are applied per cell by
// Cells, never at the sweep level.
func (s Spec) Normalize() (Spec, error) {
	if s.IsSweep() {
		return s.normalizeSweep()
	}
	n := s
	n.Workload = strings.TrimSpace(n.Workload)
	if !knownWorkload(n.Workload) {
		return n, fmt.Errorf("unknown workload %q (lulesh|amg2006|blackscholes|umt2013)", n.Workload)
	}
	if n.Mechanism == "" {
		n.Mechanism = "IBS"
	}
	if _, err := pmu.ByName(n.Mechanism, n.Period); err != nil {
		return n, err // "pmu: unknown mechanism ..."
	}
	if n.Machine == "" {
		n.Machine = defaultMachineFor(n.Mechanism)
	}
	presets := topology.Presets()
	if _, ok := presets[n.Machine]; !ok {
		names := make([]string, 0, len(presets))
		for name := range presets {
			names = append(names, name)
		}
		sort.Strings(names)
		return n, fmt.Errorf("unknown machine %q; presets: %s", n.Machine, strings.Join(names, ", "))
	}
	if n.Binding == "" {
		n.Binding = "compact"
	}
	if n.Binding != "compact" && n.Binding != "scatter" {
		return n, fmt.Errorf("unknown binding %q (compact|scatter)", n.Binding)
	}
	if n.Strategy == "" {
		n.Strategy = string(workloads.Baseline)
	}
	if !validStrategy(n.Strategy) {
		return n, fmt.Errorf("unknown strategy %q", n.Strategy)
	}
	if n.Workload == "umt2013" {
		if n.Threads == 0 {
			n.Threads = 32 // the paper's UMT input limit
		}
		if n.Binding == "compact" {
			n.Binding = "scatter"
		}
	}
	if n.Threads < 0 {
		return n, fmt.Errorf("negative thread count %d", n.Threads)
	}
	if n.Bins < 0 {
		return n, fmt.Errorf("negative bin count %d", n.Bins)
	}
	if n.Iters < 0 {
		return n, fmt.Errorf("negative iteration count %d", n.Iters)
	}
	if n.Chaos != "" {
		if _, err := faults.ParsePlan(n.Chaos); err != nil {
			return n, err // "faults: ..."
		}
	}
	if n.FirstTouch == nil {
		ft := true
		n.FirstTouch = &ft
	}
	if n.Advise && !*n.FirstTouch {
		// The advisor's first-touch remedies need the pinpointing view;
		// refusing here beats silently weaker advice.
		return n, fmt.Errorf("advise requires first_touch tracking")
	}
	return n, nil
}

// normalizeSweep canonicalizes a multi-cell spec: both lists trimmed
// and validated, shared fields resolved to generic defaults, and every
// expanded cell proven to normalize on its own.
func (s Spec) normalizeSweep() (Spec, error) {
	n := s
	if n.Advise {
		return n, fmt.Errorf("advise applies to a single run, not a sweep (%s × %s)", n.Workload, n.Strategy)
	}
	wls := splitList(n.Workload)
	if len(wls) == 0 {
		return n, fmt.Errorf("empty workload list %q", s.Workload)
	}
	for _, w := range wls {
		if !knownWorkload(w) {
			return n, fmt.Errorf("unknown workload %q (lulesh|amg2006|blackscholes|umt2013)", w)
		}
	}
	n.Workload = strings.Join(wls, ",")
	sts := splitList(n.Strategy)
	if len(sts) == 0 {
		sts = []string{string(workloads.Baseline)}
	}
	for _, st := range sts {
		if !validStrategy(st) {
			return n, fmt.Errorf("unknown strategy %q", st)
		}
	}
	n.Strategy = strings.Join(sts, ",")
	if n.Mechanism == "" {
		n.Mechanism = "IBS"
	}
	if _, err := pmu.ByName(n.Mechanism, n.Period); err != nil {
		return n, err
	}
	if n.Machine == "" {
		n.Machine = defaultMachineFor(n.Mechanism)
	}
	if _, ok := topology.Presets()[n.Machine]; !ok {
		return n, fmt.Errorf("unknown machine %q", n.Machine)
	}
	if n.Binding == "" {
		n.Binding = "compact"
	}
	if n.Binding != "compact" && n.Binding != "scatter" {
		return n, fmt.Errorf("unknown binding %q (compact|scatter)", n.Binding)
	}
	if n.Threads < 0 {
		return n, fmt.Errorf("negative thread count %d", n.Threads)
	}
	if n.Bins < 0 {
		return n, fmt.Errorf("negative bin count %d", n.Bins)
	}
	if n.Iters < 0 {
		return n, fmt.Errorf("negative iteration count %d", n.Iters)
	}
	if n.Chaos != "" {
		if _, err := faults.ParsePlan(n.Chaos); err != nil {
			return n, err
		}
	}
	if n.FirstTouch == nil {
		ft := true
		n.FirstTouch = &ft
	}
	// Every cell must stand alone (the umt2013 quirks can surface new
	// errors only through the per-cell path, but future workloads may
	// constrain more).
	for _, w := range wls {
		for _, st := range sts {
			c := n
			c.Workload, c.Strategy = w, st
			if _, err := c.Normalize(); err != nil {
				return n, fmt.Errorf("sweep cell %s/%s: %w", w, st, err)
			}
		}
	}
	return n, nil
}

// chaosPlan parses the spec's fault plan, nil when absent or invalid
// (Normalize already rejected invalid plans at submission).
func (s Spec) chaosPlan() *faults.Plan {
	if s.Chaos == "" {
		return nil
	}
	p, err := faults.ParsePlan(s.Chaos)
	if err != nil {
		return nil
	}
	return p
}

// validStrategy reports whether name is a known placement strategy.
func validStrategy(name string) bool {
	for _, st := range workloads.Strategies() {
		if name == string(st) {
			return true
		}
	}
	return false
}

// Cells expands a spec into its normalized single-run cells, workloads
// outer × strategies inner — the sweep's input order, which fixes cell
// indices for the checkpoint. A non-sweep spec yields exactly its own
// normalized form.
func (s Spec) Cells() ([]Spec, error) {
	n, err := s.Normalize()
	if err != nil {
		return nil, err
	}
	if !n.IsSweep() {
		return []Spec{n}, nil
	}
	var cells []Spec
	for _, w := range splitList(n.Workload) {
		for _, st := range splitList(n.Strategy) {
			c := n
			c.Workload, c.Strategy = w, st
			nc, err := c.Normalize() // applies per-workload quirks
			if err != nil {
				return nil, fmt.Errorf("sweep cell %s/%s: %w", w, st, err)
			}
			cells = append(cells, nc)
		}
	}
	return cells, nil
}

// Key content-addresses the spec: the SHA-256 of the canonical
// (normalized, field-order-fixed) JSON encoding. Normalize must have
// succeeded for the key to be meaningful.
func (s Spec) Key() store.Key {
	n, _ := s.Normalize()
	b, _ := json.Marshal(n) // struct marshal: fixed field order, cannot fail
	h := sha256.Sum256(b)
	return store.Key(hex.EncodeToString(h[:]))
}

// Build validates the spec and constructs the profiler configuration
// and a fresh one-shot App instance, exactly as the numaprof CLI does.
// A sweep spec has no single configuration; expand it with Cells and
// Build each cell.
func (s Spec) Build() (core.Config, core.App, error) {
	n, err := s.Normalize()
	if err != nil {
		return core.Config{}, nil, err
	}
	if n.IsSweep() {
		return core.Config{}, nil, fmt.Errorf("sweep spec (%s × %s) has no single config; expand with Cells", n.Workload, n.Strategy)
	}
	m := topology.Presets()[n.Machine]

	bind := proc.Compact
	if n.Binding == "scatter" {
		bind = proc.Scatter
	}

	params := workloads.Params{Strategy: workloads.Strategy(n.Strategy), Iters: n.Iters}
	var app core.App
	switch n.Workload {
	case "lulesh":
		app = workloads.NewLULESH(params)
	case "amg2006":
		app = workloads.NewAMG2006(params)
	case "blackscholes":
		app = workloads.NewBlackscholes(params)
	case "umt2013":
		app = workloads.NewUMT2013(params)
	}

	var plan *faults.Plan
	if n.Chaos != "" {
		plan, err = faults.ParsePlan(n.Chaos)
		if err != nil {
			return core.Config{}, nil, err
		}
	}

	cfg := core.Config{
		Faults:          plan,
		Machine:         m,
		Threads:         n.Threads,
		Binding:         bind,
		Mechanism:       n.Mechanism,
		Period:          n.Period,
		Bins:            n.Bins,
		TrackFirstTouch: *n.FirstTouch,
		Trace:           n.Trace,
		CacheConfig:     workloads.TunedCacheConfig(),
		MemParams:       workloads.MemParamsFor(m),
		FabricParams:    workloads.FabricParamsFor(m),
	}
	return cfg, app, nil
}
