package server

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/pmu"
	"repro/internal/proc"
	"repro/internal/store"
	"repro/internal/topology"
	"repro/internal/workloads"
)

// Spec is one profiling job: everything `numaprof` takes on its command
// line, as the JSON body of POST /api/v1/jobs. The zero values mean
// "the CLI's defaults", so the daemon and the CLI resolve identical
// configurations — the byte-identity guarantee between a daemon-served
// profile and `numaprof -profile` output rides on Build being the only
// spec-to-config path in the tree.
type Spec struct {
	// Workload is required: lulesh, amg2006, blackscholes, umt2013.
	Workload string `json:"workload"`
	// Mechanism is the sampling back end (default IBS).
	Mechanism string `json:"mechanism,omitempty"`
	// Machine is a topology preset name (default: the mechanism's
	// Table 1 testbed, as in the CLI).
	Machine string `json:"machine,omitempty"`
	// Threads is the team size (0: all CPUs; UMT defaults to 32).
	Threads int `json:"threads,omitempty"`
	// Binding is compact or scatter (default compact; UMT forces
	// scatter over the compact default).
	Binding string `json:"binding,omitempty"`
	// Strategy is the placement variant (default baseline).
	Strategy string `json:"strategy,omitempty"`
	// Period overrides the mechanism's sampling period (0: default).
	Period uint64 `json:"period,omitempty"`
	// Bins overrides the per-variable bin count (0: default).
	Bins int `json:"bins,omitempty"`
	// Iters overrides the workload's iteration count (0: default).
	Iters int `json:"iters,omitempty"`
	// FirstTouch enables page-protection first-touch pinpointing
	// (null: true, the CLI default).
	FirstTouch *bool `json:"first_touch,omitempty"`
	// Trace records time-stamped samples.
	Trace bool `json:"trace,omitempty"`
	// Chaos is a fault-injection plan (see internal/faults), e.g.
	// "drop=0.2,fail=2000,seed=42".
	Chaos string `json:"chaos,omitempty"`
}

// defaultMachineFor mirrors the CLI's mechanism → Table 1 testbed
// mapping.
func defaultMachineFor(mechanism string) string {
	switch mechanism {
	case "MRK":
		return "ibm-power7-128"
	case "PEBS":
		return "intel-harpertown-8"
	case "DEAR":
		return "intel-itanium2-8"
	case "PEBS-LL":
		return "intel-ivybridge-8"
	default:
		return "amd-magny-cours-48"
	}
}

// knownWorkload reports whether name is one of the four benchmarks.
func knownWorkload(name string) bool {
	switch name {
	case "lulesh", "amg2006", "blackscholes", "umt2013":
		return true
	}
	return false
}

// Normalize resolves every default to its explicit value and validates
// the result, returning the canonical spec that Key hashes: two
// submissions that resolve to the same run always share one store
// entry, however they spelled their defaults.
func (s Spec) Normalize() (Spec, error) {
	n := s
	n.Workload = strings.TrimSpace(n.Workload)
	if !knownWorkload(n.Workload) {
		return n, fmt.Errorf("unknown workload %q (lulesh|amg2006|blackscholes|umt2013)", n.Workload)
	}
	if n.Mechanism == "" {
		n.Mechanism = "IBS"
	}
	if _, err := pmu.ByName(n.Mechanism, n.Period); err != nil {
		return n, err // "pmu: unknown mechanism ..."
	}
	if n.Machine == "" {
		n.Machine = defaultMachineFor(n.Mechanism)
	}
	presets := topology.Presets()
	if _, ok := presets[n.Machine]; !ok {
		names := make([]string, 0, len(presets))
		for name := range presets {
			names = append(names, name)
		}
		sort.Strings(names)
		return n, fmt.Errorf("unknown machine %q; presets: %s", n.Machine, strings.Join(names, ", "))
	}
	if n.Binding == "" {
		n.Binding = "compact"
	}
	if n.Binding != "compact" && n.Binding != "scatter" {
		return n, fmt.Errorf("unknown binding %q (compact|scatter)", n.Binding)
	}
	if n.Strategy == "" {
		n.Strategy = string(workloads.Baseline)
	}
	valid := false
	for _, st := range workloads.Strategies() {
		if n.Strategy == string(st) {
			valid = true
			break
		}
	}
	if !valid {
		return n, fmt.Errorf("unknown strategy %q", n.Strategy)
	}
	if n.Workload == "umt2013" {
		if n.Threads == 0 {
			n.Threads = 32 // the paper's UMT input limit
		}
		if n.Binding == "compact" {
			n.Binding = "scatter"
		}
	}
	if n.Threads < 0 {
		return n, fmt.Errorf("negative thread count %d", n.Threads)
	}
	if n.Bins < 0 {
		return n, fmt.Errorf("negative bin count %d", n.Bins)
	}
	if n.Iters < 0 {
		return n, fmt.Errorf("negative iteration count %d", n.Iters)
	}
	if n.Chaos != "" {
		if _, err := faults.ParsePlan(n.Chaos); err != nil {
			return n, err // "faults: ..."
		}
	}
	if n.FirstTouch == nil {
		ft := true
		n.FirstTouch = &ft
	}
	return n, nil
}

// Key content-addresses the spec: the SHA-256 of the canonical
// (normalized, field-order-fixed) JSON encoding. Normalize must have
// succeeded for the key to be meaningful.
func (s Spec) Key() store.Key {
	n, _ := s.Normalize()
	b, _ := json.Marshal(n) // struct marshal: fixed field order, cannot fail
	h := sha256.Sum256(b)
	return store.Key(hex.EncodeToString(h[:]))
}

// Build validates the spec and constructs the profiler configuration
// and a fresh one-shot App instance, exactly as the numaprof CLI does.
func (s Spec) Build() (core.Config, core.App, error) {
	n, err := s.Normalize()
	if err != nil {
		return core.Config{}, nil, err
	}
	m := topology.Presets()[n.Machine]

	bind := proc.Compact
	if n.Binding == "scatter" {
		bind = proc.Scatter
	}

	params := workloads.Params{Strategy: workloads.Strategy(n.Strategy), Iters: n.Iters}
	var app core.App
	switch n.Workload {
	case "lulesh":
		app = workloads.NewLULESH(params)
	case "amg2006":
		app = workloads.NewAMG2006(params)
	case "blackscholes":
		app = workloads.NewBlackscholes(params)
	case "umt2013":
		app = workloads.NewUMT2013(params)
	}

	var plan *faults.Plan
	if n.Chaos != "" {
		plan, err = faults.ParsePlan(n.Chaos)
		if err != nil {
			return core.Config{}, nil, err
		}
	}

	cfg := core.Config{
		Faults:          plan,
		Machine:         m,
		Threads:         n.Threads,
		Binding:         bind,
		Mechanism:       n.Mechanism,
		Period:          n.Period,
		Bins:            n.Bins,
		TrackFirstTouch: *n.FirstTouch,
		Trace:           n.Trace,
		CacheConfig:     workloads.TunedCacheConfig(),
		MemParams:       workloads.MemParamsFor(m),
		FabricParams:    workloads.FabricParamsFor(m),
	}
	return cfg, app, nil
}
