package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/progress"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// Errors the admission-control path maps to HTTP statuses, alongside
// ErrQueueFull and ErrDraining.
var (
	// ErrOverloaded is deadline-aware load shedding: given the current
	// queue latency, the job could not finish inside JobTimeout, so
	// accepting it would only burn a worker on a doomed run (429 with
	// Retry-After).
	ErrOverloaded = errors.New("server: overloaded, job cannot meet its deadline")
	// ErrCircuitOpen is the per-spec circuit breaker fast-failing a
	// spec that failed permanently several times in a row (503 with
	// Retry-After; the spec is retried after the cooldown).
	ErrCircuitOpen = errors.New("server: circuit open for this spec")
)

// retryAfterError decorates a sentinel with a client back-off hint; the
// HTTP layer turns it into a Retry-After header. errors.Is still sees
// the wrapped sentinel.
type retryAfterError struct {
	err   error
	after time.Duration
}

func (e *retryAfterError) Error() string {
	return fmt.Sprintf("%v (retry after %s)", e.err, e.after.Round(time.Millisecond))
}

func (e *retryAfterError) Unwrap() error { return e.err }

// withRetryAfter attaches a hint to err.
func withRetryAfter(err error, after time.Duration) error {
	if after < time.Second {
		after = time.Second
	}
	return &retryAfterError{err: err, after: after}
}

// RetryAfterHint extracts a Retry-After hint from a Submit error.
func RetryAfterHint(err error) (time.Duration, bool) {
	var re *retryAfterError
	if errors.As(err, &re) {
		return re.after, true
	}
	return 0, false
}

// backoffDelay is the capped exponential retry backoff with
// deterministic per-job jitter: base<<attempt clamped to cap, plus up
// to 25% jitter derived from the job ID and attempt, so a burst of
// retrying jobs does not thunder in lockstep but tests replay exactly.
func backoffDelay(base, cap time.Duration, attempt int, id string) time.Duration {
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	if cap <= 0 {
		cap = 5 * time.Second
	}
	d := base
	for i := 0; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	var h uint64 = 1469598103934665603 // FNV-1a over id and attempt
	for i := 0; i < len(id); i++ {
		h = (h ^ uint64(id[i])) * 1099511628211
	}
	h = (h ^ uint64(attempt)) * 1099511628211
	jitter := time.Duration(h % uint64(d/4+1))
	return d + jitter
}

// breakerEntry is one spec's failure history. The breaker is keyed by
// store key (canonical spec hash): repeated permanent failures of the
// same spec trip it open, and submissions fast-fail until the cooldown
// passes; the first success closes it again. Canceled and deadline
// outcomes never count — they say nothing about the spec.
type breakerEntry struct {
	fails     int
	openUntil time.Time
}

// Breaker policy defaults (overridable via Options).
const (
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 30 * time.Second
)

// breakerAllow decides, under s.mu, whether a submission for key may
// proceed. After the cooldown the breaker goes half-open: one probe is
// let through (fails drops to threshold-1, so its failure re-trips
// immediately, and its success closes the breaker).
func (s *Server) breakerAllow(key store.Key, now time.Time) (time.Duration, bool) {
	if s.breakerThreshold <= 0 {
		return 0, true
	}
	e, ok := s.breaker[key]
	if !ok || e.openUntil.IsZero() {
		return 0, true
	}
	if now.Before(e.openUntil) {
		s.m.breakerFastFails.Inc()
		return e.openUntil.Sub(now), false
	}
	// Half-open probe.
	e.fails = s.breakerThreshold - 1
	e.openUntil = time.Time{}
	return 0, true
}

// breakerFailure records a permanent failure for key, tripping the
// breaker at the threshold.
func (s *Server) breakerFailure(key store.Key) {
	if s.breakerThreshold <= 0 {
		return
	}
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.breaker[key]
	if e == nil {
		e = &breakerEntry{}
		s.breaker[key] = e
	}
	e.fails++
	if e.fails >= s.breakerThreshold && e.openUntil.IsZero() {
		e.openUntil = now.Add(s.breakerCooldown)
		s.m.breakerTrips.Inc()
		s.log.Warn("circuit breaker tripped", "key", string(key),
			"fails", e.fails, "cooldown", s.breakerCooldown.String())
	}
}

// breakerSuccess closes the breaker for key.
func (s *Server) breakerSuccess(key store.Key) {
	s.mu.Lock()
	delete(s.breaker, key)
	s.mu.Unlock()
}

// shedMinSamples is how many completed runs the shedding estimator
// needs before it trusts the run-latency mean; below it, admission is
// unconditional (cold daemons must not reject their first jobs).
const shedMinSamples = 8

// shedCheck decides, under s.mu, whether a new job could still meet
// JobTimeout: expected completion ≈ mean run time × (queue depth /
// workers + 1). Infeasible work is rejected now, with a hint, instead
// of timing out after burning a worker.
func (s *Server) shedCheck(now time.Time) (time.Duration, bool) {
	if s.timeout <= 0 {
		return 0, true
	}
	snap := s.m.run.Snapshot()
	if snap.Count < shedMinSamples {
		return 0, true
	}
	mean := time.Duration(snap.MeanUs) * time.Microsecond
	expected := mean * time.Duration(len(s.queue)/s.workers+1)
	if expected <= s.timeout {
		return 0, true
	}
	s.m.shed.Inc()
	return expected - s.timeout, false
}

// journalAppend logs one job state transition. The spec rides along
// only on queued records (it is what recovery re-enqueues); everything
// else is identified by job ID. Append failures outside Submit are
// logged, not fatal: losing durability must not fail a live job.
func (s *Server) journalAppend(job *Job, state State, errMsg string, cacheHit bool, withSpec bool) error {
	if s.jl == nil {
		return nil
	}
	rec := store.JournalRecord{
		ID:       job.id,
		State:    string(state),
		Attempt:  job.attemptNow(),
		CacheHit: cacheHit,
		Err:      errMsg,
		Unix:     time.Now().Unix(),
	}
	if withSpec {
		rec.Key = string(job.key)
		b, err := json.Marshal(job.spec)
		if err != nil {
			return fmt.Errorf("server: journal spec: %w", err)
		}
		rec.Spec = b
	}
	if err := s.jl.Append(rec); err != nil {
		s.log.Error("journal append failed", "id", job.id, "state", string(state), "err", err)
		return fmt.Errorf("server: journal: %w", err)
	}
	return nil
}

// Recover replays a recovered journal into the server: terminal jobs
// re-enter the job table (the API keeps answering for them), queued and
// running jobs are re-enqueued from their journaled specs, and the job
// ID sequence continues past the highest replayed ID. Call it after New
// and before Start, with the journal already compacted and reopened.
//
// Re-enqueued jobs whose profiles landed in the store before the crash
// resolve as cache hits; interrupted sweeps recompute only the cells
// the store is missing. A non-terminal job whose queued record (the one
// carrying the spec) was lost to corruption cannot be re-run and is
// recovered as failed — never silently dropped.
func (s *Server) Recover(rec *store.RecoveredJournal) error {
	if rec == nil {
		return nil
	}
	now := time.Now()
	for _, jj := range rec.Jobs {
		var spec Spec
		specErr := json.Unmarshal(jj.Spec, &spec)
		if len(jj.Spec) == 0 {
			specErr = errors.New("journal lost the job's spec")
		}
		st := State(jj.State)

		if st.Terminal() {
			job := newTerminalJob(jj.ID, spec, store.Key(jj.Key), st, jj.Err, jj.CacheHit, now)
			s.adoptJob(job)
			continue
		}

		if specErr != nil {
			job := newTerminalJob(jj.ID, spec, store.Key(jj.Key), StateFailed,
				fmt.Sprintf("unrecoverable: %v", specErr), false, now)
			s.adoptJob(job)
			s.m.failed.Inc()
			s.log.Error("job unrecoverable", "id", jj.ID, "err", specErr)
			continue
		}

		n, err := spec.Normalize()
		if err != nil {
			job := newTerminalJob(jj.ID, spec, store.Key(jj.Key), StateFailed,
				fmt.Sprintf("unrecoverable: %v", err), false, now)
			s.adoptJob(job)
			s.m.failed.Inc()
			continue
		}
		job := newJob(s.baseCtx, jj.ID, n, n.Key(), now)
		job.markRecovered()
		job.setAttempt(jj.Attempt)
		// Journal-recovered checkpoint pointers: the worker resumes
		// these cells mid-run instead of recomputing from epoch zero.
		job.adoptCkpts(jj.Ckpts)
		if s.timeout > 0 {
			job.armTimeout(s.timeout)
		}

		s.mu.Lock()
		full := len(s.queue) == cap(s.queue)
		if !full {
			if err := s.journalAppend(job, StateQueued, "", false, true); err != nil {
				s.mu.Unlock()
				job.cancel()
				return err
			}
			s.m.submitted.Inc()
			s.m.queued.Add(1)
			// Recovered jobs stream like fresh ones: a subscriber that
			// reconnects after the restart sees queued → running →
			// snapshots → terminal in order, with Recovered set on the
			// lifecycle payloads.
			job.hub.SetInstruments(s.m.streamDropped)
			job.publish(progress.EventQueued)
			_, job.queueSpan = telemetry.Start(job.ctx, "server.job_queued",
				telemetry.String("id", job.id), telemetry.String("workload", n.Workload))
			s.queue <- job
		}
		s.mu.Unlock()
		if full {
			job.cancel()
			job = newTerminalJob(jj.ID, n, n.Key(), StateFailed,
				"recovered job exceeds queue capacity", false, now)
			s.m.failed.Inc()
			s.log.Error("recovered job dropped, queue full", "id", jj.ID)
		}
		s.adoptJob(job)
		s.m.recovered.Inc()
		s.log.Info("job recovered", "id", jj.ID, "state", jj.State, "attempt", jj.Attempt)
	}

	// Continue job numbering past every replayed ID, recovered or not.
	s.mu.Lock()
	for _, jj := range rec.Jobs {
		if n, ok := parseJobSeq(jj.ID); ok && n > s.seq {
			s.seq = n
		}
	}
	s.mu.Unlock()
	return nil
}

// adoptJob inserts a rebuilt job into the table in replay order.
func (s *Server) adoptJob(job *Job) {
	s.mu.Lock()
	if _, exists := s.jobs[job.id]; !exists {
		s.jobs[job.id] = job
		s.order = append(s.order, job.id)
	} else {
		s.jobs[job.id] = job
	}
	s.mu.Unlock()
}

// parseJobSeq extracts N from "job-00000N" IDs.
func parseJobSeq(id string) (uint64, bool) {
	rest, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// executeSweep runs a multi-cell job with per-cell checkpointing: the
// content-addressed store is the checkpoint substrate, so completed
// cells persist the moment they finish and any retry, recovery, or even
// an identical later sweep replays them instead of recomputing. Cell
// indices follow Cells' input order, and each cell's profile is exactly
// what a single-spec job for that cell produces — the reassembly
// contract that keeps recovered results byte-identical.
func (s *Server) executeSweep(ctx context.Context, job *Job) (State, string, bool, error) {
	cells, err := job.spec.Cells()
	if err != nil {
		return StateFailed, err.Error(), false, err
	}
	keys := make([]store.Key, len(cells))
	statuses := make([]CellStatus, len(cells))
	for i, c := range cells {
		keys[i] = c.Key()
		statuses[i] = CellStatus{
			Index: i, Workload: c.Workload, Strategy: c.Strategy,
			Key: keys[i], State: StateQueued,
		}
	}
	job.setCells(statuses)

	replayed := 0 // single sweep worker, so plain ints are safe
	ck := sched.CheckpointFuncs[*core.Profile]{
		LookupFn: func(i int) (*core.Profile, bool) {
			if !s.st.Has(keys[i]) {
				return nil, false
			}
			p, err := s.st.Get(keys[i])
			if err != nil {
				return nil, false // corrupt checkpoint: recompute overwrites it
			}
			replayed++
			s.m.cellsReplayed.Inc()
			job.setCell(i, StateDone, "")
			return p, true
		},
		SaveFn: func(i int, p *core.Profile) error {
			if err := s.st.Put(keys[i], p); err != nil {
				return err
			}
			s.m.cellsRecomputed.Inc()
			job.setCell(i, StateDone, "")
			// The cell's profile is durable; its mid-cell checkpoints
			// have nothing left to accelerate.
			s.st.DeleteCheckpoints(keys[i])
			return nil
		},
	}
	// One worker: job-level parallelism is the pool's, exactly like the
	// single-spec path.
	resume := func(i int) (*core.Checkpoint, bool) {
		return s.resumeCheckpoint(job, keys[i])
	}
	_, err = sched.MapCkptResumeWithCtx(ctx, 1, len(cells), ck, resume,
		func(cellCtx context.Context, i int, rck *core.Checkpoint, _ bool) (*core.Profile, error) {
			job.setCell(i, StateRunning, "")
			cfg, app, err := cells[i].Build()
			if err != nil {
				return nil, err
			}
			// Sweep cells do not stream to the hub, but with autotune on
			// they observe their own snapshots so convergence history
			// accrues; checkpoints make the cell resumable either way.
			snapEvery, ckptEvery := s.cadenceFor(cells[i].Workload)
			if s.autotune && snapEvery > 0 {
				cfg.SnapshotEvery = snapEvery
				cfg.SnapshotTopK = s.topVars
			}
			commit := s.observeConvergence(cells[i].Workload, &cfg)
			s.installCheckpointing(job, keys[i], ckptEvery, &cfg)
			p, err := s.runCell(cellCtx, job, keys[i], cfg, app, rck)
			if err == nil {
				commit()
			}
			return p, err
		})
	if err != nil {
		var firstErr error = err
		if sweep, ok := sched.AsSweep(err); ok && len(sweep.Cells) > 0 {
			for _, ce := range sweep.Cells {
				job.setCell(ce.Index, StateFailed, ce.Err.Error())
			}
			firstErr = sweep.Cells[0].Err
		}
		if errors.Is(firstErr, context.Canceled) || errors.Is(firstErr, context.DeadlineExceeded) {
			st, msg, hit := cancelOutcome(firstErr)
			return st, msg, hit, firstErr
		}
		return StateFailed, err.Error(), false, firstErr
	}
	return StateDone, "", replayed == len(cells), nil
}
