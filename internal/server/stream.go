// Live streaming endpoints: GET /api/v1/jobs/{id}/events is an SSE
// stream of one job's lifecycle transitions and progress snapshots;
// GET /api/v1/jobs/{id}/live renders the latest snapshot through the
// view layer. Both ride the job's progress.Hub: bounded per-subscriber
// buffers, drop-oldest backpressure, monotonic lifecycle ordering, and
// a guaranteed terminal event (done/failed/canceled, or shutdown when
// the daemon drains) that closes the stream — handlers exit on channel
// close or client disconnect, never leak.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/progress"
	"repro/internal/view"
)

// streamBuffer bounds one SSE subscriber's event backlog; a consumer
// slower than the publisher loses oldest events first (counted in
// stream_events_dropped_total) rather than stalling the run.
const streamBuffer = 64

// writeSSE emits one event in text/event-stream framing. The JSON data
// payload carries the id and type too, so clients can parse data lines
// alone; the id: line is what makes Last-Event-ID resume work through
// standard EventSource clients.
func writeSSE(w io.Writer, ev progress.Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.ID, ev.Type, data)
	return err
}

// handleJobEvents serves GET /api/v1/jobs/{id}/events: subscribe to
// the job's stream, replay the latest state (respecting Last-Event-ID),
// then forward live events until the job ends, the daemon drains, or
// the client disconnects.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.JobByID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	// A malformed resume ID must fail loud, not silently become 0: a
	// full replay on an ended stream re-delivers the terminal event the
	// client already consumed (a duplicate done/failed/canceled), and
	// an EventSource client acting on it twice double-fires whatever
	// the first one triggered.
	var lastID uint64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "malformed Last-Event-ID %q", v)
			return
		}
		lastID = n
	}
	replay, sub := job.Events(lastID, streamBuffer)
	defer sub.Close()
	s.m.streamSubscribers.Add(1)
	defer s.m.streamSubscribers.Add(-1)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	write := func(ev progress.Event) bool {
		if err := writeSSE(w, ev); err != nil {
			return false
		}
		fl.Flush()
		s.m.streamEvents.Inc()
		if ev.Snapshot != nil {
			s.m.snapLat.Observe(time.Since(ev.At))
		}
		return true
	}
	for _, ev := range replay {
		if !write(ev) {
			return
		}
	}
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case ev, open := <-sub.C():
			if !open {
				// Terminal event already delivered (or replayed): the
				// hub closed the stream.
				return
			}
			if !write(ev) {
				return
			}
		}
	}
}

// handleJobLive serves GET /api/v1/jobs/{id}/live: the latest progress
// snapshot rendered through the view layer (?view=code|data|json).
func (s *Server) handleJobLive(w http.ResponseWriter, r *http.Request) {
	job, ok := s.JobByID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	snap := job.hub.LatestSnapshot()
	if snap == nil {
		writeError(w, http.StatusNotFound,
			"job %s has no live snapshot (streaming disabled, not yet running, or served from cache)", job.id)
		return
	}
	switch v := r.URL.Query().Get("view"); v {
	case "", "code":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, view.LiveCode(snap))
	case "data":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, view.LiveData(snap))
	case "json":
		writeJSON(w, http.StatusOK, snap)
	default:
		writeError(w, http.StatusBadRequest, "unknown view %q (code|data|json)", v)
	}
}
