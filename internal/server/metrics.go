package server

import (
	"sync/atomic"
	"time"

	"repro/internal/store"
)

// histBuckets is the bucket count of the latency histograms: powers of
// two from 1µs up, the last bucket catching everything past ~8.4s.
const histBuckets = 24

// histogram is a lock-free power-of-two latency histogram, expvar
// style: monotonic counters a scraper can diff between polls.
type histogram struct {
	count   atomic.Uint64
	sumUs   atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// observe records one duration.
func (h *histogram) observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	h.count.Add(1)
	h.sumUs.Add(uint64(us))
	b := 0
	for v := us; v > 0 && b < histBuckets-1; v >>= 1 {
		b++
	}
	h.buckets[b].Add(1)
}

// HistogramSnapshot is the wire form of a histogram. Buckets[i] counts
// observations in [2^(i-1), 2^i) microseconds (Buckets[0]: < 1µs); the
// last bucket is open-ended.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	SumUs   uint64   `json:"sum_us"`
	MeanUs  float64  `json:"mean_us"`
	Buckets []uint64 `json:"buckets_pow2_us"`
}

func (h *histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:   h.count.Load(),
		SumUs:   h.sumUs.Load(),
		Buckets: make([]uint64, histBuckets),
	}
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	if s.Count > 0 {
		s.MeanUs = float64(s.SumUs) / float64(s.Count)
	}
	return s
}

// metrics is the daemon's counter block. Gauges (Queued, Running) move
// both ways; everything else is monotonic.
type metrics struct {
	start time.Time

	submitted atomic.Int64
	queued    atomic.Int64 // gauge
	running   atomic.Int64 // gauge
	done      atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64
	rejected  atomic.Int64 // 429s from the bounded queue

	queueWait histogram // submit → dequeue
	run       histogram // dequeue → result (compute or cache)
	total     histogram // submit → terminal state
}

// JobCounts is the job block of MetricsSnapshot.
type JobCounts struct {
	Submitted int64 `json:"submitted"`
	Queued    int64 `json:"queued"`
	Running   int64 `json:"running"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	Rejected  int64 `json:"rejected"`
}

// QueueInfo is the queue block of MetricsSnapshot.
type QueueInfo struct {
	Depth    int `json:"depth"`
	Capacity int `json:"capacity"`
	Workers  int `json:"workers"`
}

// MetricsSnapshot is what GET /metrics serves.
type MetricsSnapshot struct {
	UptimeSeconds float64     `json:"uptime_seconds"`
	Jobs          JobCounts   `json:"jobs"`
	Queue         QueueInfo   `json:"queue"`
	Store         store.Stats `json:"store"`
	// StoreHits is Store's total cache hits (mem + disk + dedup),
	// surfaced so the acceptance check "cache-hit counter > 0" is one
	// field.
	StoreHits uint64                       `json:"store_hits"`
	LatencyUs map[string]HistogramSnapshot `json:"latency_us"`
}

func (m *metrics) snapshot(st store.Stats, depth, capacity, workers int) MetricsSnapshot {
	stats := m.jobCounts()
	return MetricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Jobs:          stats,
		Queue:         QueueInfo{Depth: depth, Capacity: capacity, Workers: workers},
		Store:         st,
		StoreHits:     st.Hits(),
		LatencyUs: map[string]HistogramSnapshot{
			"queue_wait": m.queueWait.snapshot(),
			"run":        m.run.snapshot(),
			"total":      m.total.snapshot(),
		},
	}
}

func (m *metrics) jobCounts() JobCounts {
	return JobCounts{
		Submitted: m.submitted.Load(),
		Queued:    m.queued.Load(),
		Running:   m.running.Load(),
		Done:      m.done.Load(),
		Failed:    m.failed.Load(),
		Canceled:  m.canceled.Load(),
		Rejected:  m.rejected.Load(),
	}
}
