package server

import (
	"time"

	"repro/internal/store"
	"repro/internal/telemetry"
)

// HistogramSnapshot is the wire form of a latency histogram — the
// telemetry layer's, re-exported so the /metrics JSON contract keeps
// its type name. Buckets[i] counts observations in [2^(i-1), 2^i)
// microseconds (Buckets[0]: < 1µs); the last bucket is open-ended.
type HistogramSnapshot = telemetry.HistogramSnapshot

// metrics is the daemon's counter block, registered on the server's own
// telemetry.Registry so /metrics can expose the raw instruments next to
// the legacy snapshot shape. Gauges (queued, running) move both ways;
// everything else is monotonic.
type metrics struct {
	start time.Time
	reg   *telemetry.Registry

	submitted *telemetry.Counter
	done      *telemetry.Counter
	failed    *telemetry.Counter
	canceled  *telemetry.Counter
	rejected  *telemetry.Counter // 429s: full queue and shed jobs
	queued    *telemetry.Gauge
	running   *telemetry.Gauge

	// Durability + recovery instruments (PR 6).
	recovered        *telemetry.Counter // jobs re-enqueued from the journal
	retried          *telemetry.Counter // transient-failure retry attempts
	shed             *telemetry.Counter // deadline-infeasible rejections
	breakerTrips     *telemetry.Counter // breaker open transitions
	breakerFastFails *telemetry.Counter // submissions refused while open
	cellsReplayed    *telemetry.Counter // sweep cells served from checkpoint
	cellsRecomputed  *telemetry.Counter // sweep cells computed and saved
	cellsResumed     *telemetry.Counter // cells resumed from a mid-cell checkpoint
	ckptsWritten     *telemetry.Counter // mid-cell checkpoint blobs persisted

	// Optimizer instruments (PR 8): advise endpoint traffic, remedies
	// actually re-run, and per-candidate rerun latency.
	adviseRequests  *telemetry.Counter
	adviseDone      *telemetry.Counter
	remediesApplied *telemetry.Counter

	// Live-streaming instruments (PR 9): SSE subscribers currently
	// attached, events written to streams, events lost to slow
	// consumers (drop-oldest), and snapshots published by running
	// profiles.
	streamSubscribers *telemetry.Gauge
	streamEvents      *telemetry.Counter
	streamDropped     *telemetry.Counter
	streamSnapshots   *telemetry.Counter

	queueWait *telemetry.Histogram // submit → dequeue
	run       *telemetry.Histogram // dequeue → result (compute or cache)
	total     *telemetry.Histogram // submit → terminal state
	rerun     *telemetry.Histogram // one advise candidate re-run
	snapLat   *telemetry.Histogram // snapshot publish → SSE write
}

// newMetrics registers the job-lifecycle instruments on reg. The
// registry is per-Server, so concurrent servers (tests) never share
// counters; process-wide families (sched_*, pipeline_*) live on
// telemetry.Default and are merged in at snapshot time.
func newMetrics(reg *telemetry.Registry) metrics {
	return metrics{
		start:     time.Now(),
		reg:       reg,
		submitted: reg.Counter("jobs_submitted_total"),
		done:      reg.Counter("jobs_done_total"),
		failed:    reg.Counter("jobs_failed_total"),
		canceled:  reg.Counter("jobs_canceled_total"),
		rejected:  reg.Counter("jobs_rejected_total"),
		queued:    reg.Gauge("jobs_queued"),
		running:   reg.Gauge("jobs_running"),
		queueWait: reg.Histogram("job_queue_wait"),
		run:       reg.Histogram("job_run"),
		total:     reg.Histogram("job_total"),

		recovered:        reg.Counter("jobs_recovered_total"),
		retried:          reg.Counter("jobs_retried_total"),
		shed:             reg.Counter("jobs_shed_total"),
		breakerTrips:     reg.Counter("jobs_breaker_trips_total"),
		breakerFastFails: reg.Counter("jobs_breaker_fastfails_total"),
		cellsReplayed:    reg.Counter("jobs_cells_replayed_total"),
		cellsRecomputed:  reg.Counter("jobs_cells_recomputed_total"),
		cellsResumed:     reg.Counter("jobs_cells_resumed_total"),
		ckptsWritten:     reg.Counter("jobs_checkpoints_written_total"),

		adviseRequests:  reg.Counter("jobs_advise_requests_total"),
		adviseDone:      reg.Counter("jobs_advise_done_total"),
		remediesApplied: reg.Counter("jobs_remedies_applied_total"),
		rerun:           reg.Histogram("job_advise_rerun"),

		streamSubscribers: reg.Gauge("stream_subscribers"),
		streamEvents:      reg.Counter("stream_events_total"),
		streamDropped:     reg.Counter("stream_events_dropped_total"),
		streamSnapshots:   reg.Counter("stream_snapshots_total"),
		snapLat:           reg.Histogram("stream_snapshot_latency"),
	}
}

// JobCounts is the job block of MetricsSnapshot.
type JobCounts struct {
	Submitted int64 `json:"submitted"`
	Queued    int64 `json:"queued"`
	Running   int64 `json:"running"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Canceled  int64 `json:"canceled"`
	Rejected  int64 `json:"rejected"`
}

// QueueInfo is the queue block of MetricsSnapshot.
type QueueInfo struct {
	Depth    int `json:"depth"`
	Capacity int `json:"capacity"`
	Workers  int `json:"workers"`
}

// RecoveryInfo is the durability block of MetricsSnapshot: journal
// replay, retry, breaker, shedding, and sweep-checkpoint counters.
type RecoveryInfo struct {
	Recovered        uint64 `json:"recovered"`
	Retried          uint64 `json:"retried"`
	Shed             uint64 `json:"shed"`
	BreakerTrips     uint64 `json:"breaker_trips"`
	BreakerFastFails uint64 `json:"breaker_fast_fails"`
	CellsReplayed    uint64 `json:"cells_replayed"`
	CellsRecomputed  uint64 `json:"cells_recomputed"`
	// CellsResumed counts cells that restarted from a mid-cell
	// checkpoint instead of recomputing from epoch zero.
	CellsResumed uint64 `json:"cells_resumed"`
	// CheckpointsWritten counts mid-cell checkpoint blobs persisted.
	CheckpointsWritten uint64 `json:"checkpoints_written"`
}

// AdvisorInfo is the optimizer block of MetricsSnapshot.
type AdvisorInfo struct {
	Requests        uint64 `json:"requests"`
	Done            uint64 `json:"done"`
	RemediesApplied uint64 `json:"remedies_applied"`
}

// StreamingInfo is the live-streaming block of MetricsSnapshot.
type StreamingInfo struct {
	Subscribers int64  `json:"subscribers"`
	Events      uint64 `json:"events"`
	Dropped     uint64 `json:"dropped"`
	Snapshots   uint64 `json:"snapshots"`
}

// MetricsSnapshot is what GET /metrics serves. Every pre-telemetry key
// is unchanged (scrapers keep working); Instruments is the new unified
// registry view carrying the jobs_*/job_* instruments, the mirrored
// store_* counters, and the process-wide sched_*/pipeline_*/profio_*/
// faults_* families.
type MetricsSnapshot struct {
	UptimeSeconds float64     `json:"uptime_seconds"`
	Jobs          JobCounts   `json:"jobs"`
	Queue         QueueInfo   `json:"queue"`
	Store         store.Stats `json:"store"`
	// StoreHits is Store's total cache hits (mem + disk + dedup),
	// surfaced so the acceptance check "cache-hit counter > 0" is one
	// field.
	StoreHits uint64                       `json:"store_hits"`
	LatencyUs map[string]HistogramSnapshot `json:"latency_us"`
	Recovery  RecoveryInfo                 `json:"recovery"`
	Advisor   AdvisorInfo                  `json:"advisor"`
	Streaming StreamingInfo                `json:"streaming"`

	Instruments telemetry.RegistrySnapshot `json:"instruments"`
}

// mirrorStore copies the store's per-instance Stats into the registry's
// store_* counter family, so the exposition carries hit/miss/dedup
// counters under stable instrument names. Set (not Add): the store owns
// the counting, the registry mirrors it.
func (m *metrics) mirrorStore(st store.Stats) {
	m.reg.Counter("store_mem_hits_total").Set(st.MemHits)
	m.reg.Counter("store_disk_hits_total").Set(st.DiskHits)
	m.reg.Counter("store_misses_total").Set(st.Misses)
	m.reg.Counter("store_dedup_waits_total").Set(st.DedupWaits)
	m.reg.Counter("store_saves_total").Set(st.Saves)
	m.reg.Counter("store_evictions_total").Set(st.Evictions)
	m.reg.Counter("store_corrupt_dropped_total").Set(st.CorruptDropped)
}

func (m *metrics) snapshot(st store.Stats, depth, capacity, workers int) MetricsSnapshot {
	m.mirrorStore(st)
	return MetricsSnapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Jobs:          m.jobCounts(),
		Queue:         QueueInfo{Depth: depth, Capacity: capacity, Workers: workers},
		Store:         st,
		StoreHits:     st.Hits(),
		LatencyUs: map[string]HistogramSnapshot{
			"queue_wait":      m.queueWait.Snapshot(),
			"run":             m.run.Snapshot(),
			"total":           m.total.Snapshot(),
			"advise_rerun":    m.rerun.Snapshot(),
			"stream_snapshot": m.snapLat.Snapshot(),
		},
		Advisor: AdvisorInfo{
			Requests:        m.adviseRequests.Value(),
			Done:            m.adviseDone.Value(),
			RemediesApplied: m.remediesApplied.Value(),
		},
		Streaming: StreamingInfo{
			Subscribers: m.streamSubscribers.Value(),
			Events:      m.streamEvents.Value(),
			Dropped:     m.streamDropped.Value(),
			Snapshots:   m.streamSnapshots.Value(),
		},
		Recovery: RecoveryInfo{
			Recovered:          m.recovered.Value(),
			Retried:            m.retried.Value(),
			Shed:               m.shed.Value(),
			BreakerTrips:       m.breakerTrips.Value(),
			BreakerFastFails:   m.breakerFastFails.Value(),
			CellsReplayed:      m.cellsReplayed.Value(),
			CellsRecomputed:    m.cellsRecomputed.Value(),
			CellsResumed:       m.cellsResumed.Value(),
			CheckpointsWritten: m.ckptsWritten.Value(),
		},
		// Default first: a per-server instrument shadowing a global one
		// would win, and that is the right precedence for this server's
		// own exposition.
		Instruments: telemetry.Default.Snapshot().Merge(m.reg.Snapshot()),
	}
}

func (m *metrics) jobCounts() JobCounts {
	return JobCounts{
		Submitted: int64(m.submitted.Value()),
		Queued:    m.queued.Value(),
		Running:   m.running.Value(),
		Done:      int64(m.done.Value()),
		Failed:    int64(m.failed.Value()),
		Canceled:  int64(m.canceled.Value()),
		Rejected:  int64(m.rejected.Value()),
	}
}
