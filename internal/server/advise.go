package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/advisor"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/telemetry"
)

// The advise endpoint: POST /api/v1/jobs/{id}/advise turns a finished
// profiling job into an asynchronous optimizer run. The advise job is a
// regular Job — same state machine, journal records, retry policy, and
// worker pool — whose spec is the target's with Advise set, so its key
// is distinct from the profile's and the whole run is deduped and
// durable like any other submission. Execution reuses the
// content-addressed store twice over: the baseline profile is a
// GetOrCompute on the target's own key (a hit when the target just
// ran), and every candidate remedy's re-run is a GetOrCompute on the
// transformed spec's key — the store is the checkpoint, so a crashed or
// repeated advise run replays finished candidates instead of
// recomputing them.

// handleAdvise validates the target and submits the advise job:
// 404 for an unknown id, 409 for a job that has not reached done, 400
// for sweeps and advise jobs (no single baseline to optimize), then the
// regular submit path with its 429/503 mapping.
func (s *Server) handleAdvise(w http.ResponseWriter, r *http.Request) {
	s.m.adviseRequests.Inc()
	target, ok := s.JobByID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", r.PathValue("id"))
		return
	}
	st := target.Status()
	if st.State != StateDone {
		writeError(w, http.StatusConflict, "job %s is %s, not done; advise needs a finished profile", st.ID, st.State)
		return
	}
	if st.Spec.IsSweep() {
		writeError(w, http.StatusBadRequest, "job %s is a sweep; advise one of its cells instead", st.ID)
		return
	}
	if st.Spec.Advise {
		writeError(w, http.StatusBadRequest, "job %s is already an advise job", st.ID)
		return
	}
	spec := st.Spec
	spec.Advise = true
	job, err := s.Submit(spec)
	s.writeSubmitResult(w, job, err)
}

// executeAdvise resolves one advise attempt: baseline profile (store
// hit or fresh run), diagnosis, and the candidate fan-out, all under
// the job's context. The job's cells mirror candidate progress the way
// a sweep's mirror its cells.
func (s *Server) executeAdvise(ctx context.Context, job *Job) (State, string, bool, error) {
	blob, rep, allCached, err := s.computeAdvice(ctx, job, true)
	switch {
	case err == nil:
		job.setAdvice(blob)
		s.m.adviseDone.Inc()
		if rep.Best != nil {
			s.log.Info("advice ready", "id", job.id, "workload", job.spec.Workload,
				"remedies", len(rep.Remedies), "best", string(rep.Best.Kind))
		}
		return StateDone, "", allCached, nil
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		st, msg, hit := cancelOutcome(err)
		return st, msg, hit, err
	default:
		return StateFailed, err.Error(), false, err
	}
}

// computeAdvice is the whole advise pipeline. It is deterministic end
// to end — the advisor is pure, candidates re-run at width 1 in input
// order, and the report is canonical struct JSON — so recomputing after
// a restart yields byte-identical advice. track controls whether the
// job's cell table mirrors progress (the live run does; a view-path
// recompute must not mutate a terminal job's status).
func (s *Server) computeAdvice(ctx context.Context, job *Job, track bool) ([]byte, *advisor.Report, bool, error) {
	base := job.spec
	base.Advise = false
	baseKey := base.Key()

	baseline, baseCached, err := s.profileFor(ctx, base, baseKey)
	if err != nil {
		return nil, nil, false, err
	}

	adv := advisor.Advise(baseline, advisor.Options{})
	cands := advisor.Candidates(adv)

	specs := make([]Spec, len(cands))
	keys := make([]store.Key, len(cands))
	statuses := make([]CellStatus, len(cands))
	for i, c := range cands {
		specs[i] = applyTransform(base, c.Transform)
		keys[i] = specs[i].Key()
		statuses[i] = CellStatus{
			Index: i, Workload: base.Workload, Strategy: c.Label,
			Key: keys[i], State: StateQueued,
		}
	}
	if track && len(statuses) > 0 {
		job.setCells(statuses)
	}

	// Candidates run at width 1 (job-level parallelism belongs to the
	// pool, like sweeps), so plain counters are race-free.
	replayed := 0
	run := func(cellCtx context.Context, i int, _ advisor.Transform) (*core.Profile, error) {
		if track {
			job.setCell(i, StateRunning, "")
		}
		_, done := telemetry.Timed(cellCtx, "server.advise_rerun",
			telemetry.String("id", job.id), telemetry.String("label", cands[i].Label))
		start := time.Now()
		p, cached, err := s.profileFor(cellCtx, specs[i], keys[i])
		s.m.rerun.Observe(time.Since(start))
		done()
		if err != nil {
			if track {
				job.setCell(i, StateFailed, err.Error())
			}
			return nil, err
		}
		if cached {
			replayed++
			s.m.cellsReplayed.Inc()
		} else {
			s.m.cellsRecomputed.Inc()
		}
		s.m.remediesApplied.Inc()
		if track {
			job.setCell(i, StateDone, "")
		}
		return p, nil
	}

	rep, err := advisor.Measure(ctx, adv, cands, 1, run)
	if err != nil {
		return nil, nil, false, err
	}
	// Stamp each remedy with its candidate profile's content address,
	// so the report links straight into /api/v1/profiles/{key}.
	for _, c := range cands {
		switch {
		case c.Remedy >= 0 && c.Remedy < len(rep.Remedies):
			rep.Remedies[c.Remedy].Key = string(keys[c.Index])
		case c.Remedy == -1 && rep.Composite != nil:
			rep.Composite.Key = string(keys[c.Index])
		}
	}
	if rep.Best != nil {
		// Best is a copy; re-resolve its key from the stamped remedies.
		for i := range rep.Remedies {
			if rep.Remedies[i].Kind == rep.Best.Kind {
				rep.Best.Key = rep.Remedies[i].Key
			}
		}
		if rep.Composite != nil && rep.Best.Kind == rep.Composite.Kind {
			rep.Best.Key = rep.Composite.Key
		}
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, nil, false, fmt.Errorf("marshal advice: %w", err)
	}
	allCached := baseCached && replayed == len(cands)
	return blob, rep, allCached, nil
}

// profileFor resolves a single-run spec to its profile through the
// store: single-flight dedup, LRU, disk, and — on a miss — one
// scheduler-isolated core.Analyze, exactly the single-spec job path.
func (s *Server) profileFor(ctx context.Context, spec Spec, key store.Key) (*core.Profile, bool, error) {
	return s.st.GetOrCompute(ctx, key, func() (*core.Profile, error) {
		res, err := sched.MapWithCtx(ctx, 1, 1, func(cellCtx context.Context, _ int) (*core.Profile, error) {
			cfg, app, err := spec.Build()
			if err != nil {
				return nil, err
			}
			return core.AnalyzeCtx(cellCtx, cfg, app)
		})
		if err != nil {
			if sweep, ok := sched.AsSweep(err); ok && len(sweep.Cells) > 0 {
				return nil, sweep.Cells[0].Err
			}
			return nil, err
		}
		return res[0], nil
	})
}

// applyTransform clones a baseline spec with a remedy's knobs turned.
// The result goes back through Normalize (inside Key and Build), so
// per-workload quirks still apply — umt2013's scatter coercion can fold
// a compact-binding candidate back into the baseline, which is the
// honest server-side answer for a knob that spec cannot express.
func applyTransform(base Spec, t advisor.Transform) Spec {
	spec := base
	if t.Strategy != "" {
		spec.Strategy = string(t.Strategy)
	}
	if t.Binding != "" {
		spec.Binding = t.Binding
	}
	return spec
}

// adviceReport returns the canonical advice JSON for a done advise job,
// recomputing it (store hits all the way) when the in-memory cache is
// gone — the crash-recovery path for advice views.
func (s *Server) adviceReport(ctx context.Context, job *Job) ([]byte, error) {
	if b := job.adviceNow(); b != nil {
		return b, nil
	}
	blob, _, _, err := s.computeAdvice(ctx, job, false)
	if err != nil {
		return nil, err
	}
	job.setAdvice(blob)
	return blob, nil
}
