package proc

import (
	"testing"

	"repro/internal/isa"
	"repro/internal/topology"
	"repro/internal/units"
	"repro/internal/vm"
)

func TestMarksAndTimeSince(t *testing.T) {
	e, _, _ := testEngine(1)
	e.BeginRegion("a", e.Threads())
	e.Ctx(0).Compute(100)
	e.EndRegion()
	e.Mark("roi")
	if c, ok := e.MarkTime("roi"); !ok || c != 100 {
		t.Fatalf("MarkTime = %v, %v", c, ok)
	}
	e.BeginRegion("b", e.Threads())
	e.Ctx(0).Compute(40)
	e.EndRegion()
	if got := e.TimeSince("roi"); got != 40 {
		t.Fatalf("TimeSince = %v, want 40", got)
	}
	// Unset marks fall back to total time.
	if got := e.TimeSince("nope"); got != 140 {
		t.Fatalf("TimeSince(unset) = %v, want total 140", got)
	}
	// Re-marking overwrites.
	e.Mark("roi")
	if got := e.TimeSince("roi"); got != 0 {
		t.Fatalf("TimeSince after re-mark = %v, want 0", got)
	}
}

func TestNowTracksThreadProgress(t *testing.T) {
	e, _, _ := testEngine(2)
	e.BeginRegion("a", e.Threads())
	e.Ctx(0).Compute(100)
	if got := e.Now(e.Threads()[0]); got != 100 {
		t.Fatalf("Now(t0) = %v, want 100", got)
	}
	if got := e.Now(e.Threads()[1]); got != 0 {
		t.Fatalf("Now(t1) = %v, want 0 (no progress)", got)
	}
	if got := e.Now(nil); got != 0 {
		t.Fatalf("Now(nil) = %v, want total time 0", got)
	}
	e.EndRegion()
	if got := e.Now(e.Threads()[1]); got != 100 {
		t.Fatalf("Now(t1) after region = %v, want 100", got)
	}
}

func TestScatterBinding(t *testing.T) {
	m := topology.New(topology.Config{
		Name: "s", NumDomains: 4, CPUsPerDomain: 4,
		MemoryPerDomain: units.GiB,
	})
	prog := isa.NewProgram("scatter-test")
	e := NewEngine(Config{Machine: m, Program: prog, Threads: 8, Binding: Scatter})
	// Threads 0..7 land on domains 0,1,2,3,0,1,2,3.
	for i, th := range e.Threads() {
		want := topology.DomainID(i % 4)
		if th.Domain != want {
			t.Errorf("thread %d in domain %d, want %d", i, th.Domain, want)
		}
	}
	// No two threads share a CPU.
	seen := map[topology.CPUID]bool{}
	for _, th := range e.Threads() {
		if seen[th.CPU] {
			t.Fatalf("CPU %d assigned twice", th.CPU)
		}
		seen[th.CPU] = true
	}
}

func TestScatterBindingWrapsWhenOversubscribed(t *testing.T) {
	m := topology.New(topology.Config{
		Name: "s", NumDomains: 2, CPUsPerDomain: 2,
		MemoryPerDomain: units.GiB,
	})
	cpus := bindCPUs(m, 4, Scatter)
	if len(cpus) != 4 {
		t.Fatalf("bound %d CPUs", len(cpus))
	}
}

func TestCompactBindingIsIdentity(t *testing.T) {
	m := topology.New(topology.Config{
		Name: "c", NumDomains: 2, CPUsPerDomain: 4,
		MemoryPerDomain: units.GiB,
	})
	cpus := bindCPUs(m, 6, Compact)
	for i, c := range cpus {
		if int(c) != i {
			t.Fatalf("compact binding cpus[%d] = %d", i, c)
		}
	}
}

func TestStaticRegionsLoadedAtConstruction(t *testing.T) {
	prog := isa.NewProgram("statics-test")
	prog.AddStatic("tbl", 3*uint64(units.PageSize))
	prog.AddStatic("small", 16)
	e := NewEngine(Config{Machine: testMachine(), Program: prog, Threads: 1})
	regs := e.StaticRegions()
	if len(regs) != 2 {
		t.Fatalf("static regions = %d, want 2", len(regs))
	}
	if regs[0].Size != 3*uint64(units.PageSize) || regs[1].Size != 16 {
		t.Fatalf("sizes = %d, %d", regs[0].Size, regs[1].Size)
	}
	// They are real allocations: touches resolve.
	if _, _, err := e.AddressSpace().Touch(regs[0].Base, true, 0); err != nil {
		t.Fatal(err)
	}
	if e.StaticRegion(1) != regs[1] {
		t.Fatal("StaticRegion accessor mismatch")
	}
}

func TestStackAllocFreedOnReturnEvenAfterNesting(t *testing.T) {
	e, prog, site := testEngine(1)
	fn := prog.AddFunc("g", "g.c", 1)
	c := e.Ctx(0)
	e.BeginRegion("r", e.Threads())
	var outer, inner vm.Region
	c.Call(fn, 0, func() {
		outer = c.AllocStack(site, "outer", 4096)
		c.Call(fn, 1, func() {
			inner = c.AllocStack(site, "inner", 4096)
			c.Store(site, inner.Base)
		})
		// inner freed; outer still live.
		if !e.AddressSpace().Freed(inner) {
			t.Fatal("inner not freed at frame exit")
		}
		if e.AddressSpace().Freed(outer) {
			t.Fatal("outer freed too early")
		}
		c.Store(site, outer.Base)
	})
	if !e.AddressSpace().Freed(outer) {
		t.Fatal("outer not freed at frame exit")
	}
	e.EndRegion()
}
