package proc

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/isa"
	"repro/internal/topology"
	"repro/internal/units"
	"repro/internal/vm"
)

func testMachine() *topology.Machine {
	return topology.New(topology.Config{
		Name: "t", NumDomains: 4, CPUsPerDomain: 2,
		MemoryPerDomain: units.GiB, RemoteDistance: 16,
	})
}

func testEngine(threads int) (*Engine, *isa.Program, isa.SiteID) {
	prog := isa.NewProgram("test")
	fn := prog.AddFunc("main", "main.c", 1)
	site := prog.AddSite(fn, 10, isa.KindLoad)
	e := NewEngine(Config{Machine: testMachine(), Program: prog, Threads: threads})
	return e, prog, site
}

// recorder captures every hook callback for assertions.
type recorder struct {
	BaseHook
	accesses []AccessEvent
	computes uint64
	allocs   []string
	frees    int
	regions  []string
	ends     []string
}

func (r *recorder) OnAccess(ev *AccessEvent)      { r.accesses = append(r.accesses, *ev) }
func (r *recorder) OnCompute(_ *Thread, n uint64) { r.computes += n }
func (r *recorder) OnAlloc(_ *Thread, _ isa.SiteID, _ vm.Region, name string) {
	r.allocs = append(r.allocs, name)
}
func (r *recorder) OnFree(*Thread, vm.Region)              { r.frees++ }
func (r *recorder) OnRegionBegin(name string, _ []*Thread) { r.regions = append(r.regions, name) }
func (r *recorder) OnRegionEnd(name string)                { r.ends = append(r.ends, name) }

func TestThreadBinding(t *testing.T) {
	e, _, _ := testEngine(0)
	if e.NumThreads() != 8 {
		t.Fatalf("NumThreads = %d, want 8 (all CPUs)", e.NumThreads())
	}
	for i, th := range e.Threads() {
		if th.ID != i || th.CPU != topology.CPUID(i) {
			t.Errorf("thread %d bound to CPU %d", th.ID, th.CPU)
		}
		if th.Domain != e.Machine().DomainOfCPU(th.CPU) {
			t.Errorf("thread %d domain mismatch", i)
		}
	}
	e2, _, _ := testEngine(3)
	if e2.NumThreads() != 3 {
		t.Fatalf("NumThreads = %d, want 3", e2.NumThreads())
	}
}

func TestAccessAccounting(t *testing.T) {
	e, _, site := testEngine(2)
	rec := &recorder{}
	e.AddHook(rec)

	c := e.Ctx(0)
	e.BeginRegion("main", e.Threads())
	r := c.Alloc(site, "arr", 4096, nil)
	c.Load(site, r.Base)
	c.Store(site, r.Base+8)
	c.Compute(10)
	e.EndRegion()

	th := e.Threads()[0]
	if th.MemAccesses() != 2 {
		t.Errorf("MemAccesses = %d, want 2", th.MemAccesses())
	}
	// 1 alloc + 2 accesses + 10 compute = 13 instructions.
	if th.Instructions() != 13 {
		t.Errorf("Instructions = %d, want 13", th.Instructions())
	}
	if e.TotalInstructions() != 13 || e.TotalMemAccesses() != 2 {
		t.Errorf("engine totals = %d instr, %d mem", e.TotalInstructions(), e.TotalMemAccesses())
	}
	if len(rec.accesses) != 2 || rec.computes != 10 || len(rec.allocs) != 1 {
		t.Errorf("hook saw %d accesses, %d computes, %d allocs",
			len(rec.accesses), rec.computes, len(rec.allocs))
	}
	if rec.allocs[0] != "arr" {
		t.Errorf("alloc name = %q", rec.allocs[0])
	}
}

func TestFirstTouchVisibleInEvent(t *testing.T) {
	e, _, site := testEngine(2)
	rec := &recorder{}
	e.AddHook(rec)
	c := e.Ctx(0)
	e.BeginRegion("main", e.Threads())
	r := c.Alloc(site, "a", 4096, nil)
	c.Store(site, r.Base)
	c.Load(site, r.Base)
	e.EndRegion()

	if !rec.accesses[0].FirstTouch {
		t.Error("first access should be a first touch")
	}
	if rec.accesses[1].FirstTouch {
		t.Error("second access should not be a first touch")
	}
	if rec.accesses[0].Home != 0 {
		t.Errorf("home = %d, want 0 (thread 0 runs in domain 0)", rec.accesses[0].Home)
	}
	if !rec.accesses[0].RegionValid || rec.accesses[0].Region.ID != r.ID {
		t.Error("event should carry the containing allocation")
	}
}

func TestRemoteAccessLatencyExceedsLocal(t *testing.T) {
	e, _, site := testEngine(8)
	rec := &recorder{}
	e.AddHook(rec)
	c0 := e.Ctx(0) // domain 0
	c2 := e.Ctx(2) // CPU 2 -> domain 1

	e.BeginRegion("main", e.Threads())
	rLocal := c0.Alloc(site, "local", 4096, vm.OnNode{Domain: 0})
	rRemote := c0.Alloc(site, "remote", 4096, vm.OnNode{Domain: 1})
	c0.Load(site, rLocal.Base)  // local DRAM
	c0.Load(site, rRemote.Base) // remote DRAM (homed domain 1)
	_ = c2
	e.EndRegion()

	local, remote := rec.accesses[0], rec.accesses[1]
	if local.Source != cache.SrcLocalDRAM {
		t.Fatalf("local source = %v", local.Source)
	}
	if remote.Source != cache.SrcRemoteDRAM {
		t.Fatalf("remote source = %v", remote.Source)
	}
	if remote.Latency <= local.Latency {
		t.Errorf("remote latency %v should exceed local %v", remote.Latency, local.Latency)
	}
	// Paper: remote at least 30% slower.
	if float64(remote.Latency) < 1.3*float64(local.Latency) {
		t.Errorf("remote/local = %.2f, want >= 1.3",
			float64(remote.Latency)/float64(local.Latency))
	}
	if e.TotalRemoteAccesses() != 1 {
		t.Errorf("TotalRemoteAccesses = %d, want 1", e.TotalRemoteAccesses())
	}
	if e.TotalRemoteLatency() == 0 {
		t.Error("TotalRemoteLatency should be nonzero")
	}
}

func TestRegionTimeIsMaxOverTeam(t *testing.T) {
	e, _, _ := testEngine(2)
	e.BeginRegion("r", e.Threads())
	e.Ctx(0).Compute(100)
	e.Ctx(1).Compute(250)
	e.EndRegion()
	if e.TotalTime() != 250 {
		t.Fatalf("TotalTime = %v, want 250 (max over team)", e.TotalTime())
	}
	e.BeginRegion("r2", e.Threads())
	e.Ctx(0).Compute(50)
	e.EndRegion()
	if e.TotalTime() != 300 {
		t.Fatalf("TotalTime = %v, want 300 (sum of regions)", e.TotalTime())
	}
}

func TestNestedRegionPanics(t *testing.T) {
	e, _, _ := testEngine(1)
	e.BeginRegion("outer", e.Threads())
	defer func() {
		if recover() == nil {
			t.Fatal("nested BeginRegion should panic")
		}
	}()
	e.BeginRegion("inner", e.Threads())
}

func TestEndRegionWithoutBeginPanics(t *testing.T) {
	e, _, _ := testEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("EndRegion without BeginRegion should panic")
		}
	}()
	e.EndRegion()
}

func TestCallPathUnwinding(t *testing.T) {
	e, prog, site := testEngine(1)
	main := prog.AddFunc("main2", "m.c", 1)
	inner := prog.AddFunc("inner", "m.c", 20)

	var depthInside int
	var path []Frame
	c := e.Ctx(0)
	e.BeginRegion("main", e.Threads())
	c.Call(main, 0, func() {
		c.Call(inner, 5, func() {
			depthInside = c.Thread().Depth()
			path = c.Thread().CallPath()
			c.Compute(1)
		})
	})
	e.EndRegion()

	if depthInside != 2 {
		t.Fatalf("depth inside = %d, want 2", depthInside)
	}
	if path[0].Fn != main || path[1].Fn != inner || path[1].CallLine != 5 {
		t.Fatalf("path = %+v", path)
	}
	if c.Thread().Depth() != 0 {
		t.Fatal("stack should be empty after calls return")
	}
	_ = site
}

func TestOverheadInflatesTime(t *testing.T) {
	e, _, _ := testEngine(1)
	e.BeginRegion("r", e.Threads())
	e.Ctx(0).Compute(100)
	e.Threads()[0].AddOverhead(40)
	e.EndRegion()
	if e.TotalTime() != 140 {
		t.Fatalf("TotalTime = %v, want 140 (compute + overhead)", e.TotalTime())
	}
	if e.Threads()[0].Overhead() != 40 {
		t.Fatalf("Overhead = %v", e.Threads()[0].Overhead())
	}
}

func TestContentionFeedbackAcrossRegions(t *testing.T) {
	// All 8 threads hammer memory homed in domain 0. The first region
	// runs with factor 1; the second region sees inflated latency.
	e, _, site := testEngine(8)
	c0 := e.Ctx(0)

	e.BeginRegion("init", []*Thread{e.Threads()[0]})
	r := c0.Alloc(site, "hot", 1<<24, vm.OnNode{Domain: 0})
	e.EndRegion()

	sweep := func(offset uint64) units.Cycles {
		before := e.TotalTime()
		e.BeginRegion("sweep", e.Threads())
		for tid := 0; tid < 8; tid++ {
			c := e.Ctx(tid)
			// Distinct cache lines every sweep so every access misses.
			for i := uint64(0); i < 200; i++ {
				c.Load(site, r.Base+offset+(uint64(tid)*200+i)*641)
			}
		}
		e.EndRegion()
		return e.TotalTime() - before
	}
	first := sweep(0)
	second := sweep(1 << 22)
	if second <= first {
		t.Errorf("contended second sweep (%v) should be slower than first (%v)", second, first)
	}
}

func TestExactLPI(t *testing.T) {
	e, _, site := testEngine(8)
	c0 := e.Ctx(0)
	e.BeginRegion("main", e.Threads())
	r := c0.Alloc(site, "a", 1<<16, vm.OnNode{Domain: 1})
	for i := uint64(0); i < 100; i++ {
		c0.Load(site, r.Base+i*641) // remote accesses from domain 0
	}
	e.EndRegion()
	lpi := e.ExactLPI()
	if lpi <= 0 {
		t.Fatalf("ExactLPI = %v, want > 0 for a remote-heavy program", lpi)
	}
	manual := float64(e.TotalRemoteLatency()) / float64(e.TotalInstructions())
	if lpi != manual {
		t.Fatalf("ExactLPI = %v, manual = %v", lpi, manual)
	}
}

func TestFreeNotifiesHooks(t *testing.T) {
	e, _, site := testEngine(1)
	rec := &recorder{}
	e.AddHook(rec)
	c := e.Ctx(0)
	e.BeginRegion("main", e.Threads())
	r := c.Alloc(site, "a", 64, nil)
	c.Free(r)
	e.EndRegion()
	if rec.frees != 1 {
		t.Fatalf("frees = %d, want 1", rec.frees)
	}
	if !e.AddressSpace().Freed(r) {
		t.Fatal("region should be freed")
	}
}

func TestRegionHooksFire(t *testing.T) {
	e, _, _ := testEngine(1)
	rec := &recorder{}
	e.AddHook(rec)
	e.BeginRegion("alpha", e.Threads())
	e.EndRegion()
	e.BeginRegion("beta", e.Threads())
	e.EndRegion()
	if len(rec.regions) != 2 || rec.regions[0] != "alpha" || rec.regions[1] != "beta" {
		t.Fatalf("regions = %v", rec.regions)
	}
	if len(rec.ends) != 2 || rec.ends[1] != "beta" {
		t.Fatalf("ends = %v", rec.ends)
	}
}

func TestDeterministicExecution(t *testing.T) {
	run := func() (units.Cycles, uint64, float64) {
		e, _, site := testEngine(8)
		c := e.Ctx(0)
		e.BeginRegion("main", e.Threads())
		r := c.Alloc(site, "a", 1<<18, nil)
		for tid := 0; tid < 8; tid++ {
			cc := e.Ctx(tid)
			for i := uint64(0); i < 500; i++ {
				cc.Load(site, r.Base+(uint64(tid)*500+i)*57)
			}
		}
		e.EndRegion()
		return e.TotalTime(), e.TotalRemoteAccesses(), e.ExactLPI()
	}
	t1, r1, l1 := run()
	t2, r2, l2 := run()
	if t1 != t2 || r1 != r2 || l1 != l2 {
		t.Fatalf("nondeterministic: (%v,%d,%v) vs (%v,%d,%v)", t1, r1, l1, t2, r2, l2)
	}
}
