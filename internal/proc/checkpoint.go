// Checkpoint support: the engine and its threads can export their cycle
// accounting and adopt it back later. The resume fast-forward re-executes
// the deterministic access stream with monitoring paused, which replays
// every retirement count and access latency exactly — but not the
// monitoring overhead folded into the cycle clocks, nor the region
// durations and marks derived from them. Restoring the absolute clock
// values at the checkpointed region boundary therefore puts the engine
// in the precise state the interrupted run had.
package proc

import "repro/internal/units"

// ThreadClock is one thread's complete cycle and retirement accounting.
type ThreadClock struct {
	Cycles       units.Cycles `json:"cycles"`
	RegionCycles units.Cycles `json:"region_cycles"`
	Overhead     units.Cycles `json:"overhead"`
	Instructions uint64       `json:"instructions"`
	MemAccesses  uint64       `json:"mem_accesses"`
}

// ExportClock reads the thread's clock state.
func (t *Thread) ExportClock() ThreadClock {
	return ThreadClock{
		Cycles:       t.cycles,
		RegionCycles: t.regionCycles,
		Overhead:     t.overhead,
		Instructions: t.instructions,
		MemAccesses:  t.memAccesses,
	}
}

// RestoreClock adopts a previously exported clock state. Call it at a
// region boundary (regionCycles is reset at the next BeginRegion, so
// the restored value only matters for Now-style reads before then).
func (t *Thread) RestoreClock(c ThreadClock) {
	t.cycles = c.Cycles
	t.regionCycles = c.RegionCycles
	t.overhead = c.Overhead
	t.instructions = c.Instructions
	t.memAccesses = c.MemAccesses
}

// EngineClock is the engine's program-wide time and retirement state.
type EngineClock struct {
	TotalTime         units.Cycles            `json:"total_time"`
	TotalInstructions uint64                  `json:"total_instructions"`
	TotalMemAccesses  uint64                  `json:"total_mem_accesses"`
	TotalRemote       uint64                  `json:"total_remote"`
	TotalRemoteCycles units.Cycles            `json:"total_remote_cycles"`
	Marks             map[string]units.Cycles `json:"marks,omitempty"`
}

// ExportClock reads the engine's clock state, copying the marks map.
func (e *Engine) ExportClock() EngineClock {
	var marks map[string]units.Cycles
	if len(e.marks) > 0 {
		marks = make(map[string]units.Cycles, len(e.marks))
		for k, v := range e.marks {
			marks[k] = v
		}
	}
	return EngineClock{
		TotalTime:         e.totalTime,
		TotalInstructions: e.totalInstructions,
		TotalMemAccesses:  e.totalMemAccesses,
		TotalRemote:       e.totalRemote,
		TotalRemoteCycles: e.totalRemoteCycles,
		Marks:             marks,
	}
}

// RestoreClock adopts a previously exported engine clock. Call it at a
// region boundary, outside any active region.
func (e *Engine) RestoreClock(c EngineClock) {
	e.totalTime = c.TotalTime
	e.totalInstructions = c.TotalInstructions
	e.totalMemAccesses = c.TotalMemAccesses
	e.totalRemote = c.TotalRemote
	e.totalRemoteCycles = c.TotalRemoteCycles
	e.marks = nil
	if len(c.Marks) > 0 {
		e.marks = make(map[string]units.Cycles, len(c.Marks))
		for k, v := range c.Marks {
			e.marks[k] = v
		}
	}
}
