// Package proc executes simulated multithreaded programs on a
// simulated NUMA machine. It is the substrate playing the role the OS,
// the hardware threads, and the out-of-order cores play for the real
// HPCToolkit-NUMA: it retires instructions, resolves memory accesses
// through virtual memory and the cache hierarchy, charges
// contention-adjusted latencies, maintains per-thread call stacks for
// call-path unwinding, and delivers every event to registered hooks —
// the attachment points for the PMU samplers and the profiler.
//
// # Execution and timing model
//
// Threads are bound one-to-one to CPUs (thread i on CPU i), as the
// paper's experiments bind threads to cores. Work is organised into
// regions: a serial region runs only the master thread; a parallel
// region (created by internal/omp) runs a team. Within a region each
// thread's instruction stream is simulated in full and its cycle count
// accumulated; the region's duration is the maximum cycle count over
// its team, and program time is the sum of region durations.
//
// Memory contention uses a feedback model: the per-domain controller
// factors and per-link congestion factors computed at the end of each
// region apply to the next region's accesses. Iterative HPC programs
// (every workload in the paper runs many timesteps) reach a steady
// state after the first region, and the model stays deterministic no
// matter how the simulation itself is scheduled.
//
// # Concurrency
//
// An Engine and everything it owns (address space, caches, memory
// system, per-thread contexts, hooks) belong to exactly one sweep cell
// and must be driven from that cell's goroutine; nothing here is safe
// for cross-cell sharing. The only state a cell may share with its
// siblings is read-only input: the topology.Machine and the workload's
// isa.Program (see those packages' concurrency notes). This split is
// what lets internal/sched run whole cells concurrently while keeping
// every cell's simulated clock — and therefore its output bytes —
// identical to a serial run.
package proc

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/interconnect"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/topology"
	"repro/internal/units"
	"repro/internal/vm"
)

// Frame is one entry of a thread's call stack: the callee function and
// the source line of the call site in the caller.
type Frame struct {
	Fn       isa.FuncID
	CallLine int
}

// Thread is one simulated thread, permanently bound to a CPU.
type Thread struct {
	ID     int
	CPU    topology.CPUID
	Domain topology.DomainID

	stack []Frame

	// Cycle accounting.
	cycles       units.Cycles // lifetime, including overhead
	regionCycles units.Cycles // within the current region
	overhead     units.Cycles // monitoring overhead charged by hooks

	// Retirement counters ("conventional PMU counters" in the paper's
	// terms; PEBS-LL's Equation 3 reads them).
	instructions uint64
	memAccesses  uint64

	// frameAllocs holds each open frame's stack variables, freed when
	// the frame returns.
	frameAllocs [][]vm.Region
}

// CallPath returns a copy of the thread's current call stack, outermost
// frame first. This is the "call stack unwind" of Section 5.1.
func (t *Thread) CallPath() []Frame {
	out := make([]Frame, len(t.stack))
	copy(out, t.stack)
	return out
}

// CallStack returns the live call stack, oldest frame first, without
// copying. The slice is owned by the thread and is only valid until
// its next Call or Return; callers that keep it must use CallPath.
// This is the allocation-free unwind the per-sample hot path uses.
func (t *Thread) CallStack() []Frame { return t.stack }

// Depth returns the current call-stack depth.
func (t *Thread) Depth() int { return len(t.stack) }

// Cycles returns the thread's lifetime cycle count.
func (t *Thread) Cycles() units.Cycles { return t.cycles }

// Instructions returns the thread's retired instruction count.
func (t *Thread) Instructions() uint64 { return t.instructions }

// MemAccesses returns the thread's retired load/store count.
func (t *Thread) MemAccesses() uint64 { return t.memAccesses }

// Overhead returns the monitoring overhead charged to this thread.
func (t *Thread) Overhead() units.Cycles { return t.overhead }

// RegionCycles returns the cycles the thread has accumulated in the
// current region — its local progress clock.
func (t *Thread) RegionCycles() units.Cycles { return t.regionCycles }

// AddOverhead charges monitoring cost to the thread. PMU samplers and
// the profiler call this so that, exactly as on real hardware, heavier
// instrumentation shows up as longer monitored runtime (Table 2).
func (t *Thread) AddOverhead(c units.Cycles) {
	t.overhead += c
	t.cycles += c
	t.regionCycles += c
}

// AccessEvent describes one retired memory access, after address
// translation, cache simulation, and latency assignment. It carries
// everything any of the six sampling mechanisms could capture.
type AccessEvent struct {
	Thread  *Thread
	Site    isa.SiteID
	EA      uint64
	IsStore bool
	// Source is the level that satisfied the access.
	Source cache.DataSource
	// Home is the NUMA domain owning the page (what move_pages
	// reports); NoDomain for untracked addresses.
	Home topology.DomainID
	// Latency is the access's full, contention-adjusted cost.
	Latency units.Cycles
	// FirstTouch reports whether this access was the first touch of
	// its page.
	FirstTouch bool
	// Region is the allocation containing EA, if any.
	Region vm.Region
	// RegionValid reports whether Region is meaningful.
	RegionValid bool
}

// Hook observes execution. All methods are called synchronously from
// the simulating goroutine of the owning thread; implementations must
// not retain the event pointer.
type Hook interface {
	// OnAccess fires after each retired memory access.
	OnAccess(ev *AccessEvent)
	// OnCompute fires after a batch of n non-memory instructions
	// retires on t.
	OnCompute(t *Thread, n uint64)
	// OnAlloc fires when t allocates a region (site is the allocation
	// instruction). The thread's call path at this moment is the
	// allocation path used for data-centric attribution.
	OnAlloc(t *Thread, site isa.SiteID, r vm.Region, name string)
	// OnStackAlloc fires when t allocates a stack variable inside the
	// current frame (the Section 10 stack-tracking extension). The
	// variable is freed automatically when the frame returns,
	// reported through OnFree.
	OnStackAlloc(t *Thread, site isa.SiteID, r vm.Region, name string)
	// OnFree fires when t frees a region.
	OnFree(t *Thread, r vm.Region)
	// OnRegionBegin/End bracket serial and parallel regions. name is
	// the region's function name; team lists participating threads.
	OnRegionBegin(name string, team []*Thread)
	OnRegionEnd(name string)
}

// BatchHook is an optional Hook extension for hooks that can consume a
// whole dispatch batch in one call. When a workload issues accesses
// through LoadBatch/StoreBatch, the engine calls OnAccessBatch once per
// hook per batch instead of OnAccess once per hook per access —
// amortizing the dynamic dispatch that dominates the per-access budget.
//
// The events are in retirement order, all from one thread and one
// instruction site. The slice and its events are scratch owned by the
// engine, valid only for the duration of the call (the same
// no-retention contract OnAccess has). Hooks that don't implement
// BatchHook still receive every event via OnAccess; delivery stays in
// hook-registration order either way.
type BatchHook interface {
	Hook
	OnAccessBatch(evs []AccessEvent)
}

// BaseHook is a no-op Hook for embedding.
type BaseHook struct{}

// OnAccess implements Hook.
func (BaseHook) OnAccess(*AccessEvent) {}

// OnCompute implements Hook.
func (BaseHook) OnCompute(*Thread, uint64) {}

// OnAlloc implements Hook.
func (BaseHook) OnAlloc(*Thread, isa.SiteID, vm.Region, string) {}

// OnStackAlloc implements Hook.
func (BaseHook) OnStackAlloc(*Thread, isa.SiteID, vm.Region, string) {}

// OnFree implements Hook.
func (BaseHook) OnFree(*Thread, vm.Region) {}

// OnRegionBegin implements Hook.
func (BaseHook) OnRegionBegin(string, []*Thread) {}

// OnRegionEnd implements Hook.
func (BaseHook) OnRegionEnd(string) {}

// Engine drives one program execution on one machine.
type Engine struct {
	machine *topology.Machine
	prog    *isa.Program
	as      *vm.AddressSpace
	memory  *mem.System
	fabric  *interconnect.Fabric
	caches  *cache.Hierarchy

	threads []*Thread
	hooks   []Hook
	// batchHooks is index-aligned with hooks: the hook's BatchHook view,
	// or nil if it only consumes single events. Cached at AddHook so the
	// dispatch loop never re-asserts the interface.
	batchHooks []BatchHook
	// perAccess forces batched dispatch through the one-access-at-a-time
	// path (see SetPerAccessDelivery).
	perAccess bool

	// Contention factors from the previous region (feedback model).
	memFactors  []float64
	linkFactors [][]float64

	totalTime    units.Cycles
	regionName   string
	regionTeam   []*Thread
	regionActive bool

	// currentThread/currentSite identify the in-flight access for
	// fault handlers (see CurrentThread).
	currentThread *Thread
	currentSite   isa.SiteID

	// accessEv is the scratch event handed to hooks, reused across
	// accesses: hooks must not retain the pointer (the Hook contract),
	// and accesses never nest, so one buffer removes the per-access
	// heap allocation the escaping &AccessEvent{...} literal caused.
	accessEv AccessEvent

	// batchEvs is the scratch event slice for batched dispatch, reused
	// across batches under the same no-retention contract.
	batchEvs []AccessEvent

	// staticRegions backs the program's symbol-table statics.
	staticRegions []vm.Region

	// marks records named time points (phase boundaries).
	marks map[string]units.Cycles

	// Program-wide retirement totals.
	totalInstructions uint64
	totalMemAccesses  uint64
	totalRemote       uint64
	totalRemoteCycles units.Cycles
}

// Config assembles an Engine.
type Config struct {
	Machine *topology.Machine
	Program *isa.Program
	// Threads is the team size; at most Machine.NumCPUs(). Zero means
	// all CPUs.
	Threads int
	// CacheConfig overrides the default cache geometry if non-zero.
	CacheConfig cache.Config
	// MemParams overrides the default memory latency model if non-zero.
	MemParams mem.LatencyParams
	// FabricParams overrides the default interconnect model if non-zero.
	FabricParams interconnect.Params
	// Binding selects how threads map to CPUs.
	Binding Binding
}

// Binding is a thread-to-CPU placement policy.
type Binding int

// Bindings.
const (
	// Compact fills CPUs in order (thread i on CPU i): domains fill
	// one at a time.
	Compact Binding = iota
	// Scatter deals threads round-robin across domains — how the
	// paper binds UMT2013's 32 threads over POWER7's four domains
	// ("each hardware core in each of four NUMA domains", Section
	// 8.4).
	Scatter
)

// NewEngine builds an engine and its full machine state (address space,
// memory system, fabric, caches, threads).
func NewEngine(cfg Config) *Engine {
	if cfg.Machine == nil {
		panic("proc: Config.Machine is required")
	}
	if cfg.Program == nil {
		panic("proc: Config.Program is required")
	}
	n := cfg.Threads
	if n <= 0 || n > cfg.Machine.NumCPUs() {
		n = cfg.Machine.NumCPUs()
	}
	e := &Engine{
		machine: cfg.Machine,
		prog:    cfg.Program,
		as:      vm.NewAddressSpace(cfg.Machine),
		memory:  mem.NewSystem(cfg.Machine, cfg.MemParams),
		fabric:  interconnect.New(cfg.Machine, cfg.FabricParams),
		caches:  cache.NewHierarchy(cfg.Machine, cfg.CacheConfig),
	}
	cpus := bindCPUs(cfg.Machine, n, cfg.Binding)
	for i := 0; i < n; i++ {
		e.threads = append(e.threads, &Thread{
			ID:     i,
			CPU:    cpus[i],
			Domain: cfg.Machine.DomainOfCPU(cpus[i]),
		})
	}
	e.memFactors = make([]float64, cfg.Machine.NumDomains())
	e.linkFactors = make([][]float64, cfg.Machine.NumDomains())
	for i := range e.memFactors {
		e.memFactors[i] = 1.0
		e.linkFactors[i] = make([]float64, cfg.Machine.NumDomains())
		for j := range e.linkFactors[i] {
			e.linkFactors[i][j] = 1.0
		}
	}
	// "Load" the program: map each symbol-table static variable into
	// the address space (the data/bss segment). Statics are homed by
	// first touch, like pages of a freshly mapped segment.
	for _, sv := range cfg.Program.Statics() {
		e.staticRegions = append(e.staticRegions, e.as.Alloc(sv.Size, vm.FirstTouch{}))
	}
	return e
}

// ROIMark is the conventional mark name for the start of a program's
// measured phase (solver loop, PARSEC region of interest). Workloads
// set it; the profiler reports time since it alongside total time.
const ROIMark = "roi"

// Mark records the current simulated time under a name, delimiting a
// program phase (e.g. the start of the solver loop or a PARSEC-style
// region of interest). Call it between regions.
func (e *Engine) Mark(name string) {
	if e.marks == nil {
		e.marks = make(map[string]units.Cycles)
	}
	e.marks[name] = e.totalTime
}

// MarkTime returns the time recorded under name.
func (e *Engine) MarkTime(name string) (units.Cycles, bool) {
	c, ok := e.marks[name]
	return c, ok
}

// Now approximates the simulated timestamp of thread t's current
// instruction: completed-region time plus the thread's progress in the
// open region. Used for trace-based (time-varying) measurements.
func (e *Engine) Now(t *Thread) units.Cycles {
	if t == nil {
		return e.totalTime
	}
	return e.totalTime + t.regionCycles
}

// TimeSince returns simulated time elapsed since the named mark, or
// total time if the mark was never set.
func (e *Engine) TimeSince(name string) units.Cycles {
	if c, ok := e.marks[name]; ok {
		return e.totalTime - c
	}
	return e.totalTime
}

// StaticRegions returns the allocations backing the program's static
// variables, index-aligned with Program.Statics().
func (e *Engine) StaticRegions() []vm.Region { return e.staticRegions }

// StaticRegion returns the allocation backing static variable i.
func (e *Engine) StaticRegion(i int) vm.Region { return e.staticRegions[i] }

// bindCPUs picks the CPU for each of n threads under the binding.
func bindCPUs(m *topology.Machine, n int, b Binding) []topology.CPUID {
	out := make([]topology.CPUID, 0, n)
	if b == Compact {
		for i := 0; i < n; i++ {
			out = append(out, topology.CPUID(i))
		}
		return out
	}
	// Scatter: round-robin over domains, taking the next unused CPU
	// in each.
	next := make([]int, m.NumDomains())
	for i := 0; i < n; i++ {
		d := i % m.NumDomains()
		cpus := m.CPUsOfDomain(topology.DomainID(d))
		out = append(out, cpus[next[d]%len(cpus)])
		next[d]++
	}
	return out
}

// Machine returns the engine's machine.
func (e *Engine) Machine() *topology.Machine { return e.machine }

// Program returns the simulated binary.
func (e *Engine) Program() *isa.Program { return e.prog }

// AddressSpace returns the simulated process's memory.
func (e *Engine) AddressSpace() *vm.AddressSpace { return e.as }

// Memory returns the memory system.
func (e *Engine) Memory() *mem.System { return e.memory }

// Fabric returns the interconnect.
func (e *Engine) Fabric() *interconnect.Fabric { return e.fabric }

// Caches returns the cache hierarchy.
func (e *Engine) Caches() *cache.Hierarchy { return e.caches }

// Threads returns the team, index == thread id.
func (e *Engine) Threads() []*Thread { return e.threads }

// NumThreads returns the team size.
func (e *Engine) NumThreads() int { return len(e.threads) }

// AddHook registers an observer. Hooks run in registration order.
func (e *Engine) AddHook(h Hook) {
	e.hooks = append(e.hooks, h)
	bh, _ := h.(BatchHook)
	e.batchHooks = append(e.batchHooks, bh)
}

// SetPerAccessDelivery forces LoadBatch/StoreBatch to deliver events
// through the one-at-a-time access path instead of batching. Batched
// delivery defers hook notification (and the thread's cycle-counter
// flush) to the end of the batch, which is invisible to hooks that only
// accumulate — but a hook that reads mid-batch engine state (simulated
// timestamps via Now for tracing, or fault supervision that may swap
// the mechanism between accesses) needs the exact per-access
// interleave. The profiler enables this for traced and fault-injected
// runs; everything else keeps the batched fast path.
func (e *Engine) SetPerAccessDelivery(on bool) { e.perAccess = on }

// TotalTime returns the simulated program time accumulated so far: the
// sum over completed regions of the slowest team member's cycles.
func (e *Engine) TotalTime() units.Cycles { return e.totalTime }

// TotalInstructions returns program-wide retired instructions (the
// paper's I).
func (e *Engine) TotalInstructions() uint64 { return e.totalInstructions }

// TotalMemAccesses returns program-wide retired loads+stores (I_MEM).
func (e *Engine) TotalMemAccesses() uint64 { return e.totalMemAccesses }

// TotalRemoteAccesses returns program-wide remote accesses (I_NUMA).
func (e *Engine) TotalRemoteAccesses() uint64 { return e.totalRemote }

// TotalRemoteLatency returns the accumulated latency of all remote
// accesses (the paper's l_NUMA), making the exact Equation 1 lpi_NUMA
// computable for validation against the sampled estimators.
func (e *Engine) TotalRemoteLatency() units.Cycles { return e.totalRemoteCycles }

// ExactLPI returns Equation 1 computed from full (unsampled) execution
// counts: l_NUMA / I.
func (e *Engine) ExactLPI() float64 {
	if e.totalInstructions == 0 {
		return 0
	}
	return float64(e.totalRemoteCycles) / float64(e.totalInstructions)
}

// BeginRegion starts a region with the given team. Panics if a region
// is already active: regions never nest (OpenMP nested parallelism is
// out of scope, as in the paper's experiments).
func (e *Engine) BeginRegion(name string, team []*Thread) {
	if e.regionActive {
		panic(fmt.Sprintf("proc: BeginRegion(%q) inside active region %q", name, e.regionName))
	}
	e.regionActive = true
	e.regionName = name
	e.regionTeam = team
	for _, t := range team {
		t.regionCycles = 0
	}
	for _, h := range e.hooks {
		h.OnRegionBegin(name, team)
	}
}

// EndRegion closes the active region: program time advances by the
// slowest team member's cycles, and the contention factors for the
// next region are computed from this region's traffic.
func (e *Engine) EndRegion() {
	if !e.regionActive {
		panic("proc: EndRegion without BeginRegion")
	}
	var dur units.Cycles
	for _, t := range e.regionTeam {
		if t.regionCycles > dur {
			dur = t.regionCycles
		}
	}
	e.totalTime += dur
	e.memFactors = e.memory.EndEpoch()
	e.linkFactors = e.fabric.EndEpoch()
	name := e.regionName
	e.regionActive = false
	e.regionTeam = nil
	e.regionName = ""
	for _, h := range e.hooks {
		h.OnRegionEnd(name)
	}
}

// RegionActive reports whether a region is open.
func (e *Engine) RegionActive() bool { return e.regionActive }

// Ctx returns an execution context for the given thread. Workload code
// receives a Ctx and issues instructions through it.
func (e *Engine) Ctx(threadID int) *Ctx {
	return &Ctx{e: e, t: e.threads[threadID]}
}

// CurrentThread returns the thread whose access is being simulated, or
// nil outside an access. Fault handlers use it the way a real SIGSEGV
// handler relies on running on the faulting thread (Section 6 of the
// paper): the signal context identifies who touched the page.
func (e *Engine) CurrentThread() *Thread { return e.currentThread }

// CurrentSite returns the instruction site of the access being
// simulated (the faulting IP available to a signal handler), or NoSite.
func (e *Engine) CurrentSite() isa.SiteID { return e.currentSite }

// access simulates one load or store on thread t.
//
// This is the per-access hot path of the whole simulator; it avoids
// deferred closures and heap allocations deliberately. The in-flight
// marker is cleared on the explicit returns below — Touch's fault
// handlers run between the assignments, and nothing here panics on
// degraded inputs (the cache and memory models classify them instead).
func (e *Engine) access(t *Thread, site isa.SiteID, addr uint64, isStore bool) {
	e.currentThread, e.currentSite = t, site
	home, first, region, regionOK, err := e.as.TouchRegion(addr, isStore, t.Domain)
	if err != nil {
		home = topology.NoDomain
	}
	res := e.caches.Access(t.CPU, addr, home)
	lat := res.OnChipLatency
	switch res.Source {
	case cache.SrcRemoteCache:
		e.fabric.RecordTransfer(t.Domain, home)
		lat += e.fabric.HopLatency(t.Domain, home).Scale(e.linkFactor(t.Domain, home))
	case cache.SrcLocalDRAM:
		e.memory.RecordRequest(home)
		lat += e.memory.DRAMLatency(t.Domain, home).Scale(e.memFactor(home))
	case cache.SrcRemoteDRAM:
		e.memory.RecordRequest(home)
		e.fabric.RecordTransfer(t.Domain, home)
		lat += e.memory.DRAMLatency(t.Domain, home).Scale(e.memFactor(home))
		lat += e.fabric.HopLatency(t.Domain, home).Scale(e.linkFactor(t.Domain, home))
	}
	// The access itself retires one instruction (1 cycle issue) plus
	// its memory latency.
	t.instructions++
	t.memAccesses++
	t.cycles += 1 + lat
	t.regionCycles += 1 + lat
	e.totalInstructions++
	e.totalMemAccesses++
	if res.Source.IsRemote() {
		e.totalRemote++
		e.totalRemoteCycles += lat
	}

	if len(e.hooks) == 0 {
		e.currentThread, e.currentSite = nil, isa.NoSite
		return
	}
	ev := &e.accessEv
	*ev = AccessEvent{
		Thread:      t,
		Site:        site,
		EA:          addr,
		IsStore:     isStore,
		Source:      res.Source,
		Home:        home,
		Latency:     lat,
		FirstTouch:  first,
		Region:      region,
		RegionValid: regionOK,
	}
	for _, h := range e.hooks {
		h.OnAccess(ev)
	}
	e.currentThread, e.currentSite = nil, isa.NoSite
}

// accessBatch simulates a slice of same-site loads or stores on t.
// It is semantically a loop over access — and literally one when
// per-access delivery is forced — but on the fast path it hoists the
// in-flight markers and counter flushes out of the loop and delivers
// events to hooks batch-at-a-time, amortizing interface dispatch.
// Counter flushes are additive (never snapshot assignments) because
// fault handlers running inside Touch may charge overhead to t
// mid-batch.
func (e *Engine) accessBatch(t *Thread, site isa.SiteID, addrs []uint64, isStore bool) {
	if e.perAccess {
		for _, addr := range addrs {
			e.access(t, site, addr, isStore)
		}
		return
	}
	if len(addrs) == 0 {
		return
	}
	e.currentThread, e.currentSite = t, site
	needEvs := len(e.hooks) > 0
	evs := e.batchEvs[:0]
	if needEvs && cap(evs) < len(addrs) {
		evs = make([]AccessEvent, 0, len(addrs))
	}
	var (
		cycles       units.Cycles
		remote       uint64
		remoteCycles units.Cycles
	)
	for _, addr := range addrs {
		home, first, region, regionOK, err := e.as.TouchRegion(addr, isStore, t.Domain)
		if err != nil {
			home = topology.NoDomain
		}
		res := e.caches.Access(t.CPU, addr, home)
		lat := res.OnChipLatency
		switch res.Source {
		case cache.SrcRemoteCache:
			e.fabric.RecordTransfer(t.Domain, home)
			lat += e.fabric.HopLatency(t.Domain, home).Scale(e.linkFactor(t.Domain, home))
		case cache.SrcLocalDRAM:
			e.memory.RecordRequest(home)
			lat += e.memory.DRAMLatency(t.Domain, home).Scale(e.memFactor(home))
		case cache.SrcRemoteDRAM:
			e.memory.RecordRequest(home)
			e.fabric.RecordTransfer(t.Domain, home)
			lat += e.memory.DRAMLatency(t.Domain, home).Scale(e.memFactor(home))
			lat += e.fabric.HopLatency(t.Domain, home).Scale(e.linkFactor(t.Domain, home))
		}
		cycles += 1 + lat
		if res.Source.IsRemote() {
			remote++
			remoteCycles += lat
		}
		if needEvs {
			evs = append(evs, AccessEvent{
				Thread:      t,
				Site:        site,
				EA:          addr,
				IsStore:     isStore,
				Source:      res.Source,
				Home:        home,
				Latency:     lat,
				FirstTouch:  first,
				Region:      region,
				RegionValid: regionOK,
			})
		}
	}
	n := uint64(len(addrs))
	t.instructions += n
	t.memAccesses += n
	t.cycles += cycles
	t.regionCycles += cycles
	e.totalInstructions += n
	e.totalMemAccesses += n
	e.totalRemote += remote
	e.totalRemoteCycles += remoteCycles
	if needEvs {
		e.batchEvs = evs
		for i, h := range e.hooks {
			if bh := e.batchHooks[i]; bh != nil {
				bh.OnAccessBatch(evs)
				continue
			}
			for j := range evs {
				h.OnAccess(&evs[j])
			}
		}
	}
	e.currentThread, e.currentSite = nil, isa.NoSite
}

func (e *Engine) memFactor(d topology.DomainID) float64 {
	if d < 0 || int(d) >= len(e.memFactors) {
		return 1.0
	}
	return e.memFactors[d]
}

func (e *Engine) linkFactor(from, to topology.DomainID) float64 {
	if from < 0 || to < 0 || int(from) >= len(e.linkFactors) || int(to) >= len(e.linkFactors[from]) {
		return 1.0
	}
	return e.linkFactors[from][to]
}

// Ctx is the instruction-issue interface handed to workload code; all
// methods execute on the context's bound thread.
type Ctx struct {
	e *Engine
	t *Thread
}

// Engine returns the owning engine.
func (c *Ctx) Engine() *Engine { return c.e }

// Thread returns the bound thread.
func (c *Ctx) Thread() *Thread { return c.t }

// Load retires one load of addr at the given instruction site.
func (c *Ctx) Load(site isa.SiteID, addr uint64) {
	c.e.access(c.t, site, addr, false)
}

// Store retires one store to addr at the given instruction site.
func (c *Ctx) Store(site isa.SiteID, addr uint64) {
	c.e.access(c.t, site, addr, true)
}

// LoadBatch retires one load per address in addrs, in order, all at the
// given instruction site — exactly equivalent to calling Load in a
// loop, but the engine amortizes dispatch over the slice (see
// BatchHook). Workload inner loops that stream over an array use this.
func (c *Ctx) LoadBatch(site isa.SiteID, addrs []uint64) {
	c.e.accessBatch(c.t, site, addrs, false)
}

// StoreBatch retires one store per address in addrs, in order, all at
// the given instruction site; the store analogue of LoadBatch.
func (c *Ctx) StoreBatch(site isa.SiteID, addrs []uint64) {
	c.e.accessBatch(c.t, site, addrs, true)
}

// Compute retires n non-memory instructions (1 cycle each).
func (c *Ctx) Compute(n uint64) {
	if n == 0 {
		return
	}
	c.t.instructions += n
	c.t.cycles += units.Cycles(n)
	c.t.regionCycles += units.Cycles(n)
	c.e.totalInstructions += n
	for _, h := range c.e.hooks {
		h.OnCompute(c.t, n)
	}
}

// Call pushes a frame for fn (invoked from source line callLine in the
// caller), runs body, and pops the frame. The thread's call path during
// body includes the new frame — this is what call-stack unwinding sees.
// Stack variables allocated in the frame (AllocStack) are freed when it
// returns.
func (c *Ctx) Call(fn isa.FuncID, callLine int, body func()) {
	c.t.stack = append(c.t.stack, Frame{Fn: fn, CallLine: callLine})
	c.t.frameAllocs = append(c.t.frameAllocs, nil)
	defer func() {
		top := len(c.t.frameAllocs) - 1
		for _, r := range c.t.frameAllocs[top] {
			c.e.as.Free(r)
			for _, h := range c.e.hooks {
				h.OnFree(c.t, r)
			}
		}
		c.t.frameAllocs = c.t.frameAllocs[:top]
		c.t.stack = c.t.stack[:len(c.t.stack)-1]
	}()
	body()
}

// AllocStack allocates a stack variable in the current frame: it lives
// until the frame returns, is homed by first touch like any memory, and
// is tracked data-centrically under the Stack kind — the full
// stack-variable support the paper lists as future work (Section 10;
// their tool required converting such variables to statics, as done
// for LULESH's nodelist in Section 8.1). Panics outside any frame.
func (c *Ctx) AllocStack(site isa.SiteID, name string, size uint64) vm.Region {
	if len(c.t.frameAllocs) == 0 {
		panic("proc: AllocStack outside any frame")
	}
	r := c.e.as.Alloc(size, vm.FirstTouch{})
	top := len(c.t.frameAllocs) - 1
	c.t.frameAllocs[top] = append(c.t.frameAllocs[top], r)
	c.t.instructions++
	c.t.cycles++
	c.t.regionCycles++
	c.e.totalInstructions++
	for _, h := range c.e.hooks {
		h.OnStackAlloc(c.t, site, r, name)
	}
	return r
}

// Alloc allocates size bytes at the given allocation site under the
// placement policy (nil means first-touch) and notifies hooks. The
// allocation itself retires one instruction.
func (c *Ctx) Alloc(site isa.SiteID, name string, size uint64, pol vm.Policy) vm.Region {
	r := c.e.as.Alloc(size, pol)
	c.t.instructions++
	c.t.cycles++
	c.t.regionCycles++
	c.e.totalInstructions++
	for _, h := range c.e.hooks {
		h.OnAlloc(c.t, site, r, name)
	}
	return r
}

// Free releases a region and notifies hooks.
func (c *Ctx) Free(r vm.Region) {
	c.e.as.Free(r)
	for _, h := range c.e.hooks {
		h.OnFree(c.t, r)
	}
}
