// Package core is the reproduction of the paper's primary
// contribution: the HPCToolkit-NUMA profiler. It wires an
// address-sampling mechanism (internal/pmu) into the execution engine
// (internal/proc), collects address samples into augmented per-thread
// calling context trees, attributes them three ways — code-centric,
// data-centric, and address-centric (Section 5) — pinpoints first
// touches through page protection (Section 6), merges per-thread
// profiles with sum and [min,max] reductions (Section 7.2), and
// derives the NUMA metrics of Section 4 including lpi_NUMA by
// whichever estimator the mechanism supports.
//
// The top-level entry point is Analyze:
//
//	prof, err := core.Analyze(core.Config{
//		Machine:   topology.MagnyCours48(),
//		Mechanism: "IBS",
//	}, app)
//
// where app is any simulated program implementing App (the four paper
// benchmarks live in internal/workloads).
package core

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"repro/internal/addrcentric"
	"repro/internal/cache"
	"repro/internal/cct"
	"repro/internal/datacentric"
	"repro/internal/faults"
	"repro/internal/firsttouch"
	"repro/internal/interconnect"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/pmu"
	"repro/internal/proc"
	"repro/internal/progress"
	"repro/internal/telemetry"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/vm"
)

// App is a runnable simulated application.
type App interface {
	// Name identifies the application.
	Name() string
	// Binary returns the simulated executable: functions, sites, and
	// the static-variable symbol table. It must be safe to call
	// before Run and describe everything Run will execute.
	Binary() *isa.Program
	// Run executes the application on the engine. An App instance is
	// one-shot: construct a fresh instance for each run.
	Run(e *proc.Engine)
}

// Config selects the machine, team size, and monitoring setup.
type Config struct {
	// Machine to run on (required).
	Machine *topology.Machine
	// Threads is the team size; 0 means all CPUs.
	Threads int
	// Mechanism is the address-sampling back end: one of pmu.Names().
	// Empty means "IBS".
	Mechanism string
	// Period overrides the mechanism's scaled default sampling period.
	Period uint64
	// Bins overrides the per-variable bin count (0: default/env).
	Bins int
	// TrackFirstTouch enables page-protection first-touch pinpointing.
	TrackFirstTouch bool
	// CorrectOffByOne applies the online previous-instruction fix for
	// imprecise-IP mechanisms (PEBS). Profile always enables it for
	// mechanisms that need it.
	CorrectOffByOne bool

	// CacheConfig overrides the default cache geometry (zero value:
	// cache.DefaultConfig). Experiments shrink caches in proportion
	// to their scaled-down problem sizes.
	CacheConfig cache.Config
	// MemParams overrides the memory-controller model.
	MemParams mem.LatencyParams
	// FabricParams overrides the interconnect model.
	FabricParams interconnect.Params
	// Binding selects thread-to-CPU placement (compact or scatter).
	Binding proc.Binding
	// Trace additionally records every sample with its simulated
	// timestamp for time-varying analysis (internal/trace) — the
	// paper's Section 10 future-work item on trace-based measurement.
	Trace bool
	// Faults injects the given fault plan into the sampling pipeline
	// (nil: none). The profiler degrades gracefully — validating and
	// quarantining malformed samples, retrying stalls with
	// exponential backoff in simulated time, falling back to Soft-IBS
	// on hard failure, and salvaging the merge when per-thread
	// profiles are lost — and accounts for it all in Profile.Health.
	Faults *faults.Plan

	// SnapshotEvery enables the live-progress publisher: every N
	// completed parallel/serial regions ("epochs") the profiler
	// captures an immutable progress.Snapshot of the in-flight
	// aggregates and derived metric estimates and hands it to
	// OnSnapshot, plus one final snapshot mirroring the completed
	// profile's Totals. 0 (the default) disables capture; the
	// per-region cost is then a counter increment and one compare.
	// Snapshots are observational: enabling them never changes the
	// profile's bytes (only ConvergeEarly does).
	SnapshotEvery int
	// SnapshotTopK bounds the hot-variable estimates carried by each
	// snapshot (0: 5).
	SnapshotTopK int
	// OnSnapshot receives every snapshot, synchronously on the run's
	// goroutine; it must not block. May be nil — the convergence
	// detector still runs, which is what ConvergeEarly needs.
	OnSnapshot func(progress.Snapshot)
	// ConvergeEarly stops sampling once the live estimates converge
	// (progress.Detector over the LPI and remote-fraction quotients).
	// The run itself completes — only monitoring detaches — so the
	// profile still covers the whole execution, but its sampled
	// metrics describe the pre-stop window. Such profiles are
	// intentionally NOT byte-identical to full-sampling runs; the
	// early stop is recorded in Health. Requires SnapshotEvery > 0.
	ConvergeEarly bool

	// CheckpointEvery enables mid-run checkpointing: every N epochs
	// the profiler captures its complete resumable state (see
	// Checkpoint) and hands it to OnCheckpoint. 0 (the default)
	// disables capture; like snapshots, checkpoints are observational
	// and never change the profile's bytes. Unsupported (silently off)
	// for fault-injected runs. This is a service/CLI option, never part
	// of a sweep cell's spec: the cache key and the profile are
	// identical with or without it.
	CheckpointEvery int
	// OnCheckpoint receives every checkpoint, synchronously on the
	// run's goroutine. The checkpoint holds live references — the
	// callback must serialize (or deep-copy) before returning and
	// retain nothing.
	OnCheckpoint func(*Checkpoint)
	// Resume adopts a previously captured checkpoint: the run
	// fast-forwards to the checkpoint's epoch with the monitor paused
	// (the deterministic replay rebuilds the address space, caches and
	// contention state), restores the checkpointed sampling state
	// there, and continues. The resumed run's profile is byte-identical
	// to an uninterrupted one. Incompatible with Faults.
	Resume *Checkpoint
}

// Totals carries whole-program measurements and derived metrics.
type Totals struct {
	// Sampled quantities.
	Samples             float64
	SampledInstructions float64 // I^s
	Ml, Mr              float64
	PerDomain           []float64
	SampledLatency      units.Cycles
	SampledRemoteLat    units.Cycles // l^s_NUMA

	// Absolute counters (the "conventional PMU counters").
	Instructions uint64
	MemAccesses  uint64

	// LPI is lpi_NUMA by the mechanism's estimator (Equation 2 for
	// instruction samplers with latency, Equation 3 for event
	// samplers with latency). NaN when the mechanism cannot estimate
	// it (no latency measurement).
	LPI float64
	// LPIExact is Equation 1 computed from full execution counts —
	// available only because our substrate is a simulator; the real
	// tool cannot observe it and relies on the estimators.
	LPIExact float64
	// LPIInsufficient reports that the mechanism supports an lpi
	// estimator but the run delivered too few usable samples to
	// evaluate it; LPI is pinned to 0 rather than NaN/Inf.
	LPIInsufficient bool
	// Significant applies the 0.1 cycles/instruction rule of thumb to
	// the best available lpi value.
	Significant bool

	// RemoteFraction is M_r / (M_l + M_r).
	RemoteFraction float64
	// Imbalance is max/mean of PerDomain.
	Imbalance float64

	// SimTime is the simulated program runtime under monitoring.
	SimTime units.Cycles
	// ROITime is the time spent after the workload's proc.ROIMark —
	// the measured phase (equals SimTime when no mark was set).
	ROITime units.Cycles
	// Overhead is the monitoring cost charged to threads.
	Overhead units.Cycles
}

// totalsAlias strips Totals of its methods so the custom marshalers
// below can delegate to the stock struct codec without recursing.
type totalsAlias Totals

// MarshalJSON encodes Totals with NaN LPI carried as null. LPI is
// legitimately NaN for mechanisms that measure no latency (see
// buildTotals), but encoding/json rejects NaN outright — without this
// method every profile save and HTTP view for MRK, Soft-IBS, PEBS and
// DEAR profiles fails wholesale.
func (t Totals) MarshalJSON() ([]byte, error) {
	doc := struct {
		totalsAlias
		LPI *float64 // shadows the embedded field
	}{totalsAlias: totalsAlias(t)}
	if v := t.LPI; !math.IsNaN(v) {
		doc.LPI = &v
	}
	return json.Marshal(doc)
}

// UnmarshalJSON restores the in-memory convention: a null (or absent)
// LPI decodes back to NaN, so round-tripped profiles are
// indistinguishable from freshly built ones.
func (t *Totals) UnmarshalJSON(b []byte) error {
	doc := struct {
		*totalsAlias
		LPI *float64
	}{totalsAlias: (*totalsAlias)(t)}
	if err := json.Unmarshal(b, &doc); err != nil {
		return err
	}
	if doc.LPI != nil {
		t.LPI = *doc.LPI
	} else {
		t.LPI = math.NaN()
	}
	return nil
}

// BinStats aggregates samples falling in one bin of a variable.
type BinStats struct {
	Index     int
	Lo, Hi    uint64 // address sub-range
	Ml, Mr    float64
	Samples   float64
	Latency   units.Cycles
	RemoteLat units.Cycles
}

// VarProfile aggregates data-centric attribution for one variable.
type VarProfile struct {
	Var *datacentric.Variable

	Samples   float64
	Ml, Mr    float64
	PerDomain []float64
	Latency   units.Cycles
	RemoteLat units.Cycles

	// LPI is the variable's NUMA latency per sampled access touching
	// it: the per-variable analog of Equation 2 the viewer shows next
	// to each variable.
	LPI float64
	// RemoteLatShare is this variable's share of the program's total
	// sampled remote latency (the paper's "z accounts for 11.3% of
	// the total latency caused by remote accesses").
	RemoteLatShare float64
	// MrShare is this variable's share of total M_r.
	MrShare float64

	Bins []BinStats

	// First-touch pinpointing results (when enabled).
	FirstTouchThreads []int
	FirstTouchPath    []proc.Frame
	ProtectedPages    int
}

// Profile is the analysis result: the merged augmented CCT, per
// variable data-centric profiles, address-centric patterns, and
// program totals.
type Profile struct {
	AppName   string
	Machine   *topology.Machine
	Mechanism string
	Caps      pmu.Capability
	Period    uint64

	// Tree is the merged augmented CCT: code-centric call paths under
	// the access dummy node, allocation paths under the allocation
	// dummy node, first-touch paths under the first-touch dummy node.
	Tree *cct.Tree
	// PerThreadTrees holds the unmerged per-thread access trees, as
	// hpcrun wrote them before the hpcprof merge.
	PerThreadTrees []*cct.Tree

	// Vars is sorted by descending sampled remote latency.
	Vars []*VarProfile

	// Patterns exposes address-centric access patterns per variable
	// and scope.
	Patterns *addrcentric.Tracker
	// FirstTouch exposes raw first-touch events (nil unless enabled).
	FirstTouch *firsttouch.Recorder
	// Registry exposes the variable registry for lookups.
	Registry *datacentric.Registry
	// Timeline holds time-stamped samples when Config.Trace was set
	// (nil otherwise).
	Timeline *trace.Timeline
	// Binary is the profiled program's static description.
	Binary *isa.Program

	Totals Totals

	// Health is the degradation ledger: samples dropped or
	// quarantined, sampler stalls/retries/fallbacks, and per-thread
	// merge coverage. Its zero value means a fully healthy run.
	Health Health
}

// VarByName finds a variable profile by name.
func (p *Profile) VarByName(name string) (*VarProfile, bool) {
	for _, v := range p.Vars {
		if v.Var.Name == name {
			return v, true
		}
	}
	return nil, false
}

// Analyze runs app under the configured monitoring and returns its
// Profile. It is the whole pipeline of Section 7: hpcrun (online
// collection), hpcprof (offline merge), and the derived-metric
// computation, in one call.
func Analyze(cfg Config, app App) (*Profile, error) {
	return AnalyzeCtx(context.Background(), cfg, app)
}

// AnalyzeCtx is Analyze under a context, which is how the pipeline
// phases show up in a telemetry trace: the engine setup, the monitored
// run (hpcrun), the per-thread CCT merge (hpcprof), and the
// derived-metric computation each run under their own pipeline.* span
// parented to whatever span ctx carries, and feed the always-on
// pipeline_* instrument family. The context is observational only —
// Analyze has no cancellation points; job-level cancellation lives in
// sched.MapWithCtx, which stops dispatching cells.
func AnalyzeCtx(ctx context.Context, cfg Config, app App) (*Profile, error) {
	if cfg.Machine == nil {
		return nil, fmt.Errorf("core: Config.Machine is required")
	}
	name := cfg.Mechanism
	if name == "" {
		name = "IBS"
	}
	_, setupDone := telemetry.Timed(ctx, "pipeline.engine_setup",
		telemetry.String("workload", app.Name()), telemetry.String("mechanism", name))
	mech, err := pmu.ByName(name, cfg.Period)
	if err != nil {
		setupDone()
		return nil, err
	}
	prog := app.Binary()
	e := proc.NewEngine(proc.Config{
		Machine:      cfg.Machine,
		Program:      prog,
		Threads:      cfg.Threads,
		CacheConfig:  cfg.CacheConfig,
		MemParams:    cfg.MemParams,
		FabricParams: cfg.FabricParams,
		Binding:      cfg.Binding,
	})

	if cfg.Faults != nil && !cfg.Faults.Zero() {
		mech = faults.Wrap(mech, cfg.Faults)
	}
	// Batched dispatch defers hook delivery to the end of each batch,
	// which is observable only to hooks that read mid-batch state: the
	// timeline records a simulated timestamp per sample, and fault
	// supervision reads the clock (and may restart the sampler) between
	// accesses. Those runs get the exact per-access interleave; everything
	// else keeps batch delivery, which is bit-identical for them.
	e.SetPerAccessDelivery(cfg.Trace || (cfg.Faults != nil && !cfg.Faults.Zero()))

	p := newProfiler(cfg, e, prog)
	e.AddHook(p)
	mon := pmu.NewMonitor(mech, prog, p.onSample)
	mon.CorrectOffByOne = cfg.CorrectOffByOne || !mech.Caps().PreciseIP
	e.AddHook(mon)
	p.mon = mon
	if fm, ok := mech.(*faults.Faulty); ok {
		p.faulty = fm
		p.health.Plan = cfg.Faults.String()
	}
	if cfg.Resume != nil {
		if p.faulty != nil {
			setupDone()
			return nil, fmt.Errorf("%w: cannot resume a fault-injected run", ErrResume)
		}
		if cfg.Resume.Epoch <= 0 {
			setupDone()
			return nil, fmt.Errorf("%w: checkpoint carries no epoch", ErrResume)
		}
		// Fast-forward: replay the deterministic access stream with the
		// monitor paused. OnRegionEnd adopts the checkpoint and unpauses
		// once the replay reaches the checkpointed epoch.
		p.resume = cfg.Resume
		mon.Pause()
	}
	setupDone()

	_, runDone := telemetry.Timed(ctx, "pipeline.sampling_run",
		telemetry.String("workload", app.Name()), telemetry.String("mechanism", name))
	app.Run(e)
	runDone()

	if p.resume != nil {
		return nil, fmt.Errorf("%w: epoch %d beyond program end (%d epochs)",
			ErrResume, p.resume.Epoch, p.epoch)
	}
	return p.finish(ctx, app.Name(), mon), nil
}

// Run executes app on cfg's machine with no monitoring attached and
// returns the engine, for baseline timing and exact-metric validation.
func Run(cfg Config, app App) (*proc.Engine, error) {
	if cfg.Machine == nil {
		return nil, fmt.Errorf("core: Config.Machine is required")
	}
	e := proc.NewEngine(proc.Config{
		Machine:      cfg.Machine,
		Program:      app.Binary(),
		Threads:      cfg.Threads,
		CacheConfig:  cfg.CacheConfig,
		MemParams:    cfg.MemParams,
		FabricParams: cfg.FabricParams,
		Binding:      cfg.Binding,
	})
	app.Run(e)
	return e, nil
}

// Overhead holds one Table 2 measurement: baseline vs monitored
// simulated runtime.
type Overhead struct {
	Base, Monitored units.Cycles
}

// Percent returns the monitoring overhead as a fraction of baseline
// (0.24 means +24%). Cycles are unsigned, so the subtraction must
// happen in float space: a monitored run that happens to beat its
// baseline is a small negative overhead, not a 2^64-cycle one.
func (o Overhead) Percent() float64 {
	if o.Base == 0 {
		return 0
	}
	return (float64(o.Monitored) - float64(o.Base)) / float64(o.Base)
}

// MeasureOverhead runs the app twice — unmonitored and monitored — and
// returns both runtimes. makeApp must return a fresh one-shot App per
// call.
func MeasureOverhead(cfg Config, makeApp func() App) (Overhead, error) {
	base, err := Run(cfg, makeApp())
	if err != nil {
		return Overhead{}, err
	}
	prof, err := Analyze(cfg, makeApp())
	if err != nil {
		return Overhead{}, err
	}
	return Overhead{Base: base.TotalTime(), Monitored: prof.Totals.SimTime}, nil
}

// profiler is the online collector: a proc.Hook that tracks
// allocations, regions, and first touches, and the sample sink for the
// PMU monitor.
type profiler struct {
	proc.BaseHook
	cfg    Config
	engine *proc.Engine
	prog   *isa.Program

	registry *datacentric.Registry
	patterns *addrcentric.Tracker
	ft       *firsttouch.Recorder
	timeline *trace.Timeline

	// Per-thread access CCTs (hpcrun's per-thread profiles).
	trees []*cct.Tree

	// keyScratch is the path buffer onSample reuses for every CCT
	// insert; samples arrive one at a time, so one buffer serves all
	// threads without a per-sample allocation.
	keyScratch []cct.Key

	// Per-variable aggregation, keyed by allocation id.
	varAggs map[int]*varAgg

	// Whole-program sampled totals.
	samples     float64
	ml, mr      float64
	perDomain   []float64
	sampledLat  units.Cycles
	sampledRLat units.Cycles

	// Degradation machinery (nil/zero on healthy runs).
	mon    *pmu.Monitor
	faulty *faults.Faulty
	health Health
	// Stall supervision: pending retry deadline and current backoff.
	retryAt units.Cycles
	backoff units.Cycles
	// fellBack is set once the Soft-IBS fallback is installed.
	fellBack bool
	// Estimator-window snapshot taken at fallback time (the fallback
	// sampler cannot measure latency, so later samples must not
	// dilute the estimate).
	snapRemoteLat units.Cycles
	snapInstr     uint64
	snapRemote    uint64
	// Quarantined samples were delivered (they count in I^s at the
	// monitor) but rejected by validation; their contribution is
	// subtracted from the estimator inputs.
	quarInstr     uint64
	quarRemote    uint64
	quarRemoteLat units.Cycles

	// Live-progress publisher state: completed-region epochs, the
	// snapshot sequence, the convergence detector, and whether the
	// converge-early policy already detached the monitor.
	epoch        int
	snapSeq      int
	detector     progress.Detector
	stoppedEarly bool

	// resume holds the checkpoint being fast-forwarded to; nil once
	// adopted (or when the run never was a resume).
	resume *Checkpoint
}

type varAgg struct {
	v         *datacentric.Variable
	samples   float64
	ml, mr    float64
	perDomain []float64
	lat, rlat units.Cycles
	bins      []BinStats
}

func newProfiler(cfg Config, e *proc.Engine, prog *isa.Program) *profiler {
	p := &profiler{
		cfg:       cfg,
		engine:    e,
		prog:      prog,
		registry:  datacentric.NewRegistry(cfg.Bins),
		patterns:  addrcentric.NewTracker(),
		varAggs:   make(map[int]*varAgg),
		perDomain: make([]float64, e.Machine().NumDomains()),
	}
	for i := 0; i < e.NumThreads(); i++ {
		p.trees = append(p.trees, cct.New())
	}
	if cfg.TrackFirstTouch {
		p.ft = firsttouch.New(e)
	}
	if cfg.Trace {
		p.timeline = trace.New()
	}
	// Register symbol-table statics (Section 5.1: "identifies address
	// ranges associated with static variables by reading symbols in
	// the executable"). With first-touch tracking on, their pages are
	// protected now — "when the executable ... is loaded before
	// execution begins" — implementing the extension the paper lists
	// as future work (Section 10).
	for i, sv := range prog.Statics() {
		r := e.StaticRegion(i)
		p.registry.AddStatic(sv.Name, r)
		if p.ft != nil {
			p.ft.Protect(r)
		}
	}
	return p
}

// OnAlloc implements proc.Hook: track the heap variable with its full
// allocation call path, and arm first-touch trapping.
func (p *profiler) OnAlloc(t *proc.Thread, site isa.SiteID, r vm.Region, name string) {
	p.registry.AddHeap(name, r, site, t.ID, t.CallPath())
	if p.ft != nil {
		p.ft.Protect(r)
	}
}

// OnStackAlloc implements proc.Hook: stack variables are tracked like
// heap ones under the Stack kind (the Section 10 extension), including
// first-touch trapping.
func (p *profiler) OnStackAlloc(t *proc.Thread, site isa.SiteID, r vm.Region, name string) {
	p.registry.AddStack(name, r, site, t.ID, t.CallPath())
	if p.ft != nil {
		p.ft.Protect(r)
	}
}

// OnFree implements proc.Hook.
func (p *profiler) OnFree(_ *proc.Thread, r vm.Region) {
	p.registry.Remove(r)
}

// initialBackoff is the first stall-retry delay in simulated cycles;
// each further stall doubles it up to maxBackoff (truncated exponential
// backoff, the standard supervisor loop of a production collector).
const (
	initialBackoff units.Cycles = 4096
	maxBackoff     units.Cycles = 1 << 20
)

// OnAccess implements proc.Hook: the profiler's supervision pass. It
// runs before the PMU monitor on every access (hooks fire in
// registration order) and watches the sampler's health: a stalled
// sampler is restarted after an exponential backoff in simulated time;
// a hard-failed sampler is replaced by Soft-IBS, the software sampler
// that needs no PMU (Section 3's fallback for machines without
// address-sampling hardware — reused here as the degradation path).
func (p *profiler) OnAccess(ev *proc.AccessEvent) {
	if p.faulty == nil || p.fellBack {
		return
	}
	now := p.engine.Now(ev.Thread)
	if p.faulty.Failed() {
		p.fallBack(now)
		return
	}
	if p.faulty.Stalled() {
		if p.retryAt == 0 {
			if p.backoff == 0 {
				p.backoff = initialBackoff
			} else if p.backoff < maxBackoff {
				p.backoff *= 2
			}
			p.retryAt = now + p.backoff
			p.health.BackoffCycles += p.backoff
		} else if now >= p.retryAt {
			p.faulty.Restart()
			p.health.SamplerRetries++
			p.retryAt = 0
		}
	}
}

// OnAccessBatch implements proc.BatchHook. Supervision only has work to
// do in fault-injected runs, and those force per-access delivery (see
// AnalyzeCtx), so a batched run pays exactly one early-out check per
// batch instead of one interface call per access. The loop below is a
// belt-and-braces fallback should a faulty run ever reach this path.
func (p *profiler) OnAccessBatch(evs []proc.AccessEvent) {
	if p.faulty == nil || p.fellBack {
		return
	}
	for i := range evs {
		p.OnAccess(&evs[i])
	}
}

// fallBack snapshots the estimator window and swaps the monitored
// mechanism for Soft-IBS. Collection continues — M_l/M_r, data-centric
// and address-centric attribution all keep accumulating — but latency
// stops arriving, so lpi_NUMA is later computed from the snapshot.
func (p *profiler) fallBack(now units.Cycles) {
	p.fellBack = true
	p.snapRemoteLat = p.mon.SampledRemoteLatency()
	p.snapInstr = p.mon.SampledInstructions()
	p.snapRemote = p.mon.SampledRemote()
	soft := pmu.NewSoftIBS(0)
	p.mon.SetMechanism(soft)
	p.health.Fallback = soft.Name()
	p.health.FallbackAt = now
}

// saneLatencyCeiling bounds a believable single-access latency: no
// memory access on any modelled machine costs more than a million
// cycles, so anything above is a garbled measurement.
const saneLatencyCeiling units.Cycles = 1 << 20

// mergeWorkers caps the concurrency of the hpcprof shard merge. Small
// forests (the common case — one tree per simulated thread) merge
// serially anyway; see cct.MergeShards.
const mergeWorkers = 4

// validate checks one delivered sample against the machine topology,
// the mapped address space, and latency sanity. Malformed samples are
// quarantined into health counters — never attributed, never a crash.
func (p *profiler) validate(s *pmu.Sample) bool {
	ok := true
	if int(s.CPU) < 0 || int(s.CPU) >= p.engine.Machine().NumCPUs() ||
		s.ThreadID < 0 || s.ThreadID >= p.engine.NumThreads() {
		p.health.QuarantinedCPU++
		ok = false
	}
	if s.IP != isa.NoSite && (int(s.IP) < 0 || int(s.IP) >= p.prog.NumSites()) {
		p.health.QuarantinedIP++
		ok = false
	}
	if s.HasEA && s.RegionValid && !s.Region.Contains(s.EA) {
		p.health.QuarantinedEA++
		ok = false
	}
	if s.HasLatency && s.Latency > saneLatencyCeiling {
		p.health.QuarantinedLatency++
		ok = false
	}
	if !ok {
		// The monitor already counted this sample into I^s and the
		// sampled remote latency; remember how much to subtract so
		// the estimators only see validated samples.
		p.quarInstr++
		if s.Source.IsRemote() {
			p.quarRemote++
			if s.HasLatency {
				p.quarRemoteLat += s.Latency
			}
		}
	}
	return ok
}

// OnRegionBegin implements proc.Hook: scope address-centric patterns
// to the region.
func (p *profiler) OnRegionBegin(name string, _ []*proc.Thread) {
	p.patterns.EnterRegion(name)
}

// OnRegionEnd implements proc.Hook. Each completed region is one
// "epoch" of the live-progress publisher; at the configured cadence it
// captures a snapshot of the in-flight estimates. Runs synchronously
// on the engine's goroutine, so the capture reads the plain profiler
// fields without locks.
func (p *profiler) OnRegionEnd(string) {
	p.patterns.LeaveRegion()
	p.epoch++
	if p.resume != nil {
		// Fast-forwarding to a checkpoint: no snapshots, no captures.
		// At the checkpointed epoch, adopt the sampling state and let
		// the monitor run again — from here the run is the
		// uninterrupted run.
		if p.epoch == p.resume.Epoch {
			p.adoptCheckpoint(p.resume)
			p.resume = nil
			p.mon.Unpause()
		}
		return
	}
	if n := p.cfg.SnapshotEvery; n > 0 && p.epoch%n == 0 {
		p.publishSnapshot(p.liveSnapshot(), false)
	}
	if n := p.cfg.CheckpointEvery; n > 0 && p.cfg.OnCheckpoint != nil && p.epoch%n == 0 {
		if ck := p.captureCheckpoint(); ck != nil {
			p.cfg.OnCheckpoint(ck)
		}
	}
}

// onSample is the PMU monitor's callback: attribute one address sample.
// Samples are validated first; malformed ones are quarantined into
// Health counters rather than crashing the collector or silently
// skewing the attribution.
func (p *profiler) onSample(s *pmu.Sample) {
	p.samples++
	if !p.validate(s) {
		return
	}
	if !s.HasEA {
		return // non-memory sample: counts toward I^s only
	}
	t := p.engine.Threads()[s.ThreadID]
	local := p.engine.Machine().DomainOfCPU(s.CPU)

	// Code-centric attribution: unwind the call stack, insert the
	// path + site leaf into the thread's tree.
	tree := p.trees[s.ThreadID]
	keys := p.keyScratch[:0]
	keys = append(keys, cct.DummyKey(cct.DummyAccess))
	for _, fr := range t.CallStack() {
		keys = append(keys, cct.FrameKey(fr.Fn, fr.CallLine))
	}
	if s.IP != isa.NoSite {
		keys = append(keys, cct.SiteKey(s.IP))
	}
	p.keyScratch = keys
	node := tree.Root().InsertPath(keys)
	node.AddMetric(metrics.Samples, 1)

	match := s.Home == local && s.Home != topology.NoDomain
	if match {
		node.AddMetric(metrics.Match, 1)
		p.ml++
	} else {
		node.AddMetric(metrics.Mismatch, 1)
		p.mr++
	}
	if s.Home >= 0 && int(s.Home) < len(p.perDomain) {
		node.AddMetric(metrics.Node(int(s.Home)), 1)
		p.perDomain[s.Home]++
	}
	if s.HasLatency {
		node.AddMetric(metrics.Latency, float64(s.Latency))
		p.sampledLat += s.Latency
		if s.Source.IsRemote() {
			node.AddMetric(metrics.RemoteLatency, float64(s.Latency))
			p.sampledRLat += s.Latency
		}
	}

	// Data-centric attribution: resolve the EA to its variable.
	if !s.RegionValid {
		return
	}
	v, ok := p.registry.Resolve(s.Region)
	if !ok {
		return
	}
	agg := p.varAggs[v.Region.ID]
	if agg == nil {
		agg = &varAgg{v: v, perDomain: make([]float64, len(p.perDomain))}
		for b := 0; b < v.Bins; b++ {
			lo, hi := v.BinRange(b)
			agg.bins = append(agg.bins, BinStats{Index: b, Lo: lo, Hi: hi})
		}
		p.varAggs[v.Region.ID] = agg
	}
	agg.samples++
	bin := &agg.bins[v.BinOf(s.EA)]
	bin.Samples++
	if match {
		agg.ml++
		bin.Ml++
	} else {
		agg.mr++
		bin.Mr++
	}
	if s.Home >= 0 && int(s.Home) < len(agg.perDomain) {
		agg.perDomain[s.Home]++
	}
	if s.HasLatency {
		agg.lat += s.Latency
		bin.Latency += s.Latency
		if s.Source.IsRemote() {
			agg.rlat += s.Latency
			bin.RemoteLat += s.Latency
		}
	}

	// Address-centric attribution: per-thread [min,max] in the whole
	// program and the current region scope.
	var lat units.Cycles
	if s.HasLatency {
		lat = s.Latency
	}
	p.patterns.Record(v, s.ThreadID, s.EA, lat)

	// Trace-based measurement: keep the time-stamped sample.
	if p.timeline != nil {
		p.timeline.Record(trace.Event{
			Time:    p.engine.Now(t),
			Thread:  s.ThreadID,
			Var:     v.Name,
			EA:      s.EA,
			Remote:  !match,
			Latency: lat,
		})
	}
}

// finish merges per-thread trees, grafts data-centric and first-touch
// subtrees, computes derived metrics, and packages the Profile.
func (p *profiler) finish(ctx context.Context, appName string, mon *pmu.Monitor) *Profile {
	// Flush the collection totals to the always-on pipeline family:
	// onSample keeps plain per-run fields (no atomics on the sample
	// path), accumulated here once per run.
	telemetry.Default.Counter("pipeline_samples_total").Add(uint64(p.samples))

	// Report the run under the *configured* mechanism; a mid-run
	// fallback is recorded in Health, not silently relabelled.
	mech := mon.Mechanism()
	caps := mech.Caps()
	if p.faulty != nil {
		mech = p.faulty.Inner()
		caps = mech.Caps()
		p.accountFaults(mon)
	}

	// Simulate per-thread measurement-file loss before the merge.
	if plan := p.cfg.Faults; plan != nil {
		for _, i := range plan.LoseThreads(len(p.trees)) {
			p.trees[i] = nil
			p.health.ThreadsLost = append(p.health.ThreadsLost, i)
			telemetry.Logger("core").Warn("per-thread profile lost before merge",
				"workload", appName, "thread", i)
		}
	}
	p.health.ThreadsTotal = len(p.trees)

	// hpcprof: merge the surviving per-thread trees into the global
	// augmented CCT, skipping lost profiles instead of aborting. The
	// worker count is a constant, never read from the environment: the
	// merged tree is bit-identical either way (integral metrics make the
	// grouped fold exact — see cct.MergeShards), but keeping the
	// grouping fixed means even intermediate states never depend on how
	// the surrounding sweep is scheduled.
	_, mergeDone := telemetry.Timed(ctx, "pipeline.cct_merge",
		telemetry.String("workload", appName), telemetry.Int("threads", len(p.trees)))
	global := cct.New()
	cct.MergeShards(global, p.trees, mergeWorkers)

	// Graft data-centric subtrees: allocation path -> alloc site ->
	// variable -> bins.
	allocRoot := global.Root().Child(cct.DummyKey(cct.DummyAlloc))
	var vars []*VarProfile
	for _, agg := range p.varAggs {
		vp := p.buildVarProfile(agg)
		vars = append(vars, vp)

		keys := make([]cct.Key, 0, len(agg.v.AllocPath)+2)
		for _, fr := range agg.v.AllocPath {
			keys = append(keys, cct.FrameKey(fr.Fn, fr.CallLine))
		}
		if agg.v.Kind == datacentric.Heap && agg.v.AllocSite != isa.NoSite {
			keys = append(keys, cct.SiteKey(agg.v.AllocSite))
		}
		keys = append(keys, cct.VariableKey(agg.v.Name))
		vnode := allocRoot.InsertPath(keys)
		vnode.AddMetric(metrics.Samples, agg.samples)
		vnode.AddMetric(metrics.Match, agg.ml)
		vnode.AddMetric(metrics.Mismatch, agg.mr)
		vnode.AddMetric(metrics.Latency, float64(agg.lat))
		vnode.AddMetric(metrics.RemoteLatency, float64(agg.rlat))
		for d, n := range agg.perDomain {
			if n > 0 {
				vnode.AddMetric(metrics.Node(d), n)
			}
		}
		if pat, ok := p.patterns.Pattern(agg.v, addrcentric.WholeProgram); ok {
			for _, tr := range pat.Threads() {
				vnode.ExtendRange(tr.Thread, tr.Range.Min)
				vnode.ExtendRange(tr.Thread, tr.Range.Max)
			}
		}
		for _, b := range vp.Bins {
			if b.Samples == 0 {
				continue
			}
			bnode := vnode.Child(cct.BinKey(agg.v.Name, b.Index))
			bnode.AddMetric(metrics.Samples, b.Samples)
			bnode.AddMetric(metrics.Match, b.Ml)
			bnode.AddMetric(metrics.Mismatch, b.Mr)
			bnode.AddMetric(metrics.Latency, float64(b.Latency))
			bnode.AddMetric(metrics.RemoteLatency, float64(b.RemoteLat))
		}
	}
	sort.Slice(vars, func(i, j int) bool {
		if vars[i].RemoteLat != vars[j].RemoteLat {
			return vars[i].RemoteLat > vars[j].RemoteLat
		}
		if vars[i].Mr != vars[j].Mr {
			return vars[i].Mr > vars[j].Mr
		}
		return vars[i].Var.Name < vars[j].Var.Name
	})

	// Graft first-touch subtrees.
	if p.ft != nil {
		for _, vp := range vars {
			sub := p.ft.MergedPaths(vp.Var.Region)
			cct.MergeTrees(global, sub)
		}
	}
	mergeDone()

	_, deriveDone := telemetry.Timed(ctx, "pipeline.derive_metrics",
		telemetry.String("workload", appName))
	totals := p.buildTotals(mon, caps)
	deriveDone()

	// Close the stream with a snapshot mirroring the completed
	// profile's derived metrics exactly: a subscriber's last estimate
	// IS the stored profile's truth.
	if p.cfg.SnapshotEvery > 0 {
		p.publishSnapshot(p.finalSnapshot(totals, vars), true)
	}
	return &Profile{
		Health:         p.health,
		AppName:        appName,
		Machine:        p.engine.Machine(),
		Mechanism:      mech.Name(),
		Caps:           caps,
		Period:         mech.Period(),
		Tree:           global,
		PerThreadTrees: p.trees,
		Vars:           vars,
		Patterns:       p.patterns,
		FirstTouch:     p.ft,
		Registry:       p.registry,
		Timeline:       p.timeline,
		Binary:         p.prog,
		Totals:         totals,
	}
}

// accountFaults folds the injector's counters into the health ledger.
// Samples delivered after a Soft-IBS fallback bypass the injector, so
// they are added to the fired count to keep the delivery identity
// (fired == delivered + dropped + lost) true for the whole run.
func (p *profiler) accountFaults(mon *pmu.Monitor) {
	c := p.faulty.Counters()
	faults.RecordCounters(c)
	postFallback := mon.SamplesTaken() - c.Delivered
	p.health.SamplesFired = c.Fired + postFallback
	p.health.SamplesDelivered = mon.SamplesTaken()
	p.health.SamplesDropped = c.Dropped
	p.health.LostToStall = c.LostToStall
	p.health.LostToFailure = c.LostToFailure
	p.health.InjectedCorruptEA = c.CorruptedEA
	p.health.InjectedIPSkid = c.SkiddedIP
	p.health.InjectedGarbleLat = c.GarbledLatency
	p.health.SamplerStalls = c.Stalls
}

func (p *profiler) buildVarProfile(agg *varAgg) *VarProfile {
	vp := &VarProfile{
		Var:       agg.v,
		Samples:   agg.samples,
		Ml:        agg.ml,
		Mr:        agg.mr,
		PerDomain: agg.perDomain,
		Latency:   agg.lat,
		RemoteLat: agg.rlat,
		Bins:      agg.bins,
	}
	if agg.samples > 0 {
		vp.LPI = float64(agg.rlat) / agg.samples
	}
	if p.sampledRLat > 0 {
		vp.RemoteLatShare = float64(agg.rlat) / float64(p.sampledRLat)
	}
	if p.mr > 0 {
		vp.MrShare = agg.mr / p.mr
	}
	if p.ft != nil {
		vp.FirstTouchThreads = p.ft.TouchingThreads(agg.v.Region)
		vp.ProtectedPages = p.ft.ProtectedPages(agg.v.Region)
		if path, ok := p.ft.FirstTouchLocation(agg.v.Region); ok {
			vp.FirstTouchPath = path
		}
	}
	return vp
}

func (p *profiler) buildTotals(mon *pmu.Monitor, caps pmu.Capability) Totals {
	e := p.engine
	t := Totals{
		Samples:             p.samples,
		SampledInstructions: float64(mon.SampledInstructions()),
		Ml:                  p.ml,
		Mr:                  p.mr,
		PerDomain:           p.perDomain,
		SampledLatency:      p.sampledLat,
		SampledRemoteLat:    p.sampledRLat,
		Instructions:        e.TotalInstructions(),
		MemAccesses:         e.TotalMemAccesses(),
		LPIExact:            e.ExactLPI(),
		RemoteFraction:      metrics.RemoteFraction(p.ml, p.mr),
		Imbalance:           metrics.ImbalanceFactor(p.perDomain),
		SimTime:             e.TotalTime(),
		ROITime:             e.TimeSince(proc.ROIMark),
	}
	var overhead units.Cycles
	for _, th := range e.Threads() {
		overhead += th.Overhead()
	}
	t.Overhead = overhead

	t.LPI, t.LPIInsufficient = p.estimateLPI(caps)
	best := t.LPI
	if math.IsNaN(best) {
		best = t.LPIExact
	}
	t.Significant = metrics.Significant(best)
	return t
}

// snapshotTopK resolves the per-snapshot hot-variable bound.
func (p *profiler) snapshotTopK() int {
	if p.cfg.SnapshotTopK > 0 {
		return p.cfg.SnapshotTopK
	}
	return 5
}

// estimatorCaps returns the capability row the estimators key off: the
// *configured* mechanism's, even after a mid-run fallback — matching
// finish's accounting, so mid-run estimates use the same equations the
// final Totals will.
func (p *profiler) estimatorCaps() pmu.Capability {
	if p.faulty != nil {
		return p.faulty.Inner().Caps()
	}
	return p.mon.Mechanism().Caps()
}

// liveSnapshot captures the in-flight aggregates into a Snapshot: the
// same quantities buildTotals derives at the end of the run, estimated
// over the samples collected so far. Pure read — the profiler's state
// and the eventual profile bytes are untouched.
func (p *profiler) liveSnapshot() progress.Snapshot {
	s := progress.Snapshot{
		Epoch:               p.epoch,
		SimTime:             p.engine.TotalTime(),
		Samples:             p.samples,
		SampledInstructions: float64(p.mon.SampledInstructions()),
		Ml:                  p.ml,
		Mr:                  p.mr,
		RemoteFraction:      metrics.RemoteFraction(p.ml, p.mr),
		Imbalance:           metrics.ImbalanceFactor(p.perDomain),
		PerDomain:           append([]float64(nil), p.perDomain...),
	}
	if lpi, insufficient := p.estimateLPI(p.estimatorCaps()); !math.IsNaN(lpi) && !insufficient {
		s.LPI, s.LPIValid = lpi, true
	}
	// Hottest variables by sampled remote latency — the final
	// report's ordering (see finish) applied to the live aggregates.
	aggs := make([]*varAgg, 0, len(p.varAggs))
	for _, a := range p.varAggs {
		aggs = append(aggs, a)
	}
	sort.Slice(aggs, func(i, j int) bool {
		if aggs[i].rlat != aggs[j].rlat {
			return aggs[i].rlat > aggs[j].rlat
		}
		if aggs[i].mr != aggs[j].mr {
			return aggs[i].mr > aggs[j].mr
		}
		return aggs[i].v.Name < aggs[j].v.Name
	})
	k := p.snapshotTopK()
	for _, a := range aggs {
		if len(s.TopVars) == k {
			break
		}
		ve := progress.VarEstimate{
			Name:    a.v.Name,
			Kind:    a.v.Kind.String(),
			Samples: a.samples,
			Ml:      a.ml,
			Mr:      a.mr,
		}
		if a.samples > 0 {
			ve.LPI = float64(a.rlat) / a.samples
		}
		if p.sampledRLat > 0 {
			ve.RemoteLatShare = float64(a.rlat) / float64(p.sampledRLat)
		}
		if p.mr > 0 {
			ve.MrShare = a.mr / p.mr
		}
		s.TopVars = append(s.TopVars, ve)
	}
	return s
}

// finalSnapshot mirrors the completed profile's derived metrics into
// the stream's closing snapshot, so the final estimates a subscriber
// saw equal the stored profile's Totals and Vars exactly.
func (p *profiler) finalSnapshot(t Totals, vars []*VarProfile) progress.Snapshot {
	s := progress.Snapshot{
		Epoch:               p.epoch,
		SimTime:             t.SimTime,
		Samples:             t.Samples,
		SampledInstructions: t.SampledInstructions,
		Ml:                  t.Ml,
		Mr:                  t.Mr,
		RemoteFraction:      t.RemoteFraction,
		Imbalance:           t.Imbalance,
		PerDomain:           append([]float64(nil), t.PerDomain...),
	}
	if !math.IsNaN(t.LPI) && !t.LPIInsufficient {
		s.LPI, s.LPIValid = t.LPI, true
	}
	k := p.snapshotTopK()
	for _, v := range vars {
		if len(s.TopVars) == k {
			break
		}
		s.TopVars = append(s.TopVars, progress.VarEstimate{
			Name:           v.Var.Name,
			Kind:           v.Var.Kind.String(),
			Samples:        v.Samples,
			Ml:             v.Ml,
			Mr:             v.Mr,
			MrShare:        v.MrShare,
			RemoteLatShare: v.RemoteLatShare,
			LPI:            v.LPI,
		})
	}
	return s
}

// publishSnapshot stamps the sequence number, runs the convergence
// detector, hands the snapshot to the configured sink, and applies the
// converge-early policy: once the estimates converge mid-run, detach
// the monitor (no further samples, no further overhead charging) and
// record the stop in Health — the only path on which streaming state
// reaches the profile's bytes.
func (p *profiler) publishSnapshot(s progress.Snapshot, final bool) {
	p.snapSeq++
	s.Seq = p.snapSeq
	s.Final = final
	p.detector.Observe(&s)
	if p.cfg.OnSnapshot != nil {
		p.cfg.OnSnapshot(s)
	}
	if p.cfg.ConvergeEarly && s.Converged && !final && !p.stoppedEarly {
		p.stoppedEarly = true
		p.mon.StopSampling()
		p.health.EarlyStop = true
		p.health.EarlyStopEpoch = p.epoch
		p.health.EarlyStopAt = p.engine.TotalTime()
	}
}

// estimateLPI evaluates the mechanism's lpi_NUMA estimator over the
// samples collected so far — at the end of the run for Totals, mid-run
// for progress snapshots, with identical semantics. Returns
// (NaN, false) for mechanisms that measure no latency, and
// (0, true) when the estimator exists but too few usable samples
// reached it. Estimator inputs: on a hard sampler failure the fallback
// mechanism measures no latency, so the estimate comes from the window
// collected before the failure; quarantined samples are subtracted so
// garbage never reaches an equation.
func (p *profiler) estimateLPI(caps pmu.Capability) (lpi float64, insufficient bool) {
	remLat := p.mon.SampledRemoteLatency()
	instr := p.mon.SampledInstructions()
	remEvents := p.mon.SampledRemote()
	if p.fellBack {
		remLat, instr, remEvents = p.snapRemoteLat, p.snapInstr, p.snapRemote
	}
	remLat -= min(p.quarRemoteLat, remLat)
	instr -= min(p.quarInstr, instr)
	remEvents -= min(p.quarRemote, remEvents)

	e := p.engine
	var ok bool
	switch {
	case caps.SamplesAllInstructions && caps.MeasuresLatency:
		// Equation 2 (IBS).
		lpi, ok = metrics.LPIFromInstructionSamples(float64(remLat), instr)
		insufficient = !ok
		p.health.LPIWindowed = p.fellBack
	case caps.EventBased && caps.MeasuresLatency:
		// Equation 3 (PEBS-LL): average sampled remote latency times
		// the absolute remote-event rate. The engine's full remote
		// count plays the conventional counter.
		lpi, ok = metrics.LPIFromEventSamples(
			float64(remLat), remEvents,
			e.TotalRemoteAccesses(), e.TotalInstructions())
		insufficient = !ok
		p.health.LPIWindowed = p.fellBack
	default:
		lpi = math.NaN()
	}
	return lpi, insufficient
}
