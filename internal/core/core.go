// Package core is the reproduction of the paper's primary
// contribution: the HPCToolkit-NUMA profiler. It wires an
// address-sampling mechanism (internal/pmu) into the execution engine
// (internal/proc), collects address samples into augmented per-thread
// calling context trees, attributes them three ways — code-centric,
// data-centric, and address-centric (Section 5) — pinpoints first
// touches through page protection (Section 6), merges per-thread
// profiles with sum and [min,max] reductions (Section 7.2), and
// derives the NUMA metrics of Section 4 including lpi_NUMA by
// whichever estimator the mechanism supports.
//
// The top-level entry point is Analyze:
//
//	prof, err := core.Analyze(core.Config{
//		Machine:   topology.MagnyCours48(),
//		Mechanism: "IBS",
//	}, app)
//
// where app is any simulated program implementing App (the four paper
// benchmarks live in internal/workloads).
package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/addrcentric"
	"repro/internal/cache"
	"repro/internal/cct"
	"repro/internal/datacentric"
	"repro/internal/firsttouch"
	"repro/internal/interconnect"
	"repro/internal/isa"
	"repro/internal/mem"
	"repro/internal/metrics"
	"repro/internal/pmu"
	"repro/internal/proc"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/vm"
)

// App is a runnable simulated application.
type App interface {
	// Name identifies the application.
	Name() string
	// Binary returns the simulated executable: functions, sites, and
	// the static-variable symbol table. It must be safe to call
	// before Run and describe everything Run will execute.
	Binary() *isa.Program
	// Run executes the application on the engine. An App instance is
	// one-shot: construct a fresh instance for each run.
	Run(e *proc.Engine)
}

// Config selects the machine, team size, and monitoring setup.
type Config struct {
	// Machine to run on (required).
	Machine *topology.Machine
	// Threads is the team size; 0 means all CPUs.
	Threads int
	// Mechanism is the address-sampling back end: one of pmu.Names().
	// Empty means "IBS".
	Mechanism string
	// Period overrides the mechanism's scaled default sampling period.
	Period uint64
	// Bins overrides the per-variable bin count (0: default/env).
	Bins int
	// TrackFirstTouch enables page-protection first-touch pinpointing.
	TrackFirstTouch bool
	// CorrectOffByOne applies the online previous-instruction fix for
	// imprecise-IP mechanisms (PEBS). Profile always enables it for
	// mechanisms that need it.
	CorrectOffByOne bool

	// CacheConfig overrides the default cache geometry (zero value:
	// cache.DefaultConfig). Experiments shrink caches in proportion
	// to their scaled-down problem sizes.
	CacheConfig cache.Config
	// MemParams overrides the memory-controller model.
	MemParams mem.LatencyParams
	// FabricParams overrides the interconnect model.
	FabricParams interconnect.Params
	// Binding selects thread-to-CPU placement (compact or scatter).
	Binding proc.Binding
	// Trace additionally records every sample with its simulated
	// timestamp for time-varying analysis (internal/trace) — the
	// paper's Section 10 future-work item on trace-based measurement.
	Trace bool
}

// Totals carries whole-program measurements and derived metrics.
type Totals struct {
	// Sampled quantities.
	Samples             float64
	SampledInstructions float64 // I^s
	Ml, Mr              float64
	PerDomain           []float64
	SampledLatency      units.Cycles
	SampledRemoteLat    units.Cycles // l^s_NUMA

	// Absolute counters (the "conventional PMU counters").
	Instructions uint64
	MemAccesses  uint64

	// LPI is lpi_NUMA by the mechanism's estimator (Equation 2 for
	// instruction samplers with latency, Equation 3 for event
	// samplers with latency). NaN when the mechanism cannot estimate
	// it (no latency measurement).
	LPI float64
	// LPIExact is Equation 1 computed from full execution counts —
	// available only because our substrate is a simulator; the real
	// tool cannot observe it and relies on the estimators.
	LPIExact float64
	// Significant applies the 0.1 cycles/instruction rule of thumb to
	// the best available lpi value.
	Significant bool

	// RemoteFraction is M_r / (M_l + M_r).
	RemoteFraction float64
	// Imbalance is max/mean of PerDomain.
	Imbalance float64

	// SimTime is the simulated program runtime under monitoring.
	SimTime units.Cycles
	// ROITime is the time spent after the workload's proc.ROIMark —
	// the measured phase (equals SimTime when no mark was set).
	ROITime units.Cycles
	// Overhead is the monitoring cost charged to threads.
	Overhead units.Cycles
}

// BinStats aggregates samples falling in one bin of a variable.
type BinStats struct {
	Index     int
	Lo, Hi    uint64 // address sub-range
	Ml, Mr    float64
	Samples   float64
	Latency   units.Cycles
	RemoteLat units.Cycles
}

// VarProfile aggregates data-centric attribution for one variable.
type VarProfile struct {
	Var *datacentric.Variable

	Samples   float64
	Ml, Mr    float64
	PerDomain []float64
	Latency   units.Cycles
	RemoteLat units.Cycles

	// LPI is the variable's NUMA latency per sampled access touching
	// it: the per-variable analog of Equation 2 the viewer shows next
	// to each variable.
	LPI float64
	// RemoteLatShare is this variable's share of the program's total
	// sampled remote latency (the paper's "z accounts for 11.3% of
	// the total latency caused by remote accesses").
	RemoteLatShare float64
	// MrShare is this variable's share of total M_r.
	MrShare float64

	Bins []BinStats

	// First-touch pinpointing results (when enabled).
	FirstTouchThreads []int
	FirstTouchPath    []proc.Frame
	ProtectedPages    int
}

// Profile is the analysis result: the merged augmented CCT, per
// variable data-centric profiles, address-centric patterns, and
// program totals.
type Profile struct {
	AppName   string
	Machine   *topology.Machine
	Mechanism string
	Caps      pmu.Capability
	Period    uint64

	// Tree is the merged augmented CCT: code-centric call paths under
	// the access dummy node, allocation paths under the allocation
	// dummy node, first-touch paths under the first-touch dummy node.
	Tree *cct.Tree
	// PerThreadTrees holds the unmerged per-thread access trees, as
	// hpcrun wrote them before the hpcprof merge.
	PerThreadTrees []*cct.Tree

	// Vars is sorted by descending sampled remote latency.
	Vars []*VarProfile

	// Patterns exposes address-centric access patterns per variable
	// and scope.
	Patterns *addrcentric.Tracker
	// FirstTouch exposes raw first-touch events (nil unless enabled).
	FirstTouch *firsttouch.Recorder
	// Registry exposes the variable registry for lookups.
	Registry *datacentric.Registry
	// Timeline holds time-stamped samples when Config.Trace was set
	// (nil otherwise).
	Timeline *trace.Timeline
	// Binary is the profiled program's static description.
	Binary *isa.Program

	Totals Totals
}

// VarByName finds a variable profile by name.
func (p *Profile) VarByName(name string) (*VarProfile, bool) {
	for _, v := range p.Vars {
		if v.Var.Name == name {
			return v, true
		}
	}
	return nil, false
}

// Analyze runs app under the configured monitoring and returns its
// Profile. It is the whole pipeline of Section 7: hpcrun (online
// collection), hpcprof (offline merge), and the derived-metric
// computation, in one call.
func Analyze(cfg Config, app App) (*Profile, error) {
	if cfg.Machine == nil {
		return nil, fmt.Errorf("core: Config.Machine is required")
	}
	name := cfg.Mechanism
	if name == "" {
		name = "IBS"
	}
	mech, err := pmu.ByName(name, cfg.Period)
	if err != nil {
		return nil, err
	}
	prog := app.Binary()
	e := proc.NewEngine(proc.Config{
		Machine:      cfg.Machine,
		Program:      prog,
		Threads:      cfg.Threads,
		CacheConfig:  cfg.CacheConfig,
		MemParams:    cfg.MemParams,
		FabricParams: cfg.FabricParams,
		Binding:      cfg.Binding,
	})

	p := newProfiler(cfg, e, prog)
	e.AddHook(p)
	mon := pmu.NewMonitor(mech, prog, p.onSample)
	mon.CorrectOffByOne = cfg.CorrectOffByOne || !mech.Caps().PreciseIP
	e.AddHook(mon)

	app.Run(e)

	return p.finish(app.Name(), mon), nil
}

// Run executes app on cfg's machine with no monitoring attached and
// returns the engine, for baseline timing and exact-metric validation.
func Run(cfg Config, app App) (*proc.Engine, error) {
	if cfg.Machine == nil {
		return nil, fmt.Errorf("core: Config.Machine is required")
	}
	e := proc.NewEngine(proc.Config{
		Machine:      cfg.Machine,
		Program:      app.Binary(),
		Threads:      cfg.Threads,
		CacheConfig:  cfg.CacheConfig,
		MemParams:    cfg.MemParams,
		FabricParams: cfg.FabricParams,
		Binding:      cfg.Binding,
	})
	app.Run(e)
	return e, nil
}

// Overhead holds one Table 2 measurement: baseline vs monitored
// simulated runtime.
type Overhead struct {
	Base, Monitored units.Cycles
}

// Percent returns the monitoring overhead as a fraction of baseline
// (0.24 means +24%).
func (o Overhead) Percent() float64 {
	if o.Base == 0 {
		return 0
	}
	return float64(o.Monitored-o.Base) / float64(o.Base)
}

// MeasureOverhead runs the app twice — unmonitored and monitored — and
// returns both runtimes. makeApp must return a fresh one-shot App per
// call.
func MeasureOverhead(cfg Config, makeApp func() App) (Overhead, error) {
	base, err := Run(cfg, makeApp())
	if err != nil {
		return Overhead{}, err
	}
	prof, err := Analyze(cfg, makeApp())
	if err != nil {
		return Overhead{}, err
	}
	return Overhead{Base: base.TotalTime(), Monitored: prof.Totals.SimTime}, nil
}

// profiler is the online collector: a proc.Hook that tracks
// allocations, regions, and first touches, and the sample sink for the
// PMU monitor.
type profiler struct {
	proc.BaseHook
	cfg    Config
	engine *proc.Engine
	prog   *isa.Program

	registry *datacentric.Registry
	patterns *addrcentric.Tracker
	ft       *firsttouch.Recorder
	timeline *trace.Timeline

	// Per-thread access CCTs (hpcrun's per-thread profiles).
	trees []*cct.Tree

	// Per-variable aggregation, keyed by allocation id.
	varAggs map[int]*varAgg

	// Whole-program sampled totals.
	samples     float64
	ml, mr      float64
	perDomain   []float64
	sampledLat  units.Cycles
	sampledRLat units.Cycles
}

type varAgg struct {
	v         *datacentric.Variable
	samples   float64
	ml, mr    float64
	perDomain []float64
	lat, rlat units.Cycles
	bins      []BinStats
}

func newProfiler(cfg Config, e *proc.Engine, prog *isa.Program) *profiler {
	p := &profiler{
		cfg:       cfg,
		engine:    e,
		prog:      prog,
		registry:  datacentric.NewRegistry(cfg.Bins),
		patterns:  addrcentric.NewTracker(),
		varAggs:   make(map[int]*varAgg),
		perDomain: make([]float64, e.Machine().NumDomains()),
	}
	for i := 0; i < e.NumThreads(); i++ {
		p.trees = append(p.trees, cct.New())
	}
	if cfg.TrackFirstTouch {
		p.ft = firsttouch.New(e)
	}
	if cfg.Trace {
		p.timeline = trace.New()
	}
	// Register symbol-table statics (Section 5.1: "identifies address
	// ranges associated with static variables by reading symbols in
	// the executable"). With first-touch tracking on, their pages are
	// protected now — "when the executable ... is loaded before
	// execution begins" — implementing the extension the paper lists
	// as future work (Section 10).
	for i, sv := range prog.Statics() {
		r := e.StaticRegion(i)
		p.registry.AddStatic(sv.Name, r)
		if p.ft != nil {
			p.ft.Protect(r)
		}
	}
	return p
}

// OnAlloc implements proc.Hook: track the heap variable with its full
// allocation call path, and arm first-touch trapping.
func (p *profiler) OnAlloc(t *proc.Thread, site isa.SiteID, r vm.Region, name string) {
	p.registry.AddHeap(name, r, site, t.ID, t.CallPath())
	if p.ft != nil {
		p.ft.Protect(r)
	}
}

// OnStackAlloc implements proc.Hook: stack variables are tracked like
// heap ones under the Stack kind (the Section 10 extension), including
// first-touch trapping.
func (p *profiler) OnStackAlloc(t *proc.Thread, site isa.SiteID, r vm.Region, name string) {
	p.registry.AddStack(name, r, site, t.ID, t.CallPath())
	if p.ft != nil {
		p.ft.Protect(r)
	}
}

// OnFree implements proc.Hook.
func (p *profiler) OnFree(_ *proc.Thread, r vm.Region) {
	p.registry.Remove(r)
}

// OnRegionBegin implements proc.Hook: scope address-centric patterns
// to the region.
func (p *profiler) OnRegionBegin(name string, _ []*proc.Thread) {
	p.patterns.EnterRegion(name)
}

// OnRegionEnd implements proc.Hook.
func (p *profiler) OnRegionEnd(string) {
	p.patterns.LeaveRegion()
}

// onSample is the PMU monitor's callback: attribute one address sample.
func (p *profiler) onSample(s *pmu.Sample) {
	p.samples++
	if !s.HasEA {
		return // non-memory sample: counts toward I^s only
	}
	t := p.engine.Threads()[s.ThreadID]
	local := p.engine.Machine().DomainOfCPU(s.CPU)

	// Code-centric attribution: unwind the call stack, insert the
	// path + site leaf into the thread's tree.
	tree := p.trees[s.ThreadID]
	keys := make([]cct.Key, 0, t.Depth()+2)
	keys = append(keys, cct.DummyKey(cct.DummyAccess))
	for _, fr := range t.CallPath() {
		keys = append(keys, cct.FrameKey(fr.Fn, fr.CallLine))
	}
	if s.IP != isa.NoSite {
		keys = append(keys, cct.SiteKey(s.IP))
	}
	node := tree.Root().InsertPath(keys)
	node.AddMetric(metrics.Samples, 1)

	match := s.Home == local && s.Home != topology.NoDomain
	if match {
		node.AddMetric(metrics.Match, 1)
		p.ml++
	} else {
		node.AddMetric(metrics.Mismatch, 1)
		p.mr++
	}
	if s.Home >= 0 && int(s.Home) < len(p.perDomain) {
		node.AddMetric(metrics.Node(int(s.Home)), 1)
		p.perDomain[s.Home]++
	}
	if s.HasLatency {
		node.AddMetric(metrics.Latency, float64(s.Latency))
		p.sampledLat += s.Latency
		if s.Source.IsRemote() {
			node.AddMetric(metrics.RemoteLatency, float64(s.Latency))
			p.sampledRLat += s.Latency
		}
	}

	// Data-centric attribution: resolve the EA to its variable.
	if !s.RegionValid {
		return
	}
	v, ok := p.registry.Resolve(s.Region)
	if !ok {
		return
	}
	agg := p.varAggs[v.Region.ID]
	if agg == nil {
		agg = &varAgg{v: v, perDomain: make([]float64, len(p.perDomain))}
		for b := 0; b < v.Bins; b++ {
			lo, hi := v.BinRange(b)
			agg.bins = append(agg.bins, BinStats{Index: b, Lo: lo, Hi: hi})
		}
		p.varAggs[v.Region.ID] = agg
	}
	agg.samples++
	bin := &agg.bins[v.BinOf(s.EA)]
	bin.Samples++
	if match {
		agg.ml++
		bin.Ml++
	} else {
		agg.mr++
		bin.Mr++
	}
	if s.Home >= 0 && int(s.Home) < len(agg.perDomain) {
		agg.perDomain[s.Home]++
	}
	if s.HasLatency {
		agg.lat += s.Latency
		bin.Latency += s.Latency
		if s.Source.IsRemote() {
			agg.rlat += s.Latency
			bin.RemoteLat += s.Latency
		}
	}

	// Address-centric attribution: per-thread [min,max] in the whole
	// program and the current region scope.
	var lat units.Cycles
	if s.HasLatency {
		lat = s.Latency
	}
	p.patterns.Record(v, s.ThreadID, s.EA, lat)

	// Trace-based measurement: keep the time-stamped sample.
	if p.timeline != nil {
		p.timeline.Record(trace.Event{
			Time:    p.engine.Now(t),
			Thread:  s.ThreadID,
			Var:     v.Name,
			EA:      s.EA,
			Remote:  !match,
			Latency: lat,
		})
	}
}

// finish merges per-thread trees, grafts data-centric and first-touch
// subtrees, computes derived metrics, and packages the Profile.
func (p *profiler) finish(appName string, mon *pmu.Monitor) *Profile {
	mech := mon.Mechanism()
	caps := mech.Caps()

	// hpcprof: merge per-thread trees into the global augmented CCT.
	global := cct.New()
	for _, tr := range p.trees {
		cct.MergeTrees(global, tr)
	}

	// Graft data-centric subtrees: allocation path -> alloc site ->
	// variable -> bins.
	allocRoot := global.Root().Child(cct.DummyKey(cct.DummyAlloc))
	var vars []*VarProfile
	for _, agg := range p.varAggs {
		vp := p.buildVarProfile(agg)
		vars = append(vars, vp)

		keys := make([]cct.Key, 0, len(agg.v.AllocPath)+2)
		for _, fr := range agg.v.AllocPath {
			keys = append(keys, cct.FrameKey(fr.Fn, fr.CallLine))
		}
		if agg.v.Kind == datacentric.Heap && agg.v.AllocSite != isa.NoSite {
			keys = append(keys, cct.SiteKey(agg.v.AllocSite))
		}
		keys = append(keys, cct.VariableKey(agg.v.Name))
		vnode := allocRoot.InsertPath(keys)
		vnode.AddMetric(metrics.Samples, agg.samples)
		vnode.AddMetric(metrics.Match, agg.ml)
		vnode.AddMetric(metrics.Mismatch, agg.mr)
		vnode.AddMetric(metrics.Latency, float64(agg.lat))
		vnode.AddMetric(metrics.RemoteLatency, float64(agg.rlat))
		for d, n := range agg.perDomain {
			if n > 0 {
				vnode.AddMetric(metrics.Node(d), n)
			}
		}
		if pat, ok := p.patterns.Pattern(agg.v, addrcentric.WholeProgram); ok {
			for _, tr := range pat.Threads() {
				vnode.ExtendRange(tr.Thread, tr.Range.Min)
				vnode.ExtendRange(tr.Thread, tr.Range.Max)
			}
		}
		for _, b := range vp.Bins {
			if b.Samples == 0 {
				continue
			}
			bnode := vnode.Child(cct.BinKey(agg.v.Name, b.Index))
			bnode.AddMetric(metrics.Samples, b.Samples)
			bnode.AddMetric(metrics.Match, b.Ml)
			bnode.AddMetric(metrics.Mismatch, b.Mr)
			bnode.AddMetric(metrics.Latency, float64(b.Latency))
			bnode.AddMetric(metrics.RemoteLatency, float64(b.RemoteLat))
		}
	}
	sort.Slice(vars, func(i, j int) bool {
		if vars[i].RemoteLat != vars[j].RemoteLat {
			return vars[i].RemoteLat > vars[j].RemoteLat
		}
		if vars[i].Mr != vars[j].Mr {
			return vars[i].Mr > vars[j].Mr
		}
		return vars[i].Var.Name < vars[j].Var.Name
	})

	// Graft first-touch subtrees.
	if p.ft != nil {
		for _, vp := range vars {
			sub := p.ft.MergedPaths(vp.Var.Region)
			cct.MergeTrees(global, sub)
		}
	}

	totals := p.buildTotals(mon, caps)
	return &Profile{
		AppName:        appName,
		Machine:        p.engine.Machine(),
		Mechanism:      mech.Name(),
		Caps:           caps,
		Period:         mech.Period(),
		Tree:           global,
		PerThreadTrees: p.trees,
		Vars:           vars,
		Patterns:       p.patterns,
		FirstTouch:     p.ft,
		Registry:       p.registry,
		Timeline:       p.timeline,
		Binary:         p.prog,
		Totals:         totals,
	}
}

func (p *profiler) buildVarProfile(agg *varAgg) *VarProfile {
	vp := &VarProfile{
		Var:       agg.v,
		Samples:   agg.samples,
		Ml:        agg.ml,
		Mr:        agg.mr,
		PerDomain: agg.perDomain,
		Latency:   agg.lat,
		RemoteLat: agg.rlat,
		Bins:      agg.bins,
	}
	if agg.samples > 0 {
		vp.LPI = float64(agg.rlat) / agg.samples
	}
	if p.sampledRLat > 0 {
		vp.RemoteLatShare = float64(agg.rlat) / float64(p.sampledRLat)
	}
	if p.mr > 0 {
		vp.MrShare = agg.mr / p.mr
	}
	if p.ft != nil {
		vp.FirstTouchThreads = p.ft.TouchingThreads(agg.v.Region)
		vp.ProtectedPages = p.ft.ProtectedPages(agg.v.Region)
		if path, ok := p.ft.FirstTouchLocation(agg.v.Region); ok {
			vp.FirstTouchPath = path
		}
	}
	return vp
}

func (p *profiler) buildTotals(mon *pmu.Monitor, caps pmu.Capability) Totals {
	e := p.engine
	t := Totals{
		Samples:             p.samples,
		SampledInstructions: float64(mon.SampledInstructions()),
		Ml:                  p.ml,
		Mr:                  p.mr,
		PerDomain:           p.perDomain,
		SampledLatency:      p.sampledLat,
		SampledRemoteLat:    p.sampledRLat,
		Instructions:        e.TotalInstructions(),
		MemAccesses:         e.TotalMemAccesses(),
		LPIExact:            e.ExactLPI(),
		RemoteFraction:      metrics.RemoteFraction(p.ml, p.mr),
		Imbalance:           metrics.ImbalanceFactor(p.perDomain),
		SimTime:             e.TotalTime(),
		ROITime:             e.TimeSince(proc.ROIMark),
	}
	var overhead units.Cycles
	for _, th := range e.Threads() {
		overhead += th.Overhead()
	}
	t.Overhead = overhead

	switch {
	case caps.SamplesAllInstructions && caps.MeasuresLatency:
		// Equation 2 (IBS).
		t.LPI = metrics.LPIFromInstructionSamples(
			float64(mon.SampledRemoteLatency()), mon.SampledInstructions())
	case caps.EventBased && caps.MeasuresLatency:
		// Equation 3 (PEBS-LL): average sampled remote latency times
		// the absolute remote-event rate. The engine's full remote
		// count plays the conventional counter.
		t.LPI = metrics.LPIFromEventSamples(
			float64(mon.SampledRemoteLatency()), mon.SampledRemote(),
			e.TotalRemoteAccesses(), e.TotalInstructions())
	default:
		t.LPI = math.NaN()
	}
	best := t.LPI
	if math.IsNaN(best) {
		best = t.LPIExact
	}
	t.Significant = metrics.Significant(best)
	return t
}
