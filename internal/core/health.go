// Profile health: the graceful-degradation ledger. A production
// profiler loses samples, sees samplers stall or die, and merges
// incomplete sets of per-thread measurement files; the honest response
// is to keep going, salvage what survives, and account for every loss
// so the analyst can judge how far to trust the numbers. Health is that
// account, populated during collection and rendered by internal/view
// and both CLIs.
package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/units"
)

// Health records everything the pipeline lost, repaired, or worked
// around during one profiling run. The zero value means a fully healthy
// run.
type Health struct {
	// Plan is the active fault plan in faults.ParsePlan syntax; empty
	// when no faults were injected.
	Plan string `json:"plan,omitempty"`

	// SamplesFired counts samples the sampler decided to take;
	// SamplesDelivered counts those that reached the profiler. The
	// delivery identity SamplesFired == SamplesDelivered +
	// SamplesDropped + LostToStall + LostToFailure always holds (see
	// Accounted).
	SamplesFired     uint64 `json:"samples_fired,omitempty"`
	SamplesDelivered uint64 `json:"samples_delivered,omitempty"`
	SamplesDropped   uint64 `json:"samples_dropped,omitempty"`
	LostToStall      uint64 `json:"lost_to_stall,omitempty"`
	LostToFailure    uint64 `json:"lost_to_failure,omitempty"`

	// Injected corruption, as reported by the injector.
	InjectedCorruptEA uint64 `json:"injected_corrupt_ea,omitempty"`
	InjectedIPSkid    uint64 `json:"injected_ip_skid,omitempty"`
	InjectedGarbleLat uint64 `json:"injected_garble_lat,omitempty"`

	// Quarantine counters: delivered samples the profiler's validator
	// rejected instead of attributing (and instead of crashing).
	QuarantinedEA      uint64 `json:"quarantined_ea,omitempty"`
	QuarantinedCPU     uint64 `json:"quarantined_cpu,omitempty"`
	QuarantinedIP      uint64 `json:"quarantined_ip,omitempty"`
	QuarantinedLatency uint64 `json:"quarantined_latency,omitempty"`

	// Sampler supervision: stall episodes, restart attempts, and the
	// total simulated time spent backing off between them.
	SamplerStalls  uint64       `json:"sampler_stalls,omitempty"`
	SamplerRetries uint64       `json:"sampler_retries,omitempty"`
	BackoffCycles  units.Cycles `json:"backoff_cycles,omitempty"`

	// Fallback names the replacement mechanism installed after a hard
	// sampler failure (Soft-IBS, the software sampler that needs no
	// PMU); empty if the configured sampler survived. FallbackAt is
	// the simulated time of the switch.
	Fallback   string       `json:"fallback,omitempty"`
	FallbackAt units.Cycles `json:"fallback_at,omitempty"`

	// LPIWindowed reports that lpi_NUMA was estimated from the
	// samples collected before the sampler failed (the fallback
	// mechanism cannot measure latency).
	LPIWindowed bool `json:"lpi_windowed,omitempty"`

	// Per-thread profile coverage for the merge: ThreadsTotal
	// profiles existed, ThreadsLost were missing or unreadable, and
	// the merged tree sums over the survivors only.
	ThreadsTotal int   `json:"threads_total,omitempty"`
	ThreadsLost  []int `json:"threads_lost,omitempty"`

	// FileDamage lists sections a lenient measurement-file load could
	// not recover (filled by profio.LoadLenient, empty for live
	// profiles and clean loads).
	FileDamage []string `json:"file_damage,omitempty"`

	// Early-stop ledger (Config.ConvergeEarly): sampling detached at
	// EarlyStopEpoch (simulated time EarlyStopAt) once the live
	// estimates converged. The run itself completed; the sampled
	// metrics describe the pre-stop window only, and the profile is
	// intentionally not byte-identical to a full-sampling run's.
	EarlyStop      bool         `json:"early_stop,omitempty"`
	EarlyStopEpoch int          `json:"early_stop_epoch,omitempty"`
	EarlyStopAt    units.Cycles `json:"early_stop_at,omitempty"`
}

// Quarantined returns the total number of quarantined samples.
func (h *Health) Quarantined() uint64 {
	return h.QuarantinedEA + h.QuarantinedCPU + h.QuarantinedIP + h.QuarantinedLatency
}

// Degraded reports whether anything at all was lost, quarantined,
// retried, salvaged, or worked around.
func (h *Health) Degraded() bool {
	return h.SamplesDropped > 0 || h.LostToStall > 0 || h.LostToFailure > 0 ||
		h.Quarantined() > 0 || h.SamplerStalls > 0 || h.SamplerRetries > 0 ||
		h.Fallback != "" || len(h.ThreadsLost) > 0 || len(h.FileDamage) > 0 ||
		h.InjectedCorruptEA > 0 || h.InjectedIPSkid > 0 || h.InjectedGarbleLat > 0 ||
		h.EarlyStop
}

// Accounted verifies the delivery identity: every sample the sampler
// fired is either delivered or attributed to a specific loss cause.
func (h *Health) Accounted() bool {
	return h.SamplesFired == h.SamplesDelivered+h.SamplesDropped+h.LostToStall+h.LostToFailure
}

// ThreadCoverage returns the fraction of per-thread profiles that
// survived to the merge (1 when nothing was lost).
func (h *Health) ThreadCoverage() float64 {
	if h.ThreadsTotal == 0 {
		return 1
	}
	return float64(h.ThreadsTotal-len(h.ThreadsLost)) / float64(h.ThreadsTotal)
}

// SurvivingThreads lists the thread ids whose profiles made the merge.
func (h *Health) SurvivingThreads() []int {
	lost := make(map[int]bool, len(h.ThreadsLost))
	for _, t := range h.ThreadsLost {
		lost[t] = true
	}
	var out []int
	for t := 0; t < h.ThreadsTotal; t++ {
		if !lost[t] {
			out = append(out, t)
		}
	}
	sort.Ints(out)
	return out
}

// Summary renders the health block as a short multi-line report; the
// empty string when the run was fully healthy.
func (h *Health) Summary() string {
	if !h.Degraded() {
		return ""
	}
	var b strings.Builder
	b.WriteString("pipeline health: DEGRADED")
	if h.Plan != "" {
		fmt.Fprintf(&b, " (chaos plan %s)", h.Plan)
	}
	b.WriteString("\n")
	if h.SamplesFired > 0 {
		fmt.Fprintf(&b, "  samples: fired %d, delivered %d, dropped %d, lost to stall %d, lost to failure %d",
			h.SamplesFired, h.SamplesDelivered, h.SamplesDropped, h.LostToStall, h.LostToFailure)
		if h.Accounted() {
			b.WriteString("  [all accounted]\n")
		} else {
			b.WriteString("  [ACCOUNTING MISMATCH]\n")
		}
	}
	if q := h.Quarantined(); q > 0 {
		fmt.Fprintf(&b, "  quarantined %d (bad EA %d, bad CPU %d, bad IP %d, bad latency %d)\n",
			q, h.QuarantinedEA, h.QuarantinedCPU, h.QuarantinedIP, h.QuarantinedLatency)
	}
	if h.SamplerStalls > 0 || h.SamplerRetries > 0 {
		fmt.Fprintf(&b, "  sampler stalls %d, retries %d, backoff %d cycles\n",
			h.SamplerStalls, h.SamplerRetries, uint64(h.BackoffCycles))
	}
	if h.Fallback != "" {
		fmt.Fprintf(&b, "  sampler hard failure: fell back to %s at cycle %d\n",
			h.Fallback, uint64(h.FallbackAt))
	}
	if h.LPIWindowed {
		b.WriteString("  lpi_NUMA estimated from the pre-failure sample window\n")
	}
	if len(h.ThreadsLost) > 0 {
		fmt.Fprintf(&b, "  thread coverage %d/%d (lost profiles: %v)\n",
			h.ThreadsTotal-len(h.ThreadsLost), h.ThreadsTotal, h.ThreadsLost)
	}
	for _, d := range h.FileDamage {
		fmt.Fprintf(&b, "  measurement file: %s\n", d)
	}
	if h.EarlyStop {
		fmt.Fprintf(&b, "  sampling stopped at convergence (epoch %d, cycle %d); metrics cover the converged window\n",
			h.EarlyStopEpoch, uint64(h.EarlyStopAt))
	}
	return b.String()
}
