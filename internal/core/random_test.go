package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/isa"
	"repro/internal/omp"
	"repro/internal/pmu"
	"repro/internal/proc"
	"repro/internal/units"
	"repro/internal/vm"
)

// randomApp is a pseudo-random but fully deterministic program: random
// allocations under random policies, random loop nests under random
// schedules, frees, stack variables, and mixed access strides. It
// drives the whole pipeline through corners no hand-written workload
// visits.
type randomApp struct {
	prog *isa.Program
	seed int64

	fnMain isa.FuncID
	fns    []isa.FuncID
	sites  []isa.SiteID
}

func newRandomApp(seed int64) *randomApp {
	a := &randomApp{seed: seed}
	p := isa.NewProgram(fmt.Sprintf("random-%d", seed))
	a.fnMain = p.AddFunc("main", "rand.c", 1)
	for i := 0; i < 6; i++ {
		fn := p.AddFunc(fmt.Sprintf("region%d._omp", i), "rand.c", 10*(i+1))
		a.fns = append(a.fns, fn)
		for j := 0; j < 3; j++ {
			kind := isa.KindLoad
			if j == 2 {
				kind = isa.KindStore
			}
			a.sites = append(a.sites, p.AddSite(fn, 10*(i+1)+j, kind))
		}
	}
	// One static variable sometimes used.
	p.AddStatic("static_tbl", 16*uint64(units.PageSize))
	a.prog = p
	return a
}

func (a *randomApp) Name() string         { return a.prog.Name }
func (a *randomApp) Binary() *isa.Program { return a.prog }

func (a *randomApp) Run(e *proc.Engine) {
	rng := rand.New(rand.NewSource(a.seed))
	doms := e.Machine().NumDomains()

	// Random allocations.
	type alloc struct {
		r     vm.Region
		freed bool
	}
	var allocs []alloc
	nAllocs := 2 + rng.Intn(4)
	omp.Serial(e, a.fnMain, "main", func(c *proc.Ctx) {
		for i := 0; i < nAllocs; i++ {
			size := uint64(1+rng.Intn(64)) * 4096
			var pol vm.Policy
			switch rng.Intn(4) {
			case 0:
				pol = vm.Interleaved{}
			case 1:
				pol = vm.OnNode{Domain: 0}
			case 2:
				var ds []int
				_ = ds
				pol = nil // first touch
			default:
				pol = nil
			}
			allocs = append(allocs, alloc{r: c.Alloc(a.sites[0], fmt.Sprintf("v%d", i), size, pol)})
		}
	})
	_ = doms

	// Random regions over the allocations.
	nRegions := 2 + rng.Intn(5)
	for reg := 0; reg < nRegions; reg++ {
		fn := a.fns[rng.Intn(len(a.fns))]
		site := a.sites[rng.Intn(len(a.sites))]
		ai := rng.Intn(len(allocs))
		if allocs[ai].freed {
			continue
		}
		target := allocs[ai].r
		stride := uint64(8 << rng.Intn(4)) // 8..64
		iters := 200 + rng.Intn(800)
		var sched omp.Schedule
		switch rng.Intn(3) {
		case 0:
			sched = omp.Static{}
		case 1:
			sched = omp.Cyclic{Chunk: 1 + rng.Intn(4)}
		default:
			sched = omp.Dynamic{Chunk: 1 + rng.Intn(8), Seed: uint64(reg)}
		}
		serial := rng.Intn(4) == 0
		if serial {
			omp.Serial(e, fn, fmt.Sprintf("serial%d", reg), func(c *proc.Ctx) {
				for i := 0; i < iters; i++ {
					addr := target.Base + (uint64(i)*stride)%target.Size
					if i%3 == 0 {
						c.Store(site, addr)
					} else {
						c.Load(site, addr)
					}
				}
				// Occasionally use a stack variable inside a frame.
				if rng.Intn(2) == 0 {
					c.Call(fn, 1, func() {
						s := c.AllocStack(site, "scratch", 2*4096)
						c.Store(site, s.Base)
						c.Load(site, s.Base)
					})
				}
			})
		} else {
			omp.ParallelFor(e, fn, fmt.Sprintf("par%d", reg), iters, sched, func(c *proc.Ctx, i int) {
				addr := target.Base + (uint64(i)*stride)%target.Size
				c.Load(site, addr)
				c.Compute(uint64(rng.Intn(3)) + 1)
			})
		}
		// Occasionally free an allocation mid-run.
		if rng.Intn(5) == 0 {
			fi := rng.Intn(len(allocs))
			if !allocs[fi].freed {
				omp.Serial(e, a.fnMain, "free", func(c *proc.Ctx) {
					c.Free(allocs[fi].r)
				})
				allocs[fi].freed = true
			}
		}
	}
}

// TestRandomProgramsInvariants drives randomized programs through every
// mechanism and checks pipeline-wide invariants: no panics, internally
// consistent counts, valid fractions, and bit-exact determinism.
func TestRandomProgramsInvariants(t *testing.T) {
	mechs := pmu.Names()
	for seed := int64(1); seed <= 12; seed++ {
		mech := mechs[int(seed)%len(mechs)]
		cfg := Config{
			Machine:         testMachine(),
			Mechanism:       mech,
			Period:          16,
			TrackFirstTouch: seed%2 == 0,
			Trace:           seed%3 == 0,
		}
		run := func() *Profile {
			prof, err := Analyze(cfg, newRandomApp(seed))
			if err != nil {
				t.Fatalf("seed %d (%s): %v", seed, mech, err)
			}
			return prof
		}
		p := run()

		// Counts are consistent.
		var domains float64
		for _, n := range p.Totals.PerDomain {
			if n < 0 {
				t.Fatalf("seed %d: negative domain count", seed)
			}
			domains += n
		}
		if domains != p.Totals.Ml+p.Totals.Mr {
			t.Fatalf("seed %d: per-domain sum %v != M_l+M_r %v",
				seed, domains, p.Totals.Ml+p.Totals.Mr)
		}
		if f := p.Totals.RemoteFraction; f < 0 || f > 1 {
			t.Fatalf("seed %d: remote fraction %v", seed, f)
		}
		if !math.IsNaN(p.Totals.LPI) && p.Totals.LPI < 0 {
			t.Fatalf("seed %d: negative lpi", seed)
		}
		for _, v := range p.Vars {
			if v.Ml < 0 || v.Mr < 0 || v.Samples != v.Ml+v.Mr {
				t.Fatalf("seed %d: %s inconsistent (%v, %v, %v)",
					seed, v.Var.Name, v.Ml, v.Mr, v.Samples)
			}
		}

		// Determinism: a second identical run matches exactly.
		q := run()
		if p.Totals.Samples != q.Totals.Samples || p.Totals.SimTime != q.Totals.SimTime ||
			p.Totals.Mr != q.Totals.Mr || p.Totals.LPIExact != q.Totals.LPIExact {
			t.Fatalf("seed %d (%s): nondeterministic totals:\n%+v\n%+v",
				seed, mech, p.Totals, q.Totals)
		}
	}
}
