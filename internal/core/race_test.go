package core

import (
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/sched"
	"repro/internal/topology"
)

// The scheduler runs whole Analyze cells concurrently. Each cell owns
// its engine, address space, caches, and profiler, but two things are
// deliberately shared read-only across cells: the topology.Machine (a
// preset handed to every cell of a sweep) and the App's isa.Program
// (append-only at construction, read-only during Run). This stress
// test runs N cells concurrently on exactly that shared state so the
// CI -race leg actually exercises the cross-cell sharing the audit
// signed off on — any mutation of Machine or Program during a run
// becomes a reported race.
func TestAnalyzeConcurrentCellsRace(t *testing.T) {
	m := topology.MagnyCours48() // one Machine for every cell

	// One Program shared by all cells; apps built on it only read.
	proto := newSerialInitApp(2048, 2)
	mkShared := func() App {
		a := newSerialInitApp(2048, 2)
		a.prog = proto.prog
		a.mainFn, a.initFn, a.workFn = proto.mainFn, proto.initFn, proto.workFn
		a.allocSite, a.initSite, a.loadSite = proto.allocSite, proto.initSite, proto.loadSite
		return a
	}

	cfg := Config{Machine: m, Mechanism: "IBS", TrackFirstTouch: true}
	const cells = 8
	profs, err := sched.MapWith(cells, cells, func(i int) (*Profile, error) {
		c := cfg
		if i == cells-1 {
			// One chaos cell rides along: the degraded pipeline shares
			// the same read-only state and must be just as race-free.
			// Dense sampling so the drops are certain to fire.
			c.Faults = &faults.Plan{Seed: 5, DropRate: 0.3, StallAfter: 500}
			c.Period = 32
		}
		return Analyze(c, mkShared())
	})
	if err != nil {
		t.Fatal(err)
	}

	// Identical cells must also produce identical totals — concurrency
	// may not leak into results.
	for i := 1; i < cells-1; i++ {
		if !reflect.DeepEqual(profs[0].Totals, profs[i].Totals) {
			t.Fatalf("cell %d totals diverged from cell 0:\n%+v\nvs\n%+v",
				i, profs[i].Totals, profs[0].Totals)
		}
	}
	if chaos := profs[cells-1]; !chaos.Health.Degraded() {
		t.Fatal("chaos cell should record degradation")
	}
}

// TestRunConcurrentSharedProgram covers the unmonitored path (core.Run
// is half of every MeasureOverhead cell) with the same shared Program.
func TestRunConcurrentSharedProgram(t *testing.T) {
	m := topology.MagnyCours48()
	proto := newSerialInitApp(1024, 2)
	cfg := Config{Machine: m}
	times, err := sched.MapWith(4, 4, func(int) (uint64, error) {
		a := newSerialInitApp(1024, 2)
		a.prog = proto.prog
		a.mainFn, a.initFn, a.workFn = proto.mainFn, proto.initFn, proto.workFn
		a.allocSite, a.initSite, a.loadSite = proto.allocSite, proto.initSite, proto.loadSite
		e, err := Run(cfg, a)
		if err != nil {
			return 0, err
		}
		return uint64(e.TotalTime()), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(times); i++ {
		if times[i] != times[0] {
			t.Fatalf("run %d simulated time %d != run 0's %d", i, times[i], times[0])
		}
	}
}

func TestOverheadPercentEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		ov   Overhead
		want float64
	}{
		{"zero base", Overhead{Base: 0, Monitored: 100}, 0},
		{"zero both", Overhead{}, 0},
		{"no overhead", Overhead{Base: 100, Monitored: 100}, 0},
		{"doubled", Overhead{Base: 100, Monitored: 200}, 1.0},
		{"monitored faster than base", Overhead{Base: 200, Monitored: 100}, -0.5},
	}
	for _, c := range cases {
		if got := c.ov.Percent(); got != c.want {
			t.Errorf("%s: Percent() = %v, want %v", c.name, got, c.want)
		}
	}
}
