package core

import (
	"bytes"
	"testing"

	"repro/internal/faults"
)

// chaosConfig returns the base config the chaos tests perturb.
func chaosConfig(plan *faults.Plan) Config {
	return Config{
		Machine:   testMachine(),
		Mechanism: "IBS",
		Period:    64,
		Faults:    plan,
	}
}

func TestCleanRunHealthy(t *testing.T) {
	prof := analyze(t, chaosConfig(nil), newSerialInitApp(2048, 2))
	if prof.Health.Degraded() {
		t.Fatalf("clean run reported degradation:\n%s", prof.Health.Summary())
	}
	if prof.Health.Summary() != "" {
		t.Fatal("healthy summary must be empty")
	}
	// A plan whose rates never fire still fills the delivery ledger:
	// every sample fired is delivered, and the run stays healthy.
	// (Deterministic: with seed 1 and a 1e-12 rate no draw ever hits.)
	counted := analyze(t, chaosConfig(&faults.Plan{Seed: 1, DropRate: 1e-12}),
		newSerialInitApp(2048, 2))
	h := &counted.Health
	if h.SamplesFired == 0 || h.SamplesFired != h.SamplesDelivered || !h.Accounted() {
		t.Fatalf("ledger %+v", h)
	}
	if h.Degraded() {
		t.Fatalf("no fault fired, so the run must stay healthy:\n%s", h.Summary())
	}
}

func TestChaosDropAccountingAndDeterminism(t *testing.T) {
	run := func() *Profile {
		return analyze(t, chaosConfig(&faults.Plan{Seed: 42, DropRate: 0.3}),
			newSerialInitApp(2048, 2))
	}
	a := run()
	if !a.Health.Degraded() || a.Health.SamplesDropped == 0 {
		t.Fatalf("drops not recorded: %+v", a.Health)
	}
	if !a.Health.Accounted() {
		t.Fatalf("delivery identity violated: %+v", a.Health)
	}
	if a.Totals.Samples != float64(a.Health.SamplesDelivered) {
		t.Errorf("attributed samples %v != delivered %d",
			a.Totals.Samples, a.Health.SamplesDelivered)
	}
	clean := analyze(t, chaosConfig(nil), newSerialInitApp(2048, 2))
	if a.Totals.Samples >= clean.Totals.Samples {
		t.Errorf("30%% drops should thin samples: %v vs clean %v",
			a.Totals.Samples, clean.Totals.Samples)
	}
	// Same seed, same app: identical health ledger and totals.
	b := run()
	if a.Health.SamplesDropped != b.Health.SamplesDropped ||
		a.Health.SamplesFired != b.Health.SamplesFired ||
		a.Totals.Samples != b.Totals.Samples {
		t.Errorf("chaos must be deterministic per seed: %+v vs %+v", a.Health, b.Health)
	}
}

func TestChaosQuarantine(t *testing.T) {
	prof := analyze(t,
		chaosConfig(&faults.Plan{Seed: 11, CorruptRate: 0.2, SkidRate: 0.2, GarbleRate: 0.1}),
		newSerialInitApp(2048, 2))
	h := &prof.Health
	if h.InjectedCorruptEA == 0 || h.InjectedIPSkid == 0 || h.InjectedGarbleLat == 0 {
		t.Fatalf("injector idle: %+v", h)
	}
	if h.Quarantined() == 0 {
		t.Fatalf("no samples quarantined despite corruption: %+v", h)
	}
	if !h.Accounted() {
		t.Fatalf("delivery identity violated: %+v", h)
	}
	// Quarantined samples never exceed what was injected... corrupt EAs
	// may still land inside a mapped region, so quarantine <= injection.
	if h.QuarantinedEA > h.InjectedCorruptEA {
		t.Errorf("quarantined EA %d > injected %d", h.QuarantinedEA, h.InjectedCorruptEA)
	}
	// The run still produces a usable profile.
	if prof.Totals.Samples == 0 {
		t.Fatal("quarantine must not empty the profile")
	}
}

func TestChaosStallRetries(t *testing.T) {
	prof := analyze(t, chaosConfig(&faults.Plan{Seed: 7, StallAfter: 100}),
		newSerialInitApp(4096, 8))
	h := &prof.Health
	if h.SamplerStalls == 0 || h.SamplerRetries == 0 {
		t.Fatalf("stall supervision idle: %+v", h)
	}
	if h.BackoffCycles == 0 {
		t.Error("retries must cost simulated backoff time")
	}
	if h.LostToStall == 0 {
		t.Error("samples lost during the stall window must be counted")
	}
	if !h.Accounted() {
		t.Fatalf("delivery identity violated: %+v", h)
	}
	if h.Fallback != "" {
		t.Error("a stall is recoverable; no fallback expected")
	}
}

func TestChaosHardFailureFallsBack(t *testing.T) {
	prof := analyze(t, chaosConfig(&faults.Plan{Seed: 1, FailAfter: 50}),
		newSerialInitApp(2048, 4))
	h := &prof.Health
	if h.Fallback != "Soft-IBS" {
		t.Fatalf("fallback = %q, want Soft-IBS", h.Fallback)
	}
	if h.LostToFailure == 0 {
		t.Error("samples lost between failure and fallback must be counted")
	}
	if !h.Accounted() {
		t.Fatalf("delivery identity violated: %+v", h)
	}
	if !h.LPIWindowed {
		t.Error("lpi must be flagged as windowed after fallback")
	}
	// The profile keeps collecting after the switch.
	if prof.Totals.Samples == 0 {
		t.Fatal("fallback sampler produced nothing")
	}
}

func TestChaosThreadLoss(t *testing.T) {
	prof := analyze(t, chaosConfig(&faults.Plan{Seed: 3, ThreadLossRate: 0.5}),
		newSerialInitApp(2048, 2))
	h := &prof.Health
	if len(h.ThreadsLost) == 0 {
		t.Fatalf("no thread profiles lost at rate 0.5: %+v", h)
	}
	if h.ThreadsTotal == 0 || len(h.ThreadsLost) >= h.ThreadsTotal {
		t.Fatalf("merge must keep at least one survivor: lost %d of %d",
			len(h.ThreadsLost), h.ThreadsTotal)
	}
	cov := h.ThreadCoverage()
	if cov <= 0 || cov >= 1 {
		t.Errorf("coverage %v, want strictly between 0 and 1", cov)
	}
	// Survivors and lost partition the thread ids.
	if got := len(h.SurvivingThreads()) + len(h.ThreadsLost); got != h.ThreadsTotal {
		t.Errorf("survivors + lost = %d, want %d", got, h.ThreadsTotal)
	}
	if prof.Totals.Samples == 0 {
		t.Fatal("the salvaged merge must still hold samples")
	}
	// Determinism: same seed loses the same threads.
	again := analyze(t, chaosConfig(&faults.Plan{Seed: 3, ThreadLossRate: 0.5}),
		newSerialInitApp(2048, 2))
	if len(again.Health.ThreadsLost) != len(h.ThreadsLost) {
		t.Error("thread loss must be deterministic per seed")
	}
}

func TestChaosPlanRecordedInHealth(t *testing.T) {
	plan := &faults.Plan{Seed: 5, DropRate: 0.1}
	prof := analyze(t, chaosConfig(plan), newSerialInitApp(1024, 1))
	if prof.Health.Plan != plan.String() {
		t.Errorf("Health.Plan = %q, want %q", prof.Health.Plan, plan.String())
	}
	var buf bytes.Buffer
	if prof.Health.Summary() == "" {
		t.Fatal("degraded run must render a summary")
	}
	buf.WriteString(prof.Health.Summary())
	if !bytes.Contains(buf.Bytes(), []byte("all accounted")) {
		t.Errorf("summary should confirm accounting:\n%s", buf.String())
	}
}
